package raal_test

import (
	"fmt"
	"log"

	"raal"
)

// ExampleOpen shows the planning surface: one SQL query, several physical
// candidates, Catalyst-default first.
func ExampleOpen() {
	sys, err := raal.Open(raal.IMDB, 0.02, 1)
	if err != nil {
		log.Fatal(err)
	}
	plans, err := sys.Plan(`SELECT COUNT(*) FROM title t, movie_companies mc
		WHERE t.id = mc.movie_id AND mc.company_id < 100`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("candidates:", len(plans))
	fmt.Println("default:", plans[0].Sig)
	// Output:
	// candidates: 6
	// default: order=t,mc;algos=BHJ;push=true
}

// ExampleSystem_Execute runs a plan for the true answer.
func ExampleSystem_Execute() {
	sys, err := raal.Open(raal.IMDB, 0.02, 1)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := sys.DefaultPlan(`SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id <= 3`)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := sys.Execute(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows:", rel.N)
	fmt.Println("columns:", rel.ColNames())
	// Output:
	// rows: 1
	// columns: [agg0]
}

// ExampleDefaultResources shows the paper's baseline allocation.
func ExampleDefaultResources() {
	fmt.Println(raal.DefaultResources())
	// Output:
	// 4n×4c 2ex×2c 4096MB net=120 disk=180
}
