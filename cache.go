package raal

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"

	"raal/internal/encode"
)

// encodeCache is a mutex-guarded LRU from plan fingerprints to encoded
// samples. Plan encoding walks the whole operator tree (word2vec lookups,
// statistics aggregation) on every Estimate call, yet serving workloads
// re-submit the same few plans under the same allocations over and over;
// caching the encoder's output removes that repeated walk entirely. The
// encoder is deterministic — identical (plan, resources) inputs yield
// identical samples — so serving a cached *Sample is bit-identical to
// re-encoding, and the model never mutates the samples it scores.
type encodeCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key       string // full map key: precision tag + plan key
	planKey   string
	precision string
	sample    *encode.Sample
	hits      uint64 // lookups served from this entry since it was cached
}

// cacheKey joins the serving precision tag and the canonical plan key
// into the cache's map key. Tagging keeps entries produced under
// different serving precisions apart — hit attribution then tells an
// operator which precision's traffic a warm entry is actually serving,
// and a future precision-specific encoding (e.g. pre-narrowed f32
// samples) can land without a key-scheme change. The plan key itself
// (PlanFingerprint) stays precision-agnostic so fleet-router affinity
// is unaffected by what precision a replica serves at.
func cacheKey(precision, planKey string) string {
	return precision + "\x1e" + planKey
}

func newEncodeCache(capacity int) *encodeCache {
	return &encodeCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[string]*list.Element, capacity),
	}
}

func (c *encodeCache) get(precision, planKey string) (*encode.Sample, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[cacheKey(precision, planKey)]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	e.hits++
	return e.sample, true
}

// keyStats snapshots per-entry hit counts in most-recently-used order.
func (c *encodeCache) keyStats() []CacheKeyStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CacheKeyStats, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		out = append(out, CacheKeyStats{Key: FingerprintID(e.planKey), Precision: e.precision, Hits: e.hits})
	}
	return out
}

func (c *encodeCache) add(precision, planKey string, s *encode.Sample) {
	key := cacheKey(precision, planKey)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).sample = s
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, planKey: planKey, precision: precision, sample: s})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).key)
	}
}

func (c *encodeCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheKeyStats is one encode-cache entry's hit attribution: how many
// lookups the entry has served since it was cached, keyed by the short
// fingerprint ID (see FingerprintID) plus the serving precision the
// entry was populated under. Per-key attribution is what lets the fleet
// benchmark tie a routed key's traffic to the replica whose cache
// actually served it; the precision tag splits that attribution when a
// replica switches between the f64 reference path and a quantized one.
// The fingerprint ID is precision-agnostic — the same (plan, resources)
// pair reports the same Key at every precision, as distinct entries.
type CacheKeyStats struct {
	Key       string `json:"key"`
	Precision string `json:"precision"`
	Hits      uint64 `json:"hits"`
}

// FingerprintID condenses a canonical plan fingerprint (PlanFingerprint)
// to a short stable identifier — 64-bit FNV-1a in hex. The full
// fingerprint is the cache key's plan half (exact, collision-free; see
// cacheKey for the precision tag joined to it); the ID exists
// only for reporting, where echoing whole rendered plans would bloat
// every /cachez response. Clients correlate by computing
// FingerprintID(PlanFingerprint(p, res)) for the keys they routed.
func FingerprintID(fingerprint string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(fingerprint))
	return fmt.Sprintf("%016x", h.Sum64())
}

// EncodeCacheKeyStats returns the encode cache's per-key hit counts in
// most-recently-used order, or nil when no cache is enabled. Evicted
// entries drop their counts: the report attributes the *current* working
// set, which is what affinity effectiveness is measured on.
func (cm *CostModel) EncodeCacheKeyStats() []CacheKeyStats {
	if cm.cache == nil {
		return nil
	}
	return cm.cache.keyStats()
}

// PlanFingerprint returns the canonical (plan, resources) fingerprint —
// the exact key the encode cache memoizes under. The fleet router
// consistent-hashes on it so repeated submissions of the same plan under
// the same allocation land on the same replica, whose encode cache and
// micro-batcher are already warm for that key.
func PlanFingerprint(p *Plan, res Resources) string { return planKey(p, res) }

// planKey fingerprints everything the encoder reads from a (plan,
// resources) pair: the full resource feature vector and, per node in
// execution order, its identity, rendered statement (which folds in the
// operator's tables, predicates, keys, and aggregates), cardinality and
// width statistics, and child IDs. Fields the encoder never looks at
// (ActRows, Skew) stay out of the key so post-execution annotation does
// not defeat caching. The key is the exact canonical string — not a hash —
// so distinct inputs can never collide into a stale sample.
func planKey(p *Plan, res Resources) string {
	var b strings.Builder
	for _, v := range res.Vector() {
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		b.WriteByte(',')
	}
	b.WriteByte('\x1e')
	if p.Root != nil {
		b.WriteString(strconv.Itoa(p.Root.ID))
	}
	b.WriteByte('\x1e')
	for _, n := range p.Nodes {
		b.WriteString(strconv.Itoa(n.ID))
		b.WriteByte('\x1f')
		b.WriteString(strconv.Itoa(int(n.Op)))
		b.WriteByte('\x1f')
		b.WriteString(n.Statement())
		b.WriteByte('\x1f')
		b.WriteString(strconv.FormatFloat(n.EstRows, 'g', -1, 64))
		b.WriteByte('\x1f')
		b.WriteString(strconv.FormatFloat(n.RawRows, 'g', -1, 64))
		b.WriteByte('\x1f')
		b.WriteString(strconv.FormatFloat(n.RowBytes, 'g', -1, 64))
		b.WriteByte('\x1f')
		for _, c := range n.Children {
			b.WriteString(strconv.Itoa(c.ID))
			b.WriteByte(',')
		}
		b.WriteByte('\x1e')
	}
	return b.String()
}
