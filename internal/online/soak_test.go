package online

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"raal/internal/encode"
	"raal/internal/physical"
	"raal/internal/serve"
	"raal/internal/sparksim"
)

// TestOnlineSoakNoTornSwap drives a real serve.Server whose deep path
// serves from Manager.Champion() — exactly the raalserve wiring — while
// the champion is promoted and rolled back under it, and proves the
// atomicity claim: every in-flight request sees one coherent model
// generation (its prediction bit-matches exactly one version's expected
// output, checked against the version number the request loaded), and
// zero requests are dropped or degraded across the churn. Run under
// -race by `make online`.
func TestOnlineSoakNoTornSwap(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	champ, st := trainChampion(t, 6)
	mgr, err := NewManager(champ, st, Config{Registry: reg, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	// Build three more generations with distinct weights (different
	// training lengths) so a torn read could not masquerade as a valid
	// prediction, and record each one's expected output on a probe.
	probe := synthDataset(1, 61, 1)
	expected := map[int]float64{1: champ.Predict(probe)[0]}
	for v := 2; v <= 4; v++ {
		m, s := trainChampion(t, 6+4*v)
		if err := reg.Save(v, m, s); err != nil {
			t.Fatal(err)
		}
		expected[v] = m.Predict(probe)[0]
	}
	seen := map[float64]bool{}
	for v, p := range expected {
		if seen[p] {
			t.Fatalf("generation v%d predicts identically to another; the soak could not detect a torn swap", v)
		}
		seen[p] = true
	}

	// The serving closure loads the champion pointer ONCE and uses that
	// generation for the whole request — the invariant under test.
	var torn atomic.Int64
	srv, err := serve.New(serve.Config{
		Concurrency: 8,
		QueueDepth:  1 << 16, // nothing may be shed: every request must complete
		Deep: func(ctx context.Context, p *physical.Plan, res sparksim.Resources) (float64, error) {
			v := mgr.Champion()
			pred := v.Model.Predict([]*encode.Sample{probe[0]})[0]
			if pred != expected[v.Num] {
				torn.Add(1)
				return 0, fmt.Errorf("torn swap: v%d predicted %v, want %v", v.Num, pred, expected[v.Num])
			}
			return pred, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 60
	var wg sync.WaitGroup
	var served, failed, degraded atomic.Int64
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				r, err := srv.Estimate(context.Background(), nil, sparksim.Resources{})
				if err != nil {
					failed.Add(1)
					continue
				}
				if r.Degraded {
					degraded.Add(1)
					continue
				}
				if !seen[r.Cost] {
					t.Errorf("request observed cost %v matching no generation", r.Cost)
				}
				served.Add(1)
			}
		}()
	}
	// Churn the champion through every generation, repeatedly, while the
	// swarm is in flight. Promote loads v2..v4 from the registry on first
	// use and atomically swaps the pointer each time.
	close(start)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < 48; k++ {
			if err := mgr.Promote(k%4 + 1); err != nil {
				t.Errorf("promote v%d: %v", k%4+1, err)
				return
			}
			if k%7 == 3 {
				if err := mgr.Rollback(); err != nil {
					t.Errorf("rollback: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done

	if n := torn.Load(); n != 0 {
		t.Fatalf("%d request(s) observed a torn swap", n)
	}
	if f := failed.Load(); f != 0 {
		t.Fatalf("%d request(s) dropped during promotion churn", f)
	}
	if d := degraded.Load(); d != 0 {
		t.Fatalf("%d request(s) degraded during promotion churn", d)
	}
	if s := served.Load(); s != goroutines*perG {
		t.Fatalf("served %d of %d requests", s, goroutines*perG)
	}
	// And the loop is still healthy: the final champion is a real
	// generation with coherent status.
	stat := mgr.Status()
	if _, ok := expected[stat.Champion]; !ok {
		t.Fatalf("final champion v%d is not a known generation", stat.Champion)
	}
}

// TestOnlineAdminEndpoints exercises the /models surface end to end
// against a live manager.
func TestOnlineAdminEndpoints(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	champ, st := trainChampion(t, 4)
	mgr, err := NewManager(champ, st, Config{Registry: reg, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m2, s2 := trainChampion(t, 8)
	if err := reg.Save(2, m2, s2); err != nil {
		t.Fatal(err)
	}
	h := mgr.AdminHandler()

	do := func(method, path, body string) (int, Status) {
		t.Helper()
		rec := httptest.NewRecorder()
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		h.ServeHTTP(rec, httptest.NewRequest(method, path, rd))
		var st Status
		if rec.Code == http.StatusOK {
			if err := json.NewDecoder(rec.Body).Decode(&st); err != nil {
				t.Fatalf("%s %s: bad JSON: %v", method, path, err)
			}
		}
		return rec.Code, st
	}
	get := func(path string) (int, Status) { return do("GET", path, "") }
	post := func(path, body string) (int, Status) { return do("POST", path, body) }

	if code, st := get("/models"); code != 200 || st.Champion != 1 {
		t.Fatalf("GET /models = %d, %+v", code, st)
	}
	if code, st := post("/models/promote", `{"version":2}`); code != 200 || st.Champion != 2 {
		t.Fatalf("promote = %d, %+v", code, st)
	}
	if code, _ := post("/models/promote", `{"version":99}`); code != 404 {
		t.Fatalf("promoting a ghost version = %d, want 404", code)
	}
	if code, _ := post("/models/promote", `{"version":0}`); code != 400 {
		t.Fatalf("promoting version 0 = %d, want 400", code)
	}
	if code, st := post("/models/rollback", ""); code != 200 || st.Champion != 1 {
		t.Fatalf("rollback = %d, %+v", code, st)
	}
	if code, st := post("/models/pin", `{"pinned":true}`); code != 200 || !st.Pinned {
		t.Fatalf("pin = %d, %+v", code, st)
	}
	if code, _ := post("/models/pin", `{}`); code != 400 {
		t.Fatalf("pin without a value = %d, want 400", code)
	}
	if code, st := post("/models/pin", `{"pinned":false}`); code != 200 || st.Pinned {
		t.Fatalf("unpin = %d, %+v", code, st)
	}
	// The manifest tracks the admin promotions.
	man, err := reg.ReadManifest()
	if err != nil || man.Champion != 1 {
		t.Fatalf("manifest = %+v, %v", man, err)
	}
}
