package online

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"

	"raal/internal/core"
	"raal/internal/encode"
)

// Version is one immutable model generation. Once constructed it is
// never mutated — promotion swaps which Version the champion pointer
// addresses, so a request that loaded a Version keeps a fully coherent
// (model, state, number) triple for its whole lifetime regardless of
// concurrent promotions.
type Version struct {
	// Num is the generation number, 1 for the bootstrap champion.
	Num int
	// Model is this generation's trained network.
	Model *core.Model
	// State is the resumable training state the generation was left
	// with — the warm-start point for the next challenger.
	State *core.TrainState
	// Q is the generation's reduced-precision serving snapshot, present
	// only when the loop runs with a reduced Config.Precision and the
	// accuracy gate admitted the quantization at promotion time. Nil
	// means this generation serves float64. Never persisted — champions
	// are re-quantized from their float64 weights on every promotion.
	Q *core.QModel
}

// Config tunes the online learning loop. The zero value gets sensible
// defaults from NewManager.
type Config struct {
	// ReplayCap bounds the replay reservoir (default 512 samples).
	ReplayCap int
	// Seed drives every stochastic choice in the loop (reservoir
	// eviction; retrain seed when Train.Seed is unset). Default 1.
	Seed int64

	// DriftWindow is the sliding window of served q-errors watched by
	// the drift detector (default 64); DriftQuantile the watched quantile
	// (default 0.9); DriftThreshold the quantile value that dispatches a
	// retrain (default 2.0 — the tail predicts at least 2× off).
	DriftWindow    int
	DriftQuantile  float64
	DriftThreshold float64

	// MinRetrain is the minimum replay occupancy before a drift trigger
	// may retrain (default 64): retraining on a near-empty buffer would
	// anchor the challenger to noise.
	MinRetrain int
	// ShadowMin is how many feedback outcomes a challenger is shadow-
	// scored on before the promote/reject verdict (default 32).
	ShadowMin int
	// Cooldown is how many feedback observations must pass after a
	// retrain dispatch or shadow verdict before the next retrain may
	// trigger (default DriftWindow) — back-to-back retrains on the same
	// evidence are wasted work.
	Cooldown int

	// Train configures the challenger's warm-start Fit over the replay
	// snapshot. Zero fields default to Epochs 10, Batch 16, LR 1e-3,
	// Seed from Config.Seed.
	Train core.TrainConfig

	// Precision selects the serving numeric format (default f64, the
	// reference path). With a reduced precision every generation still
	// trains, shadow-scores, and persists in float64; the champion is
	// re-quantized from its float64 weights at promotion time, behind
	// the accuracy gate (core.VerifyQuantized) scored on the replay
	// snapshot — or on GateSamples while the buffer is empty, e.g. at
	// bootstrap. A refused gate increments raal_quant_gate_failures_total
	// and the generation serves float64 instead.
	Precision core.Precision
	// GateSamples is the bootstrap reference set for the quantization
	// accuracy gate, used until the replay buffer has content.
	GateSamples []*encode.Sample
	// MaxQDelta bounds the gate's quantile q-error delta between the
	// quantized and float64 predictions (default 0.05).
	MaxQDelta float64

	// Registry, if non-nil, persists every generation as an integrity-
	// checked snapshot and records promotions in the manifest. If its
	// manifest already names a loadable champion, NewManager resumes
	// from that snapshot instead of the bootstrap model.
	Registry *Registry

	// Metrics, if non-nil, receives the raal_online_* metric set.
	Metrics *Metrics
	// Logger, if non-nil, narrates drift triggers, verdicts, and
	// promotions.
	Logger *slog.Logger
}

func (c *Config) defaults() {
	if c.ReplayCap <= 0 {
		c.ReplayCap = 512
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DriftWindow <= 0 {
		c.DriftWindow = 64
	}
	if c.DriftQuantile == 0 {
		c.DriftQuantile = 0.9
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 2.0
	}
	if c.MinRetrain <= 0 {
		c.MinRetrain = 64
	}
	if c.ShadowMin <= 0 {
		c.ShadowMin = 32
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.DriftWindow
	}
	if c.Train.Epochs <= 0 {
		c.Train.Epochs = 10
	}
	if c.Train.Batch <= 0 {
		c.Train.Batch = 16
	}
	if c.Train.LR == 0 {
		c.Train.LR = 1e-3
	}
	if c.Train.Seed == 0 {
		c.Train.Seed = c.Seed
	}
	if c.MaxQDelta == 0 {
		c.MaxQDelta = 0.05
	}
	if c.Metrics == nil {
		c.Metrics = &Metrics{} // nil fields: every observation is a no-op
	}
}

// shadow is a live challenger being scored against the champion on the
// feedback stream.
type shadow struct {
	version *Version
	// champSum and chalSum accumulate q-errors over the same feedback
	// outcomes; scored counts them.
	champSum, chalSum float64
	scored            int
}

// Manager runs the online learning loop around a serving champion:
// ingests feedback, detects drift, retrains a challenger from the replay
// buffer (warm-started from the champion's training state), shadow-scores
// it on live traffic, and atomically promotes it when it wins.
//
// Champion() is wait-free (one atomic load) and safe from any goroutine —
// it is the serving hot path. Everything else serializes on an internal
// mutex; Observe runs the retrain synchronously when drift triggers, so
// call it from a feedback worker, never from a request path.
type Manager struct {
	cfg      Config
	champion atomic.Pointer[Version]

	mu       sync.Mutex
	buf      *Reservoir
	drift    *DriftDetector
	shadow   *shadow
	cooldown int
	pinned   bool
	versions map[int]*Version
	history  []int // champion lineage, most recent last
	nextNum  int
	lastErr  string // most recent retrain/persist failure, for /models
}

// NewManager wires the loop around a bootstrap champion. If cfg.Registry
// has a manifest naming a loadable champion, that snapshot is resumed
// instead (so a restarted server serves the exact model it was serving);
// otherwise the bootstrap model is persisted as generation 1.
func NewManager(bootstrap *core.Model, st *core.TrainState, cfg Config) (*Manager, error) {
	if bootstrap == nil {
		return nil, fmt.Errorf("online: nil bootstrap model")
	}
	cfg.defaults()
	if st == nil {
		st = core.NewTrainState()
	}
	m := &Manager{
		cfg:      cfg,
		buf:      NewReservoir(cfg.ReplayCap, cfg.Seed),
		drift:    NewDriftDetector(cfg.DriftWindow, cfg.DriftQuantile, cfg.DriftThreshold),
		versions: map[int]*Version{},
		nextNum:  1,
	}
	champ := &Version{Num: 1, Model: bootstrap, State: st}
	if reg := cfg.Registry; reg != nil {
		man, err := reg.ReadManifest()
		if err != nil {
			return nil, err
		}
		if man.Champion > 0 {
			rm, rst, err := reg.Load(man.Champion)
			if err != nil {
				return nil, fmt.Errorf("online: manifest names champion v%d but it cannot be loaded: %w", man.Champion, err)
			}
			champ = &Version{Num: man.Champion, Model: rm, State: rst}
		} else {
			if err := reg.Save(1, champ.Model, champ.State); err != nil {
				return nil, err
			}
			if err := reg.WriteManifest(Manifest{Champion: 1}); err != nil {
				return nil, err
			}
		}
		// Numbering continues past everything on disk, not just the
		// champion — older generations stay loadable by Promote.
		if vs, err := reg.List(); err == nil && len(vs) > 0 && vs[len(vs)-1] > m.nextNum {
			m.nextNum = vs[len(vs)-1]
		}
	}
	if champ.Num > m.nextNum {
		m.nextNum = champ.Num
	}
	m.nextNum++
	m.versions[champ.Num] = champ
	m.history = []int{champ.Num}
	m.requantizeLocked(champ)
	m.champion.Store(champ)
	cfg.Metrics.ChampionVersion.Set(float64(champ.Num))
	return m, nil
}

// Champion returns the serving generation. One atomic load; the caller
// must use the returned Version (not re-call Champion) for everything a
// single request touches, which is what makes a concurrent promotion
// invisible mid-request.
func (m *Manager) Champion() *Version { return m.champion.Load() }

// Observe ingests one served outcome: the sample that was priced, the
// prediction that was served for it, and the cost that was then actually
// observed. It feeds the replay buffer, advances the drift detector,
// shadow-scores any live challenger on the same outcome, and — when
// drift has tripped and the loop is eligible — synchronously retrains a
// challenger from the replay snapshot.
func (m *Manager) Observe(s *encode.Sample, predicted, actual float64) {
	labeled := *s
	labeled.CostSec = actual

	m.mu.Lock()
	defer m.mu.Unlock()

	m.buf.Add(&labeled)
	q := QError(predicted, actual)
	m.drift.Observe(q)
	met := m.cfg.Metrics
	met.Feedback.Inc()
	met.QError.Observe(q)
	met.ReplaySize.Set(float64(m.buf.Len()))
	if dq := m.drift.Quantile(); dq == dq { // skip NaN (cold window)
		met.DriftQuantile.Set(dq)
	}
	if m.cooldown > 0 {
		m.cooldown--
	}

	if sh := m.shadow; sh != nil {
		chal := sh.version.Model.Predict([]*encode.Sample{&labeled})[0]
		sh.champSum += q
		sh.chalSum += QError(chal, actual)
		sh.scored++
		met.ShadowScored.Inc()
		if sh.scored >= m.cfg.ShadowMin {
			m.settleShadow()
		}
		return
	}

	if m.pinned || m.cooldown > 0 || m.buf.Len() < m.cfg.MinRetrain || !m.drift.Drifted() {
		return
	}
	met.DriftTriggers.Inc()
	m.retrainLocked()
}

// retrainLocked clones the champion, warm-starts Fit on the replay
// snapshot, and installs the result as the shadow challenger. Called
// with mu held; the retrain is synchronous and deterministic for a fixed
// feedback sequence.
func (m *Manager) retrainLocked() {
	champ := m.champion.Load()
	model := champ.Model.Clone()
	state := champ.State.Clone()
	tc := m.cfg.Train
	tc.State = state
	snap := m.buf.Snapshot()
	if m.cfg.Logger != nil {
		m.cfg.Logger.Info("online: drift triggered retrain",
			"champion", champ.Num, "replay", len(snap), "quantile", m.drift.Quantile())
	}
	if _, err := model.Fit(snap, tc); err != nil {
		m.lastErr = fmt.Sprintf("retrain: %v", err)
		m.cooldown = m.cfg.Cooldown
		return
	}
	m.cfg.Metrics.Retrains.Inc()
	v := &Version{Num: m.nextNum, Model: model, State: state}
	m.nextNum++
	m.versions[v.Num] = v
	if reg := m.cfg.Registry; reg != nil {
		if err := reg.Save(v.Num, v.Model, v.State); err != nil {
			m.lastErr = fmt.Sprintf("persist v%d: %v", v.Num, err)
		}
	}
	m.shadow = &shadow{version: v}
	m.cooldown = m.cfg.Cooldown
}

// settleShadow renders the promote/reject verdict. Called with mu held.
func (m *Manager) settleShadow() {
	sh := m.shadow
	m.shadow = nil
	m.cooldown = m.cfg.Cooldown
	champMean := sh.champSum / float64(sh.scored)
	chalMean := sh.chalSum / float64(sh.scored)
	if m.cfg.Logger != nil {
		m.cfg.Logger.Info("online: shadow verdict",
			"challenger", sh.version.Num, "scored", sh.scored,
			"champion_qerr", champMean, "challenger_qerr", chalMean)
	}
	if m.pinned || chalMean >= champMean {
		m.cfg.Metrics.ShadowRejects.Inc()
		return
	}
	m.promoteLocked(sh.version, "shadow")
	// The swap invalidates the drift window: its errors were the old
	// champion's. Measure the new regime from scratch.
	m.drift.Reset()
}

// requantizeLocked (re)derives v's reduced-precision serving snapshot
// from its float64 weights — the quantization half of a promotion.
// Under PrecisionF64 it is a no-op. The gate scores the snapshot on the
// replay buffer (live traffic's distribution) when it has content,
// falling back to Config.GateSamples at bootstrap; a refused gate — or
// an empty gate set — leaves v.Q nil, so the generation serves float64,
// and records the refusal in lastErr and the gate-failure counter.
// Called with mu held (or during NewManager, before the loop is shared).
func (m *Manager) requantizeLocked(v *Version) {
	if m.cfg.Precision == core.PrecisionF64 {
		return
	}
	v.Q = nil
	qm, err := v.Model.Quantize(core.QuantConfig{Precision: m.cfg.Precision})
	if err == nil {
		gate := m.buf.Snapshot()
		if len(gate) == 0 {
			gate = m.cfg.GateSamples
		}
		err = core.VerifyQuantized(v.Model, qm, gate, m.cfg.MaxQDelta)
	}
	if err != nil {
		m.lastErr = fmt.Sprintf("quantize v%d: %v", v.Num, err)
		m.cfg.Metrics.QuantGateFailures.Inc()
		if m.cfg.Logger != nil {
			m.cfg.Logger.Warn("online: quantization gate refused; serving float64",
				"version", v.Num, "precision", m.cfg.Precision.String(), "error", err)
		}
		return
	}
	v.Q = qm
}

// promoteLocked installs v as champion, re-quantizing it first when the
// loop serves at a reduced precision. Called with mu held.
func (m *Manager) promoteLocked(v *Version, reason string) {
	m.requantizeLocked(v)
	m.champion.Store(v)
	m.history = append(m.history, v.Num)
	m.cfg.Metrics.Promotions.With(reason).Inc()
	m.cfg.Metrics.ChampionVersion.Set(float64(v.Num))
	if reg := m.cfg.Registry; reg != nil {
		if err := reg.WriteManifest(Manifest{Champion: v.Num}); err != nil {
			m.lastErr = fmt.Sprintf("manifest: %v", err)
		}
	}
	if m.cfg.Logger != nil {
		m.cfg.Logger.Info("online: promoted", "version", v.Num, "reason", reason)
	}
}

// Promote makes generation num the champion by operator fiat. Versions
// no longer held in memory are loaded (and integrity-checked) from the
// registry. Promoting the version already serving is a no-op.
func (m *Manager) Promote(num int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.champion.Load().Num == num {
		return nil
	}
	v, ok := m.versions[num]
	if !ok {
		reg := m.cfg.Registry
		if reg == nil {
			return fmt.Errorf("online: unknown version %d", num)
		}
		model, st, err := reg.Load(num)
		if err != nil {
			return err
		}
		v = &Version{Num: num, Model: model, State: st}
		m.versions[num] = v
	}
	if sh := m.shadow; sh != nil && sh.version.Num == num {
		m.shadow = nil // the operator pre-empted the shadow verdict
	}
	m.promoteLocked(v, "manual")
	m.drift.Reset()
	return nil
}

// Rollback re-promotes the previous champion in the lineage.
func (m *Manager) Rollback() error {
	m.mu.Lock()
	if len(m.history) < 2 {
		m.mu.Unlock()
		return fmt.Errorf("online: no earlier champion to roll back to")
	}
	prev := m.history[len(m.history)-2]
	v, ok := m.versions[prev]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("online: previous champion v%d is no longer available", prev)
	}
	m.promoteLocked(v, "rollback")
	m.drift.Reset()
	m.mu.Unlock()
	return nil
}

// Pin freezes (or unfreezes) the current champion: while pinned, drift
// never retrains and a shadow verdict never auto-promotes. Manual
// Promote/Rollback remain available — pinning guards against the
// automation, not the operator.
func (m *Manager) Pin(pinned bool) {
	m.mu.Lock()
	m.pinned = pinned
	m.mu.Unlock()
}

// ShadowStatus describes a live challenger mid-scoring.
type ShadowStatus struct {
	Version    int     `json:"version"`
	Scored     int     `json:"scored"`
	Needed     int     `json:"needed"`
	ChampionQ  float64 `json:"champion_qerr"`
	ChallengeQ float64 `json:"challenger_qerr"`
}

// VersionStatus describes one known generation.
type VersionStatus struct {
	Num      int  `json:"num"`
	Champion bool `json:"champion"`
	InMemory bool `json:"in_memory"`
	OnDisk   bool `json:"on_disk"`
}

// Status is the admin view of the loop.
type Status struct {
	Champion int `json:"champion"`
	// Precision is the champion's active serving format — the configured
	// reduced precision when its quantized snapshot passed the gate,
	// "f64" otherwise (including after a gate refusal; see LastError).
	Precision     string          `json:"precision"`
	Pinned        bool            `json:"pinned"`
	DriftQuantile float64         `json:"drift_quantile"` // -1 until the window fills
	Drifted       bool            `json:"drifted"`
	ReplayLen     int             `json:"replay_len"`
	ReplaySeen    int64           `json:"replay_seen"`
	Cooldown      int             `json:"cooldown"`
	Shadow        *ShadowStatus   `json:"shadow,omitempty"`
	History       []int           `json:"history"`
	Versions      []VersionStatus `json:"versions"`
	LastError     string          `json:"last_error,omitempty"`
}

// Status reports the loop's current state for the /models endpoint.
func (m *Manager) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	champ := m.champion.Load()
	prec := core.PrecisionF64
	if champ.Q != nil {
		prec = champ.Q.Precision
	}
	st := Status{
		Champion:      champ.Num,
		Precision:     prec.String(),
		Pinned:        m.pinned,
		DriftQuantile: -1,
		Drifted:       m.drift.Drifted(),
		ReplayLen:     m.buf.Len(),
		ReplaySeen:    m.buf.Seen(),
		Cooldown:      m.cooldown,
		History:       append([]int(nil), m.history...),
		LastError:     m.lastErr,
	}
	if dq := m.drift.Quantile(); dq == dq {
		st.DriftQuantile = dq
	}
	if sh := m.shadow; sh != nil {
		ss := &ShadowStatus{Version: sh.version.Num, Scored: sh.scored, Needed: m.cfg.ShadowMin}
		if sh.scored > 0 {
			ss.ChampionQ = sh.champSum / float64(sh.scored)
			ss.ChallengeQ = sh.chalSum / float64(sh.scored)
		}
		st.Shadow = ss
	}
	onDisk := map[int]bool{}
	if reg := m.cfg.Registry; reg != nil {
		if vs, err := reg.List(); err == nil {
			for _, v := range vs {
				onDisk[v] = true
			}
		}
	}
	nums := map[int]bool{}
	for n := range m.versions {
		nums[n] = true
	}
	for n := range onDisk {
		nums[n] = true
	}
	for n := range nums {
		st.Versions = append(st.Versions, VersionStatus{
			Num:      n,
			Champion: n == champ.Num,
			InMemory: m.versions[n] != nil,
			OnDisk:   onDisk[n],
		})
	}
	sort.Slice(st.Versions, func(i, j int) bool { return st.Versions[i].Num < st.Versions[j].Num })
	return st
}
