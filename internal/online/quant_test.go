package online

import (
	"testing"

	"raal/internal/core"
	"raal/internal/encode"
	"raal/internal/telemetry"
)

// TestQuantizedChampionLifecycle pins the online quantization contract:
// a reduced-precision loop quantizes the bootstrap champion behind the
// accuracy gate, serves at that precision, re-quantizes the promoted
// challenger from its float64 weights, and falls back to float64 (with
// raal_quant_gate_failures_total bumped) when the gate cannot admit a
// snapshot.
func TestQuantizedChampionLifecycle(t *testing.T) {
	champ, st := trainChampion(t, 40)
	gate := synthDataset(48, 31, 1)
	cfg := Config{
		ReplayCap:      256,
		Seed:           5,
		DriftWindow:    32,
		DriftThreshold: 1.8,
		MinRetrain:     96,
		ShadowMin:      24,
		Train:          core.TrainConfig{Epochs: 40, Batch: 16, LR: 5e-3, Seed: 5},
		Precision:      core.PrecisionInt8,
		GateSamples:    gate,
		// The lifecycle is what this test pins, not the bound's
		// tightness (the core gate tests own that) — keep the gate
		// permissive so a borderline snapshot cannot flake the drill.
		MaxQDelta: 0.2,
		Metrics:   NewMetrics(telemetry.NewRegistry()),
	}
	mgr, err := NewManager(champ, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := mgr.Champion()
	if v.Q == nil || v.Q.Precision != core.PrecisionInt8 {
		t.Fatalf("bootstrap champion was not quantized: %+v (last error %q)", v.Q, mgr.Status().LastError)
	}
	if got := mgr.Status().Precision; got != "int8" {
		t.Fatalf("Status.Precision = %q, want int8", got)
	}

	// Serve at the champion's precision through a workload shift until a
	// challenger is promoted; the new generation must carry a freshly
	// gated snapshot of its own.
	shifted := synthDataset(600, 22, 3)
	for _, s := range shifted {
		v := mgr.Champion()
		pred := v.Q.Predict([]*encode.Sample{s})[0]
		mgr.Observe(s, pred, s.CostSec)
	}
	v2 := mgr.Champion()
	if v2.Num == 1 {
		t.Fatalf("workload shift never promoted a challenger: %+v", mgr.Status())
	}
	if v2.Q == nil || v2.Q.Precision != core.PrecisionInt8 {
		t.Fatalf("promotion did not re-quantize generation %d (last error %q)", v2.Num, mgr.Status().LastError)
	}
	if v2.Q == v.Q {
		t.Fatal("promoted generation reuses the old champion's snapshot")
	}
}

// TestQuantizedGateFallback pins the refusal path: with no gate samples
// and an empty replay buffer the bootstrap quantization cannot be
// verified, so the champion must serve float64, record the refusal, and
// bump the gate-failure counter.
func TestQuantizedGateFallback(t *testing.T) {
	champ, st := trainChampion(t, 40)
	met := NewMetrics(telemetry.NewRegistry())
	mgr, err := NewManager(champ, st, Config{
		Seed:      5,
		Precision: core.PrecisionF32,
		Metrics:   met,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := mgr.Champion(); v.Q != nil {
		t.Fatal("an unverifiable quantization was installed")
	}
	status := mgr.Status()
	if status.Precision != "f64" {
		t.Fatalf("Status.Precision = %q, want the f64 fallback", status.Precision)
	}
	if status.LastError == "" {
		t.Fatal("gate refusal left no trace in LastError")
	}
	if got := met.QuantGateFailures.Value(); got != 1 {
		t.Fatalf("raal_quant_gate_failures_total = %v, want 1", got)
	}
}
