package online

import (
	"raal/internal/telemetry"
)

// qErrorBounds buckets observed q-errors; a perfect prediction is 1.
var qErrorBounds = []float64{1, 1.1, 1.25, 1.5, 2, 3, 5, 10, 100}

// promotionReasons labels why a champion changed.
var promotionReasons = []string{"shadow", "manual", "rollback"}

// Metrics is the online-learning loop's metric set. As everywhere else
// in the repo, a nil Metrics is valid and inert.
type Metrics struct {
	registry *telemetry.Registry

	// Feedback counts observed outcomes ingested; ReplaySize tracks the
	// replay buffer's current occupancy.
	Feedback   *telemetry.Counter
	ReplaySize *telemetry.Gauge

	// QError observes every feedback q-error; DriftQuantile mirrors the
	// detector's current windowed quantile (NaN-free: unset until the
	// window first fills).
	QError        *telemetry.Histogram
	DriftQuantile *telemetry.Gauge

	// DriftTriggers counts threshold crossings that dispatched a retrain;
	// Retrains counts completed challenger training runs.
	DriftTriggers *telemetry.Counter
	Retrains      *telemetry.Counter

	// ShadowScored counts feedback outcomes scored against a live
	// challenger; ShadowRejects counts challengers discarded for losing
	// the shadow comparison.
	ShadowScored  *telemetry.Counter
	ShadowRejects *telemetry.Counter

	// Promotions counts champion swaps by reason (shadow/manual/rollback);
	// ChampionVersion is the serving version number.
	Promotions      *telemetry.CounterVec
	ChampionVersion *telemetry.Gauge

	// QuantGateFailures counts quantized champion snapshots refused by
	// the accuracy gate — each one means a generation served float64
	// despite a reduced configured precision.
	QuantGateFailures *telemetry.Counter
}

// NewMetrics registers the online metric set on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		registry: reg,
		Feedback: reg.NewCounter("raal_online_feedback_total",
			"Observed (plan, resources, actual cost) outcomes ingested as labeled samples."),
		ReplaySize: reg.NewGauge("raal_online_replay_samples",
			"Labeled samples currently held in the replay reservoir."),
		QError: reg.NewHistogram("raal_online_qerror",
			"Q-error of served predictions against observed costs.", qErrorBounds),
		DriftQuantile: reg.NewGauge("raal_online_drift_quantile",
			"Current windowed q-error quantile watched by the drift detector."),
		DriftTriggers: reg.NewCounter("raal_online_drift_triggers_total",
			"Drift-threshold crossings that dispatched a challenger retrain."),
		Retrains: reg.NewCounter("raal_online_retrains_total",
			"Challenger training runs completed from the replay buffer."),
		ShadowScored: reg.NewCounter("raal_online_shadow_scored_total",
			"Feedback outcomes scored against a live shadow challenger."),
		ShadowRejects: reg.NewCounter("raal_online_shadow_rejects_total",
			"Challengers discarded for losing the shadow comparison."),
		Promotions: reg.NewCounterVec("raal_online_promotions_total",
			"Champion swaps by reason.", "reason", promotionReasons...),
		ChampionVersion: reg.NewGauge("raal_online_champion_version",
			"Version number of the model currently serving."),
		QuantGateFailures: reg.NewCounter("raal_quant_gate_failures_total",
			"Quantized model snapshots refused by the accuracy gate (serving stayed on float64)."),
	}
}

// Registry returns the registry the metrics are registered on (nil for
// an inert Metrics).
func (m *Metrics) Registry() *telemetry.Registry {
	if m == nil {
		return nil
	}
	return m.registry
}
