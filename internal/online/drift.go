package online

import (
	"math"
	"sort"
)

// QError is the symmetric relative error between a prediction and an
// observed cost: max(pred/actual, actual/pred), floored at 1 for a
// perfect prediction. Degenerate inputs (zero, negative, NaN, Inf) map
// to +Inf so they register as maximal error instead of poisoning the
// window with NaNs that no threshold comparison would ever trigger on.
func QError(pred, actual float64) float64 {
	if !(pred > 0) || !(actual > 0) || math.IsInf(pred, 1) || math.IsInf(actual, 1) {
		return math.Inf(1)
	}
	if pred > actual {
		return pred / actual
	}
	return actual / pred
}

// DriftDetector watches a sliding window of served q-errors and reports
// drift when a high quantile of the window crosses a threshold. The
// quantile (rather than the mean) is what the ISSUE's workload-shift
// drill needs: a shifted workload inflates the tail of the q-error
// distribution first, and a windowed quantile reacts to that tail without
// being dragged around by the easy queries that still predict well.
// Not safe for concurrent use; the Manager serializes access.
type DriftDetector struct {
	window    []float64
	scratch   []float64
	next      int
	full      bool
	quantile  float64 // e.g. 0.9
	threshold float64 // trigger when windowed quantile >= threshold
}

// NewDriftDetector returns a detector over a window of the given size
// that trips when the q-th quantile of the window reaches threshold.
func NewDriftDetector(window int, quantile, threshold float64) *DriftDetector {
	if window < 1 {
		window = 1
	}
	if quantile <= 0 || quantile > 1 {
		quantile = 0.9
	}
	if threshold < 1 {
		threshold = 1
	}
	return &DriftDetector{
		window:    make([]float64, window),
		scratch:   make([]float64, window),
		quantile:  quantile,
		threshold: threshold,
	}
}

// Observe records one served prediction's q-error.
func (d *DriftDetector) Observe(q float64) {
	d.window[d.next] = q
	d.next++
	if d.next == len(d.window) {
		d.next = 0
		d.full = true
	}
}

// Quantile returns the configured quantile of the current window, or NaN
// until the window has filled once (a cold window says nothing yet).
func (d *DriftDetector) Quantile() float64 {
	n := len(d.window)
	if !d.full {
		n = d.next
	}
	if n == 0 {
		return math.NaN()
	}
	copy(d.scratch[:n], d.window[:n])
	sort.Float64s(d.scratch[:n])
	// Nearest-rank quantile: deterministic and monotone in the window.
	k := int(math.Ceil(d.quantile*float64(n))) - 1
	if k < 0 {
		k = 0
	}
	return d.scratch[k]
}

// Drifted reports whether the window is full and its quantile has
// reached the threshold. Partial windows never trip: a handful of early
// observations must not trigger a retrain.
func (d *DriftDetector) Drifted() bool {
	if !d.full {
		return false
	}
	return d.Quantile() >= d.threshold
}

// Reset empties the window, e.g. after a retrain has been dispatched, so
// the detector measures the new regime from scratch instead of re-firing
// on stale pre-retrain errors.
func (d *DriftDetector) Reset() {
	d.next = 0
	d.full = false
}
