package online

import (
	"encoding/json"
	"net/http"
)

// adminError is the admin endpoint's JSON error envelope, mirroring the
// serving API's shape.
type adminError struct {
	Error string `json:"error"`
}

// AdminHandler returns the /models admin surface:
//
//	GET  /models           — loop status: champion, drift, replay, shadow, versions
//	POST /models/promote   — {"version": N}: make generation N the champion
//	POST /models/rollback  — re-promote the previous champion
//	POST /models/pin       — {"pinned": true|false}: freeze/unfreeze automation
//
// Handlers mutate serving state, so mount this on an operator-facing mux
// (raalserve puts it on the admin listener, or the main mux when no admin
// listener is configured).
func (m *Manager) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /models", func(w http.ResponseWriter, r *http.Request) {
		writeAdminJSON(w, http.StatusOK, m.Status())
	})
	mux.HandleFunc("POST /models/promote", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Version int `json:"version"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Version <= 0 {
			writeAdminJSON(w, http.StatusBadRequest, adminError{Error: `body must be {"version": N} with N >= 1`})
			return
		}
		if err := m.Promote(req.Version); err != nil {
			writeAdminJSON(w, http.StatusNotFound, adminError{Error: err.Error()})
			return
		}
		writeAdminJSON(w, http.StatusOK, m.Status())
	})
	mux.HandleFunc("POST /models/rollback", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Rollback(); err != nil {
			writeAdminJSON(w, http.StatusConflict, adminError{Error: err.Error()})
			return
		}
		writeAdminJSON(w, http.StatusOK, m.Status())
	})
	mux.HandleFunc("POST /models/pin", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Pinned *bool `json:"pinned"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Pinned == nil {
			writeAdminJSON(w, http.StatusBadRequest, adminError{Error: `body must be {"pinned": true|false}`})
			return
		}
		m.Pin(*req.Pinned)
		writeAdminJSON(w, http.StatusOK, m.Status())
	})
	return mux
}

func writeAdminJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
