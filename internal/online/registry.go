package online

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"raal/internal/core"
)

// Snapshot files open with their own magic so a model file dropped into
// the registry directory is rejected as foreign, not mis-parsed.
const (
	snapshotMagic        = "RAALsnp"
	snapshotVersion byte = 1
	manifestName         = "MANIFEST.json"
)

// Registry is a versioned on-disk store of model snapshots. Each
// snapshot file carries a magic header, the SHA-256 of its payload, and
// the payload itself (serialized model followed by train state); Load
// re-hashes the payload and refuses to return a model whose bytes have
// rotted or been tampered with. A MANIFEST.json records which version is
// the serving champion so a restarted server resumes from the exact
// model that was serving, not merely the newest file.
//
// Writes are atomic: snapshots and the manifest are written to a temp
// file in the same directory and renamed into place, so a crash mid-save
// never leaves a half-written snapshot under a valid name.
type Registry struct {
	dir string
}

// Manifest is the registry's serving pointer.
type Manifest struct {
	// Champion is the version number currently serving, 0 if never set.
	Champion int `json:"champion"`
}

// OpenRegistry opens (creating if needed) a snapshot registry rooted at dir.
func OpenRegistry(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("online: creating registry dir: %w", err)
	}
	return &Registry{dir: dir}, nil
}

// Dir returns the registry's root directory.
func (r *Registry) Dir() string { return r.dir }

func (r *Registry) snapPath(version int) string {
	return filepath.Join(r.dir, fmt.Sprintf("snap-%05d.raal", version))
}

// Save writes version's model and train state as an integrity-checked
// snapshot file, atomically.
func (r *Registry) Save(version int, m *core.Model, st *core.TrainState) error {
	if version <= 0 {
		return fmt.Errorf("online: snapshot version must be positive, got %d", version)
	}
	var payload bytes.Buffer
	if err := m.Save(&payload); err != nil {
		return err
	}
	if st == nil {
		st = core.NewTrainState()
	}
	if err := st.Save(&payload); err != nil {
		return err
	}
	sum := sha256.Sum256(payload.Bytes())

	var out bytes.Buffer
	if err := core.WriteHeader(&out, snapshotMagic, snapshotVersion); err != nil {
		return err
	}
	out.Write(sum[:])
	out.Write(payload.Bytes())
	return r.atomicWrite(r.snapPath(version), out.Bytes())
}

// Load reads and verifies snapshot file for version, returning its model
// and train state. Corruption anywhere in the payload is caught by the
// checksum before any gob decoding is attempted.
func (r *Registry) Load(version int) (*core.Model, *core.TrainState, error) {
	raw, err := os.ReadFile(r.snapPath(version))
	if err != nil {
		return nil, nil, fmt.Errorf("online: reading snapshot v%d: %w", version, err)
	}
	rd := bytes.NewReader(raw)
	if err := core.ReadHeader(rd, snapshotMagic, snapshotVersion, "model snapshot"); err != nil {
		return nil, nil, err
	}
	var sum [sha256.Size]byte
	if _, err := io.ReadFull(rd, sum[:]); err != nil {
		return nil, nil, fmt.Errorf("online: snapshot v%d truncated before its checksum: %w", version, err)
	}
	payload := raw[len(raw)-rd.Len():]
	if got := sha256.Sum256(payload); got != sum {
		return nil, nil, fmt.Errorf("online: snapshot v%d failed its integrity check (payload hash %x, recorded %x) — the file is corrupt",
			version, got[:8], sum[:8])
	}
	pr := bytes.NewReader(payload)
	m, err := core.LoadModel(pr)
	if err != nil {
		return nil, nil, err
	}
	st, err := core.LoadTrainState(pr)
	if err != nil {
		return nil, nil, err
	}
	return m, st, nil
}

// List returns the stored snapshot versions in ascending order.
func (r *Registry) List() ([]int, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("online: listing registry: %w", err)
	}
	var out []int
	for _, e := range entries {
		var v int
		if n, _ := fmt.Sscanf(e.Name(), "snap-%d.raal", &v); n == 1 && v > 0 {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// WriteManifest atomically records the serving champion.
func (r *Registry) WriteManifest(m Manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return r.atomicWrite(filepath.Join(r.dir, manifestName), append(raw, '\n'))
}

// ReadManifest returns the recorded manifest; a registry that has never
// promoted reports a zero manifest, not an error.
func (r *Registry) ReadManifest() (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(r.dir, manifestName))
	if os.IsNotExist(err) {
		return Manifest{}, nil
	}
	if err != nil {
		return Manifest{}, fmt.Errorf("online: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("online: corrupt manifest: %w", err)
	}
	return m, nil
}

func (r *Registry) atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(r.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("online: creating temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("online: writing %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("online: writing %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("online: installing %s: %w", filepath.Base(path), err)
	}
	return nil
}
