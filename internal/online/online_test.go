package online

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"raal/internal/core"
	"raal/internal/encode"
	"raal/internal/sparksim"
	"raal/internal/tensor"
)

const (
	tSem   = 4
	tNodes = 6
	tRes   = sparksim.NumFeatures
	tStats = 6
)

// synthSample fabricates an encoded plan whose cost depends on node
// content and resources; scale multiplies the whole cost surface, which
// is how the tests inject a workload shift (the "same" queries suddenly
// run scale× slower than the champion learned).
func synthSample(rng *rand.Rand, scale float64) *encode.Sample {
	dim := tSem + tNodes + 2
	s := &encode.Sample{
		Nodes:    tensor.New(tNodes, dim),
		Mask:     make([]bool, tNodes),
		Children: make([][]bool, tNodes),
		Resource: make([]float64, tRes),
		Stats:    make([]float64, tStats),
	}
	n := 3 + rng.Intn(tNodes-2)
	var nodeSig float64
	for i := 0; i < tNodes; i++ {
		s.Children[i] = make([]bool, tNodes)
	}
	for i := 0; i < n; i++ {
		s.Mask[i] = true
		row := s.Nodes.Row(i)
		for d := 0; d < tSem; d++ {
			row[d] = rng.Float64()
			nodeSig += row[d]
		}
		if i > 0 {
			row[tSem+i-1] = 1
			s.Children[i][i-1] = true
			s.Nodes.Row(i - 1)[tSem+i] = -1
		}
		row[tSem+tNodes] = rng.Float64()
		row[tSem+tNodes+1] = rng.Float64()
	}
	for j := range s.Resource {
		s.Resource[j] = rng.Float64()
	}
	for j := range s.Stats {
		s.Stats[j] = rng.Float64()
	}
	mem := s.Resource[4]
	s.CostSec = scale * (2 + nodeSig + 12*(mem-0.5)*(mem-0.5) + 0.5*s.Stats[0])
	return s
}

func synthDataset(n int, seed int64, scale float64) []*encode.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*encode.Sample, n)
	for i := range out {
		out[i] = synthSample(rng, scale)
	}
	return out
}

func testModelConfig() core.Config {
	cfg := core.DefaultConfig(tSem, tNodes)
	cfg.Hidden = 16
	cfg.K = 8
	return cfg
}

// trainChampion fits a small model on the unshifted distribution and
// returns it with its resumable state.
func trainChampion(t *testing.T, epochs int) (*core.Model, *core.TrainState) {
	t.Helper()
	samples := synthDataset(200, 1, 1)
	tc := core.DefaultTrainConfig()
	tc.Epochs = epochs
	tc.LR = 5e-3
	tc.State = core.NewTrainState()
	m := core.NewModel(core.RAAL(), testModelConfig())
	if _, err := m.Fit(samples, tc); err != nil {
		t.Fatal(err)
	}
	return m, tc.State
}

func meanQ(m *core.Model, samples []*encode.Sample) float64 {
	preds := m.Predict(samples)
	var sum float64
	for i, s := range samples {
		sum += QError(preds[i], s.CostSec)
	}
	return sum / float64(len(samples))
}

func TestQError(t *testing.T) {
	cases := []struct{ pred, actual, want float64 }{
		{2, 1, 2}, {1, 2, 2}, {5, 5, 1},
	}
	for _, c := range cases {
		if got := QError(c.pred, c.actual); got != c.want {
			t.Fatalf("QError(%v,%v) = %v, want %v", c.pred, c.actual, got, c.want)
		}
	}
	for _, bad := range [][2]float64{{0, 1}, {1, 0}, {-1, 2}, {math.NaN(), 1}, {math.Inf(1), 1}} {
		if got := QError(bad[0], bad[1]); !math.IsInf(got, 1) {
			t.Fatalf("QError(%v,%v) = %v, want +Inf", bad[0], bad[1], got)
		}
	}
}

func TestReservoirDeterministicAndBounded(t *testing.T) {
	mk := func() []int {
		r := NewReservoir(32, 7)
		stream := synthDataset(500, 3, 1)
		pos := map[*encode.Sample]int{}
		for i, s := range stream {
			pos[s] = i
			r.Add(s)
		}
		if r.Len() != 32 || r.Seen() != 500 {
			t.Fatalf("len=%d seen=%d", r.Len(), r.Seen())
		}
		kept := make([]int, 0, 32)
		for _, s := range r.Snapshot() {
			kept = append(kept, pos[s])
		}
		return kept
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("reservoir is not deterministic for a fixed stream")
		}
	}
	// A reservoir retains a spread of the stream, not just a prefix: at
	// least one resident must come from the last half.
	tail := false
	stream := synthDataset(500, 3, 1)
	pos := map[*encode.Sample]int{}
	for i, s := range stream {
		pos[s] = i
	}
	r := NewReservoir(32, 7)
	for _, s := range stream {
		r.Add(s)
	}
	for _, s := range r.Snapshot() {
		if pos[s] >= 250 {
			tail = true
		}
	}
	if !tail {
		t.Fatal("reservoir kept only the stream prefix")
	}
}

func TestDriftDetector(t *testing.T) {
	d := NewDriftDetector(10, 0.9, 2.0)
	for i := 0; i < 9; i++ {
		d.Observe(5) // terrible, but the window is not full yet
		if d.Drifted() {
			t.Fatal("partial window tripped the detector")
		}
	}
	d.Observe(5)
	if !d.Drifted() {
		t.Fatal("full window of q=5 did not trip threshold 2")
	}
	d.Reset()
	if d.Drifted() {
		t.Fatal("Reset did not clear the window")
	}
	// A window that is mostly good with a small bad tail must not trip
	// the 0.9 quantile... until the tail crosses 10% of the window.
	for i := 0; i < 10; i++ {
		if i == 0 {
			d.Observe(50)
		} else {
			d.Observe(1.01)
		}
	}
	if q := d.Quantile(); q != 1.01 {
		t.Fatalf("0.9-quantile with one outlier in ten = %v, want 1.01", q)
	}
	if d.Drifted() {
		t.Fatal("single outlier tripped the quantile detector")
	}
}

func TestRegistryRoundTripAndIntegrity(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, st := trainChampion(t, 2)
	if err := reg.Save(1, m, st); err != nil {
		t.Fatal(err)
	}
	if err := reg.Save(2, m, st); err != nil {
		t.Fatal(err)
	}
	vs, err := reg.List()
	if err != nil || len(vs) != 2 || vs[0] != 1 || vs[1] != 2 {
		t.Fatalf("List = %v, %v", vs, err)
	}
	lm, lst, err := reg.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if lst.Epochs != st.Epochs {
		t.Fatalf("state epochs %d != %d", lst.Epochs, st.Epochs)
	}
	probe := synthDataset(4, 9, 1)
	want, got := m.Predict(probe), lm.Predict(probe)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("loaded model predicts differently: %v != %v", want[i], got[i])
		}
	}

	// Flip one payload byte: the checksum must catch it.
	path := filepath.Join(dir, "snap-00002.raal")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Load(2); err == nil || !strings.Contains(err.Error(), "integrity") {
		t.Fatalf("corrupt snapshot loaded without an integrity error: %v", err)
	}

	// A bare model file is not a snapshot.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snap-00003.raal"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Load(3); err == nil {
		t.Fatal("model file accepted as snapshot")
	}

	// Manifest round trip; a fresh registry reports a zero manifest.
	if err := reg.WriteManifest(Manifest{Champion: 1}); err != nil {
		t.Fatal(err)
	}
	man, err := reg.ReadManifest()
	if err != nil || man.Champion != 1 {
		t.Fatalf("manifest = %+v, %v", man, err)
	}
	fresh, _ := OpenRegistry(t.TempDir())
	if man, err := fresh.ReadManifest(); err != nil || man.Champion != 0 {
		t.Fatalf("fresh manifest = %+v, %v", man, err)
	}
}

// TestOnlineDriftPromotion is the deterministic drift drill in miniature:
// serve the champion on a shifted workload, watch rolling q-error trip
// the detector, and require the retrained challenger to win the shadow
// comparison and be promoted — after which served q-error recovers.
func TestOnlineDriftPromotion(t *testing.T) {
	champ, st := trainChampion(t, 40)
	cfg := Config{
		ReplayCap:      256,
		Seed:           5,
		DriftWindow:    32,
		DriftThreshold: 1.8,
		MinRetrain:     96,
		ShadowMin:      24,
		Train:          core.TrainConfig{Epochs: 40, Batch: 16, LR: 5e-3, Seed: 5},
	}
	mgr, err := NewManager(champ, st, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: the trained distribution. Feedback matches predictions;
	// nothing should trigger.
	preShift := synthDataset(64, 21, 1)
	for _, s := range preShift {
		v := mgr.Champion()
		pred := v.Model.Predict([]*encode.Sample{s})[0]
		mgr.Observe(s, pred, s.CostSec)
	}
	if got := mgr.Status(); got.Champion != 1 || got.Shadow != nil {
		t.Fatalf("stable workload perturbed the loop: %+v", got)
	}
	if q := meanQ(mgr.Champion().Model, preShift); q > 1.8 {
		t.Fatalf("champion never learned the base distribution: mean q-error %v", q)
	}

	// Phase 2: workload shift — the same plans now cost 3×. Stream
	// feedback until the loop has retrained, shadow-scored, and settled.
	shifted := synthDataset(600, 22, 3)
	promoted := -1
	for i, s := range shifted {
		v := mgr.Champion()
		pred := v.Model.Predict([]*encode.Sample{s})[0]
		mgr.Observe(s, pred, s.CostSec)
		if mgr.Champion().Num != 1 && promoted < 0 {
			promoted = i
		}
	}
	st2 := mgr.Status()
	if promoted < 0 {
		t.Fatalf("workload shift never promoted a challenger: %+v", st2)
	}
	if st2.Champion == 1 {
		t.Fatalf("champion rolled back unexpectedly: %+v", st2)
	}
	if len(st2.History) < 2 {
		t.Fatalf("promotion left no lineage: %+v", st2)
	}

	// Phase 3: recovery. The promoted model must price the shifted
	// workload far better than the stale champion did.
	holdout := synthDataset(64, 23, 3)
	staleQ := meanQ(champ, holdout)
	freshQ := meanQ(mgr.Champion().Model, holdout)
	if freshQ >= staleQ {
		t.Fatalf("promotion did not improve shifted q-error: stale %v, fresh %v", staleQ, freshQ)
	}
	if freshQ > 1.8 {
		t.Fatalf("promoted model still drifted: mean q-error %v", freshQ)
	}
}

// TestOnlineDeterministicLoop runs the same feedback sequence through two
// managers and requires identical promotion behavior and bit-identical
// promoted weights — the loop inherits Fit's reproducibility.
func TestOnlineDeterministicLoop(t *testing.T) {
	run := func() (*Manager, []float64) {
		champ, st := trainChampion(t, 30)
		cfg := Config{
			ReplayCap: 256, Seed: 5, DriftWindow: 32, DriftThreshold: 1.8,
			MinRetrain: 96, ShadowMin: 24,
			Train: core.TrainConfig{Epochs: 20, Batch: 16, LR: 5e-3, Seed: 5},
		}
		mgr, err := NewManager(champ, st, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range synthDataset(400, 31, 3) {
			v := mgr.Champion()
			pred := v.Model.Predict([]*encode.Sample{s})[0]
			mgr.Observe(s, pred, s.CostSec)
		}
		return mgr, mgr.Champion().Model.Predict(synthDataset(8, 33, 3))
	}
	m1, p1 := run()
	m2, p2 := run()
	if m1.Champion().Num != m2.Champion().Num {
		t.Fatalf("championship diverged: v%d vs v%d", m1.Champion().Num, m2.Champion().Num)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("promoted models diverged at probe %d: %v != %v", i, p1[i], p2[i])
		}
	}
}

func TestOnlinePinBlocksAutomation(t *testing.T) {
	champ, st := trainChampion(t, 20)
	cfg := Config{
		ReplayCap: 256, Seed: 5, DriftWindow: 16, DriftThreshold: 1.5,
		MinRetrain: 32, ShadowMin: 8,
		Train: core.TrainConfig{Epochs: 2, Batch: 16, LR: 5e-3, Seed: 5},
	}
	mgr, err := NewManager(champ, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Pin(true)
	for _, s := range synthDataset(200, 41, 4) {
		v := mgr.Champion()
		pred := v.Model.Predict([]*encode.Sample{s})[0]
		mgr.Observe(s, pred, s.CostSec)
	}
	stat := mgr.Status()
	if stat.Champion != 1 || stat.Shadow != nil {
		t.Fatalf("pinned loop still automated: %+v", stat)
	}
	if !stat.Drifted {
		t.Fatal("drift window should still be reporting the shift")
	}
}

func TestManagerRegistryResume(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	champ, st := trainChampion(t, 10)
	mgr, err := NewManager(champ, st, Config{Registry: reg, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Persist a second generation and promote it.
	m2, st2 := trainChampion(t, 20)
	if err := reg.Save(2, m2, st2); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Promote(2); err != nil {
		t.Fatal(err)
	}
	probe := synthDataset(4, 51, 1)
	want := mgr.Champion().Model.Predict(probe)

	// A new manager over the same registry resumes generation 2, not the
	// bootstrap model it was handed.
	other, _ := trainChampion(t, 2)
	mgr2, err := NewManager(other, nil, Config{Registry: reg, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if mgr2.Champion().Num != 2 {
		t.Fatalf("resumed champion v%d, want v2", mgr2.Champion().Num)
	}
	got := mgr2.Champion().Model.Predict(probe)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("resumed champion predicts differently: %v != %v", want[i], got[i])
		}
	}
	// Rollback returns to the bootstrap generation.
	if err := mgr.Rollback(); err != nil {
		t.Fatal(err)
	}
	if mgr.Champion().Num != 1 {
		t.Fatalf("rollback landed on v%d, want v1", mgr.Champion().Num)
	}
}
