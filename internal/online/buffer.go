// Package online closes the train→serve→observe loop: observed execution
// outcomes become labeled samples in a replay buffer, a drift detector
// watches the rolling q-error of served predictions, and a manager
// retrains a shadow "challenger" from the replay buffer (warm-starting
// from the serving "champion") and atomically promotes it once it
// out-scores the champion on live traffic. The whole loop is seeded and
// deterministic for a fixed feedback sequence, which is what makes the
// drift drill in the experiment harness and the promotion soak test
// reproducible.
package online

import (
	"math/rand"
	"sync"

	"raal/internal/encode"
)

// Reservoir is a seeded reservoir sampler (Algorithm R) over labeled
// feedback samples: it retains a uniform sample of everything ever
// offered while using bounded memory, so retraining sees both the old
// distribution and the shifted one in proportion to their arrival counts.
// Safe for concurrent use; deterministic for a fixed Add sequence.
type Reservoir struct {
	mu   sync.Mutex
	rng  *rand.Rand
	buf  []*encode.Sample
	cap  int
	seen int64
}

// NewReservoir returns a reservoir holding at most capacity samples,
// with replacement decisions drawn from the given seed.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		capacity = 1
	}
	return &Reservoir{rng: rand.New(rand.NewSource(seed)), cap: capacity}
}

// Add offers a sample. While the reservoir has room the sample is always
// kept; afterwards it replaces a uniformly chosen resident with
// probability cap/seen (Algorithm R), preserving uniformity over the
// whole stream.
func (r *Reservoir) Add(s *encode.Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, s)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.buf[j] = s
	}
}

// Len returns how many samples the reservoir currently holds.
func (r *Reservoir) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Seen returns how many samples have ever been offered.
func (r *Reservoir) Seen() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Snapshot returns a copy of the current contents in insertion/
// replacement order — a deterministic sequence for a deterministic Add
// history, which warm-start Fit relies on for reproducible retraining.
func (r *Reservoir) Snapshot() []*encode.Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*encode.Sample(nil), r.buf...)
}
