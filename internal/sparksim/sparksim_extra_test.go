package sparksim

import (
	"testing"

	"raal/internal/physical"
)

func TestSHJPlanPriced(t *testing.T) {
	f := newFixture(t)
	f.planner.MaxPlans = 12
	plans := f.executedPlans(t, `SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	var shj *physical.Plan
	for _, p := range plans {
		if p.CountOp(physical.ShuffledHashJoin) == 1 {
			shj = p
		}
	}
	if shj == nil {
		t.Fatal("no SHJ plan")
	}
	sec, err := f.sim.Estimate(shj, DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 {
		t.Fatalf("SHJ cost %v", sec)
	}
}

func TestBNLJCostGrowsQuadratically(t *testing.T) {
	f := newFixture(t)
	plans := f.executedPlans(t, `SELECT COUNT(*) FROM title t, movie_info_idx mii
		WHERE t.id < mii.movie_id AND t.kind_id = 2 AND mii.info_type_id = 99 AND t.production_year > 2010`)
	p := plans[0]
	if p.CountOp(physical.BroadcastNestedLoopJoin) != 1 {
		t.Fatalf("expected BNLJ:\n%s", p)
	}
	base, err := f.sim.Estimate(p, DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 {
		t.Fatalf("BNLJ cost %v", base)
	}
	// Doubling both input cardinalities must roughly quadruple the
	// nested-loop term; cost must strictly grow.
	for _, n := range p.Nodes {
		if n.Op != physical.BroadcastNestedLoopJoin {
			continue
		}
		for _, c := range n.Children {
			c.ActRows *= 4
		}
	}
	grown, err := f.sim.Estimate(p, DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	if grown <= base {
		t.Fatalf("bigger nested loop should cost more: %v vs %v", grown, base)
	}
}

func TestMeasuredSkewStretchesStage(t *testing.T) {
	f := newFixture(t)
	plans := f.executedPlans(t, joinQuery)
	var smj *physical.Plan
	for _, p := range plans {
		if p.CountOp(physical.SortMergeJoin) == 1 {
			smj = p
		}
	}
	if smj == nil {
		t.Fatal("no SMJ plan")
	}
	res := DefaultResources()
	// Compare a forced-balanced shuffle against a forced-straggler one.
	saved := map[*physical.Node]float64{}
	setSkew := func(v float64) {
		for _, n := range smj.Nodes {
			if n.Op == physical.ExchangeHashPartition {
				if _, ok := saved[n]; !ok {
					saved[n] = n.Skew
				}
				n.Skew = v
			}
		}
	}
	setSkew(1)
	balanced, err := f.sim.Estimate(smj, res)
	if err != nil {
		t.Fatal(err)
	}
	setSkew(4)
	skewed, err := f.sim.Estimate(smj, res)
	if err != nil {
		t.Fatal(err)
	}
	for n, s := range saved {
		n.Skew = s
	}
	if skewed <= balanced {
		t.Fatalf("skewed partitions should cost more: %v vs %v", skewed, balanced)
	}
}

func TestDynamicAllocationCostsMore(t *testing.T) {
	// Dynamic allocation ramps executors up over the first stages, so a
	// short query pays for under-provisioned early stages plus
	// acquisition latency.
	f := newFixture(t)
	p := f.executedPlans(t, joinQuery)[0]
	static := DefaultResources()
	static.Executors = 8
	dynamic := static
	dynamic.Dynamic = true
	cs, err := f.sim.Estimate(p, static)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := f.sim.Estimate(p, dynamic)
	if err != nil {
		t.Fatal(err)
	}
	if cd <= cs {
		t.Fatalf("dynamic allocation should cost more on a short query: %v vs %v", cd, cs)
	}
}

func TestDynamicFlagInFeatureVector(t *testing.T) {
	r := DefaultResources()
	if r.Vector()[NumFeatures-1] != 0 {
		t.Fatal("static allocation should encode 0")
	}
	r.Dynamic = true
	if r.Vector()[NumFeatures-1] != 1 {
		t.Fatal("dynamic allocation should encode 1")
	}
	norm := r.Normalized(MaxResources())
	if norm[NumFeatures-1] != 1 {
		t.Fatalf("dynamic flag lost in normalization: %v", norm)
	}
}

func TestSkewCapped(t *testing.T) {
	// Even absurd skew must not blow the model up unboundedly.
	f := newFixture(t)
	plans := f.executedPlans(t, joinQuery)
	var smj *physical.Plan
	for _, p := range plans {
		if p.CountOp(physical.SortMergeJoin) == 1 {
			smj = p
		}
	}
	if smj == nil {
		t.Fatal("no SMJ plan")
	}
	for _, n := range smj.Nodes {
		if n.Op == physical.ExchangeHashPartition {
			n.Skew = 1e9
		}
	}
	sec, err := f.sim.Estimate(smj, DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	if sec > 1e6 {
		t.Fatalf("skew cap failed: %v", sec)
	}
}
