package sparksim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomValidResources draws an arbitrary but physically valid allocation.
func randomValidResources(rng *rand.Rand) Resources {
	return Resources{
		Nodes:        1 + rng.Intn(16),
		CoresPerNode: 1 + rng.Intn(16),
		Executors:    1 + rng.Intn(16),
		ExecCores:    1 + rng.Intn(8),
		ExecMemMB:    float64(256 + rng.Intn(32768)),
		NetMBps:      float64(10 + rng.Intn(2000)),
		DiskMBps:     float64(10 + rng.Intn(2000)),
		Dynamic:      rng.Intn(2) == 0,
	}
}

func TestCostAlwaysPositiveAndFinite(t *testing.T) {
	f := newFixture(t)
	plans := f.executedPlans(t, joinQuery)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		res := randomValidResources(rng)
		for _, p := range plans {
			c, err := f.sim.Estimate(p, res)
			if err != nil || c <= 0 || c > 1e9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedAlwaysInRange(t *testing.T) {
	max := MaxResources()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomValidResources(rng).Normalized(max)
		if len(v) != NumFeatures {
			return false
		}
		for _, x := range v {
			if x < 0 || x > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMoreRowsNeverCheaper(t *testing.T) {
	// Scaling every cardinality up must not reduce the cost: the model is
	// monotone in workload size.
	f := newFixture(t)
	p := f.executedPlans(t, joinQuery)[0]
	res := DefaultResources()
	base, err := f.sim.Estimate(p, res)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range p.Nodes {
		n.ActRows *= 3
		n.RawRows *= 3
	}
	grown, err := f.sim.Estimate(p, res)
	if err != nil {
		t.Fatal(err)
	}
	if grown < base {
		t.Fatalf("3x data should not be cheaper: %v vs %v", grown, base)
	}
}
