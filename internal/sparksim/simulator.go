package sparksim

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"raal/internal/physical"
)

// Simulator prices physical plans on a simulated cluster.
type Simulator struct {
	Conf Config
	Seed int64
}

// New returns a Simulator with the given calibration.
func New(conf Config) *Simulator { return &Simulator{Conf: conf} }

// Estimate returns the simulated wall-clock seconds to execute p under res.
// If the plan has been executed by the engine (ActRows populated) the true
// cardinalities drive the model; otherwise the planner estimates do.
func (s *Simulator) Estimate(p *physical.Plan, res Resources) (float64, error) {
	b, err := s.Breakdown(p, res)
	if err != nil {
		return 0, err
	}
	return b.TotalSec, nil
}

// StageCost is the priced execution of one stage.
type StageCost struct {
	// Label names the stage by its pipelined operators, leaf first.
	Label    string
	Tasks    int
	Waves    int
	CPUSec   float64
	DiskSec  float64
	NetSec   float64
	SpillSec float64
	Sec      float64 // total contribution including overheads
}

// CostBreakdown decomposes a plan's simulated cost.
type CostBreakdown struct {
	Stages   []StageCost
	TotalSec float64
}

// stage is a maximal pipelined fragment between exchange boundaries.
type stage struct {
	ops             []*physical.Node
	scanBytes       float64 // raw table bytes read from disk
	shuffleInBytes  float64
	hashInput       bool // reads a hash-partitioned shuffle
	singleInput     bool // reads a single-partition exchange
	shuffleOutBytes float64
	broadcastBytes  float64 // hash relations broadcast into this stage
	broadcastRows   float64
	sortBytes       float64 // per-stage sort working set (total)
	hashBytes       float64 // per-stage hash-table working set (total)
	inputSkew       float64 // measured max/avg partition ratio of inputs
}

// Breakdown simulates p under res and returns per-stage costs.
func (s *Simulator) Breakdown(p *physical.Plan, res Resources) (*CostBreakdown, error) {
	if err := res.Validate(); err != nil {
		return nil, err
	}
	c := s.Conf
	useActual := false
	for _, n := range p.Nodes {
		if n.ActRows > 0 {
			useActual = true
			break
		}
	}
	rows := func(n *physical.Node) float64 {
		r := n.EstRows
		if useActual {
			r = n.ActRows
		}
		return r * c.RowScale
	}
	bytesOf := func(n *physical.Node) float64 {
		w := n.RowBytes
		if w <= 0 {
			w = 8
		}
		return rows(n) * w
	}

	var stages []*stage
	var build func(n *physical.Node) *stage
	build = func(n *physical.Node) *stage {
		st := &stage{}
		stages = append(stages, st)
		var walk func(n *physical.Node)
		walk = func(n *physical.Node) {
			for _, ch := range n.Children {
				switch ch.Op {
				case physical.ExchangeHashPartition, physical.ExchangeSinglePartition:
					child := build(ch.Children[0])
					child.shuffleOutBytes += bytesOf(ch)
					st.shuffleInBytes += bytesOf(ch)
					if ch.Op == physical.ExchangeHashPartition {
						st.hashInput = true
						if ch.Skew > st.inputSkew {
							st.inputSkew = ch.Skew
						}
					} else {
						st.singleInput = true
					}
				case physical.BroadcastExchange:
					build(ch.Children[0])
					st.broadcastBytes += bytesOf(ch)
					st.broadcastRows += rows(ch)
				default:
					walk(ch)
				}
			}
			st.ops = append(st.ops, n)
			if n.Op == physical.FileScan {
				st.scanBytes += n.RawRows * c.RowScale * maxf(n.RowBytes, 8)
			}
		}
		walk(n)
		return st
	}
	build(p.Root)

	slots := float64(res.Slots())
	memPerTask := res.ExecMemMB * 1e6 * c.MemFraction / float64(res.ExecCores)
	gcFactor := 1 + c.GCCoefPerGB*res.ExecMemMB/1024
	broadcastBudget := res.ExecMemMB * 1e6 * c.BroadcastFraction

	out := &CostBreakdown{TotalSec: c.AppStartupMs / 1000}
	order := 0
	for i := len(stages) - 1; i >= 0; i-- { // leaf-most stages first
		st := stages[i]
		stageSlots := slots
		if res.Dynamic {
			// Dynamic allocation: executors arrive over the first
			// stages, so early stages run with fewer slots. One extra
			// executor-acquisition round trip per missing executor.
			ramp := float64(order+1) / 3
			if ramp > 1 {
				ramp = 1
			}
			stageSlots = math.Max(float64(res.ExecCores), math.Floor(slots*ramp))
		}
		sc := s.priceStage(st, res, stageSlots, memPerTask, gcFactor, broadcastBudget, rows, bytesOf)
		out.Stages = append(out.Stages, sc)
		out.TotalSec += sc.Sec
		order++
	}
	if res.Dynamic {
		out.TotalSec += float64(res.Executors-1) * 0.05 // acquisition latency
	}

	// Deterministic run-to-run variance, seeded by plan and resources.
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%v|%d", p.Sig, res, s.Seed)
	unit := float64(h.Sum64()%20001)/10000 - 1 // [-1, 1]
	out.TotalSec *= 1 + c.NoiseAmplitude*unit
	return out, nil
}

func (s *Simulator) priceStage(st *stage, res Resources, slots, memPerTask, gcFactor, broadcastBudget float64,
	rows func(*physical.Node) float64, bytesOf func(*physical.Node) float64) StageCost {
	c := s.Conf

	tasks := 1
	switch {
	case st.hashInput:
		tasks = c.ShufflePartitions
	case st.singleInput:
		tasks = 1
	case st.scanBytes > 0:
		tasks = int(math.Ceil(st.scanBytes / c.PartitionBytes))
		if tasks < 1 {
			tasks = 1
		}
	}
	ft := float64(tasks)

	var cpuNs, spillBytes, broadcastPenaltyBytes float64
	broadcastOverflow := st.broadcastBytes > 0 && st.broadcastBytes > broadcastBudget

	for _, n := range st.ops {
		switch n.Op {
		case physical.FileScan:
			raw := n.RawRows * c.RowScale
			if len(n.Preds) > 0 {
				// Pushdown: decode survivors only, but evaluate the
				// pushed predicates on every raw row.
				cpuNs += rows(n)*c.ScanNsPerRow + raw*float64(len(n.Preds))*c.FilterNsPerPred
			} else {
				cpuNs += raw * c.ScanNsPerRow
			}
		case physical.Filter:
			in := rows(n.Children[0])
			cpuNs += in * float64(len(n.Preds)) * c.FilterNsPerPred
		case physical.Project:
			cpuNs += rows(n.Children[0]) * c.ProjectNsPerRow
		case physical.Sort:
			in := rows(n.Children[0])
			perTask := in / ft
			if perTask > 1 {
				cpuNs += in * c.SortNsPerRow * math.Log2(perTask+1)
			}
			ws := bytesOf(n.Children[0]) / ft
			if ws > memPerTask {
				spillBytes += (ws - memPerTask) * ft
			}
			st.sortBytes += bytesOf(n.Children[0])
		case physical.SortMergeJoin:
			cpuNs += (rows(n.Children[0]) + rows(n.Children[1]) + rows(n)) * c.MergeNsPerRow
		case physical.BroadcastHashJoin:
			probe := rows(n.Children[0])
			factor := 1.0
			if broadcastOverflow {
				factor = 2 // disk-backed lookups
			}
			cpuNs += (probe + rows(n)) * c.HashProbeNsPerRow * factor
		case physical.ShuffledHashJoin:
			// Build the smaller shuffled side per partition, probe the
			// other; the build hash table is a per-task working set.
			l, r := rows(n.Children[0]), rows(n.Children[1])
			build, probe := r, l
			buildBytes := bytesOf(n.Children[1])
			if l < r {
				build, probe = l, r
				buildBytes = bytesOf(n.Children[0])
			}
			cpuNs += build*c.HashBuildNsPerRow + (probe+rows(n))*c.HashProbeNsPerRow
			ws := buildBytes / ft
			if ws > memPerTask {
				spillBytes += (ws - memPerTask) * ft
			}
			st.hashBytes += buildBytes
		case physical.BroadcastNestedLoopJoin:
			// Quadratic probe: every probe row scans the whole broadcast
			// side (~2ns per comparison across the stage).
			cpuNs += rows(n.Children[0]) * rows(n.Children[1]) * 2
		case physical.HashAggregate, physical.SortAggregate:
			in := rows(n.Children[0])
			cpuNs += in * c.AggNsPerRow
			ws := bytesOf(n) / ft
			if ws > memPerTask {
				spillBytes += (ws - memPerTask) * ft
			}
			st.hashBytes += bytesOf(n)
		case physical.LocalLimit:
			cpuNs += rows(n) * c.ProjectNsPerRow
		}
	}

	if broadcastOverflow {
		broadcastPenaltyBytes = st.broadcastBytes * c.BroadcastOverflowPenalty
	}

	// Storage/page cache: with more cluster memory a growing share of
	// scan and shuffle bytes are served from memory instead of disk.
	clusterCache := float64(res.Executors) * res.ExecMemMB * 1e6 * c.CacheFraction
	ioBytes := st.scanBytes + st.shuffleInBytes
	hit := 0.0
	if ioBytes > 0 {
		hit = c.MaxCacheHit * math.Min(1, clusterCache/ioBytes)
	}

	diskBytes := st.scanBytes*(1-hit) + st.shuffleOutBytes + spillBytes*c.SpillPenalty + broadcastPenaltyBytes
	netBytes := st.shuffleInBytes * (1 - hit)

	cpuSec := cpuNs / 1e9 * gcFactor
	diskSec := diskBytes / (res.DiskMBps * 1e6)
	netSec := netBytes / (res.NetMBps * 1e6)
	spillSec := spillBytes * c.SpillPenalty / (res.DiskMBps * 1e6)

	perTaskSec := (cpuSec + diskSec + netSec) / ft
	waves := math.Ceil(ft / slots)
	skew := c.SkewFactor
	if st.inputSkew > 1 {
		// Measured partition imbalance: the straggler task processes
		// inputSkew× the average partition.
		skew = st.inputSkew - 1
		if skew > 4 {
			skew = 4
		}
	}
	stageSec := perTaskSec * (waves - 1 + 1 + skew) // last wave straggles
	stageSec += ft / slots * c.TaskOverheadMs / 1000
	stageSec += c.StageOverheadMs / 1000

	// Broadcast distribution: collect at the driver, ship to every
	// executor, build the hash relation single-threaded.
	if st.broadcastBytes > 0 {
		stageSec += st.broadcastBytes * float64(1+res.Executors) / (res.NetMBps * 1e6)
		stageSec += st.broadcastRows * c.HashBuildNsPerRow / 1e9 * gcFactor
	}

	return StageCost{
		Label: stageLabel(st),
		Tasks: tasks, Waves: int(waves),
		CPUSec: cpuSec, DiskSec: diskSec, NetSec: netSec, SpillSec: spillSec,
		Sec: stageSec,
	}
}

// stageLabel names a stage by its operator pipeline, leaf first.
func stageLabel(st *stage) string {
	parts := make([]string, 0, len(st.ops))
	for _, n := range st.ops {
		switch n.Op {
		case physical.FileScan:
			parts = append(parts, "FileScan("+n.Table+")")
		case physical.Project, physical.Filter:
			// noise in a label; skip
		default:
			parts = append(parts, n.Op.String())
		}
	}
	if len(parts) == 0 {
		parts = append(parts, "pipeline")
	}
	return strings.Join(parts, ">")
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
