// Package sparksim simulates the execution of a physical plan on a Spark
// cluster, converting (plan, true cardinalities, resource allocation) into
// a wall-clock cost.
//
// It substitutes for the paper's Tencent/Ali Cloud clusters (Table III) and
// realizes the resource phenomena of Sec. III that motivate a
// resource-aware cost model:
//
//   - more executor memory reduces spill but inflates GC/JVM overhead, so
//     cost over memory is U-shaped rather than monotone;
//   - broadcast joins fall off a cliff when the build side no longer fits
//     in the executor's broadcast budget, so the SMJ/BHJ winner flips with
//     memory;
//   - executors × cores determine task slots, so the same plan costs
//     differently under different parallelism.
package sparksim

import "fmt"

// Resources is a resource allocation for one query, mirroring the paper's
// Table I configuration vocabulary.
type Resources struct {
	Nodes        int     // cluster nodes
	CoresPerNode int     // physical cores per node
	Executors    int     // executors granted to the application
	ExecCores    int     // cores per executor (E-Core)
	ExecMemMB    float64 // memory per executor (E-Memory)
	NetMBps      float64 // network throughput between nodes (N-throughput)
	DiskMBps     float64 // disk read/write throughput (D-throughput)

	// Dynamic marks dynamic resource allocation (paper Sec. II-A): the
	// application acquires executors gradually instead of holding the
	// full set from the start, so early stages run under-provisioned.
	Dynamic bool
}

// DefaultResources matches the paper's cluster shape: 4 nodes × 4 cores,
// 16 GB per node, with a 2-executor × 2-core × 4 GB allocation.
func DefaultResources() Resources {
	return Resources{
		Nodes: 4, CoresPerNode: 4,
		Executors: 2, ExecCores: 2, ExecMemMB: 4096,
		NetMBps: 120, DiskMBps: 180,
	}
}

// MaxResources is the "system performs a single query task" allocation the
// paper normalizes against in Eq. 1.
func MaxResources() Resources {
	return Resources{
		Nodes: 4, CoresPerNode: 4,
		Executors: 8, ExecCores: 4, ExecMemMB: 14336,
		NetMBps: 1000, DiskMBps: 500,
	}
}

// Slots returns the number of concurrently runnable tasks.
func (r Resources) Slots() int {
	s := r.Executors * r.ExecCores
	if s < 1 {
		s = 1
	}
	return s
}

// Validate checks that the allocation is physically sensible.
func (r Resources) Validate() error {
	switch {
	case r.Nodes < 1:
		return fmt.Errorf("sparksim: need at least 1 node, got %d", r.Nodes)
	case r.CoresPerNode < 1:
		return fmt.Errorf("sparksim: need at least 1 core per node, got %d", r.CoresPerNode)
	case r.Executors < 1:
		return fmt.Errorf("sparksim: need at least 1 executor, got %d", r.Executors)
	case r.ExecCores < 1:
		return fmt.Errorf("sparksim: need at least 1 core per executor, got %d", r.ExecCores)
	case r.ExecMemMB <= 0:
		return fmt.Errorf("sparksim: executor memory must be positive, got %v", r.ExecMemMB)
	case r.NetMBps <= 0 || r.DiskMBps <= 0:
		return fmt.Errorf("sparksim: throughputs must be positive (net=%v disk=%v)", r.NetMBps, r.DiskMBps)
	}
	return nil
}

// NumFeatures is the length of a resource feature vector.
const NumFeatures = 8

// Vector returns the raw feature values in Table I order, plus the
// dynamic-allocation flag.
func (r Resources) Vector() []float64 {
	dyn := 0.0
	if r.Dynamic {
		dyn = 1
	}
	return []float64{
		float64(r.Nodes), float64(r.CoresPerNode),
		float64(r.Executors), float64(r.ExecCores),
		r.ExecMemMB, r.NetMBps, r.DiskMBps, dyn,
	}
}

// Normalized returns the features scaled into [0,1] by the system maxima
// (Eq. 1: r* = r / max(r)).
func (r Resources) Normalized(max Resources) []float64 {
	v := r.Vector()
	m := max.Vector()
	out := make([]float64, len(v))
	for i := range v {
		if m[i] > 0 {
			out[i] = v[i] / m[i]
		} else {
			out[i] = v[i] // flag features (e.g. Dynamic) pass through
		}
		if out[i] > 1 {
			out[i] = 1
		}
	}
	return out
}

func (r Resources) String() string {
	return fmt.Sprintf("%dn×%dc %dex×%dc %0.fMB net=%.0f disk=%.0f",
		r.Nodes, r.CoresPerNode, r.Executors, r.ExecCores, r.ExecMemMB, r.NetMBps, r.DiskMBps)
}
