package sparksim

import "testing"

func TestDynamicRampNeverBelowOneExecutor(t *testing.T) {
	// Even on the first stage, dynamic allocation must leave at least one
	// executor's worth of slots.
	f := newFixture(t)
	p := f.executedPlans(t, joinQuery)[0]
	res := DefaultResources()
	res.Dynamic = true
	res.Executors = 8
	res.ExecCores = 4
	b, err := f.sim.Breakdown(p, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Stages) == 0 || b.TotalSec <= 0 {
		t.Fatalf("degenerate breakdown: %+v", b)
	}
}

func TestDynamicConvergesOnLongPlans(t *testing.T) {
	// Once the ramp completes, a dynamic allocation's marginal stage cost
	// matches static; the total difference is bounded by the early-stage
	// penalty plus acquisition latency.
	f := newFixture(t)
	plans := f.executedPlans(t, `SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
		WHERE t.id = mc.movie_id AND t.id = mk.movie_id
		AND mc.company_id = 9 AND mk.keyword_id < 200`)
	p := plans[0]
	static := DefaultResources()
	dynamic := static
	dynamic.Dynamic = true
	cs, err := f.sim.Estimate(p, static)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := f.sim.Estimate(p, dynamic)
	if err != nil {
		t.Fatal(err)
	}
	if cd < cs {
		t.Fatalf("dynamic should not be cheaper: %v vs %v", cd, cs)
	}
	if cd > cs*3 {
		t.Fatalf("dynamic penalty unreasonably large: %v vs %v", cd, cs)
	}
}

func TestStageLabels(t *testing.T) {
	f := newFixture(t)
	p := f.executedPlans(t, joinQuery)[0]
	b, err := f.sim.Breakdown(p, DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range b.Stages {
		if st.Label == "" {
			t.Fatalf("stage missing label: %+v", st)
		}
	}
	// The leaf-most stage is a table scan.
	if got := b.Stages[0].Label; len(got) < 8 || got[:8] != "FileScan" {
		t.Fatalf("first stage label %q should start with FileScan", got)
	}
}
