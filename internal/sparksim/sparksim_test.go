package sparksim

import (
	"math"
	"testing"

	"raal/internal/cardest"
	"raal/internal/datagen"
	"raal/internal/engine"
	"raal/internal/logical"
	"raal/internal/physical"
	"raal/internal/sql"
)

// fixture builds executed plans over the synthetic IMDB.
type fixture struct {
	planner *physical.Planner
	binder  *logical.Binder
	eng     *engine.Engine
	sim     *Simulator
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	db := datagen.IMDB(0.3, 1)
	est, err := cardest.New(db, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		planner: physical.NewPlanner(est),
		binder:  logical.NewBinder(db),
		eng:     engine.New(db),
		sim:     New(DefaultConfig()),
	}
}

// executedPlans parses, plans, and runs the query so ActRows is populated.
func (f *fixture) executedPlans(t *testing.T, query string) []*physical.Plan {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	q, err := f.binder.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := f.planner.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if _, err := f.eng.Run(p); err != nil {
			t.Fatal(err)
		}
	}
	return plans
}

const joinQuery = `SELECT COUNT(*) FROM title t, movie_companies mc
	WHERE t.id = mc.movie_id AND mc.company_id < 500`

func TestResourceValidation(t *testing.T) {
	bad := []Resources{
		{},
		{Nodes: 1, CoresPerNode: 1, Executors: 0, ExecCores: 1, ExecMemMB: 1024, NetMBps: 100, DiskMBps: 100},
		{Nodes: 1, CoresPerNode: 1, Executors: 1, ExecCores: 1, ExecMemMB: -5, NetMBps: 100, DiskMBps: 100},
		{Nodes: 1, CoresPerNode: 1, Executors: 1, ExecCores: 1, ExecMemMB: 1024, NetMBps: 0, DiskMBps: 100},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
	if err := DefaultResources().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedInUnitRange(t *testing.T) {
	v := DefaultResources().Normalized(MaxResources())
	if len(v) != NumFeatures {
		t.Fatalf("feature length %d", len(v))
	}
	for i, x := range v {
		if x < 0 || x > 1 {
			t.Fatalf("feature %d = %v outside [0,1]", i, x)
		}
	}
}

func TestEstimateDeterministic(t *testing.T) {
	f := newFixture(t)
	p := f.executedPlans(t, joinQuery)[0]
	res := DefaultResources()
	a, err := f.sim.Estimate(p, res)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := f.sim.Estimate(p, res)
	if a != b {
		t.Fatalf("estimate not deterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("cost must be positive, got %v", a)
	}
}

func TestSeedChangesNoise(t *testing.T) {
	f := newFixture(t)
	p := f.executedPlans(t, joinQuery)[0]
	res := DefaultResources()
	a, _ := f.sim.Estimate(p, res)
	f.sim.Seed = 99
	b, _ := f.sim.Estimate(p, res)
	if a == b {
		t.Fatal("different seeds should perturb the estimate")
	}
	if math.Abs(a-b)/a > 2.5*f.sim.Conf.NoiseAmplitude {
		t.Fatalf("noise too large: %v vs %v", a, b)
	}
}

func TestMoreExecutorsSpeedUpShufflePlan(t *testing.T) {
	f := newFixture(t)
	plans := f.executedPlans(t, joinQuery)
	var smj *physical.Plan
	for _, p := range plans {
		if p.CountOp(physical.SortMergeJoin) > 0 {
			smj = p
			break
		}
	}
	if smj == nil {
		t.Fatal("no SMJ plan")
	}
	res1 := DefaultResources()
	res1.Executors = 1
	res8 := DefaultResources()
	res8.Executors = 8
	t1, _ := f.sim.Estimate(smj, res1)
	t8, _ := f.sim.Estimate(smj, res8)
	if t8 >= t1 {
		t.Fatalf("8 executors (%vs) should beat 1 executor (%vs) on a shuffle plan", t8, t1)
	}
}

func TestMemoryEffectIsNonMonotone(t *testing.T) {
	// Sec. III: increasing executor memory does not monotonically reduce
	// cost. Over a wide sweep the minimum must be interior or the curve
	// must rise at the top end.
	f := newFixture(t)
	p := f.executedPlans(t, joinQuery)[0]
	var costs []float64
	for _, gb := range []float64{1, 2, 3, 4, 6, 8, 12} {
		res := DefaultResources()
		res.ExecMemMB = gb * 1024
		c, err := f.sim.Estimate(p, res)
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, c)
	}
	minIdx := 0
	for i, c := range costs {
		if c < costs[minIdx] {
			minIdx = i
		}
	}
	if minIdx == len(costs)-1 {
		t.Fatalf("cost monotonically decreasing with memory: %v", costs)
	}
	if costs[len(costs)-1] <= costs[minIdx]*1.001 {
		t.Fatalf("no GC penalty visible at high memory: %v", costs)
	}
}

func TestBroadcastOverflowCliff(t *testing.T) {
	// A broadcast plan must be substantially more expensive when the
	// build side exceeds the broadcast budget.
	f := newFixture(t)
	plans := f.executedPlans(t, `SELECT COUNT(*) FROM title t, movie_keyword mk
		WHERE t.id = mk.movie_id`)
	var bhj *physical.Plan
	for _, p := range plans {
		if p.CountOp(physical.BroadcastHashJoin) > 0 {
			bhj = p
			break
		}
	}
	if bhj == nil {
		t.Fatal("no BHJ plan")
	}
	small := DefaultResources()
	small.ExecMemMB = 512
	big := DefaultResources()
	big.ExecMemMB = 12288
	cSmall, _ := f.sim.Estimate(bhj, small)
	cBig, _ := f.sim.Estimate(bhj, big)
	if cSmall <= cBig {
		t.Fatalf("broadcast under tiny memory (%vs) should exceed big memory (%vs)", cSmall, cBig)
	}
}

func TestPushdownVariantsDiffer(t *testing.T) {
	// The paper's single-table observation: the two scan variants have
	// different costs, and the gap changes with memory.
	f := newFixture(t)
	plans := f.executedPlans(t, `SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 300`)
	if len(plans) != 2 {
		t.Fatalf("want 2 single-table plans, got %d", len(plans))
	}
	res := DefaultResources()
	a, _ := f.sim.Estimate(plans[0], res)
	b, _ := f.sim.Estimate(plans[1], res)
	if a == b {
		t.Fatal("scan variants should not cost the same")
	}
}

func TestBreakdownStagesAndPositivity(t *testing.T) {
	f := newFixture(t)
	plans := f.executedPlans(t, joinQuery)
	var smj *physical.Plan
	for _, p := range plans {
		if p.CountOp(physical.SortMergeJoin) > 0 {
			smj = p
		}
	}
	b, err := f.sim.Breakdown(smj, DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	// SMJ plan: two scan stages, the join+partial-agg stage, and the
	// final aggregate stage.
	if len(b.Stages) != 4 {
		t.Fatalf("SMJ plan should form 4 stages, got %d", len(b.Stages))
	}
	var sum float64
	for _, st := range b.Stages {
		if st.Sec <= 0 || st.Tasks < 1 || st.Waves < 1 {
			t.Fatalf("degenerate stage: %+v", st)
		}
		sum += st.Sec
	}
	if b.TotalSec < sum*0.9 {
		t.Fatalf("total %v inconsistent with stage sum %v", b.TotalSec, sum)
	}
}

func TestSingleTableStageCount(t *testing.T) {
	f := newFixture(t)
	p := f.executedPlans(t, `SELECT COUNT(*) FROM movie_keyword mk`)[0]
	b, err := f.sim.Breakdown(p, DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	// scan+partial agg stage, then the single-partition final stage.
	if len(b.Stages) != 2 {
		t.Fatalf("want 2 stages, got %d", len(b.Stages))
	}
	if b.Stages[len(b.Stages)-1].Tasks != 1 {
		t.Fatalf("final aggregate stage should have 1 task, got %d", b.Stages[len(b.Stages)-1].Tasks)
	}
}

func TestFasterDiskReducesCost(t *testing.T) {
	f := newFixture(t)
	p := f.executedPlans(t, joinQuery)[0]
	slow := DefaultResources()
	slow.DiskMBps = 40
	fast := DefaultResources()
	fast.DiskMBps = 500
	cSlow, _ := f.sim.Estimate(p, slow)
	cFast, _ := f.sim.Estimate(p, fast)
	if cFast >= cSlow {
		t.Fatalf("faster disk should not cost more: %v vs %v", cFast, cSlow)
	}
}

func TestEstimateUsesEstimatesWhenNotExecuted(t *testing.T) {
	f := newFixture(t)
	stmt, _ := sql.Parse(joinQuery)
	q, err := f.binder.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := f.planner.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	// Not executed: ActRows all zero, estimates drive the model.
	c, err := f.sim.Estimate(plans[0], DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Fatalf("estimate-driven cost %v", c)
	}
}

func TestInvalidResourcesRejected(t *testing.T) {
	f := newFixture(t)
	p := f.executedPlans(t, joinQuery)[0]
	if _, err := f.sim.Estimate(p, Resources{}); err == nil {
		t.Fatal("invalid resources should be rejected")
	}
}

func TestSlots(t *testing.T) {
	r := Resources{Executors: 3, ExecCores: 4}
	if r.Slots() != 12 {
		t.Fatalf("Slots = %d", r.Slots())
	}
	if (Resources{}).Slots() != 1 {
		t.Fatal("zero resources should clamp to 1 slot")
	}
}
