package sparksim

// Config holds the simulator's calibration constants. The defaults were
// tuned so that query times land in the paper's observed range (roughly
// 2–60 s on the scaled-down data) and the Sec. III phenomena appear at
// realistic memory sizes.
type Config struct {
	// RowScale multiplies every cardinality, pretending the scaled-down
	// synthetic tables are RowScale× bigger (the paper's IMDB is 7.2 GB).
	RowScale float64

	// PartitionBytes is the input split size for scan stages
	// (spark.sql.files.maxPartitionBytes).
	PartitionBytes float64

	// ShufflePartitions is the reduce-side partition count
	// (spark.sql.shuffle.partitions, scaled down from Spark's 200).
	ShufflePartitions int

	// MemFraction is the fraction of executor memory usable by execution
	// (spark.memory.fraction).
	MemFraction float64

	// BroadcastFraction is the fraction of executor memory a broadcast
	// hash relation may occupy before degrading.
	BroadcastFraction float64

	// Per-row CPU costs in nanoseconds.
	ScanNsPerRow      float64
	FilterNsPerPred   float64
	ProjectNsPerRow   float64
	SortNsPerRow      float64 // multiplied by log2(rows per task)
	HashBuildNsPerRow float64
	HashProbeNsPerRow float64
	MergeNsPerRow     float64
	AggNsPerRow       float64

	// CacheFraction is the share of each executor's memory acting as
	// storage/page cache; cached bytes are not re-read from disk. This is
	// the mechanism by which *more memory speeds queries up* — until the
	// working data fits, after which only GC overhead keeps growing.
	CacheFraction float64

	// MaxCacheHit caps the achievable cache hit ratio (cold reads, shuffle
	// files evicted between stages).
	MaxCacheHit float64

	// GCCoefPerGB inflates CPU time per GB of executor heap (bigger heaps
	// mean longer collection pauses even at low occupancy).
	GCCoefPerGB float64

	// SpillPenalty is the number of extra disk passes over bytes that do
	// not fit in the per-task memory budget.
	SpillPenalty float64

	// BroadcastOverflowPenalty multiplies the disk traffic of a broadcast
	// build side that exceeds the broadcast budget (OOM-avoidance
	// fallback: rebuild + disk-backed map).
	BroadcastOverflowPenalty float64

	// Scheduling overheads in milliseconds.
	TaskOverheadMs  float64
	StageOverheadMs float64
	AppStartupMs    float64

	// SkewFactor stretches the last wave of a stage (stragglers).
	SkewFactor float64

	// NoiseAmplitude is the relative amplitude of the deterministic
	// per-(plan,resources) noise, emulating run-to-run variance.
	NoiseAmplitude float64
}

// DefaultConfig returns the calibrated constants.
func DefaultConfig() Config {
	return Config{
		RowScale:          1200,
		PartitionBytes:    32 << 20,
		ShufflePartitions: 24,
		MemFraction:       0.6,
		BroadcastFraction: 0.25,
		CacheFraction:     0.30,
		MaxCacheHit:       0.80,

		ScanNsPerRow:      70,
		FilterNsPerPred:   18,
		ProjectNsPerRow:   6,
		SortNsPerRow:      14,
		HashBuildNsPerRow: 80,
		HashProbeNsPerRow: 55,
		MergeNsPerRow:     45,
		AggNsPerRow:       65,

		GCCoefPerGB:              0.045,
		SpillPenalty:             2.2,
		BroadcastOverflowPenalty: 5.0,

		TaskOverheadMs:  6,
		StageOverheadMs: 40,
		AppStartupMs:    350,

		SkewFactor:     0.25,
		NoiseAmplitude: 0.04,
	}
}
