package core

import (
	"testing"

	"raal/internal/tensor"
)

// TestWarmPredictAllocatesNoMatrices pins the tape pool's core guarantee:
// once the serial scorer has seen the corpus, repeated Predict calls take
// every matrix from the leased tape's arena — zero matrix allocations.
func TestWarmPredictAllocatesNoMatrices(t *testing.T) {
	samples := benchSamples(64)
	tc := quickTrain()
	tc.Epochs = 1
	m, _, err := Train(samples[:32], RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	opt := PredictOpts{Workers: 1, ChunkSize: 32}
	warm := m.PredictWith(samples, opt) // first pass populates the arena

	before := tensor.Allocs()
	var got []float64
	for i := 0; i < 5; i++ {
		got = m.PredictWith(samples, opt)
	}
	if d := tensor.Allocs() - before; d != 0 {
		t.Fatalf("5 warm Predict passes allocated %d matrices, want 0", d)
	}
	// Recycled matrices must not change a single bit of the output.
	for i := range warm {
		if got[i] != warm[i] {
			t.Fatalf("prediction %d drifted across warm passes: %v != %v", i, got[i], warm[i])
		}
	}
}

// TestPooledPredictionsMatchFreshModel loads the same weights into a
// second model (cold tape pool) and checks the warm, arena-recycling
// model predicts bit-identically: pooling may change where values live,
// never what they are.
func TestPooledPredictionsMatchFreshModel(t *testing.T) {
	samples := benchSamples(48)
	tc := quickTrain()
	tc.Epochs = 1
	m, _, err := Train(samples[:32], RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // make the pool thoroughly warm
		m.Predict(samples)
	}
	fresh := m.replica() // shares weights, owns a cold tape pool
	warm := m.Predict(samples)
	cold := fresh.Predict(samples)
	for i := range warm {
		if warm[i] != cold[i] {
			t.Fatalf("prediction %d: warm pooled %v != cold fresh %v", i, warm[i], cold[i])
		}
	}
}

// TestPredictAllocsPerOpCeiling is the benchmark-driven regression gate:
// the pre-arena scorer ran at ~63,000 allocs/op on this exact workload
// (512 samples, serial, chunk 32); the pooled scorer must stay at least
// 10x below that. A bad arena regression (for example, a Reset that stops
// recycling) trips this long before it shows up in wall-clock noise.
func TestPredictAllocsPerOpCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-driven; skipped in -short")
	}
	samples := benchSamples(512)
	tc := quickTrain()
	tc.Epochs = 1
	m, _, err := Train(samples[:128], RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	opt := PredictOpts{Workers: 1, ChunkSize: 32}
	m.PredictWith(samples, opt) // warm outside the measurement

	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.PredictWith(samples, opt)
		}
	})
	const ceiling = 6000 // seed: 63,557 allocs/op; arena steady state: ~2,600
	if got := r.AllocsPerOp(); got > ceiling {
		t.Fatalf("Predict allocations regressed: %d allocs/op, ceiling %d", got, ceiling)
	}
}
