package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestFitResumeBitEqual(t *testing.T) {
	samples := synthDataset(96, 7)
	const k = 3

	// Reference: one uninterrupted run of 2k epochs.
	ref := NewModel(RAAL(), testConfig())
	tcRef := quickTrain()
	tcRef.Epochs = 2 * k
	tcRef.State = NewTrainState()
	refRes, err := ref.Fit(samples, tcRef)
	if err != nil {
		t.Fatal(err)
	}

	// Continuation: k epochs, round-trip model+state through Save/Load,
	// then k more epochs on the loaded copies.
	first := NewModel(RAAL(), testConfig())
	tc1 := quickTrain()
	tc1.Epochs = k
	tc1.State = NewTrainState()
	res1, err := first.Fit(samples, tc1)
	if err != nil {
		t.Fatal(err)
	}
	var mbuf, sbuf bytes.Buffer
	if err := first.Save(&mbuf); err != nil {
		t.Fatal(err)
	}
	if err := tc1.State.Save(&sbuf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&mbuf)
	if err != nil {
		t.Fatal(err)
	}
	st, err := LoadTrainState(&sbuf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epochs != k {
		t.Fatalf("loaded state epochs = %d, want %d", st.Epochs, k)
	}
	tc2 := quickTrain()
	tc2.Epochs = k
	tc2.State = st
	res2, err := loaded.Fit(samples, tc2)
	if err != nil {
		t.Fatal(err)
	}

	// Weights bit-equal.
	rp, lp := ref.Params(), loaded.Params()
	if len(rp) != len(lp) {
		t.Fatalf("param count %d vs %d", len(rp), len(lp))
	}
	for i := range rp {
		a, b := rp[i].Var.Value.Data, lp[i].Var.Value.Data
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("param %s[%d]: uninterrupted %v != resumed %v", rp[i].Name, j, a[j], b[j])
			}
		}
	}
	// Loss curves bit-equal: the resumed run's curve must be the exact
	// tail of the uninterrupted run's, and the first leg its exact head.
	for e := 0; e < k; e++ {
		if refRes.LossCurve[e] != res1.LossCurve[e] {
			t.Fatalf("epoch %d loss: %v != %v", e, refRes.LossCurve[e], res1.LossCurve[e])
		}
		if refRes.LossCurve[k+e] != res2.LossCurve[e] {
			t.Fatalf("epoch %d loss: %v != %v", k+e, refRes.LossCurve[k+e], res2.LossCurve[e])
		}
	}
	// Optimizer state bit-equal, including the step counter.
	if tcRef.State.Opt.T != tc2.State.Opt.T {
		t.Fatalf("optimizer step counter %d vs %d", tcRef.State.Opt.T, tc2.State.Opt.T)
	}
	if tcRef.State.Epochs != tc2.State.Epochs {
		t.Fatalf("state epochs %d vs %d", tcRef.State.Epochs, tc2.State.Epochs)
	}
	for name, m := range tcRef.State.Opt.M {
		m2, ok := tc2.State.Opt.M[name]
		if !ok {
			t.Fatalf("resumed optimizer state missing moments for %s", name)
		}
		for j := range m {
			if m[j] != m2[j] {
				t.Fatalf("first moment %s[%d]: %v != %v", name, j, m[j], m2[j])
			}
		}
		v, v2 := tcRef.State.Opt.V[name], tc2.State.Opt.V[name]
		for j := range v {
			if v[j] != v2[j] {
				t.Fatalf("second moment %s[%d]: %v != %v", name, j, v[j], v2[j])
			}
		}
	}
}

func TestFitResumeShardedBitEqual(t *testing.T) {
	// The warm-start path must compose with sharded data parallelism:
	// resuming with Workers=4/ShardSize=4 reproduces the uninterrupted
	// parallel run exactly.
	samples := synthDataset(64, 11)
	const k = 2
	par := func(tc TrainConfig) TrainConfig {
		tc.Workers = 4
		tc.ShardSize = 4
		return tc
	}

	ref := NewModel(RAAL(), testConfig())
	tcRef := par(quickTrain())
	tcRef.Epochs = 2 * k
	if _, err := ref.Fit(samples, tcRef); err != nil {
		t.Fatal(err)
	}

	m := NewModel(RAAL(), testConfig())
	tc1 := par(quickTrain())
	tc1.Epochs = k
	tc1.State = NewTrainState()
	if _, err := m.Fit(samples, tc1); err != nil {
		t.Fatal(err)
	}
	tc2 := par(quickTrain())
	tc2.Epochs = k
	tc2.State = tc1.State
	if _, err := m.Fit(samples, tc2); err != nil {
		t.Fatal(err)
	}

	rp, mp := ref.Params(), m.Params()
	for i := range rp {
		a, b := rp[i].Var.Value.Data, mp[i].Var.Value.Data
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("param %s[%d]: uninterrupted %v != resumed %v", rp[i].Name, j, a[j], b[j])
			}
		}
	}
}

func TestFitResumeConfigMismatch(t *testing.T) {
	samples := synthDataset(32, 3)
	m := NewModel(RAAL(), testConfig())
	tc := quickTrain()
	tc.Epochs = 1
	tc.State = NewTrainState()
	if _, err := m.Fit(samples, tc); err != nil {
		t.Fatal(err)
	}

	// A model with a different hidden size cannot absorb the snapshot.
	cfg := testConfig()
	cfg.Hidden = 24
	other := NewModel(RAAL(), cfg)
	tc2 := quickTrain()
	tc2.Epochs = 1
	tc2.State = tc.State
	_, err := other.Fit(samples, tc2)
	if err == nil {
		t.Fatal("resuming onto a mismatched architecture succeeded")
	}
	if !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("mismatch error not descriptive: %v", err)
	}
}

func TestTrainStateRoundTripAndCorruption(t *testing.T) {
	st := NewTrainState()
	st.Epochs = 5
	st.Opt.T = 40
	st.Opt.M["w"] = []float64{1, 2, 3}
	st.Opt.V["w"] = []float64{4, 5, 6}

	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), buf.Bytes()...)

	got, err := LoadTrainState(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epochs != 5 || got.Opt.T != 40 || got.Opt.M["w"][2] != 3 || got.Opt.V["w"][0] != 4 {
		t.Fatalf("round trip mangled state: %+v", got)
	}

	// Clone is deep: mutating the clone leaves the original alone.
	c := got.Clone()
	c.Opt.M["w"][0] = 99
	c.Epochs = 1
	if got.Opt.M["w"][0] != 1 || got.Epochs != 5 {
		t.Fatal("Clone shares storage with the original")
	}

	// Truncations at every prefix fail with an error, never a panic.
	for cut := 0; cut < len(full); cut++ {
		if _, err := LoadTrainState(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A model file is not a train state.
	var mbuf bytes.Buffer
	if err := NewModel(RAAL(), testConfig()).Save(&mbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrainState(&mbuf); err == nil {
		t.Fatal("model file accepted as train state")
	}
}

func TestModelClone(t *testing.T) {
	samples := synthDataset(48, 5)
	m, _, err := Train(samples, RAAL(), testConfig(), quickTrain())
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()

	// Clone predicts identically...
	want := m.Predict(samples[:8])
	got := c.Predict(samples[:8])
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("clone prediction %d: %v != %v", i, want[i], got[i])
		}
	}
	// ...and training the clone never perturbs the original.
	before := m.Predict(samples[:8])
	tc := quickTrain()
	tc.Epochs = 2
	if _, err := c.Fit(samples, tc); err != nil {
		t.Fatal(err)
	}
	after := m.Predict(samples[:8])
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("training the clone changed the original: %v != %v", before[i], after[i])
		}
	}
	changed := false
	now := c.Predict(samples[:8])
	for i := range now {
		if now[i] != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("training the clone changed nothing")
	}
}
