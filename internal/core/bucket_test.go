package core

import (
	"math/rand"
	"testing"

	"raal/internal/encode"
	"raal/internal/sparksim"
	"raal/internal/telemetry"
	"raal/internal/tensor"
)

// maskedSample fabricates a sample with a random active length (1..tNodes)
// and, sometimes, interior mask holes — the adversarial shapes for the
// length-bucketed scheduler, whose bucketing key is the LAST true mask
// index, not the count of true entries.
func maskedSample(rng *rand.Rand) *encode.Sample {
	dim := tSem + tNodes + 2
	s := &encode.Sample{
		Nodes:    tensor.New(tNodes, dim),
		Mask:     make([]bool, tNodes),
		Children: make([][]bool, tNodes),
		Resource: make([]float64, sparksim.NumFeatures),
		Stats:    make([]float64, tStats),
	}
	for i := 0; i < tNodes; i++ {
		s.Children[i] = make([]bool, tNodes)
	}
	n := 1 + rng.Intn(tNodes) // active length 1..tNodes
	for i := 0; i < n; i++ {
		s.Mask[i] = true
		row := s.Nodes.Row(i)
		for d := 0; d < tSem; d++ {
			row[d] = rng.Float64()
		}
		if i > 0 {
			row[tSem+i-1] = 1
			s.Children[i][i-1] = true
			s.Nodes.Row(i - 1)[tSem+i] = -1
		}
		row[tSem+tNodes] = rng.Float64()
		row[tSem+tNodes+1] = rng.Float64()
	}
	// Punch an interior hole: the active length (last true index + 1)
	// must not change, so never unset the last real node.
	if n > 2 && rng.Intn(3) == 0 {
		s.Mask[rng.Intn(n-1)] = false
	}
	for j := range s.Resource {
		s.Resource[j] = rng.Float64()
	}
	for j := range s.Stats {
		s.Stats[j] = rng.Float64()
	}
	s.CostSec = 1 + rng.Float64()
	return s
}

// TestBucketedPredictBitIdentical is the scheduler's core property: for
// every architecture, grouping samples by active plan length (the
// default) predicts bit-identically to the unbucketed input-order
// schedule, across random masks, lengths, chunk sizes, and worker
// counts. Pooling and attention are mask-invariant, so the regrouping
// may change which samples share a forward pass but never a single bit
// of any output.
func TestBucketedPredictBitIdentical(t *testing.T) {
	for _, v := range AllVariants() {
		t.Run(v.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			samples := make([]*encode.Sample, 160)
			for i := range samples {
				samples[i] = maskedSample(rng)
			}
			tc := quickTrain()
			tc.Epochs = 1
			m, _, err := Train(samples[:48], v, testConfig(), tc)
			if err != nil {
				t.Fatal(err)
			}
			opts := []PredictOpts{
				{},
				{Workers: 1, ChunkSize: 1},
				{Workers: 1, ChunkSize: 7},
				{Workers: 4, ChunkSize: 16},
				{Workers: 3, ChunkSize: 64},
			}
			for _, opt := range opts {
				bucketed := m.PredictWith(samples, opt)
				flat := opt
				flat.NoBucket = true
				plain := m.PredictWith(samples, flat)
				for i := range plain {
					if bucketed[i] != plain[i] {
						t.Fatalf("opt %+v sample %d (len %d): bucketed %v != unbucketed %v",
							opt, i, activeLen(samples[i]), bucketed[i], plain[i])
					}
				}
			}
		})
	}
}

// TestBucketedMatchesSingletonPredictions pins the stronger independence
// property the scheduler rests on: each sample's prediction in a
// bucketed batch equals its prediction scored alone in a batch of one.
func TestBucketedMatchesSingletonPredictions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]*encode.Sample, 40)
	for i := range samples {
		samples[i] = maskedSample(rng)
	}
	tc := quickTrain()
	tc.Epochs = 1
	m, _, err := Train(samples, RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	batched := m.Predict(samples)
	for i, s := range samples {
		alone := m.Predict([]*encode.Sample{s})[0]
		if batched[i] != alone {
			t.Fatalf("sample %d: batched %v != singleton %v", i, batched[i], alone)
		}
	}
}

// TestScheduleCutsChunksAtBucketBoundaries checks the schedule itself:
// chunks never mix two active lengths, every input index appears exactly
// once, and within a bucket the input order is preserved (the counting
// sort is stable).
func TestScheduleCutsChunksAtBucketBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]*encode.Sample, 100)
	for i := range samples {
		samples[i] = maskedSample(rng)
	}
	m := NewModel(RAAL(), testConfig())
	scored, order, chunks := m.schedule(samples, 8, false)
	if len(scored) != len(samples) || len(order) != len(samples) {
		t.Fatalf("schedule lost samples: %d scored, %d order", len(scored), len(order))
	}
	seen := make([]bool, len(samples))
	for pos, idx := range order {
		if seen[idx] {
			t.Fatalf("index %d scheduled twice", idx)
		}
		seen[idx] = true
		if scored[pos] != samples[idx] {
			t.Fatalf("position %d: scored sample does not match order index %d", pos, idx)
		}
	}
	prevLen := 0
	prevIdx := -1
	for pos, idx := range order {
		l := activeLen(samples[idx])
		if l < prevLen {
			t.Fatalf("position %d: length %d after %d — schedule not sorted", pos, l, prevLen)
		}
		if l == prevLen && idx < prevIdx {
			t.Fatalf("position %d: input order not preserved within length-%d bucket", pos, l)
		}
		prevLen, prevIdx = l, idx
	}
	for _, c := range chunks {
		if c.hi <= c.lo {
			t.Fatalf("empty chunk %+v", c)
		}
		first := activeLen(scored[c.lo])
		for i := c.lo; i < c.hi; i++ {
			if activeLen(scored[i]) != first {
				t.Fatalf("chunk %+v mixes lengths %d and %d", c, first, activeLen(scored[i]))
			}
		}
		if c.hi-c.lo > 8 {
			t.Fatalf("chunk %+v exceeds chunk size 8", c)
		}
	}
}

// TestBucketOccupancyCounters checks the scheduler's telemetry: scoring
// an instrumented model moves the per-band occupancy counters by exactly
// the number of samples in each band, and the unbucketed escape hatch
// leaves them untouched.
func TestBucketOccupancyCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	samples := make([]*encode.Sample, 30)
	want := map[string]uint64{}
	for i := range samples {
		samples[i] = maskedSample(rng)
		want[bucketBand(activeLen(samples[i]))]++
	}
	m := NewModel(RAAL(), testConfig())
	reg := telemetry.NewRegistry()
	m.Instrument(NewInstrumentation(reg))
	m.Predict(samples)
	for _, band := range bucketBands {
		if got := m.instr.BucketOccupancy.With(band).Value(); got != want[band] {
			t.Fatalf("band %s occupancy = %d, want %d", band, got, want[band])
		}
	}
	m.PredictWith(samples, PredictOpts{NoBucket: true})
	for _, band := range bucketBands {
		if got := m.instr.BucketOccupancy.With(band).Value(); got != want[band] {
			t.Fatalf("band %s moved under NoBucket: %d, want %d", band, got, want[band])
		}
	}
}
