package core

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"raal/internal/encode"
	"raal/internal/sparksim"
	"raal/internal/tensor"
)

const (
	tSem   = 4
	tNodes = 6
	tRes   = sparksim.NumFeatures
	tStats = 6
)

// synthSample fabricates an encoded plan whose cost depends on both node
// content and the resource vector, so resource-aware models have signal to
// find.
func synthSample(rng *rand.Rand) *encode.Sample {
	dim := tSem + tNodes + 2
	s := &encode.Sample{
		Nodes:    tensor.New(tNodes, dim),
		Mask:     make([]bool, tNodes),
		Children: make([][]bool, tNodes),
		Resource: make([]float64, tRes),
		Stats:    make([]float64, tStats),
	}
	n := 3 + rng.Intn(tNodes-2) // 3..tNodes real nodes
	var nodeSig float64
	for i := 0; i < tNodes; i++ {
		s.Children[i] = make([]bool, tNodes)
	}
	for i := 0; i < n; i++ {
		s.Mask[i] = true
		row := s.Nodes.Row(i)
		for d := 0; d < tSem; d++ {
			row[d] = rng.Float64()
			nodeSig += row[d]
		}
		if i > 0 { // chain structure
			row[tSem+i-1] = 1
			s.Children[i][i-1] = true
			s.Nodes.Row(i - 1)[tSem+i] = -1
		}
		row[tSem+tNodes] = rng.Float64()
		row[tSem+tNodes+1] = rng.Float64()
	}
	for j := range s.Resource {
		s.Resource[j] = rng.Float64()
	}
	for j := range s.Stats {
		s.Stats[j] = rng.Float64()
	}
	mem := s.Resource[4]
	// Cost: node-content effect plus a strong non-monotone resource
	// effect (U-shaped in memory, as in the simulator).
	s.CostSec = 2 + nodeSig + 12*(mem-0.5)*(mem-0.5) + 0.5*s.Stats[0]
	return s
}

func synthDataset(n int, seed int64) []*encode.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*encode.Sample, n)
	for i := range out {
		out[i] = synthSample(rng)
	}
	return out
}

func testConfig() Config {
	cfg := DefaultConfig(tSem, tNodes)
	cfg.Hidden = 16
	cfg.K = 8
	return cfg
}

func quickTrain() TrainConfig {
	tc := DefaultTrainConfig()
	tc.Epochs = 6
	tc.Batch = 16
	tc.LR = 5e-3
	return tc
}

func TestTrainReducesLoss(t *testing.T) {
	samples := synthDataset(200, 1)
	_, res, err := Train(samples, RAAL(), testConfig(), quickTrain())
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.LossCurve[0], res.LossCurve[len(res.LossCurve)-1]
	if last >= first*0.8 {
		t.Fatalf("training barely reduced loss: %v → %v", first, last)
	}
	if res.Duration <= 0 || res.Samples != 200 {
		t.Fatalf("result metadata wrong: %+v", res)
	}
}

func TestPredictShapesAndPositivity(t *testing.T) {
	samples := synthDataset(100, 2)
	m, _, err := Train(samples, RAAL(), testConfig(), quickTrain())
	if err != nil {
		t.Fatal(err)
	}
	preds := m.Predict(samples)
	if len(preds) != len(samples) {
		t.Fatalf("prediction count %d", len(preds))
	}
	for _, p := range preds {
		if p < 0 || math.IsNaN(p) {
			t.Fatalf("invalid prediction %v", p)
		}
	}
}

func TestAllVariantsTrain(t *testing.T) {
	samples := synthDataset(80, 3)
	tc := quickTrain()
	tc.Epochs = 2
	for _, v := range AllVariants() {
		if _, _, err := Train(samples, v, testConfig(), tc); err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		// resource-blind twin
		if _, _, err := Train(samples, v.WithoutResources(), testConfig(), tc); err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
	}
}

func TestResourceAwareBeatsBlind(t *testing.T) {
	// The synthetic cost has a strong resource term; the resource-aware
	// model must fit it better than the blind one.
	train := synthDataset(400, 4)
	test := synthDataset(120, 5)
	tc := quickTrain()
	tc.Epochs = 10

	aware, _, err := Train(train, RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	blind, _, err := Train(train, RAAL().WithoutResources(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := aware.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := blind.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if ra.MSE >= rb.MSE {
		t.Fatalf("resource-aware MSE %v should beat blind %v", ra.MSE, rb.MSE)
	}
}

func TestEvaluateMetricsQuality(t *testing.T) {
	train := synthDataset(400, 6)
	test := synthDataset(100, 7)
	tc := quickTrain()
	tc.Epochs = 12
	m, _, err := Train(train, RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if r.COR < 0.5 {
		t.Fatalf("trained model correlation too low: %v", r)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	samples := synthDataset(60, 8)
	tc := quickTrain()
	tc.Epochs = 2
	m, _, err := Train(samples, RAAC(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Var.Name != "RAAC" {
		t.Fatalf("variant not restored: %s", m2.Var.Name)
	}
	p1 := m.Predict(samples[:10])
	p2 := m2.Predict(samples[:10])
	for i := range p1 {
		if math.Abs(p1[i]-p2[i]) > 1e-12 {
			t.Fatalf("restored model predicts differently at %d: %v vs %v", i, p1[i], p2[i])
		}
	}
}

// TestSaveLoadFileRoundTrip goes through a real file: unlike a
// bytes.Buffer, an *os.File is not an io.ByteReader, which used to make
// the weight section's gob decoder read from a desynchronized stream.
func TestSaveLoadFileRoundTrip(t *testing.T) {
	samples := synthDataset(40, 8)
	tc := quickTrain()
	tc.Epochs = 2
	m, _, err := Train(samples, RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.raal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	m2, err := LoadModel(in)
	if err != nil {
		t.Fatalf("loading model from file: %v", err)
	}
	p1 := m.Predict(samples[:10])
	p2 := m2.Predict(samples[:10])
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("file-restored model predicts differently at %d: %v vs %v", i, p1[i], p2[i])
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	samples := synthDataset(50, 9)
	tc := quickTrain()
	tc.Epochs = 2
	m1, _, err := Train(samples, RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Train(samples, RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	p1 := m1.Predict(samples[:5])
	p2 := m2.Predict(samples[:5])
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestVariantInputDims(t *testing.T) {
	cfg := testConfig()
	full := NewModel(RAAL(), cfg)
	ne := NewModel(NELSTM(), cfg)
	if full.inputDim() != tSem+tNodes+2 {
		t.Fatalf("RAAL input dim %d", full.inputDim())
	}
	if ne.inputDim() != tSem+2 {
		t.Fatalf("NE-LSTM input dim %d", ne.inputDim())
	}
	blind := NewModel(RAAL().WithoutResources(), cfg)
	if blind.headDim() != cfg.Hidden+cfg.StatsDim {
		t.Fatalf("blind head dim %d", blind.headDim())
	}
	if full.headDim() != 2*cfg.Hidden+cfg.StatsDim {
		t.Fatalf("RAAL head dim %d", full.headDim())
	}
}

func TestTrainErrors(t *testing.T) {
	if _, _, err := Train(nil, RAAL(), testConfig(), quickTrain()); err == nil {
		t.Fatal("empty samples should error")
	}
	bad := quickTrain()
	bad.Epochs = 0
	if _, _, err := Train(synthDataset(5, 1), RAAL(), testConfig(), bad); err == nil {
		t.Fatal("zero epochs should error")
	}
}

func TestProgressCallback(t *testing.T) {
	samples := synthDataset(30, 10)
	tc := quickTrain()
	tc.Epochs = 3
	calls := 0
	tc.Progress = func(epoch int, loss float64) { calls++ }
	if _, _, err := Train(samples, RAAL(), testConfig(), tc); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("progress called %d times, want 3", calls)
	}
}

func TestTransformRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 0.5, 1, 10, 500} {
		if got := invTransform(transform(v)); math.Abs(got-v) > 1e-9 {
			t.Fatalf("transform round trip %v → %v", v, got)
		}
	}
	if invTransform(-5) != 0 {
		t.Fatal("negative predictions should clamp to 0")
	}
}
