package core

import (
	"math/rand"
	"sync"
	"testing"

	"raal/internal/encode"
)

// TestBucketedEdgeLengthsBitIdentical covers the scheduler's degenerate
// inputs after the flat-tape rewrite: a fully padded plan (no true mask
// entry, active length floors at 1), batches whose plans all share one
// length (a single bucket), and a single-sample batch (the n<=1 early
// path). Each must predict bit-identically with bucketing on and off.
func TestBucketedEdgeLengthsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	train := make([]*encode.Sample, 32)
	for i := range train {
		train[i] = maskedSample(rng)
	}
	tc := quickTrain()
	tc.Epochs = 1
	m, _, err := Train(train, RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}

	emptyPlan := maskedSample(rng)
	for i := range emptyPlan.Mask {
		emptyPlan.Mask[i] = false
	}

	equalLen := make([]*encode.Sample, 9)
	for i := range equalLen {
		for {
			s := maskedSample(rng)
			if activeLen(s) == 3 {
				equalLen[i] = s
				break
			}
		}
	}

	cases := map[string][]*encode.Sample{
		"empty-plan":      {emptyPlan, maskedSample(rng), emptyPlan},
		"all-equal-lens":  equalLen,
		"single-sample":   {maskedSample(rng)},
		"single-is-empty": {emptyPlan},
	}
	for name, samples := range cases {
		t.Run(name, func(t *testing.T) {
			for _, opt := range []PredictOpts{{}, {Workers: 2, ChunkSize: 2}, {Workers: 1, ChunkSize: 1}} {
				bucketed := m.PredictWith(samples, opt)
				flat := opt
				flat.NoBucket = true
				plain := m.PredictWith(samples, flat)
				for i := range plain {
					if bucketed[i] != plain[i] {
						t.Fatalf("opt %+v sample %d: bucketed %v != unbucketed %v", opt, i, bucketed[i], plain[i])
					}
				}
			}
		})
	}
}

// TestTapePoolConcurrentPredictInterleaved drives the tape pool from
// three directions at once — concurrent multi-worker Predicts leasing
// and returning tapes, direct get/put churn, and explicit Resets of
// leased tapes — so the race detector sees every pool transition
// interleaved with forward passes. Results must still be bit-identical
// to a serial baseline.
func TestTapePoolConcurrentPredictInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	samples := make([]*encode.Sample, 48)
	for i := range samples {
		samples[i] = maskedSample(rng)
	}
	tc := quickTrain()
	tc.Epochs = 1
	m, _, err := Train(samples[:16], RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	want := m.PredictWith(samples, PredictOpts{Workers: 1})

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 6; iter++ {
				got := m.PredictWith(samples, PredictOpts{Workers: 1 + g%3, ChunkSize: 5 + g})
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("goroutine %d iter %d sample %d: %v != %v", g, iter, i, got[i], want[i])
						return
					}
				}
			}
		}(g)
	}
	// Direct pool churn: lease tapes, reset them mid-flight, return them —
	// the interleavings a Predict storm alone might not hit.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				tp := m.tapes.get()
				tp.Reset()
				m.tapes.put(tp)
			}
		}()
	}
	wg.Wait()
}
