package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"raal/internal/autodiff"
	"raal/internal/encode"
	"raal/internal/tensor"
)

func TestPredictWithWorkersMatchesSerial(t *testing.T) {
	samples := synthDataset(150, 21)
	tc := quickTrain()
	tc.Epochs = 2
	m, _, err := Train(samples, RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	want := m.PredictWith(samples, PredictOpts{Workers: 1, ChunkSize: 64})
	for _, opt := range []PredictOpts{
		{},                            // defaults: GOMAXPROCS workers
		{Workers: 4, ChunkSize: 64},   // parallel, same chunking
		{Workers: 4, ChunkSize: 7},    // parallel, ragged chunks
		{Workers: 1, ChunkSize: 1},    // serial, one sample per tape
		{Workers: 32, ChunkSize: 200}, // more workers than chunks
	} {
		got := m.PredictWith(samples, opt)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("opts %+v: prediction %d differs: %v vs %v", opt, i, got[i], want[i])
			}
		}
	}
}

func TestPredictConcurrentCallers(t *testing.T) {
	samples := synthDataset(64, 22)
	tc := quickTrain()
	tc.Epochs = 1
	m, _, err := Train(samples, RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	want := m.PredictWith(samples, PredictOpts{Workers: 1})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := m.Predict(samples)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("concurrent caller diverged at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestFitWorkersDeterministic is the tentpole's determinism guarantee:
// with shard boundaries pinned by ShardSize, the worker count must not
// change training at all — same loss curve, same weights, bit for bit.
func TestFitWorkersDeterministic(t *testing.T) {
	for _, v := range []Variant{RAAL(), RAAC()} {
		samples := synthDataset(90, 23) // 90 % 16 != 0: exercises short batches
		tc := quickTrain()
		tc.Epochs = 3
		tc.ShardSize = 4

		tc.Workers = 1
		m1, r1, err := Train(samples, v, testConfig(), tc)
		if err != nil {
			t.Fatal(err)
		}
		tc.Workers = 4
		m4, r4, err := Train(samples, v, testConfig(), tc)
		if err != nil {
			t.Fatal(err)
		}
		for e := range r1.LossCurve {
			if r1.LossCurve[e] != r4.LossCurve[e] {
				t.Fatalf("%s: epoch %d loss differs across workers: %v vs %v",
					v.Name, e, r1.LossCurve[e], r4.LossCurve[e])
			}
		}
		p1 := m1.PredictWith(samples[:10], PredictOpts{Workers: 1})
		p4 := m4.PredictWith(samples[:10], PredictOpts{Workers: 1})
		for i := range p1 {
			if p1[i] != p4[i] {
				t.Fatalf("%s: trained weights differ across workers (prediction %d: %v vs %v)",
					v.Name, i, p1[i], p4[i])
			}
		}
	}
}

// TestFitShardedMatchesWholeBatch checks that gradient accumulation over
// shards reproduces whole-batch training up to floating-point association.
func TestFitShardedMatchesWholeBatch(t *testing.T) {
	samples := synthDataset(64, 24)
	tc := quickTrain()
	tc.Epochs = 2

	_, whole, err := Train(samples, RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	tc.ShardSize = 4
	tc.Workers = 2
	_, sharded, err := Train(samples, RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	for e := range whole.LossCurve {
		a, b := whole.LossCurve[e], sharded.LossCurve[e]
		if math.Abs(a-b) > 1e-8*math.Max(1, math.Abs(a)) {
			t.Fatalf("epoch %d: sharded loss %v drifted from whole-batch %v", e, b, a)
		}
	}
}

// TestFitWeightedLossCurve is the regression test for the loss-reporting
// bug: the epoch loss must weight each batch by its size. With a
// vanishing learning rate every batch is scored at the initial weights,
// so the weighted epoch mean must equal the MSE over the whole dataset —
// which an unweighted mean of batch means gets wrong whenever the sample
// count is not divisible by the batch size.
func TestFitWeightedLossCurve(t *testing.T) {
	samples := synthDataset(10, 25)
	cfg := testConfig()

	ref := NewModel(RAAL(), cfg)
	target := tensor.New(len(samples), 1)
	for i, s := range samples {
		target.Set(i, 0, transform(s.CostSec))
	}
	tp := autodiff.NewTape()
	want := tp.MSE(ref.forward(tp, samples, nil), target).Value.Data[0]

	m := NewModel(RAAL(), cfg) // same seed: identical initial weights
	tc := DefaultTrainConfig()
	tc.Epochs = 1
	tc.Batch = 4 // batches of 4, 4, 2
	tc.LR = 1e-300
	res, err := m.Fit(samples, tc)
	if err != nil {
		t.Fatal(err)
	}
	got := res.LossCurve[0]
	if math.Abs(got-want) > 1e-9*math.Max(1, want) {
		t.Fatalf("epoch loss %v, want dataset MSE %v (short batch over- or under-weighted)", got, want)
	}

	// The sharded trainer must report the same weighted mean.
	m2 := NewModel(RAAL(), cfg)
	tc.ShardSize = 3
	tc.Workers = 2
	res2, err := m2.Fit(samples, tc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.LossCurve[0]-want) > 1e-9*math.Max(1, want) {
		t.Fatalf("sharded epoch loss %v, want dataset MSE %v", res2.LossCurve[0], want)
	}
}

// TestParallelTrainRaceSmoke is a short multi-worker run meant to be
// executed under -race (see `make race`): it exercises concurrent shard
// backward passes and concurrent inference on the shared weights.
func TestParallelTrainRaceSmoke(t *testing.T) {
	samples := synthDataset(40, 26)
	tc := quickTrain()
	tc.Epochs = 2
	tc.Batch = 8
	tc.ShardSize = 2
	tc.Workers = 4
	m, _, err := Train(samples, RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	_ = m.PredictWith(samples, PredictOpts{Workers: 4, ChunkSize: 8})
}

func benchSamples(n int) []*encode.Sample { return synthDataset(n, 77) }

// BenchmarkPredict measures data-parallel inference throughput; compare
// workers=1 (the serial scorer) against higher worker counts.
func BenchmarkPredict(b *testing.B) {
	samples := benchSamples(512)
	tc := quickTrain()
	tc.Epochs = 1
	m, _, err := Train(samples[:128], RAAL(), testConfig(), tc)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := PredictOpts{Workers: workers, ChunkSize: 32}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.PredictWith(samples, opt)
			}
		})
	}
}

// BenchmarkFit measures data-parallel training throughput; shard
// boundaries are pinned so every worker count runs the same computation.
func BenchmarkFit(b *testing.B) {
	samples := benchSamples(256)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tc := quickTrain()
			tc.Epochs = 1
			tc.Batch = 32
			tc.ShardSize = 4
			tc.Workers = workers
			m := NewModel(RAAL(), testConfig())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Fit(samples, tc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
