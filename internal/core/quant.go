package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"raal/internal/autodiff"
	"raal/internal/encode"
	"raal/internal/metrics"
	"raal/internal/nn"
	"raal/internal/tensor"
	"raal/internal/telemetry"
)

// Precision selects the numeric format an inference path runs in. Models
// always train in PrecisionF64; the reduced precisions are post-training
// inference-only conversions (see Model.Quantize) admitted through the
// accuracy gate (VerifyQuantized).
type Precision uint8

// Supported precisions.
const (
	PrecisionF64  Precision = iota // float64 reference path (the Model itself)
	PrecisionF32                   // all weights and arithmetic in float32
	PrecisionInt8                  // f32 arithmetic, int8 per-row LSTM-input/dense weights
)

func (p Precision) String() string {
	switch p {
	case PrecisionF64:
		return "f64"
	case PrecisionF32:
		return "f32"
	case PrecisionInt8:
		return "int8"
	default:
		return fmt.Sprintf("Precision(%d)", uint8(p))
	}
}

// ParsePrecision maps the CLI spelling ("f64", "f32", "int8") back to a
// Precision.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64":
		return PrecisionF64, nil
	case "f32":
		return PrecisionF32, nil
	case "int8":
		return PrecisionInt8, nil
	}
	return 0, fmt.Errorf("core: unknown precision %q (have f64, f32, int8)", s)
}

// QuantConfig tunes Model.Quantize. The zero value is invalid — callers
// pick PrecisionF32 or PrecisionInt8 explicitly.
type QuantConfig struct {
	Precision Precision
}

// QModel is an inference-only reduced-precision snapshot of a Model: the
// same architecture and forward graph, with weights narrowed to float32
// (and, for PrecisionInt8, the LSTM input projection and every dense
// layer stored as symmetric per-row int8 with dequant-to-f32 accumulate).
// It is produced by Model.Quantize, never trained, and never serialized —
// re-quantize from the float64 champion instead.
//
// Predictions are deterministic: bit-identical across worker counts,
// chunk sizes, and bucketing settings, by the same argument as the
// float64 path (tensor kernel contract + per-sample independence). No
// bit relationship with the float64 model's output is promised; that gap
// is what VerifyQuantized bounds.
type QModel struct {
	Var       Variant
	Cfg       Config
	Precision Precision

	instr *Instrumentation

	lstm *nn.LSTM32
	conv *nn.Conv32

	wq, wk *tensor.Matrix32 // node-aware attention projections (Hidden×K)
	wr     *tensor.Matrix32 // resource query projection (ResDim×K)
	wrk    *tensor.Matrix32 // resource-side node key projection (Hidden×K)

	head *nn.MLP32

	tapes tape32Pool
}

// tape32Pool mirrors tapePool for the f32 tape: an explicit free list
// keeps warm tapes out of the GC's reach so the zero-steady-state-
// allocation guarantee holds deterministically.
type tape32Pool struct {
	mu sync.Mutex
	ts []*autodiff.Tape32
}

func (p *tape32Pool) get() *autodiff.Tape32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.ts); n > 0 {
		tp := p.ts[n-1]
		p.ts[n-1] = nil
		p.ts = p.ts[:n-1]
		return tp
	}
	return autodiff.NewTape32()
}

func (p *tape32Pool) put(tp *autodiff.Tape32) {
	tp.Reset()
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ts) < maxPooledTapes {
		p.ts = append(p.ts, tp)
	}
}

// Quantize converts the trained model to an inference-only reduced-
// precision snapshot. PrecisionF32 narrows every weight to float32;
// PrecisionInt8 additionally stores the LSTM input projection (or the
// conv lowering matrix, for RAAC) and every head dense layer as symmetric
// per-row int8. The attention projections, biases, and recurrent weights
// stay f32 in both modes — they are small, and the recurrence and softmax
// amplify their error. The model itself is untouched and remains the
// training/reference path.
func (m *Model) Quantize(qc QuantConfig) (*QModel, error) {
	switch qc.Precision {
	case PrecisionF32, PrecisionInt8:
	default:
		return nil, fmt.Errorf("core: Quantize: %v is not a reduced precision (want f32 or int8)", qc.Precision)
	}
	int8W := qc.Precision == PrecisionInt8
	q := &QModel{Var: m.Var, Cfg: m.Cfg, Precision: qc.Precision}
	if m.lstm != nil {
		q.lstm = nn.NewLSTM32(m.lstm, int8W)
	}
	if m.conv != nil {
		q.conv = nn.NewConv32(m.conv, int8W)
	}
	if m.wq != nil {
		q.wq = tensor.ToMatrix32(m.wq.Value())
		q.wk = tensor.ToMatrix32(m.wk.Value())
	}
	if m.wr != nil {
		q.wr = tensor.ToMatrix32(m.wr.Value())
		q.wrk = tensor.ToMatrix32(m.wrk.Value())
	}
	q.head = nn.NewMLP32(m.head, int8W)
	return q, nil
}

// Instrument attaches the metric set to the quantized model (same set as
// Model.Instrument — the precision split shows up in serving metrics, not
// here).
func (q *QModel) Instrument(ins *Instrumentation) { q.instr = ins }

// inputDim mirrors Model.inputDim.
func (q *QModel) inputDim() int {
	d := q.Cfg.SemDim + nodeStatFeatures
	if q.Var.Structure {
		d += q.Cfg.MaxNodes
	}
	return d
}

// nodeInput32 extracts sample node i's input row, narrowing to f32.
func (q *QModel) nodeInput32(s *encode.Sample, i int, dst []float32) {
	row := s.Nodes.Row(i)
	sem := q.Cfg.SemDim
	if q.Var.Structure {
		for j, v := range row {
			dst[j] = float32(v)
		}
		return
	}
	for j := 0; j < sem; j++ {
		dst[j] = float32(row[j])
	}
	for j, v := range row[sem+q.Cfg.MaxNodes:] {
		dst[sem+j] = float32(v)
	}
}

// forward32 mirrors Model.forward on the f32 tape: same graph, same
// masks, same unroll truncation, same stage boundaries (embed →
// lstm/conv → attention → dense), with every intermediate stored in f32.
func (q *QModel) forward32(tp *autodiff.Tape32, batch []*encode.Sample, sp *telemetry.Span) *tensor.Matrix32 {
	bsz := len(batch)
	L := 1
	for _, s := range batch {
		if l := activeLen(s); l > L {
			L = l
		}
	}
	in := q.inputDim()

	perSampleH := make([]*tensor.Matrix32, bsz)
	if q.lstm != nil {
		stop := sp.Stage("embed")
		x := tp.NewMatrix(L*bsz, in)
		for t := 0; t < L; t++ {
			for b, s := range batch {
				q.nodeInput32(s, t, x.Row(t*bsz+b))
			}
		}
		stop()
		stop = sp.Stage("lstm")
		hs := q.lstm.ForwardStacked(tp, x, L)
		for b := 0; b < bsz; b++ {
			perSampleH[b] = tp.GatherRows(hs, b)
		}
		stop()
	} else {
		for b, s := range batch {
			stop := sp.Stage("embed")
			x := tp.NewMatrix(L, in)
			for t := 0; t < L; t++ {
				q.nodeInput32(s, t, x.Row(t))
			}
			stop()
			stop = sp.Stage("conv")
			perSampleH[b] = q.conv.Forward(tp, x)
			stop()
		}
	}

	stopAttn := sp.Stage("attention")
	scale := float32(1 / math.Sqrt(float64(q.Cfg.K)))
	feats := make([]*tensor.Matrix32, bsz)
	for b, s := range batch {
		h := perSampleH[b]
		mask := s.Mask[:L]
		var pooled *tensor.Matrix32
		if q.Var.NodeAttention {
			children := make([][]bool, L)
			for i := 0; i < L; i++ {
				children[i] = s.Children[i][:L]
			}
			qm := tp.MatMul(h, q.wq)
			km := tp.MatMul(h, q.wk)
			scores := tp.Scale(tp.MatMulTransB(qm, km), scale)
			attn := tp.SoftmaxRowsMask2D(scores, children)
			attended := tp.MatMul(attn, h)
			pooled = tp.MeanRowsMasked(tp.Add(attended, h), mask)
		} else {
			pooled = tp.MeanRowsMasked(h, mask)
		}

		parts := []*tensor.Matrix32{pooled}
		if q.Var.ResourceAttention {
			rv := tp.NewMatrix(1, len(s.Resource))
			for j, v := range s.Resource {
				rv.Data[j] = float32(v)
			}
			qr := tp.MatMul(rv, q.wr)                                 // 1×K
			keys := tp.MatMul(h, q.wrk)                               // L×K
			scores := tp.Scale(tp.MatMulTransB(qr, keys), scale)      // 1×L
			battn := tp.SoftmaxRows(scores, mask)
			parts = append(parts, tp.MatMul(battn, h)) // 1×Hidden
		}
		sv := tp.NewMatrix(1, len(s.Stats))
		for j, v := range s.Stats {
			sv.Data[j] = float32(v)
		}
		parts = append(parts, sv)
		feats[b] = tp.ConcatCols(parts...)
	}
	stopAttn()
	defer sp.Stage("dense")()
	return q.head.Forward(tp, tp.ConcatRows(feats...))
}

// Predict returns the estimated cost in seconds for each sample, using
// the default data-parallel settings.
func (q *QModel) Predict(samples []*encode.Sample) []float64 {
	return q.PredictWith(samples, PredictOpts{})
}

// PredictWith is Model.PredictWith on the reduced-precision path.
func (q *QModel) PredictWith(samples []*encode.Sample, opt PredictOpts) []float64 {
	out, _ := q.PredictCtx(context.Background(), samples, opt)
	return out
}

// PredictCtx is Model.PredictCtx on the reduced-precision path: same
// chunking, bucketing, worker pool, and cancellation contract.
func (q *QModel) PredictCtx(ctx context.Context, samples []*encode.Sample, opt PredictOpts) ([]float64, error) {
	return q.predictCtx32(ctx, samples, opt, nil)
}

// PredictSpan scores samples serially while accumulating the per-stage
// breakdown into sp (embed → lstm/conv → attention → dense → decode).
func (q *QModel) PredictSpan(samples []*encode.Sample, sp *telemetry.Span) []float64 {
	out, _ := q.predictCtx32(context.Background(), samples, PredictOpts{Workers: 1}, sp)
	return out
}

// PredictTraced is PredictSpan with the span created and ended; the span
// name carries the precision so quantized traces are distinguishable.
func (q *QModel) PredictTraced(samples []*encode.Sample) ([]float64, *telemetry.Span) {
	sp := telemetry.StartSpan("predict[" + q.Precision.String() + "]")
	out := q.PredictSpan(samples, sp)
	sp.End()
	return out, sp
}

// predictCtx32 mirrors Model.predictCtx chunk for chunk, swapping the
// float64 tape for the pooled f32 tape.
func (q *QModel) predictCtx32(ctx context.Context, samples []*encode.Sample, opt PredictOpts, sp *telemetry.Span) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	out := make([]float64, len(samples))
	chunk := opt.ChunkSize
	if chunk <= 0 {
		chunk = 64
	}
	scored, order, chunks := scheduleSamples(samples, chunk, opt.NoBucket, q.instr)
	nChunks := len(chunks)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nChunks {
		workers = nChunks
	}

	score := func(tp *autodiff.Tape32, k int) {
		c := chunks[k]
		tp.Reset()
		pred := q.forward32(tp, scored[c.lo:c.hi], sp)
		defer sp.Stage("decode")()
		for i := c.lo; i < c.hi; i++ {
			dst := i
			if order != nil {
				dst = order[i]
			}
			out[dst] = invTransform(float64(pred.At(i-c.lo, 0)))
		}
	}

	if workers <= 1 {
		tp := q.tapes.get()
		defer q.tapes.put(tp)
		for k := 0; k < nChunks; k++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			score(tp, k)
		}
		q.instr.observePredict(len(samples), time.Since(start))
		return out, nil
	}
	var next atomic.Int64
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tp := q.tapes.get()
			defer q.tapes.put(tp)
			for {
				if ctx.Err() != nil {
					aborted.Store(true)
					return
				}
				k := int(next.Add(1)) - 1
				if k >= nChunks {
					return
				}
				score(tp, k)
			}
		}()
	}
	wg.Wait()
	if aborted.Load() {
		return nil, ctx.Err()
	}
	q.instr.observePredict(len(samples), time.Since(start))
	return out, nil
}

// GateQuantile is the order statistic the accuracy gate examines: the
// 0.9-quantile of the per-sample q-error delta between the quantized and
// float64 predictions. A tail quantile (rather than the mean) is what
// keeps one catastrophically mis-scaled row from hiding behind a thousand
// good ones.
const GateQuantile = 0.9

// QuantGateError is the typed refusal returned by VerifyQuantized when a
// quantized model disagrees with its float64 reference by more than the
// configured bound. Callers match it with errors.As and fall back to the
// f64 path.
type QuantGateError struct {
	Precision Precision
	Quantile  float64 // order statistic examined (GateQuantile)
	Delta     float64 // observed q-error delta at that quantile
	Bound     float64 // configured maximum
	N         int     // evaluation samples
}

func (e *QuantGateError) Error() string {
	return fmt.Sprintf("core: quantization gate refused %s: q-error delta p%.0f = %.4f > bound %.4f (over %d samples)",
		e.Precision, e.Quantile*100, e.Delta, e.Bound, e.N)
}

// VerifyQuantized is the accuracy gate: it scores samples through both
// the float64 model and its quantized snapshot, computes the per-sample
// q-error delta distribution (metrics.QErrorDeltas, with the f64
// predictions as reference — no labels needed), and refuses with a
// *QuantGateError when the GateQuantile delta exceeds maxQDelta. A nil
// return admits qm for serving.
func VerifyQuantized(m *Model, qm *QModel, samples []*encode.Sample, maxQDelta float64) error {
	if m == nil || qm == nil {
		return errors.New("core: VerifyQuantized needs both the f64 model and the quantized snapshot")
	}
	if len(samples) == 0 {
		return errors.New("core: VerifyQuantized needs at least one evaluation sample")
	}
	if maxQDelta < 0 {
		return fmt.Errorf("core: VerifyQuantized bound %g must be non-negative", maxQDelta)
	}
	ref := m.Predict(samples)
	got := qm.Predict(samples)
	delta := metrics.Quantile(metrics.QErrorDeltas(ref, got), GateQuantile)
	if delta > maxQDelta {
		return &QuantGateError{
			Precision: qm.Precision,
			Quantile:  GateQuantile,
			Delta:     delta,
			Bound:     maxQDelta,
			N:         len(samples),
		}
	}
	return nil
}
