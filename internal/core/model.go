package core

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"raal/internal/autodiff"
	"raal/internal/encode"
	"raal/internal/nn"
	"raal/internal/sparksim"
	"raal/internal/telemetry"
)

// Config sets the model dimensions. SemDim, MaxNodes, and StatsDim must
// match the encoder that produced the samples.
type Config struct {
	SemDim   int // semantic embedding width (encoder-dependent)
	MaxNodes int // padded plan length
	ResDim   int // resource vector width
	StatsDim int // global statistics width
	Hidden   int // plan feature layer width
	K        int // attention latent dimension (paper: 32)
	Seed     int64
}

// DefaultConfig returns the dimensions used throughout the experiments,
// matched to an encoder with the given semantic width.
func DefaultConfig(semDim, maxNodes int) Config {
	return Config{
		SemDim:   semDim,
		MaxNodes: maxNodes,
		ResDim:   sparksim.NumFeatures,
		StatsDim: encode.NumStats,
		Hidden:   48,
		K:        32,
		Seed:     1,
	}
}

// nodeStatFeatures mirrors encode: per-node stats appended to each row.
const nodeStatFeatures = 2

// Model is a deep cost model of one Variant.
type Model struct {
	Var Variant
	Cfg Config

	// instr receives inference telemetry when set (see Instrument); nil
	// predicts unobserved. Never serialized.
	instr *Instrumentation

	lstm *nn.LSTM
	conv *nn.Conv1D

	wq, wk *nn.Param // node-aware attention projections (Hidden×K)
	wr     *nn.Param // resource query projection (ResDim×K)
	wrk    *nn.Param // resource-side node key projection (Hidden×K)

	head *nn.MLP

	// tapes pools warm inference tapes across Predict calls so the
	// steady-state scoring path allocates no matrices. Never serialized.
	tapes tapePool
}

// maxPooledTapes caps how many warm inference tapes a model retains. More
// concurrent workers than this still run — extras build a cold tape and
// drop it afterwards.
const maxPooledTapes = 16

// tapePool is a mutex-guarded stack of inference tapes. An explicit
// free list (rather than sync.Pool) keeps warm tapes out of the GC's reach,
// so the zero-steady-state-allocation guarantee holds deterministically.
type tapePool struct {
	mu sync.Mutex
	ts []*autodiff.Tape
}

func (p *tapePool) get() *autodiff.Tape {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.ts); n > 0 {
		tp := p.ts[n-1]
		p.ts[n-1] = nil
		p.ts = p.ts[:n-1]
		return tp
	}
	return autodiff.NewInferenceTape()
}

func (p *tapePool) put(tp *autodiff.Tape) {
	tp.Reset() // recycle the last chunk's matrices before parking the tape
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ts) < maxPooledTapes {
		p.ts = append(p.ts, tp)
	}
}

// NewModel builds a model for the variant with freshly initialized weights.
func NewModel(v Variant, cfg Config) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Var: v, Cfg: cfg}
	in := m.inputDim()
	if v.CNN {
		m.conv = nn.NewConv1D("plan.conv", in, cfg.Hidden, 3, nn.ReLU, rng)
	} else {
		m.lstm = nn.NewLSTM("plan.lstm", in, cfg.Hidden, rng)
	}
	if v.NodeAttention {
		m.wq = nn.NewParam("attn.wq", nn.Xavier(cfg.Hidden, cfg.K, rng))
		m.wk = nn.NewParam("attn.wk", nn.Xavier(cfg.Hidden, cfg.K, rng))
	}
	if v.ResourceAttention {
		m.wr = nn.NewParam("res.wr", nn.Xavier(cfg.ResDim, cfg.K, rng))
		m.wrk = nn.NewParam("res.wk", nn.Xavier(cfg.Hidden, cfg.K, rng))
	}
	m.head = nn.NewMLP("head", []int{m.headDim(), cfg.Hidden, cfg.Hidden / 2, 1}, nn.ReLU, rng)
	return m
}

// inputDim is the per-node input width after variant column selection.
func (m *Model) inputDim() int {
	d := m.Cfg.SemDim + nodeStatFeatures
	if m.Var.Structure {
		d += m.Cfg.MaxNodes
	}
	return d
}

// headDim is the width of the prediction layer's input.
func (m *Model) headDim() int {
	d := m.Cfg.Hidden + m.Cfg.StatsDim
	if m.Var.ResourceAttention {
		d += m.Cfg.Hidden
	}
	return d
}

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	if m.lstm != nil {
		ps = append(ps, m.lstm.Params()...)
	}
	if m.conv != nil {
		ps = append(ps, m.conv.Params()...)
	}
	if m.wq != nil {
		ps = append(ps, m.wq, m.wk)
	}
	if m.wr != nil {
		ps = append(ps, m.wr, m.wrk)
	}
	ps = append(ps, m.head.Params()...)
	return ps
}

// nodeInput extracts the model's input row for sample node i, dropping the
// structure segment for NE-LSTM.
func (m *Model) nodeInput(s *encode.Sample, i int, dst []float64) {
	row := s.Nodes.Row(i)
	sem := m.Cfg.SemDim
	if m.Var.Structure {
		copy(dst, row) // full row: semantic | structure | stats
		return
	}
	copy(dst[:sem], row[:sem])
	copy(dst[sem:], row[sem+m.Cfg.MaxNodes:])
}

// forward builds the computation graph for a batch and returns the B×1
// prediction (log-cost scale). The recurrence is unrolled only up to the
// batch's longest real plan — padding rows are fully masked downstream, so
// truncating them is numerically identical and substantially faster.
//
// sp, when non-nil, receives the per-stage wall-time breakdown (embed →
// lstm/conv → attention → dense); a nil span costs one branch per stage
// boundary.
func (m *Model) forward(tp *autodiff.Tape, batch []*encode.Sample, sp *telemetry.Span) *autodiff.Var {
	bsz := len(batch)
	L := 1
	for _, s := range batch {
		if l := activeLen(s); l > L {
			L = l
		}
	}
	in := m.inputDim()

	// Plan feature layer.
	perSampleH := make([]*autodiff.Var, bsz) // each L×Hidden
	if m.lstm != nil {
		stop := sp.Stage("embed")
		// One stacked (L·bsz)×in input buffer: row t·bsz+b is sample b's
		// node-t row. Arena-backed; nodeInput overwrites every row, so a
		// recycled matrix needs no clearing beyond what NewMatrix does.
		x := tp.NewMatrix(L*bsz, in)
		for t := 0; t < L; t++ {
			for b, s := range batch {
				m.nodeInput(s, t, x.Row(t*bsz+b))
			}
		}
		stop()
		stop = sp.Stage("lstm")
		hs := m.lstm.ForwardStacked(tp, tp.Const(x), L)
		for b := 0; b < bsz; b++ {
			perSampleH[b] = tp.GatherRows(hs, b)
		}
		stop()
	} else {
		for b, s := range batch {
			stop := sp.Stage("embed")
			x := tp.NewMatrix(L, in)
			for t := 0; t < L; t++ {
				m.nodeInput(s, t, x.Row(t))
			}
			xc := tp.Const(x)
			stop()
			stop = sp.Stage("conv")
			perSampleH[b] = m.conv.Forward(tp, xc)
			stop()
		}
	}

	stopAttn := sp.Stage("attention")
	scale := 1 / math.Sqrt(float64(m.Cfg.K))
	feats := make([]*autodiff.Var, bsz)
	for b, s := range batch {
		h := perSampleH[b]
		mask := s.Mask[:L]
		var pooled *autodiff.Var
		if m.Var.NodeAttention {
			children := make([][]bool, L)
			for i := 0; i < L; i++ {
				children[i] = s.Children[i][:L]
			}
			q := tp.MatMul(h, m.wq.Var)
			k := tp.MatMul(h, m.wk.Var)
			scores := tp.Scale(tp.MatMul(q, tp.Transpose(k)), scale)
			attn := tp.SoftmaxRowsMask2D(scores, children)
			attended := tp.MatMul(attn, h)
			// Leaves have no children: their attended rows are zero, so
			// blend with the raw hidden state before pooling.
			pooled = tp.MeanRowsMasked(tp.Add(attended, h), mask)
		} else {
			pooled = tp.MeanRowsMasked(h, mask)
		}

		parts := []*autodiff.Var{pooled}
		if m.Var.ResourceAttention {
			rv := tp.NewMatrix(1, len(s.Resource))
			copy(rv.Data, s.Resource)
			r := tp.Const(rv)
			q := tp.MatMul(r, m.wr.Var)                                 // 1×K
			keys := tp.MatMul(h, m.wrk.Var)                             // L×K
			scores := tp.Scale(tp.MatMul(q, tp.Transpose(keys)), scale) // 1×L
			battn := tp.SoftmaxRows(scores, mask)
			parts = append(parts, tp.MatMul(battn, h)) // 1×Hidden
		}
		sv := tp.NewMatrix(1, len(s.Stats))
		copy(sv.Data, s.Stats)
		parts = append(parts, tp.Const(sv))
		feats[b] = tp.ConcatCols(parts...)
	}
	stopAttn()
	defer sp.Stage("dense")()
	return m.head.Forward(tp, tp.ConcatRows(feats...))
}

// replica returns a model that shares m's weight matrices but owns private
// gradient accumulators, so concurrent shards can run forward/backward on
// independent tapes without racing on the shared nn.Param set. Params()
// returns the replica's parameters in the same order as the original's,
// which is what lets shard gradients be merged positionally.
func (m *Model) replica() *Model {
	r := &Model{Var: m.Var, Cfg: m.Cfg}
	if m.lstm != nil {
		r.lstm = m.lstm.ShareWeights()
	}
	if m.conv != nil {
		r.conv = m.conv.ShareWeights()
	}
	if m.wq != nil {
		r.wq, r.wk = m.wq.Shadow(), m.wk.Shadow()
	}
	if m.wr != nil {
		r.wr, r.wrk = m.wr.Shadow(), m.wrk.Shadow()
	}
	r.head = m.head.ShareWeights()
	return r
}

// PredictOpts tunes data-parallel inference. The zero value picks the
// defaults: length-bucketed chunks of up to 64 samples per tape, spread
// across GOMAXPROCS worker goroutines. Predictions are bit-identical for
// every Workers, ChunkSize, and NoBucket setting — each sample's output
// depends only on its own rows, so the decomposition is purely a
// throughput knob.
type PredictOpts struct {
	// Workers is the number of goroutines scoring chunks. <=0 means
	// runtime.GOMAXPROCS(0); 1 reproduces the serial scorer.
	Workers int
	// ChunkSize is the number of samples per forward pass (per tape).
	// <=0 means 64.
	ChunkSize int
	// NoBucket disables length-bucketed scheduling: chunks are cut over
	// the samples in input order, and forward unrolls each chunk to its
	// longest member. The default (false) groups samples by active plan
	// length first, so a short plan never pays a long plan's padded LSTM
	// timesteps. Outputs are identical either way; this is the escape
	// hatch for comparing the two schedules.
	NoBucket bool
}

// Predict returns the estimated cost in seconds for each sample, using
// the default data-parallel settings (see PredictOpts).
func (m *Model) Predict(samples []*encode.Sample) []float64 {
	return m.PredictWith(samples, PredictOpts{})
}

// PredictWith returns the estimated cost in seconds for each sample,
// scoring independent chunks on a pool of worker goroutines. The model is
// only read, so a single Model may serve many concurrent PredictWith
// calls.
func (m *Model) PredictWith(samples []*encode.Sample, opt PredictOpts) []float64 {
	out, _ := m.PredictCtx(context.Background(), samples, opt) // Background never cancels
	return out
}

// PredictCtx is PredictWith with cooperative cancellation: the context is
// consulted once per chunk, so a cancelled or expired context aborts the
// batch within one forward pass and returns ctx.Err() (context.Canceled or
// context.DeadlineExceeded) with nil predictions. An un-cancellable
// context adds only a nil check per chunk — predictions are bit-identical
// to PredictWith for every PredictOpts setting.
func (m *Model) PredictCtx(ctx context.Context, samples []*encode.Sample, opt PredictOpts) ([]float64, error) {
	return m.predictCtx(ctx, samples, opt, nil)
}

// PredictSpan scores samples serially (one worker, so stage wall times
// never overlap) while accumulating the per-stage forward-pass breakdown
// into sp: encode-side callers add their own stages, then embed →
// lstm/conv → attention → dense → decode land here. Predictions are
// bit-identical to Predict. The caller owns sp's lifecycle (End).
func (m *Model) PredictSpan(samples []*encode.Sample, sp *telemetry.Span) []float64 {
	out, _ := m.predictCtx(context.Background(), samples, PredictOpts{Workers: 1}, sp)
	return out
}

// PredictTraced is PredictSpan with the span created, ended, and
// returned for inspection — the one-call way to decompose a predict into
// stage timings:
//
//	preds, span := m.PredictTraced(samples)
//	for _, st := range span.Stages() { ... }
func (m *Model) PredictTraced(samples []*encode.Sample) ([]float64, *telemetry.Span) {
	sp := telemetry.StartSpan("predict")
	out := m.PredictSpan(samples, sp)
	sp.End()
	return out, sp
}

// activeLen returns the number of leading timesteps the model must unroll
// for s: the last true Mask index plus one. The floor of 1 matches
// forward's unroll minimum for fully padded samples.
func activeLen(s *encode.Sample) int {
	for i := len(s.Mask) - 1; i >= 0; i-- {
		if s.Mask[i] {
			return i + 1
		}
	}
	return 1
}

// chunkRange is one forward pass's slice of the scheduled sample order.
type chunkRange struct{ lo, hi int }

// schedule decides which samples share a forward pass. The default is
// length-bucketed: samples are grouped by active plan length (counting
// sort — ascending length, input order within a bucket) and chunks never
// span two lengths, so forward's unroll depth is exact for every chunk
// and a 3-node plan never pays a 50-node plan's padded timesteps. The
// returned order maps scheduled position to caller index (nil means
// identity, the unbucketed path). Scheduling only regroups samples —
// pooling and attention are mask-invariant, so every sample's arithmetic
// is untouched and predictions are bit-identical with bucketing on and
// off (pinned by TestBucketedPredictBitIdentical).
func (m *Model) schedule(samples []*encode.Sample, chunk int, noBucket bool) ([]*encode.Sample, []int, []chunkRange) {
	return scheduleSamples(samples, chunk, noBucket, m.instr)
}

// scheduleSamples is the scheduler shared by the float64 Model and the
// reduced-precision QModel (which has its own instrumentation handle).
func scheduleSamples(samples []*encode.Sample, chunk int, noBucket bool, instr *Instrumentation) ([]*encode.Sample, []int, []chunkRange) {
	n := len(samples)
	if noBucket || n <= 1 {
		chunks := make([]chunkRange, 0, (n+chunk-1)/chunk)
		for lo := 0; lo < n; lo += chunk {
			chunks = append(chunks, chunkRange{lo, min(lo+chunk, n)})
		}
		return samples, nil, chunks
	}
	lens := make([]int, n)
	maxLen := 1
	for i, s := range samples {
		lens[i] = activeLen(s)
		if lens[i] > maxLen {
			maxLen = lens[i]
		}
	}
	// starts[l] is the first scheduled position of length l; the copy in
	// count[] is consumed as the insertion cursor.
	starts := make([]int, maxLen+2)
	for _, l := range lens {
		starts[l+1]++
	}
	for l := 1; l < len(starts); l++ {
		starts[l] += starts[l-1]
	}
	count := append([]int(nil), starts...)
	order := make([]int, n)
	scored := make([]*encode.Sample, n)
	for i, s := range samples {
		p := count[lens[i]]
		count[lens[i]]++
		order[p] = i
		scored[p] = s
	}
	instr.observeBuckets(lens)
	var chunks []chunkRange
	for l := 1; l <= maxLen; l++ {
		for lo := starts[l]; lo < starts[l+1]; lo += chunk {
			chunks = append(chunks, chunkRange{lo, min(lo+chunk, starts[l+1])})
		}
	}
	return scored, order, chunks
}

// predictCtx is the shared scorer behind Predict/PredictCtx/PredictSpan.
// A non-nil span forces the serial path (callers pass Workers: 1), so
// stage durations sum to at most the call's wall time.
func (m *Model) predictCtx(ctx context.Context, samples []*encode.Sample, opt PredictOpts, sp *telemetry.Span) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	out := make([]float64, len(samples))
	chunk := opt.ChunkSize
	if chunk <= 0 {
		chunk = 64
	}
	scored, order, chunks := m.schedule(samples, chunk, opt.NoBucket)
	nChunks := len(chunks)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nChunks {
		workers = nChunks
	}

	// Each worker leases one warm tape for its whole run and resets it
	// between chunks, so all matrices a chunk's graph needs come from the
	// tape's arena: the steady-state scoring path performs zero matrix
	// allocations. Predictions are extracted before the next Reset.
	score := func(tp *autodiff.Tape, k int) {
		c := chunks[k]
		tp.Reset()
		pred := m.forward(tp, scored[c.lo:c.hi], sp)
		defer sp.Stage("decode")()
		for i := c.lo; i < c.hi; i++ {
			dst := i
			if order != nil {
				dst = order[i]
			}
			out[dst] = invTransform(pred.Value.At(i-c.lo, 0))
		}
	}

	if workers <= 1 {
		tp := m.tapes.get()
		defer m.tapes.put(tp)
		for k := 0; k < nChunks; k++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			score(tp, k)
		}
		m.instr.observePredict(len(samples), time.Since(start))
		return out, nil
	}
	var next atomic.Int64
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tp := m.tapes.get()
			defer m.tapes.put(tp)
			for {
				if ctx.Err() != nil {
					aborted.Store(true)
					return
				}
				k := int(next.Add(1)) - 1
				if k >= nChunks {
					return
				}
				score(tp, k)
			}
		}()
	}
	wg.Wait()
	if aborted.Load() {
		return nil, ctx.Err()
	}
	m.instr.observePredict(len(samples), time.Since(start))
	return out, nil
}

// transform maps a cost in seconds to the training scale; the models
// regress log cost, which tames the heavy-tailed label distribution.
func transform(sec float64) float64 { return math.Log1p(sec) }

// invTransform maps a prediction back to seconds.
func invTransform(y float64) float64 {
	v := math.Expm1(y)
	if v < 0 {
		v = 0
	}
	return v
}

// modelSnapshot is the serialized form of a model.
type modelSnapshot struct {
	Var Variant
	Cfg Config
}

// Save writes the model (magic header, variant, config, weights) to w.
func (m *Model) Save(w io.Writer) error {
	if err := WriteHeader(w, ModelMagic, ModelVersion); err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(modelSnapshot{Var: m.Var, Cfg: m.Cfg}); err != nil {
		return fmt.Errorf("core: encoding model header: %w", err)
	}
	return nn.Save(w, m.Params())
}

// LoadModel reads a model previously written by Save. Truncated, corrupt,
// foreign, and version-mismatched files are rejected with descriptive
// errors rather than opaque gob failures or panics.
func LoadModel(r io.Reader) (*Model, error) {
	// The stream holds two gob sections (header, then weights), each read
	// by its own decoder. A gob.Decoder wraps any reader that is not an
	// io.ByteReader in its own read-ahead buffer, which would consume
	// bytes belonging to the next section — so give all sections one
	// shared buffered reader. (bytes.Buffer is already a ByteReader,
	// which is why only file-backed loads ever desynchronized.)
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	if err := ReadHeader(r, ModelMagic, ModelVersion, "model"); err != nil {
		return nil, err
	}
	var snap modelSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding model header (truncated or corrupt model file): %w", err)
	}
	if err := snap.Cfg.validate(); err != nil {
		return nil, err
	}
	m := NewModel(snap.Var, snap.Cfg)
	if err := nn.Load(r, m.Params()); err != nil {
		return nil, fmt.Errorf("core: loading model weights (truncated or corrupt model file): %w", err)
	}
	return m, nil
}

// validate rejects decoded configurations whose dimensions could not have
// come from a real save — NewModel would panic allocating them otherwise,
// so a corrupt (but gob-parseable) header must be caught here.
func (c Config) validate() error {
	switch {
	case c.SemDim <= 0 || c.SemDim > 1<<20:
		return fmt.Errorf("core: corrupt model file: semantic dim %d out of range", c.SemDim)
	case c.MaxNodes <= 0 || c.MaxNodes > 1<<20:
		return fmt.Errorf("core: corrupt model file: max nodes %d out of range", c.MaxNodes)
	case c.ResDim <= 0 || c.ResDim > 1<<20:
		return fmt.Errorf("core: corrupt model file: resource dim %d out of range", c.ResDim)
	case c.StatsDim < 0 || c.StatsDim > 1<<20:
		return fmt.Errorf("core: corrupt model file: stats dim %d out of range", c.StatsDim)
	case c.Hidden <= 0 || c.Hidden > 1<<20:
		return fmt.Errorf("core: corrupt model file: hidden dim %d out of range", c.Hidden)
	case c.K <= 0 || c.K > 1<<20:
		return fmt.Errorf("core: corrupt model file: attention dim %d out of range", c.K)
	}
	return nil
}
