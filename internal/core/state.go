package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"raal/internal/nn"
)

// Training-state files (and the train-state section of checkpoints) open
// with their own magic header so a model file fed to LoadTrainState — or
// vice versa — fails with a clear error, not a gob parse failure.
const (
	// TrainStateMagic opens a serialized TrainState.
	TrainStateMagic = "RAALopt"
	// TrainStateVersion is the current train-state format version.
	TrainStateVersion byte = 1
)

// TrainState captures everything Fit needs beyond the weights to continue
// a training run exactly where it stopped: the Adam moments and step
// counter, plus how many epochs have been consumed from the seeded shuffle
// stream. With it, Fit(2k epochs) and Fit(k) → Save → Load → Fit(k) are
// bit-identical for a fixed sample sequence — the warm-start invariant the
// online learning loop's incremental retraining rests on (pinned by
// TestFitResumeBitEqual).
type TrainState struct {
	// Epochs is how many epochs this state has trained through under the
	// run's Seed. Fit fast-forwards the shuffle RNG by this many epochs
	// before training, so the continuation consumes the exact permutations
	// the uninterrupted run would have.
	Epochs int
	// Opt is the Adam step counter and per-parameter moment vectors.
	Opt nn.AdamState
}

// NewTrainState returns an empty state: resuming from it is identical to
// a cold start, and Fit fills it in as it trains.
func NewTrainState() *TrainState {
	return &TrainState{Opt: nn.AdamState{M: map[string][]float64{}, V: map[string][]float64{}}}
}

// Clone deep-copies the state so a challenger can continue training
// without perturbing the champion's resumable snapshot.
func (st *TrainState) Clone() *TrainState {
	c := &TrainState{Epochs: st.Epochs, Opt: nn.AdamState{
		T: st.Opt.T,
		M: make(map[string][]float64, len(st.Opt.M)),
		V: make(map[string][]float64, len(st.Opt.V)),
	}}
	for k, v := range st.Opt.M {
		c.Opt.M[k] = append([]float64(nil), v...)
	}
	for k, v := range st.Opt.V {
		c.Opt.V[k] = append([]float64(nil), v...)
	}
	return c
}

// Save writes the state (magic header + gob payload) to w.
func (st *TrainState) Save(w io.Writer) error {
	if err := WriteHeader(w, TrainStateMagic, TrainStateVersion); err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("core: encoding train state: %w", err)
	}
	return nil
}

// LoadTrainState reads a state previously written by Save. Truncated,
// corrupt, foreign, and version-mismatched inputs are rejected with
// descriptive errors.
func LoadTrainState(r io.Reader) (*TrainState, error) {
	if err := ReadHeader(r, TrainStateMagic, TrainStateVersion, "train state"); err != nil {
		return nil, err
	}
	st := &TrainState{}
	if err := gob.NewDecoder(r).Decode(st); err != nil {
		return nil, fmt.Errorf("core: decoding train state (truncated or corrupt file): %w", err)
	}
	if st.Epochs < 0 || st.Opt.T < 0 {
		return nil, fmt.Errorf("core: corrupt train state: negative epoch (%d) or step (%d) counter", st.Epochs, st.Opt.T)
	}
	if st.Opt.M == nil {
		st.Opt.M = map[string][]float64{}
	}
	if st.Opt.V == nil {
		st.Opt.V = map[string][]float64{}
	}
	return st, nil
}

// Clone returns a model of the same variant and configuration with a
// deep copy of the weights: training the clone never perturbs the
// original, which is what lets a challenger continue from the serving
// champion while the champion keeps answering traffic.
func (m *Model) Clone() *Model {
	c := NewModel(m.Var, m.Cfg)
	src, dst := m.Params(), c.Params()
	for i := range src {
		copy(dst[i].Var.Value.Data, src[i].Var.Value.Data)
	}
	return c
}
