// Package core implements the paper's primary contribution: the
// Resource-Aware Attentional LSTM cost model (RAAL, Sec. IV-D) and its
// ablation variants, with training and batched inference.
//
// The architecture follows Fig. 5: an embedding of the plan (node-semantic
// ⊕ structure features) flows through a plan feature layer (LSTM — or CNN
// for the RAAC variant), then through two attention layers — node-aware
// attention over each node's children (Eqs. 8–9) and resource-aware
// attention between the normalized resource vector and every node
// (Eqs. 10–11) — whose outputs are concatenated with the statistical
// features and regressed to an execution cost through dense layers,
// trained with MSE loss.
package core

// Variant selects a model architecture from the paper's ablation grid
// (Table IV / Table VII).
type Variant struct {
	// Name identifies the variant in reports ("RAAL", "NE-LSTM", ...).
	Name string
	// Structure includes the plan-structure embedding in node inputs;
	// NE-LSTM turns this off.
	Structure bool
	// NodeAttention enables the node-aware attention layer; NA-LSTM
	// turns this off (mean pooling instead).
	NodeAttention bool
	// ResourceAttention enables the resource-aware attention layer; the
	// Table VII "without" columns turn this off, making the model
	// resource-blind.
	ResourceAttention bool
	// CNN replaces the LSTM plan-feature layer with a 1-D CNN (RAAC).
	CNN bool
}

// RAAL is the full model.
func RAAL() Variant {
	return Variant{Name: "RAAL", Structure: true, NodeAttention: true, ResourceAttention: true}
}

// NELSTM is RAAL without the structure feature embedding.
func NELSTM() Variant {
	return Variant{Name: "NE-LSTM", Structure: false, NodeAttention: true, ResourceAttention: true}
}

// NALSTM is RAAL without the node-aware attention layer.
func NALSTM() Variant {
	return Variant{Name: "NA-LSTM", Structure: true, NodeAttention: false, ResourceAttention: true}
}

// RAAC is RAAL with a CNN plan-feature layer instead of the LSTM.
func RAAC() Variant {
	return Variant{Name: "RAAC", Structure: true, NodeAttention: true, ResourceAttention: true, CNN: true}
}

// WithoutResources returns the variant with the resource-aware attention
// layer removed (the left columns of Table VII).
func (v Variant) WithoutResources() Variant {
	v.ResourceAttention = false
	v.Name += "-noRes"
	return v
}

// AllVariants returns the paper's four architectures.
func AllVariants() []Variant {
	return []Variant{RAAL(), NELSTM(), NALSTM(), RAAC()}
}
