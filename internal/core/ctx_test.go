package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestPredictCtxMatchesPredictWith: with a live context, PredictCtx must
// be bit-identical to PredictWith for every parallelism setting — the
// cancellation checks are pure control flow.
func TestPredictCtxMatchesPredictWith(t *testing.T) {
	samples := synthDataset(150, 31)
	tc := quickTrain()
	tc.Epochs = 2
	m, _, err := Train(samples, RAAL(), testConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	want := m.PredictWith(samples, PredictOpts{Workers: 1, ChunkSize: 64})
	for _, opt := range []PredictOpts{
		{},
		{Workers: 1, ChunkSize: 16},
		{Workers: 4, ChunkSize: 7},
	} {
		got, err := m.PredictCtx(context.Background(), samples, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("opts %+v: prediction %d differs: %v vs %v", opt, i, got[i], want[i])
			}
		}
	}
}

// TestPredictCtxCancelled: a pre-cancelled context must abort before any
// forward pass, serially and in parallel, with context.Canceled.
func TestPredictCtxCancelled(t *testing.T) {
	samples := synthDataset(200, 32)
	m := NewModel(RAAL(), testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opt := range []PredictOpts{
		{Workers: 1, ChunkSize: 8},
		{Workers: 4, ChunkSize: 8},
	} {
		start := time.Now()
		preds, err := m.PredictCtx(ctx, samples, opt)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("opts %+v: want context.Canceled, got %v", opt, err)
		}
		if preds != nil {
			t.Fatalf("opts %+v: cancelled predict should return nil predictions", opt)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("opts %+v: cancelled predict took %v", opt, d)
		}
	}
}

// TestPredictCtxExpiredDeadline: an already-expired deadline behaves like
// cancellation but reports context.DeadlineExceeded.
func TestPredictCtxExpiredDeadline(t *testing.T) {
	samples := synthDataset(64, 33)
	m := NewModel(RAAL(), testConfig())
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := m.PredictCtx(ctx, samples, PredictOpts{Workers: 2}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestPredictCtxMidBatchCancellation cancels while chunks are in flight:
// the scorer must stop claiming work and return the context error rather
// than finishing the whole batch.
func TestPredictCtxMidBatchCancellation(t *testing.T) {
	samples := synthDataset(600, 34)
	m := NewModel(RAAL(), testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Cancel as soon as scoring has plausibly begun; even if the
		// batch wins the race the call must still succeed.
		time.Sleep(time.Millisecond)
		cancel()
	}()
	preds, err := m.PredictCtx(ctx, samples, PredictOpts{Workers: 2, ChunkSize: 4})
	<-done
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error: %v", err)
	}
	if err == nil && len(preds) != len(samples) {
		t.Fatalf("uncancelled call returned %d predictions", len(preds))
	}
}

// TestModelFileHeaderRejections exercises every section boundary of a
// bare-network file: truncations, bad magic, and version skew must each
// produce a descriptive error — and never a panic.
func TestModelFileHeaderRejections(t *testing.T) {
	m := NewModel(RAAL(), testConfig())
	var full bytes.Buffer
	if err := m.Save(&full); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()

	headerLen := len(ModelMagic) + 1
	var snapBuf bytes.Buffer
	if err := gob.NewEncoder(&snapBuf).Encode(modelSnapshot{Var: m.Var, Cfg: m.Cfg}); err != nil {
		t.Fatal(err)
	}
	weightsAt := headerLen + snapBuf.Len()
	if weightsAt >= len(raw) {
		t.Fatalf("section math wrong: weights boundary %d beyond file %d", weightsAt, len(raw))
	}

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"mid-magic", raw[:3], "truncated"},
		{"header only", raw[:headerLen], "model header"},
		{"mid-snapshot", raw[:headerLen+snapBuf.Len()/2], "model header"},
		{"snapshot boundary (weights missing)", raw[:weightsAt], "weights"},
		{"mid-weights", raw[:weightsAt+(len(raw)-weightsAt)/2], "weights"},
		{"foreign magic", append([]byte("NOTRAAL"), raw[len(ModelMagic):]...), "bad magic"},
		{"future version", flipVersion(raw, len(ModelMagic)), "version mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("LoadModel panicked: %v", r)
				}
			}()
			_, err := LoadModel(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt file loaded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q should mention %q", err, tc.want)
			}
		})
	}
}

// TestModelFileCorruptConfigRejected: a gob-valid header whose dimensions
// are garbage must be rejected by validation, not die inside NewModel.
func TestModelFileCorruptConfigRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeader(&buf, ModelMagic, ModelVersion); err != nil {
		t.Fatal(err)
	}
	bad := modelSnapshot{Var: RAAL(), Cfg: Config{SemDim: -4, MaxNodes: 6, ResDim: 8, StatsDim: 6, Hidden: 16, K: 8}}
	if err := gob.NewEncoder(&buf).Encode(bad); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("LoadModel panicked on corrupt config: %v", r)
		}
	}()
	_, err := LoadModel(&buf)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want dimension rejection, got %v", err)
	}
}

func flipVersion(raw []byte, at int) []byte {
	out := append([]byte(nil), raw...)
	out[at] = 99
	return out
}
