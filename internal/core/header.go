package core

import (
	"fmt"
	"io"
)

// Model files start with a short plain-bytes header — a magic string
// identifying the format plus a one-byte version — written before any gob
// section. gob streams carry no self-identification at all: feeding a
// truncated, corrupt, or unrelated file to a decoder yields errors like
// "gob: unknown type id" deep inside the payload. The header turns those
// into immediate, descriptive rejections, and gives the format room to
// evolve (a version bump is a one-line change on both sides).
const (
	// ModelMagic opens a bare network file (core.Model.Save).
	ModelMagic = "RAALnet"
	// ModelVersion is the current bare-network format version.
	ModelVersion byte = 1
)

// WriteHeader writes a format header (magic string + version byte) to w.
func WriteHeader(w io.Writer, magic string, version byte) error {
	if _, err := w.Write(append([]byte(magic), version)); err != nil {
		return fmt.Errorf("core: writing %s header: %w", magic, err)
	}
	return nil
}

// ReadHeader consumes and validates a format header. what names the file
// kind for error messages ("model", "cost model"). The three failure modes
// are distinguished: truncation, foreign/bad magic (including pre-header
// v0 files), and a version this build does not read.
func ReadHeader(r io.Reader, magic string, version byte, what string) error {
	buf := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("core: not a RAAL %s file: truncated before the %d-byte header (%v)",
			what, len(magic)+1, err)
	}
	if string(buf[:len(magic)]) != magic {
		return fmt.Errorf("core: not a RAAL %s file: bad magic %q (want %q) — "+
			"either a foreign file or a pre-versioned v0 save; v0 files must be re-saved by a current build",
			what, buf[:len(magic)], magic)
	}
	if got := buf[len(magic)]; got != version {
		return fmt.Errorf("core: RAAL %s file version mismatch: file is v%d, this build reads v%d",
			what, got, version)
	}
	return nil
}
