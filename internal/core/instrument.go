package core

import (
	"time"

	"raal/internal/telemetry"
)

// Instrumentation is the model layer's metric set: inference latency and
// throughput, plus training progress gauges. A nil *Instrumentation is
// valid and inert — every observation on it is a no-op — so models serve
// unobserved by default and gain telemetry only when Instrument is
// called (or TrainConfig.Instr is set).
type Instrumentation struct {
	// PredictLatency observes one value per Predict/PredictCtx call (the
	// whole batch, in seconds); PredictRows counts the samples scored;
	// RowsPerSec is the most recent call's throughput.
	PredictLatency *telemetry.Histogram
	PredictRows    *telemetry.Counter
	RowsPerSec     *telemetry.Gauge

	// TrainEpochs counts completed epochs; TrainLoss is the latest
	// epoch's sample-weighted mean training loss (log-cost MSE);
	// ShardsPerSec is the latest epoch's gradient-shard throughput.
	TrainEpochs  *telemetry.Counter
	TrainLoss    *telemetry.Gauge
	ShardsPerSec *telemetry.Gauge
}

// NewInstrumentation registers the model metric set on reg.
func NewInstrumentation(reg *telemetry.Registry) *Instrumentation {
	return &Instrumentation{
		PredictLatency: reg.NewHistogram("raal_predict_latency_seconds",
			"Latency of one Predict call (whole batch).", nil),
		PredictRows: reg.NewCounter("raal_predict_rows_total",
			"Samples scored by Predict."),
		RowsPerSec: reg.NewGauge("raal_predict_rows_per_sec",
			"Throughput of the most recent Predict call."),
		TrainEpochs: reg.NewCounter("raal_train_epochs_total",
			"Completed training epochs."),
		TrainLoss: reg.NewGauge("raal_train_epoch_loss",
			"Latest epoch's sample-weighted mean training loss (log-cost MSE)."),
		ShardsPerSec: reg.NewGauge("raal_train_shards_per_sec",
			"Latest epoch's gradient-shard throughput."),
	}
}

// observePredict records one finished prediction batch. Nil-safe.
func (ins *Instrumentation) observePredict(rows int, elapsed time.Duration) {
	if ins == nil {
		return
	}
	sec := elapsed.Seconds()
	ins.PredictLatency.Observe(sec)
	ins.PredictRows.Add(uint64(rows))
	if sec > 0 {
		ins.RowsPerSec.Set(float64(rows) / sec)
	}
}

// observeEpoch records one finished training epoch. Nil-safe.
func (ins *Instrumentation) observeEpoch(loss float64, shards int, elapsed time.Duration) {
	if ins == nil {
		return
	}
	ins.TrainEpochs.Inc()
	ins.TrainLoss.Set(loss)
	if sec := elapsed.Seconds(); sec > 0 {
		ins.ShardsPerSec.Set(float64(shards) / sec)
	}
}

// Instrument attaches the metric set to the model: subsequent
// Predict/PredictCtx calls observe latency and throughput into it. Safe
// to call once at wiring time; the field is read concurrently afterwards.
func (m *Model) Instrument(ins *Instrumentation) { m.instr = ins }
