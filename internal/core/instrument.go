package core

import (
	"time"

	"raal/internal/telemetry"
)

// Instrumentation is the model layer's metric set: inference latency and
// throughput, plus training progress gauges. A nil *Instrumentation is
// valid and inert — every observation on it is a no-op — so models serve
// unobserved by default and gain telemetry only when Instrument is
// called (or TrainConfig.Instr is set).
type Instrumentation struct {
	// PredictLatency observes one value per Predict/PredictCtx call (the
	// whole batch, in seconds); PredictRows counts the samples scored;
	// RowsPerSec is the most recent call's throughput.
	PredictLatency *telemetry.Histogram
	PredictRows    *telemetry.Counter
	RowsPerSec     *telemetry.Gauge

	// BucketOccupancy counts scored samples by active-plan-length band —
	// the length-bucketed scheduler's occupancy distribution. A workload
	// that lands everything in one band gains nothing from bucketing; a
	// spread-out distribution is exactly where it saves padded timesteps.
	BucketOccupancy *telemetry.CounterVec

	// TrainEpochs counts completed epochs; TrainLoss is the latest
	// epoch's sample-weighted mean training loss (log-cost MSE);
	// ShardsPerSec is the latest epoch's gradient-shard throughput.
	TrainEpochs  *telemetry.Counter
	TrainLoss    *telemetry.Gauge
	ShardsPerSec *telemetry.Gauge
}

// bucketBands are the pre-materialized active-length label values; label
// children are built at registration time so the scoring path only pays
// atomic adds.
var bucketBands = []string{"1-2", "3-4", "5-8", "9-16", "17-32", "33+"}

// bucketBand maps an active plan length to its occupancy label.
func bucketBand(l int) string {
	switch {
	case l <= 2:
		return "1-2"
	case l <= 4:
		return "3-4"
	case l <= 8:
		return "5-8"
	case l <= 16:
		return "9-16"
	case l <= 32:
		return "17-32"
	default:
		return "33+"
	}
}

// NewInstrumentation registers the model metric set on reg.
func NewInstrumentation(reg *telemetry.Registry) *Instrumentation {
	return &Instrumentation{
		PredictLatency: reg.NewHistogram("raal_predict_latency_seconds",
			"Latency of one Predict call (whole batch).", nil),
		PredictRows: reg.NewCounter("raal_predict_rows_total",
			"Samples scored by Predict."),
		RowsPerSec: reg.NewGauge("raal_predict_rows_per_sec",
			"Throughput of the most recent Predict call."),
		BucketOccupancy: reg.NewCounterVec("raal_predict_bucket_occupancy_total",
			"Samples scored by the length-bucketed scheduler, by active-plan-length band.",
			"len", bucketBands...),
		TrainEpochs: reg.NewCounter("raal_train_epochs_total",
			"Completed training epochs."),
		TrainLoss: reg.NewGauge("raal_train_epoch_loss",
			"Latest epoch's sample-weighted mean training loss (log-cost MSE)."),
		ShardsPerSec: reg.NewGauge("raal_train_shards_per_sec",
			"Latest epoch's gradient-shard throughput."),
	}
}

// observePredict records one finished prediction batch. Nil-safe.
func (ins *Instrumentation) observePredict(rows int, elapsed time.Duration) {
	if ins == nil {
		return
	}
	sec := elapsed.Seconds()
	ins.PredictLatency.Observe(sec)
	ins.PredictRows.Add(uint64(rows))
	if sec > 0 {
		ins.RowsPerSec.Set(float64(rows) / sec)
	}
}

// observeBuckets records one scheduled Predict call's active-length
// distribution. Nil-safe.
func (ins *Instrumentation) observeBuckets(lens []int) {
	if ins == nil {
		return
	}
	for _, l := range lens {
		ins.BucketOccupancy.With(bucketBand(l)).Inc()
	}
}

// observeEpoch records one finished training epoch. Nil-safe.
func (ins *Instrumentation) observeEpoch(loss float64, shards int, elapsed time.Duration) {
	if ins == nil {
		return
	}
	ins.TrainEpochs.Inc()
	ins.TrainLoss.Set(loss)
	if sec := elapsed.Seconds(); sec > 0 {
		ins.ShardsPerSec.Set(float64(shards) / sec)
	}
}

// Instrument attaches the metric set to the model: subsequent
// Predict/PredictCtx calls observe latency and throughput into it. Safe
// to call once at wiring time; the field is read concurrently afterwards.
func (m *Model) Instrument(ins *Instrumentation) { m.instr = ins }
