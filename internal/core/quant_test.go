package core

import (
	"errors"
	"testing"

	"raal/internal/metrics"
	"raal/internal/tensor"
)

// trainSmall trains one small model for the quantization tests.
func trainSmall(t *testing.T, v Variant, seed int64) *Model {
	t.Helper()
	m, _, err := Train(synthDataset(160, seed), v, testConfig(), quickTrain())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestQuantizedCloseToFloat64 pins the headline accuracy property: for
// every variant and both reduced precisions, the 0.9-quantile q-error
// delta against the float64 predictions stays within the serving bound,
// and VerifyQuantized admits the snapshot.
func TestQuantizedCloseToFloat64(t *testing.T) {
	eval := synthDataset(64, 99)
	variants := map[string]Variant{"raal": RAAL(), "nelstm": NELSTM(), "nalstm": NALSTM(), "raac": RAAC()}
	for name, v := range variants {
		m := trainSmall(t, v, 7)
		ref := m.Predict(eval)
		for _, p := range []Precision{PrecisionF32, PrecisionInt8} {
			qm, err := m.Quantize(QuantConfig{Precision: p})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, p, err)
			}
			got := qm.Predict(eval)
			delta := metrics.Quantile(metrics.QErrorDeltas(ref, got), GateQuantile)
			if delta > 0.05 {
				t.Fatalf("%s/%s: p90 q-error delta %.4f > 0.05", name, p, delta)
			}
			if err := VerifyQuantized(m, qm, eval, 0.05); err != nil {
				t.Fatalf("%s/%s: gate refused a good snapshot: %v", name, p, err)
			}
		}
	}
}

// TestQuantizedPredictDeterministic pins the f32 determinism contract:
// predictions are bit-identical across worker counts, chunk sizes, and
// bucketing settings.
func TestQuantizedPredictDeterministic(t *testing.T) {
	m := trainSmall(t, RAAL(), 11)
	qm, err := m.Quantize(QuantConfig{Precision: PrecisionInt8})
	if err != nil {
		t.Fatal(err)
	}
	eval := synthDataset(80, 101)
	want := qm.PredictWith(eval, PredictOpts{Workers: 1, ChunkSize: 7, NoBucket: true})
	opts := []PredictOpts{
		{Workers: 1, ChunkSize: 80},
		{Workers: 2, ChunkSize: 16},
		{Workers: 4, ChunkSize: 5},
		{Workers: 3, ChunkSize: 11, NoBucket: true},
	}
	for _, opt := range opts {
		got := qm.PredictWith(eval, opt)
		for i, v := range got {
			if v != want[i] {
				t.Fatalf("opts %+v: sample %d = %v, want %v (bit-identical)", opt, i, v, want[i])
			}
		}
	}
}

// TestQuantizedWarmPredictZeroAllocs pins the pooled-tape arena contract
// on the reduced-precision path: after warmup, repeated serial predicts
// allocate no f32 matrices.
func TestQuantizedWarmPredictZeroAllocs(t *testing.T) {
	m := trainSmall(t, RAAL(), 13)
	qm, err := m.Quantize(QuantConfig{Precision: PrecisionF32})
	if err != nil {
		t.Fatal(err)
	}
	eval := synthDataset(32, 103)
	opt := PredictOpts{Workers: 1}
	qm.PredictWith(eval, opt) // warm the tape pool
	before := tensor.Allocs32()
	for i := 0; i < 3; i++ {
		qm.PredictWith(eval, opt)
	}
	if got := tensor.Allocs32() - before; got != 0 {
		t.Fatalf("warm quantized predict allocated %d f32 matrices, want 0", got)
	}
}

// TestQuantGateRefusal deliberately violates the bound and requires the
// typed refusal: a corrupted snapshot must come back as *QuantGateError
// with the precision and quantile filled in.
func TestQuantGateRefusal(t *testing.T) {
	m := trainSmall(t, RAAL(), 17)
	qm, err := m.Quantize(QuantConfig{Precision: PrecisionInt8})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the output layer bias: every prediction shifts, so the
	// q-error delta blows through any reasonable bound.
	out := qm.head.Layers[len(qm.head.Layers)-1]
	for i := range out.B.Data {
		out.B.Data[i] += 2
	}
	eval := synthDataset(48, 107)
	err = VerifyQuantized(m, qm, eval, 0.05)
	var gateErr *QuantGateError
	if !errors.As(err, &gateErr) {
		t.Fatalf("gate returned %v, want *QuantGateError", err)
	}
	if gateErr.Precision != PrecisionInt8 || gateErr.Quantile != GateQuantile || gateErr.Delta <= gateErr.Bound {
		t.Fatalf("gate error fields wrong: %+v", gateErr)
	}
}

// TestQuantizeRejectsF64 pins the config contract: f64 is the reference
// path, not a quantization target.
func TestQuantizeRejectsF64(t *testing.T) {
	m := NewModel(RAAL(), testConfig())
	if _, err := m.Quantize(QuantConfig{Precision: PrecisionF64}); err == nil {
		t.Fatal("Quantize(f64) succeeded, want error")
	}
}

// TestParsePrecision round-trips the CLI spellings.
func TestParsePrecision(t *testing.T) {
	for _, p := range []Precision{PrecisionF64, PrecisionF32, PrecisionInt8} {
		got, err := ParsePrecision(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePrecision(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Fatal("ParsePrecision(f16) succeeded, want error")
	}
}

// BenchmarkPredictQuant compares warm batch inference across precisions
// at the BenchmarkPredict shape (512 samples, chunk 32, serial scorer).
func BenchmarkPredictQuant(b *testing.B) {
	samples := benchSamples(512)
	tc := quickTrain()
	tc.Epochs = 1
	m, _, err := Train(samples[:128], RAAL(), testConfig(), tc)
	if err != nil {
		b.Fatal(err)
	}
	opt := PredictOpts{Workers: 1, ChunkSize: 32}
	b.Run("f64", func(b *testing.B) {
		m.PredictWith(samples, opt)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.PredictWith(samples, opt)
		}
	})
	for _, p := range []Precision{PrecisionF32, PrecisionInt8} {
		qm, err := m.Quantize(QuantConfig{Precision: p})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(p.String(), func(b *testing.B) {
			qm.PredictWith(samples, opt)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qm.PredictWith(samples, opt)
			}
		})
	}
}
