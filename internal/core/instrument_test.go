package core

import (
	"testing"

	"raal/internal/telemetry"
)

// TestPredictTracedStageBreakdown is the span acceptance check: a traced
// predict exposes the per-stage forward-pass decomposition, every stage
// duration is non-negative, and — because the traced path is serial — the
// stage durations sum to at most the span's total wall time.
func TestPredictTracedStageBreakdown(t *testing.T) {
	samples := synthDataset(32, 7)
	m := NewModel(RAAL(), testConfig())

	preds, sp := m.PredictTraced(samples)
	if len(preds) != len(samples) {
		t.Fatalf("got %d predictions, want %d", len(preds), len(samples))
	}

	stages := sp.Stages()
	got := make(map[string]bool, len(stages))
	var sum float64
	for _, st := range stages {
		if st.Dur < 0 {
			t.Errorf("stage %q has negative duration %v", st.Name, st.Dur)
		}
		got[st.Name] = true
		sum += st.Dur.Seconds()
	}
	for _, want := range []string{"embed", "lstm", "attention", "dense", "decode"} {
		if !got[want] {
			t.Errorf("span is missing stage %q (have %v)", want, stages)
		}
	}
	if total := sp.Total().Seconds(); sum > total {
		t.Errorf("stage durations sum to %.6fs > span total %.6fs", sum, total)
	}
	if sp.Total() <= 0 {
		t.Errorf("span total = %v, want > 0", sp.Total())
	}
}

// TestPredictTracedMatchesPredict confirms tracing is observation only:
// the traced path returns bit-identical predictions.
func TestPredictTracedMatchesPredict(t *testing.T) {
	samples := synthDataset(20, 3)
	m := NewModel(RAAC(), testConfig()) // conv branch: embed → conv stages
	want := m.Predict(samples)
	got, sp := m.PredictTraced(samples)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prediction %d: traced %v != plain %v", i, got[i], want[i])
		}
	}
	if sp.Dur("conv") < 0 || sp.Dur("embed") < 0 {
		t.Fatalf("conv-branch span missing stages: %v", sp)
	}
	found := false
	for _, st := range sp.Stages() {
		if st.Name == "conv" {
			found = true
		}
	}
	if !found {
		t.Errorf("CNN variant span should record a conv stage, got %v", sp.Stages())
	}
}

// TestInstrumentationObservesPredictAndFit wires a registry through both
// inference and training and checks the metric families move.
func TestInstrumentationObservesPredictAndFit(t *testing.T) {
	reg := telemetry.NewRegistry()
	ins := NewInstrumentation(reg)

	samples := synthDataset(48, 5)
	m := NewModel(RAAL(), testConfig())
	m.Instrument(ins)
	m.Predict(samples)
	if got := ins.PredictRows.Value(); got != 48 {
		t.Errorf("predict rows counter = %d, want 48", got)
	}
	if n := ins.PredictLatency.Count(); n != 1 {
		t.Errorf("predict latency observations = %d, want 1", n)
	}

	tc := quickTrain()
	tc.Epochs = 2
	tc.Instr = ins
	if _, err := m.Fit(samples, tc); err != nil {
		t.Fatal(err)
	}
	if got := ins.TrainEpochs.Value(); got != 2 {
		t.Errorf("train epochs counter = %d, want 2", got)
	}
	if loss := ins.TrainLoss.Value(); loss <= 0 {
		t.Errorf("train loss gauge = %v, want > 0", loss)
	}
}
