package core

import (
	"fmt"
	"math/rand"
	"time"

	"raal/internal/autodiff"
	"raal/internal/encode"
	"raal/internal/metrics"
	"raal/internal/nn"
	"raal/internal/tensor"
)

// TrainConfig controls optimization.
type TrainConfig struct {
	Epochs   int
	Batch    int
	LR       float64
	ClipNorm float64
	Seed     int64
	// Quiet suppresses the per-epoch progress callback.
	Progress func(epoch int, loss float64)
}

// DefaultTrainConfig returns the settings used by the experiment harness.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, Batch: 16, LR: 3e-3, ClipNorm: 5, Seed: 1}
}

// TrainResult reports what happened during training.
type TrainResult struct {
	LossCurve []float64 // mean MSE (log-cost scale) per epoch
	Duration  time.Duration
	Samples   int
}

// Train fits a fresh model of the given variant on samples.
func Train(samples []*encode.Sample, v Variant, mc Config, tc TrainConfig) (*Model, *TrainResult, error) {
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("core: no training samples")
	}
	if tc.Epochs <= 0 || tc.Batch <= 0 {
		return nil, nil, fmt.Errorf("core: invalid train config %+v", tc)
	}
	m := NewModel(v, mc)
	res, err := m.Fit(samples, tc)
	if err != nil {
		return nil, nil, err
	}
	return m, res, nil
}

// Fit trains the model in place on samples and returns the loss curve.
func (m *Model) Fit(samples []*encode.Sample, tc TrainConfig) (*TrainResult, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no training samples")
	}
	rng := rand.New(rand.NewSource(tc.Seed))
	params := m.Params()
	opt := nn.NewAdam(tc.LR)
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}

	start := time.Now()
	result := &TrainResult{Samples: len(samples)}
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		batches := 0
		for lo := 0; lo < len(idx); lo += tc.Batch {
			hi := lo + tc.Batch
			if hi > len(idx) {
				hi = len(idx)
			}
			batch := make([]*encode.Sample, hi-lo)
			target := tensor.New(hi-lo, 1)
			for i := lo; i < hi; i++ {
				batch[i-lo] = samples[idx[i]]
				target.Set(i-lo, 0, transform(samples[idx[i]].CostSec))
			}
			tp := autodiff.NewTape()
			loss := tp.MSE(m.forward(tp, batch), target)
			tp.Backward(loss)
			if tc.ClipNorm > 0 {
				nn.ClipGradNorm(params, tc.ClipNorm)
			}
			opt.Step(params)
			epochLoss += loss.Value.Data[0]
			batches++
		}
		epochLoss /= float64(batches)
		result.LossCurve = append(result.LossCurve, epochLoss)
		if tc.Progress != nil {
			tc.Progress(epoch, epochLoss)
		}
	}
	result.Duration = time.Since(start)
	return result, nil
}

// Evaluate computes the paper's metrics of the model on samples: RE, COR,
// and R² on raw seconds, MSE on the log-cost training scale (which is what
// keeps the paper's MSE magnitudes comparable across workloads).
func (m *Model) Evaluate(samples []*encode.Sample) (metrics.Result, error) {
	if len(samples) == 0 {
		return metrics.Result{}, fmt.Errorf("core: no evaluation samples")
	}
	est := m.Predict(samples)
	actual := make([]float64, len(samples))
	actLog := make([]float64, len(samples))
	estLog := make([]float64, len(samples))
	for i, s := range samples {
		actual[i] = s.CostSec
		actLog[i] = transform(s.CostSec)
		estLog[i] = transform(est[i])
	}
	res, err := metrics.Evaluate(actual, est)
	if err != nil {
		return metrics.Result{}, err
	}
	res.MSE = metrics.MSE(actLog, estLog)
	return res, nil
}
