package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"raal/internal/autodiff"
	"raal/internal/encode"
	"raal/internal/metrics"
	"raal/internal/nn"
)

// TrainConfig controls optimization.
type TrainConfig struct {
	Epochs   int
	Batch    int
	LR       float64
	ClipNorm float64
	Seed     int64
	// Workers is the number of goroutines used for intra-batch data
	// parallelism: each mini-batch is split into shards (see ShardSize),
	// and shards run forward/backward concurrently on private tapes.
	// <=0 or 1 trains serially. Workers never changes the result — shard
	// boundaries depend only on ShardSize, and shard gradients are merged
	// in shard order at a barrier — so any Workers value reproduces the
	// Workers=1 loss curve bit for bit.
	Workers int
	// ShardSize is the number of samples per gradient-accumulation shard
	// within a mini-batch. <=0 or >=Batch keeps each batch as a single
	// shard, which reproduces the serial trainer exactly. Smaller shards
	// expose parallelism to Workers; the summed shard gradients equal the
	// full-batch gradient up to floating-point association, so changing
	// ShardSize (unlike Workers) may perturb the trajectory at round-off
	// scale.
	ShardSize int
	// Progress, if non-nil, is invoked after every epoch with the 0-based
	// epoch index and that epoch's sample-weighted mean training loss
	// (the same value appended to TrainResult.LossCurve). A nil Progress
	// simply trains silently; there is no separate quiet switch.
	Progress func(epoch int, loss float64)
	// Instr, if non-nil, receives per-epoch training telemetry: the epoch
	// counter, latest epoch loss, and gradient-shard throughput. Nil
	// trains unobserved.
	Instr *Instrumentation
	// State, if non-nil, warm-starts Fit from a previous run and records
	// where this run stopped. On entry Fit restores the Adam step counter
	// and moments from State.Opt (a mismatched snapshot — different
	// architecture or config — is a descriptive error) and fast-forwards
	// the shuffle RNG past the State.Epochs permutations the earlier run
	// already consumed, so for a fixed sample sequence Fit(2k) bit-equals
	// Fit(k) → Save → Load → Fit(k). On return Fit writes the updated
	// optimizer snapshot and epoch count back into State, ready for the
	// next continuation. A fresh NewTrainState() behaves like a cold
	// start; nil trains cold without recording anything.
	State *TrainState
}

// DefaultTrainConfig returns the settings used by the experiment harness.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, Batch: 16, LR: 3e-3, ClipNorm: 5, Seed: 1}
}

// TrainResult reports what happened during training.
type TrainResult struct {
	LossCurve []float64 // sample-weighted mean MSE (log-cost scale) per epoch
	Duration  time.Duration
	Samples   int
}

// Train fits a fresh model of the given variant on samples.
func Train(samples []*encode.Sample, v Variant, mc Config, tc TrainConfig) (*Model, *TrainResult, error) {
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("core: no training samples")
	}
	if tc.Epochs <= 0 || tc.Batch <= 0 {
		return nil, nil, fmt.Errorf("core: invalid train config %+v", tc)
	}
	m := NewModel(v, mc)
	res, err := m.Fit(samples, tc)
	if err != nil {
		return nil, nil, err
	}
	return m, res, nil
}

// shardRun is one gradient-accumulation shard of a mini-batch: a replica
// model whose shadow parameters collect the shard's gradient, plus the
// shard's sample count and loss from the most recent batch.
type shardRun struct {
	model  *Model
	params []*nn.Param
	tape   *autodiff.Tape // reused across batches; its arena keeps the shard's matrices warm
	n      int
	loss   float64
}

// Fit trains the model in place on samples and returns the loss curve.
//
// Each mini-batch is split into fixed-size shards (tc.ShardSize); shards
// run forward/backward concurrently on tc.Workers goroutines against
// weight-sharing replicas, and their gradients are summed into the model's
// parameters in shard order before the optimizer step. Because the shard
// decomposition is independent of Workers and the reduction is ordered,
// training is deterministic for a given (Seed, Batch, ShardSize)
// regardless of how many workers execute it.
func (m *Model) Fit(samples []*encode.Sample, tc TrainConfig) (*TrainResult, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no training samples")
	}
	if tc.Epochs <= 0 || tc.Batch <= 0 {
		return nil, fmt.Errorf("core: invalid train config %+v", tc)
	}
	rng := rand.New(rand.NewSource(tc.Seed))
	params := m.Params()
	opt := nn.NewAdam(tc.LR)
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	if tc.State != nil {
		if err := opt.Restore(params, tc.State.Opt); err != nil {
			return nil, fmt.Errorf("core: cannot resume training: %w", err)
		}
		// Replay the permutations the earlier run consumed. This advances
		// the RNG *and* leaves idx in the exact permutation state an
		// uninterrupted run would carry into the next epoch — each epoch's
		// shuffle composes with the previous ones, so both matter.
		for e := 0; e < tc.State.Epochs; e++ {
			rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		}
	}

	workers := tc.Workers
	if workers <= 0 {
		workers = 1
	}
	shardSize := tc.ShardSize
	if shardSize <= 0 || shardSize > tc.Batch {
		shardSize = tc.Batch
	}
	// One replica per shard of a full-size batch; short final batches use
	// a prefix. Replicas share m's weights, so this allocates only
	// gradient buffers.
	maxShards := (tc.Batch + shardSize - 1) / shardSize
	var shards []*shardRun
	if maxShards > 1 {
		shards = make([]*shardRun, maxShards)
		for k := range shards {
			r := m.replica()
			shards[k] = &shardRun{model: r, params: r.Params(), tape: autodiff.NewTape()}
		}
	}
	// Serial (single-shard) batches reuse one tape for the whole run: after
	// the first batch its arena holds every matrix the graph needs, so the
	// steady-state training step allocates none.
	serialTape := autodiff.NewTape()

	start := time.Now()
	result := &TrainResult{Samples: len(samples)}
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		epochStart := time.Now()
		epochShards := 0
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for lo := 0; lo < len(idx); lo += tc.Batch {
			hi := min(lo+tc.Batch, len(idx))
			n := hi - lo
			var batchLoss float64
			if maxShards == 1 {
				batchLoss = trainStep(m, serialTape, samples, idx[lo:hi])
				epochShards++
			} else {
				batchLoss = m.shardedStep(shards, samples, idx[lo:hi], shardSize, workers)
				epochShards += (n + shardSize - 1) / shardSize
			}
			if tc.ClipNorm > 0 {
				nn.ClipGradNorm(params, tc.ClipNorm)
			}
			opt.Step(params)
			// Weight each batch by its size so a short final batch does
			// not skew the epoch mean.
			epochLoss += batchLoss * float64(n)
		}
		epochLoss /= float64(len(idx))
		result.LossCurve = append(result.LossCurve, epochLoss)
		tc.Instr.observeEpoch(epochLoss, epochShards, time.Since(epochStart))
		if tc.Progress != nil {
			tc.Progress(epoch, epochLoss)
		}
	}
	result.Duration = time.Since(start)
	if tc.State != nil {
		tc.State.Opt = opt.Export(params)
		tc.State.Epochs += tc.Epochs
	}
	return result, nil
}

// trainStep runs one forward/backward pass of the selected samples on
// model, accumulating gradients into its parameters, and returns the mean
// MSE loss of the pass. The tape is reset and reused, so a warm caller
// performs the pass without matrix allocations.
func trainStep(model *Model, tp *autodiff.Tape, samples []*encode.Sample, sel []int) float64 {
	tp.Reset()
	batch := make([]*encode.Sample, len(sel))
	target := tp.NewMatrix(len(sel), 1)
	for i, j := range sel {
		batch[i] = samples[j]
		target.Set(i, 0, transform(samples[j].CostSec))
	}
	loss := tp.MSE(model.forward(tp, batch, nil), target)
	tp.Backward(loss)
	return loss.Value.Data[0]
}

// shardedStep splits the selected batch into fixed shardSize shards, runs
// them concurrently on up to `workers` goroutines, then merges the shard
// gradients into m's parameters in shard order (an ordered reduction, so
// the result is identical for any worker count). It returns the batch's
// sample-weighted mean loss.
func (m *Model) shardedStep(shards []*shardRun, samples []*encode.Sample, sel []int, shardSize, workers int) float64 {
	nShards := (len(sel) + shardSize - 1) / shardSize
	run := func(k int) {
		lo := k * shardSize
		hi := min(lo+shardSize, len(sel))
		sh := shards[k]
		sh.n = hi - lo
		sh.loss = trainStep(sh.model, sh.tape, samples, sel[lo:hi])
	}
	if workers <= 1 || nShards == 1 {
		for k := 0; k < nShards; k++ {
			run(k)
		}
	} else {
		if workers > nShards {
			workers = nShards
		}
		tasks := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := range tasks {
					run(k)
				}
			}()
		}
		for k := 0; k < nShards; k++ {
			tasks <- k
		}
		close(tasks)
		wg.Wait()
	}

	// Barrier reached: every shard holds ∂(its mean loss)/∂θ in its shadow
	// params. Scaling shard k by n_k/n while summing yields the gradient
	// of the batch's sample-weighted mean loss, matching the single-shard
	// full-batch MSE gradient up to floating-point association.
	n := float64(len(sel))
	params := m.Params()
	var batchLoss float64
	for k := 0; k < nShards; k++ {
		sh := shards[k]
		w := float64(sh.n) / n
		nn.AccumulateGrads(params, sh.params, w)
		batchLoss += w * sh.loss
	}
	return batchLoss
}

// Evaluate computes the paper's metrics of the model on samples: RE, COR,
// and R² on raw seconds, MSE on the log-cost training scale (which is what
// keeps the paper's MSE magnitudes comparable across workloads).
func (m *Model) Evaluate(samples []*encode.Sample) (metrics.Result, error) {
	if len(samples) == 0 {
		return metrics.Result{}, fmt.Errorf("core: no evaluation samples")
	}
	est := m.Predict(samples)
	actual := make([]float64, len(samples))
	actLog := make([]float64, len(samples))
	estLog := make([]float64, len(samples))
	for i, s := range samples {
		actual[i] = s.CostSec
		actLog[i] = transform(s.CostSec)
		estLog[i] = transform(est[i])
	}
	res, err := metrics.Evaluate(actual, est)
	if err != nil {
		return metrics.Result{}, err
	}
	res.MSE = metrics.MSE(actLog, estLog)
	return res, nil
}
