package baselines

import (
	"math"
	"math/rand"
	"testing"

	"raal/internal/cardest"
	"raal/internal/datagen"
	"raal/internal/encode"
	"raal/internal/engine"
	"raal/internal/logical"
	"raal/internal/physical"
	"raal/internal/sparksim"
	"raal/internal/sql"
	"raal/internal/tensor"
)

const (
	tSem   = 4
	tNodes = 6
)

// synthSample fabricates an encoded plan with a chain structure whose cost
// depends on node content.
func synthSample(rng *rand.Rand) *encode.Sample {
	dim := tSem + tNodes + 2
	s := &encode.Sample{
		Nodes:    tensor.New(tNodes, dim),
		Mask:     make([]bool, tNodes),
		Children: make([][]bool, tNodes),
		Resource: make([]float64, sparksim.NumFeatures),
		Stats:    make([]float64, encode.NumStats),
	}
	for i := range s.Children {
		s.Children[i] = make([]bool, tNodes)
	}
	n := 3 + rng.Intn(tNodes-2)
	var sig float64
	for i := 0; i < n; i++ {
		s.Mask[i] = true
		row := s.Nodes.Row(i)
		for d := 0; d < tSem; d++ {
			row[d] = rng.Float64()
			sig += row[d]
		}
		if i > 0 {
			s.Children[i][i-1] = true
		}
		row[tSem+tNodes] = rng.Float64()
	}
	s.CostSec = 1 + 2*sig
	return s
}

func synthDataset(n int, seed int64) []*encode.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*encode.Sample, n)
	for i := range out {
		out[i] = synthSample(rng)
	}
	return out
}

func TestTLSTMTrainReducesLoss(t *testing.T) {
	samples := synthDataset(150, 1)
	m := NewTLSTM(TLSTMConfig{SemDim: tSem, MaxNodes: tNodes, Hidden: 16, Seed: 1})
	res, err := m.Fit(samples, 8, 16, 5e-3, 1)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.LossCurve[0], res.LossCurve[len(res.LossCurve)-1]
	if last >= first*0.8 {
		t.Fatalf("TLSTM loss barely moved: %v → %v", first, last)
	}
}

func TestTLSTMLearnsSignal(t *testing.T) {
	train := synthDataset(300, 2)
	test := synthDataset(80, 3)
	m := NewTLSTM(TLSTMConfig{SemDim: tSem, MaxNodes: tNodes, Hidden: 16, Seed: 1})
	if _, err := m.Fit(train, 12, 16, 5e-3, 1); err != nil {
		t.Fatal(err)
	}
	r, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if r.COR < 0.5 {
		t.Fatalf("TLSTM failed to learn: %v", r)
	}
}

func TestTLSTMPredictNonNegative(t *testing.T) {
	samples := synthDataset(40, 4)
	m := NewTLSTM(TLSTMConfig{SemDim: tSem, MaxNodes: tNodes, Hidden: 8, Seed: 2})
	if _, err := m.Fit(samples, 2, 8, 5e-3, 1); err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Predict(samples) {
		if p < 0 || math.IsNaN(p) {
			t.Fatalf("bad prediction %v", p)
		}
	}
}

func TestTLSTMErrors(t *testing.T) {
	m := NewTLSTM(TLSTMConfig{SemDim: tSem, MaxNodes: tNodes, Hidden: 8, Seed: 1})
	if _, err := m.Fit(nil, 2, 8, 1e-3, 1); err == nil {
		t.Fatal("empty samples should error")
	}
	if _, err := m.Fit(synthDataset(5, 1), 0, 8, 1e-3, 1); err == nil {
		t.Fatal("zero epochs should error")
	}
	if _, err := m.Evaluate(nil); err == nil {
		t.Fatal("empty eval should error")
	}
}

// realPlans builds executed plans over the synthetic IMDB for GPSJ tests.
func realPlans(t *testing.T, query string) []*physical.Plan {
	t.Helper()
	db := datagen.IMDB(0.05, 1)
	est, err := cardest.New(db, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	q, err := logical.NewBinder(db).Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := physical.NewPlanner(est).Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(db)
	for _, p := range plans {
		if _, err := eng.Run(p); err != nil {
			t.Fatal(err)
		}
	}
	return plans
}

func TestGPSJPositiveAndDeterministic(t *testing.T) {
	plans := realPlans(t, `SELECT COUNT(*) FROM title t, movie_companies mc
		WHERE t.id = mc.movie_id AND mc.company_id < 100`)
	g := NewGPSJ(sparksim.DefaultConfig())
	res := sparksim.DefaultResources()
	for _, p := range plans {
		a := g.Estimate(p, res)
		b := g.Estimate(p, res)
		if a <= 0 || a != b {
			t.Fatalf("GPSJ estimate invalid: %v vs %v", a, b)
		}
	}
}

func TestGPSJMoreCoresCheaper(t *testing.T) {
	plans := realPlans(t, `SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 500`)
	g := NewGPSJ(sparksim.DefaultConfig())
	small := sparksim.DefaultResources()
	small.Executors = 1
	big := sparksim.DefaultResources()
	big.Executors = 8
	if g.Estimate(plans[0], big) >= g.Estimate(plans[0], small) {
		t.Fatal("GPSJ should scale with cores")
	}
}

func TestGPSJIgnoresMemory(t *testing.T) {
	// The hand-crafted model has no memory term — precisely its blind
	// spot in the paper's analysis.
	plans := realPlans(t, `SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	g := NewGPSJ(sparksim.DefaultConfig())
	lo := sparksim.DefaultResources()
	lo.ExecMemMB = 1024
	hi := sparksim.DefaultResources()
	hi.ExecMemMB = 12288
	if g.Estimate(plans[0], lo) != g.Estimate(plans[0], hi) {
		t.Fatal("GPSJ should be memory-blind")
	}
}

func TestGPSJUsesEstimatesNotActuals(t *testing.T) {
	plans := realPlans(t, `SELECT COUNT(*) FROM title t, movie_keyword mk WHERE t.id = mk.movie_id AND mk.keyword_id < 10`)
	g := NewGPSJ(sparksim.DefaultConfig())
	res := sparksim.DefaultResources()
	before := g.Estimate(plans[0], res)
	// Corrupt the actual cardinalities: GPSJ must not care.
	for _, n := range plans[0].Nodes {
		n.ActRows *= 1000
	}
	after := g.Estimate(plans[0], res)
	if before != after {
		t.Fatal("GPSJ should only read planner estimates")
	}
}

func TestGPSJEstimateAll(t *testing.T) {
	plans := realPlans(t, `SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	g := NewGPSJ(sparksim.DefaultConfig())
	costs := g.EstimateAll(plans, sparksim.DefaultResources())
	if len(costs) != len(plans) {
		t.Fatalf("EstimateAll length %d", len(costs))
	}
}
