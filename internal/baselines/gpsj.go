package baselines

import (
	"raal/internal/physical"
	"raal/internal/sparksim"
)

// GPSJ is the analytical cost model of Baldacci & Golfarelli for
// Generalized Projection/Selection/Join queries on Spark: a hand-crafted
// sum of disk, network, and CPU terms driven by database statistics and
// cluster parameters.
//
// Faithful to its design — and to why the paper beats it — GPSJ:
//
//   - consumes the optimizer's *estimated* cardinalities (never runtime
//     truth), so histogram and independence-assumption errors propagate
//     straight into its costs;
//   - assumes nominal, fixed hardware throughput: no page-cache benefit,
//     no GC growth with heap size, no straggler skew — the non-linear
//     resource effects of Sec. III that only a learned model captures.
type GPSJ struct {
	// Calibration constants (the original paper fits these with cluster
	// micro-benchmarks; these match the simulator's nominal hardware).
	ScanNsPerRow    float64
	JoinNsPerRow    float64
	AggNsPerRow     float64
	SortNsPerRow    float64
	RowScale        float64 // must match the workload's simulated scale
	TaskOverheadSec float64
}

// NewGPSJ returns a GPSJ model calibrated against the simulator's nominal
// constants.
func NewGPSJ(simConf sparksim.Config) *GPSJ {
	return &GPSJ{
		ScanNsPerRow:    simConf.ScanNsPerRow,
		JoinNsPerRow:    simConf.MergeNsPerRow,
		AggNsPerRow:     simConf.AggNsPerRow,
		SortNsPerRow:    simConf.SortNsPerRow,
		RowScale:        simConf.RowScale,
		TaskOverheadSec: simConf.AppStartupMs / 1000,
	}
}

// Estimate returns the analytical cost in seconds of plan p under res.
// Only planner estimates (EstRows) are consulted.
func (g *GPSJ) Estimate(p *physical.Plan, res sparksim.Resources) float64 {
	cores := float64(res.Slots())
	var cpuNs, diskBytes, netBytes float64

	for _, n := range p.Nodes {
		rows := n.EstRows * g.RowScale
		width := n.RowBytes
		if width <= 0 {
			width = 8
		}
		switch n.Op {
		case physical.FileScan:
			raw := n.RawRows * g.RowScale
			diskBytes += raw * width
			cpuNs += raw * g.ScanNsPerRow
		case physical.Filter, physical.Project, physical.LocalLimit:
			cpuNs += childRows(n) * g.RowScale * g.ScanNsPerRow * 0.2
		case physical.Sort:
			cpuNs += childRows(n) * g.RowScale * g.SortNsPerRow * 10
		case physical.SortMergeJoin, physical.BroadcastHashJoin, physical.BroadcastNestedLoopJoin:
			in := (childRows(n) + rows) * g.RowScale
			cpuNs += in * g.JoinNsPerRow
		case physical.HashAggregate, physical.SortAggregate:
			cpuNs += childRows(n) * g.RowScale * g.AggNsPerRow
		case physical.ExchangeHashPartition, physical.ExchangeSinglePartition:
			bytes := rows * width
			diskBytes += bytes // shuffle write
			netBytes += bytes  // shuffle read
		case physical.BroadcastExchange:
			netBytes += rows * width * float64(res.Executors)
		}
	}

	sec := cpuNs / 1e9 / cores
	sec += diskBytes / (res.DiskMBps * 1e6) / cores
	sec += netBytes / (res.NetMBps * 1e6) / cores
	sec += g.TaskOverheadSec
	return sec
}

// EstimateAll prices every plan.
func (g *GPSJ) EstimateAll(plans []*physical.Plan, res sparksim.Resources) []float64 {
	out := make([]float64, len(plans))
	for i, p := range plans {
		out[i] = g.Estimate(p, res)
	}
	return out
}

func childRows(n *physical.Node) float64 {
	var sum float64
	for _, c := range n.Children {
		sum += c.EstRows
	}
	return sum
}
