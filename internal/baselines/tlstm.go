// Package baselines implements the two comparison systems the paper
// evaluates against: TLSTM, the state-of-the-art learned cost model for
// relational databases (Sun & Li, 2019), and GPSJ, the analytical cost
// model for Spark SQL (Baldacci & Golfarelli, 2019).
package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"raal/internal/autodiff"
	"raal/internal/encode"
	"raal/internal/metrics"
	"raal/internal/nn"
	"raal/internal/tensor"
)

// TLSTM is a child-sum tree-LSTM cost model: each plan operator is an
// LSTM unit whose inputs are the operator's features and whose recurrent
// state flows from its children up the plan tree (the paper's description
// in Sec. V-A). It does not see resources — it was designed for RDBMSs
// with a fixed resource environment.
type TLSTM struct {
	In, Hidden int

	w  *nn.Param // In×3H: input projections for i, o, g gates
	u  *nn.Param // H×3H: child-sum recurrent projections
	b  *nn.Param // 1×3H
	wf *nn.Param // In×H: forget gate input projection
	uf *nn.Param // H×H: per-child forget gate projection
	bf *nn.Param // 1×H

	head *nn.MLP
}

// TLSTMConfig sets the model dimensions.
type TLSTMConfig struct {
	SemDim   int // node semantic width (matches the encoder)
	MaxNodes int
	Hidden   int
	Seed     int64
}

// NewTLSTM builds an untrained TLSTM. Node inputs are the semantic
// embedding plus per-node statistics (TLSTM models tree structure through
// recursion, not through structure features).
func NewTLSTM(cfg TLSTMConfig) *TLSTM {
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := cfg.SemDim + 2 // nodeStatFeatures
	h := cfg.Hidden
	t := &TLSTM{In: in, Hidden: h}
	t.w = nn.NewParam("tlstm.w", nn.Xavier(in, 3*h, rng))
	t.u = nn.NewParam("tlstm.u", nn.Xavier(h, 3*h, rng))
	t.b = nn.NewParam("tlstm.b", tensor.New(1, 3*h))
	t.wf = nn.NewParam("tlstm.wf", nn.Xavier(in, h, rng))
	t.uf = nn.NewParam("tlstm.uf", nn.Xavier(h, h, rng))
	bf := tensor.New(1, h)
	bf.Fill(1) // forget bias
	t.bf = nn.NewParam("tlstm.bf", bf)
	t.head = nn.NewMLP("tlstm.head", []int{h, h, 1}, nn.ReLU, rng)
	return t
}

// Params returns all trainable parameters.
func (t *TLSTM) Params() []*nn.Param {
	ps := []*nn.Param{t.w, t.u, t.b, t.wf, t.uf, t.bf}
	return append(ps, t.head.Params()...)
}

// nodeInput extracts the TLSTM input row for sample node i: semantic
// embedding and the two per-node statistics, skipping the structure block.
func (t *TLSTM) nodeInput(s *encode.Sample, i int) *tensor.Matrix {
	row := s.Nodes.Row(i)
	sem := t.In - 2
	out := tensor.New(1, t.In)
	structLen := s.Nodes.Cols - sem - 2
	copy(out.Data[:sem], row[:sem])
	copy(out.Data[sem:], row[sem+structLen:])
	return out
}

// encodeTree runs the tree recursion and returns the root's hidden state.
func (t *TLSTM) encodeTree(tp *autodiff.Tape, s *encode.Sample) *autodiff.Var {
	n := 0
	for _, m := range s.Mask {
		if m {
			n++
		}
	}
	if n == 0 {
		return tp.Const(tensor.New(1, t.Hidden))
	}
	type state struct{ h, c *autodiff.Var }
	states := make([]state, n)
	// Execution order is bottom-up: children always precede parents.
	for i := 0; i < n; i++ {
		x := tp.Const(t.nodeInput(s, i))
		var hsum, csum *autodiff.Var
		for j := 0; j < i; j++ {
			if !s.Children[i][j] {
				continue
			}
			// Per-child forget gate: f_j = σ(Wf·x + Uf·h_j + bf)
			fj := tp.Sigmoid(tp.AddRow(tp.Add(tp.MatMul(x, t.wf.Var), tp.MatMul(states[j].h, t.uf.Var)), t.bf.Var))
			fc := tp.Mul(fj, states[j].c)
			if hsum == nil {
				hsum = states[j].h
				csum = fc
			} else {
				hsum = tp.Add(hsum, states[j].h)
				csum = tp.Add(csum, fc)
			}
		}
		if hsum == nil {
			hsum = tp.Const(tensor.New(1, t.Hidden))
			csum = tp.Const(tensor.New(1, t.Hidden))
		}
		gates := tp.AddRow(tp.Add(tp.MatMul(x, t.w.Var), tp.MatMul(hsum, t.u.Var)), t.b.Var)
		h := t.Hidden
		ig := tp.Sigmoid(tp.SliceCols(gates, 0, h))
		og := tp.Sigmoid(tp.SliceCols(gates, h, 2*h))
		gg := tp.Tanh(tp.SliceCols(gates, 2*h, 3*h))
		c := tp.Add(csum, tp.Mul(ig, gg))
		states[i] = state{h: tp.Mul(og, tp.Tanh(c)), c: c}
	}
	return states[n-1].h // root is last in bottom-up order
}

func (t *TLSTM) forward(tp *autodiff.Tape, batch []*encode.Sample) *autodiff.Var {
	outs := make([]*autodiff.Var, len(batch))
	for i, s := range batch {
		outs[i] = t.head.Forward(tp, t.encodeTree(tp, s))
	}
	return tp.ConcatRows(outs...)
}

// TLSTMTrainResult reports training statistics.
type TLSTMTrainResult struct {
	LossCurve []float64
	Duration  time.Duration
}

// Fit trains the model with Adam on log-cost targets (same label scale as
// the core models, so metrics are comparable).
func (t *TLSTM) Fit(samples []*encode.Sample, epochs, batchSize int, lr float64, seed int64) (*TLSTMTrainResult, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("baselines: no training samples")
	}
	if epochs <= 0 || batchSize <= 0 {
		return nil, fmt.Errorf("baselines: invalid training config")
	}
	rng := rand.New(rand.NewSource(seed))
	opt := nn.NewAdam(lr)
	params := t.Params()
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	start := time.Now()
	res := &TLSTMTrainResult{}
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var sum float64
		batches := 0
		for lo := 0; lo < len(idx); lo += batchSize {
			hi := lo + batchSize
			if hi > len(idx) {
				hi = len(idx)
			}
			batch := make([]*encode.Sample, hi-lo)
			target := tensor.New(hi-lo, 1)
			for i := lo; i < hi; i++ {
				batch[i-lo] = samples[idx[i]]
				target.Set(i-lo, 0, math.Log1p(samples[idx[i]].CostSec))
			}
			tp := autodiff.NewTape()
			loss := tp.MSE(t.forward(tp, batch), target)
			tp.Backward(loss)
			nn.ClipGradNorm(params, 5)
			opt.Step(params)
			sum += loss.Value.Data[0]
			batches++
		}
		res.LossCurve = append(res.LossCurve, sum/float64(batches))
	}
	res.Duration = time.Since(start)
	return res, nil
}

// Predict returns estimated costs in seconds.
func (t *TLSTM) Predict(samples []*encode.Sample) []float64 {
	out := make([]float64, len(samples))
	const chunk = 64
	for lo := 0; lo < len(samples); lo += chunk {
		hi := lo + chunk
		if hi > len(samples) {
			hi = len(samples)
		}
		tp := autodiff.NewTape()
		pred := t.forward(tp, samples[lo:hi])
		for i := lo; i < hi; i++ {
			v := math.Expm1(pred.Value.At(i-lo, 0))
			if v < 0 {
				v = 0
			}
			out[i] = v
		}
	}
	return out
}

// Evaluate computes the paper's metrics (MSE on the log scale, like the
// core models).
func (t *TLSTM) Evaluate(samples []*encode.Sample) (metrics.Result, error) {
	if len(samples) == 0 {
		return metrics.Result{}, fmt.Errorf("baselines: no evaluation samples")
	}
	est := t.Predict(samples)
	actual := make([]float64, len(samples))
	actLog := make([]float64, len(samples))
	estLog := make([]float64, len(samples))
	for i, s := range samples {
		actual[i] = s.CostSec
		actLog[i] = math.Log1p(s.CostSec)
		estLog[i] = math.Log1p(est[i])
	}
	res, err := metrics.Evaluate(actual, est)
	if err != nil {
		return metrics.Result{}, err
	}
	res.MSE = metrics.MSE(actLog, estLog)
	return res, nil
}
