// Package datagen generates the synthetic benchmark databases used
// throughout the reproduction.
//
// The paper evaluates on the 7.2 GB IMDB dataset (the Join Order Benchmark
// extension) and on TPC-H SF100, neither of which we can ship. These
// generators build schema-faithful, scaled-down substitutes with the two
// properties that make IMDB hard for cost models: skewed foreign-key
// distributions (zipfian) and cross-column correlation. All generation is
// deterministic given a seed.
package datagen

import (
	"fmt"
	"math/rand"
)

// zipfCol fills a column with values in [1, n] following an approximate
// zipf distribution with exponent s.
func zipfCol(rng *rand.Rand, rows int, n uint64, s float64) []int64 {
	if n < 1 {
		n = 1
	}
	z := rand.NewZipf(rng, s, 1, n-1)
	out := make([]int64, rows)
	for i := range out {
		out[i] = int64(z.Uint64()) + 1
	}
	return out
}

// uniformCol fills a column with uniform values in [lo, hi].
func uniformCol(rng *rand.Rand, rows int, lo, hi int64) []int64 {
	out := make([]int64, rows)
	span := hi - lo + 1
	for i := range out {
		out[i] = lo + rng.Int63n(span)
	}
	return out
}

// serialCol fills a column with 1..rows.
func serialCol(rows int) []int64 {
	out := make([]int64, rows)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// poolCol fills a string column by zipf-sampling from a pool.
func poolCol(rng *rand.Rand, rows int, pool []string, s float64) []string {
	z := rand.NewZipf(rng, s, 1, uint64(len(pool)-1))
	out := make([]string, rows)
	for i := range out {
		out[i] = pool[z.Uint64()]
	}
	return out
}

// makePool builds n distinct strings with the given prefix.
func makePool(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s_%04d", prefix, i)
	}
	return out
}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}
