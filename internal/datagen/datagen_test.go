package datagen

import (
	"testing"

	"raal/internal/catalog"
)

func TestIMDBValid(t *testing.T) {
	db := IMDB(0.1, 1)
	wantTables := []string{
		"title", "movie_companies", "movie_keyword", "movie_info",
		"movie_info_idx", "cast_info", "company_name", "keyword",
	}
	for _, name := range wantTables {
		tab, err := db.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.Validate(); err != nil {
			t.Fatal(err)
		}
		if tab.NumRows == 0 {
			t.Fatalf("table %s is empty", name)
		}
	}
}

func TestIMDBForeignKeysInRange(t *testing.T) {
	db := IMDB(0.05, 2)
	title, _ := db.Table("title")
	n := int64(title.NumRows)
	for _, ft := range []string{"movie_companies", "movie_keyword", "movie_info", "movie_info_idx", "cast_info"} {
		tab, _ := db.Table(ft)
		for _, v := range tab.IntCol("movie_id") {
			if v < 1 || v > n {
				t.Fatalf("%s.movie_id %d outside [1,%d]", ft, v, n)
			}
		}
	}
}

func TestIMDBZipfSkew(t *testing.T) {
	// The most popular movie should have far more than the mean number of
	// keyword rows — that skew is what makes IMDB hard.
	db := IMDB(0.2, 3)
	mk, _ := db.Table("movie_keyword")
	counts := map[int64]int{}
	for _, v := range mk.IntCol("movie_id") {
		counts[v]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	mean := float64(mk.NumRows) / float64(len(counts))
	if float64(maxCount) < 10*mean {
		t.Fatalf("movie_id distribution not skewed: max %d, mean %.1f", maxCount, mean)
	}
}

func TestIMDBDeterministic(t *testing.T) {
	a := IMDB(0.05, 7)
	b := IMDB(0.05, 7)
	ta, _ := a.Table("title")
	tb, _ := b.Table("title")
	for i, v := range ta.IntCol("production_year") {
		if tb.IntCol("production_year")[i] != v {
			t.Fatal("IMDB generation not deterministic")
		}
	}
}

func TestIMDBScaling(t *testing.T) {
	small := IMDB(0.05, 1)
	big := IMDB(0.2, 1)
	if big.TotalRows() <= small.TotalRows()*2 {
		t.Fatalf("scaling broken: scale 0.2 rows %d vs scale 0.05 rows %d",
			big.TotalRows(), small.TotalRows())
	}
}

func TestIMDBYearCorrelation(t *testing.T) {
	db := IMDB(0.3, 4)
	title, _ := db.Table("title")
	kinds := title.IntCol("kind_id")
	years := title.IntCol("production_year")
	var sum1, n1, sumOther, nOther float64
	for i := range kinds {
		if kinds[i] == 1 {
			sum1 += float64(years[i])
			n1++
		} else if kinds[i] > 2 && kinds[i] < 7 {
			sumOther += float64(years[i])
			nOther++
		}
	}
	if n1 == 0 || nOther == 0 {
		t.Skip("not enough data for correlation check")
	}
	if sum1/n1 <= sumOther/nOther {
		t.Fatalf("kind 1 movies should skew recent: %v vs %v", sum1/n1, sumOther/nOther)
	}
}

func TestTPCHValid(t *testing.T) {
	db := TPCH(0.1, 1)
	for _, name := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"} {
		tab, err := db.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	region, _ := db.Table("region")
	if region.NumRows != 5 {
		t.Fatalf("region rows = %d, want 5", region.NumRows)
	}
}

func TestTPCHForeignKeys(t *testing.T) {
	db := TPCH(0.1, 2)
	orders, _ := db.Table("orders")
	customer, _ := db.Table("customer")
	nCust := int64(customer.NumRows)
	for _, v := range orders.IntCol("o_custkey") {
		if v < 1 || v > nCust {
			t.Fatalf("o_custkey %d outside [1,%d]", v, nCust)
		}
	}
	lineitem, _ := db.Table("lineitem")
	nOrd := int64(orders.NumRows)
	for _, v := range lineitem.IntCol("l_orderkey") {
		if v < 1 || v > nOrd {
			t.Fatalf("l_orderkey %d outside [1,%d]", v, nOrd)
		}
	}
}

func TestTPCHLineitemClustering(t *testing.T) {
	// Line items for the same order should appear in runs (as generated),
	// giving multiple rows per order key on average.
	db := TPCH(0.2, 3)
	lineitem, _ := db.Table("lineitem")
	keys := map[int64]bool{}
	for _, v := range lineitem.IntCol("l_orderkey") {
		keys[v] = true
	}
	avg := float64(lineitem.NumRows) / float64(len(keys))
	if avg < 1.5 {
		t.Fatalf("expected multiple line items per order, got avg %.2f", avg)
	}
}

func TestTPCHStringDomains(t *testing.T) {
	db := TPCH(0.05, 4)
	lineitem, _ := db.Table("lineitem")
	valid := map[string]bool{"R": true, "A": true, "N": true}
	for _, v := range lineitem.StrCol("l_returnflag") {
		if !valid[v] {
			t.Fatalf("invalid l_returnflag %q", v)
		}
	}
}

func TestStatsComputableOnGeneratedData(t *testing.T) {
	db := IMDB(0.05, 5)
	for _, name := range db.TableNames() {
		tab, _ := db.Table(name)
		ts, err := catalog.ComputeStats(tab, 16, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ts.Rows != tab.NumRows {
			t.Fatalf("%s stats rows mismatch", name)
		}
	}
}
