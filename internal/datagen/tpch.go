package datagen

import (
	"math/rand"

	"raal/internal/catalog"
)

// TPCH generates a synthetic TPC-H database with the columns the paper's
// template-generated workload touches. At scale 1.0 it holds roughly 85K
// rows across 8 tables (our unit scale; the paper used SF100 on a real
// cluster). The multiplier is unbounded — scale ~120 puts lineitem at
// 10^7 rows, which the streaming engine executes without materializing
// intermediates. Value distributions follow the TPC-H spec's shapes: uniform
// keys, date ranges over 1992–1998 (encoded as days since 1992-01-01), and
// categorical string columns drawn from the spec's value lists.
func TPCH(scale float64, seed int64) *catalog.Database {
	rng := rand.New(rand.NewSource(seed))

	nRegion := 5
	nNation := 25
	nSupplier := scaled(200, scale)
	nCustomer := scaled(3000, scale)
	nPart := scaled(4000, scale)
	nPartsupp := scaled(16000, scale)
	nOrders := scaled(30000, scale)
	nLineitem := scaled(120000, scale)

	db := &catalog.Database{Name: "tpch", Tables: map[string]*catalog.Table{}}

	region := catalog.NewTable(&catalog.Schema{
		Name: "region",
		Columns: []catalog.Column{
			{Name: "r_regionkey", Type: catalog.Int64},
			{Name: "r_name", Type: catalog.String},
		},
	}, nRegion)
	region.Ints["r_regionkey"] = serialCol(nRegion)
	copy(region.Strs["r_name"], []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"})
	db.Tables["region"] = region

	nation := catalog.NewTable(&catalog.Schema{
		Name: "nation",
		Columns: []catalog.Column{
			{Name: "n_nationkey", Type: catalog.Int64},
			{Name: "n_regionkey", Type: catalog.Int64},
			{Name: "n_name", Type: catalog.String},
		},
	}, nNation)
	nation.Ints["n_nationkey"] = serialCol(nNation)
	nation.Ints["n_regionkey"] = uniformCol(rng, nNation, 1, int64(nRegion))
	names := makePool("nation", nNation)
	copy(nation.Strs["n_name"], names)
	db.Tables["nation"] = nation

	supplier := catalog.NewTable(&catalog.Schema{
		Name: "supplier",
		Columns: []catalog.Column{
			{Name: "s_suppkey", Type: catalog.Int64},
			{Name: "s_nationkey", Type: catalog.Int64},
			{Name: "s_acctbal", Type: catalog.Int64},
		},
	}, nSupplier)
	supplier.Ints["s_suppkey"] = serialCol(nSupplier)
	supplier.Ints["s_nationkey"] = uniformCol(rng, nSupplier, 1, int64(nNation))
	supplier.Ints["s_acctbal"] = uniformCol(rng, nSupplier, -999, 9999)
	db.Tables["supplier"] = supplier

	customer := catalog.NewTable(&catalog.Schema{
		Name: "customer",
		Columns: []catalog.Column{
			{Name: "c_custkey", Type: catalog.Int64},
			{Name: "c_nationkey", Type: catalog.Int64},
			{Name: "c_acctbal", Type: catalog.Int64},
			{Name: "c_mktsegment", Type: catalog.String},
		},
	}, nCustomer)
	customer.Ints["c_custkey"] = serialCol(nCustomer)
	customer.Ints["c_nationkey"] = uniformCol(rng, nCustomer, 1, int64(nNation))
	customer.Ints["c_acctbal"] = uniformCol(rng, nCustomer, -999, 9999)
	customer.Strs["c_mktsegment"] = poolCol(rng, nCustomer,
		[]string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}, 1.01)
	db.Tables["customer"] = customer

	part := catalog.NewTable(&catalog.Schema{
		Name: "part",
		Columns: []catalog.Column{
			{Name: "p_partkey", Type: catalog.Int64},
			{Name: "p_size", Type: catalog.Int64},
			{Name: "p_retailprice", Type: catalog.Int64},
			{Name: "p_brand", Type: catalog.String},
			{Name: "p_type", Type: catalog.String},
		},
	}, nPart)
	part.Ints["p_partkey"] = serialCol(nPart)
	part.Ints["p_size"] = uniformCol(rng, nPart, 1, 50)
	part.Ints["p_retailprice"] = uniformCol(rng, nPart, 900, 2100)
	part.Strs["p_brand"] = poolCol(rng, nPart, makePool("Brand", 25), 1.01)
	part.Strs["p_type"] = poolCol(rng, nPart, makePool("type", 150), 1.05)
	db.Tables["part"] = part

	partsupp := catalog.NewTable(&catalog.Schema{
		Name: "partsupp",
		Columns: []catalog.Column{
			{Name: "ps_partkey", Type: catalog.Int64},
			{Name: "ps_suppkey", Type: catalog.Int64},
			{Name: "ps_availqty", Type: catalog.Int64},
			{Name: "ps_supplycost", Type: catalog.Int64},
		},
	}, nPartsupp)
	partsupp.Ints["ps_partkey"] = uniformCol(rng, nPartsupp, 1, int64(nPart))
	partsupp.Ints["ps_suppkey"] = uniformCol(rng, nPartsupp, 1, int64(nSupplier))
	partsupp.Ints["ps_availqty"] = uniformCol(rng, nPartsupp, 1, 9999)
	partsupp.Ints["ps_supplycost"] = uniformCol(rng, nPartsupp, 1, 1000)
	db.Tables["partsupp"] = partsupp

	const maxDate = 7 * 365 // days since 1992-01-01
	orders := catalog.NewTable(&catalog.Schema{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_orderkey", Type: catalog.Int64},
			{Name: "o_custkey", Type: catalog.Int64},
			{Name: "o_totalprice", Type: catalog.Int64},
			{Name: "o_orderdate", Type: catalog.Int64},
			{Name: "o_orderpriority", Type: catalog.String},
		},
	}, nOrders)
	orders.Ints["o_orderkey"] = serialCol(nOrders)
	orders.Ints["o_custkey"] = zipfCol(rng, nOrders, uint64(nCustomer), 1.05)
	orders.Ints["o_totalprice"] = uniformCol(rng, nOrders, 1000, 500000)
	orders.Ints["o_orderdate"] = uniformCol(rng, nOrders, 0, maxDate)
	orders.Strs["o_orderpriority"] = poolCol(rng, nOrders,
		[]string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}, 1.01)
	db.Tables["orders"] = orders

	lineitem := catalog.NewTable(&catalog.Schema{
		Name: "lineitem",
		Columns: []catalog.Column{
			{Name: "l_orderkey", Type: catalog.Int64},
			{Name: "l_partkey", Type: catalog.Int64},
			{Name: "l_suppkey", Type: catalog.Int64},
			{Name: "l_quantity", Type: catalog.Int64},
			{Name: "l_extendedprice", Type: catalog.Int64},
			{Name: "l_discount", Type: catalog.Int64},
			{Name: "l_shipdate", Type: catalog.Int64},
			{Name: "l_returnflag", Type: catalog.String},
		},
	}, nLineitem)
	// Each order gets 1-7 line items; generate orderkeys by repeating.
	lok := lineitem.Ints["l_orderkey"]
	for i := 0; i < nLineitem; {
		ok := int64(rng.Intn(nOrders) + 1)
		k := 1 + rng.Intn(7)
		for j := 0; j < k && i < nLineitem; j++ {
			lok[i] = ok
			i++
		}
	}
	lineitem.Ints["l_partkey"] = uniformCol(rng, nLineitem, 1, int64(nPart))
	lineitem.Ints["l_suppkey"] = uniformCol(rng, nLineitem, 1, int64(nSupplier))
	lineitem.Ints["l_quantity"] = uniformCol(rng, nLineitem, 1, 50)
	lineitem.Ints["l_extendedprice"] = uniformCol(rng, nLineitem, 900, 105000)
	lineitem.Ints["l_discount"] = uniformCol(rng, nLineitem, 0, 10)
	lineitem.Ints["l_shipdate"] = uniformCol(rng, nLineitem, 0, maxDate+120)
	lineitem.Strs["l_returnflag"] = poolCol(rng, nLineitem, []string{"R", "A", "N"}, 1.01)
	db.Tables["lineitem"] = lineitem

	return db
}
