package datagen

import (
	"math/rand"

	"raal/internal/catalog"
)

// IMDB generates a synthetic Internet Movie Database in the shape of the
// Join Order Benchmark subset referenced by the paper's Sec. III queries:
// title, movie_companies, movie_keyword, movie_info, movie_info_idx,
// cast_info, company_name, and keyword. At scale 1.0 it holds roughly 650K
// rows across 8 tables; the multiplier is unbounded, and the streaming
// execution engine keeps corpus collection practical well past scale 16
// (~10^6-row fact tables) into the 10^7-row range (scale ~150+, memory
// permitting — generation allocates every column eagerly at ~8B per int
// value).
//
// Foreign keys are zipf-distributed (popular movies accumulate many
// companies/keywords/cast entries) and production_year correlates with
// kind_id, reproducing the correlation + skew that make IMDB a harder
// estimation target than TPC-H.
func IMDB(scale float64, seed int64) *catalog.Database {
	rng := rand.New(rand.NewSource(seed))

	nTitle := scaled(25000, scale)
	nMC := scaled(65000, scale)
	nMK := scaled(90000, scale)
	nMI := scaled(70000, scale)
	nMII := scaled(45000, scale)
	nCI := scaled(120000, scale)
	nCN := scaled(4000, scale)
	nKW := scaled(8000, scale)

	db := &catalog.Database{Name: "imdb", Tables: map[string]*catalog.Table{}}

	// title(id, kind_id, production_year, title)
	title := catalog.NewTable(&catalog.Schema{
		Name: "title",
		Columns: []catalog.Column{
			{Name: "id", Type: catalog.Int64},
			{Name: "kind_id", Type: catalog.Int64},
			{Name: "production_year", Type: catalog.Int64},
			{Name: "title", Type: catalog.String},
		},
	}, nTitle)
	title.Ints["id"] = serialCol(nTitle)
	kinds := zipfCol(rng, nTitle, 7, 1.4)
	title.Ints["kind_id"] = kinds
	years := make([]int64, nTitle)
	for i := range years {
		// Correlated: movies (kind 1) skew recent, TV episodes (kind 7)
		// skew to the 1990s+, others spread wider.
		base := int64(1960)
		span := int64(60)
		switch kinds[i] {
		case 1:
			base, span = 1990, 30
		case 7:
			base, span = 1995, 25
		}
		years[i] = base + int64(float64(span)*rng.Float64()*rng.Float64()) // quadratic skew toward base... inverted below
		years[i] = base + span - (years[i] - base)                        // skew toward recent end
	}
	title.Ints["production_year"] = years
	title.Strs["title"] = poolCol(rng, nTitle, makePool("title", 2000), 1.1)
	db.Tables["title"] = title

	// movie_companies(movie_id, company_id, company_type_id)
	mc := catalog.NewTable(&catalog.Schema{
		Name: "movie_companies",
		Columns: []catalog.Column{
			{Name: "movie_id", Type: catalog.Int64},
			{Name: "company_id", Type: catalog.Int64},
			{Name: "company_type_id", Type: catalog.Int64},
		},
	}, nMC)
	mc.Ints["movie_id"] = zipfCol(rng, nMC, uint64(nTitle), 1.2)
	mc.Ints["company_id"] = zipfCol(rng, nMC, uint64(nCN), 1.5)
	mc.Ints["company_type_id"] = uniformCol(rng, nMC, 1, 2)
	db.Tables["movie_companies"] = mc

	// movie_keyword(movie_id, keyword_id)
	mk := catalog.NewTable(&catalog.Schema{
		Name: "movie_keyword",
		Columns: []catalog.Column{
			{Name: "movie_id", Type: catalog.Int64},
			{Name: "keyword_id", Type: catalog.Int64},
		},
	}, nMK)
	mk.Ints["movie_id"] = zipfCol(rng, nMK, uint64(nTitle), 1.2)
	mk.Ints["keyword_id"] = zipfCol(rng, nMK, uint64(nKW), 1.3)
	db.Tables["movie_keyword"] = mk

	// movie_info(movie_id, info_type_id, info)
	mi := catalog.NewTable(&catalog.Schema{
		Name: "movie_info",
		Columns: []catalog.Column{
			{Name: "movie_id", Type: catalog.Int64},
			{Name: "info_type_id", Type: catalog.Int64},
			{Name: "info", Type: catalog.String},
		},
	}, nMI)
	mi.Ints["movie_id"] = zipfCol(rng, nMI, uint64(nTitle), 1.15)
	mi.Ints["info_type_id"] = zipfCol(rng, nMI, 110, 1.3)
	mi.Strs["info"] = poolCol(rng, nMI, makePool("info", 500), 1.2)
	db.Tables["movie_info"] = mi

	// movie_info_idx(movie_id, info_type_id, info)
	mii := catalog.NewTable(&catalog.Schema{
		Name: "movie_info_idx",
		Columns: []catalog.Column{
			{Name: "movie_id", Type: catalog.Int64},
			{Name: "info_type_id", Type: catalog.Int64},
			{Name: "info", Type: catalog.String},
		},
	}, nMII)
	mii.Ints["movie_id"] = zipfCol(rng, nMII, uint64(nTitle), 1.1)
	mii.Ints["info_type_id"] = uniformCol(rng, nMII, 99, 101)
	mii.Strs["info"] = poolCol(rng, nMII, makePool("rating", 100), 1.05)
	db.Tables["movie_info_idx"] = mii

	// cast_info(movie_id, person_id, role_id)
	ci := catalog.NewTable(&catalog.Schema{
		Name: "cast_info",
		Columns: []catalog.Column{
			{Name: "movie_id", Type: catalog.Int64},
			{Name: "person_id", Type: catalog.Int64},
			{Name: "role_id", Type: catalog.Int64},
		},
	}, nCI)
	ci.Ints["movie_id"] = zipfCol(rng, nCI, uint64(nTitle), 1.25)
	ci.Ints["person_id"] = zipfCol(rng, nCI, uint64(scaled(30000, scale)), 1.3)
	ci.Ints["role_id"] = zipfCol(rng, nCI, 11, 1.5)
	db.Tables["cast_info"] = ci

	// company_name(id, name, country_code)
	cn := catalog.NewTable(&catalog.Schema{
		Name: "company_name",
		Columns: []catalog.Column{
			{Name: "id", Type: catalog.Int64},
			{Name: "name", Type: catalog.String},
			{Name: "country_code", Type: catalog.String},
		},
	}, nCN)
	cn.Ints["id"] = serialCol(nCN)
	cn.Strs["name"] = makePool("company", nCN)
	cn.Strs["country_code"] = poolCol(rng, nCN, makePool("cc", 80), 1.6)
	db.Tables["company_name"] = cn

	// keyword(id, keyword)
	kw := catalog.NewTable(&catalog.Schema{
		Name: "keyword",
		Columns: []catalog.Column{
			{Name: "id", Type: catalog.Int64},
			{Name: "keyword", Type: catalog.String},
		},
	}, nKW)
	kw.Ints["id"] = serialCol(nKW)
	kw.Strs["keyword"] = makePool("keyword", nKW)
	db.Tables["keyword"] = kw

	return db
}
