package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"raal/internal/physical"
	"raal/internal/sparksim"
)

// stubs ------------------------------------------------------------------

func constEstimator(v float64) EstimateFunc {
	return func(context.Context, *physical.Plan, sparksim.Resources) (float64, error) {
		return v, nil
	}
}

func panicEstimator(msg string) EstimateFunc {
	return func(context.Context, *physical.Plan, sparksim.Resources) (float64, error) {
		panic(msg)
	}
}

func errEstimator(err error) EstimateFunc {
	return func(context.Context, *physical.Plan, sparksim.Resources) (float64, error) {
		return 0, err
	}
}

// blockingEstimator blocks until release is closed or the context ends —
// a model that is slow but cooperative.
func blockingEstimator(release <-chan struct{}) EstimateFunc {
	return func(ctx context.Context, _ *physical.Plan, _ sparksim.Resources) (float64, error) {
		select {
		case <-release:
			return 1, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

func mustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var (
	testPlan = &physical.Plan{Sig: "test"}
	testRes  = sparksim.DefaultResources()
)

// tests ------------------------------------------------------------------

func TestEstimateHappyPath(t *testing.T) {
	s := mustServer(t, Config{Deep: constEstimator(42), Fallback: constEstimator(7)})
	r, err := s.Estimate(context.Background(), testPlan, testRes)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 42 || r.Degraded || r.Source != "model" {
		t.Fatalf("want healthy deep answer, got %+v", r)
	}
}

func TestFallbackOnlyServer(t *testing.T) {
	s := mustServer(t, Config{Fallback: constEstimator(7)})
	r, err := s.Estimate(context.Background(), testPlan, testRes)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 7 || r.Degraded || r.Source != "analytic" {
		t.Fatalf("fallback-only server should answer untagged: %+v", r)
	}
}

func TestNewRejectsEmptyConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("config with no estimator should be rejected")
	}
}

func TestPanicDegradesToFallback(t *testing.T) {
	s := mustServer(t, Config{Deep: panicEstimator("boom: shape mismatch"), Fallback: constEstimator(7)})
	r, err := s.Estimate(context.Background(), testPlan, testRes)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded || r.Cost != 7 || r.Source != "fallback" {
		t.Fatalf("panic should degrade to fallback: %+v", r)
	}
	if !strings.Contains(r.Reason, "shape mismatch") {
		t.Fatalf("reason should carry the panic message, got %q", r.Reason)
	}
}

func TestPanicWithoutFallbackIsErrInternal(t *testing.T) {
	s := mustServer(t, Config{Deep: panicEstimator("boom")})
	_, err := s.Estimate(context.Background(), testPlan, testRes)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("want ErrInternal, got %v", err)
	}
	// …and the server must still answer afterwards (process survived,
	// slot released).
	if _, err := s.Estimate(context.Background(), testPlan, testRes); !errors.Is(err, ErrInternal) {
		t.Fatalf("second request after panic: %v", err)
	}
}

func TestErrorDegradesToFallback(t *testing.T) {
	s := mustServer(t, Config{Deep: errEstimator(errors.New("weights corrupt")), Fallback: constEstimator(7)})
	r, err := s.Estimate(context.Background(), testPlan, testRes)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded || r.Cost != 7 {
		t.Fatalf("deep error should degrade: %+v", r)
	}
}

func TestBothEstimatorsFailingReportsDeepError(t *testing.T) {
	deepErr := errors.New("deep down")
	s := mustServer(t, Config{Deep: errEstimator(deepErr), Fallback: errEstimator(errors.New("fb down"))})
	_, err := s.Estimate(context.Background(), testPlan, testRes)
	if !errors.Is(err, deepErr) {
		t.Fatalf("want the deep failure, got %v", err)
	}
}

func TestDeadlineFallback(t *testing.T) {
	s := mustServer(t, Config{
		Deep:     blockingEstimator(nil), // blocks until ctx expires
		Fallback: constEstimator(7),
		Deadline: 20 * time.Millisecond,
	})
	r, err := s.Estimate(context.Background(), testPlan, testRes)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded || r.Cost != 7 {
		t.Fatalf("deadline miss should degrade: %+v", r)
	}
	if !strings.Contains(r.Reason, "deadline") {
		t.Fatalf("reason should mention the deadline, got %q", r.Reason)
	}
}

func TestDeadlineFailPolicy(t *testing.T) {
	s := mustServer(t, Config{
		Deep:       blockingEstimator(nil),
		Fallback:   constEstimator(7),
		Deadline:   20 * time.Millisecond,
		OnDeadline: FailOnDeadline,
	})
	_, err := s.Estimate(context.Background(), testPlan, testRes)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("FailOnDeadline should surface ErrDeadline, got %v", err)
	}
}

func TestDeadlineNoFallbackIsErrDeadline(t *testing.T) {
	s := mustServer(t, Config{Deep: blockingEstimator(nil), Deadline: 20 * time.Millisecond})
	_, err := s.Estimate(context.Background(), testPlan, testRes)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
}

func TestCallerCancellationPropagates(t *testing.T) {
	s := mustServer(t, Config{Deep: blockingEstimator(nil), Fallback: constEstimator(7)})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := s.Estimate(ctx, testPlan, testRes)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("caller cancellation must not degrade, got %v", err)
	}
}

// TestOverloadRejects drives the admission machinery to saturation: one
// request holds the only slot, one waits in the queue, and the third must
// bounce with ErrOverloaded.
func TestOverloadRejects(t *testing.T) {
	release := make(chan struct{})
	s := mustServer(t, Config{
		Deep:        blockingEstimator(release),
		Concurrency: 1,
		QueueDepth:  1,
	})

	results := make(chan error, 2)
	go func() {
		_, err := s.Estimate(context.Background(), testPlan, testRes)
		results <- err
	}()
	waitFor(t, func() bool { return s.Inflight() == 1 })

	go func() {
		_, err := s.Estimate(context.Background(), testPlan, testRes)
		results <- err
	}()
	waitFor(t, func() bool { return s.queued.Load() == 1 })

	// Slot busy, queue full: immediate 429-class rejection.
	if _, err := s.Estimate(context.Background(), testPlan, testRes); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted request %d failed: %v", i, err)
		}
	}
}

func TestQueuedRequestHonorsCancellation(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := mustServer(t, Config{Deep: blockingEstimator(release), Concurrency: 1, QueueDepth: 4})

	go s.Estimate(context.Background(), testPlan, testRes)
	waitFor(t, func() bool { return s.Inflight() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Estimate(ctx, testPlan, testRes)
		errCh <- err
	}()
	waitFor(t, func() bool { return s.queued.Load() == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued request should abort on cancel, got %v", err)
	}
	if got := s.queued.Load(); got != 0 {
		t.Fatalf("queue counter leaked: %d", got)
	}
}

func TestSelectPicksArgmin(t *testing.T) {
	costs := map[string]float64{"a": 9, "b": 3, "c": 5}
	deep := func(_ context.Context, p *physical.Plan, _ sparksim.Resources) (float64, error) {
		return costs[p.Sig], nil
	}
	s := mustServer(t, Config{Deep: deep})
	plans := []*physical.Plan{{Sig: "a"}, {Sig: "b"}, {Sig: "c"}}
	best, r, err := s.Select(context.Background(), plans, testRes)
	if err != nil {
		t.Fatal(err)
	}
	if best != 1 || r.Cost != 3 || r.Degraded {
		t.Fatalf("want argmin plan b (3s), got idx %d %+v", best, r)
	}
}

func TestSelectDegradesWholeSet(t *testing.T) {
	fb := func(_ context.Context, p *physical.Plan, _ sparksim.Resources) (float64, error) {
		if p.Sig == "cheap" {
			return 1, nil
		}
		return 10, nil
	}
	s := mustServer(t, Config{Deep: panicEstimator("dead"), Fallback: fb})
	plans := []*physical.Plan{{Sig: "pricey"}, {Sig: "cheap"}}
	best, r, err := s.Select(context.Background(), plans, testRes)
	if err != nil {
		t.Fatal(err)
	}
	if best != 1 || !r.Degraded || r.Cost != 1 {
		t.Fatalf("degraded select should still argmin over fallback: idx %d %+v", best, r)
	}
}

func TestSelectBatchLengthMismatchIsInternal(t *testing.T) {
	s := mustServer(t, Config{
		Deep: constEstimator(1),
		DeepBatch: func(_ context.Context, plans []*physical.Plan, _ sparksim.Resources) ([]float64, error) {
			return []float64{1}, nil // wrong length for 2 plans
		},
	})
	_, _, err := s.Select(context.Background(), []*physical.Plan{{}, {}}, testRes)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("short batch should be ErrInternal, got %v", err)
	}
}

func TestFaultDeterminism(t *testing.T) {
	f := &FaultConfig{Seed: 7, PanicProb: 0.3, ErrorProb: 0.2, DelayProb: 0.1}
	g := &FaultConfig{Seed: 7, PanicProb: 0.3, ErrorProb: 0.2, DelayProb: 0.1}
	diff := &FaultConfig{Seed: 8, PanicProb: 0.3, ErrorProb: 0.2, DelayProb: 0.1}
	var fires, diffFires int
	for i := uint64(1); i <= 2000; i++ {
		d1, e1, p1 := f.Fires(i)
		d2, e2, p2 := g.Fires(i)
		if d1 != d2 || e1 != e2 || p1 != p2 {
			t.Fatalf("same seed diverged at request %d", i)
		}
		if p1 {
			fires++
		}
		if _, _, p3 := diff.Fires(i); p3 {
			diffFires++
		}
	}
	// ~30% of 2000 requests should panic; require a loose band.
	if fires < 450 || fires > 750 {
		t.Fatalf("panic fault rate off: %d/2000 fired at prob 0.3", fires)
	}
	if fires == diffFires {
		// Counts colliding exactly across seeds is possible but the
		// patterns must differ; spot-check one index range.
		same := true
		for i := uint64(1); i <= 100; i++ {
			_, _, a := f.Fires(i)
			_, _, b := diff.Fires(i)
			if a != b {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced the same fault pattern")
		}
	}
}

// TestFaultInjectionDegradesDeterministically runs the same request
// sequence twice against fault-injected servers with one seed and asserts
// the degraded-response pattern replays exactly — the acceptance
// criterion's "deterministic under a fixed seed".
func TestFaultInjectionDegradesDeterministically(t *testing.T) {
	pattern := func() []bool {
		s := mustServer(t, Config{
			Deep:     constEstimator(42),
			Fallback: constEstimator(7),
			Faults:   &FaultConfig{Seed: 99, PanicProb: 0.5},
		})
		out := make([]bool, 50)
		for i := range out {
			r, err := s.Estimate(context.Background(), testPlan, testRes)
			if err != nil {
				t.Fatalf("request %d errored: %v", i, err)
			}
			out[i] = r.Degraded
			if r.Degraded && r.Cost != 7 {
				t.Fatalf("degraded answer must come from fallback, got %v", r.Cost)
			}
			if !r.Degraded && r.Cost != 42 {
				t.Fatalf("healthy answer must come from the model, got %v", r.Cost)
			}
		}
		return out
	}
	a, b := pattern(), pattern()
	var degraded int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault pattern diverged at request %d", i)
		}
		if a[i] {
			degraded++
		}
	}
	if degraded == 0 || degraded == len(a) {
		t.Fatalf("prob 0.5 should mix outcomes, got %d/%d degraded", degraded, len(a))
	}
}

func TestDrainRejectsNewAndWaitsForInflight(t *testing.T) {
	release := make(chan struct{})
	s := mustServer(t, Config{Deep: blockingEstimator(release), Concurrency: 2})

	done := make(chan error, 1)
	go func() {
		_, err := s.Estimate(context.Background(), testPlan, testRes)
		done <- err
	}()
	waitFor(t, func() bool { return s.Inflight() == 1 })

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, func() bool { return !s.Ready() })

	if _, err := s.Estimate(context.Background(), testPlan, testRes); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining server must reject new work, got %v", err)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain finished with a request in flight: %v", err)
	case <-time.After(30 * time.Millisecond):
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestDrainTimesOut(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := mustServer(t, Config{Deep: blockingEstimator(release), Concurrency: 1})
	go s.Estimate(context.Background(), testPlan, testRes)
	waitFor(t, func() bool { return s.Inflight() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain should report the expired budget, got %v", err)
	}
}

// TestConcurrentRequestsRaceClean hammers a fault-injected server from
// many goroutines; run under -race (see `make race`).
func TestConcurrentRequestsRaceClean(t *testing.T) {
	s := mustServer(t, Config{
		Deep:        constEstimator(42),
		Fallback:    constEstimator(7),
		Concurrency: 4,
		QueueDepth:  64,
		Deadline:    time.Second,
		Faults:      &FaultConfig{Seed: 3, PanicProb: 0.2, ErrorProb: 0.2},
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := s.Estimate(context.Background(), testPlan, testRes); err != nil {
					t.Errorf("request failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// waitFor polls cond with a deadline — the tests above need to observe
// intermediate admission states without sleeping fixed amounts.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
