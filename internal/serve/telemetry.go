package serve

import (
	"raal/internal/telemetry"
)

// Endpoint label values pre-materialized for the HTTP metrics — label
// children are built at wiring time so the request path never allocates
// or locks to find its counter.
var (
	endpointValues = []string{"estimate", "select"}
	statusValues   = []string{"200", "400", "408", "413", "429", "500", "503", "504"}
	faultKinds     = []string{"delay", "error", "panic"}
	flushTriggers  = []string{"full", "window", "solo", "drain"}
)

// batchSizeBounds buckets coalesced batch sizes; the upper bound tracks
// plausible BatchMax settings.
var batchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// Metrics is the serving layer's metric set, registered on one
// telemetry.Registry. A nil or zero Metrics is valid and inert (every
// telemetry type is a no-op on nil), so instrumentation is strictly
// opt-in and costs an admitted request a handful of atomic adds.
type Metrics struct {
	registry *telemetry.Registry

	// Inflight tracks admitted requests (running + queued);
	// Queue tracks only the ones waiting for a slot.
	Inflight *telemetry.Gauge
	Queue    *telemetry.Gauge

	// AdmissionRejects counts 429s (slots and queue both full);
	// DrainRejects counts requests refused because the server is
	// draining; DeadlineExpiries counts deep-path deadline misses
	// (whatever the policy turned them into); Degraded counts answers
	// served by the analytical fallback after a deep failure.
	AdmissionRejects *telemetry.Counter
	DrainRejects     *telemetry.Counter
	DeadlineExpiries *telemetry.Counter
	Degraded         *telemetry.Counter

	// Faults counts injected faults by kind (delay/error/panic).
	Faults *telemetry.CounterVec

	// PredictLatency observes the end-to-end estimation time of every
	// successfully served request (deep or fallback), in seconds.
	PredictLatency *telemetry.Histogram

	// Micro-batching: BatchSize observes how many live requests each
	// coalesced batch scored; BatchWait observes how long each request
	// sat in the collection window; BatchFlushes counts batches by what
	// flushed them (full / window / solo / drain — solo is a request
	// dispatched immediately because no other caller was in flight);
	// BatchBisects counts failing
	// batches split in half to isolate a poisoned request; BatchDeduped
	// counts requests answered by an identical in-flight batch-mate's
	// computation (singleflight).
	BatchSize    *telemetry.Histogram
	BatchWait    *telemetry.Histogram
	BatchFlushes *telemetry.CounterVec
	BatchBisects *telemetry.Counter
	BatchDeduped *telemetry.Counter

	// HTTP front-end: requests and latency by endpoint, responses by
	// status code.
	Requests    *telemetry.CounterVec
	Responses   *telemetry.CounterVec
	HTTPLatency *telemetry.HistogramVec
}

// NewMetrics registers the serving metric set on reg. Metric names are
// stable API: dashboards and the README table reference them.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		registry: reg,
		Inflight: reg.NewGauge("raal_serve_inflight_requests",
			"Admitted requests currently running or queued."),
		Queue: reg.NewGauge("raal_serve_queue_depth",
			"Admitted requests waiting for a concurrency slot."),
		AdmissionRejects: reg.NewCounter("raal_serve_admission_rejects_total",
			"Requests rejected because all slots and the wait queue were full (HTTP 429)."),
		DrainRejects: reg.NewCounter("raal_serve_drain_rejects_total",
			"Requests rejected because the server was draining (HTTP 503)."),
		DeadlineExpiries: reg.NewCounter("raal_serve_deadline_expiries_total",
			"Deep-path estimations abandoned on an expired per-request deadline."),
		Degraded: reg.NewCounter("raal_serve_degraded_fallbacks_total",
			"Answers served by the analytical fallback after a deep-model failure."),
		Faults: reg.NewCounterVec("raal_serve_injected_faults_total",
			"Deterministically injected faults by kind.", "kind", faultKinds...),
		PredictLatency: reg.NewHistogram("raal_serve_predict_seconds",
			"End-to-end estimation latency of successfully served requests.", nil),
		BatchSize: reg.NewHistogram("raal_serve_batch_size",
			"Live requests per coalesced micro-batch.", batchSizeBounds),
		BatchWait: reg.NewHistogram("raal_serve_batch_wait_seconds",
			"Time each request spent waiting in the micro-batch collection window.", nil),
		BatchFlushes: reg.NewCounterVec("raal_serve_batch_flushes_total",
			"Micro-batches flushed, by trigger.", "trigger", flushTriggers...),
		BatchBisects: reg.NewCounter("raal_serve_batch_bisects_total",
			"Failing micro-batches bisected to isolate a poisoned request."),
		BatchDeduped: reg.NewCounter("raal_serve_batch_deduped_total",
			"Requests coalesced onto an identical in-flight batch-mate's computation (same plan object and resources)."),
		Requests: reg.NewCounterVec("raal_serve_http_requests_total",
			"HTTP estimation requests by endpoint.", "endpoint", endpointValues...),
		Responses: reg.NewCounterVec("raal_serve_http_responses_total",
			"HTTP responses by status code.", "code", statusValues...),
		HTTPLatency: reg.NewHistogramVec("raal_serve_http_request_seconds",
			"HTTP request latency by endpoint.", nil, "endpoint", endpointValues...),
	}
}

// Registry returns the registry the metrics are registered on (nil for
// an inert Metrics).
func (m *Metrics) Registry() *telemetry.Registry {
	if m == nil {
		return nil
	}
	return m.registry
}
