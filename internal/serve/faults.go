package serve

import (
	"context"
	"fmt"
	"time"
)

// FaultConfig deterministically injects failures into the deep-estimation
// path. Each admitted request carries a monotonically increasing index
// (1-based); whether a fault fires on request i is a pure function of
// (Seed, i), so a fixed seed replays the exact same failure pattern run
// after run — the property the fault-injection test suite relies on.
//
// Faults fire inside the recover/deadline boundary, exactly where a real
// model failure would: an injected panic exercises panic isolation, an
// injected delay exercises the deadline path, an injected error exercises
// plain degradation.
type FaultConfig struct {
	// Seed keys the per-request decisions.
	Seed int64
	// PanicProb / ErrorProb / DelayProb are per-request probabilities in
	// [0, 1]; 1 fires on every request, 0 never. The three decisions are
	// independent (separate hash streams).
	PanicProb float64
	ErrorProb float64
	DelayProb float64
	// Delay is how long an injected delay stalls the deep path. The
	// stall honors context cancellation, like a slow-but-cooperative
	// model.
	Delay time.Duration
}

// Fault-stream identifiers: each fault kind draws from its own hash
// stream so the probabilities stay independent.
const (
	streamDelay uint64 = 1
	streamError uint64 = 2
	streamPanic uint64 = 3
)

// Fires reports which faults hit request idx: a pure, replayable function
// of the seed and index. Exposed so tests can predict the pattern.
func (f *FaultConfig) Fires(idx uint64) (delay, errFault, panicFault bool) {
	if f == nil {
		return false, false, false
	}
	return f.roll(idx, streamDelay) < f.DelayProb,
		f.roll(idx, streamError) < f.ErrorProb,
		f.roll(idx, streamPanic) < f.PanicProb
}

// apply runs the faults chosen for request idx: delay first (a slow
// model), then error, then panic. nil receivers inject nothing.
func (f *FaultConfig) apply(ctx context.Context, idx uint64) error {
	delay, errFault, panicFault := f.Fires(idx)
	if delay {
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if errFault {
		return fmt.Errorf("serve: injected error on request %d", idx)
	}
	if panicFault {
		panic(fmt.Sprintf("serve: injected panic on request %d", idx))
	}
	return nil
}

// roll maps (seed, idx, stream) to a uniform value in [0, 1) via
// splitmix64 — stateless, so concurrent requests never contend.
func (f *FaultConfig) roll(idx, stream uint64) float64 {
	h := splitmix64(splitmix64(uint64(f.Seed)^stream*0x9E3779B97F4A7C15) ^ idx)
	return float64(h>>11) / (1 << 53)
}

// splitmix64 is the standard 64-bit finalizer-style mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
