package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"raal/internal/physical"
	"raal/internal/sparksim"
)

// PlanFunc turns a SQL query into candidate physical plans (in practice
// raal.System.Plan). Errors are treated as client errors (HTTP 400): on
// this substrate planning fails only on unparsable SQL or unknown
// tables/columns.
type PlanFunc func(sql string) ([]*physical.Plan, error)

// HTTPConfig wires the HTTP front-end.
type HTTPConfig struct {
	// Planner maps request SQL to candidate plans (required).
	Planner PlanFunc
	// DefaultRes seeds each request's allocation; per-request fields
	// override it. Zero value means sparksim.DefaultResources().
	DefaultRes sparksim.Resources
	// MaxCandidates caps how many candidate plans /select prices
	// (default 3, matching System.SelectPlan).
	MaxCandidates int
	// MaxBodyBytes bounds request bodies (default 1 MiB) — oversized
	// payloads are rejected with a typed 413 before JSON decoding.
	MaxBodyBytes int64
	// Metrics is the serving metric set (normally the Server's). When it
	// carries a registry, the handler also exposes GET /metrics in the
	// Prometheus text format. Nil serves unobserved.
	Metrics *Metrics
	// Logger receives structured request and lifecycle logs; nil
	// discards them.
	Logger *slog.Logger
	// CacheStats, if non-nil, exposes the replica's encode-cache per-key
	// hit attribution as GET /cachez — the fleet benchmark correlates
	// these keys with what it routed to measure affinity effectiveness.
	CacheStats func() []CacheKeyStats
	// ModelAdmin, if non-nil, is mounted at /models (and /models/...):
	// the online-learning admin surface (list, promote, rollback, pin).
	ModelAdmin http.Handler
}

// CacheKeyStats is one encode-cache entry's hit attribution as served by
// GET /cachez: the short fingerprint ID of the cached (plan, resources)
// key, the serving precision the entry was populated under, and how many
// lookups that entry has served. Mirrors the raal package's type so the
// replica and its clients agree on the wire shape without the serving
// layer importing the public package.
type CacheKeyStats struct {
	Key       string `json:"key"`
	Precision string `json:"precision,omitempty"`
	Hits      uint64 `json:"hits"`
}

// CacheStatsResponse is the JSON body of GET /cachez.
type CacheStatsResponse struct {
	Keys []CacheKeyStats `json:"keys"`
}

// Handler is the HTTP surface over a Server: estimation endpoints plus
// the liveness/readiness pair every load balancer expects.
//
//	POST /estimate  {"sql": ...}   → price the default (first) plan
//	POST /select    {"sql": ...}   → price candidates, return the argmin
//	GET  /healthz                  → 200 while the process lives
//	GET  /readyz                   → 200 while admitting; 503 once draining
//	GET  /metrics                  → Prometheus text exposition (when a
//	                                 Metrics registry is configured)
//	GET  /cachez                   → encode-cache per-key hit attribution
//	                                 (when CacheStats is configured)
//	/models, /models/...           → online-learning admin surface (when
//	                                 ModelAdmin is configured)
type Handler struct {
	srv   *Server
	cfg   HTTPConfig
	log   *slog.Logger
	mux   *http.ServeMux
	ready atomic.Bool
}

// NewHandler builds the HTTP front-end over srv.
func NewHandler(srv *Server, cfg HTTPConfig) (*Handler, error) {
	if cfg.Planner == nil {
		return nil, errors.New("serve: HTTPConfig.Planner is required")
	}
	if cfg.DefaultRes == (sparksim.Resources{}) {
		cfg.DefaultRes = sparksim.DefaultResources()
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = 3
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &Metrics{} // inert
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	h := &Handler{srv: srv, cfg: cfg, log: logger, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /estimate", h.observed("estimate", h.handleEstimate))
	h.mux.HandleFunc("POST /select", h.observed("select", h.handleSelect))
	if reg := cfg.Metrics.Registry(); reg != nil {
		h.mux.Handle("GET /metrics", reg.Handler())
	}
	if cfg.CacheStats != nil {
		h.mux.HandleFunc("GET /cachez", func(w http.ResponseWriter, _ *http.Request) {
			keys := cfg.CacheStats()
			if keys == nil {
				keys = []CacheKeyStats{}
			}
			writeJSON(w, http.StatusOK, CacheStatsResponse{Keys: keys})
		})
	}
	if cfg.ModelAdmin != nil {
		h.mux.Handle("/models", cfg.ModelAdmin)
		h.mux.Handle("/models/", cfg.ModelAdmin)
	}
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	// Readiness is load-aware: a replica whose admission queue is full
	// reports not-ready so a router's health checker stops routing to it
	// before callers see 429s, and recovers automatically once the queue
	// drains. Draining still wins — it is terminal until restart.
	h.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		switch {
		case !h.ready.Load() || !h.srv.Ready():
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
		case h.srv.Saturated():
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "saturated")
		default:
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ready")
		}
	})
	h.ready.Store(true)
	return h, nil
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// statusWriter captures the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// observed wraps an estimation endpoint with its per-endpoint request
// counter, latency histogram, response-code counter, and one structured
// log line per request.
func (h *Handler) observed(endpoint string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h.cfg.Metrics.Requests.With(endpoint).Inc()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r)
		elapsed := time.Since(start)
		h.cfg.Metrics.HTTPLatency.With(endpoint).Observe(elapsed.Seconds())
		h.cfg.Metrics.Responses.With(strconv.Itoa(sw.code)).Inc()
		level := slog.LevelInfo
		if sw.code >= 400 {
			level = slog.LevelWarn
		}
		h.log.LogAttrs(r.Context(), level, "request",
			slog.String("endpoint", endpoint),
			slog.Int("status", sw.code),
			slog.Duration("elapsed", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	}
}

// Shutdown begins a graceful stop: readiness flips to 503 immediately (so
// balancers stop routing here), new estimation requests are rejected with
// ErrDraining, and in-flight ones are drained until ctx expires. Call it
// before http.Server.Shutdown.
func (h *Handler) Shutdown(ctx context.Context) error {
	h.ready.Store(false)
	h.log.LogAttrs(ctx, slog.LevelInfo, "shutdown started",
		slog.Int("inflight", h.srv.Inflight()))
	err := h.srv.Drain(ctx)
	if err != nil {
		h.log.LogAttrs(ctx, slog.LevelWarn, "drain abandoned", slog.String("error", err.Error()))
	} else {
		h.log.LogAttrs(ctx, slog.LevelInfo, "drain complete")
	}
	return err
}

// EstimateRequest is the JSON body of /estimate and /select. Resource
// fields are optional; zero means the server default. Exported because
// the fleet router decodes the same wire format to compute the affinity
// key before proxying.
type EstimateRequest struct {
	SQL       string  `json:"sql"`
	Executors int     `json:"executors"`
	Cores     int     `json:"cores"`
	MemMB     float64 `json:"mem_mb"`
}

// EstimateResponse is the JSON answer. Degraded marks fallback answers;
// Reason then carries the deep-path failure. The fleet router emits the
// same shape for its local last-resort degrade, so clients see one
// schema whether a replica or the router answered.
type EstimateResponse struct {
	CostSec    float64 `json:"cost_sec"`
	Source     string  `json:"source"`
	Degraded   bool    `json:"degraded"`
	Reason     string  `json:"reason,omitempty"`
	PlanSig    string  `json:"plan_sig,omitempty"`
	PlanIndex  int     `json:"plan_index"`
	Candidates int     `json:"candidates"`
}

// ErrorResponse is the JSON error envelope every non-2xx estimation
// response carries.
type ErrorResponse struct {
	Error string `json:"error"`
}

func (h *Handler) handleEstimate(w http.ResponseWriter, r *http.Request) {
	plans, res, ok := h.prepare(w, r)
	if !ok {
		return
	}
	result, err := h.srv.Estimate(r.Context(), plans[0], res)
	if err != nil {
		h.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		CostSec: result.Cost, Source: result.Source,
		Degraded: result.Degraded, Reason: result.Reason,
		PlanSig: plans[0].Sig, PlanIndex: 0, Candidates: len(plans),
	})
}

func (h *Handler) handleSelect(w http.ResponseWriter, r *http.Request) {
	plans, res, ok := h.prepare(w, r)
	if !ok {
		return
	}
	candidates := plans
	if len(candidates) > h.cfg.MaxCandidates {
		candidates = candidates[:h.cfg.MaxCandidates]
	}
	best, result, err := h.srv.Select(r.Context(), candidates, res)
	if err != nil {
		h.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		CostSec: result.Cost, Source: result.Source,
		Degraded: result.Degraded, Reason: result.Reason,
		PlanSig: candidates[best].Sig, PlanIndex: best, Candidates: len(candidates),
	})
}

// prepare decodes, validates, and plans a request; on failure it has
// already written the error response.
func (h *Handler) prepare(w http.ResponseWriter, r *http.Request) ([]*physical.Plan, sparksim.Resources, bool) {
	var req EstimateRequest
	body := http.MaxBytesReader(w, r.Body, h.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// A body over the limit must answer a typed 413, not a generic
		// decode failure: the payload never reaches the JSON decoder's
		// semantics, it is simply too large to admit.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{
				Error: fmt.Sprintf("request body exceeds %d byte limit", tooLarge.Limit)})
			return nil, sparksim.Resources{}, false
		}
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error()})
		return nil, sparksim.Resources{}, false
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: `missing "sql"`})
		return nil, sparksim.Resources{}, false
	}
	res := h.cfg.DefaultRes
	if req.Executors != 0 {
		res.Executors = req.Executors
	}
	if req.Cores != 0 {
		res.ExecCores = req.Cores
	}
	if req.MemMB != 0 {
		res.ExecMemMB = req.MemMB
	}
	if err := res.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "invalid resources: " + err.Error()})
		return nil, sparksim.Resources{}, false
	}
	plans, err := h.cfg.Planner(req.SQL)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return nil, sparksim.Resources{}, false
	}
	if len(plans) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "no plan for query"})
		return nil, sparksim.Resources{}, false
	}
	return plans, res, true
}

// writeError maps the serve package's typed errors to HTTP statuses. Note
// ErrInternal only reaches clients on servers with no fallback — with one
// configured, panics degrade to 200 + degraded:true.
func (h *Handler) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrOverloaded):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for logs only.
		status = http.StatusRequestTimeout
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
