package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"raal/internal/physical"
	"raal/internal/sparksim"
)

// stubPlanner returns one fixed candidate set for any parsable "query";
// the string "bad sql" simulates a front-end rejection.
func stubPlanner(plans ...*physical.Plan) PlanFunc {
	return func(sql string) ([]*physical.Plan, error) {
		if sql == "bad sql" {
			return nil, fmt.Errorf("sql: syntax error near %q", sql)
		}
		return plans, nil
	}
}

func newTestHandler(t *testing.T, cfg Config, plans ...*physical.Plan) *Handler {
	t.Helper()
	if len(plans) == 0 {
		plans = []*physical.Plan{{Sig: "default"}}
	}
	s := mustServer(t, cfg)
	h, err := NewHandler(s, HTTPConfig{Planner: stubPlanner(plans...)})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func postEstimate(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, EstimateResponse, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var er EstimateResponse
	_ = json.Unmarshal(buf.Bytes(), &er)
	return resp, er, buf.String()
}

func TestHTTPEstimateHealthy(t *testing.T) {
	h := newTestHandler(t, Config{Deep: constEstimator(42), Fallback: constEstimator(7)})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, er, _ := postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if er.CostSec != 42 || er.Degraded || er.Source != "model" || er.PlanSig != "default" {
		t.Fatalf("bad body: %+v", er)
	}
}

// TestHTTPInjectedPanicDegrades is the first acceptance clause: an
// injected panic inside the deep path must yield HTTP 200 with
// degraded:true and the GPSJ fallback's estimate — and the server must
// survive to answer again.
func TestHTTPInjectedPanicDegrades(t *testing.T) {
	h := newTestHandler(t, Config{
		Deep:     constEstimator(42),
		Fallback: constEstimator(7),
		Faults:   &FaultConfig{Seed: 1, PanicProb: 1},
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	for i := 0; i < 5; i++ {
		resp, er, body := postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1"}`)
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, body)
		}
		if !er.Degraded || er.CostSec != 7 || er.Source != "fallback" {
			t.Fatalf("request %d: want degraded fallback answer, got %s", i, body)
		}
		if !strings.Contains(er.Reason, "panic") {
			t.Fatalf("request %d: reason should carry the panic, got %q", i, er.Reason)
		}
	}
}

// TestHTTPInjectedDelay is the second acceptance clause: a delay pushed
// past the deadline yields the fallback under FallbackOnDeadline and 504
// under FailOnDeadline.
func TestHTTPInjectedDelay(t *testing.T) {
	faults := &FaultConfig{Seed: 2, DelayProb: 1, Delay: 5 * time.Second}
	t.Run("fallback-policy", func(t *testing.T) {
		h := newTestHandler(t, Config{
			Deep: constEstimator(42), Fallback: constEstimator(7),
			Deadline: 25 * time.Millisecond, Faults: faults,
		})
		ts := httptest.NewServer(h)
		defer ts.Close()
		resp, er, body := postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1"}`)
		if resp.StatusCode != 200 || !er.Degraded || er.CostSec != 7 {
			t.Fatalf("want 200 degraded fallback, got %d %s", resp.StatusCode, body)
		}
	})
	t.Run("fail-policy", func(t *testing.T) {
		h := newTestHandler(t, Config{
			Deep: constEstimator(42), Fallback: constEstimator(7),
			Deadline: 25 * time.Millisecond, OnDeadline: FailOnDeadline, Faults: faults,
		})
		ts := httptest.NewServer(h)
		defer ts.Close()
		resp, _, body := postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1"}`)
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("want 504, got %d %s", resp.StatusCode, body)
		}
	})
}

// TestHTTPOverloadIs429 is the third acceptance clause: queue overflow
// answers 429 instead of accepting unbounded work.
func TestHTTPOverloadIs429(t *testing.T) {
	release := make(chan struct{})
	h := newTestHandler(t, Config{
		Deep:        blockingEstimator(release),
		Concurrency: 1,
		QueueDepth:  0, // no queue: second request must bounce
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, _, _ := postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1"}`)
		first <- resp.StatusCode
	}()
	waitFor(t, func() bool { return h.srv.Inflight() == 1 })

	resp, _, body := postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d %s", resp.StatusCode, body)
	}
	close(release)
	if code := <-first; code != 200 {
		t.Fatalf("admitted request should finish 200, got %d", code)
	}
}

// TestHTTPFaultPatternDeterministic replays a mixed fault workload twice
// under one seed: the per-request outcome sequence must match exactly and
// contain zero 5xx responses — "all deterministic under a fixed seed,
// with zero server crashes".
func TestHTTPFaultPatternDeterministic(t *testing.T) {
	run := func() []string {
		h := newTestHandler(t, Config{
			Deep:     constEstimator(42),
			Fallback: constEstimator(7),
			Deadline: 25 * time.Millisecond,
			Faults: &FaultConfig{
				Seed: 1234, PanicProb: 0.25, ErrorProb: 0.25,
				DelayProb: 0.2, Delay: time.Second,
			},
		})
		ts := httptest.NewServer(h)
		defer ts.Close()
		out := make([]string, 60)
		for i := range out {
			resp, er, body := postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1"}`)
			if resp.StatusCode >= 500 {
				t.Fatalf("request %d: server-side failure %d (%s)", i, resp.StatusCode, body)
			}
			if resp.StatusCode != 200 {
				t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, body)
			}
			out[i] = fmt.Sprintf("%v/%.0f", er.Degraded, er.CostSec)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome diverged at request %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestHTTPSelect(t *testing.T) {
	costs := map[string]float64{"a": 9, "b": 3, "c": 5}
	deep := func(_ context.Context, p *physical.Plan, _ sparksim.Resources) (float64, error) {
		return costs[p.Sig], nil
	}
	h := newTestHandler(t, Config{Deep: deep},
		&physical.Plan{Sig: "a"}, &physical.Plan{Sig: "b"}, &physical.Plan{Sig: "c"})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, er, body := postEstimate(t, ts, "/select", `{"sql":"SELECT 1"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	if er.PlanIndex != 1 || er.PlanSig != "b" || er.CostSec != 3 || er.Candidates != 3 {
		t.Fatalf("want plan b at 3s of 3 candidates, got %s", body)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	h := newTestHandler(t, Config{Deep: constEstimator(42)})
	ts := httptest.NewServer(h)
	defer ts.Close()

	for name, body := range map[string]string{
		"malformed json":    `{"sql": `,
		"missing sql":       `{}`,
		"unknown field":     `{"sql":"SELECT 1","bogus":true}`,
		"planner rejection": `{"sql":"bad sql"}`,
		"invalid resources": `{"sql":"SELECT 1","executors":-4}`,
	} {
		resp, _, respBody := postEstimate(t, ts, "/estimate", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: want 400, got %d (%s)", name, resp.StatusCode, respBody)
		}
	}
	// Wrong method on an estimation route.
	resp, err := http.Get(ts.URL + "/estimate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /estimate: want 405, got %d", resp.StatusCode)
	}
}

func TestHTTPResourceOverrides(t *testing.T) {
	var seen sparksim.Resources
	deep := func(_ context.Context, _ *physical.Plan, res sparksim.Resources) (float64, error) {
		seen = res
		return 1, nil
	}
	h := newTestHandler(t, Config{Deep: deep})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, _, _ := postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1","executors":4,"cores":1,"mem_mb":8192}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if seen.Executors != 4 || seen.ExecCores != 1 || seen.ExecMemMB != 8192 {
		t.Fatalf("overrides not applied: %+v", seen)
	}
	def := sparksim.DefaultResources()
	if seen.NetMBps != def.NetMBps || seen.Nodes != def.Nodes {
		t.Fatalf("unset fields should keep defaults: %+v", seen)
	}
}

// TestHTTPLifecycle covers the health endpoints and graceful shutdown:
// readiness flips to 503 the moment Shutdown starts, in-flight requests
// complete, and new estimation calls are turned away.
func TestHTTPLifecycle(t *testing.T) {
	release := make(chan struct{})
	h := newTestHandler(t, Config{Deep: blockingEstimator(release), Concurrency: 2})
	ts := httptest.NewServer(h)
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if get("/healthz") != 200 || get("/readyz") != 200 {
		t.Fatal("fresh server should be live and ready")
	}

	inflight := make(chan int, 1)
	go func() {
		resp, _, _ := postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1"}`)
		inflight <- resp.StatusCode
	}()
	waitFor(t, func() bool { return h.srv.Inflight() == 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		shutdownDone <- h.Shutdown(ctx)
	}()
	waitFor(t, func() bool { return get("/readyz") == http.StatusServiceUnavailable })
	if get("/healthz") != 200 {
		t.Fatal("liveness must hold during drain")
	}
	if resp, _, _ := postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server should 503 new estimates, got %d", resp.StatusCode)
	}

	close(release)
	if code := <-inflight; code != 200 {
		t.Fatalf("in-flight request should drain to 200, got %d", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
