package serve

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"raal/internal/physical"
	"raal/internal/sparksim"
	"raal/internal/telemetry"
)

// sigValue derives a deterministic per-plan answer, so scatter bugs
// (request i getting request j's prediction) are detectable.
func sigValue(p *physical.Plan) float64 { return float64(len(p.Sig)) }

// echoRun scores each item from its plan signature and records every
// batch it sees.
type echoRun struct {
	mu      sync.Mutex
	batches [][]BatchItem
}

func (e *echoRun) run(_ context.Context, items []BatchItem) ([]float64, error) {
	e.mu.Lock()
	e.batches = append(e.batches, append([]BatchItem(nil), items...))
	e.mu.Unlock()
	out := make([]float64, len(items))
	for i, it := range items {
		out[i] = sigValue(it.Plan)
	}
	return out, nil
}

func (e *echoRun) batchSizes() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	sizes := make([]int, len(e.batches))
	for i, b := range e.batches {
		sizes[i] = len(b)
	}
	return sizes
}

func mustBatcher(t *testing.T, cfg BatcherConfig) *Batcher {
	t.Helper()
	b, err := NewBatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close(context.Background()) })
	return b
}

// pathfinderSig marks the priming request used by gatedRun. Its batch
// parks inside the estimator until the gate opens, keeping one caller
// visibly in flight for the duration of a test body — so the dispatcher
// collects subsequent requests under the window instead of
// solo-dispatching the first one (the correct behavior when a caller
// is genuinely alone, but not what coalescing tests want to exercise).
const pathfinderSig = "\x00pathfinder"

type runGate struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

// gatedRun wraps run so the pathfinder request blocks inside the
// estimator until the gate is opened; all other batches pass through.
func gatedRun(run BatchRunFunc) (BatchRunFunc, *runGate) {
	g := &runGate{started: make(chan struct{}), release: make(chan struct{})}
	wrapped := func(ctx context.Context, items []BatchItem) ([]float64, error) {
		if len(items) == 1 && items[0].Plan.Sig == pathfinderSig {
			close(g.started)
			<-g.release
			return []float64{0}, nil
		}
		return run(ctx, items)
	}
	return wrapped, g
}

// holdOpen sends the pathfinder request and waits until it is parked
// inside the estimator. From then until open (or test cleanup), at
// least one other caller is in flight.
func (g *runGate) holdOpen(t *testing.T, b *Batcher) {
	t.Helper()
	go b.Estimate(context.Background(), &physical.Plan{Sig: pathfinderSig}, testRes)
	<-g.started
	t.Cleanup(g.open)
}

func (g *runGate) open() { g.once.Do(func() { close(g.release) }) }

// TestBatcherCoalescesToOneRun: K concurrent requests under a generous
// window and MaxSize=K must coalesce into exactly one Run call, flushed
// by the size cap, and every caller must get its own plan's answer back.
func TestBatcherCoalescesToOneRun(t *testing.T) {
	const k = 8
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	er := &echoRun{}
	run, g := gatedRun(er.run)
	b := mustBatcher(t, BatcherConfig{Run: run, Window: 5 * time.Second, MaxSize: k, Metrics: met})
	g.holdOpen(t, b)

	var wg sync.WaitGroup
	errs := make([]error, k)
	got := make([]float64, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := &physical.Plan{Sig: strings.Repeat("x", i+1)}
			got[i], errs[i] = b.Estimate(context.Background(), p, testRes)
		}(i)
	}
	wg.Wait()
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if got[i] != float64(i+1) {
			t.Fatalf("request %d got %v, want %v (scatter mismatch)", i, got[i], float64(i+1))
		}
	}
	if sizes := er.batchSizes(); len(sizes) != 1 || sizes[0] != k {
		t.Fatalf("batches = %v, want one batch of %d", sizes, k)
	}
	if met.BatchFlushes.With("full").Value() != 1 {
		t.Fatalf("full flushes = %d, want 1", met.BatchFlushes.With("full").Value())
	}
	if met.BatchFlushes.With("solo").Value() != 1 {
		t.Fatalf("solo flushes = %d, want 1 (the pathfinder)", met.BatchFlushes.With("solo").Value())
	}
	// The pathfinder's solo batch is observed too: k+1 requests over 2
	// batches.
	if met.BatchSize.Count() != 2 || met.BatchSize.Sum() != k+1 {
		t.Fatalf("batch size histogram: count %d sum %g, want 2/%d", met.BatchSize.Count(), met.BatchSize.Sum(), k+1)
	}
	if met.BatchWait.Count() != k+1 {
		t.Fatalf("batch wait observations = %d, want %d", met.BatchWait.Count(), k+1)
	}
}

// TestBatcherWindowFlushesPartialBatch: a request whose batch-mates
// never materialize — even though another caller is in flight — must
// not wait forever; the (adaptive) window flushes it.
func TestBatcherWindowFlushesPartialBatch(t *testing.T) {
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	er := &echoRun{}
	run, g := gatedRun(er.run)
	b := mustBatcher(t, BatcherConfig{Run: run, Window: 250 * time.Millisecond, MaxSize: 64, Metrics: met})
	g.holdOpen(t, b)

	start := time.Now()
	got, err := b.Estimate(context.Background(), &physical.Plan{Sig: "abc"}, testRes)
	if err != nil || got != 3 {
		t.Fatalf("lone request: got %v, %v", got, err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("lone request took %v — window never fired", elapsed)
	}
	if met.BatchFlushes.With("window").Value() != 1 {
		t.Fatalf("window flushes = %d, want 1", met.BatchFlushes.With("window").Value())
	}
}

// TestBatcherSoloDispatch is the single-client regression test: a
// request with no other caller in flight cannot gain batch-mates, so it
// must dispatch immediately instead of paying the window. Under the
// fixed window a closed-loop client waited Window per request,
// collapsing throughput by the window-to-service-time ratio.
func TestBatcherSoloDispatch(t *testing.T) {
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	er := &echoRun{}
	b := mustBatcher(t, BatcherConfig{Run: er.run, Window: 3 * time.Second, MaxSize: 64, Metrics: met})

	start := time.Now()
	const n = 5
	for i := 0; i < n; i++ {
		got, err := b.Estimate(context.Background(), &physical.Plan{Sig: "abc"}, testRes)
		if err != nil || got != 3 {
			t.Fatalf("request %d: got %v, %v", i, got, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("%d sequential requests took %v — they waited on the window", n, elapsed)
	}
	if v := met.BatchFlushes.With("solo").Value(); v != n {
		t.Fatalf("solo flushes = %d, want %d", v, n)
	}
	if sizes := er.batchSizes(); len(sizes) != n {
		t.Fatalf("batches = %v, want %d single-request batches", sizes, n)
	}
}

// TestBatcherBisectsPoisonedBatch: one plan that makes the estimator
// fail must not take its batch-mates' deep answers down — the failing
// batch is bisected until the poison is alone, mates still succeed.
func TestBatcherBisectsPoisonedBatch(t *testing.T) {
	const k = 8
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	poisonErr := errors.New("estimator choked on plan")
	var runs atomic.Int64
	run := func(_ context.Context, items []BatchItem) ([]float64, error) {
		runs.Add(1)
		out := make([]float64, len(items))
		for i, it := range items {
			if it.Plan.Sig == "poison" {
				return nil, poisonErr
			}
			out[i] = sigValue(it.Plan)
		}
		return out, nil
	}
	grun, g := gatedRun(run)
	b := mustBatcher(t, BatcherConfig{Run: grun, Window: 5 * time.Second, MaxSize: k, Metrics: met})
	g.holdOpen(t, b)

	var wg sync.WaitGroup
	errs := make([]error, k)
	got := make([]float64, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sig := strings.Repeat("y", i+1)
			if i == 3 {
				sig = "poison"
			}
			got[i], errs[i] = b.Estimate(context.Background(), &physical.Plan{Sig: sig}, testRes)
		}(i)
	}
	wg.Wait()
	for i := 0; i < k; i++ {
		if i == 3 {
			if !errors.Is(errs[i], poisonErr) {
				t.Fatalf("poisoned request error = %v, want %v", errs[i], poisonErr)
			}
			continue
		}
		if errs[i] != nil || got[i] != float64(i+1) {
			t.Fatalf("batch-mate %d poisoned: got %v, err %v", i, got[i], errs[i])
		}
	}
	if met.BatchBisects.Value() == 0 {
		t.Fatal("bisect counter never moved")
	}
}

// TestBatcherPanicIsolatedToPoisonedRequest: a panicking estimator is
// caught at the batch recover boundary and bisected like any failure —
// the process survives and only the poisoned request errors.
func TestBatcherPanicIsolatedToPoisonedRequest(t *testing.T) {
	run := func(_ context.Context, items []BatchItem) ([]float64, error) {
		out := make([]float64, len(items))
		for i, it := range items {
			if it.Plan.Sig == "boom" {
				panic("corrupt weights")
			}
			out[i] = sigValue(it.Plan)
		}
		return out, nil
	}
	b := mustBatcher(t, BatcherConfig{Run: run, Window: 5 * time.Second, MaxSize: 4})

	var wg sync.WaitGroup
	var goodVal atomic.Value
	var badErr atomic.Value
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sig := "ok"
			if i == 0 {
				sig = "boom"
			}
			v, err := b.Estimate(context.Background(), &physical.Plan{Sig: sig}, testRes)
			if sig == "boom" {
				badErr.Store(err)
			} else if err == nil {
				goodVal.Store(v)
			}
		}(i)
	}
	wg.Wait()
	err, _ := badErr.Load().(error)
	if !errors.Is(err, ErrInternal) || !strings.Contains(err.Error(), "corrupt weights") {
		t.Fatalf("panicked request error = %v, want ErrInternal carrying the panic", err)
	}
	if v, _ := goodVal.Load().(float64); v != 2 {
		t.Fatalf("healthy batch-mate answer = %v, want 2", v)
	}
}

// TestBatcherDedupsIdenticalRequests: batch members holding the same
// plan object under the same allocation are one computation — the batch
// scores each distinct pair once and fans the answer out, while same-Sig
// but distinct plan objects (which may differ in cardinalities) are
// never merged.
func TestBatcherDedupsIdenticalRequests(t *testing.T) {
	const k = 8
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	er := &echoRun{}
	run, g := gatedRun(er.run)
	b := mustBatcher(t, BatcherConfig{Run: run, Window: 5 * time.Second, MaxSize: k, Metrics: met})
	g.holdOpen(t, b)

	hot := &physical.Plan{Sig: "hh"}  // shared pointer: dedupable
	twin := &physical.Plan{Sig: "hh"} // same Sig, distinct object: not dedupable
	coldRes := testRes                // distinct allocation for one hot request
	coldRes.Executors = testRes.Executors + 1

	type reqSpec struct {
		p    *physical.Plan
		res  sparksim.Resources
		want float64
	}
	specs := []reqSpec{
		{hot, testRes, 2}, {hot, testRes, 2}, {hot, testRes, 2}, {hot, testRes, 2},
		{hot, coldRes, 2},  // same plan, different resources
		{twin, testRes, 2}, // different object, same Sig
		{&physical.Plan{Sig: "abc"}, testRes, 3},
		{&physical.Plan{Sig: "wxyz"}, testRes, 4},
	}
	var wg sync.WaitGroup
	got := make([]float64, k)
	errs := make([]error, k)
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp reqSpec) {
			defer wg.Done()
			got[i], errs[i] = b.Estimate(context.Background(), sp.p, sp.res)
		}(i, sp)
	}
	wg.Wait()
	for i, sp := range specs {
		if errs[i] != nil || got[i] != sp.want {
			t.Fatalf("request %d: got %v, %v; want %v", i, got[i], errs[i], sp.want)
		}
	}
	if len(er.batches) != 1 {
		t.Fatalf("batches = %d, want 1", len(er.batches))
	}
	// 8 members, but only 5 distinct computations: hot/testRes (×4),
	// hot/coldRes, twin/testRes, abc, wxyz.
	if n := len(er.batches[0]); n != 5 {
		t.Fatalf("scored items = %d, want 5 after dedup", n)
	}
	if met.BatchDeduped.Value() != 3 {
		t.Fatalf("deduped = %d, want 3", met.BatchDeduped.Value())
	}
}

// TestBatcherCancelledMemberIsDropped: a caller that gives up mid-window
// gets its context error immediately, and the flush prices the batch
// without it.
func TestBatcherCancelledMemberIsDropped(t *testing.T) {
	er := &echoRun{}
	run, g := gatedRun(er.run)
	// The window floor (Window/16 = 125ms) keeps the batch collecting
	// well past the 10ms cancellation below.
	b := mustBatcher(t, BatcherConfig{Run: run, Window: 2 * time.Second, MaxSize: 64})
	g.holdOpen(t, b)

	cctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	var cancelledErr error
	var mateVal float64
	var mateErr error
	go func() {
		defer wg.Done()
		_, cancelledErr = b.Estimate(cctx, &physical.Plan{Sig: "cancelled"}, testRes)
	}()
	go func() {
		defer wg.Done()
		mateVal, mateErr = b.Estimate(context.Background(), &physical.Plan{Sig: "ok"}, testRes)
	}()
	time.Sleep(10 * time.Millisecond) // both enqueued, window still open
	cancel()
	wg.Wait()
	if !errors.Is(cancelledErr, context.Canceled) {
		t.Fatalf("cancelled member error = %v", cancelledErr)
	}
	if mateErr != nil || mateVal != 2 {
		t.Fatalf("surviving mate: %v, %v", mateVal, mateErr)
	}
	for _, batch := range er.batches {
		for _, it := range batch {
			if it.Plan.Sig == "cancelled" {
				t.Fatal("cancelled member was still scored")
			}
		}
	}
}

// TestBatcherEarliestDeadlinePropagates: the batch context must carry
// the soonest member deadline, so a coalesced call cannot outlive its
// tightest budget.
func TestBatcherEarliestDeadlinePropagates(t *testing.T) {
	sawDeadline := make(chan time.Time, 1)
	run := func(ctx context.Context, items []BatchItem) ([]float64, error) {
		if dl, ok := ctx.Deadline(); ok {
			sawDeadline <- dl
		} else {
			sawDeadline <- time.Time{}
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	grun, g := gatedRun(run)
	b := mustBatcher(t, BatcherConfig{Run: grun, Window: 5 * time.Second, MaxSize: 2})
	g.holdOpen(t, b)

	tight := time.Now().Add(50 * time.Millisecond)
	tctx, tcancel := context.WithDeadline(context.Background(), tight)
	defer tcancel()
	lctx, lcancel := context.WithDeadline(context.Background(), time.Now().Add(10*time.Second))
	defer lcancel()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = b.Estimate(tctx, &physical.Plan{Sig: "tight"}, testRes) }()
	go func() { defer wg.Done(); _, errs[1] = b.Estimate(lctx, &physical.Plan{Sig: "loose"}, testRes) }()

	dl := <-sawDeadline
	if dl.IsZero() || dl.After(tight.Add(time.Millisecond)) {
		t.Fatalf("batch deadline = %v, want the tight member's %v", dl, tight)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("member %d error = %v, want DeadlineExceeded", i, err)
		}
	}
}

// TestBatcherDrain: Close flushes the pending batch (members get real
// answers, not errors), then rejects new work with ErrDraining, and is
// idempotent.
func TestBatcherDrain(t *testing.T) {
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	er := &echoRun{}
	b, err := NewBatcher(BatcherConfig{Run: er.run, Window: time.Hour, MaxSize: 64, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}

	// Pretend two callers are mid-flight so the dispatcher collects
	// instead of solo-dispatching: the drain must find a pending batch.
	b.inflight.Add(2)
	defer b.inflight.Add(-2)
	// Submit through the internal path: reqs is unbuffered, so submit
	// returning guarantees the dispatcher holds the request in pending
	// before Close runs — the drain MUST flush it.
	r := &batchReq{
		item: BatchItem{Plan: &physical.Plan{Sig: "abcd"}, Res: testRes},
		ctx:  context.Background(),
		enq:  time.Now(),
		done: make(chan batchRes, 1),
	}
	if err := b.submit(r); err != nil {
		t.Fatalf("submit: %v", err)
	}

	if err := b.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	out := <-r.done
	if out.err != nil || out.cost != 4 {
		t.Fatalf("drained request = %v, %v; want 4, nil", out.cost, out.err)
	}
	if met.BatchFlushes.With("drain").Value() != 1 {
		t.Fatalf("drain flushes = %d, want 1", met.BatchFlushes.With("drain").Value())
	}
	if _, err := b.Estimate(context.Background(), &physical.Plan{Sig: "x"}, testRes); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-close error = %v, want ErrDraining", err)
	}
	if err := b.Close(context.Background()); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestBatcherRaceStress is the coalescer's race-detector workout: many
// goroutines, mixed deadlines, cancellation mid-wait, a slow estimator,
// and a concurrent drain. Run under -race via make race. Every call must
// return (no deadlock), and every successful answer must be the caller's
// own.
func TestBatcherRaceStress(t *testing.T) {
	run := func(ctx context.Context, items []BatchItem) ([]float64, error) {
		select {
		case <-time.After(time.Duration(len(items)) * 100 * time.Microsecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		out := make([]float64, len(items))
		for i, it := range items {
			out[i] = sigValue(it.Plan)
		}
		return out, nil
	}
	b, err := NewBatcher(BatcherConfig{Run: run, Window: 2 * time.Millisecond, MaxSize: 8})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 24
	const perWorker = 20
	var wg sync.WaitGroup
	var answered, expired atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch rng.Intn(4) {
				case 0: // deadline likely to expire mid-wait or mid-run
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3))*time.Millisecond)
				case 1: // generous deadline
					ctx, cancel = context.WithTimeout(ctx, time.Second)
				case 2: // cancelled from another goroutine mid-wait
					ctx, cancel = context.WithCancel(ctx)
					delay := time.Duration(rng.Intn(2)) * time.Millisecond
					go func(c context.CancelFunc) {
						time.Sleep(delay)
						c()
					}(cancel)
				}
				sig := strings.Repeat("z", 1+rng.Intn(9))
				v, err := b.Estimate(ctx, &physical.Plan{Sig: sig}, testRes)
				cancel()
				switch {
				case err == nil:
					if v != float64(len(sig)) {
						t.Errorf("worker %d got %v for sig length %d", w, v, len(sig))
					}
					answered.Add(1)
				case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
					expired.Add(1)
				case errors.Is(err, ErrDraining):
					// The concurrent drain below won the race; fine.
				default:
					t.Errorf("worker %d unexpected error: %v", w, err)
				}
			}
		}(w)
	}
	// Drain concurrently near the end of the storm: in-flight requests
	// must still complete or fail with their own context errors.
	go func() {
		time.Sleep(30 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := b.Close(ctx); err != nil {
			t.Errorf("close under load: %v", err)
		}
	}()
	wg.Wait()
	if answered.Load() == 0 {
		t.Fatal("stress run answered nothing — batches never completed")
	}
	t.Logf("answered=%d expired=%d", answered.Load(), expired.Load())
}

// TestServerBatchedEstimate is the integration check: a Server built
// with BatchWindow/BatchMax coalesces concurrent Estimate calls through
// its admission and degradation stack, and a batch-wide deep failure
// degrades every member to the fallback individually (200 + degraded,
// not an error).
func TestServerBatchedEstimate(t *testing.T) {
	const k = 4
	var fail atomic.Bool
	deepEach := func(_ context.Context, items []BatchItem) ([]float64, error) {
		if fail.Load() {
			return nil, errors.New("deep model detonated")
		}
		out := make([]float64, len(items))
		for i, it := range items {
			out[i] = sigValue(it.Plan)
		}
		return out, nil
	}
	s := mustServer(t, Config{
		Deep: func(context.Context, *physical.Plan, sparksim.Resources) (float64, error) {
			return 0, errors.New("unbatched deep path must not be used when batching is on")
		},
		DeepEach:    deepEach,
		Fallback:    constEstimator(7),
		Concurrency: k,
		BatchWindow: 20 * time.Millisecond,
		BatchMax:    k,
	})

	runWave := func() []Result {
		var wg sync.WaitGroup
		results := make([]Result, k)
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r, err := s.Estimate(context.Background(), &physical.Plan{Sig: strings.Repeat("s", i+1)}, testRes)
				if err != nil {
					t.Errorf("request %d: %v", i, err)
					return
				}
				results[i] = r
			}(i)
		}
		wg.Wait()
		return results
	}

	for i, r := range runWave() {
		if r.Source != "model" || r.Degraded || r.Cost != float64(i+1) {
			t.Fatalf("healthy wave request %d: %+v", i, r)
		}
	}
	fail.Store(true)
	for i, r := range runWave() {
		if r.Source != "fallback" || !r.Degraded || r.Cost != 7 {
			t.Fatalf("failing wave request %d should degrade individually: %+v", i, r)
		}
	}
	fail.Store(false)
	for i, r := range runWave() {
		if r.Source != "model" || r.Cost != float64(i+1) {
			t.Fatalf("recovered wave request %d: %+v", i, r)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Estimate(context.Background(), &physical.Plan{Sig: "x"}, testRes); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain error = %v, want ErrDraining", err)
	}
}

// TestServerBatchingConfigValidation pins the opt-in contract: BatchMax
// without DeepEach is a wiring error; BatchMax <= 1 leaves batching off.
func TestServerBatchingConfigValidation(t *testing.T) {
	if _, err := New(Config{Deep: constEstimator(1), BatchMax: 4, BatchWindow: time.Millisecond}); err == nil {
		t.Fatal("BatchMax without DeepEach must be rejected")
	}
	s := mustServer(t, Config{Deep: constEstimator(1), BatchMax: 1, BatchWindow: time.Millisecond})
	if s.batcher != nil {
		t.Fatal("BatchMax=1 must leave batching disabled")
	}
	s = mustServer(t, Config{Deep: constEstimator(1), BatchMax: 0})
	if s.batcher != nil {
		t.Fatal("zero BatchMax must leave batching disabled")
	}
	if _, err := NewBatcher(BatcherConfig{Run: func(context.Context, []BatchItem) ([]float64, error) { return nil, nil }}); err == nil {
		t.Fatal("NewBatcher without a window must be rejected")
	}
	if _, err := NewBatcher(BatcherConfig{}); err == nil {
		t.Fatal("NewBatcher without Run must be rejected")
	}
}

// TestBatcherWrongPredictionCount: an estimator that returns the wrong
// number of predictions is a typed internal error, not a silent
// misalignment; with one member left after bisection it surfaces as
// ErrInternal.
func TestBatcherWrongPredictionCount(t *testing.T) {
	run := func(_ context.Context, items []BatchItem) ([]float64, error) {
		return make([]float64, len(items)+1), nil
	}
	b := mustBatcher(t, BatcherConfig{Run: run, Window: time.Millisecond, MaxSize: 2})
	_, err := b.Estimate(context.Background(), &physical.Plan{Sig: "x"}, testRes)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("error = %v, want ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "2 prediction(s) for 1 request(s)") {
		t.Fatalf("error should name the count mismatch: %v", err)
	}
}
