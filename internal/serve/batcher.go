package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"raal/internal/physical"
	"raal/internal/sparksim"
	"raal/internal/telemetry"
)

// BatchItem is one coalesced estimation request: a plan priced under its
// own resource allocation. Batch-mates may carry different allocations —
// the batch estimator scores each (plan, resources) pair independently.
type BatchItem struct {
	Plan *physical.Plan
	Res  sparksim.Resources
}

// BatchRunFunc prices many independent (plan, resources) requests in one
// batched forward pass (in practice CostModel.EstimateEachCtx). It must
// return exactly one prediction per item, in item order.
type BatchRunFunc func(ctx context.Context, items []BatchItem) ([]float64, error)

// BatcherConfig wires a Batcher.
type BatcherConfig struct {
	// Run executes one coalesced batch (required).
	Run BatchRunFunc
	// Window is the longest the first request of a batch may wait for
	// batch-mates before the batch is flushed anyway (required > 0).
	// It is an upper bound, not a fixed delay: the actual wait adapts
	// to the observed arrival rate, and a request with no other caller
	// in flight dispatches immediately — batch-mates provably cannot
	// arrive, so making it wait would only add latency.
	Window time.Duration
	// MaxSize flushes a batch immediately once it holds this many
	// requests (required >= 2) — a full batch never waits out the window.
	MaxSize int
	// Metrics receives batch size, queue-wait, and flush-trigger
	// observations; nil serves unobserved.
	Metrics *Metrics
}

// Batcher coalesces concurrent single-plan estimation requests into
// batched forward passes: the first request opens a collection window,
// and the batch is scored as one Run call when the window expires or
// MaxSize requests have gathered, whichever comes first. Each caller
// blocks on a private future and gets exactly its own prediction back.
//
// The collection window is adaptive. Waiting only pays off when a
// batch-mate can actually arrive, so a request whose caller is the only
// one in flight is dispatched solo, immediately — under a single
// closed-loop client a fixed window would serialize every request
// behind a wait that can never be joined, collapsing throughput by the
// Window-to-service-time ratio. When callers are concurrent, the wait
// is sized from the observed inter-arrival rate (long enough for a full
// batch to gather) and capped at Window, so sparse traffic is not
// taxed the full window either.
//
// Batch members that are provably the same computation — the same plan
// object under the same resource allocation, as a shared plan cache
// produces for hot queries — are deduplicated before scoring: the batch
// prices each distinct (plan, resources) once and fans the answer out
// (singleflight).
//
// Failure isolation is per request: a caller whose context dies while
// waiting gets its own ctx error (the batch proceeds without it), and a
// batch-level failure is delivered to every member for its own serving
// pipeline to degrade or fail — members share the failure, never a
// batch-mate's fate. The batch's context carries the earliest member
// deadline, so a coalesced call can never outlive its tightest budget;
// with a shared per-request Deadline the member deadlines differ by at
// most Window.
//
// All methods are safe for concurrent use.
type Batcher struct {
	run    BatchRunFunc
	window time.Duration
	max    int
	met    *Metrics

	// inflight counts callers currently inside Estimate. The dispatcher
	// reads it to tell "batch-mates may still arrive" (some other caller
	// is mid-flight) from "nobody can join" (dispatch solo, now).
	inflight atomic.Int64
	// lastCompanion is the UnixNano instant a caller last observed
	// another caller in flight. Solo dispatch requires both inflight==1
	// and no companion within the last window: closed-loop clients
	// re-enter in bursts, and at the burst edge inflight dips to 1 for
	// an instant even though batch-mates are about to arrive — without
	// the hysteresis the first re-entrant would be stolen from every
	// batch, leaving the rest one short of the size cap.
	lastCompanion atomic.Int64
	// soloFlushes is BatchFlushes.With("solo"), resolved once so the
	// solo fast path skips the label lookup.
	soloFlushes *telemetry.Counter

	mu      sync.RWMutex // guards closed and the send on reqs
	closed  bool
	reqs    chan *batchReq
	stopped chan struct{}  // closed when the dispatcher exits
	flushes sync.WaitGroup // in-flight batch runs
}

// batchRes carries one member's result across the future channel.
type batchRes struct {
	cost float64
	err  error
}

// batchReq is one enqueued request: its item, its caller's context, and
// the buffered future the flush delivers into exactly once.
type batchReq struct {
	item BatchItem
	ctx  context.Context
	enq  time.Time
	done chan batchRes
}

// NewBatcher validates cfg, starts the dispatcher, and returns the
// batcher. Callers own its lifecycle: Close flushes and stops it.
func NewBatcher(cfg BatcherConfig) (*Batcher, error) {
	if cfg.Run == nil {
		return nil, errors.New("serve: BatcherConfig.Run is required")
	}
	if cfg.Window <= 0 {
		return nil, errors.New("serve: BatcherConfig.Window must be positive")
	}
	if cfg.MaxSize < 2 {
		return nil, errors.New("serve: BatcherConfig.MaxSize must be at least 2 (1 would just add Window of latency)")
	}
	met := cfg.Metrics
	if met == nil {
		met = &Metrics{}
	}
	b := &Batcher{
		run:         cfg.Run,
		window:      cfg.Window,
		max:         cfg.MaxSize,
		met:         met,
		soloFlushes: met.BatchFlushes.With("solo"),
		reqs:        make(chan *batchReq),
		stopped:     make(chan struct{}),
	}
	go b.dispatch()
	return b, nil
}

// Estimate submits one request and blocks until its batch delivers (or
// ctx dies first). The signature matches EstimateFunc, so a Batcher
// drops into the Server's deep path unchanged.
func (b *Batcher) Estimate(ctx context.Context, p *physical.Plan, res sparksim.Resources) (float64, error) {
	n := b.inflight.Add(1)
	defer b.inflight.Add(-1)
	if n > 1 {
		b.lastCompanion.Store(time.Now().UnixNano())
	} else if !b.companionsRecent(time.Now()) {
		// Alone at this instant — but on a loaded box peer clients may
		// simply not have been scheduled yet (a compute-bound solo run
		// never yields, so overlap cannot form on its own). Yield once:
		// any runnable peer gets the CPU and shows up in inflight; only
		// if still alone after that is solo dispatch safe.
		runtime.Gosched()
		if b.inflight.Load() == 1 && !b.companionsRecent(time.Now()) {
			return b.soloDispatch(ctx, p, res)
		}
	}
	r := &batchReq{
		item: BatchItem{Plan: p, Res: res},
		ctx:  ctx,
		enq:  time.Now(),
		done: make(chan batchRes, 1),
	}
	if err := b.submit(r); err != nil {
		return 0, err
	}
	select {
	case out := <-r.done:
		return out.cost, out.err
	case <-ctx.Done():
		// Already enqueued: the flush will observe the dead context and
		// drop this member, or its delivered result is discarded — the
		// buffered future never blocks the flusher either way.
		return 0, ctx.Err()
	}
}

// companionsRecent reports whether another caller was observed in
// flight within the last window — the signal that batch-mates are
// likely to arrive even though none is in flight at this instant.
func (b *Batcher) companionsRecent(now time.Time) bool {
	last := b.lastCompanion.Load()
	return last != 0 && now.UnixNano()-last <= int64(b.window)
}

// soloDispatch prices a request that has no other caller in flight:
// batch-mates provably cannot arrive, so the request skips the
// dispatcher entirely — no channel handoff, no collection window, no
// flush goroutine, no narrowed batch context — and runs as a batch of
// one on the caller's own goroutine and context. This is what keeps
// single-client throughput at parity with the unbatched path instead
// of paying the window per request (the low-concurrency collapse).
func (b *Batcher) soloDispatch(ctx context.Context, p *physical.Plan, res sparksim.Resources) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return 0, ErrDraining
	}
	// Register with the flush group under the read lock: Close flips
	// closed under the write lock before waiting on the group, so it
	// cannot miss a solo run admitted here.
	b.flushes.Add(1)
	b.mu.RUnlock()
	defer b.flushes.Done()

	b.soloFlushes.Inc()
	b.met.BatchSize.Observe(1)
	b.met.BatchWait.Observe(0)
	// A batch of one needs none of score's machinery (dedup, scatter,
	// bisection): run the estimator directly on the caller's goroutine.
	preds, err := b.guardedRun(ctx, []BatchItem{{Plan: p, Res: res}})
	if err == nil && len(preds) != 1 {
		err = fmt.Errorf("%w: batch estimator returned %d prediction(s) for 1 request(s)",
			ErrInternal, len(preds))
	}
	if err != nil {
		return 0, err
	}
	return preds[0], nil
}

// submit hands the request to the dispatcher. The read lock makes the
// send safe against a concurrent Close (the channel is only closed under
// the write lock); the dispatcher is always receiving, so the send never
// blocks meaningfully.
func (b *Batcher) submit(r *batchReq) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrDraining
	}
	select {
	case b.reqs <- r:
		return nil
	case <-r.ctx.Done():
		return r.ctx.Err()
	}
}

// gapEWMAWeight is the denominator of the inter-arrival EWMA: each new
// gap contributes 1/4, so the estimate tracks a rate change within a
// few requests without whipsawing on a single outlier.
const gapEWMAWeight = 4

// minWindowFrac floors the adaptive wait at Window/minWindowFrac, so a
// burst of near-simultaneous arrivals (measured gap ~0) still leaves
// the window open long enough for stragglers to join.
const minWindowFrac = 16

// dispatch is the single collector goroutine: it owns the pending batch
// and flushes it to a worker goroutine on window expiry, size cap, solo
// dispatch, or drain, so collection never stalls behind a running
// batch.
func (b *Batcher) dispatch() {
	defer close(b.stopped)
	var pending []*batchReq
	var window <-chan time.Time // nil while no batch is collecting
	var timer *time.Timer       // reused across batches; see arm
	var lastArrival time.Time
	var avgGap time.Duration // EWMA of request inter-arrival gaps
	flush := func(trigger string) {
		batch := pending
		pending = nil
		window = nil
		b.met.BatchFlushes.With(trigger).Inc()
		b.flushes.Add(1)
		go func() {
			defer b.flushes.Done()
			b.runBatch(batch)
		}()
	}
	// arm opens the collection window for d. The timer object is reused
	// across batches rather than allocated per batch: it may still hold
	// an undelivered tick from a batch that flushed full (or early), so
	// it is stopped and its channel drained before every reset — a stale
	// tick can then never flush the wrong batch.
	arm := func(d time.Duration) {
		if timer == nil {
			timer = time.NewTimer(d)
		} else {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(d)
		}
		window = timer.C
	}
	for {
		select {
		case r, ok := <-b.reqs:
			if !ok {
				if len(pending) > 0 {
					flush("drain")
				}
				return
			}
			now := time.Now()
			if !lastArrival.IsZero() {
				gap := now.Sub(lastArrival)
				if avgGap == 0 {
					avgGap = gap
				} else {
					avgGap = ((gapEWMAWeight-1)*avgGap + gap) / gapEWMAWeight
				}
			}
			lastArrival = now
			pending = append(pending, r)
			if len(pending) >= b.max {
				flush("full")
			} else if len(pending) == 1 {
				if wait, ok := b.coalesceWait(avgGap); ok {
					arm(wait)
				} else {
					flush("solo")
				}
			}
		case <-window:
			flush("window")
		}
	}
}

// coalesceWait decides how long the first request of a batch waits for
// batch-mates. ok=false means waiting is pointless and the request must
// dispatch solo: either its caller is the only one in flight — nobody
// else can possibly join before the window expires, the pathology that
// made a single closed-loop client pay the full window per request —
// or arrivals are observed to be slower than the window itself. With
// concurrent callers the wait is sized from the arrival rate: long
// enough for a full batch to gather, floored against measurement noise,
// and never more than the configured Window.
func (b *Batcher) coalesceWait(avgGap time.Duration) (time.Duration, bool) {
	if b.inflight.Load() <= 1 && !b.companionsRecent(time.Now()) {
		return 0, false
	}
	if avgGap <= 0 {
		// No gap estimate yet: fall back to the full window.
		return b.window, true
	}
	if avgGap >= b.window {
		return 0, false
	}
	wait := time.Duration(b.max-1) * avgGap
	if floor := b.window / minWindowFrac; wait < floor {
		wait = floor
	}
	if wait > b.window {
		wait = b.window
	}
	return wait, true
}

// runBatch scores one flushed batch and delivers per-member results.
func (b *Batcher) runBatch(batch []*batchReq) {
	now := time.Now()
	live := make([]*batchReq, 0, len(batch))
	for _, r := range batch {
		// A member whose caller already gave up is dropped here, so a
		// dead request can neither shrink the batch deadline nor burn a
		// slot in the forward pass.
		if err := r.ctx.Err(); err != nil {
			r.done <- batchRes{err: err}
			continue
		}
		b.met.BatchWait.Observe(now.Sub(r.enq).Seconds())
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	b.met.BatchSize.Observe(float64(len(live)))

	if len(live) == 1 {
		// A batch of one needs no narrowed context: the member's own ctx
		// already carries exactly its deadline and cancellation.
		b.score(live[0].ctx, live)
		return
	}

	bctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if dl, ok := earliestDeadline(live); ok {
		var dcancel context.CancelFunc
		bctx, dcancel = context.WithDeadline(bctx, dl)
		defer dcancel()
	}
	// Release the batch as soon as every member's caller is gone: the
	// forward pass aborts at its next cancellation check instead of
	// pricing plans nobody will read.
	go func() {
		for _, r := range live {
			select {
			case <-r.ctx.Done():
			case <-bctx.Done():
				return
			}
		}
		cancel()
	}()

	b.score(bctx, live)
}

// itemKey identifies a request for in-batch deduplication: the same
// immutable plan object under the same allocation is the same
// computation. Pointer identity is deliberately conservative — plans
// re-built per request never alias, so dedup only fires where it is
// provably sound (requests resolved through a shared plan cache).
type itemKey struct {
	plan *physical.Plan
	res  sparksim.Resources
}

// score runs one (sub-)batch and delivers per-member results. Identical
// in-flight requests (same plan object, same resources) coalesce into a
// single scored slot first — the singleflight half of the batching win
// on hot-query traffic. A failing batch is then bisected and retried
// half by half, so one poisoned request (a plan that makes the estimator
// error or panic) is isolated down to a sub-batch of itself and its
// batch-mates still get deep answers — the failure is shared only when
// it is genuinely batch-wide (an expired batch context is never
// bisected: it would fail every half the same way). Recursion depth is
// log2(MaxSize).
func (b *Batcher) score(ctx context.Context, reqs []*batchReq) {
	slot := make([]int, len(reqs))
	items := make([]BatchItem, 0, len(reqs))
	seen := make(map[itemKey]int, len(reqs))
	for i, r := range reqs {
		k := itemKey{r.item.Plan, r.item.Res}
		j, dup := seen[k]
		if !dup {
			j = len(items)
			seen[k] = j
			items = append(items, r.item)
		} else {
			b.met.BatchDeduped.Inc()
		}
		slot[i] = j
	}
	preds, err := b.guardedRun(ctx, items)
	if err == nil && len(preds) != len(items) {
		err = fmt.Errorf("%w: batch estimator returned %d prediction(s) for %d request(s)",
			ErrInternal, len(preds), len(items))
	}
	if err == nil {
		for i, r := range reqs {
			r.done <- batchRes{cost: preds[slot[i]]}
		}
		return
	}
	if ctx.Err() == nil && len(reqs) > 1 {
		b.met.BatchBisects.Inc()
		mid := len(reqs) / 2
		b.score(ctx, reqs[:mid])
		b.score(ctx, reqs[mid:])
		return
	}
	for _, r := range reqs {
		// The failure is this request's own (sub-batch of one) or truly
		// batch-wide; either way its serving pipeline decides what it
		// becomes (fallback degradation, 504, ...).
		r.done <- batchRes{err: err}
	}
}

// guardedRun is the batch's recover boundary: a panic deep in the
// estimator becomes a typed ErrInternal delivered per member, never a
// dead dispatcher.
func (b *Batcher) guardedRun(ctx context.Context, items []BatchItem) (preds []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: panic: %v", ErrInternal, r)
		}
	}()
	return b.run(ctx, items)
}

// earliestDeadline returns the soonest member deadline, if any member
// has one.
func earliestDeadline(reqs []*batchReq) (time.Time, bool) {
	var dl time.Time
	found := false
	for _, r := range reqs {
		if d, ok := r.ctx.Deadline(); ok && (!found || d.Before(dl)) {
			dl, found = d, true
		}
	}
	return dl, found
}

// Close stops admitting new requests (they fail with ErrDraining),
// flushes whatever is pending, and waits for in-flight batches to
// deliver or ctx to expire. Safe to call more than once.
func (b *Batcher) Close(ctx context.Context) error {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.reqs)
	}
	b.mu.Unlock()
	select {
	case <-b.stopped:
	case <-ctx.Done():
		return fmt.Errorf("serve: batcher close: %w", ctx.Err())
	}
	flushed := make(chan struct{})
	go func() {
		b.flushes.Wait()
		close(flushed)
	}()
	select {
	case <-flushed:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: batcher close: %w", ctx.Err())
	}
}
