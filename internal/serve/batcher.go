package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"raal/internal/physical"
	"raal/internal/sparksim"
)

// BatchItem is one coalesced estimation request: a plan priced under its
// own resource allocation. Batch-mates may carry different allocations —
// the batch estimator scores each (plan, resources) pair independently.
type BatchItem struct {
	Plan *physical.Plan
	Res  sparksim.Resources
}

// BatchRunFunc prices many independent (plan, resources) requests in one
// batched forward pass (in practice CostModel.EstimateEachCtx). It must
// return exactly one prediction per item, in item order.
type BatchRunFunc func(ctx context.Context, items []BatchItem) ([]float64, error)

// BatcherConfig wires a Batcher.
type BatcherConfig struct {
	// Run executes one coalesced batch (required).
	Run BatchRunFunc
	// Window is how long the first request of a batch waits for
	// batch-mates before the batch is flushed anyway (required > 0).
	// This bounds the latency cost of coalescing: an isolated request
	// pays at most Window extra.
	Window time.Duration
	// MaxSize flushes a batch immediately once it holds this many
	// requests (required >= 2) — a full batch never waits out the window.
	MaxSize int
	// Metrics receives batch size, queue-wait, and flush-trigger
	// observations; nil serves unobserved.
	Metrics *Metrics
}

// Batcher coalesces concurrent single-plan estimation requests into
// batched forward passes: the first request opens a collection window,
// and the batch is scored as one Run call when the window expires or
// MaxSize requests have gathered, whichever comes first. Each caller
// blocks on a private future and gets exactly its own prediction back.
//
// Batch members that are provably the same computation — the same plan
// object under the same resource allocation, as a shared plan cache
// produces for hot queries — are deduplicated before scoring: the batch
// prices each distinct (plan, resources) once and fans the answer out
// (singleflight).
//
// Failure isolation is per request: a caller whose context dies while
// waiting gets its own ctx error (the batch proceeds without it), and a
// batch-level failure is delivered to every member for its own serving
// pipeline to degrade or fail — members share the failure, never a
// batch-mate's fate. The batch's context carries the earliest member
// deadline, so a coalesced call can never outlive its tightest budget;
// with a shared per-request Deadline the member deadlines differ by at
// most Window.
//
// All methods are safe for concurrent use.
type Batcher struct {
	run    BatchRunFunc
	window time.Duration
	max    int
	met    *Metrics

	mu      sync.RWMutex // guards closed and the send on reqs
	closed  bool
	reqs    chan *batchReq
	stopped chan struct{}  // closed when the dispatcher exits
	flushes sync.WaitGroup // in-flight batch runs
}

// batchRes carries one member's result across the future channel.
type batchRes struct {
	cost float64
	err  error
}

// batchReq is one enqueued request: its item, its caller's context, and
// the buffered future the flush delivers into exactly once.
type batchReq struct {
	item BatchItem
	ctx  context.Context
	enq  time.Time
	done chan batchRes
}

// NewBatcher validates cfg, starts the dispatcher, and returns the
// batcher. Callers own its lifecycle: Close flushes and stops it.
func NewBatcher(cfg BatcherConfig) (*Batcher, error) {
	if cfg.Run == nil {
		return nil, errors.New("serve: BatcherConfig.Run is required")
	}
	if cfg.Window <= 0 {
		return nil, errors.New("serve: BatcherConfig.Window must be positive")
	}
	if cfg.MaxSize < 2 {
		return nil, errors.New("serve: BatcherConfig.MaxSize must be at least 2 (1 would just add Window of latency)")
	}
	met := cfg.Metrics
	if met == nil {
		met = &Metrics{}
	}
	b := &Batcher{
		run:     cfg.Run,
		window:  cfg.Window,
		max:     cfg.MaxSize,
		met:     met,
		reqs:    make(chan *batchReq),
		stopped: make(chan struct{}),
	}
	go b.dispatch()
	return b, nil
}

// Estimate submits one request and blocks until its batch delivers (or
// ctx dies first). The signature matches EstimateFunc, so a Batcher
// drops into the Server's deep path unchanged.
func (b *Batcher) Estimate(ctx context.Context, p *physical.Plan, res sparksim.Resources) (float64, error) {
	r := &batchReq{
		item: BatchItem{Plan: p, Res: res},
		ctx:  ctx,
		enq:  time.Now(),
		done: make(chan batchRes, 1),
	}
	if err := b.submit(r); err != nil {
		return 0, err
	}
	select {
	case out := <-r.done:
		return out.cost, out.err
	case <-ctx.Done():
		// Already enqueued: the flush will observe the dead context and
		// drop this member, or its delivered result is discarded — the
		// buffered future never blocks the flusher either way.
		return 0, ctx.Err()
	}
}

// submit hands the request to the dispatcher. The read lock makes the
// send safe against a concurrent Close (the channel is only closed under
// the write lock); the dispatcher is always receiving, so the send never
// blocks meaningfully.
func (b *Batcher) submit(r *batchReq) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrDraining
	}
	select {
	case b.reqs <- r:
		return nil
	case <-r.ctx.Done():
		return r.ctx.Err()
	}
}

// dispatch is the single collector goroutine: it owns the pending batch
// and flushes it to a worker goroutine on window expiry, size cap, or
// drain, so collection never stalls behind a running batch.
func (b *Batcher) dispatch() {
	defer close(b.stopped)
	var pending []*batchReq
	var window <-chan time.Time // nil while no batch is open
	flush := func(trigger string) {
		batch := pending
		pending = nil
		window = nil
		b.met.BatchFlushes.With(trigger).Inc()
		b.flushes.Add(1)
		go func() {
			defer b.flushes.Done()
			b.runBatch(batch)
		}()
	}
	for {
		select {
		case r, ok := <-b.reqs:
			if !ok {
				if len(pending) > 0 {
					flush("drain")
				}
				return
			}
			pending = append(pending, r)
			if len(pending) == 1 {
				// A fresh timer per batch: a stale channel from a batch
				// that flushed full is unreferenced once window is
				// replaced, so it can never fire into the wrong batch.
				window = time.After(b.window)
			}
			if len(pending) >= b.max {
				flush("full")
			}
		case <-window:
			flush("window")
		}
	}
}

// runBatch scores one flushed batch and delivers per-member results.
func (b *Batcher) runBatch(batch []*batchReq) {
	now := time.Now()
	live := make([]*batchReq, 0, len(batch))
	for _, r := range batch {
		// A member whose caller already gave up is dropped here, so a
		// dead request can neither shrink the batch deadline nor burn a
		// slot in the forward pass.
		if err := r.ctx.Err(); err != nil {
			r.done <- batchRes{err: err}
			continue
		}
		b.met.BatchWait.Observe(now.Sub(r.enq).Seconds())
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	b.met.BatchSize.Observe(float64(len(live)))

	bctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if dl, ok := earliestDeadline(live); ok {
		var dcancel context.CancelFunc
		bctx, dcancel = context.WithDeadline(bctx, dl)
		defer dcancel()
	}
	// Release the batch as soon as every member's caller is gone: the
	// forward pass aborts at its next cancellation check instead of
	// pricing plans nobody will read.
	go func() {
		for _, r := range live {
			select {
			case <-r.ctx.Done():
			case <-bctx.Done():
				return
			}
		}
		cancel()
	}()

	b.score(bctx, live)
}

// itemKey identifies a request for in-batch deduplication: the same
// immutable plan object under the same allocation is the same
// computation. Pointer identity is deliberately conservative — plans
// re-built per request never alias, so dedup only fires where it is
// provably sound (requests resolved through a shared plan cache).
type itemKey struct {
	plan *physical.Plan
	res  sparksim.Resources
}

// score runs one (sub-)batch and delivers per-member results. Identical
// in-flight requests (same plan object, same resources) coalesce into a
// single scored slot first — the singleflight half of the batching win
// on hot-query traffic. A failing batch is then bisected and retried
// half by half, so one poisoned request (a plan that makes the estimator
// error or panic) is isolated down to a sub-batch of itself and its
// batch-mates still get deep answers — the failure is shared only when
// it is genuinely batch-wide (an expired batch context is never
// bisected: it would fail every half the same way). Recursion depth is
// log2(MaxSize).
func (b *Batcher) score(ctx context.Context, reqs []*batchReq) {
	slot := make([]int, len(reqs))
	items := make([]BatchItem, 0, len(reqs))
	seen := make(map[itemKey]int, len(reqs))
	for i, r := range reqs {
		k := itemKey{r.item.Plan, r.item.Res}
		j, dup := seen[k]
		if !dup {
			j = len(items)
			seen[k] = j
			items = append(items, r.item)
		} else {
			b.met.BatchDeduped.Inc()
		}
		slot[i] = j
	}
	preds, err := b.guardedRun(ctx, items)
	if err == nil && len(preds) != len(items) {
		err = fmt.Errorf("%w: batch estimator returned %d prediction(s) for %d request(s)",
			ErrInternal, len(preds), len(items))
	}
	if err == nil {
		for i, r := range reqs {
			r.done <- batchRes{cost: preds[slot[i]]}
		}
		return
	}
	if ctx.Err() == nil && len(reqs) > 1 {
		b.met.BatchBisects.Inc()
		mid := len(reqs) / 2
		b.score(ctx, reqs[:mid])
		b.score(ctx, reqs[mid:])
		return
	}
	for _, r := range reqs {
		// The failure is this request's own (sub-batch of one) or truly
		// batch-wide; either way its serving pipeline decides what it
		// becomes (fallback degradation, 504, ...).
		r.done <- batchRes{err: err}
	}
}

// guardedRun is the batch's recover boundary: a panic deep in the
// estimator becomes a typed ErrInternal delivered per member, never a
// dead dispatcher.
func (b *Batcher) guardedRun(ctx context.Context, items []BatchItem) (preds []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: panic: %v", ErrInternal, r)
		}
	}()
	return b.run(ctx, items)
}

// earliestDeadline returns the soonest member deadline, if any member
// has one.
func earliestDeadline(reqs []*batchReq) (time.Time, bool) {
	var dl time.Time
	found := false
	for _, r := range reqs {
		if d, ok := r.ctx.Deadline(); ok && (!found || d.Before(dl)) {
			dl, found = d, true
		}
	}
	return dl, found
}

// Close stops admitting new requests (they fail with ErrDraining),
// flushes whatever is pending, and waits for in-flight batches to
// deliver or ctx to expire. Safe to call more than once.
func (b *Batcher) Close(ctx context.Context) error {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.reqs)
	}
	b.mu.Unlock()
	select {
	case <-b.stopped:
	case <-ctx.Done():
		return fmt.Errorf("serve: batcher close: %w", ctx.Err())
	}
	flushed := make(chan struct{})
	go func() {
		b.flushes.Wait()
		close(flushed)
	}()
	select {
	case <-flushed:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: batcher close: %w", ctx.Err())
	}
}
