// Package serve is the robustness layer that makes cost estimation safe
// to expose to untrusted traffic. It wraps a deep estimator (and an
// optional analytical fallback, in practice the GPSJ baseline) behind:
//
//   - admission control — a bounded slot pool plus a bounded wait queue;
//     when both are full, requests are rejected immediately with
//     ErrOverloaded instead of accepting unbounded work;
//   - panic isolation — every estimator call runs behind a recover
//     boundary, so a shape mismatch or corrupt weight deep inside
//     tensor/autodiff/nn becomes a typed ErrInternal, not a dead process;
//   - deadlines — each admitted request gets a per-request budget; the
//     deep path is abandoned when it expires (the estimator itself is
//     cancelled cooperatively via context);
//   - graceful degradation — when the deep model errors, panics, or
//     misses its deadline, the analytical fallback answers instead and
//     the result is tagged Degraded, preserving availability at reduced
//     accuracy (Siddiqui et al.'s case for keeping an analytical model);
//   - lifecycle — readiness reporting and a drain that lets in-flight
//     requests finish while rejecting new ones.
//
// Deterministic fault injection (FaultConfig) exercises every one of
// these paths in tests without any real model.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"raal/internal/physical"
	"raal/internal/sparksim"
)

// Typed failure modes, matched with errors.Is.
var (
	// ErrOverloaded: all concurrency slots busy and the wait queue full.
	ErrOverloaded = errors.New("serve: overloaded, request rejected")
	// ErrInternal: the estimator panicked; the panic value is in the
	// wrapped message.
	ErrInternal = errors.New("serve: internal estimator failure")
	// ErrDeadline: the per-request deadline expired and the server is
	// configured to fail (or has no fallback).
	ErrDeadline = errors.New("serve: estimation deadline exceeded")
	// ErrDraining: the server is shutting down and admits no new work.
	ErrDraining = errors.New("serve: server draining")
)

// EstimateFunc prices one plan under one allocation.
type EstimateFunc func(ctx context.Context, p *physical.Plan, res sparksim.Resources) (float64, error)

// BatchEstimateFunc prices many candidate plans under one allocation.
type BatchEstimateFunc func(ctx context.Context, plans []*physical.Plan, res sparksim.Resources) ([]float64, error)

// DeadlinePolicy chooses what a deadline miss becomes.
type DeadlinePolicy int

const (
	// FallbackOnDeadline serves the analytical fallback (tagged
	// Degraded) when the deep path misses its deadline. Without a
	// fallback the request fails with ErrDeadline.
	FallbackOnDeadline DeadlinePolicy = iota
	// FailOnDeadline returns ErrDeadline (HTTP 504) even when a
	// fallback exists.
	FailOnDeadline
)

// Config wires a Server.
type Config struct {
	// Deep is the learned estimator. Nil means fallback-only serving
	// (every answer comes from Fallback, untagged — it is the primary),
	// unless micro-batching is enabled, in which case DeepEach is the
	// deep path and Deep is unused.
	Deep EstimateFunc
	// DeepBatch optionally scores candidate sets in one call (one
	// admission slot, one forward pass); nil falls back to looping Deep.
	DeepBatch BatchEstimateFunc
	// DeepEach optionally scores many independent (plan, resources)
	// requests in one forward pass — the substrate micro-batching
	// coalesces concurrent Estimate calls onto. Required when BatchMax
	// enables batching.
	DeepEach BatchRunFunc
	// Fallback is the always-available analytical estimator (GPSJ). Nil
	// disables degradation: deep failures surface as errors.
	Fallback EstimateFunc

	// BatchWindow and BatchMax enable dynamic micro-batching of the deep
	// Estimate path: concurrent requests coalesce into one DeepEach call,
	// flushed when BatchMax requests gather or BatchWindow elapses since
	// the first. BatchMax <= 1 (or BatchWindow <= 0) disables batching —
	// it is strictly opt-in. Batching needs Concurrency >= BatchMax to
	// coalesce fully: each batched request still holds an admission slot
	// while it waits, so the slot pool bounds the achievable batch size.
	BatchWindow time.Duration
	BatchMax    int

	// Concurrency is the number of requests estimated at once
	// (default GOMAXPROCS).
	Concurrency int
	// QueueDepth is how many admitted requests may wait for a slot
	// beyond Concurrency; 0 rejects as soon as all slots are busy.
	QueueDepth int
	// Deadline is the per-request estimation budget; 0 means none.
	Deadline time.Duration
	// OnDeadline picks between fallback and failure on a deadline miss.
	OnDeadline DeadlinePolicy

	// Faults deterministically injects failures into the deep path
	// (tests and chaos drills); nil injects nothing.
	Faults *FaultConfig

	// Metrics receives the serving telemetry (see NewMetrics); nil
	// serves unobserved.
	Metrics *Metrics
}

// Result is one served estimate.
type Result struct {
	// Cost is the predicted execution cost in seconds.
	Cost float64
	// Source names the estimator that produced Cost: "model",
	// "fallback", or "analytic" (fallback-only server).
	Source string
	// Degraded marks answers served by the fallback because the deep
	// path failed; Reason carries the deep failure.
	Degraded bool
	Reason   string
}

// Server is the robustness boundary around an estimator pair. All methods
// are safe for concurrent use.
type Server struct {
	cfg      Config
	met      *Metrics // never nil; zero value is a no-op set
	batcher  *Batcher // nil unless micro-batching is enabled
	slots    chan struct{}
	queued   atomic.Int64
	reqIndex atomic.Uint64
	inflight atomic.Int64
	draining atomic.Bool
}

// New validates cfg and builds a Server.
func New(cfg Config) (*Server, error) {
	batching := cfg.BatchMax > 1 && cfg.BatchWindow > 0
	if batching && cfg.DeepEach == nil {
		return nil, errors.New("serve: micro-batching (BatchMax > 1) requires DeepEach")
	}
	if cfg.Deep == nil && cfg.Fallback == nil && !batching {
		return nil, errors.New("serve: config needs at least one of Deep or Fallback")
	}
	if cfg.DeepBatch != nil && cfg.Deep == nil {
		return nil, errors.New("serve: DeepBatch requires Deep")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	met := cfg.Metrics
	if met == nil {
		met = &Metrics{} // nil fields: every observation is a no-op
	}
	s := &Server{cfg: cfg, met: met, slots: make(chan struct{}, cfg.Concurrency)}
	if batching {
		b, err := NewBatcher(BatcherConfig{
			Run:     cfg.DeepEach,
			Window:  cfg.BatchWindow,
			MaxSize: cfg.BatchMax,
			Metrics: met,
		})
		if err != nil {
			return nil, err
		}
		s.batcher = b
	}
	return s, nil
}

// Ready reports whether the server accepts new requests.
func (s *Server) Ready() bool { return !s.draining.Load() }

// Saturated reports whether admission is at capacity: the wait queue is
// full, or — with no queue configured — every concurrency slot is busy.
// A saturated server is still alive (the next request is rejected with
// ErrOverloaded rather than queued), so readiness surfaces the state to
// load balancers before callers start seeing 429s; router-side health
// checking supplies the hysteresis that keeps a momentary spike from
// flapping membership.
func (s *Server) Saturated() bool {
	if s.cfg.QueueDepth > 0 {
		return s.queued.Load() >= int64(s.cfg.QueueDepth)
	}
	return s.inflight.Load() >= int64(s.cfg.Concurrency)
}

// hasDeep reports whether any deep path exists: a plain Deep estimator,
// or the micro-batching coalescer over DeepEach.
func (s *Server) hasDeep() bool { return s.cfg.Deep != nil || s.batcher != nil }

// Inflight returns the number of requests currently admitted.
func (s *Server) Inflight() int { return int(s.inflight.Load()) }

// Drain stops admitting requests and waits for in-flight ones to finish,
// or for ctx to expire. In-flight requests parked in the micro-batching
// window still flush normally (the window timer keeps running), and the
// batcher itself is shut down once the last of them has delivered. Safe
// to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.inflight.Load() == 0 {
			if s.batcher != nil {
				return s.batcher.Close(ctx)
			}
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain abandoned with %d request(s) in flight: %w",
				s.inflight.Load(), ctx.Err())
		case <-tick.C:
		}
	}
}

// admit claims a concurrency slot, waiting in the bounded queue if all are
// busy. The returned release func must be called exactly once.
func (s *Server) admit(ctx context.Context) (func(), error) {
	if s.draining.Load() {
		s.met.DrainRejects.Inc()
		return nil, ErrDraining
	}
	s.inflight.Add(1)
	s.met.Inflight.Inc()
	release := func() {
		<-s.slots
		s.inflight.Add(-1)
		s.met.Inflight.Dec()
	}
	select {
	case s.slots <- struct{}{}:
		return release, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.inflight.Add(-1)
		s.met.Inflight.Dec()
		s.met.AdmissionRejects.Inc()
		return nil, fmt.Errorf("%w (%d running, %d queued)", ErrOverloaded,
			s.cfg.Concurrency, s.cfg.QueueDepth)
	}
	s.met.Queue.Inc()
	select {
	case s.slots <- struct{}{}:
		s.queued.Add(-1)
		s.met.Queue.Dec()
		return release, nil
	case <-ctx.Done():
		s.queued.Add(-1)
		s.inflight.Add(-1)
		s.met.Queue.Dec()
		s.met.Inflight.Dec()
		return nil, ctx.Err()
	}
}

// Estimate prices one plan under res, applying the full robustness stack:
// admission, deadline, panic isolation, and fallback degradation. With
// micro-batching enabled, the deep call coalesces with concurrent
// Estimate requests into one batched forward pass — per-request
// semantics (deadline policy, fault injection, fallback) are unchanged.
func (s *Server) Estimate(ctx context.Context, p *physical.Plan, res sparksim.Resources) (Result, error) {
	deepOne := s.cfg.Deep
	if s.batcher != nil {
		deepOne = s.batcher.Estimate
	}
	preds, r, err := s.serve(ctx,
		func(dctx context.Context) ([]float64, error) {
			c, err := deepOne(dctx, p, res)
			return []float64{c}, err
		},
		func(fctx context.Context) ([]float64, error) {
			c, err := s.cfg.Fallback(fctx, p, res)
			return []float64{c}, err
		})
	if err != nil {
		return Result{}, err
	}
	r.Cost = preds[0]
	return r, nil
}

// Select prices every candidate plan in one admitted request and returns
// the argmin index plus its Result. Degradation applies to the set as a
// whole: if the deep batch fails, every candidate is priced analytically.
func (s *Server) Select(ctx context.Context, plans []*physical.Plan, res sparksim.Resources) (int, Result, error) {
	if len(plans) == 0 {
		return -1, Result{}, errors.New("serve: empty candidate set")
	}
	deep := func(dctx context.Context) ([]float64, error) {
		if s.cfg.DeepBatch != nil {
			preds, err := s.cfg.DeepBatch(dctx, plans, res)
			if err == nil && len(preds) != len(plans) {
				return nil, fmt.Errorf("%w: batch estimator returned %d prediction(s) for %d plan(s)",
					ErrInternal, len(preds), len(plans))
			}
			return preds, err
		}
		if s.cfg.Deep == nil && s.cfg.DeepEach != nil {
			// Batching-only server: the candidate set is already a batch,
			// so score it in one DeepEach call (no coalescer detour — it
			// holds one admission slot like DeepBatch would).
			items := make([]BatchItem, len(plans))
			for i, p := range plans {
				items[i] = BatchItem{Plan: p, Res: res}
			}
			preds, err := s.cfg.DeepEach(dctx, items)
			if err == nil && len(preds) != len(plans) {
				return nil, fmt.Errorf("%w: batch estimator returned %d prediction(s) for %d plan(s)",
					ErrInternal, len(preds), len(plans))
			}
			return preds, err
		}
		preds := make([]float64, len(plans))
		for i, p := range plans {
			if err := dctx.Err(); err != nil {
				return nil, err
			}
			c, err := s.cfg.Deep(dctx, p, res)
			if err != nil {
				return nil, err
			}
			preds[i] = c
		}
		return preds, nil
	}
	fallback := func(fctx context.Context) ([]float64, error) {
		preds := make([]float64, len(plans))
		for i, p := range plans {
			if err := fctx.Err(); err != nil {
				return nil, err
			}
			c, err := s.cfg.Fallback(fctx, p, res)
			if err != nil {
				return nil, err
			}
			preds[i] = c
		}
		return preds, nil
	}
	preds, r, err := s.serve(ctx, deep, fallback)
	if err != nil {
		return -1, Result{}, err
	}
	best := 0
	for i := range preds {
		if preds[i] < preds[best] {
			best = i
		}
	}
	r.Cost = preds[best]
	return best, r, nil
}

// outcome carries a guarded estimator call's result across goroutines.
type outcome struct {
	preds []float64
	err   error
}

// serve runs the shared request pipeline. deep and fallback produce the
// same-shaped prediction vector; either may be abandoned mid-flight.
func (s *Server) serve(ctx context.Context, deep, fallback func(context.Context) ([]float64, error)) ([]float64, Result, error) {
	release, err := s.admit(ctx)
	if err != nil {
		return nil, Result{}, err
	}
	defer release()
	idx := s.reqIndex.Add(1)
	start := time.Now()
	served := func() { s.met.PredictLatency.Observe(time.Since(start).Seconds()) }

	// Fallback-only server: the analytical model is the primary.
	if !s.hasDeep() {
		preds, err := s.guarded(ctx, 0, fallback)
		if err != nil {
			return nil, Result{}, err
		}
		served()
		return preds, Result{Source: "analytic"}, nil
	}

	dctx := ctx
	if s.cfg.Deadline > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}
	preds, deepErr := s.guarded(dctx, idx, deep)
	if deepErr == nil {
		served()
		return preds, Result{Source: "model"}, nil
	}
	// The caller itself is gone: degrading would price a plan nobody
	// will read. Propagate the cancellation.
	if ctx.Err() != nil {
		return nil, Result{}, ctx.Err()
	}
	missed := errors.Is(deepErr, context.DeadlineExceeded)
	if missed {
		s.met.DeadlineExpiries.Inc()
	}
	if missed && s.cfg.OnDeadline == FailOnDeadline {
		return nil, Result{}, fmt.Errorf("%w (budget %v)", ErrDeadline, s.cfg.Deadline)
	}
	if s.cfg.Fallback == nil {
		if missed {
			return nil, Result{}, fmt.Errorf("%w (budget %v, no fallback)", ErrDeadline, s.cfg.Deadline)
		}
		return nil, Result{}, deepErr
	}
	preds, fbErr := s.guarded(ctx, 0, fallback)
	if fbErr != nil {
		// Both estimators down; the deep failure is the one to report.
		return nil, Result{}, deepErr
	}
	s.met.Degraded.Inc()
	served()
	return preds, Result{Source: "fallback", Degraded: true, Reason: deepErr.Error()}, nil
}

// guarded runs fn behind the recover boundary and the deadline select.
// Faults are applied first (idx 0 disables them — the fallback path must
// stay clean so degradation is always available). When the context
// expires, the call is abandoned: fn keeps running on its goroutine until
// its own cooperative cancellation check fires, and its eventual result
// is discarded.
func (s *Server) guarded(ctx context.Context, idx uint64, fn func(context.Context) ([]float64, error)) ([]float64, error) {
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- outcome{err: fmt.Errorf("%w: panic: %v", ErrInternal, r)}
			}
		}()
		if idx != 0 {
			if delay, errF, panicF := s.cfg.Faults.Fires(idx); delay || errF || panicF {
				if delay {
					s.met.Faults.With("delay").Inc()
				}
				if errF {
					s.met.Faults.With("error").Inc()
				}
				if panicF {
					s.met.Faults.With("panic").Inc()
				}
			}
			if err := s.cfg.Faults.apply(ctx, idx); err != nil {
				done <- outcome{err: err}
				return
			}
		}
		preds, err := fn(ctx)
		done <- outcome{preds: preds, err: err}
	}()
	select {
	case o := <-done:
		return o.preds, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
