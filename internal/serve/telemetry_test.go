package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"raal/internal/physical"
	"raal/internal/sparksim"
	"raal/internal/telemetry"
	"raal/internal/telemetry/promtest"
)

// scrape fetches and returns the /metrics body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestHTTPBodyTooLargeIs413 is the request-bounding satellite: a payload
// over MaxBodyBytes must answer a typed 413, never reach the JSON
// decoder, and never be mistaken for a plain 400.
func TestHTTPBodyTooLargeIs413(t *testing.T) {
	s := mustServer(t, Config{Deep: constEstimator(42)})
	h, err := NewHandler(s, HTTPConfig{
		Planner:      stubPlanner(&physical.Plan{Sig: "p"}),
		MaxBodyBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	big := fmt.Sprintf(`{"sql":%q}`, strings.Repeat("SELECT ", 200))
	resp, _, body := postEstimate(t, ts, "/estimate", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, "256 byte limit") {
		t.Fatalf("413 body should name the limit, got %s", body)
	}

	// A small body on the same handler still works.
	resp, er, _ := postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1"}`)
	if resp.StatusCode != 200 || er.CostSec != 42 {
		t.Fatalf("small body after 413: status %d, %+v", resp.StatusCode, er)
	}
}

// TestMetricsUnderWorkload is the acceptance-criteria test: /metrics
// emits valid Prometheus text including the serve queue depth, the
// degraded-fallback count, and a predict-latency histogram — and the
// values provably move under a live workload.
func TestMetricsUnderWorkload(t *testing.T) {
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)

	gate := make(chan struct{})
	var failDeep atomic.Bool
	deep := func(ctx context.Context, _ *physical.Plan, _ sparksim.Resources) (float64, error) {
		if failDeep.Load() {
			return 0, errors.New("deep model detonated")
		}
		select {
		case <-gate:
			return 42, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	s := mustServer(t, Config{
		Deep:        deep,
		Fallback:    constEstimator(7),
		Concurrency: 1,
		QueueDepth:  8,
		Metrics:     met,
	})
	h, err := NewHandler(s, HTTPConfig{
		Planner: stubPlanner(&physical.Plan{Sig: "p"}),
		Metrics: met,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Phase 1 — fill the single slot and queue two more requests, then
	// scrape while they wait: queue depth and inflight must be visible.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, er, body := postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1"}`)
			if resp.StatusCode != 200 || er.CostSec != 42 {
				t.Errorf("workload request failed: %d %s", resp.StatusCode, body)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for met.Queue.Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: depth=%g inflight=%g", met.Queue.Value(), met.Inflight.Value())
		}
		time.Sleep(time.Millisecond)
	}
	body := scrape(t, ts)
	promtest.Validate(t, body)
	if got := promtest.Value(t, body, "raal_serve_queue_depth", ""); got != 2 {
		t.Fatalf("queue depth = %g, want 2\n%s", got, body)
	}
	if got := promtest.Value(t, body, "raal_serve_inflight_requests", ""); got != 3 {
		t.Fatalf("inflight = %g, want 3", got)
	}
	close(gate) // drain the workload
	wg.Wait()

	// Phase 2 — break the deep model: the answer degrades to the
	// fallback and the degraded counter moves.
	failDeep.Store(true)
	resp, er, rbody := postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1"}`)
	if resp.StatusCode != 200 || !er.Degraded || er.Source != "fallback" {
		t.Fatalf("degraded request: %d %s", resp.StatusCode, rbody)
	}

	body = scrape(t, ts)
	promtest.Validate(t, body)
	promtest.HistogramCumulative(t, body, "raal_serve_predict_seconds")
	promtest.HistogramCumulative(t, body, "raal_serve_http_request_seconds")
	if got := promtest.Value(t, body, "raal_serve_degraded_fallbacks_total", ""); got != 1 {
		t.Fatalf("degraded fallbacks = %g, want 1", got)
	}
	if got := promtest.Value(t, body, "raal_serve_queue_depth", ""); got != 0 {
		t.Fatalf("queue depth after drain = %g, want 0", got)
	}
	if got := promtest.Value(t, body, "raal_serve_inflight_requests", ""); got != 0 {
		t.Fatalf("inflight after drain = %g, want 0", got)
	}
	// All four served answers (3 deep + 1 fallback) must land in the
	// predict-latency histogram, and the per-endpoint HTTP metrics must
	// agree.
	if got := promtest.Value(t, body, "raal_serve_predict_seconds_count", ""); got != 4 {
		t.Fatalf("predict latency count = %g, want 4", got)
	}
	if got := promtest.Value(t, body, "raal_serve_http_requests_total", `endpoint="estimate"`); got != 4 {
		t.Fatalf("estimate requests = %g, want 4", got)
	}
	if got := promtest.Value(t, body, "raal_serve_http_responses_total", `code="200"`); got != 4 {
		t.Fatalf("200 responses = %g, want 4", got)
	}
}

// TestMetricsAdmissionAndFaults checks the rejection and fault-injection
// counters: a full queue increments admission rejects (the 429 path) and
// deterministic faults are tallied by kind.
func TestMetricsAdmissionAndFaults(t *testing.T) {
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	gate := make(chan struct{})
	deep := func(ctx context.Context, _ *physical.Plan, _ sparksim.Resources) (float64, error) {
		select {
		case <-gate:
			return 1, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	s := mustServer(t, Config{Deep: deep, Concurrency: 1, QueueDepth: 0, Metrics: met})

	// Occupy the only slot, then overflow.
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Estimate(context.Background(), &physical.Plan{}, sparksim.Resources{})
		errCh <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for met.Inflight.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Estimate(context.Background(), &physical.Plan{}, sparksim.Resources{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow error = %v, want ErrOverloaded", err)
	}
	if met.AdmissionRejects.Value() != 1 {
		t.Fatalf("admission rejects = %d, want 1", met.AdmissionRejects.Value())
	}
	close(gate)
	if err := <-errCh; err != nil {
		t.Fatalf("gated request: %v", err)
	}

	// Draining rejections have their own counter.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Estimate(context.Background(), &physical.Plan{}, sparksim.Resources{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining error = %v", err)
	}
	if met.DrainRejects.Value() != 1 {
		t.Fatalf("drain rejects = %d, want 1", met.DrainRejects.Value())
	}

	// Fault kinds are tallied: every request injects an error fault.
	reg2 := telemetry.NewRegistry()
	met2 := NewMetrics(reg2)
	s2 := mustServer(t, Config{
		Deep: constEstimator(1), Fallback: constEstimator(2),
		Faults:  &FaultConfig{Seed: 1, ErrorProb: 1},
		Metrics: met2,
	})
	for i := 0; i < 3; i++ {
		r, err := s2.Estimate(context.Background(), &physical.Plan{}, sparksim.Resources{})
		if err != nil || !r.Degraded {
			t.Fatalf("faulted request %d: %+v err=%v", i, r, err)
		}
	}
	if met2.Faults.With("error").Value() != 3 {
		t.Fatalf("error faults = %d, want 3", met2.Faults.With("error").Value())
	}
	if met2.Degraded.Value() != 3 {
		t.Fatalf("degraded = %d, want 3", met2.Degraded.Value())
	}
}

// TestMetricsDeadlineExpiries checks that a missed deadline moves the
// expiry counter under both deadline policies.
func TestMetricsDeadlineExpiries(t *testing.T) {
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	slow := func(ctx context.Context, _ *physical.Plan, _ sparksim.Resources) (float64, error) {
		select {
		case <-time.After(5 * time.Second):
			return 1, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	s := mustServer(t, Config{
		Deep: slow, Fallback: constEstimator(2),
		Deadline: 5 * time.Millisecond, OnDeadline: FallbackOnDeadline,
		Metrics: met,
	})
	r, err := s.Estimate(context.Background(), &physical.Plan{}, sparksim.Resources{})
	if err != nil || !r.Degraded {
		t.Fatalf("deadline miss should degrade: %+v err=%v", r, err)
	}
	if met.DeadlineExpiries.Value() != 1 {
		t.Fatalf("deadline expiries = %d, want 1", met.DeadlineExpiries.Value())
	}
}

// TestHTTPRequestLogging checks the structured slog line per request.
func TestHTTPRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	s := mustServer(t, Config{Deep: constEstimator(42)})
	h, err := NewHandler(s, HTTPConfig{
		Planner: stubPlanner(&physical.Plan{Sig: "p"}),
		Logger:  logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1"}`)
	postEstimate(t, ts, "/estimate", `not json`)
	logs := buf.String()
	if !strings.Contains(logs, `endpoint=estimate`) || !strings.Contains(logs, `status=200`) {
		t.Fatalf("missing success log line:\n%s", logs)
	}
	if !strings.Contains(logs, `level=WARN`) || !strings.Contains(logs, `status=400`) {
		t.Fatalf("missing warn log line for the 400:\n%s", logs)
	}
}

// TestMetricsBatchingExposition is the batching-telemetry satellite: a
// server with micro-batching enabled must expose the batch-size and
// batch-wait histograms and the per-trigger flush counter on /metrics,
// and a coalesced workload must provably move them.
func TestMetricsBatchingExposition(t *testing.T) {
	const k = 4
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	deepEach := func(_ context.Context, items []BatchItem) ([]float64, error) {
		out := make([]float64, len(items))
		for i := range items {
			out[i] = 42
		}
		return out, nil
	}
	s := mustServer(t, Config{
		DeepEach:    deepEach,
		Concurrency: k,
		BatchWindow: 20 * time.Millisecond,
		BatchMax:    k,
		Metrics:     met,
	})
	h, err := NewHandler(s, HTTPConfig{
		Planner: stubPlanner(&physical.Plan{Sig: "p"}),
		Metrics: met,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	// One concurrent wave (flushed by the size cap, with any stragglers
	// window- or solo-flushed) plus one lone request (solo-dispatched:
	// no other caller in flight).
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, er, body := postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1"}`)
			if resp.StatusCode != 200 || er.CostSec != 42 {
				t.Errorf("batched request failed: %d %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	// Let the companion hysteresis lapse (one window) so the lone
	// request below is provably alone and must solo-dispatch.
	time.Sleep(3 * 20 * time.Millisecond)
	resp, _, body := postEstimate(t, ts, "/estimate", `{"sql":"SELECT 1"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("lone request failed: %d %s", resp.StatusCode, body)
	}

	page := scrape(t, ts)
	promtest.Validate(t, page)
	promtest.HistogramCumulative(t, page, "raal_serve_batch_size")
	promtest.HistogramCumulative(t, page, "raal_serve_batch_wait_seconds")
	// k+1 requests over at least 2 batches; every request waited.
	if got := promtest.Value(t, page, "raal_serve_batch_size_sum", ""); got != k+1 {
		t.Fatalf("batch size sum = %g, want %d\n%s", got, k+1, page)
	}
	batches := promtest.Value(t, page, "raal_serve_batch_size_count", "")
	if batches < 2 {
		t.Fatalf("batch count = %g, want >= 2", batches)
	}
	if got := promtest.Value(t, page, "raal_serve_batch_wait_seconds_count", ""); got != k+1 {
		t.Fatalf("batch wait count = %g, want %d", got, k+1)
	}
	full := promtest.Value(t, page, "raal_serve_batch_flushes_total", `trigger="full"`)
	window := promtest.Value(t, page, "raal_serve_batch_flushes_total", `trigger="window"`)
	solo := promtest.Value(t, page, "raal_serve_batch_flushes_total", `trigger="solo"`)
	if full+window+solo != batches {
		t.Fatalf("flush triggers full=%g window=%g solo=%g do not cover %g batches", full, window, solo, batches)
	}
	if solo < 1 {
		t.Fatalf("lone request should have solo-dispatched, solo=%g", solo)
	}
	if got := promtest.Value(t, page, "raal_serve_batch_bisects_total", ""); got != 0 {
		t.Fatalf("healthy workload bisected %g times", got)
	}
}

// TestMetricsEndpointAbsentWithoutRegistry: a handler wired without
// metrics must 404 /metrics rather than exposing an empty page.
func TestMetricsEndpointAbsentWithoutRegistry(t *testing.T) {
	h := newTestHandler(t, Config{Deep: constEstimator(1)})
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics without registry: status %d, want 404", resp.StatusCode)
	}
}
