package fleet

import (
	"testing"
	"time"
)

// step asserts one probe outcome produces the expected state.
func step(t *testing.T, f *healthFSM, ok bool, want HealthState) {
	t.Helper()
	_, cur := f.observe(ok)
	if cur != want {
		t.Fatalf("after observe(%v): state = %v, want %v", ok, cur, want)
	}
}

func TestHealthLifecycleHysteresis(t *testing.T) {
	f := newHealthFSM(3, 2)
	if f.State() != Healthy {
		t.Fatalf("initial state = %v, want Healthy", f.State())
	}

	// One blip: healthy → suspect, still routable, next ok restores.
	step(t, f, false, Suspect)
	if !f.State().Routable() {
		t.Fatal("suspect replica must stay routable (blip grace)")
	}
	step(t, f, true, Healthy)

	// Sustained failure: suspect for DownAfter-1 more fails, then down.
	step(t, f, false, Suspect)
	step(t, f, false, Suspect)
	step(t, f, false, Down)
	if f.State().Routable() {
		t.Fatal("down replica must not be routable")
	}

	// Recovery needs UpAfter consecutive successes, then one more for
	// full trust.
	step(t, f, true, Down)
	step(t, f, true, Recovered)
	if !f.State().Routable() {
		t.Fatal("recovered replica must be routable")
	}
	step(t, f, true, Healthy)
}

// A recovered replica that fails again goes straight back down — no
// three-probe grace while it is still rebuilding trust.
func TestHealthRecoveredFailsFast(t *testing.T) {
	f := newHealthFSM(3, 2)
	step(t, f, false, Suspect)
	step(t, f, false, Suspect)
	step(t, f, false, Down)
	step(t, f, true, Down)
	step(t, f, true, Recovered)
	step(t, f, false, Down)
}

// An interrupted success streak must not count toward recovery.
func TestHealthRecoveryStreakResets(t *testing.T) {
	f := newHealthFSM(2, 3)
	step(t, f, false, Suspect)
	step(t, f, false, Down)
	step(t, f, true, Down)
	step(t, f, true, Down)
	step(t, f, false, Down) // streak broken at 2 of 3
	step(t, f, true, Down)
	step(t, f, true, Down)
	step(t, f, true, Recovered)
}

func TestHealthStateStrings(t *testing.T) {
	for s, want := range map[HealthState]string{
		Down: "down", Suspect: "suspect", Recovered: "recovered", Healthy: "healthy",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestBreakerOpensAtThresholdAndSheds(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := newBreaker(3, 100*time.Millisecond, clock)

	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
	if b.Failure() {
		t.Fatal("first failure must not open")
	}
	b.Failure()
	if !b.Allow() {
		t.Fatal("breaker below threshold must allow")
	}
	if !b.Failure() {
		t.Fatal("third consecutive failure must open")
	}
	if b.State() != breakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker inside cooldown must shed")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := newBreaker(1, 100*time.Millisecond, clock)
	b.Failure() // opens

	now = now.Add(50 * time.Millisecond)
	if b.Allow() {
		t.Fatal("cooldown not elapsed: must shed")
	}
	now = now.Add(60 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: must admit the half-open probe")
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker must admit exactly one probe")
	}

	// Failed probe reopens and restarts the cooldown.
	if !b.Failure() {
		t.Fatal("failed half-open probe must report reopening")
	}
	if b.Allow() {
		t.Fatal("reopened breaker must shed again")
	}
	now = now.Add(110 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second cooldown elapsed: must admit another probe")
	}
	// Successful probe closes.
	if !b.Success() {
		t.Fatal("successful probe must report closing")
	}
	if b.State() != breakerClosed || !b.Allow() {
		t.Fatal("closed breaker must allow freely")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := newBreaker(2, time.Second, nil)
	b.Failure()
	b.Success()
	if b.Failure() {
		t.Fatal("streak was reset; one failure must not open")
	}
}

func TestLatencyTrackerQuantile(t *testing.T) {
	tr := newLatencyTracker(128, 0.99)
	if q := tr.Quantile(); q != 0 {
		t.Fatalf("empty tracker quantile = %v, want 0", q)
	}
	for i := 1; i <= 100; i++ {
		tr.Observe(time.Duration(i) * time.Millisecond)
	}
	q := tr.Quantile()
	if q < 90*time.Millisecond || q > 100*time.Millisecond {
		t.Fatalf("p99 of 1..100ms = %v, want in [90ms, 100ms]", q)
	}
	// The window ages by count: a flood of fast samples pulls it down.
	for i := 0; i < 256; i++ {
		tr.Observe(time.Millisecond)
	}
	if q := tr.Quantile(); q > 2*time.Millisecond {
		t.Fatalf("after fast flood, p99 = %v, want ~1ms", q)
	}
}
