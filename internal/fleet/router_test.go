package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"raal/internal/physical"
	"raal/internal/serve"
	"raal/internal/sparksim"
	"raal/internal/telemetry"
)

// testPlanner maps any SQL string to a single one-node plan whose Sig is
// the SQL itself, so tests control affinity keys directly. SQL starting
// with "bad" fails like a parse error.
func testPlanner(sql string) ([]*physical.Plan, error) {
	if strings.HasPrefix(sql, "bad") {
		return nil, errors.New("unparsable query")
	}
	return []*physical.Plan{{Sig: sql}}, nil
}

// stubReplica is a scriptable fake replica: swap its behavior mid-test
// with setMode. The default mode answers every estimate with a 200 and
// a readyz with 200.
type stubReplica struct {
	id   string
	ts   *httptest.Server
	hits atomic.Int64
	mode atomic.Value // func(w http.ResponseWriter, r *http.Request) bool — returns handled
}

func okBody(id string) []byte {
	b, _ := json.Marshal(serve.EstimateResponse{CostSec: 1.5, Source: "model"})
	_ = id
	return b
}

func newStubReplica(id string) *stubReplica {
	s := &stubReplica{id: id}
	s.mode.Store(func(w http.ResponseWriter, r *http.Request) bool { return false })
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" || r.URL.Path == "/healthz" {
			if handled := s.mode.Load().(func(http.ResponseWriter, *http.Request) bool)(w, r); handled {
				return
			}
			w.WriteHeader(http.StatusOK)
			return
		}
		s.hits.Add(1)
		if handled := s.mode.Load().(func(http.ResponseWriter, *http.Request) bool)(w, r); handled {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(okBody(s.id))
	}))
	return s
}

// setMode installs a hook run for every request (readyz included); it
// reports whether it wrote the response.
func (s *stubReplica) setMode(fn func(w http.ResponseWriter, r *http.Request) bool) {
	s.mode.Store(fn)
}

// fleetUnderTest assembles a router over n stub replicas with fast,
// test-friendly timings.
type fleetUnderTest struct {
	replicas []*stubReplica
	router   *Router
	rs       *httptest.Server
	reg      *telemetry.Registry
	met      *Metrics
}

func newFleet(t *testing.T, n int, mutate func(*Config)) *fleetUnderTest {
	t.Helper()
	f := &fleetUnderTest{reg: telemetry.NewRegistry()}
	var reps []Replica
	var ids []string
	for i := 0; i < n; i++ {
		sr := newStubReplica(fmt.Sprintf("r%d", i))
		f.replicas = append(f.replicas, sr)
		reps = append(reps, Replica{ID: sr.id, URL: sr.ts.URL})
		ids = append(ids, sr.id)
	}
	f.met = NewMetrics(f.reg, ids)
	cfg := Config{
		Replicas:         reps,
		Planner:          testPlanner,
		HealthInterval:   20 * time.Millisecond,
		DownAfter:        2,
		UpAfter:          1,
		RetryAttempts:    2,
		AttemptTimeout:   time.Second,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		HedgeAfter:       -1, // hedging off unless a test enables it
		Seed:             7,
		Metrics:          f.met,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	router, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = router
	f.rs = httptest.NewServer(router)
	t.Cleanup(func() {
		f.rs.Close()
		f.router.Close()
		for _, r := range f.replicas {
			r.ts.Close()
		}
	})
	return f
}

// estimate posts one request and decodes the answer.
func (f *fleetUnderTest) estimate(t *testing.T, sql string) (int, serve.EstimateResponse, string) {
	t.Helper()
	body, _ := json.Marshal(serve.EstimateRequest{SQL: sql})
	resp, err := http.Post(f.rs.URL+"/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("estimate(%q): %v", sql, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var er serve.EstimateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &er); err != nil {
			t.Fatalf("estimate(%q): bad 200 body %q: %v", sql, raw, err)
		}
	}
	return resp.StatusCode, er, resp.Header.Get("X-Raal-Replica")
}

func TestRouterAffinityIsSticky(t *testing.T) {
	f := newFleet(t, 3, nil)
	owner := map[string]string{}
	for round := 0; round < 5; round++ {
		for k := 0; k < 20; k++ {
			sql := fmt.Sprintf("q%d", k)
			status, _, rep := f.estimate(t, sql)
			if status != http.StatusOK {
				t.Fatalf("key %s: status %d", sql, status)
			}
			if rep == "" {
				t.Fatal("missing X-Raal-Replica header")
			}
			if prev, ok := owner[sql]; ok && prev != rep {
				t.Fatalf("key %s moved from %s to %s with stable membership", sql, prev, rep)
			}
			owner[sql] = rep
		}
	}
	distinct := map[string]bool{}
	for _, rep := range owner {
		distinct[rep] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("20 keys all landed on one replica: %v", distinct)
	}
}

// findOwner locates which replica the ring assigns a key, while the
// whole fleet is healthy.
func (f *fleetUnderTest) findOwner(t *testing.T, sql string) *stubReplica {
	t.Helper()
	status, _, rep := f.estimate(t, sql)
	if status != http.StatusOK {
		t.Fatalf("findOwner(%q): status %d", sql, status)
	}
	for _, r := range f.replicas {
		if r.id == rep {
			return r
		}
	}
	t.Fatalf("unknown replica %q", rep)
	return nil
}

func TestRouterFailsOverOn5xxAndOpensBreaker(t *testing.T) {
	f := newFleet(t, 3, nil)
	owner := f.findOwner(t, "hot")
	owner.setMode(func(w http.ResponseWriter, r *http.Request) bool {
		if r.URL.Path == "/readyz" {
			return false // keep health green: this is the breaker's job
		}
		w.WriteHeader(http.StatusInternalServerError)
		return true
	})
	for i := 0; i < 4; i++ {
		status, er, rep := f.estimate(t, "hot")
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
		if er.Degraded {
			t.Fatalf("request %d: degraded answer with two healthy replicas", i)
		}
		if rep == owner.id {
			t.Fatalf("request %d: answered by the broken owner", i)
		}
	}
	if f.met.Retries.Value() == 0 {
		t.Fatal("5xx path must record retries")
	}
	if f.met.Failovers.Value() == 0 {
		t.Fatal("5xx path must record failovers")
	}
	if f.met.BreakerOpens.With(owner.id).Value() == 0 {
		t.Fatal("sustained 5xx must open the owner's breaker")
	}
	// Once open, later requests shed without touching the owner.
	before := owner.hits.Load()
	f.estimate(t, "hot")
	if owner.hits.Load() != before && f.met.BreakerSheds.Value() == 0 {
		t.Fatal("open breaker should shed instead of re-hitting the broken replica")
	}
}

func TestRouterSaturated429FailsOverWithoutBreakerPenalty(t *testing.T) {
	f := newFleet(t, 2, nil)
	owner := f.findOwner(t, "busy")
	owner.setMode(func(w http.ResponseWriter, r *http.Request) bool {
		if r.URL.Path == "/readyz" {
			return false
		}
		writeJSON(w, http.StatusTooManyRequests, serve.ErrorResponse{Error: "overloaded"})
		return true
	})
	status, _, rep := f.estimate(t, "busy")
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 via failover", status)
	}
	if rep == owner.id {
		t.Fatal("saturated owner must not answer")
	}
	if f.met.BreakerOpens.With(owner.id).Value() != 0 {
		t.Fatal("429 is a load signal, not breakage: breaker must stay closed")
	}
	if f.met.Failovers.Value() == 0 {
		t.Fatal("429 must count as a failover")
	}
}

func TestRouterClientErrorRelayedWithoutFailover(t *testing.T) {
	f := newFleet(t, 2, nil)
	owner := f.findOwner(t, "cli")
	other := f.replicas[0]
	if other == owner {
		other = f.replicas[1]
	}
	owner.setMode(func(w http.ResponseWriter, r *http.Request) bool {
		if r.URL.Path == "/readyz" {
			return false
		}
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "replica says no"})
		return true
	})
	otherBefore := other.hits.Load()
	status, _, _ := f.estimate(t, "cli")
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want the replica's 400 relayed", status)
	}
	if other.hits.Load() != otherBefore {
		t.Fatal("client errors are definitive: no failover allowed")
	}
	// The router's own planner rejects bad SQL before any proxying.
	status, _, _ = f.estimate(t, "bad query")
	if status != http.StatusBadRequest {
		t.Fatalf("planner rejection: status = %d, want 400", status)
	}
}

func TestRouterDegradesWhenAllReplicasDown(t *testing.T) {
	f := newFleet(t, 2, func(cfg *Config) {
		cfg.Fallback = func(_ context.Context, p *physical.Plan, _ sparksim.Resources) (float64, error) {
			return 7.5, nil
		}
	})
	for _, r := range f.replicas {
		r.ts.Close() // hard kill: connection refused from here on
	}
	status, er, _ := f.estimate(t, "orphan")
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 degraded", status)
	}
	if !er.Degraded || er.Source != "fallback" || er.CostSec != 7.5 {
		t.Fatalf("answer = %+v, want degraded fallback at 7.5", er)
	}
	if !strings.Contains(er.Reason, "fleet:") {
		t.Fatalf("reason %q must carry the fleet failure", er.Reason)
	}
	if f.met.Degraded.Value() == 0 {
		t.Fatal("degrade counter must move")
	}
}

func TestRouterTypedErrorWhenAllDownAndNoFallback(t *testing.T) {
	f := newFleet(t, 1, nil)
	f.replicas[0].ts.Close()
	body, _ := json.Marshal(serve.EstimateRequest{SQL: "q"})
	resp, err := http.Post(f.rs.URL+"/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var er serve.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("503 must carry a typed JSON error: %v", err)
	}
	if !strings.Contains(er.Error, "fleet:") {
		t.Fatalf("error %q must name the fleet failure", er.Error)
	}
}

func TestRouterHedgesSlowReplica(t *testing.T) {
	f := newFleet(t, 2, func(cfg *Config) {
		cfg.HedgeAfter = 15 * time.Millisecond
	})
	owner := f.findOwner(t, "slowkey")
	owner.setMode(func(w http.ResponseWriter, r *http.Request) bool {
		if r.URL.Path == "/readyz" {
			return false
		}
		time.Sleep(400 * time.Millisecond) // deep into the tail
		w.Header().Set("Content-Type", "application/json")
		w.Write(okBody(owner.id))
		return true
	})
	start := time.Now()
	status, _, rep := f.estimate(t, "slowkey")
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if rep == owner.id {
		t.Fatal("hedge should have won against the stalled owner")
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("request took %v — the hedge did not cut the tail", elapsed)
	}
	if f.met.Hedges.With("fired").Value() == 0 || f.met.Hedges.With("won").Value() == 0 {
		t.Fatal("hedge fired/won counters must move")
	}
}

func TestRouterHealthDrivenMembership(t *testing.T) {
	f := newFleet(t, 2, nil)
	owner := f.findOwner(t, "movable")
	// The owner starts reporting not-ready (as a saturated or draining
	// replica would); the checker must take it out of rotation.
	owner.setMode(func(w http.ResponseWriter, r *http.Request) bool {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusServiceUnavailable)
			return true
		}
		return false
	})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if !f.router.replicas[owner.id].health.State().Routable() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if f.router.replicas[owner.id].health.State().Routable() {
		t.Fatal("replica failing readyz stayed routable past the hysteresis window")
	}
	if f.met.Rebalances.Value() == 0 {
		t.Fatal("routable→down transition must count a rebalance")
	}
	// Requests now route around it without error or delay.
	estBefore := owner.hits.Load()
	status, _, rep := f.estimate(t, "movable")
	if status != http.StatusOK || rep == owner.id {
		t.Fatalf("status=%d rep=%s: keys must fail over to the live replica", status, rep)
	}
	if owner.hits.Load() != estBefore {
		t.Fatal("down replica must receive no estimate traffic")
	}
	// Recovery: readyz greens, the checker brings it back with
	// hysteresis (UpAfter=1 then one more ok → healthy).
	owner.setMode(func(w http.ResponseWriter, r *http.Request) bool { return false })
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if f.router.replicas[owner.id].health.State() == Healthy {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := f.router.replicas[owner.id].health.State(); got != Healthy {
		t.Fatalf("replica state = %v after recovery, want healthy", got)
	}
	status, _, rep = f.estimate(t, "movable")
	if status != http.StatusOK || rep != owner.id {
		t.Fatalf("status=%d rep=%s: recovered owner must get its keys back", status, rep)
	}
}

func TestRouterOperationalSurfaces(t *testing.T) {
	f := newFleet(t, 2, nil)
	f.estimate(t, "q1")

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(f.rs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, resp.StatusCode)
		}
	}

	resp, err := http.Get(f.rs.URL + "/fleetz")
	if err != nil {
		t.Fatal(err)
	}
	var rows []fleetzReplica
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rows) != 2 || rows[0].Health != "healthy" || rows[0].Breaker != "closed" {
		t.Fatalf("fleetz rows = %+v", rows)
	}

	resp, err = http.Get(f.rs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"raal_fleet_requests_total{endpoint=\"estimate\"}",
		"raal_fleet_replica_state{replica=\"r0\"}",
		"raal_fleet_hedges_total{outcome=\"fired\"}",
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}

func TestRouterConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config must fail")
	}
	if _, err := New(Config{Replicas: []Replica{{ID: "a", URL: "http://x"}}}); err == nil {
		t.Fatal("missing planner must fail")
	}
	if _, err := New(Config{
		Replicas: []Replica{{ID: "a", URL: "http://x"}, {ID: "a", URL: "http://y"}},
		Planner:  testPlanner,
	}); err == nil {
		t.Fatal("duplicate replica IDs must fail")
	}
}
