// Package fleet scales raalserve past one process: a front router that
// consistent-hashes each request's canonical plan+resources fingerprint
// onto a fleet of replicas, so hot keys keep landing on the replica
// whose encode cache and micro-batcher are already warm for them, with
// the robustness stack production traffic needs wrapped around the
// affinity:
//
//   - active health checking — every replica's readyz is probed on an
//     interval and folded through a hysteresis state machine
//     (healthy → suspect → down → recovered), so a blip does not move
//     keys off their warm replica but a dead process stops receiving
//     traffic within a few probes;
//   - per-replica circuit breakers — driven by real request outcomes,
//     reacting within a handful of failures instead of a probe interval;
//     open breakers shed load to the next ring position;
//   - bounded retries — jittered exponential backoff on connection
//     errors and 5xx, context-aware throughout;
//   - tail hedging — when a request outlives the fleet's recent p99, a
//     second copy is issued to the next replica on the ring and the
//     loser is cancelled, cutting the tail a slow replica creates;
//   - graceful degradation — when no replica can answer, the router
//     prices the plan itself with the analytical fallback and tags the
//     response degraded:true, so callers always get an answer, a typed
//     error, or a cancellation — never a hang.
//
// The same binary serves as router or replica (raalserve -route).
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"raal/internal/backoff"
	"raal/internal/physical"
	"raal/internal/serve"
	"raal/internal/sparksim"
)

// Typed failure modes, matched with errors.Is.
var (
	// ErrNoReplicas: every replica for the key is down (health or
	// breaker); with a fallback configured the caller gets a degraded
	// answer instead of this error.
	ErrNoReplicas = errors.New("fleet: no routable replica")
	// ErrAllFailed: every routable replica was tried and failed.
	ErrAllFailed = errors.New("fleet: every replica attempt failed")
)

// Replica names one backend raalserve process.
type Replica struct {
	// ID labels the replica in metrics and logs (must be unique).
	ID string
	// URL is the replica's base URL, e.g. "http://10.0.0.7:8080".
	URL string
}

// FingerprintFunc canonicalizes a (plan, resources) pair into the
// affinity key (in practice raal.PlanFingerprint — the encode cache's
// exact key, so router affinity and replica cache locality agree).
type FingerprintFunc func(p *physical.Plan, res sparksim.Resources) string

// Config wires a Router.
type Config struct {
	// Replicas is the fleet membership (required, at least one).
	Replicas []Replica
	// Planner maps request SQL to candidate plans — used to compute the
	// affinity fingerprint and to price the local degrade path
	// (required).
	Planner serve.PlanFunc
	// Fingerprint canonicalizes (plan, resources) → affinity key.
	// Nil falls back to the plan signature plus the resource vector —
	// coarser than the encode-cache key but still deterministic.
	Fingerprint FingerprintFunc
	// Fallback prices one plan analytically when every replica is down
	// (the degrade ladder's last rung). Nil disables degradation: total
	// replica failure becomes a typed 503.
	Fallback serve.EstimateFunc
	// DefaultRes seeds each request's allocation; zero means
	// sparksim.DefaultResources(). Must match the replicas' default so
	// the router's fingerprint agrees with their cache keys.
	DefaultRes sparksim.Resources
	// MaxCandidates caps the degrade path's /select pricing (default 3).
	MaxCandidates int
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64

	// Vnodes is the virtual-node count per replica (default 64).
	Vnodes int

	// HealthInterval is the readyz probe period (default 250ms);
	// ProbeTimeout bounds each probe (default HealthInterval).
	HealthInterval time.Duration
	ProbeTimeout   time.Duration
	// DownAfter is how many consecutive probe failures send a suspect
	// replica down (default 3); UpAfter how many consecutive successes
	// bring a down replica back (default 2).
	DownAfter int
	UpAfter   int

	// RetryAttempts is the per-replica attempt budget for connection
	// errors and 5xx (default 2: one try, one retry); Backoff shapes the
	// jittered delay between them.
	RetryAttempts int
	Backoff       backoff.Policy
	// AttemptTimeout bounds each proxied attempt so a stalled replica
	// cannot pin the failover chain (default 2s).
	AttemptTimeout time.Duration

	// BreakerThreshold consecutive request failures open a replica's
	// breaker (default 3); BreakerCooldown is how long it sheds before
	// admitting a half-open probe (default 500ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// HedgeAfter fixes the tail-hedging trigger; 0 adapts it to the
	// observed p99 (clamped to [HedgeMin, HedgeMax], defaults 1ms and
	// 250ms); negative disables hedging.
	HedgeAfter time.Duration
	HedgeMin   time.Duration
	HedgeMax   time.Duration

	// Seed keys the retry jitter (deterministic tests).
	Seed int64

	// Metrics receives routing telemetry; nil routes unobserved. When it
	// carries a registry, the router serves GET /metrics.
	Metrics *Metrics
	// Logger receives health transitions and breaker events; nil
	// discards them.
	Logger *slog.Logger
	// Client overrides the proxy HTTP client (tests); nil uses a
	// dedicated client with sane pooling.
	Client *http.Client
}

// replicaRT is one replica's runtime state.
type replicaRT struct {
	id     string
	url    string
	health *healthFSM
	brk    *breaker
}

// Router is the fleet front-end. Create with New, serve it like any
// http.Handler, and Close it to stop the health checkers.
type Router struct {
	cfg      Config
	ring     *ring
	replicas map[string]*replicaRT
	byIndex  []*replicaRT
	lat      *latencyTracker
	met      *Metrics
	log      *slog.Logger
	client   *http.Client
	mux      *http.ServeMux

	rngMu sync.Mutex
	rng   *rand.Rand

	stop chan struct{}
	wg   sync.WaitGroup
}

// New validates cfg, builds the router, and starts the health checkers
// (stop them with Close).
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("fleet: config needs at least one replica")
	}
	seen := make(map[string]bool, len(cfg.Replicas))
	for _, r := range cfg.Replicas {
		if r.ID == "" || r.URL == "" {
			return nil, fmt.Errorf("fleet: replica needs both ID and URL, got %+v", r)
		}
		if seen[r.ID] {
			return nil, fmt.Errorf("fleet: duplicate replica ID %q", r.ID)
		}
		seen[r.ID] = true
	}
	if cfg.Planner == nil {
		return nil, errors.New("fleet: Config.Planner is required")
	}
	if cfg.Fingerprint == nil {
		cfg.Fingerprint = func(p *physical.Plan, res sparksim.Resources) string {
			var b bytes.Buffer
			b.WriteString(p.Sig)
			for _, v := range res.Vector() {
				fmt.Fprintf(&b, ",%g", v)
			}
			return b.String()
		}
	}
	if cfg.DefaultRes == (sparksim.Resources{}) {
		cfg.DefaultRes = sparksim.DefaultResources()
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = 3
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 250 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.HealthInterval
	}
	if cfg.RetryAttempts < 1 {
		cfg.RetryAttempts = 2
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 2 * time.Second
	}
	if cfg.Backoff == (backoff.Policy{}) {
		cfg.Backoff = backoff.Policy{Base: 5 * time.Millisecond, Cap: 100 * time.Millisecond}
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = time.Millisecond
	}
	if cfg.HedgeMax <= 0 {
		cfg.HedgeMax = 250 * time.Millisecond
	}
	met := cfg.Metrics
	if met == nil {
		met = &Metrics{}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     30 * time.Second,
		}}
	}

	rt := &Router{
		cfg:      cfg,
		replicas: make(map[string]*replicaRT, len(cfg.Replicas)),
		lat:      newLatencyTracker(512, 0.99),
		met:      met,
		log:      logger,
		client:   client,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		stop:     make(chan struct{}),
	}
	ids := make([]string, len(cfg.Replicas))
	for i, r := range cfg.Replicas {
		ids[i] = r.ID
		rep := &replicaRT{
			id:     r.ID,
			url:    r.URL,
			health: newHealthFSM(cfg.DownAfter, cfg.UpAfter),
			brk:    newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, nil),
		}
		rt.replicas[r.ID] = rep
		rt.byIndex = append(rt.byIndex, rep)
		met.ReplicaState.With(r.ID).Set(stateValue(Healthy))
		met.ReplicaUp.With(r.ID).Set(1)
	}
	rt.ring = newRing(ids, cfg.Vnodes)

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /estimate", rt.proxyHandler("estimate"))
	rt.mux.HandleFunc("POST /select", rt.proxyHandler("select"))
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /fleetz", rt.handleFleetz)
	if reg := met.Registry(); reg != nil {
		rt.mux.Handle("GET /metrics", reg.Handler())
	}

	for _, rep := range rt.byIndex {
		rt.wg.Add(1)
		go rt.probeLoop(rep)
	}
	return rt, nil
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Close stops the health checkers and releases pooled connections. In-
// flight proxied requests finish on their own contexts.
func (rt *Router) Close() {
	select {
	case <-rt.stop:
		return // already closed
	default:
	}
	close(rt.stop)
	rt.wg.Wait()
	rt.client.CloseIdleConnections()
}

// float64 draws jitter from the seeded source (goroutine-safe).
func (rt *Router) float64() float64 {
	rt.rngMu.Lock()
	defer rt.rngMu.Unlock()
	return rt.rng.Float64()
}

// ---------------------------------------------------------------------------
// Health checking

// probeLoop drives one replica's health FSM off its readyz endpoint.
func (rt *Router) probeLoop(rep *replicaRT) {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
		}
		ok := rt.probe(rep)
		if !ok {
			rt.met.ProbeFailures.With(rep.id).Inc()
		}
		prev, cur := rep.health.observe(ok)
		if cur == prev {
			continue
		}
		rt.met.ReplicaState.With(rep.id).Set(stateValue(cur))
		if prev.Routable() != cur.Routable() {
			rt.met.Rebalances.Inc()
			up := 0.0
			if cur.Routable() {
				up = 1
			}
			rt.met.ReplicaUp.With(rep.id).Set(up)
		}
		rt.log.LogAttrs(context.Background(), slog.LevelInfo, "replica health transition",
			slog.String("replica", rep.id),
			slog.String("from", prev.String()),
			slog.String("to", cur.String()))
	}
}

// probe hits the replica's readyz once; only a 200 counts (a saturated
// or draining replica answers 503 and is treated as unhealthy, which is
// exactly the load-aware routing the readyz contract promises).
func (rt *Router) probe(rep *replicaRT) bool {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// ---------------------------------------------------------------------------
// Request path

// proxyHandler decodes enough of the request to compute the affinity
// key, forwards the raw body along the ring, and falls back to the
// local analytical estimate when the fleet cannot answer.
func (rt *Router) proxyHandler(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rt.met.Requests.With(endpoint).Inc()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		rt.handleProxy(sw, r, endpoint)
		rt.met.Responses.With(strconv.Itoa(sw.code)).Inc()
		if sw.code < 400 {
			elapsed := time.Since(start)
			rt.lat.Observe(elapsed)
			rt.met.RouteLatency.Observe(elapsed.Seconds())
		}
	}
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request, endpoint string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, serve.ErrorResponse{
				Error: fmt.Sprintf("request body exceeds %d byte limit", tooLarge.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	var req serve.EstimateRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: `missing "sql"`})
		return
	}
	res := rt.cfg.DefaultRes
	if req.Executors != 0 {
		res.Executors = req.Executors
	}
	if req.Cores != 0 {
		res.ExecCores = req.Cores
	}
	if req.MemMB != 0 {
		res.ExecMemMB = req.MemMB
	}
	if err := res.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "invalid resources: " + err.Error()})
		return
	}
	plans, err := rt.cfg.Planner(req.SQL)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: err.Error()})
		return
	}
	if len(plans) == 0 {
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "no plan for query"})
		return
	}
	key := rt.cfg.Fingerprint(plans[0], res)

	out := rt.forward(r.Context(), "/"+endpoint, body, key)
	if out.err != nil {
		if cerr := r.Context().Err(); cerr != nil {
			writeJSON(w, http.StatusRequestTimeout, serve.ErrorResponse{Error: cerr.Error()})
			return
		}
		rt.degrade(w, endpoint, plans, res, out.err)
		return
	}
	rt.met.Proxied.With(out.replica).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Raal-Replica", out.replica)
	w.WriteHeader(out.status)
	w.Write(out.body)
}

// degrade is the ladder's last rung: price the plan locally with the
// analytical fallback and tag the answer degraded. Without a fallback
// the failure surfaces as a typed 503.
func (rt *Router) degrade(w http.ResponseWriter, endpoint string, plans []*physical.Plan, res sparksim.Resources, cause error) {
	if rt.cfg.Fallback == nil {
		writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{
			Error: fmt.Sprintf("fleet: no replica available and no fallback: %v", cause)})
		return
	}
	cands := plans[:1]
	if endpoint == "select" {
		cands = plans
		if len(cands) > rt.cfg.MaxCandidates {
			cands = cands[:rt.cfg.MaxCandidates]
		}
	}
	best, bestCost := 0, 0.0
	for i, p := range cands {
		c, err := rt.cfg.Fallback(context.Background(), p, res)
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{
				Error: fmt.Sprintf("fleet: no replica available and fallback failed: %v (cause: %v)", err, cause)})
			return
		}
		if i == 0 || c < bestCost {
			best, bestCost = i, c
		}
	}
	rt.met.Degraded.Inc()
	reason := cause.Error()
	if !strings.HasPrefix(reason, "fleet:") {
		reason = "fleet: " + reason
	}
	writeJSON(w, http.StatusOK, serve.EstimateResponse{
		CostSec: bestCost, Source: "fallback", Degraded: true,
		Reason:  reason,
		PlanSig: cands[best].Sig, PlanIndex: best, Candidates: len(cands),
	})
}

// attemptOut carries one forwarding chain's terminal result.
type attemptOut struct {
	status  int
	body    []byte
	replica string
	err     error // non-nil when no definitive response was obtained
}

// hedgeThreshold returns the current tail-hedging trigger: the fixed
// configured value, or the adaptive p99 clamped to [HedgeMin, HedgeMax].
// Negative HedgeAfter disables hedging (returns 0).
func (rt *Router) hedgeThreshold() time.Duration {
	if rt.cfg.HedgeAfter < 0 {
		return 0
	}
	if rt.cfg.HedgeAfter > 0 {
		return rt.cfg.HedgeAfter
	}
	q := rt.lat.Quantile()
	if q < rt.cfg.HedgeMin {
		q = rt.cfg.HedgeMin
	}
	if q > rt.cfg.HedgeMax {
		q = rt.cfg.HedgeMax
	}
	rt.met.HedgeThreshold.Set(q.Seconds())
	return q
}

// candidates returns the key's preference list: ring order, health-
// routable members only. Breaker state is checked at attempt time (an
// Allow has half-open side effects).
func (rt *Router) candidates(key string) []*replicaRT {
	order := rt.ring.Order(key)
	cands := make([]*replicaRT, 0, len(order))
	for _, id := range order {
		rep := rt.replicas[id]
		if rep.health.State().Routable() {
			cands = append(cands, rep)
		}
	}
	return cands
}

// forward drives one request through the fleet: a primary failover
// chain starting at the key's ring owner, plus — once the hedge
// threshold elapses — one hedged chain starting at the next ring
// position. The first definitive answer wins and the loser is
// cancelled. Every chain goroutine delivers into a buffered channel, so
// an abandoned loser can always complete and exit (no leak, no
// double-completion of the caller).
func (rt *Router) forward(ctx context.Context, path string, body []byte, key string) attemptOut {
	cands := rt.candidates(key)
	if len(cands) == 0 {
		return attemptOut{err: ErrNoReplicas}
	}
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	primary := make(chan attemptOut, 1)
	go func() { primary <- rt.attemptChain(pctx, cands, 0, path, body) }()

	thr := rt.hedgeThreshold()
	if thr <= 0 || len(cands) < 2 {
		select {
		case out := <-primary:
			return out
		case <-ctx.Done():
			return attemptOut{err: ctx.Err()}
		}
	}

	var (
		hedge   chan attemptOut
		hcancel context.CancelFunc
		pOut    *attemptOut // primary's failure, parked while the hedge runs
	)
	defer func() {
		if hcancel != nil {
			hcancel()
		}
	}()
	timer := time.NewTimer(thr)
	defer timer.Stop()
	for {
		select {
		case out := <-primary:
			if out.err != nil && hedge != nil {
				// Primary lost its whole chain; the hedge is still the
				// request's hope. Park the error and wait.
				pOut = &out
				primary = nil
				continue
			}
			if hedge != nil {
				rt.met.Hedges.With("lost").Inc()
			}
			return out
		case out := <-hedge:
			if out.err == nil {
				rt.met.Hedges.With("won").Inc()
				pcancel()
				return out
			}
			rt.met.Hedges.With("lost").Inc()
			if pOut != nil {
				return *pOut // both chains failed; report the primary's error
			}
			hedge = nil // hedge died first; the primary may still answer
		case <-timer.C:
			if hedge == nil && pOut == nil {
				rt.met.Hedges.With("fired").Inc()
				hctx, cancel := context.WithCancel(ctx)
				hcancel = cancel // released by the deferred cleanup above
				h := make(chan attemptOut, 1)
				hedge = h
				go func() { h <- rt.attemptChain(hctx, cands, 1, path, body) }()
			}
		case <-ctx.Done():
			return attemptOut{err: ctx.Err()}
		}
	}
}

// attemptChain walks the preference list from start, giving each
// breaker-admitted replica RetryAttempts tries with jittered backoff,
// and returns the first definitive response. 2xx and client-error 4xx
// are definitive; connection errors and 5xx retry then fail over;
// 429/503 (saturated/draining — load states, not breakage) fail over
// immediately without a breaker penalty.
func (rt *Router) attemptChain(ctx context.Context, cands []*replicaRT, start int, path string, body []byte) attemptOut {
	var lastErr error
	tried := 0
	for i := start; i < len(cands); i++ {
		rep := cands[i]
		if !rep.brk.Allow() {
			rt.met.BreakerSheds.Inc()
			rt.met.BreakerState.With(rep.id).Set(breakerValue(rep.brk.State()))
			continue
		}
		if tried > 0 {
			rt.met.Failovers.Inc()
		}
		tried++
	attempts:
		for attempt := 0; attempt < rt.cfg.RetryAttempts; attempt++ {
			if attempt > 0 {
				rt.met.Retries.Inc()
				if err := backoff.Sleep(ctx, rt.cfg.Backoff.Delay(attempt-1, rt.float64)); err != nil {
					return attemptOut{err: err}
				}
			}
			status, respBody, err := rt.try(ctx, rep, path, body)
			if err != nil {
				if ctx.Err() != nil {
					return attemptOut{err: ctx.Err()}
				}
				rt.recordFailure(rep)
				lastErr = fmt.Errorf("replica %s: %w", rep.id, err)
				continue // connection-level failure: retry this replica
			}
			switch {
			case status < 400:
				rt.recordSuccess(rep)
				return attemptOut{status: status, body: respBody, replica: rep.id}
			case status == http.StatusBadRequest || status == http.StatusRequestEntityTooLarge ||
				status == http.StatusNotFound:
				// Definitive client error: relay as-is, and the replica
				// answered correctly, so its breaker heals.
				rt.recordSuccess(rep)
				return attemptOut{status: status, body: respBody, replica: rep.id}
			case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
				// Saturated or draining: shed to the next ring position.
				// Not a breakage signal — the health checker will absorb
				// a sustained 503 via the readyz probes.
				lastErr = fmt.Errorf("replica %s: HTTP %d", rep.id, status)
				break attempts
			default: // 5xx: the replica is misbehaving
				rt.recordFailure(rep)
				lastErr = fmt.Errorf("replica %s: HTTP %d", rep.id, status)
			}
		}
	}
	if lastErr == nil {
		return attemptOut{err: ErrNoReplicas}
	}
	return attemptOut{err: fmt.Errorf("%w: %v", ErrAllFailed, lastErr)}
}

// try performs one proxied attempt with its own timeout, so a stalled
// replica cannot pin the chain past AttemptTimeout.
func (rt *Router) try(ctx context.Context, rep *replicaRT, path string, body []byte) (int, []byte, error) {
	actx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, rep.url+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, respBody, nil
}

// recordSuccess and recordFailure fold request outcomes into the
// replica's breaker and its state gauge.
func (rt *Router) recordSuccess(rep *replicaRT) {
	if rep.brk.Success() {
		rt.log.LogAttrs(context.Background(), slog.LevelInfo, "breaker closed",
			slog.String("replica", rep.id))
	}
	rt.met.BreakerState.With(rep.id).Set(breakerValue(rep.brk.State()))
}

func (rt *Router) recordFailure(rep *replicaRT) {
	if rep.brk.Failure() {
		rt.met.BreakerOpens.With(rep.id).Inc()
		rt.log.LogAttrs(context.Background(), slog.LevelWarn, "breaker opened",
			slog.String("replica", rep.id))
	}
	rt.met.BreakerState.With(rep.id).Set(breakerValue(rep.brk.State()))
}

// ---------------------------------------------------------------------------
// Operational surfaces

// handleReadyz: the router is ready while it can answer somehow — at
// least one routable replica, or the local fallback.
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	routable := 0
	for _, rep := range rt.byIndex {
		if rep.health.State().Routable() {
			routable++
		}
	}
	if routable > 0 || rt.cfg.Fallback != nil {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, "ready (%d/%d replicas routable)\n", routable, len(rt.byIndex))
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "no routable replica and no fallback")
}

// fleetzReplica is one row of the /fleetz state dump.
type fleetzReplica struct {
	ID      string `json:"id"`
	URL     string `json:"url"`
	Health  string `json:"health"`
	Breaker string `json:"breaker"`
}

// handleFleetz dumps the live membership view for operators.
func (rt *Router) handleFleetz(w http.ResponseWriter, _ *http.Request) {
	out := make([]fleetzReplica, len(rt.byIndex))
	for i, rep := range rt.byIndex {
		out[i] = fleetzReplica{
			ID:      rep.id,
			URL:     rep.url,
			Health:  rep.health.State().String(),
			Breaker: rep.brk.State().String(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
