package fleet

import (
	"fmt"
	"testing"
)

func TestRingOrderCoversAllMembersOnce(t *testing.T) {
	ids := []string{"r0", "r1", "r2", "r3", "r4"}
	r := newRing(ids, 0)
	for k := 0; k < 100; k++ {
		order := r.Order(fmt.Sprintf("key-%d", k))
		if len(order) != len(ids) {
			t.Fatalf("Order returned %d members, want %d", len(order), len(ids))
		}
		seen := map[string]bool{}
		for _, id := range order {
			if seen[id] {
				t.Fatalf("member %s appears twice in %v", id, order)
			}
			seen[id] = true
		}
	}
}

func TestRingOrderDeterministic(t *testing.T) {
	ids := []string{"a", "b", "c"}
	r1 := newRing(ids, 0)
	r2 := newRing(ids, 0)
	for k := 0; k < 50; k++ {
		key := fmt.Sprintf("fingerprint-%d", k)
		o1, o2 := r1.Order(key), r2.Order(key)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("key %q: rings disagree: %v vs %v", key, o1, o2)
			}
		}
	}
}

// Property: the load spread over many keys is roughly uniform — no
// member owns more than ~2.5x its fair share with the default vnode
// count.
func TestRingSpreadsKeys(t *testing.T) {
	ids := []string{"r0", "r1", "r2", "r3"}
	r := newRing(ids, 0)
	counts := map[string]int{}
	const keys = 4000
	for k := 0; k < keys; k++ {
		counts[r.Order(fmt.Sprintf("plan-fingerprint-%d", k))[0]]++
	}
	fair := keys / len(ids)
	for id, n := range counts {
		if n == 0 {
			t.Fatalf("member %s owns no keys", id)
		}
		if n > fair*5/2 {
			t.Fatalf("member %s owns %d of %d keys (fair share %d) — spread too skewed", id, n, keys, fair)
		}
	}
}

// Property: consistent hashing moves few keys when a member joins — far
// fewer than the 3/4 a mod-N scheme would move going 3 → 4 members.
func TestRingStabilityOnMembershipGrowth(t *testing.T) {
	small := newRing([]string{"r0", "r1", "r2"}, 0)
	big := newRing([]string{"r0", "r1", "r2", "r3"}, 0)
	const keys = 2000
	moved := 0
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("plan-%d", k)
		if small.Order(key)[0] != big.Order(key)[0] {
			moved++
		}
	}
	// Ideal is 1/4; allow up to 1/2 for hash noise.
	if moved > keys/2 {
		t.Fatalf("%d of %d keys moved adding one member; consistent hashing should move ~1/4", moved, keys)
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new member — it would receive no traffic")
	}
}

// The failover order must also be stable: element 1 is the hedge target
// and must be the same replica every time for a given key.
func TestRingFailoverOrderStable(t *testing.T) {
	r := newRing([]string{"x", "y", "z"}, 0)
	key := "some-canonical-fingerprint"
	first := r.Order(key)
	for i := 0; i < 10; i++ {
		again := r.Order(key)
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("failover order unstable: %v vs %v", first, again)
			}
		}
	}
}

func TestRingEmptyKey(t *testing.T) {
	r := newRing([]string{"only"}, 8)
	if got := r.Order(""); len(got) != 1 || got[0] != "only" {
		t.Fatalf("Order(\"\") = %v, want [only]", got)
	}
}
