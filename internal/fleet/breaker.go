package fleet

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a per-replica circuit breaker driven by request outcomes
// (the health checker sees probes; the breaker sees real traffic, so it
// reacts within a handful of failed requests instead of a probe
// interval). Closed counts consecutive failures and opens at the
// threshold; open sheds every request until the cooldown elapses, then
// admits exactly one half-open probe; the probe's outcome closes or
// re-opens the breaker.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	fails     int
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	now       func() time.Time // injectable for deterministic tests
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold < 1 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 500 * time.Millisecond
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a request may be sent. In the open state it
// transitions to half-open once the cooldown has elapsed and admits that
// single caller as the probe; every other caller is shed until the probe
// resolves via Success or Failure.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: the probe slot is taken
		return false
	}
}

// Success records a served request: closed resets the failure streak,
// half-open closes the breaker. Returns true when the breaker closed
// from half-open (a recovery event worth logging).
func (b *breaker) Success() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state == breakerHalfOpen || b.state == breakerOpen {
		b.state = breakerClosed
		return true
	}
	return false
}

// Failure records a failed request and returns true when it opened the
// breaker (from closed at the threshold, or a failed half-open probe).
func (b *breaker) Failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			return true
		}
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		return true
	}
	return false
}

// State returns the current state.
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
