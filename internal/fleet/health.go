package fleet

import (
	"sync/atomic"
)

// HealthState is a replica's position in the health lifecycle the
// router's active checker drives:
//
//	Healthy ──fail──▶ Suspect ──DownAfter consecutive fails──▶ Down
//	   ▲                 │ ok                                    │
//	   └─────────────────┘            UpAfter consecutive oks ──▶ Recovered
//	   ▲                                                         │
//	   └── ok ── Recovered ◀─────────────────────────────────────┘
//	              │ fail
//	              ▼
//	             Down
//
// The hysteresis is asymmetric on purpose: a healthy replica gets
// DownAfter probes of grace before it stops receiving traffic (blips
// should not move keys off their warm replica), but a freshly recovered
// replica goes straight back Down on a single failure (a flapping
// process must prove real stability before it regains full trust).
type HealthState int32

const (
	// Down replicas receive no traffic and no hedges.
	Down HealthState = iota
	// Suspect replicas have missed at least one probe but still serve —
	// the grace period that keeps blips from moving keys.
	Suspect
	// Recovered replicas just returned from Down: routable, but one
	// probe failure sends them straight back.
	Recovered
	// Healthy replicas have a clean recent probe history.
	Healthy
)

// String names the state for logs and the /fleetz dump.
func (s HealthState) String() string {
	switch s {
	case Down:
		return "down"
	case Suspect:
		return "suspect"
	case Recovered:
		return "recovered"
	case Healthy:
		return "healthy"
	}
	return "unknown"
}

// Routable reports whether the router may send requests to a replica in
// this state. Everything but Down serves; Down replicas are skipped on
// the ring walk and their keys fail over to the next position.
func (s HealthState) Routable() bool { return s != Down }

// healthFSM applies probe outcomes with hysteresis. Probe bookkeeping
// (consecutive fail/ok streaks) belongs to the single checker goroutine;
// the state itself is atomic so the request path reads it lock-free.
type healthFSM struct {
	state     atomic.Int32
	downAfter int // consecutive fails before Suspect → Down
	upAfter   int // consecutive oks before Down → Recovered

	fails int // checker-goroutine-local streaks
	oks   int
}

func newHealthFSM(downAfter, upAfter int) *healthFSM {
	if downAfter < 1 {
		downAfter = 3
	}
	if upAfter < 1 {
		upAfter = 2
	}
	f := &healthFSM{downAfter: downAfter, upAfter: upAfter}
	f.state.Store(int32(Healthy))
	return f
}

// State returns the current state (safe from any goroutine).
func (f *healthFSM) State() HealthState { return HealthState(f.state.Load()) }

// observe folds one probe outcome in and returns (previous, current) so
// the caller can emit transition metrics and logs. Only the checker
// goroutine calls it.
func (f *healthFSM) observe(ok bool) (prev, cur HealthState) {
	prev = f.State()
	cur = prev
	if ok {
		f.fails = 0
		f.oks++
		switch prev {
		case Suspect:
			cur = Healthy // the blip passed
		case Down:
			if f.oks >= f.upAfter {
				cur = Recovered
				f.oks = 0
			}
		case Recovered:
			cur = Healthy // one more clean probe restores full trust
		}
	} else {
		f.oks = 0
		f.fails++
		switch prev {
		case Healthy:
			cur = Suspect
		case Suspect:
			if f.fails >= f.downAfter {
				cur = Down
			}
		case Recovered:
			cur = Down // no second chances while rebuilding trust
		}
	}
	if cur != prev {
		f.state.Store(int32(cur))
	}
	return prev, cur
}
