package fleet

import (
	"raal/internal/telemetry"
)

// Label values pre-materialized at wiring time, like internal/serve.
var (
	fleetEndpoints    = []string{"estimate", "select"}
	hedgeOutcomes     = []string{"fired", "won", "lost"}
	fleetStatusValues = []string{"200", "400", "408", "413", "429", "500", "503", "504"}
)

// Metrics is the fleet router's metric set. Nil or zero value is inert,
// matching the serve and telemetry conventions. Per-replica vecs are
// keyed by replica ID, pre-materialized for the configured membership.
type Metrics struct {
	registry *telemetry.Registry

	// Requests counts router requests by endpoint; Responses counts what
	// the caller ultimately received, by status code.
	Requests  *telemetry.CounterVec
	Responses *telemetry.CounterVec

	// Proxied counts requests answered by each replica (the hedge or
	// failover winner — exactly one per served request).
	Proxied *telemetry.CounterVec

	// Retries counts same-replica retry attempts after a connection
	// error or 5xx; Failovers counts moves to the next ring position
	// after a replica was exhausted; BreakerSheds counts candidates
	// skipped because their breaker was open.
	Retries      *telemetry.Counter
	Failovers    *telemetry.Counter
	BreakerSheds *telemetry.Counter

	// Hedges counts tail hedges by outcome: fired (second request
	// launched), won (the hedge answered first), lost (the primary beat
	// it). fired == won + lost once all in-flight pairs resolve.
	Hedges *telemetry.CounterVec
	// HedgeThreshold reports the current trigger latency in seconds.
	HedgeThreshold *telemetry.Gauge

	// Degraded counts requests answered by the router's local analytical
	// fallback because no replica could (tagged degraded:true).
	Degraded *telemetry.Counter

	// ReplicaState gauges the health FSM per replica (0 down, 1 suspect,
	// 2 recovered, 3 healthy); ReplicaUp is the routable bit.
	ReplicaState *telemetry.GaugeVec
	ReplicaUp    *telemetry.GaugeVec
	// BreakerState gauges the breaker per replica (0 closed, 1 open,
	// 2 half-open); BreakerOpens counts open transitions.
	BreakerState *telemetry.GaugeVec
	BreakerOpens *telemetry.CounterVec

	// ProbeFailures counts failed health probes per replica;
	// Rebalances counts effective-membership changes (a replica
	// crossing routable ↔ not — every such transition re-maps the keys
	// it owned or receives them back).
	ProbeFailures *telemetry.CounterVec
	Rebalances    *telemetry.Counter

	// RouteLatency observes end-to-end router latency (admission to
	// final byte) for served requests, in seconds.
	RouteLatency *telemetry.Histogram
}

// NewMetrics registers the fleet metric set on reg with per-replica
// children for the given replica IDs. Metric names are stable API.
func NewMetrics(reg *telemetry.Registry, replicaIDs []string) *Metrics {
	return &Metrics{
		registry: reg,
		Requests: reg.NewCounterVec("raal_fleet_requests_total",
			"Router requests by endpoint.", "endpoint", fleetEndpoints...),
		Responses: reg.NewCounterVec("raal_fleet_responses_total",
			"Router responses by status code.", "code", fleetStatusValues...),
		Proxied: reg.NewCounterVec("raal_fleet_proxied_total",
			"Requests answered by each replica.", "replica", replicaIDs...),
		Retries: reg.NewCounter("raal_fleet_retries_total",
			"Same-replica retries after a connection error or 5xx."),
		Failovers: reg.NewCounter("raal_fleet_failovers_total",
			"Requests moved to the next ring position after exhausting a replica."),
		BreakerSheds: reg.NewCounter("raal_fleet_breaker_sheds_total",
			"Candidate replicas skipped because their circuit breaker was open."),
		Hedges: reg.NewCounterVec("raal_fleet_hedges_total",
			"Tail hedges by outcome (fired / won / lost).", "outcome", hedgeOutcomes...),
		HedgeThreshold: reg.NewGauge("raal_fleet_hedge_threshold_seconds",
			"Current tail-hedging trigger latency."),
		Degraded: reg.NewCounter("raal_fleet_degraded_total",
			"Requests answered by the router's local analytical fallback (no replica available)."),
		ReplicaState: reg.NewGaugeVec("raal_fleet_replica_state",
			"Replica health state (0 down, 1 suspect, 2 recovered, 3 healthy).", "replica", replicaIDs...),
		ReplicaUp: reg.NewGaugeVec("raal_fleet_replica_up",
			"Whether the replica is routable (1) or down (0).", "replica", replicaIDs...),
		BreakerState: reg.NewGaugeVec("raal_fleet_breaker_state",
			"Replica circuit-breaker state (0 closed, 1 open, 2 half-open).", "replica", replicaIDs...),
		BreakerOpens: reg.NewCounterVec("raal_fleet_breaker_opens_total",
			"Circuit-breaker open transitions per replica.", "replica", replicaIDs...),
		ProbeFailures: reg.NewCounterVec("raal_fleet_probe_failures_total",
			"Failed health probes per replica.", "replica", replicaIDs...),
		Rebalances: reg.NewCounter("raal_fleet_ring_rebalances_total",
			"Effective-membership changes (a replica crossing routable/not-routable)."),
		RouteLatency: reg.NewHistogram("raal_fleet_request_seconds",
			"End-to-end router latency of served requests.", nil),
	}
}

// Registry returns the registry the metrics live on (nil when inert).
func (m *Metrics) Registry() *telemetry.Registry {
	if m == nil {
		return nil
	}
	return m.registry
}

// stateValue encodes a HealthState for the ReplicaState gauge.
func stateValue(s HealthState) float64 {
	switch s {
	case Down:
		return 0
	case Suspect:
		return 1
	case Recovered:
		return 2
	default:
		return 3
	}
}

// breakerValue encodes a breakerState for the BreakerState gauge.
func breakerValue(s breakerState) float64 {
	switch s {
	case breakerClosed:
		return 0
	case breakerOpen:
		return 1
	default:
		return 2
	}
}
