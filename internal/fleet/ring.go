package fleet

import (
	"sort"
)

// defaultVnodes is the virtual-node count per replica. 64 points per
// member keeps the load spread within a few percent of uniform for the
// fleet sizes this router targets (a handful to a few dozen replicas)
// while keeping the ring small enough that a lookup's binary search and
// clockwise walk stay trivially cheap.
const defaultVnodes = 64

// ring is a consistent-hash ring over replica IDs. It is immutable after
// construction — membership changes are handled by the router skipping
// non-routable members during the clockwise walk, so the hash placement
// of healthy keys never moves when an unrelated replica flaps (the
// property that keeps encode caches warm through partial outages).
type ring struct {
	points []ringPoint // sorted by hash
	ids    []string    // distinct member IDs, construction order
}

type ringPoint struct {
	hash uint64
	id   string
}

// newRing places vnodes points per member on the circle. IDs must be
// distinct; vnodes <= 0 means defaultVnodes.
func newRing(ids []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &ring{ids: append([]string(nil), ids...)}
	r.points = make([]ringPoint, 0, len(ids)*vnodes)
	var buf []byte
	for _, id := range ids {
		for v := 0; v < vnodes; v++ {
			buf = buf[:0]
			buf = append(buf, id...)
			buf = append(buf, '#', byte(v), byte(v>>8))
			r.points = append(r.points, ringPoint{hash: hashBytes(buf), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return r
}

// Order returns every member exactly once, in ring order starting at
// key's successor point — the preference list for affinity routing:
// element 0 owns the key, element 1 is the first failover (and hedge)
// target, and so on. Deterministic for a given member set and key.
func (r *ring) Order(key string) []string {
	out := make([]string, 0, len(r.ids))
	if len(r.points) == 0 {
		return out
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.ids))
	for i := 0; i < len(r.points) && len(out) < len(r.ids); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}

// hashString is FNV-1a 64 over the key with a splitmix64 finalizer.
// Raw FNV disperses poorly in the high bits for short, similar inputs
// (exactly what vnode labels like "r0#1" are), which skews ring
// placement; the avalanche pass fixes that while staying
// dependency-free.
func hashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return mix64(h)
}

func hashBytes(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection, so it
// cannot introduce collisions, only spread them.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
