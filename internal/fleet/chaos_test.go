package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"raal/internal/physical"
	"raal/internal/serve"
	"raal/internal/sparksim"
	"raal/internal/telemetry"
)

// chaosReplica is a real serve stack (admission, panic isolation,
// drain) behind an httptest listener — the router is exercised against
// the genuine replica surface, not a scripted stub.
type chaosReplica struct {
	id      string
	srv     *serve.Server
	handler *serve.Handler
	ts      *httptest.Server
}

func newChaosReplica(t *testing.T, id string, faults *serve.FaultConfig) *chaosReplica {
	t.Helper()
	srv, err := serve.New(serve.Config{
		Deep: func(_ context.Context, p *physical.Plan, _ sparksim.Resources) (float64, error) {
			return 2.0, nil
		},
		Concurrency: 4,
		QueueDepth:  16,
		Faults:      faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := serve.NewHandler(srv, serve.HTTPConfig{Planner: testPlanner})
	if err != nil {
		t.Fatal(err)
	}
	return &chaosReplica{id: id, srv: srv, handler: h, ts: httptest.NewServer(h)}
}

// TestChaosFleetZeroLoss drives a closed-loop workload through a
// 3-replica fleet while one replica fault-injects (seeded, replayable)
// and another is killed mid-run. The invariant under test: zero lost
// requests — every single response is a deep estimate, a degraded:true
// analytical estimate, or a typed error; never a hang, a dropped
// connection surfaced to the caller, or an empty body.
func TestChaosFleetZeroLoss(t *testing.T) {
	// r1 fault-injects: half its deep calls error, a fifth panic, and it
	// has no fallback, so those surface as real 500s at the router.
	faulty := &serve.FaultConfig{Seed: 42, ErrorProb: 0.5, PanicProb: 0.2}
	reps := []*chaosReplica{
		newChaosReplica(t, "r0", nil),
		newChaosReplica(t, "r1", faulty),
		newChaosReplica(t, "r2", nil),
	}
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg, []string{"r0", "r1", "r2"})
	router, err := New(Config{
		Replicas: []Replica{
			{ID: "r0", URL: reps[0].ts.URL},
			{ID: "r1", URL: reps[1].ts.URL},
			{ID: "r2", URL: reps[2].ts.URL},
		},
		Planner:          testPlanner,
		HealthInterval:   20 * time.Millisecond,
		DownAfter:        2,
		UpAfter:          1,
		RetryAttempts:    2,
		AttemptTimeout:   2 * time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		HedgeAfter:       50 * time.Millisecond,
		Seed:             7,
		Metrics:          met,
		Fallback: func(_ context.Context, p *physical.Plan, _ sparksim.Resources) (float64, error) {
			return 9.0, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := httptest.NewServer(router)
	defer func() {
		rs.Close()
		router.Close()
		for _, r := range reps {
			r.ts.Close()
		}
	}()

	const (
		clients    = 8
		perClient  = 25
		total      = clients * perClient
		killAfter  = total / 2
		distinctQs = 40
	)
	var (
		sent      atomic.Int64
		deep      atomic.Int64
		degraded  atomic.Int64
		killOnce  sync.Once
		transport atomic.Int64 // caller-visible transport failures: must stay 0
		bad       atomic.Int64 // undecodable or non-200 responses: must stay 0
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				n := sent.Add(1)
				if n == killAfter {
					// Hard-kill a healthy replica mid-run: its keys must
					// fail over with zero caller-visible loss.
					killOnce.Do(func() { reps[2].ts.CloseClientConnections(); reps[2].ts.Close() })
				}
				sql := fmt.Sprintf("q%d", (c*perClient+i)%distinctQs)
				body, _ := json.Marshal(serve.EstimateRequest{SQL: sql})
				resp, err := http.Post(rs.URL+"/estimate", "application/json", bytes.NewReader(body))
				if err != nil {
					transport.Add(1)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					bad.Add(1)
					t.Errorf("client %d req %d: status %d body %s", c, i, resp.StatusCode, raw)
					continue
				}
				var er serve.EstimateResponse
				if jsonErr := json.Unmarshal(raw, &er); jsonErr != nil || er.CostSec <= 0 {
					bad.Add(1)
					t.Errorf("client %d req %d: bad body %q (%v)", c, i, raw, jsonErr)
					continue
				}
				if er.Degraded {
					degraded.Add(1)
				} else {
					deep.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	if transport.Load() != 0 {
		t.Fatalf("%d requests lost to transport errors — the router must absorb replica failures", transport.Load())
	}
	if bad.Load() != 0 {
		t.Fatalf("%d bad responses", bad.Load())
	}
	if deep.Load()+degraded.Load() != total {
		t.Fatalf("answered %d+%d of %d", deep.Load(), degraded.Load(), total)
	}
	if deep.Load() == 0 {
		t.Fatal("no deep answers at all — the healthy replicas were not used")
	}
	t.Logf("served %d: %d deep, %d degraded; retries=%v failovers=%v sheds=%v breakerOpens(r1)=%v rebalances=%v",
		total, deep.Load(), degraded.Load(),
		met.Retries.Value(), met.Failovers.Value(), met.BreakerSheds.Value(),
		met.BreakerOpens.With("r1").Value(), met.Rebalances.Value())

	// The chaos must have been visible: the faulty replica forced
	// retries/failovers, and the killed replica left the routable set.
	if met.Retries.Value() == 0 && met.Failovers.Value() == 0 {
		t.Fatal("fault injection produced no retries or failovers — the schedule did not exercise the fleet")
	}
	if met.Requests.With("estimate").Value() != uint64(total) {
		t.Fatalf("router counted %v requests, want %d", met.Requests.With("estimate").Value(), total)
	}
	// Hedge accounting closes: every fired hedge resolved as won or lost.
	fired, won, lost := met.Hedges.With("fired").Value(), met.Hedges.With("won").Value(), met.Hedges.With("lost").Value()
	if fired != won+lost {
		t.Fatalf("hedge accounting leak: fired=%v won=%v lost=%v", fired, won, lost)
	}
	// The killed replica must eventually be marked down.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && router.replicas["r2"].health.State().Routable() {
		time.Sleep(10 * time.Millisecond)
	}
	if router.replicas["r2"].health.State().Routable() {
		t.Fatal("killed replica still routable after the hysteresis window")
	}
	if met.Rebalances.Value() == 0 {
		t.Fatal("killing a replica must register a rebalance")
	}
}

// TestChaosDrainDuringHedge covers the nastiest lifecycle interleaving:
// a replica holds the losing half of a hedged pair (its deep path is
// stalled by an injected delay), and enters drain before that attempt
// resolves. The caller must get exactly one answer, the drain must
// complete, and nothing may leak.
func TestChaosDrainDuringHedge(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// The slow replica stalls every deep call 300ms (context-aware, like
	// a cooperative slow model); the fast one answers immediately.
	slow := newChaosReplica(t, "slow", &serve.FaultConfig{Seed: 1, DelayProb: 1, Delay: 300 * time.Millisecond})
	fast := newChaosReplica(t, "fast", nil)

	reg := telemetry.NewRegistry()
	met := NewMetrics(reg, []string{"slow", "fast"})
	router, err := New(Config{
		Replicas: []Replica{
			{ID: "slow", URL: slow.ts.URL},
			{ID: "fast", URL: fast.ts.URL},
		},
		Planner:        testPlanner,
		HealthInterval: 20 * time.Millisecond,
		RetryAttempts:  1,
		AttemptTimeout: 2 * time.Second,
		HedgeAfter:     20 * time.Millisecond,
		Seed:           3,
		Metrics:        met,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := httptest.NewServer(router)

	// Find a key the slow replica owns, so the hedge (not the primary)
	// must win. Probe ownership via the ring directly — no traffic yet.
	sql := ""
	for k := 0; ; k++ {
		candidate := fmt.Sprintf("q%d", k)
		plans, _ := testPlanner(candidate)
		key := router.cfg.Fingerprint(plans[0], router.cfg.DefaultRes)
		if router.ring.Order(key)[0] == "slow" {
			sql = candidate
			break
		}
	}

	type answer struct {
		status int
		er     serve.EstimateResponse
		err    error
	}
	got := make(chan answer, 2) // room for a double-complete to show up
	body, _ := json.Marshal(serve.EstimateRequest{SQL: sql})
	go func() {
		resp, err := http.Post(rs.URL+"/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			got <- answer{err: err}
			return
		}
		defer resp.Body.Close()
		var er serve.EstimateResponse
		derr := json.NewDecoder(resp.Body).Decode(&er)
		got <- answer{status: resp.StatusCode, er: er, err: derr}
	}()

	// Wait until the hedge has actually fired (the slow replica now holds
	// the doomed primary attempt), then drain the slow replica while that
	// attempt is still in flight.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && met.Hedges.With("fired").Value() == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if met.Hedges.With("fired").Value() == 0 {
		t.Fatal("hedge never fired")
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := slow.handler.Shutdown(drainCtx); err != nil {
		t.Fatalf("drain did not complete while holding a losing hedge: %v", err)
	}

	a := <-got
	if a.err != nil {
		t.Fatalf("caller lost its request: %v", a.err)
	}
	if a.status != http.StatusOK || a.er.Degraded {
		t.Fatalf("answer = status %d %+v, want a clean deep estimate from the hedge", a.status, a.er)
	}
	if won := met.Hedges.With("won").Value(); won != 1 {
		t.Fatalf("hedge won = %v, want 1 (the stalled primary must lose)", won)
	}

	// Exactly one completion: nothing else may arrive on the channel.
	select {
	case extra := <-got:
		t.Fatalf("caller's future completed twice: %+v", extra)
	case <-time.After(100 * time.Millisecond):
	}

	// Tear everything down and require the goroutine census to return to
	// the baseline — a leaked hedge loser or probe loop fails this.
	rs.Close()
	router.Close()
	slow.ts.Close()
	fast.ts.Close()
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
