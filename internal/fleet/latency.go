package fleet

import (
	"sort"
	"time"
)

// latencyTracker estimates a high quantile of recent successful proxy
// latencies — the hedge trigger. A fixed ring buffer over the last
// window of requests adapts to load shifts quickly (old samples age out
// by count, not time), and the quantile is recomputed every
// recomputeEvery observations rather than per request, so the steady
// state costs one mutexed append.
type latencyTracker struct {
	quantile float64

	mu     chan struct{} // 1-buffered semaphore; also guards cached
	window []time.Duration
	n      int // filled entries
	idx    int // next write position
	since  int // observations since the last recompute
	cached time.Duration
}

const recomputeEvery = 32

func newLatencyTracker(size int, quantile float64) *latencyTracker {
	if size <= 0 {
		size = 512
	}
	if quantile <= 0 || quantile >= 1 {
		quantile = 0.99
	}
	t := &latencyTracker{
		quantile: quantile,
		mu:       make(chan struct{}, 1),
		window:   make([]time.Duration, size),
	}
	t.mu <- struct{}{}
	return t
}

// Observe folds one successful request latency into the window.
func (t *latencyTracker) Observe(d time.Duration) {
	<-t.mu
	t.window[t.idx] = d
	t.idx = (t.idx + 1) % len(t.window)
	if t.n < len(t.window) {
		t.n++
	}
	t.since++
	if t.since >= recomputeEvery {
		t.since = 0
		t.cached = t.compute()
	}
	t.mu <- struct{}{}
}

// Quantile returns the tracked quantile of the current window, or 0
// when too few samples have been observed to say anything (callers fall
// back to their configured minimum threshold).
func (t *latencyTracker) Quantile() time.Duration {
	<-t.mu
	if t.cached == 0 && t.n >= 8 {
		t.cached = t.compute()
	}
	q := t.cached
	t.mu <- struct{}{}
	return q
}

// compute sorts a copy of the filled window. Called with the semaphore
// held.
func (t *latencyTracker) compute() time.Duration {
	if t.n < 8 {
		return 0
	}
	tmp := make([]time.Duration, t.n)
	copy(tmp, t.window[:t.n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	i := int(t.quantile * float64(t.n-1))
	return tmp[i]
}
