// Package cardest estimates cardinalities from catalog statistics using
// the textbook assumptions (attribute independence, uniform buckets, join
// containment). These estimates drive the physical planner's choices and
// the GPSJ analytical baseline, and they feed the learned cost models as
// "other features" (Sec. IV-C). They are deliberately imperfect on skewed,
// correlated data — that is precisely the gap learned models exploit.
package cardest

import (
	"fmt"
	"strings"

	"raal/internal/catalog"
	"raal/internal/logical"
	"raal/internal/sql"
)

// Estimator caches per-table statistics for a database.
type Estimator struct {
	db    *catalog.Database
	stats map[string]*catalog.TableStats
}

// New computes statistics for every table of db. buckets controls
// histogram resolution; topK the common-string-value lists.
func New(db *catalog.Database, buckets, topK int) (*Estimator, error) {
	e := &Estimator{db: db, stats: map[string]*catalog.TableStats{}}
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			return nil, err
		}
		ts, err := catalog.ComputeStats(t, buckets, topK)
		if err != nil {
			return nil, fmt.Errorf("cardest: stats for %s: %w", name, err)
		}
		e.stats[name] = ts
	}
	return e, nil
}

// DB returns the underlying database (schemas and data).
func (e *Estimator) DB() *catalog.Database { return e.db }

// TableStats returns the cached stats for a table.
func (e *Estimator) TableStats(name string) (*catalog.TableStats, error) {
	ts, ok := e.stats[name]
	if !ok {
		return nil, fmt.Errorf("cardest: no stats for table %q", name)
	}
	return ts, nil
}

// TableRows returns a table's row count (0 if unknown).
func (e *Estimator) TableRows(name string) float64 {
	if ts, ok := e.stats[name]; ok {
		return float64(ts.Rows)
	}
	return 0
}

// TableBytes returns a table's simulated on-disk size.
func (e *Estimator) TableBytes(name string) float64 {
	if ts, ok := e.stats[name]; ok {
		return float64(ts.SizeBytes)
	}
	return 0
}

// ColumnNDV returns the distinct-value count of table.col (1 if unknown).
func (e *Estimator) ColumnNDV(table, col string) float64 {
	if ts, ok := e.stats[table]; ok {
		if cs, ok := ts.Columns[col]; ok && cs.NDV > 0 {
			return float64(cs.NDV)
		}
	}
	return 1
}

// Selectivity estimates the fraction of a table's rows satisfying pred.
// Unknown constructs fall back to conservative constants.
func (e *Estimator) Selectivity(table string, pred sql.Predicate) float64 {
	ts, ok := e.stats[table]
	if !ok {
		return defaultSel
	}
	col := func(name string) *catalog.ColumnStats { return ts.Columns[name] }

	switch p := pred.(type) {
	case *sql.Comparison:
		cs := col(p.Left.Name)
		if cs == nil {
			return defaultSel
		}
		if p.RightCol != nil {
			// same-table column comparison: 1/max NDV, per the
			// containment assumption applied within a row.
			other := col(p.RightCol.Name)
			ndv := float64(cs.NDV)
			if other != nil && float64(other.NDV) > ndv {
				ndv = float64(other.NDV)
			}
			if ndv < 1 {
				ndv = 1
			}
			return clampSel(1 / ndv)
		}
		if p.Lit.IsStr {
			switch p.Op {
			case sql.OpEq:
				return clampSel(cs.SelectivityEqStr(p.Lit.S))
			case sql.OpNe:
				return clampSel(1 - cs.SelectivityEqStr(p.Lit.S))
			default:
				return defaultSel
			}
		}
		switch p.Op {
		case sql.OpEq:
			return clampSel(cs.SelectivityEqInt(p.Lit.I))
		case sql.OpNe:
			return clampSel(1 - cs.SelectivityEqInt(p.Lit.I))
		case sql.OpLt:
			return clampSel(cs.SelectivityLess(p.Lit.I, false))
		case sql.OpLe:
			return clampSel(cs.SelectivityLess(p.Lit.I, true))
		case sql.OpGt:
			return clampSel(1 - cs.SelectivityLess(p.Lit.I, true))
		case sql.OpGe:
			return clampSel(1 - cs.SelectivityLess(p.Lit.I, false))
		}
		return defaultSel

	case *sql.Between:
		cs := col(p.Col.Name)
		if cs == nil {
			return defaultSel
		}
		return clampSel(cs.SelectivityLess(p.Hi, true) - cs.SelectivityLess(p.Lo, false))

	case *sql.In:
		cs := col(p.Col.Name)
		if cs == nil {
			return defaultSel
		}
		var s float64
		for _, v := range p.Values {
			if v.IsStr {
				s += cs.SelectivityEqStr(v.S)
			} else {
				s += cs.SelectivityEqInt(v.I)
			}
		}
		return clampSel(s)

	case *sql.Like:
		// No string histograms: use the classic heuristics.
		pat := p.Pattern
		switch {
		case !strings.Contains(pat, "%"):
			cs := col(p.Col.Name)
			if cs == nil {
				return defaultSel
			}
			return clampSel(cs.SelectivityEqStr(pat))
		case strings.HasSuffix(pat, "%") && !strings.HasPrefix(pat, "%"):
			return 0.05 // prefix match
		default:
			return 0.1 // contains / suffix match
		}

	case *sql.NullCheck:
		// The synthetic data is NULL-free.
		if p.Not {
			return 1
		}
		return 0
	}
	return defaultSel
}

// FilterSelectivity multiplies per-predicate selectivities under the
// independence assumption.
func (e *Estimator) FilterSelectivity(table string, preds []sql.Predicate) float64 {
	s := 1.0
	for _, p := range preds {
		s *= e.Selectivity(table, p)
	}
	return s
}

// ScanRows estimates output rows of scanning table with preds applied.
func (e *Estimator) ScanRows(table string, preds []sql.Predicate) float64 {
	return e.TableRows(table) * e.FilterSelectivity(table, preds)
}

// JoinRows estimates |L ⋈ R| under the containment assumption:
// |L|·|R| / max(ndv(L.key), ndv(R.key)).
func (e *Estimator) JoinRows(leftRows, rightRows float64, left, right logical.BoundCol) float64 {
	ndv := e.ColumnNDV(left.Table, left.Name)
	if r := e.ColumnNDV(right.Table, right.Name); r > ndv {
		ndv = r
	}
	out := leftRows * rightRows / ndv
	if out < 0 {
		out = 0
	}
	return out
}

// GroupRows estimates the number of groups a GROUP BY produces from
// inputRows: the product of the key columns' NDVs (independence), capped
// by the input cardinality. No keys means one global group.
func (e *Estimator) GroupRows(inputRows float64, cols []logical.BoundCol) float64 {
	if len(cols) == 0 {
		return 1
	}
	ndv := 1.0
	for _, col := range cols {
		ndv *= e.ColumnNDV(col.Table, col.Name)
	}
	if inputRows < ndv {
		return inputRows
	}
	return ndv
}

const defaultSel = 1.0 / 3

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}
