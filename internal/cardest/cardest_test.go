package cardest

import (
	"math"
	"testing"

	"raal/internal/catalog"
	"raal/internal/datagen"
	"raal/internal/logical"
	"raal/internal/sql"
)

func newEstimator(t *testing.T) (*Estimator, *catalog.Database) {
	t.Helper()
	db := datagen.IMDB(0.1, 1)
	e, err := New(db, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	return e, db
}

func col(q, n string) sql.ColumnRef { return sql.ColumnRef{Qualifier: q, Name: n} }

func TestRangeSelectivityTracksTruth(t *testing.T) {
	e, db := newEstimator(t)
	tab, _ := db.Table("title")
	years := tab.IntCol("production_year")

	pred := &sql.Comparison{Left: col("t", "production_year"), Op: sql.OpLt, Lit: sql.IntLit(2000)}
	est := e.Selectivity("title", pred)
	truth := 0
	for _, y := range years {
		if y < 2000 {
			truth++
		}
	}
	truthSel := float64(truth) / float64(len(years))
	if math.Abs(est-truthSel) > 0.1 {
		t.Fatalf("range selectivity est %v truth %v", est, truthSel)
	}
}

func TestEqualitySelectivityHotKeyUsesMCV(t *testing.T) {
	// keyword_id is zipf-skewed: the hottest key's selectivity must come
	// from the MCV list and match the truth, far above 1/NDV.
	e, db := newEstimator(t)
	mk, _ := db.Table("movie_keyword")
	pred := &sql.Comparison{Left: col("mk", "keyword_id"), Op: sql.OpEq, Lit: sql.IntLit(1)}
	est := e.Selectivity("movie_keyword", pred)
	truth := 0
	for _, v := range mk.IntCol("keyword_id") {
		if v == 1 {
			truth++
		}
	}
	truthSel := float64(truth) / float64(mk.NumRows)
	if math.Abs(est-truthSel) > 1e-9 {
		t.Fatalf("hot-key selectivity est %v, truth %v", est, truthSel)
	}
	if est < 3/e.ColumnNDV("movie_keyword", "keyword_id") {
		t.Fatalf("MCV should dominate 1/NDV for the hot key: %v", est)
	}
}

func TestEqualitySelectivityRareKey(t *testing.T) {
	// A key outside the MCV list falls back to uniformity over the rest.
	e, _ := newEstimator(t)
	pred := &sql.Comparison{Left: col("t", "id"), Op: sql.OpEq, Lit: sql.IntLit(5)}
	est := e.Selectivity("title", pred)
	// title.id is unique: every value holds exactly one row.
	rows := e.TableRows("title")
	if math.Abs(est-1/rows) > 1e-9 {
		t.Fatalf("unique-key selectivity %v, want %v", est, 1/rows)
	}
}

func TestEqualityOutOfRangeIsZero(t *testing.T) {
	e, _ := newEstimator(t)
	pred := &sql.Comparison{Left: col("t", "kind_id"), Op: sql.OpEq, Lit: sql.IntLit(99999)}
	if est := e.Selectivity("title", pred); est != 0 {
		t.Fatalf("out-of-range equality selectivity %v, want 0", est)
	}
}

func TestBetweenSelectivity(t *testing.T) {
	e, db := newEstimator(t)
	tab, _ := db.Table("title")
	years := tab.IntCol("production_year")
	pred := &sql.Between{Col: col("t", "production_year"), Lo: 1990, Hi: 2005}
	est := e.Selectivity("title", pred)
	truth := 0
	for _, y := range years {
		if y >= 1990 && y <= 2005 {
			truth++
		}
	}
	if math.Abs(est-float64(truth)/float64(len(years))) > 0.12 {
		t.Fatalf("between est %v truth %v", est, float64(truth)/float64(len(years)))
	}
}

func TestStringEqualityUsesCommonValues(t *testing.T) {
	e, db := newEstimator(t)
	tab, _ := db.Table("company_name")
	codes := tab.StrCol("country_code")
	// Find the most common code.
	freq := map[string]int{}
	for _, c := range codes {
		freq[c]++
	}
	best, bestN := "", 0
	for c, n := range freq {
		if n > bestN {
			best, bestN = c, n
		}
	}
	pred := &sql.Comparison{Left: col("cn", "country_code"), Op: sql.OpEq, Lit: sql.StrLit(best)}
	est := e.Selectivity("company_name", pred)
	truth := float64(bestN) / float64(len(codes))
	if math.Abs(est-truth) > 1e-9 {
		t.Fatalf("common-value selectivity est %v truth %v", est, truth)
	}
}

func TestNullCheckSelectivity(t *testing.T) {
	e, _ := newEstimator(t)
	if s := e.Selectivity("title", &sql.NullCheck{Col: col("t", "id"), Not: true}); s != 1 {
		t.Fatalf("IS NOT NULL selectivity %v", s)
	}
	if s := e.Selectivity("title", &sql.NullCheck{Col: col("t", "id")}); s != 0 {
		t.Fatalf("IS NULL selectivity %v", s)
	}
}

func TestLikeHeuristics(t *testing.T) {
	e, _ := newEstimator(t)
	prefix := e.Selectivity("company_name", &sql.Like{Col: col("cn", "name"), Pattern: "company%"})
	contains := e.Selectivity("company_name", &sql.Like{Col: col("cn", "name"), Pattern: "%pan%"})
	if prefix >= contains {
		t.Fatalf("prefix %v should be more selective than contains %v", prefix, contains)
	}
}

func TestInSumsEqualities(t *testing.T) {
	e, _ := newEstimator(t)
	var sum float64
	for _, v := range []int64{1, 2, 3} {
		sum += e.Selectivity("movie_keyword", &sql.Comparison{
			Left: col("mk", "keyword_id"), Op: sql.OpEq, Lit: sql.IntLit(v)})
	}
	three := e.Selectivity("movie_keyword", &sql.In{Col: col("mk", "keyword_id"),
		Values: []sql.Literal{sql.IntLit(1), sql.IntLit(2), sql.IntLit(3)}})
	if math.Abs(three-sum) > 1e-9 {
		t.Fatalf("IN(3 values) = %v, want sum of equalities %v", three, sum)
	}
}

func TestFilterIndependence(t *testing.T) {
	e, _ := newEstimator(t)
	p1 := &sql.Comparison{Left: col("t", "kind_id"), Op: sql.OpLt, Lit: sql.IntLit(4)}
	p2 := &sql.Comparison{Left: col("t", "production_year"), Op: sql.OpGt, Lit: sql.IntLit(2000)}
	s1 := e.Selectivity("title", p1)
	s2 := e.Selectivity("title", p2)
	both := e.FilterSelectivity("title", []sql.Predicate{p1, p2})
	if math.Abs(both-s1*s2) > 1e-12 {
		t.Fatalf("independence: %v != %v·%v", both, s1, s2)
	}
}

func TestJoinContainment(t *testing.T) {
	e, db := newEstimator(t)
	title, _ := db.Table("title")
	mk, _ := db.Table("movie_keyword")
	l := logical.BoundCol{Alias: "t", Table: "title", Name: "id"}
	r := logical.BoundCol{Alias: "mk", Table: "movie_keyword", Name: "movie_id"}
	est := e.JoinRows(float64(title.NumRows), float64(mk.NumRows), l, r)

	// Truth: every mk row joins exactly one title (FK), so |join| = |mk|.
	truth := float64(mk.NumRows)
	if est < truth*0.3 || est > truth*3 {
		t.Fatalf("join estimate %v too far from truth %v", est, truth)
	}
}

func TestGroupRowsCappedByNDV(t *testing.T) {
	e, _ := newEstimator(t)
	kc := []logical.BoundCol{{Alias: "t", Table: "title", Name: "kind_id"}}
	if g := e.GroupRows(1e6, kc); g != e.ColumnNDV("title", "kind_id") {
		t.Fatalf("groups %v should equal NDV", g)
	}
	if g := e.GroupRows(3, kc); g != 3 {
		t.Fatalf("groups %v should be capped by input rows", g)
	}
	if g := e.GroupRows(100, nil); g != 1 {
		t.Fatalf("global aggregate groups = %v", g)
	}
	two := []logical.BoundCol{
		{Alias: "t", Table: "title", Name: "kind_id"},
		{Alias: "t", Table: "title", Name: "production_year"},
	}
	if g := e.GroupRows(1e9, two); g != e.ColumnNDV("title", "kind_id")*e.ColumnNDV("title", "production_year") {
		t.Fatalf("two-column groups %v should multiply NDVs", g)
	}
}

func TestScanRows(t *testing.T) {
	e, db := newEstimator(t)
	mk, _ := db.Table("movie_keyword")
	rows := e.ScanRows("movie_keyword", nil)
	if rows != float64(mk.NumRows) {
		t.Fatalf("unfiltered scan %v != %d", rows, mk.NumRows)
	}
}

func TestUnknownTable(t *testing.T) {
	e, _ := newEstimator(t)
	if _, err := e.TableStats("ghost"); err == nil {
		t.Fatal("expected error for unknown table")
	}
	if e.TableRows("ghost") != 0 {
		t.Fatal("unknown table rows should be 0")
	}
	if e.ColumnNDV("ghost", "x") != 1 {
		t.Fatal("unknown NDV should be 1")
	}
}
