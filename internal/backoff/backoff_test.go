package backoff

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// randomPolicy draws an arbitrary (possibly degenerate) policy; norm()
// must make every one of them lawful.
func randomPolicy(rng *rand.Rand) Policy {
	durs := []time.Duration{0, time.Microsecond, time.Millisecond,
		10 * time.Millisecond, 100 * time.Millisecond, time.Second, 10 * time.Second}
	return Policy{
		Base:   durs[rng.Intn(len(durs))],
		Cap:    durs[rng.Intn(len(durs))],
		Factor: []float64{0, 0.5, 1, 1.5, 2, 3, 10}[rng.Intn(7)],
	}
}

// Property: Bound is monotone nondecreasing in attempt and never
// exceeds Cap, for every policy shape.
func TestBoundMonotoneAndCapped(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		p := randomPolicy(rng)
		cap := p.norm().Cap
		prev := time.Duration(-1)
		for attempt := 0; attempt < 64; attempt++ {
			b := p.Bound(attempt)
			if b < prev {
				t.Fatalf("policy %+v: Bound(%d)=%v < Bound(%d)=%v (not monotone)",
					p, attempt, b, attempt-1, prev)
			}
			if b > cap {
				t.Fatalf("policy %+v: Bound(%d)=%v exceeds cap %v", p, attempt, b, cap)
			}
			if b <= 0 {
				t.Fatalf("policy %+v: Bound(%d)=%v not positive", p, attempt, b)
			}
			prev = b
		}
		// Growing schedules must saturate exactly at the cap (Factor 1 is
		// a lawful constant schedule and stays at Base).
		if p.norm().Factor > 1 {
			if got := p.Bound(1000); got != cap {
				t.Fatalf("policy %+v: Bound(1000)=%v, want cap %v", p, got, cap)
			}
		}
	}
}

// Property: the jittered delay stays inside [Bound/2, Bound] (and hence
// under the cap) for any uniform draw.
func TestDelayWithinJitterEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		p := randomPolicy(rng)
		attempt := rng.Intn(40)
		b := p.Bound(attempt)
		d := p.Delay(attempt, rng.Float64)
		if d < b/2 || d > b {
			t.Fatalf("policy %+v attempt %d: Delay=%v outside [%v, %v]", p, attempt, d, b/2, b)
		}
		if d > p.norm().Cap {
			t.Fatalf("policy %+v: Delay=%v exceeds cap", p, d)
		}
	}
}

func TestDelayNilRandIsFullBound(t *testing.T) {
	p := Policy{Base: 8 * time.Millisecond, Cap: time.Second, Factor: 2}
	if got, want := p.Delay(2, nil), 32*time.Millisecond; got != want {
		t.Fatalf("Delay(2, nil) = %v, want %v", got, want)
	}
}

// Property: Sleep returns promptly once the context is cancelled, no
// matter how long the requested delay is.
func TestSleepReturnsPromptlyOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Sleep(ctx, time.Hour)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Sleep took %v after cancellation; want prompt return", elapsed)
	}
}

func TestSleepCancelledBeforeCall(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on dead context = %v, want context.Canceled", err)
	}
}

func TestRetryStopsOnSuccess(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 5, Policy{Base: time.Microsecond}, nil,
		func(context.Context) error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Retry = %v, want nil", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
}

func TestRetryReturnsLastError(t *testing.T) {
	want := errors.New("persistent")
	calls := 0
	err := Retry(context.Background(), 4, Policy{Base: time.Microsecond}, nil,
		func(context.Context) error { calls++; return want })
	if !errors.Is(err, want) {
		t.Fatalf("Retry = %v, want %v", err, want)
	}
	if calls != 4 {
		t.Fatalf("fn called %d times, want 4", calls)
	}
}

// Property: a context cancelled mid-backoff aborts the retry loop
// promptly with the context's error, not the fn error.
func TestRetryAbortsMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Retry(ctx, 3, Policy{Base: time.Hour, Cap: time.Hour}, nil,
		func(context.Context) error { return errors.New("transient") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Retry = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Retry took %v after cancellation; want prompt return", elapsed)
	}
}
