// Package backoff is the shared retry-delay policy: capped exponential
// growth with equal jitter, plus a context-aware sleep and a small retry
// driver. The fleet router, and any future client of a flaky dependency,
// use it instead of hand-rolling the same three loops.
//
// The schedule separates the deterministic part from the random part so
// both are testable: Bound(attempt) is the pre-jitter ceiling —
// monotone nondecreasing in attempt and capped at Cap — and
// Delay(attempt) draws uniformly from [Bound/2, Bound] ("equal
// jitter"), which decorrelates retry storms across clients while never
// collapsing the wait to zero.
package backoff

import (
	"context"
	"time"
)

// Default schedule: 10ms, 20ms, 40ms, ... capped at 1s.
const (
	DefaultBase   = 10 * time.Millisecond
	DefaultCap    = time.Second
	DefaultFactor = 2.0
)

// Policy describes a jittered exponential backoff schedule. The zero
// value is usable and means the defaults above.
type Policy struct {
	// Base is the pre-jitter bound for attempt 0.
	Base time.Duration
	// Cap bounds every delay; growth saturates here.
	Cap time.Duration
	// Factor is the per-attempt growth multiple (must be >= 1 to keep
	// Bound monotone; values below 1 are treated as the default).
	Factor float64
}

// norm fills zero fields with the defaults.
func (p Policy) norm() Policy {
	if p.Base <= 0 {
		p.Base = DefaultBase
	}
	if p.Cap <= 0 {
		p.Cap = DefaultCap
	}
	if p.Factor < 1 {
		p.Factor = DefaultFactor
	}
	if p.Base > p.Cap {
		p.Base = p.Cap
	}
	return p
}

// Bound returns the deterministic pre-jitter delay ceiling for the
// 0-based attempt: min(Cap, Base·Factor^attempt). It is monotone
// nondecreasing in attempt and never exceeds Cap — the properties the
// retry loop's liveness argument rests on, and the ones the property
// tests pin.
func (p Policy) Bound(attempt int) time.Duration {
	p = p.norm()
	if attempt < 0 {
		attempt = 0
	}
	d := float64(p.Base)
	cap := float64(p.Cap)
	for i := 0; i < attempt; i++ {
		d *= p.Factor
		if d >= cap {
			return p.Cap
		}
	}
	if d >= cap {
		return p.Cap
	}
	return time.Duration(d)
}

// Delay draws the jittered delay for the attempt: uniform in
// [Bound/2, Bound]. rnd supplies uniform randomness in [0, 1) — pass a
// seeded source for deterministic tests; nil means no jitter (the full
// bound).
func (p Policy) Delay(attempt int, rnd func() float64) time.Duration {
	b := p.Bound(attempt)
	if rnd == nil {
		return b
	}
	half := b / 2
	return half + time.Duration(rnd()*float64(b-half))
}

// Sleep waits for d or until ctx is done, whichever comes first,
// returning ctx.Err() in the latter case. d <= 0 returns immediately
// (after a cancellation check).
func Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Retry runs fn up to attempts times, sleeping the jittered delay
// between failures. It returns nil on the first success, ctx's error as
// soon as the context dies (including mid-sleep), and otherwise the last
// attempt's error. attempts < 1 is treated as 1.
func Retry(ctx context.Context, attempts int, p Policy, rnd func() float64, fn func(context.Context) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = fn(ctx); err == nil {
			return nil
		}
		if i == attempts-1 {
			break
		}
		if serr := Sleep(ctx, p.Delay(i, rnd)); serr != nil {
			return serr
		}
	}
	return err
}
