package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPerfectPrediction(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	r, err := Evaluate(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.RE != 0 || r.MSE != 0 {
		t.Fatalf("perfect prediction should have zero error: %v", r)
	}
	if math.Abs(r.COR-1) > 1e-12 || math.Abs(r.R2-1) > 1e-12 {
		t.Fatalf("perfect prediction should have COR=R2=1: %v", r)
	}
}

func TestKnownValues(t *testing.T) {
	actual := []float64{2, 4}
	est := []float64{1, 5}
	// RE = (|2-1|/2 + |4-5|/4)/2 = (0.5+0.25)/2 = 0.375
	if re := RelativeError(actual, est); math.Abs(re-0.375) > 1e-12 {
		t.Fatalf("RE = %v", re)
	}
	// MSE = (1+1)/2 = 1
	if m := MSE(actual, est); m != 1 {
		t.Fatalf("MSE = %v", m)
	}
}

func TestCorrelationInvariantToScale(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64() * 100
			b[i] = a[i]*3 + 7 + rng.NormFloat64()
		}
		c1 := Correlation(a, b)
		scaled := make([]float64, n)
		for i := range b {
			scaled[i] = b[i]*10 - 50
		}
		c2 := Correlation(a, scaled)
		return math.Abs(c1-c2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelationRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		c := Correlation(a, b)
		return c >= -1.0000001 && c <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	if c := Correlation(a, b); math.Abs(c+1) > 1e-12 {
		t.Fatalf("COR = %v, want -1", c)
	}
}

func TestConstantSeriesCorrelationZero(t *testing.T) {
	if c := Correlation([]float64{1, 1, 1}, []float64{1, 2, 3}); c != 0 {
		t.Fatalf("constant actual should give COR 0, got %v", c)
	}
}

func TestR2MeanPredictorIsZero(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	est := []float64{3, 3, 3, 3, 3}
	if r := R2(a, est); math.Abs(r) > 1e-12 {
		t.Fatalf("mean predictor R2 = %v, want 0", r)
	}
}

func TestR2WorseThanMeanIsNegative(t *testing.T) {
	a := []float64{1, 2, 3}
	est := []float64{30, -10, 99}
	if r := R2(a, est); r >= 0 {
		t.Fatalf("terrible predictor R2 = %v, want negative", r)
	}
}

func TestRESkipsZeroActuals(t *testing.T) {
	if re := RelativeError([]float64{0, 2}, []float64{5, 3}); math.Abs(re-0.5) > 1e-12 {
		t.Fatalf("RE = %v, want 0.5", re)
	}
}

func TestQError(t *testing.T) {
	// q-errors: max(4/2,...) = 2 and max(9/3) = 3 → mean 2.5
	q := QErrorMean([]float64{2, 9}, []float64{4, 3})
	if math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("QError = %v", q)
	}
	if q := QErrorMean([]float64{0}, []float64{1}); q != 0 {
		t.Fatalf("all-skipped QError = %v", q)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(nil, nil); err == nil {
		t.Fatal("empty slices should error")
	}
	if _, err := Evaluate([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestBetterModelScoresBetterOnAllMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 200
	actual := make([]float64, n)
	good := make([]float64, n)
	bad := make([]float64, n)
	for i := range actual {
		actual[i] = 10 + rng.Float64()*90
		good[i] = actual[i] * (1 + rng.NormFloat64()*0.05)
		bad[i] = actual[i] * (1 + rng.NormFloat64()*0.5)
	}
	rg, _ := Evaluate(actual, good)
	rb, _ := Evaluate(actual, bad)
	if rg.RE >= rb.RE || rg.MSE >= rb.MSE {
		t.Fatalf("good model should have lower errors: %v vs %v", rg, rb)
	}
	if rg.COR <= rb.COR || rg.R2 <= rb.R2 {
		t.Fatalf("good model should have higher fit: %v vs %v", rg, rb)
	}
}
