package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// positivePair draws a random (actual, estimated) slice pair with strictly
// positive entries — the domain QErrorMean actually scores.
func positivePair(rng *rand.Rand, n int) (actual, estimated []float64) {
	actual = make([]float64, n)
	estimated = make([]float64, n)
	for i := range actual {
		// Log-uniform over ~9 orders of magnitude to exercise the
		// heavy-tailed cost range.
		actual[i] = math.Exp(rng.Float64()*20 - 10)
		estimated[i] = math.Exp(rng.Float64()*20 - 10)
	}
	return actual, estimated
}

// Property: q-error is symmetric in its arguments — max(a/e, e/a) does not
// care which side is the truth.
func TestQErrorMeanSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		actual, estimated := positivePair(rng, 1+rng.Intn(40))
		ab := QErrorMean(actual, estimated)
		ba := QErrorMean(estimated, actual)
		if ab != ba {
			t.Fatalf("trial %d: QErrorMean(a,e)=%v != QErrorMean(e,a)=%v", trial, ab, ba)
		}
	}
}

// Property: every per-pair q-error is max of a ratio and its reciprocal,
// so the mean over any valid pair set is at least 1 — and exactly 1 only
// for perfect predictions.
func TestQErrorMeanAtLeastOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		actual, estimated := positivePair(rng, 1+rng.Intn(40))
		if q := QErrorMean(actual, estimated); q < 1 {
			t.Fatalf("trial %d: QErrorMean=%v < 1", trial, q)
		}
	}
	perfect := []float64{0.25, 1, 3, 1e6}
	if q := QErrorMean(perfect, perfect); q != 1 {
		t.Fatalf("perfect prediction: QErrorMean=%v, want exactly 1", q)
	}
}

// Property: non-positive pairs are skipped, so appending any number of
// them leaves the mean unchanged.
func TestQErrorMeanIgnoresNonPositivePairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	junk := [][2]float64{{0, 5}, {5, 0}, {-1, 2}, {2, -3}, {0, 0}, {-4, -4}}
	for trial := 0; trial < 200; trial++ {
		actual, estimated := positivePair(rng, 1+rng.Intn(40))
		want := QErrorMean(actual, estimated)
		for k := 0; k < 1+rng.Intn(len(junk)); k++ {
			p := junk[rng.Intn(len(junk))]
			actual = append(actual, p[0])
			estimated = append(estimated, p[1])
		}
		if got := QErrorMean(actual, estimated); got != want {
			t.Fatalf("trial %d: appending non-positive pairs changed QErrorMean %v → %v", trial, want, got)
		}
	}
	if q := QErrorMean([]float64{0, -1}, []float64{1, 2}); q != 0 {
		t.Fatalf("all pairs skipped: QErrorMean=%v, want 0", q)
	}
}

func TestEvaluateRejectsNonFinite(t *testing.T) {
	cases := []struct {
		name              string
		actual, estimated []float64
	}{
		{"nan actual", []float64{1, math.NaN()}, []float64{1, 2}},
		{"inf actual", []float64{math.Inf(1), 2}, []float64{1, 2}},
		{"nan estimated", []float64{1, 2}, []float64{math.NaN(), 2}},
		{"neg inf estimated", []float64{1, 2}, []float64{1, math.Inf(-1)}},
	}
	for _, tc := range cases {
		if _, err := Evaluate(tc.actual, tc.estimated); err == nil {
			t.Errorf("%s: Evaluate accepted non-finite input", tc.name)
		}
	}
	if _, err := Evaluate([]float64{1, 2}, []float64{1.5, 2.5}); err != nil {
		t.Errorf("finite input rejected: %v", err)
	}
}
