// Package metrics implements the paper's evaluation metrics (Sec. V-A,
// Eqs. 12–15): relative error, mean squared error, Pearson correlation,
// and the coefficient of determination.
package metrics

import (
	"fmt"
	"math"
)

// Result bundles all four metrics for one evaluation.
type Result struct {
	RE  float64 // relative error (Eq. 12)
	MSE float64 // mean squared error (Eq. 13)
	COR float64 // Pearson correlation (Eq. 14)
	R2  float64 // coefficient of determination (Eq. 15)
}

func (r Result) String() string {
	return fmt.Sprintf("RE=%.4f MSE=%.4f COR=%.4f R2=%.4f", r.RE, r.MSE, r.COR, r.R2)
}

// Evaluate computes all metrics of estimated vs actual. Slices must be the
// same non-zero length and finite throughout: a NaN or ±Inf anywhere would
// silently poison every aggregate, so it is rejected with an error naming
// the first offending slice, index, and value instead.
func Evaluate(actual, estimated []float64) (Result, error) {
	if len(actual) == 0 || len(actual) != len(estimated) {
		return Result{}, fmt.Errorf("metrics: need equal non-empty slices, got %d and %d", len(actual), len(estimated))
	}
	for i := range actual {
		if v := actual[i]; math.IsNaN(v) || math.IsInf(v, 0) {
			return Result{}, fmt.Errorf("metrics: actual[%d] is %v; all costs must be finite", i, v)
		}
		if v := estimated[i]; math.IsNaN(v) || math.IsInf(v, 0) {
			return Result{}, fmt.Errorf("metrics: estimated[%d] is %v; all costs must be finite", i, v)
		}
	}
	return Result{
		RE:  RelativeError(actual, estimated),
		MSE: MSE(actual, estimated),
		COR: Correlation(actual, estimated),
		R2:  R2(actual, estimated),
	}, nil
}

// RelativeError is the mean of |ac−es| / ac (Eq. 12). Samples with zero
// actual cost are skipped.
func RelativeError(actual, estimated []float64) float64 {
	var sum float64
	n := 0
	for i, ac := range actual {
		if ac == 0 {
			continue
		}
		sum += math.Abs(ac-estimated[i]) / ac
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MSE is the mean squared error (Eq. 13).
func MSE(actual, estimated []float64) float64 {
	var sum float64
	for i, ac := range actual {
		d := ac - estimated[i]
		sum += d * d
	}
	return sum / float64(len(actual))
}

// Correlation is the Pearson correlation coefficient (Eq. 14); 0 when
// either side is constant.
func Correlation(actual, estimated []float64) float64 {
	ma, me := mean(actual), mean(estimated)
	var cov, va, ve float64
	for i := range actual {
		da, de := actual[i]-ma, estimated[i]-me
		cov += da * de
		va += da * da
		ve += de * de
	}
	if va == 0 || ve == 0 {
		return 0
	}
	return cov / (math.Sqrt(va) * math.Sqrt(ve))
}

// R2 is the coefficient of determination (Eq. 15); it can be negative for
// models worse than predicting the mean.
func R2(actual, estimated []float64) float64 {
	ma := mean(actual)
	var ssRes, ssTot float64
	for i := range actual {
		d := actual[i] - estimated[i]
		ssRes += d * d
		t := actual[i] - ma
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// QErrorMean is the mean q-error max(ac/es, es/ac), a standard cardinality
// and cost estimation metric; zero-valued pairs are skipped.
func QErrorMean(actual, estimated []float64) float64 {
	var sum float64
	n := 0
	for i, ac := range actual {
		es := estimated[i]
		if ac <= 0 || es <= 0 {
			continue
		}
		q := ac / es
		if es > ac {
			q = es / ac
		}
		sum += q
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
