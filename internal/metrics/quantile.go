package metrics

import (
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation between order statistics (the R-7/NumPy default). xs is
// not modified. NaN for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// qErrorEps regularizes q-error ratios near zero: predicted costs are
// clamped non-negative by the decode transform, and a pair of
// near-identical tiny values must read as "no disagreement", not as an
// unbounded ratio.
const qErrorEps = 1e-9

// QErrorDeltas returns, for each pair, the q-error of got against ref
// minus one: max((got+ε)/(ref+ε), (ref+ε)/(got+ε)) − 1. A delta of 0
// means got agrees with ref exactly; 0.05 means it is off by 5% in ratio
// terms. This is the accuracy-gate statistic for quantized inference,
// where ref holds the float64 predictions. Slices must have equal length
// and non-negative entries (both are cost predictions).
func QErrorDeltas(ref, got []float64) []float64 {
	deltas := make([]float64, len(ref))
	for i, r := range ref {
		g := got[i]
		num, den := g+qErrorEps, r+qErrorEps
		if den > num {
			num, den = den, num
		}
		deltas[i] = num/den - 1
	}
	return deltas
}
