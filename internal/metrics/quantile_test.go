package metrics

import (
	"math"
	"testing"
)

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose; must not be mutated
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v, want 4", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Fatalf("median = %v, want 2.5", got)
	}
	if got := Quantile(xs, 0.9); math.Abs(got-3.7) > 1e-12 {
		t.Fatalf("p90 = %v, want 3.7", got)
	}
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestQErrorDeltas(t *testing.T) {
	ref := []float64{2, 1, 0}
	got := []float64{2, 2, 0}
	d := QErrorDeltas(ref, got)
	if d[0] != 0 {
		t.Fatalf("identical pair delta = %v, want 0", d[0])
	}
	if math.Abs(d[1]-1) > 1e-6 {
		t.Fatalf("2x pair delta = %v, want ~1", d[1])
	}
	if d[2] != 0 {
		t.Fatalf("both-zero pair delta = %v, want 0 (epsilon guard)", d[2])
	}
}
