package nn

import (
	"math/rand"

	"raal/internal/autodiff"
	"raal/internal/tensor"
)

// LSTM is a single-layer Long Short-Term Memory network. It is the plan
// feature layer of the paper's RAAL model (Sec. IV-D, Eqs. 2-7): at each
// step the gates are computed from the current input and the previous
// hidden state, the cell state carries long-range information, and the
// hidden state is the layer's output.
//
// Weights are packed per gate in the order [input, forget, cell, output]:
// Wx is in×4h, Wh is h×4h, and B is 1×4h.
type LSTM struct {
	In, Hidden int
	Wx, Wh, B  *Param
}

// NewLSTM returns an LSTM with Xavier-initialized weights and the
// customary +1 forget-gate bias, which keeps early training stable.
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	b := tensor.New(1, 4*hidden)
	for j := hidden; j < 2*hidden; j++ {
		b.Data[j] = 1 // forget gate bias
	}
	return &LSTM{
		In:     in,
		Hidden: hidden,
		Wx:     NewParam(name+".Wx", Xavier(in, 4*hidden, rng)),
		Wh:     NewParam(name+".Wh", Xavier(hidden, 4*hidden, rng)),
		B:      NewParam(name+".b", b),
	}
}

// State carries the recurrent hidden and cell activations (batch×hidden).
type State struct {
	H, C *autodiff.Var
}

// ZeroState returns an all-zero initial state for the given batch size.
// The state matrices come from the tape's arena, so reused tapes allocate
// nothing here.
func (l *LSTM) ZeroState(tp *autodiff.Tape, batch int) State {
	return State{
		H: tp.Const(tp.NewMatrix(batch, l.Hidden)),
		C: tp.Const(tp.NewMatrix(batch, l.Hidden)),
	}
}

// gateBias holds the per-gate views of the packed 1×4h bias, sliced once
// per sequence so every timestep can use the fused bias+activation kernel.
type gateBias struct {
	i, f, g, o *autodiff.Var
}

func (l *LSTM) biasSlices(tp *autodiff.Tape) gateBias {
	h := l.Hidden
	return gateBias{
		i: tp.SliceCols(l.B.Var, 0, h),
		f: tp.SliceCols(l.B.Var, h, 2*h),
		g: tp.SliceCols(l.B.Var, 2*h, 3*h),
		o: tp.SliceCols(l.B.Var, 3*h, 4*h),
	}
}

// Step advances the recurrence one timestep with input x (batch×in).
func (l *LSTM) Step(tp *autodiff.Tape, x *autodiff.Var, s State) State {
	return l.step(tp, x, s, l.biasSlices(tp))
}

// step is Step with the bias views hoisted out: it forms the packed
// pre-activation z = x·Wx + h·Wh and hands it to gates.
func (l *LSTM) step(tp *autodiff.Tape, x *autodiff.Var, s State, b gateBias) State {
	z := tp.Add(tp.MatMul(x, l.Wx.Var), tp.MatMul(s.H, l.Wh.Var))
	return l.gates(tp, z, s, b)
}

// gates computes each gate as act(slice(z) + b_gate) through the fused
// kernel and advances the cell/hidden state. Slicing the pre-activation
// before adding the bias is bit-identical to the former slice-after-AddRow
// formulation — the same two addends meet in the same single addition —
// while touching each gate's quarter of the matrix once.
func (l *LSTM) gates(tp *autodiff.Tape, z *autodiff.Var, s State, b gateBias) State {
	h := l.Hidden
	i := tp.AddRowApply(tp.SliceCols(z, 0, h), b.i, autodiff.ActSigmoid)
	f := tp.AddRowApply(tp.SliceCols(z, h, 2*h), b.f, autodiff.ActSigmoid)
	g := tp.AddRowApply(tp.SliceCols(z, 2*h, 3*h), b.g, autodiff.ActTanh)
	o := tp.AddRowApply(tp.SliceCols(z, 3*h, 4*h), b.o, autodiff.ActSigmoid)
	c := tp.Add(tp.Mul(f, s.C), tp.Mul(i, g))
	return State{H: tp.Mul(o, tp.Tanh(c)), C: c}
}

// Forward runs the recurrence over a sequence of batch×in inputs and
// returns the hidden state after each step.
func (l *LSTM) Forward(tp *autodiff.Tape, xs []*autodiff.Var) []*autodiff.Var {
	if len(xs) == 0 {
		return nil
	}
	b := l.biasSlices(tp)
	s := l.ZeroState(tp, xs[0].Value.Rows)
	hs := make([]*autodiff.Var, len(xs))
	for t, x := range xs {
		s = l.step(tp, x, s, b)
		hs[t] = s.H
	}
	return hs
}

// ForwardStacked runs the recurrence over a sequence given as one stacked
// (steps·batch)×in matrix whose row block t·batch..(t+1)·batch is the
// step-t input. The input projection for every timestep is computed as a
// single stacked matmul X·Wx up front — one large kernel call instead of
// `steps` small ones — and each step adds its row window to the recurrent
// term via AddRowsAt. Hidden states are bit-identical to Forward's: each
// element is the same dot product followed by the same single addition,
// and the matmul kernels are bit-stable across batch dimensions.
func (l *LSTM) ForwardStacked(tp *autodiff.Tape, x *autodiff.Var, steps int) []*autodiff.Var {
	if steps == 0 {
		return nil
	}
	batch := x.Value.Rows / steps
	zx := tp.MatMul(x, l.Wx.Var)
	b := l.biasSlices(tp)
	s := l.ZeroState(tp, batch)
	hs := make([]*autodiff.Var, steps)
	for t := 0; t < steps; t++ {
		z := tp.AddRowsAt(zx, t*batch, tp.MatMul(s.H, l.Wh.Var))
		s = l.gates(tp, z, s, b)
		hs[t] = s.H
	}
	return hs
}

// Params returns the LSTM's trainable parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// ShareWeights returns a replica that reads the same weight matrices but
// accumulates gradients into its own buffers (see Param.Shadow).
func (l *LSTM) ShareWeights() *LSTM {
	return &LSTM{In: l.In, Hidden: l.Hidden, Wx: l.Wx.Shadow(), Wh: l.Wh.Shadow(), B: l.B.Shadow()}
}
