package nn

import (
	"fmt"
	"math/rand"

	"raal/internal/autodiff"
	"raal/internal/tensor"
)

// Activation selects the non-linearity applied by a Dense layer.
type Activation int

// Supported activations.
const (
	Linear Activation = iota
	ReLU
	Tanh
	Sigmoid
	LeakyReLU
)

func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	case LeakyReLU:
		return "leakyrelu"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func applyActivation(tp *autodiff.Tape, x *autodiff.Var, a Activation) *autodiff.Var {
	switch a {
	case Linear:
		return x
	case ReLU:
		return tp.ReLU(x)
	case Tanh:
		return tp.Tanh(x)
	case Sigmoid:
		return tp.Sigmoid(x)
	case LeakyReLU:
		return tp.LeakyReLU(x, 0.01)
	default:
		panic("nn: unknown activation " + a.String())
	}
}

// fusedAct maps an Activation to the autodiff fused bias+activation kernel,
// when one exists. LeakyReLU is the only activation without a fused form
// (it carries a slope parameter); layers fall back to the unfused pair.
func fusedAct(a Activation) (autodiff.ActFn, bool) {
	switch a {
	case Linear:
		return autodiff.ActIdentity, true
	case ReLU:
		return autodiff.ActReLU, true
	case Tanh:
		return autodiff.ActTanh, true
	case Sigmoid:
		return autodiff.ActSigmoid, true
	}
	return 0, false
}

// biasAct computes act(z + b) for a batch×n pre-activation z and 1×n bias,
// using the fused kernel when the activation supports it.
func biasAct(tp *autodiff.Tape, z *autodiff.Var, b *Param, act Activation) *autodiff.Var {
	if f, ok := fusedAct(act); ok {
		return tp.AddRowApply(z, b.Var, f)
	}
	return applyActivation(tp, tp.AddRow(z, b.Var), act)
}

// Dense is a fully connected layer: act(x·W + b).
type Dense struct {
	W, B *Param
	Act  Activation
}

// NewDense returns a Dense layer with Xavier-initialized weights. The name
// prefixes its parameter names so models can be serialized.
func NewDense(name string, in, out int, act Activation, rng *rand.Rand) *Dense {
	return &Dense{
		W:   NewParam(name+".W", Xavier(in, out, rng)),
		B:   NewParam(name+".b", tensor.New(1, out)),
		Act: act,
	}
}

// Forward applies the layer to a batch×in input and returns batch×out.
func (d *Dense) Forward(tp *autodiff.Tape, x *autodiff.Var) *autodiff.Var {
	return biasAct(tp, tp.MatMul(x, d.W.Var), d.B, d.Act)
}

// Params returns the layer's trainable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ShareWeights returns a replica that reads the same weight matrices but
// accumulates gradients into its own buffers (see Param.Shadow).
func (d *Dense) ShareWeights() *Dense {
	return &Dense{W: d.W.Shadow(), B: d.B.Shadow(), Act: d.Act}
}

// MLP is a stack of Dense layers.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds a multi-layer perceptron with the given layer sizes
// (len(sizes) ≥ 2). Hidden layers use hiddenAct; the output layer is linear.
func NewMLP(name string, sizes []int, hiddenAct Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		act := hiddenAct
		if i+2 == len(sizes) {
			act = Linear
		}
		m.Layers = append(m.Layers, NewDense(fmt.Sprintf("%s.%d", name, i), sizes[i], sizes[i+1], act, rng))
	}
	return m
}

// Forward applies every layer in order.
func (m *MLP) Forward(tp *autodiff.Tape, x *autodiff.Var) *autodiff.Var {
	for _, l := range m.Layers {
		x = l.Forward(tp, x)
	}
	return x
}

// Params returns all trainable parameters.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ShareWeights returns a replica that reads the same weight matrices but
// accumulates gradients into its own buffers (see Param.Shadow).
func (m *MLP) ShareWeights() *MLP {
	r := &MLP{Layers: make([]*Dense, len(m.Layers))}
	for i, l := range m.Layers {
		r.Layers[i] = l.ShareWeights()
	}
	return r
}
