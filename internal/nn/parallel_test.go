package nn

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"

	"raal/internal/autodiff"
	"raal/internal/tensor"
)

func TestLoadTruncatedValues(t *testing.T) {
	// Hand-build a snapshot whose flat value slice is shorter than
	// Rows*Cols; before validation this silently loaded partial weights.
	s := snapshot{
		Names:  []string{"d.W"},
		Rows:   []int{2},
		Cols:   []int{3},
		Values: [][]float64{{1, 2, 3, 4}}, // want 6
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		t.Fatal(err)
	}
	p := NewParam("d.W", tensor.New(2, 3))
	err := Load(&buf, []*Param{p})
	if err == nil {
		t.Fatal("expected truncated-snapshot error")
	}
	if !strings.Contains(err.Error(), "d.W") {
		t.Fatalf("error should name the parameter: %v", err)
	}
	for _, v := range p.Value().Data {
		if v != 0 {
			t.Fatalf("weights must not be partially loaded, got %v", p.Value().Data)
		}
	}
}

func TestLoadInconsistentSnapshot(t *testing.T) {
	// A snapshot whose parallel slices disagree must error, not panic.
	s := snapshot{
		Names:  []string{"a", "b"},
		Rows:   []int{1},
		Cols:   []int{1},
		Values: [][]float64{{1}},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		t.Fatal(err)
	}
	p := NewParam("a", tensor.New(1, 1))
	if err := Load(&buf, []*Param{p}); err == nil {
		t.Fatal("expected corrupt-snapshot error")
	}
}

func TestShadowSharesWeightsNotGrads(t *testing.T) {
	p := NewParam("w", tensor.FromSlice(1, 2, []float64{1, 2}))
	sh := p.Shadow()
	if sh.Var.Value != p.Var.Value {
		t.Fatal("shadow must share the weight matrix")
	}
	if sh.Name != p.Name {
		t.Fatal("shadow must keep the parameter name")
	}
	// Gradients accumulated through the shadow must not touch the base.
	tp := autodiff.NewTape()
	loss := tp.SumAll(tp.Scale(sh.Var, 3))
	tp.Backward(loss)
	if p.Var.Grad != nil {
		t.Fatal("base gradient must stay untouched by shadow backward")
	}
	if sh.Var.Grad == nil || sh.Var.Grad.Data[0] != 3 {
		t.Fatalf("shadow gradient wrong: %v", sh.Var.Grad)
	}
}

func TestAccumulateGrads(t *testing.T) {
	base := []*Param{
		NewParam("a", tensor.FromSlice(1, 2, []float64{0, 0})),
		NewParam("b", tensor.FromSlice(1, 1, []float64{0})),
	}
	sh := ShadowParams(base)
	sh[0].Var.Grad = tensor.FromSlice(1, 2, []float64{2, 4})
	// sh[1] has no gradient and must be skipped.

	AccumulateGrads(base, sh, 0.5)
	if g := base[0].Var.Grad; g == nil || g.Data[0] != 1 || g.Data[1] != 2 {
		t.Fatalf("merged grad wrong: %v", base[0].Var.Grad)
	}
	if base[1].Var.Grad != nil {
		t.Fatal("gradient-less shadow must be skipped")
	}
	for _, v := range sh[0].Var.Grad.Data {
		if v != 0 {
			t.Fatal("shadow gradient must be cleared after merge")
		}
	}

	// A second ordered merge accumulates on top.
	sh[0].Var.Grad.Data[0], sh[0].Var.Grad.Data[1] = 10, 10
	AccumulateGrads(base, sh, 1)
	if g := base[0].Var.Grad; g.Data[0] != 11 || g.Data[1] != 12 {
		t.Fatalf("second merge wrong: %v", g)
	}
}

func TestShareWeightsLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lstm := NewLSTM("l", 3, 4, rng)
	conv := NewConv1D("c", 3, 4, 3, ReLU, rng)
	mlp := NewMLP("m", []int{3, 4, 1}, ReLU, rng)
	for name, pair := range map[string][2][]*Param{
		"lstm": {lstm.Params(), lstm.ShareWeights().Params()},
		"conv": {conv.Params(), conv.ShareWeights().Params()},
		"mlp":  {mlp.Params(), mlp.ShareWeights().Params()},
	} {
		base, rep := pair[0], pair[1]
		if len(base) != len(rep) {
			t.Fatalf("%s: param count mismatch", name)
		}
		for i := range base {
			if base[i].Name != rep[i].Name {
				t.Fatalf("%s: param order differs at %d: %s vs %s", name, i, base[i].Name, rep[i].Name)
			}
			if base[i].Var.Value != rep[i].Var.Value {
				t.Fatalf("%s: %s does not share weights", name, base[i].Name)
			}
			if base[i].Var == rep[i].Var {
				t.Fatalf("%s: %s shares its gradient accumulator", name, base[i].Name)
			}
		}
	}
}
