// Package nn builds neural-network layers, optimizers, and model
// serialization on top of the autodiff engine. It provides exactly the
// building blocks the paper's deep cost models need: dense layers, an LSTM
// (the plan-feature layer), a 1-D convolution (the RAAC ablation), and Adam.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"raal/internal/autodiff"
	"raal/internal/tensor"
)

// Param is a named trainable matrix. The embedded Var keeps its identity
// across forward passes so gradients accumulate into one place and the
// optimizer can find them.
type Param struct {
	Name string
	Var  *autodiff.Var
}

// NewParam wraps m as a trainable parameter.
func NewParam(name string, m *tensor.Matrix) *Param {
	return &Param{Name: name, Var: (&autodiff.Tape{}).Param(m)}
}

// Value returns the parameter's current weights.
func (p *Param) Value() *tensor.Matrix { return p.Var.Value }

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	if p.Var.Grad != nil {
		p.Var.Grad.Zero()
	}
}

// Xavier returns Glorot-uniform initialized weights for a fanIn×fanOut
// matrix.
func Xavier(fanIn, fanOut int, rng *rand.Rand) *tensor.Matrix {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return tensor.Uniform(fanIn, fanOut, -limit, limit, rng)
}

// ClipGradNorm rescales all parameter gradients so their global L2 norm is
// at most maxNorm. It returns the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		if p.Var.Grad == nil {
			continue
		}
		for _, g := range p.Var.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		s := maxNorm / norm
		for _, p := range params {
			if p.Var.Grad == nil {
				continue
			}
			for i := range p.Var.Grad.Data {
				p.Var.Grad.Data[i] *= s
			}
		}
	}
	return norm
}

// GradNorm returns the global L2 norm of all parameter gradients.
func GradNorm(params []*Param) float64 {
	var sq float64
	for _, p := range params {
		if p.Var.Grad == nil {
			continue
		}
		for _, g := range p.Var.Grad.Data {
			sq += g * g
		}
	}
	return math.Sqrt(sq)
}

// CountParams returns the total number of scalar weights.
func CountParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += len(p.Var.Value.Data)
	}
	return n
}

func checkUniqueNames(params []*Param) error {
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}
