// Package nn builds neural-network layers, optimizers, and model
// serialization on top of the autodiff engine. It provides exactly the
// building blocks the paper's deep cost models need: dense layers, an LSTM
// (the plan-feature layer), a 1-D convolution (the RAAC ablation), and Adam.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"raal/internal/autodiff"
	"raal/internal/tensor"
)

// Param is a named trainable matrix. The embedded Var keeps its identity
// across forward passes so gradients accumulate into one place and the
// optimizer can find them.
type Param struct {
	Name string
	Var  *autodiff.Var
}

// NewParam wraps m as a trainable parameter.
func NewParam(name string, m *tensor.Matrix) *Param {
	return &Param{Name: name, Var: (&autodiff.Tape{}).Param(m)}
}

// Value returns the parameter's current weights.
func (p *Param) Value() *tensor.Matrix { return p.Var.Value }

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	if p.Var.Grad != nil {
		p.Var.Grad.Zero()
	}
}

// Shadow returns a parameter that shares p's weight matrix but owns an
// independent gradient accumulator. Data-parallel training gives each
// shard its own shadow set, so concurrent backward passes never touch the
// same gradient buffer; the shadows are then summed into the base set at a
// barrier (AccumulateGrads), which keeps the reduction ordered and
// deterministic instead of serializing every += behind a mutex.
func (p *Param) Shadow() *Param {
	return &Param{Name: p.Name, Var: (&autodiff.Tape{}).Param(p.Var.Value)}
}

// ShadowParams returns a shadow (shared weights, private gradients) of
// every parameter in params, in the same order.
func ShadowParams(params []*Param) []*Param {
	out := make([]*Param, len(params))
	for i, p := range params {
		out[i] = p.Shadow()
	}
	return out
}

// AccumulateGrads adds scale times each src gradient into the matching dst
// gradient and clears src, leaving the shadow set ready for the next
// shard. dst and src must be parallel slices (same parameters in the same
// order, as produced by ShadowParams); src entries that never accumulated
// a gradient are skipped. Callers merge shards in a fixed order so the
// floating-point reduction — and therefore training — is deterministic
// for any worker count.
func AccumulateGrads(dst, src []*Param, scale float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("nn: AccumulateGrads length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, s := range src {
		if s.Var.Grad == nil {
			continue
		}
		d := dst[i]
		if !d.Var.Value.SameShape(s.Var.Value) {
			panic(fmt.Sprintf("nn: AccumulateGrads shape mismatch for %q", d.Name))
		}
		if d.Var.Grad == nil {
			d.Var.Grad = tensor.New(d.Var.Value.Rows, d.Var.Value.Cols)
		}
		tensor.AxpyInPlace(d.Var.Grad, scale, s.Var.Grad)
		s.ZeroGrad()
	}
}

// Xavier returns Glorot-uniform initialized weights for a fanIn×fanOut
// matrix.
func Xavier(fanIn, fanOut int, rng *rand.Rand) *tensor.Matrix {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return tensor.Uniform(fanIn, fanOut, -limit, limit, rng)
}

// ClipGradNorm rescales all parameter gradients so their global L2 norm is
// at most maxNorm. It returns the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		if p.Var.Grad == nil {
			continue
		}
		for _, g := range p.Var.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		s := maxNorm / norm
		for _, p := range params {
			if p.Var.Grad == nil {
				continue
			}
			for i := range p.Var.Grad.Data {
				p.Var.Grad.Data[i] *= s
			}
		}
	}
	return norm
}

// GradNorm returns the global L2 norm of all parameter gradients.
func GradNorm(params []*Param) float64 {
	var sq float64
	for _, p := range params {
		if p.Var.Grad == nil {
			continue
		}
		for _, g := range p.Var.Grad.Data {
			sq += g * g
		}
	}
	return math.Sqrt(sq)
}

// CountParams returns the total number of scalar weights.
func CountParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += len(p.Var.Value.Data)
	}
	return n
}

func checkUniqueNames(params []*Param) error {
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}
