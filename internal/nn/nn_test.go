package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"raal/internal/autodiff"
	"raal/internal/tensor"
)

// gradCheckModel numerically verifies d(loss)/d(param) for every parameter
// of an arbitrary forward function.
func gradCheckModel(t *testing.T, params []*Param, forward func(tp *autodiff.Tape) *autodiff.Var) {
	t.Helper()
	tp := autodiff.NewTape()
	loss := forward(tp)
	tp.Backward(loss)

	const eps = 1e-6
	for _, p := range params {
		w := p.Var.Value
		analytic := p.Var.Grad
		if analytic == nil {
			analytic = tensor.New(w.Rows, w.Cols)
		}
		for i := range w.Data {
			orig := w.Data[i]
			w.Data[i] = orig + eps
			up := forward(autodiff.NewTape()).Value.Data[0]
			w.Data[i] = orig - eps
			down := forward(autodiff.NewTape()).Value.Data[0]
			w.Data[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-analytic.Data[i]) > 1e-4 {
				t.Fatalf("param %s[%d]: analytic %v numeric %v", p.Name, i, analytic.Data[i], num)
			}
		}
		p.ZeroGrad()
	}
}

func TestDenseGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("d", 3, 2, Tanh, rng)
	x := tensor.Randn(4, 3, 1, rng)
	target := tensor.Randn(4, 2, 1, rng)
	gradCheckModel(t, d.Params(), func(tp *autodiff.Tape) *autodiff.Var {
		return tp.MSE(d.Forward(tp, tp.Const(x)), target)
	})
}

func TestLSTMGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLSTM("l", 3, 4, rng)
	xs := []*tensor.Matrix{
		tensor.Randn(2, 3, 1, rng),
		tensor.Randn(2, 3, 1, rng),
		tensor.Randn(2, 3, 1, rng),
	}
	target := tensor.Randn(2, 4, 1, rng)
	gradCheckModel(t, l.Params(), func(tp *autodiff.Tape) *autodiff.Var {
		ins := make([]*autodiff.Var, len(xs))
		for i, x := range xs {
			ins[i] = tp.Const(x)
		}
		hs := l.Forward(tp, ins)
		return tp.MSE(hs[len(hs)-1], target)
	})
}

func TestConv1DGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv1D("c", 3, 2, 3, Tanh, rng)
	x := tensor.Randn(5, 3, 1, rng)
	target := tensor.Randn(5, 2, 1, rng)
	gradCheckModel(t, c.Params(), func(tp *autodiff.Tape) *autodiff.Var {
		return tp.MSE(c.Forward(tp, tp.Const(x)), target)
	})
}

func TestConv1DOutputShapeAndPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewConv1D("c", 2, 3, 3, Linear, rng)
	x := tensor.Randn(4, 2, 1, rng)
	tp := autodiff.NewTape()
	out := c.Forward(tp, tp.Const(x))
	if out.Value.Rows != 4 || out.Value.Cols != 3 {
		t.Fatalf("shape %dx%d, want 4x3", out.Value.Rows, out.Value.Cols)
	}
	// The first row's window is [0, x0, x1]; verify against direct compute.
	w := c.W.Value()
	var want float64
	for k := 0; k < 2; k++ { // window slots 1 and 2 (slot 0 is padding)
		for j := 0; j < 2; j++ {
			want += x.At(k, j) * w.At((k+1)*2+j, 0)
		}
	}
	want += c.B.Value().At(0, 0)
	if math.Abs(out.Value.At(0, 0)-want) > 1e-12 {
		t.Fatalf("padded conv wrong: got %v want %v", out.Value.At(0, 0), want)
	}
}

func TestConv1DEvenWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for even width")
		}
	}()
	NewConv1D("c", 2, 2, 4, Linear, rand.New(rand.NewSource(1)))
}

func TestMLPOverfitsTinyRegression(t *testing.T) {
	// y = sin(x1) + 0.5·x2 on 16 points: a 2-layer MLP must drive MSE
	// below 1e-3 with Adam.
	rng := rand.New(rand.NewSource(5))
	m := NewMLP("m", []int{2, 16, 1}, Tanh, rng)
	n := 16
	x := tensor.New(n, 2)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, math.Sin(a)+0.5*b)
	}
	opt := NewAdam(0.01)
	var last float64
	for epoch := 0; epoch < 400; epoch++ {
		tp := autodiff.NewTape()
		loss := tp.MSE(m.Forward(tp, tp.Const(x)), y)
		tp.Backward(loss)
		opt.Step(m.Params())
		last = loss.Value.Data[0]
	}
	if last > 1e-3 {
		t.Fatalf("MLP failed to overfit: final MSE %v", last)
	}
}

func TestLSTMLearnsSequenceSum(t *testing.T) {
	// Target: sum of a length-4 scalar sequence. The LSTM must beat the
	// best constant predictor by a wide margin.
	rng := rand.New(rand.NewSource(6))
	l := NewLSTM("l", 1, 8, rng)
	head := NewDense("h", 8, 1, Linear, rng)
	params := append(l.Params(), head.Params()...)
	opt := NewAdam(0.02)

	const batch, steps = 16, 4
	makeBatch := func() ([]*tensor.Matrix, *tensor.Matrix) {
		xs := make([]*tensor.Matrix, steps)
		y := tensor.New(batch, 1)
		for t := 0; t < steps; t++ {
			xs[t] = tensor.New(batch, 1)
		}
		for i := 0; i < batch; i++ {
			var sum float64
			for t := 0; t < steps; t++ {
				v := rng.Float64()*2 - 1
				xs[t].Set(i, 0, v)
				sum += v
			}
			y.Set(i, 0, sum)
		}
		return xs, y
	}
	var last float64
	for iter := 0; iter < 300; iter++ {
		xs, y := makeBatch()
		tp := autodiff.NewTape()
		ins := make([]*autodiff.Var, steps)
		for t, x := range xs {
			ins[t] = tp.Const(x)
		}
		hs := l.Forward(tp, ins)
		pred := head.Forward(tp, hs[steps-1])
		loss := tp.MSE(pred, y)
		tp.Backward(loss)
		ClipGradNorm(params, 5)
		opt.Step(params)
		last = loss.Value.Data[0]
	}
	// Var of sum of 4 U(-1,1) is 4/3; a useful model gets far below that.
	if last > 0.1 {
		t.Fatalf("LSTM failed to learn sequence sum: final MSE %v", last)
	}
}

func TestSGDMomentumDecreasesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP("m", []int{1, 8, 1}, ReLU, rng)
	x := tensor.FromRows([][]float64{{0}, {0.5}, {1}})
	y := tensor.FromRows([][]float64{{1}, {0}, {1}})
	opt := NewSGD(0.05, 0.9)
	first, last := 0.0, 0.0
	for i := 0; i < 200; i++ {
		tp := autodiff.NewTape()
		loss := tp.MSE(m.Forward(tp, tp.Const(x)), y)
		tp.Backward(loss)
		opt.Step(m.Params())
		if i == 0 {
			first = loss.Value.Data[0]
		}
		last = loss.Value.Data[0]
	}
	if last >= first {
		t.Fatalf("SGD made no progress: first %v last %v", first, last)
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("p", tensor.FromRows([][]float64{{1, 1}}))
	tp := autodiff.NewTape()
	v := tp.Scale(p.Var, 10)
	tp.Backward(tp.SumAll(v))
	// grad = [10, 10], norm = 10√2
	pre := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(pre-10*math.Sqrt2) > 1e-9 {
		t.Fatalf("pre-clip norm %v", pre)
	}
	if post := GradNorm([]*Param{p}); math.Abs(post-1) > 1e-9 {
		t.Fatalf("post-clip norm %v", post)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := NewMLP("m", []int{3, 5, 1}, Tanh, rng)
	dst := NewMLP("m", []int{3, 5, 1}, Tanh, rand.New(rand.NewSource(99)))

	var buf bytes.Buffer
	if err := Save(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := Load(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		if !tensor.AllClose(p.Value(), dst.Params()[i].Value(), 0) {
			t.Fatalf("param %s not restored", p.Name)
		}
	}
	// Same inputs must now give identical outputs.
	x := tensor.Randn(2, 3, 1, rng)
	a := src.Forward(autodiff.NewTape(), autodiff.NewTape().Const(x))
	b := dst.Forward(autodiff.NewTape(), autodiff.NewTape().Const(x))
	if !tensor.AllClose(a.Value, b.Value, 0) {
		t.Fatal("restored model predicts differently")
	}
}

func TestLoadShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := NewDense("d", 2, 2, Linear, rng)
	dst := NewDense("d", 2, 3, Linear, rng)
	var buf bytes.Buffer
	if err := Save(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := Load(&buf, dst.Params()); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestLoadMissingParam(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := NewDense("a", 2, 2, Linear, rng)
	dst := NewDense("b", 2, 2, Linear, rng)
	var buf bytes.Buffer
	if err := Save(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := Load(&buf, dst.Params()); err == nil {
		t.Fatal("expected missing-parameter error")
	}
}

func TestSaveDuplicateNames(t *testing.T) {
	p1 := NewParam("same", tensor.New(1, 1))
	p2 := NewParam("same", tensor.New(1, 1))
	var buf bytes.Buffer
	if err := Save(&buf, []*Param{p1, p2}); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestCountParams(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewDense("d", 3, 4, Linear, rng)
	if n := CountParams(d.Params()); n != 3*4+4 {
		t.Fatalf("CountParams = %d, want 16", n)
	}
}

func TestXavierRange(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := Xavier(10, 10, rng)
	limit := math.Sqrt(6.0 / 20.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("xavier value %v outside ±%v", v, limit)
		}
	}
}

func TestForgetGateBiasInit(t *testing.T) {
	l := NewLSTM("l", 2, 3, rand.New(rand.NewSource(13)))
	b := l.B.Value()
	for j := 0; j < 3; j++ {
		if b.At(0, j) != 0 {
			t.Fatal("input gate bias should start at 0")
		}
		if b.At(0, 3+j) != 1 {
			t.Fatal("forget gate bias should start at 1")
		}
	}
}

func TestActivationString(t *testing.T) {
	if Linear.String() != "linear" || ReLU.String() != "relu" {
		t.Fatal("activation names wrong")
	}
}
