package nn

import (
	"math/rand"

	"raal/internal/autodiff"
	"raal/internal/tensor"
)

// Conv1D is a one-dimensional convolution over a sequence of feature rows.
// It backs the RAAC ablation (Sec. V-B), where the paper replaces RAAL's
// LSTM plan-feature layer with a CNN.
//
// Input is an L×in matrix (one row per plan node); output is L×filters with
// "same" zero padding, so downstream attention layers see one row per node
// regardless of which plan-feature layer produced it.
type Conv1D struct {
	In, Filters, Width int
	W                  *Param // (Width·In)×Filters
	B                  *Param // 1×Filters
	Act                Activation
}

// NewConv1D returns a Conv1D layer with an odd kernel width (so "same"
// padding is symmetric) and Xavier-initialized weights.
func NewConv1D(name string, in, filters, width int, act Activation, rng *rand.Rand) *Conv1D {
	if width%2 == 0 {
		panic("nn: Conv1D kernel width must be odd")
	}
	return &Conv1D{
		In:      in,
		Filters: filters,
		Width:   width,
		W:       NewParam(name+".W", Xavier(width*in, filters, rng)),
		B:       NewParam(name+".b", tensor.New(1, filters)),
		Act:     act,
	}
}

// Forward convolves the L×in input and returns L×filters. The receptive
// field of each output row is the Width rows centred on it, with zero
// padding at the sequence boundaries. The window gather is a single
// Im2ColRows op — one record and one matrix for the whole lowering, where
// the per-position RowAt/ConcatCols chain recorded O(L·Width) of each.
func (c *Conv1D) Forward(tp *autodiff.Tape, x *autodiff.Var) *autodiff.Var {
	cols := tp.Im2ColRows(x, c.Width)
	return biasAct(tp, tp.MatMul(cols, c.W.Var), c.B, c.Act)
}

// Params returns the layer's trainable parameters.
func (c *Conv1D) Params() []*Param { return []*Param{c.W, c.B} }

// ShareWeights returns a replica that reads the same weight matrices but
// accumulates gradients into its own buffers (see Param.Shadow).
func (c *Conv1D) ShareWeights() *Conv1D {
	return &Conv1D{In: c.In, Filters: c.Filters, Width: c.Width, W: c.W.Shadow(), B: c.B.Shadow(), Act: c.Act}
}
