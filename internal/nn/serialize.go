package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the on-disk representation of a parameter set.
type snapshot struct {
	Names  []string
	Rows   []int
	Cols   []int
	Values [][]float64
}

// Save writes the parameters to w in gob format. Parameter names must be
// unique; they are the keys used by Load.
func Save(w io.Writer, params []*Param) error {
	if err := checkUniqueNames(params); err != nil {
		return err
	}
	var s snapshot
	for _, p := range params {
		s.Names = append(s.Names, p.Name)
		s.Rows = append(s.Rows, p.Var.Value.Rows)
		s.Cols = append(s.Cols, p.Var.Value.Cols)
		vals := make([]float64, len(p.Var.Value.Data))
		copy(vals, p.Var.Value.Data)
		s.Values = append(s.Values, vals)
	}
	return gob.NewEncoder(w).Encode(&s)
}

// Load reads a parameter snapshot from r and copies the stored weights into
// the matching (by name) parameters. Every parameter in params must be
// present in the snapshot with identical shape.
func Load(r io.Reader, params []*Param) error {
	if err := checkUniqueNames(params); err != nil {
		return err
	}
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("nn: decoding snapshot: %w", err)
	}
	if len(s.Rows) != len(s.Names) || len(s.Cols) != len(s.Names) || len(s.Values) != len(s.Names) {
		return fmt.Errorf("nn: corrupt snapshot: %d names but %d/%d/%d rows/cols/values",
			len(s.Names), len(s.Rows), len(s.Cols), len(s.Values))
	}
	byName := make(map[string]int, len(s.Names))
	for i, n := range s.Names {
		byName[n] = i
	}
	for _, p := range params {
		i, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: snapshot is missing parameter %q", p.Name)
		}
		v := p.Var.Value
		if s.Rows[i] != v.Rows || s.Cols[i] != v.Cols {
			return fmt.Errorf("nn: parameter %q shape %dx%d, snapshot has %dx%d",
				p.Name, v.Rows, v.Cols, s.Rows[i], s.Cols[i])
		}
		if len(s.Values[i]) != s.Rows[i]*s.Cols[i] {
			return fmt.Errorf("nn: parameter %q: snapshot holds %d values for a %dx%d matrix (truncated or corrupt)",
				p.Name, len(s.Values[i]), s.Rows[i], s.Cols[i])
		}
		copy(v.Data, s.Values[i])
	}
	return nil
}
