package nn

import (
	"raal/internal/autodiff"
	"raal/internal/tensor"
)

// This file holds the inference-only reduced-precision snapshots of the
// trainable layers. Each is built post-training from its float64
// counterpart: weights narrow to float32, and — when int8 is requested —
// the large input-projection/dense matrices (the LSTM's Wx "embedding"
// of plan rows, the conv lowering matrix, every Dense W) drop to
// symmetric per-row int8 with the dequantization fused into the matmul.
// Biases and recurrent weights always stay f32: they are small, and the
// recurrence amplifies their error across timesteps.
//
// The snapshots run on autodiff.Tape32 and have no parameters, no
// gradients, and no serialization — quantization is re-derived from the
// float64 model whenever one is loaded or promoted.

// qweight is one weight matrix in either reduced precision: exactly one
// of W (f32) or Q (int8) is set.
type qweight struct {
	W *tensor.Matrix32
	Q *tensor.QMatrix8
}

// newQWeight converts a float64 weight matrix, to int8 when asked.
func newQWeight(m *tensor.Matrix, int8W bool) qweight {
	if int8W {
		return qweight{Q: tensor.Quantize8(m)}
	}
	return qweight{W: tensor.ToMatrix32(m)}
}

// matmul multiplies x by the weight through whichever kernel the
// precision selected.
func (w qweight) matmul(tp *autodiff.Tape32, x *tensor.Matrix32) *tensor.Matrix32 {
	if w.Q != nil {
		return tp.MatMulQ(x, w.Q)
	}
	return tp.MatMul(x, w.W)
}

// actToTensor maps the layer Activation enum onto the tensor fused-kernel
// enum. LeakyReLU has no fused form (it carries a slope) and is handled
// out of line by biasAct32.
func actToTensor(a Activation) (tensor.Act, bool) {
	switch a {
	case Linear:
		return tensor.ActNone, true
	case ReLU:
		return tensor.ActReLU, true
	case Tanh:
		return tensor.ActTanh, true
	case Sigmoid:
		return tensor.ActSigmoid, true
	}
	return tensor.ActNone, false
}

// biasAct32 computes act(z + b) through the fused kernel when possible.
func biasAct32(tp *autodiff.Tape32, z, b *tensor.Matrix32, act Activation) *tensor.Matrix32 {
	if ta, ok := actToTensor(act); ok {
		return tp.AddRowAct(z, b, ta)
	}
	// LeakyReLU: fused bias add, then the leak applied in place on the
	// arena matrix (safe: AddRowAct returned a matrix only we hold).
	out := tp.AddRowAct(z, b, tensor.ActNone)
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0.01 * v
		}
	}
	return out
}

// LSTM32 is an inference-only reduced-precision LSTM snapshot.
type LSTM32 struct {
	In, Hidden int
	Wx         qweight          // in×4h input projection (int8-eligible)
	Wh         *tensor.Matrix32 // h×4h recurrent weights (always f32)
	B          *tensor.Matrix32 // 1×4h packed gate bias (always f32)
}

// NewLSTM32 snapshots a trained LSTM. int8Wx selects the int8 path for
// the input projection.
func NewLSTM32(l *LSTM, int8Wx bool) *LSTM32 {
	return &LSTM32{
		In:     l.In,
		Hidden: l.Hidden,
		Wx:     newQWeight(l.Wx.Value(), int8Wx),
		Wh:     tensor.ToMatrix32(l.Wh.Value()),
		B:      tensor.ToMatrix32(l.B.Value()),
	}
}

// ForwardStacked mirrors LSTM.ForwardStacked on the f32 tape: one stacked
// input projection up front, then per step one recurrent matmul and one
// fused cell kernel (Tape32.LSTMCell) in place of the float64 path's
// slice/activation/elementwise chain.
func (l *LSTM32) ForwardStacked(tp *autodiff.Tape32, x *tensor.Matrix32, steps int) []*tensor.Matrix32 {
	if steps == 0 {
		return nil
	}
	h := l.Hidden
	batch := x.Rows / steps
	zx := l.Wx.matmul(tp, x)
	sh := tp.NewMatrix(batch, h)
	sc := tp.NewMatrix(batch, h)
	hs := make([]*tensor.Matrix32, steps)
	for t := 0; t < steps; t++ {
		z := tp.MatMulAddRows(zx, t*batch, sh, l.Wh)
		sh = tp.LSTMCell(z, l.B, sc)
		hs[t] = sh
	}
	return hs
}

// Dense32 is an inference-only reduced-precision Dense snapshot.
type Dense32 struct {
	W   qweight
	B   *tensor.Matrix32
	Act Activation
}

// NewDense32 snapshots a trained Dense layer.
func NewDense32(d *Dense, int8W bool) *Dense32 {
	return &Dense32{W: newQWeight(d.W.Value(), int8W), B: tensor.ToMatrix32(d.B.Value()), Act: d.Act}
}

// Forward applies the layer to a batch×in input.
func (d *Dense32) Forward(tp *autodiff.Tape32, x *tensor.Matrix32) *tensor.Matrix32 {
	return biasAct32(tp, d.W.matmul(tp, x), d.B, d.Act)
}

// MLP32 is an inference-only reduced-precision MLP snapshot.
type MLP32 struct {
	Layers []*Dense32
}

// NewMLP32 snapshots a trained MLP; int8W applies to every layer.
func NewMLP32(m *MLP, int8W bool) *MLP32 {
	r := &MLP32{Layers: make([]*Dense32, len(m.Layers))}
	for i, l := range m.Layers {
		r.Layers[i] = NewDense32(l, int8W)
	}
	return r
}

// Forward applies every layer in order.
func (m *MLP32) Forward(tp *autodiff.Tape32, x *tensor.Matrix32) *tensor.Matrix32 {
	for _, l := range m.Layers {
		x = l.Forward(tp, x)
	}
	return x
}

// Conv32 is an inference-only reduced-precision Conv1D snapshot.
type Conv32 struct {
	In, Filters, Width int
	W                  qweight
	B                  *tensor.Matrix32
	Act                Activation
}

// NewConv32 snapshots a trained Conv1D.
func NewConv32(c *Conv1D, int8W bool) *Conv32 {
	return &Conv32{
		In:      c.In,
		Filters: c.Filters,
		Width:   c.Width,
		W:       newQWeight(c.W.Value(), int8W),
		B:       tensor.ToMatrix32(c.B.Value()),
		Act:     c.Act,
	}
}

// Forward mirrors Conv1D.Forward: Im2ColRows lowering, one matmul, fused
// bias+activation.
func (c *Conv32) Forward(tp *autodiff.Tape32, x *tensor.Matrix32) *tensor.Matrix32 {
	cols := tp.Im2ColRows(x, c.Width)
	return biasAct32(tp, c.W.matmul(tp, cols), c.B, c.Act)
}
