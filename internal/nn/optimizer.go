package nn

import (
	"fmt"
	"math"

	"raal/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients and then
// clears the gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velocity map[*Param]*tensor.Matrix
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param]*tensor.Matrix)}
}

// Step applies one SGD update and zeroes the gradients.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		g := p.Var.Grad
		if g == nil {
			continue
		}
		w := p.Var.Value
		if s.Momentum > 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(w.Rows, w.Cols)
				s.velocity[p] = v
			}
			for i := range w.Data {
				v.Data[i] = s.Momentum*v.Data[i] - s.LR*g.Data[i]
				w.Data[i] += v.Data[i]
			}
		} else {
			for i := range w.Data {
				w.Data[i] -= s.LR * g.Data[i]
			}
		}
		p.ZeroGrad()
	}
}

// Adam implements the Adam optimizer (Kingma & Ba, 2015), the paper's
// training algorithm of choice for all learned cost models.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*Param]*tensor.Matrix
	v map[*Param]*tensor.Matrix
}

// NewAdam returns an Adam optimizer with the usual defaults for any zero
// hyperparameter (lr=0.001, β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	if lr == 0 {
		lr = 1e-3
	}
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Matrix),
		v: make(map[*Param]*tensor.Matrix),
	}
}

// AdamState is the serializable optimizer state: the step counter and the
// first/second moment vectors keyed by parameter name. Together with the
// weights it is everything Adam needs to continue a run as if it had
// never stopped — see Export/Restore and core.TrainState.
type AdamState struct {
	T    int
	M, V map[string][]float64
}

// Export copies the optimizer's moments for params into a snapshot keyed
// by parameter name. Parameters the optimizer has not stepped yet (no
// gradient ever reached them) are omitted; Restore treats absence as a
// cold start for that parameter.
func (a *Adam) Export(params []*Param) AdamState {
	st := AdamState{T: a.t, M: map[string][]float64{}, V: map[string][]float64{}}
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			continue
		}
		st.M[p.Name] = append([]float64(nil), m.Data...)
		st.V[p.Name] = append([]float64(nil), a.v[p].Data...)
	}
	return st
}

// Restore loads a previously Exported snapshot into the optimizer so the
// next Step continues the original trajectory bit for bit. Every state
// entry must match a parameter in params with the same element count —
// a leftover or misshapen entry means the snapshot came from a different
// architecture or configuration, which is rejected with a descriptive
// error rather than silently corrupting the continuation.
func (a *Adam) Restore(params []*Param, st AdamState) error {
	byName := make(map[string]*Param, len(params))
	for _, p := range params {
		byName[p.Name] = p
	}
	for name, m := range st.M {
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("nn: optimizer state holds parameter %q which this model does not have (architecture or config mismatch)", name)
		}
		v, ok := st.V[name]
		if !ok {
			return fmt.Errorf("nn: optimizer state for %q is missing its second moment (truncated or corrupt state)", name)
		}
		n := len(p.Var.Value.Data)
		if len(m) != n || len(v) != n {
			return fmt.Errorf("nn: optimizer state for %q holds %d/%d moment values but the parameter has %d (architecture or config mismatch)",
				name, len(m), len(v), n)
		}
		mm := tensor.New(p.Var.Value.Rows, p.Var.Value.Cols)
		vv := tensor.New(p.Var.Value.Rows, p.Var.Value.Cols)
		copy(mm.Data, m)
		copy(vv.Data, v)
		a.m[p] = mm
		a.v[p] = vv
	}
	a.t = st.T
	return nil
}

// Step applies one Adam update and zeroes the gradients.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		g := p.Var.Grad
		if g == nil {
			continue
		}
		w := p.Var.Value
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(w.Rows, w.Cols)
			a.m[p] = m
			a.v[p] = tensor.New(w.Rows, w.Cols)
		}
		v := a.v[p]
		for i := range w.Data {
			gi := g.Data[i]
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*gi
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*gi*gi
			mh := m.Data[i] / c1
			vh := v.Data[i] / c2
			w.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}
