package nn

import (
	"math"

	"raal/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients and then
// clears the gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velocity map[*Param]*tensor.Matrix
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param]*tensor.Matrix)}
}

// Step applies one SGD update and zeroes the gradients.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		g := p.Var.Grad
		if g == nil {
			continue
		}
		w := p.Var.Value
		if s.Momentum > 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(w.Rows, w.Cols)
				s.velocity[p] = v
			}
			for i := range w.Data {
				v.Data[i] = s.Momentum*v.Data[i] - s.LR*g.Data[i]
				w.Data[i] += v.Data[i]
			}
		} else {
			for i := range w.Data {
				w.Data[i] -= s.LR * g.Data[i]
			}
		}
		p.ZeroGrad()
	}
}

// Adam implements the Adam optimizer (Kingma & Ba, 2015), the paper's
// training algorithm of choice for all learned cost models.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*Param]*tensor.Matrix
	v map[*Param]*tensor.Matrix
}

// NewAdam returns an Adam optimizer with the usual defaults for any zero
// hyperparameter (lr=0.001, β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	if lr == 0 {
		lr = 1e-3
	}
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Matrix),
		v: make(map[*Param]*tensor.Matrix),
	}
}

// Step applies one Adam update and zeroes the gradients.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		g := p.Var.Grad
		if g == nil {
			continue
		}
		w := p.Var.Value
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(w.Rows, w.Cols)
			a.m[p] = m
			a.v[p] = tensor.New(w.Rows, w.Cols)
		}
		v := a.v[p]
		for i := range w.Data {
			gi := g.Data[i]
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*gi
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*gi*gi
			mh := m.Data[i] / c1
			vh := v.Data[i] / c2
			w.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}
