package nn

import (
	"math/rand"
	"testing"

	"raal/internal/autodiff"
	"raal/internal/tensor"
)

func mustBitEqual(t *testing.T, got, want *tensor.Matrix, what string) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil matrix (got=%v want=%v)", what, got, want)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (bit-exact)", what, i, got.Data[i], want.Data[i])
		}
	}
}

// TestDenseFusedMatchesUnfused pins the fused bias+activation forward and
// backward of Dense against the pre-fusion formulation
// act(AddRow(x·W, b)) built from primitive ops: values and gradients must
// be bit-identical for every fused activation.
func TestDenseFusedMatchesUnfused(t *testing.T) {
	for _, act := range []Activation{Linear, ReLU, Tanh, Sigmoid} {
		rng := rand.New(rand.NewSource(7))
		d := NewDense("d", 5, 3, act, rng)
		x := tensor.Randn(4, 5, 1, rng)

		tp := autodiff.NewTape()
		out := d.Forward(tp, tp.Const(x))
		tp.Backward(tp.MeanAll(tp.Mul(out, out)))

		ut := autodiff.NewTape()
		w, b := ut.Param(d.W.Var.Value), ut.Param(d.B.Var.Value)
		pre := ut.AddRow(ut.MatMul(ut.Const(x), w), b)
		ref := applyActivation(ut, pre, act)
		ut.Backward(ut.MeanAll(ut.Mul(ref, ref)))

		mustBitEqual(t, out.Value, ref.Value, act.String()+" value")
		mustBitEqual(t, d.W.Var.Grad, w.Grad, act.String()+" W grad")
		mustBitEqual(t, d.B.Var.Grad, b.Grad, act.String()+" b grad")
	}
}

// TestLSTMStepFusedMatchesUnfused pins the fused LSTM step (slice the
// pre-activation, then fused bias+activation per gate) against the
// pre-fusion graph (add the packed bias to the whole pre-activation, then
// slice and activate): hidden state, cell state, and all three weight
// gradients must be bit-identical.
func TestLSTMStepFusedMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const in, hidden, batch = 5, 4, 3
	l := NewLSTM("l", in, hidden, rng)
	x := tensor.Randn(batch, in, 1, rng)

	tp := autodiff.NewTape()
	s := l.Step(tp, tp.Const(x), l.ZeroState(tp, batch))
	loss := tp.MeanAll(tp.Add(tp.Mul(s.H, s.H), tp.Mul(s.C, s.C)))
	tp.Backward(loss)

	ut := autodiff.NewTape()
	wx, wh, b := ut.Param(l.Wx.Var.Value), ut.Param(l.Wh.Var.Value), ut.Param(l.B.Var.Value)
	h0 := ut.Const(ut.NewMatrix(batch, hidden))
	c0 := ut.Const(ut.NewMatrix(batch, hidden))
	z := ut.AddRow(ut.Add(ut.MatMul(ut.Const(x), wx), ut.MatMul(h0, wh)), b)
	i := ut.Sigmoid(ut.SliceCols(z, 0, hidden))
	f := ut.Sigmoid(ut.SliceCols(z, hidden, 2*hidden))
	g := ut.Tanh(ut.SliceCols(z, 2*hidden, 3*hidden))
	o := ut.Sigmoid(ut.SliceCols(z, 3*hidden, 4*hidden))
	c := ut.Add(ut.Mul(f, c0), ut.Mul(i, g))
	h := ut.Mul(o, ut.Tanh(c))
	uloss := ut.MeanAll(ut.Add(ut.Mul(h, h), ut.Mul(c, c)))
	ut.Backward(uloss)

	mustBitEqual(t, s.H.Value, h.Value, "hidden state")
	mustBitEqual(t, s.C.Value, c.Value, "cell state")
	mustBitEqual(t, l.Wx.Var.Grad, wx.Grad, "Wx grad")
	mustBitEqual(t, l.Wh.Var.Grad, wh.Grad, "Wh grad")
	mustBitEqual(t, l.B.Var.Grad, b.Grad, "B grad")
}

// TestLSTMForwardReusedTapeBitIdentical runs a full sequence on a reused
// (Reset) tape and on fresh tapes: the recurrence must be unaffected by
// arena recycling.
func TestLSTMForwardReusedTapeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := NewLSTM("l", 4, 6, rng)
	seq := make([]*tensor.Matrix, 5)
	for i := range seq {
		seq[i] = tensor.Randn(2, 4, 1, rng)
	}

	tp := autodiff.NewTape()
	var warm []*tensor.Matrix
	for pass := 0; pass < 3; pass++ {
		tp.Reset()
		xs := make([]*autodiff.Var, len(seq))
		for i, m := range seq {
			xs[i] = tp.Const(m)
		}
		hs := l.Forward(tp, xs)

		fresh := autodiff.NewTape()
		fxs := make([]*autodiff.Var, len(seq))
		for i, m := range seq {
			fxs[i] = fresh.Const(m)
		}
		fhs := l.Forward(fresh, fxs)

		for i := range hs {
			mustBitEqual(t, hs[i].Value, fhs[i].Value, "hidden step")
			if pass > 0 {
				mustBitEqual(t, hs[i].Value, warm[i], "hidden step across Reset")
			}
		}
		warm = warm[:0]
		for i := range hs {
			warm = append(warm, hs[i].Value.Clone())
		}
	}
}
