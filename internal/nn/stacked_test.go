package nn

import (
	"math/rand"
	"testing"

	"raal/internal/autodiff"
	"raal/internal/tensor"
)

// TestLSTMForwardStackedMatchesForward pins the stacked recurrence to the
// per-step one, bit for bit: the stacked input projection computes the
// same dot products, and each step's addition pairs the same operands.
func TestLSTMForwardStackedMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	l := NewLSTM("lstm", 5, 4, rng)
	const steps, batch = 6, 3

	tpA := autodiff.NewTape()
	xs := make([]*autodiff.Var, steps)
	stacked := tensor.Randn(steps*batch, 5, 0.8, rng)
	for s := 0; s < steps; s++ {
		xs[s] = tpA.Const(stacked.SliceRows(s*batch, (s+1)*batch))
	}
	hsA := l.Forward(tpA, xs)

	tpB := autodiff.NewTape()
	hsB := l.ForwardStacked(tpB, tpB.Const(stacked), steps)

	if len(hsA) != steps || len(hsB) != steps {
		t.Fatalf("got %d/%d hidden states, want %d", len(hsA), len(hsB), steps)
	}
	for s := range hsA {
		a, b := hsA[s].Value, hsB[s].Value
		if !a.SameShape(b) {
			t.Fatalf("step %d: shape %dx%d vs %dx%d", s, a.Rows, a.Cols, b.Rows, b.Cols)
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("step %d element %d: %v != %v (must be bit-identical)", s, i, a.Data[i], b.Data[i])
			}
		}
	}
}

// TestLSTMForwardStackedGradients checks the stacked path end to end
// against numeric gradients, covering AddRowsAt's window accumulation
// into the shared input projection.
func TestLSTMForwardStackedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := NewLSTM("lstm", 3, 2, rng)
	const steps, batch = 3, 2
	x := tensor.Randn(steps*batch, 3, 0.8, rng)

	tp := autodiff.NewTape()
	hs := l.ForwardStacked(tp, tp.Const(x), steps)
	loss := tp.MeanAll(tp.ConcatRows(hs...))
	tp.Backward(loss)

	lossAt := func() float64 {
		tp2 := autodiff.NewTape()
		l2 := l.ShareWeights() // fresh grad buffers, same weights
		hs2 := l2.ForwardStacked(tp2, tp2.Const(x), steps)
		return tp2.MeanAll(tp2.ConcatRows(hs2...)).Value.Data[0]
	}
	const eps = 1e-6
	for _, p := range l.Params() {
		want := tensor.New(p.Var.Value.Rows, p.Var.Value.Cols)
		for i := range p.Var.Value.Data {
			orig := p.Var.Value.Data[i]
			p.Var.Value.Data[i] = orig + eps
			up := lossAt()
			p.Var.Value.Data[i] = orig - eps
			down := lossAt()
			p.Var.Value.Data[i] = orig
			want.Data[i] = (up - down) / (2 * eps)
		}
		if p.Var.Grad == nil {
			t.Fatalf("param %s has nil grad", p.Name)
		}
		if !tensor.AllClose(p.Var.Grad, want, 1e-4) {
			t.Fatalf("param %s gradient mismatch:\n got %v\nwant %v", p.Name, p.Var.Grad, want)
		}
	}
}

// TestLSTMForwardStackedEmpty mirrors the empty-sequence contract of
// Forward.
func TestLSTMForwardStackedEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	l := NewLSTM("lstm", 3, 2, rng)
	tp := autodiff.NewTape()
	if hs := l.ForwardStacked(tp, tp.Const(tensor.New(0, 3)), 0); hs != nil {
		t.Fatalf("ForwardStacked over 0 steps = %v, want nil", hs)
	}
}
