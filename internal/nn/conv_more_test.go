package nn

import (
	"math"
	"math/rand"
	"testing"

	"raal/internal/autodiff"
	"raal/internal/tensor"
)

func TestConv1DWidth5Gradient(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := NewConv1D("c5", 2, 2, 5, Linear, rng)
	x := tensor.Randn(6, 2, 1, rng)
	target := tensor.Randn(6, 2, 1, rng)
	gradCheckModel(t, c.Params(), func(tp *autodiff.Tape) *autodiff.Var {
		return tp.MSE(c.Forward(tp, tp.Const(x)), target)
	})
}

func TestConv1DSequenceShorterThanKernel(t *testing.T) {
	// A 2-row input under a width-5 kernel: every window is mostly
	// padding, but shapes and values must stay well-defined.
	rng := rand.New(rand.NewSource(22))
	c := NewConv1D("c", 3, 2, 5, Tanh, rng)
	x := tensor.Randn(2, 3, 1, rng)
	tp := autodiff.NewTape()
	out := c.Forward(tp, tp.Const(x))
	if out.Value.Rows != 2 || out.Value.Cols != 2 {
		t.Fatalf("shape %dx%d", out.Value.Rows, out.Value.Cols)
	}
	for _, v := range out.Value.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN output")
		}
	}
}

func TestConv1DTranslationOfIdentityKernel(t *testing.T) {
	// A kernel that only weighs the centre slot reproduces a linear map
	// of each row independently.
	c := &Conv1D{In: 2, Filters: 2, Width: 3, Act: Linear}
	w := tensor.New(6, 2) // width*in × filters
	// centre slot occupies rows [2,4): identity map
	w.Set(2, 0, 1)
	w.Set(3, 1, 1)
	c.W = NewParam("w", w)
	c.B = NewParam("b", tensor.New(1, 2))

	x := tensor.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	tp := autodiff.NewTape()
	out := c.Forward(tp, tp.Const(x))
	if !tensor.AllClose(out.Value, x, 1e-12) {
		t.Fatalf("identity-centre conv should reproduce input:\n%v", out.Value)
	}
}

func TestMLPPanicsOnTooFewSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLP("m", []int{4}, Tanh, rand.New(rand.NewSource(1)))
}

func TestLSTMZeroStateShapes(t *testing.T) {
	l := NewLSTM("l", 3, 5, rand.New(rand.NewSource(23)))
	tp := autodiff.NewTape()
	s := l.ZeroState(tp, 7)
	if s.H.Value.Rows != 7 || s.H.Value.Cols != 5 || s.C.Value.Rows != 7 {
		t.Fatalf("zero state shapes: %v %v", s.H.Value, s.C.Value)
	}
	if s.H.Value.Sum() != 0 || s.C.Value.Sum() != 0 {
		t.Fatal("zero state not zero")
	}
}

func TestLSTMForwardEmptySequence(t *testing.T) {
	l := NewLSTM("l", 2, 3, rand.New(rand.NewSource(24)))
	if hs := l.Forward(autodiff.NewTape(), nil); hs != nil {
		t.Fatal("empty sequence should yield nil")
	}
}

func TestUnknownActivationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := autodiff.NewTape()
	applyActivation(tp, tp.Const(tensor.New(1, 1)), Activation(99))
}
