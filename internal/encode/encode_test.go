package encode

import (
	"testing"

	"raal/internal/cardest"
	"raal/internal/datagen"
	"raal/internal/logical"
	"raal/internal/physical"
	"raal/internal/sparksim"
	"raal/internal/sql"
)

func TestTokenizeStatement(t *testing.T) {
	toks := Tokenize("Filter ((mk.keyword_id < 2560) && mk.movie_id IS NOT NULL)")
	want := map[string]bool{"filter": true, "mk.keyword_id": true, "<": true, "num3": true, "&&": true, "is": true, "not": true, "null": true}
	got := map[string]bool{}
	for _, tok := range toks {
		got[tok] = true
	}
	for w := range want {
		if !got[w] {
			t.Fatalf("missing token %q in %v", w, toks)
		}
	}
}

func TestTokenizeNumberBuckets(t *testing.T) {
	cases := map[string]string{
		"x < 5":      "num0",
		"x < 42":     "num1",
		"x < 999":    "num2",
		"x < 71692":  "num4",
		"x < -300":   "num2",
		"x < 0":      "num0",
	}
	for stmt, want := range cases {
		found := false
		for _, tok := range Tokenize(stmt) {
			if tok == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Tokenize(%q) missing %q: %v", stmt, want, Tokenize(stmt))
		}
	}
}

func buildPlans(t *testing.T, queries ...string) []*physical.Plan {
	t.Helper()
	db := datagen.IMDB(0.03, 1)
	est, err := cardest.New(db, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	binder := logical.NewBinder(db)
	planner := physical.NewPlanner(est)
	var plans []*physical.Plan
	for _, qs := range queries {
		stmt, err := sql.Parse(qs)
		if err != nil {
			t.Fatal(err)
		}
		q, err := binder.Bind(stmt)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := planner.Enumerate(q)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, ps...)
	}
	return plans
}

var testQueries = []string{
	`SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 500`,
	`SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id AND mc.company_id < 100`,
	`SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
		WHERE t.id = mc.movie_id AND t.id = mk.movie_id AND mk.keyword_id < 50`,
}

func fitEncoder(t *testing.T, mode SemanticMode) (*Encoder, []*physical.Plan) {
	t.Helper()
	plans := buildPlans(t, testQueries...)
	cfg := DefaultConfig()
	cfg.Mode = mode
	enc, err := Fit(plans, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return enc, plans
}

func TestEncodePlanShape(t *testing.T) {
	enc, plans := fitEncoder(t, Word2Vec)
	res := sparksim.DefaultResources()
	for _, p := range plans {
		s := enc.EncodePlan(p, res)
		if s.Nodes.Rows != enc.MaxNodes() || s.Nodes.Cols != enc.NodeDim() {
			t.Fatalf("node matrix %dx%d, want %dx%d", s.Nodes.Rows, s.Nodes.Cols, enc.MaxNodes(), enc.NodeDim())
		}
		if len(s.Mask) != enc.MaxNodes() || len(s.Children) != enc.MaxNodes() {
			t.Fatal("mask/children length wrong")
		}
		if len(s.Resource) != sparksim.NumFeatures {
			t.Fatalf("resource vector length %d", len(s.Resource))
		}
		if len(s.Stats) != NumStats {
			t.Fatalf("stats vector length %d", len(s.Stats))
		}
	}
}

func TestMaskMatchesPlanLength(t *testing.T) {
	enc, plans := fitEncoder(t, Word2Vec)
	s := enc.EncodePlan(plans[0], sparksim.DefaultResources())
	count := 0
	for _, m := range s.Mask {
		if m {
			count++
		}
	}
	want := len(plans[0].Nodes)
	if want > enc.MaxNodes() {
		want = enc.MaxNodes()
	}
	if count != want {
		t.Fatalf("mask count %d, want %d", count, want)
	}
	// Padding rows must be all zero.
	for i := count; i < enc.MaxNodes(); i++ {
		for _, v := range s.Nodes.Row(i) {
			if v != 0 {
				t.Fatal("padding row not zero")
			}
		}
	}
}

func TestStructureEmbeddingSigns(t *testing.T) {
	enc, plans := fitEncoder(t, Word2Vec)
	p := plans[0]
	if len(p.Nodes) > enc.MaxNodes() {
		t.Skip("plan truncated; sign test needs full plan")
	}
	s := enc.EncodePlan(p, sparksim.DefaultResources())
	off := enc.NodeDim() - enc.MaxNodes() - nodeStatFeatures
	for i, n := range p.Nodes {
		row := s.Nodes.Row(i)
		for _, c := range n.Children {
			if row[off+c.ID] != 1 {
				t.Fatalf("node %d should mark child %d with +1", i, c.ID)
			}
			if !s.Children[i][c.ID] {
				t.Fatalf("children mask missing %d→%d", i, c.ID)
			}
			// And the child must mark the parent with −1.
			if s.Nodes.Row(c.ID)[off+i] != -1 {
				t.Fatalf("node %d should mark parent %d with -1", c.ID, i)
			}
		}
	}
}

func TestSimilarNodesGetSimilarEmbeddings(t *testing.T) {
	// Two scans of the same table with slightly different literals should
	// embed closer than a scan vs a join.
	enc, plans := fitEncoder(t, Word2Vec)
	var scanA, scanB, join []float64
	for _, p := range plans {
		s := enc.EncodePlan(p, sparksim.DefaultResources())
		for i, n := range p.Nodes {
			if i >= enc.MaxNodes() {
				break
			}
			sem := s.Nodes.Row(i)[:16]
			switch {
			case n.Op == physical.FileScan && n.Table == "movie_keyword" && scanA == nil:
				scanA = append([]float64(nil), sem...)
			case n.Op == physical.FileScan && n.Table == "movie_keyword" && scanB == nil:
				scanB = append([]float64(nil), sem...)
			case n.Op == physical.SortMergeJoin && join == nil:
				join = append([]float64(nil), sem...)
			}
		}
	}
	if scanA == nil || scanB == nil || join == nil {
		t.Skip("not enough node variety")
	}
	simSame := cosine(scanA, scanB)
	simDiff := cosine(scanA, join)
	if simSame <= simDiff {
		t.Fatalf("scan-scan similarity %v should exceed scan-join %v", simSame, simDiff)
	}
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (sqrt(na) * sqrt(nb))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestOneHotMode(t *testing.T) {
	enc, plans := fitEncoder(t, OneHot)
	s := enc.EncodePlan(plans[0], sparksim.DefaultResources())
	// Exactly one hot bit in the semantic prefix of each real row.
	for i, m := range s.Mask {
		if !m {
			continue
		}
		ones := 0
		for _, v := range s.Nodes.Row(i)[:physical.NumOpTypes] {
			if v == 1 {
				ones++
			} else if v != 0 {
				t.Fatalf("one-hot row has non-binary value %v", v)
			}
		}
		if ones != 1 {
			t.Fatalf("row %d has %d hot bits", i, ones)
		}
	}
}

func TestResourceNormalization(t *testing.T) {
	enc, plans := fitEncoder(t, Word2Vec)
	res := sparksim.DefaultResources()
	s := enc.EncodePlan(plans[0], res)
	for i, v := range s.Resource {
		if v < 0 || v > 1 {
			t.Fatalf("resource feature %d = %v outside [0,1]", i, v)
		}
	}
	// Larger allocation ⇒ larger normalized memory feature.
	res2 := res
	res2.ExecMemMB *= 2
	s2 := enc.EncodePlan(plans[0], res2)
	if s2.Resource[4] <= s.Resource[4] {
		t.Fatal("memory feature should grow with allocation")
	}
}

func TestStatsVectorBounded(t *testing.T) {
	enc, plans := fitEncoder(t, Word2Vec)
	for _, p := range plans {
		s := enc.EncodePlan(p, sparksim.DefaultResources())
		for i, v := range s.Stats {
			if v < 0 || v > 2 {
				t.Fatalf("stats feature %d = %v out of range", i, v)
			}
		}
	}
}

func TestFitRequiresPositiveMaxNodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxNodes = 0
	if _, err := Fit(nil, cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestFitEmptyCorpusW2VError(t *testing.T) {
	if _, err := Fit(nil, DefaultConfig()); err == nil {
		t.Fatal("expected word2vec training error on empty corpus")
	}
}
