// Package encode turns physical plans, resource allocations, and catalog
// statistics into the tensors the deep cost models consume, implementing
// the paper's Sec. IV-C feature encoding:
//
//   - node-semantic embedding: each operator's execution statement is
//     tokenized and embedded with word2vec (one-hot is kept as the
//     ablation alternative);
//   - plan-structure embedding: a signed adjacency vector per node
//     (+1 for children, −1 for the parent);
//   - resource embedding: Table-I features normalized to [0,1] by the
//     cluster maxima (Eq. 1);
//   - other features: normalized cardinality statistics.
package encode

import (
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Tokenize splits a physical-plan execution statement into word2vec
// tokens. Identifiers and keywords become lowercase tokens, comparison
// operators survive as their own tokens, and numeric literals are bucketed
// by order of magnitude (num0, num1, …) so that similar-magnitude
// constants share a token — the trick that lets word2vec place similar
// predicates near each other, which one-hot encoding cannot do.
func Tokenize(statement string) []string {
	var toks []string
	i, n := 0, len(statement)
	for i < n {
		c := statement[i]
		switch {
		case c == ' ' || c == ',' || c == '(' || c == ')' || c == '[' || c == ']' || c == '\'':
			i++
		case c == '&' || c == '|':
			j := i
			for j < n && (statement[j] == '&' || statement[j] == '|') {
				j++
			}
			toks = append(toks, statement[i:j])
			i = j
		case c == '<' || c == '>' || c == '=' || c == '!':
			j := i + 1
			if j < n && (statement[j] == '=' || statement[j] == '>') {
				j++
			}
			toks = append(toks, statement[i:j])
			i = j
		case unicode.IsDigit(rune(c)) || (c == '-' && i+1 < n && unicode.IsDigit(rune(statement[i+1]))):
			j := i
			if c == '-' {
				j++
			}
			for j < n && unicode.IsDigit(rune(statement[j])) {
				j++
			}
			toks = append(toks, bucketNumber(statement[i:j]))
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(statement[j])) || unicode.IsDigit(rune(statement[j])) || statement[j] == '_' || statement[j] == '.') {
				j++
			}
			toks = append(toks, strings.ToLower(statement[i:j]))
			i = j
		default:
			i++
		}
	}
	return toks
}

// bucketNumber maps a numeric literal to a magnitude-bucket token.
func bucketNumber(lit string) string {
	v, err := strconv.ParseFloat(strings.TrimPrefix(lit, "-"), 64)
	if err != nil || v < 1 {
		return "num0"
	}
	return "num" + strconv.Itoa(int(math.Log10(v)))
}
