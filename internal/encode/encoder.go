package encode

import (
	"fmt"
	"math"

	"raal/internal/physical"
	"raal/internal/sparksim"
	"raal/internal/tensor"
	"raal/internal/word2vec"
)

// SemanticMode selects how a node's execution statement is embedded.
type SemanticMode int

// Semantic embedding modes.
const (
	// Word2Vec embeds tokenized statements with skip-gram vectors
	// (the paper's choice).
	Word2Vec SemanticMode = iota
	// OneHot uses only the operator-type one-hot of Table II (the
	// strawman the paper argues against).
	OneHot
)

// Config controls encoder fitting.
type Config struct {
	Mode     SemanticMode
	MaxNodes int             // plans are padded/truncated to this many nodes
	W2V      word2vec.Config // used when Mode == Word2Vec
	MaxRes   sparksim.Resources
}

// DefaultConfig returns the defaults used across the experiments.
func DefaultConfig() Config {
	w := word2vec.DefaultConfig()
	w.Dim = 16
	return Config{
		Mode:     Word2Vec,
		MaxNodes: 42, // covers 5-join SMJ plans without truncation
		W2V:      w,
		MaxRes:   sparksim.MaxResources(),
	}
}

// NumStats is the size of the "other features" vector (Sec. IV-C).
const NumStats = 6

// nodeStatFeatures is the per-node statistics appended to each node vector.
const nodeStatFeatures = 2

// Encoder converts plans into model inputs. Fit it once on a training
// corpus, then encode any plan from the same benchmark.
type Encoder struct {
	cfg Config
	w2v *word2vec.Model
}

// Fit trains the encoder's semantic embedding on the statements of the
// given plans.
func Fit(plans []*physical.Plan, cfg Config) (*Encoder, error) {
	if cfg.MaxNodes <= 0 {
		return nil, fmt.Errorf("encode: MaxNodes must be positive, got %d", cfg.MaxNodes)
	}
	e := &Encoder{cfg: cfg}
	if cfg.Mode == Word2Vec {
		var corpus [][]string
		for _, p := range plans {
			for _, n := range p.Nodes {
				corpus = append(corpus, Tokenize(n.Statement()))
			}
		}
		m, err := word2vec.Train(corpus, cfg.W2V)
		if err != nil {
			return nil, fmt.Errorf("encode: training word2vec: %w", err)
		}
		e.w2v = m
	}
	return e, nil
}

// MaxNodes returns the padded sequence length.
func (e *Encoder) MaxNodes() int { return e.cfg.MaxNodes }

// semanticDim is the width of the semantic part of a node vector.
func (e *Encoder) semanticDim() int {
	if e.cfg.Mode == Word2Vec {
		return e.w2v.Dim
	}
	return physical.NumOpTypes
}

// NodeDim returns the width of one encoded node row:
// semantic ⊕ structure (MaxNodes) ⊕ per-node stats.
func (e *Encoder) NodeDim() int {
	return e.semanticDim() + e.cfg.MaxNodes + nodeStatFeatures
}

// Sample is one training/inference example for the deep cost models.
type Sample struct {
	// Nodes is MaxNodes×NodeDim: row i encodes plan node i (zero rows
	// beyond the plan's length).
	Nodes *tensor.Matrix
	// Mask marks real (non-padding) node rows.
	Mask []bool
	// Children[i][j] is true when node j is a child of node i — the
	// adjacency the node-aware attention layer restricts itself to.
	Children [][]bool
	// Resource is the Eq.-1 normalized resource vector.
	Resource []float64
	// Stats is the normalized "other features" vector.
	Stats []float64
	// CostSec is the ground-truth execution cost (the label); zero for
	// pure inference samples.
	CostSec float64
}

// EncodePlan encodes p executed (or estimated) under res.
func (e *Encoder) EncodePlan(p *physical.Plan, res sparksim.Resources) *Sample {
	mn := e.cfg.MaxNodes
	s := &Sample{
		Nodes:    tensor.New(mn, e.NodeDim()),
		Mask:     make([]bool, mn),
		Children: make([][]bool, mn),
		Resource: res.Normalized(e.cfg.MaxRes),
	}
	for i := range s.Children {
		s.Children[i] = make([]bool, mn)
	}

	n := len(p.Nodes)
	if n > mn {
		n = mn // truncate the deepest nodes; execution order keeps parents last
	}
	offStruct := e.semanticDim()
	offStats := offStruct + mn

	for i := 0; i < n; i++ {
		node := p.Nodes[len(p.Nodes)-n+i] // keep the top of the plan when truncating
		s.Mask[i] = true
		row := s.Nodes.Row(i)

		// 1. node-semantic embedding
		switch e.cfg.Mode {
		case Word2Vec:
			copy(row[:e.w2v.Dim], e.w2v.Embed(Tokenize(node.Statement())))
		case OneHot:
			row[int(node.Op)] = 1
		}

		// 2. plan-structure embedding: +1 at child positions, −1 at the
		// parent position (out-degree/in-degree signs, Sec. IV-C).
		for _, c := range node.Children {
			if j := c.ID - (len(p.Nodes) - n); j >= 0 && j < mn {
				row[offStruct+j] = 1
				s.Children[i][j] = true
			}
		}
		for j := 0; j < n; j++ {
			parent := p.Nodes[len(p.Nodes)-n+j]
			for _, c := range parent.Children {
				if c == node {
					row[offStruct+j] = -1
				}
			}
		}

		// 3. per-node statistics (estimates — truth is unknown at
		// prediction time).
		row[offStats] = logNorm(node.EstRows)
		row[offStats+1] = logNorm(node.EstRows * node.RowBytes)
	}

	s.Stats = e.statsVector(p)
	return s
}

// statsVector builds the global "other features": cardinality statistics
// the paper feeds alongside the plan embedding.
func (e *Encoder) statsVector(p *physical.Plan) []float64 {
	var scanBytes, maxEst float64
	joins, scans := 0, 0
	for _, n := range p.Nodes {
		switch n.Op {
		case physical.FileScan:
			scans++
			scanBytes += n.RawRows * n.RowBytes
		case physical.SortMergeJoin, physical.BroadcastHashJoin, physical.BroadcastNestedLoopJoin:
			joins++
		}
		if n.EstRows > maxEst {
			maxEst = n.EstRows
		}
	}
	return []float64{
		logNorm(p.Root.EstRows),
		logNorm(maxEst),
		logNorm(scanBytes),
		float64(joins) / 8,
		float64(scans) / 8,
		float64(len(p.Nodes)) / float64(e.cfg.MaxNodes),
	}
}

// logNorm squashes a magnitude into roughly [0,1] via log10 scaling
// (10^12 maps to 1).
func logNorm(v float64) float64 {
	if v < 0 {
		v = 0
	}
	return math.Log10(1+v) / 12
}
