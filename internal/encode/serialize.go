package encode

import (
	"encoding/gob"
	"fmt"
	"io"

	"raal/internal/word2vec"
)

// encoderSnapshot is the serialized form of an Encoder.
type encoderSnapshot struct {
	Mode     SemanticMode
	MaxNodes int
	MaxResV  []float64 // not used for reconstruction; kept for inspection
	Dim      int
	Words    []string
	Vectors  [][]float64
	Cfg      Config
}

// Save writes the fitted encoder (configuration plus word2vec vocabulary
// and vectors) to w.
func (e *Encoder) Save(w io.Writer) error {
	snap := encoderSnapshot{
		Mode:     e.cfg.Mode,
		MaxNodes: e.cfg.MaxNodes,
		Cfg:      e.cfg,
	}
	if e.w2v != nil {
		snap.Dim = e.w2v.Dim
		snap.Words = e.w2v.Words
		snap.Vectors = e.w2v.In
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("encode: saving encoder: %w", err)
	}
	return nil
}

// LoadEncoder reads an encoder previously written by Save.
func LoadEncoder(r io.Reader) (*Encoder, error) {
	var snap encoderSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("encode: loading encoder: %w", err)
	}
	e := &Encoder{cfg: snap.Cfg}
	if snap.Cfg.Mode == Word2Vec {
		m := &word2vec.Model{
			Dim:   snap.Dim,
			Words: snap.Words,
			In:    snap.Vectors,
			Vocab: make(map[string]int, len(snap.Words)),
		}
		for i, w := range snap.Words {
			m.Vocab[w] = i
		}
		e.w2v = m
	}
	return e, nil
}
