package encode

import (
	"bytes"
	"testing"

	"raal/internal/sparksim"
	"raal/internal/tensor"
)

func TestEncoderSaveLoadRoundTrip(t *testing.T) {
	enc, plans := fitEncoder(t, Word2Vec)
	var buf bytes.Buffer
	if err := enc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.MaxNodes() != enc.MaxNodes() || restored.NodeDim() != enc.NodeDim() {
		t.Fatalf("dims not restored: %d/%d vs %d/%d",
			restored.MaxNodes(), restored.NodeDim(), enc.MaxNodes(), enc.NodeDim())
	}
	res := sparksim.DefaultResources()
	for _, p := range plans {
		a := enc.EncodePlan(p, res)
		b := restored.EncodePlan(p, res)
		if !tensor.AllClose(a.Nodes, b.Nodes, 0) {
			t.Fatal("restored encoder encodes differently")
		}
	}
}

func TestEncoderSaveLoadOneHot(t *testing.T) {
	enc, plans := fitEncoder(t, OneHot)
	var buf bytes.Buffer
	if err := enc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res := sparksim.DefaultResources()
	a := enc.EncodePlan(plans[0], res)
	b := restored.EncodePlan(plans[0], res)
	if !tensor.AllClose(a.Nodes, b.Nodes, 0) {
		t.Fatal("one-hot encoder round trip failed")
	}
}

func TestLoadEncoderGarbage(t *testing.T) {
	if _, err := LoadEncoder(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage input should error")
	}
}
