package catalog

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// LoadCSV reads comma-separated rows into a table of the given schema,
// letting downstream users bring their own data instead of the synthetic
// benchmarks. The first record must be a header naming every schema
// column (in any order); values of Int64 columns must parse as integers.
func LoadCSV(schema *Schema, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("catalog: reading CSV header: %w", err)
	}
	colIdx := make([]int, len(schema.Columns))
	for i, c := range schema.Columns {
		colIdx[i] = -1
		for j, h := range header {
			if h == c.Name {
				colIdx[i] = j
				break
			}
		}
		if colIdx[i] < 0 {
			return nil, fmt.Errorf("catalog: CSV is missing column %q", c.Name)
		}
	}

	var ints map[string][]int64
	var strs map[string][]string
	ints = map[string][]int64{}
	strs = map[string][]string{}
	rows := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("catalog: reading CSV row %d: %w", rows+2, err)
		}
		for i, c := range schema.Columns {
			v := rec[colIdx[i]]
			switch c.Type {
			case Int64:
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("catalog: row %d column %q: %q is not an integer", rows+2, c.Name, v)
				}
				ints[c.Name] = append(ints[c.Name], n)
			case String:
				strs[c.Name] = append(strs[c.Name], v)
			}
		}
		rows++
	}

	t := &Table{Schema: schema, NumRows: rows, Ints: ints, Strs: strs}
	for _, c := range schema.Columns {
		if c.Type == Int64 && ints[c.Name] == nil {
			ints[c.Name] = []int64{}
		}
		if c.Type == String && strs[c.Name] == nil {
			strs[c.Name] = []string{}
		}
	}
	return t, t.Validate()
}

// WriteCSV writes the table (header + rows) as CSV — the inverse of
// LoadCSV, useful for exporting synthetic benchmarks.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Schema.Columns))
	for i, c := range t.Schema.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(t.Schema.Columns))
	for row := 0; row < t.NumRows; row++ {
		for i, c := range t.Schema.Columns {
			switch c.Type {
			case Int64:
				rec[i] = strconv.FormatInt(t.Ints[c.Name][row], 10)
			case String:
				rec[i] = t.Strs[c.Name][row]
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
