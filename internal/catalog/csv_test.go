package catalog

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadCSV(t *testing.T) {
	schema := testSchema() // id int64, name string
	data := "name,id\nalpha,1\nbeta,2\ngamma,3\n"
	tab, err := LoadCSV(schema, strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows != 3 {
		t.Fatalf("rows = %d", tab.NumRows)
	}
	if tab.IntCol("id")[1] != 2 || tab.StrCol("name")[2] != "gamma" {
		t.Fatalf("values wrong: %v %v", tab.Ints, tab.Strs)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	schema := testSchema()
	cases := []string{
		"",                        // no header
		"id\n1\n",                 // missing column
		"id,name\nnotanint,x\n",   // bad integer
		"id,name\n1\n",            // short row
	}
	for _, data := range cases {
		if _, err := LoadCSV(schema, strings.NewReader(data)); err == nil {
			t.Fatalf("LoadCSV(%q) should fail", data)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	schema := testSchema()
	src := NewTable(schema, 3)
	copy(src.Ints["id"], []int64{10, 20, 30})
	copy(src.Strs["name"], []string{"a", "b,with,commas", "c"})

	var buf bytes.Buffer
	if err := WriteCSV(src, &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadCSV(schema, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumRows != 3 {
		t.Fatalf("rows = %d", restored.NumRows)
	}
	for i := range src.Ints["id"] {
		if restored.IntCol("id")[i] != src.IntCol("id")[i] ||
			restored.StrCol("name")[i] != src.StrCol("name")[i] {
			t.Fatalf("row %d not preserved", i)
		}
	}
}

func TestLoadCSVEmptyTable(t *testing.T) {
	tab, err := LoadCSV(testSchema(), strings.NewReader("id,name\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows != 0 {
		t.Fatalf("rows = %d", tab.NumRows)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}
