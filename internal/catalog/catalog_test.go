package catalog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return &Schema{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: Int64},
			{Name: "name", Type: String},
		},
	}
}

func TestNewTableAllocation(t *testing.T) {
	tab := NewTable(testSchema(), 5)
	if len(tab.IntCol("id")) != 5 || len(tab.StrCol("name")) != 5 {
		t.Fatal("columns not allocated to row count")
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTableMissingColumnPanics(t *testing.T) {
	tab := NewTable(testSchema(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.IntCol("nope")
}

func TestValidateCatchesShortColumn(t *testing.T) {
	tab := NewTable(testSchema(), 3)
	tab.Ints["id"] = tab.Ints["id"][:2]
	if err := tab.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDatabaseLookup(t *testing.T) {
	db := &Database{Name: "d", Tables: map[string]*Table{"t": NewTable(testSchema(), 2)}}
	if _, err := db.Table("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("missing"); err == nil {
		t.Fatal("expected error for missing table")
	}
	if got := db.TableNames(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("TableNames = %v", got)
	}
	if db.TotalRows() != 2 {
		t.Fatalf("TotalRows = %d", db.TotalRows())
	}
}

func TestSchemaCol(t *testing.T) {
	s := testSchema()
	if c, ok := s.Col("name"); !ok || c.Type != String {
		t.Fatal("Col lookup failed")
	}
	if _, ok := s.Col("ghost"); ok {
		t.Fatal("Col found nonexistent column")
	}
}

func intTable(vals []int64) *Table {
	s := &Schema{Name: "t", Columns: []Column{{Name: "v", Type: Int64}}}
	tab := NewTable(s, len(vals))
	copy(tab.Ints["v"], vals)
	return tab
}

func TestIntStatsBasics(t *testing.T) {
	tab := intTable([]int64{5, 1, 3, 3, 9, 7})
	ts, err := ComputeStats(tab, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	cs := ts.Columns["v"]
	if cs.Min != 1 || cs.Max != 9 {
		t.Fatalf("min/max = %d/%d", cs.Min, cs.Max)
	}
	if cs.NDV != 5 {
		t.Fatalf("NDV = %d, want 5", cs.NDV)
	}
	total := 0
	for _, b := range cs.Hist {
		total += b.Count
	}
	if total != 6 {
		t.Fatalf("histogram counts sum to %d, want 6", total)
	}
}

func TestHistogramUpperBoundsSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(50))
		}
		ts, err := ComputeStats(intTable(vals), 8, 4)
		if err != nil {
			return false
		}
		h := ts.Columns["v"].Hist
		for i := 1; i < len(h); i++ {
			if h[i].Upper <= h[i-1].Upper {
				return false
			}
		}
		total := 0
		for _, b := range h {
			total += b.Count
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectivityLessMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(rng.Intn(100))
	}
	ts, _ := ComputeStats(intTable(vals), 16, 4)
	cs := ts.Columns["v"]
	prev := -1.0
	for x := int64(-5); x <= 105; x += 5 {
		s := cs.SelectivityLess(x, false)
		if s < prev-1e-9 {
			t.Fatalf("selectivity not monotone at %d: %v < %v", x, s, prev)
		}
		if s < 0 || s > 1 {
			t.Fatalf("selectivity %v out of range", s)
		}
		prev = s
	}
	if cs.SelectivityLess(-10, false) != 0 {
		t.Fatal("below-min selectivity should be 0")
	}
	if cs.SelectivityLess(1000, true) != 1 {
		t.Fatal("above-max selectivity should be 1")
	}
}

func TestSelectivityLessAccuracy(t *testing.T) {
	// Uniform data: estimates should be close to truth.
	vals := make([]int64, 10000)
	rng := rand.New(rand.NewSource(4))
	for i := range vals {
		vals[i] = int64(rng.Intn(1000))
	}
	ts, _ := ComputeStats(intTable(vals), 32, 4)
	cs := ts.Columns["v"]
	for _, x := range []int64{100, 250, 500, 900} {
		truth := 0
		for _, v := range vals {
			if v < x {
				truth++
			}
		}
		est := cs.SelectivityLess(x, false)
		if math.Abs(est-float64(truth)/10000) > 0.05 {
			t.Fatalf("x=%d: est %v truth %v", x, est, float64(truth)/10000)
		}
	}
}

func TestStrStats(t *testing.T) {
	s := &Schema{Name: "t", Columns: []Column{{Name: "c", Type: String}}}
	tab := NewTable(s, 6)
	copy(tab.Strs["c"], []string{"a", "a", "a", "b", "b", "c"})
	ts, err := ComputeStats(tab, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cs := ts.Columns["c"]
	if cs.NDV != 3 {
		t.Fatalf("NDV = %d", cs.NDV)
	}
	if len(cs.TopVals) != 2 || cs.TopVals[0] != "a" || cs.TopFreqs[0] != 3 {
		t.Fatalf("TopVals = %v %v", cs.TopVals, cs.TopFreqs)
	}
	// Common value: exact frequency.
	if got := cs.SelectivityEqStr("a"); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("sel(a) = %v", got)
	}
	// Rare value: uniform over the remainder. 1 rare value holds 1 row.
	if got := cs.SelectivityEqStr("zzz"); math.Abs(got-1.0/6) > 1e-12 {
		t.Fatalf("sel(zzz) = %v", got)
	}
}

func TestSelectivityEq(t *testing.T) {
	ts, _ := ComputeStats(intTable([]int64{1, 2, 3, 4}), 4, 4)
	if got := ts.Columns["v"].SelectivityEq(); got != 0.25 {
		t.Fatalf("SelectivityEq = %v", got)
	}
}

func TestIntMCVs(t *testing.T) {
	// 7 appears 5×, 3 appears 3×, the rest once.
	vals := []int64{7, 7, 7, 7, 7, 3, 3, 3, 1, 2}
	ts, _ := ComputeStats(intTable(vals), 4, 2)
	cs := ts.Columns["v"]
	if len(cs.MCVs) != 2 || cs.MCVs[0] != 7 || cs.MCVFreqs[0] != 5 || cs.MCVs[1] != 3 {
		t.Fatalf("MCVs = %v %v", cs.MCVs, cs.MCVFreqs)
	}
	// MCV hit: exact frequency.
	if got := cs.SelectivityEqInt(7); got != 0.5 {
		t.Fatalf("sel(7) = %v", got)
	}
	// Non-MCV: uniform over the 2 remaining distinct values / 2 rows.
	if got := cs.SelectivityEqInt(1); got != 0.1 {
		t.Fatalf("sel(1) = %v", got)
	}
	// Out of range: zero.
	if got := cs.SelectivityEqInt(99); got != 0 {
		t.Fatalf("sel(99) = %v", got)
	}
}

func TestMCVZipfAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	z := rand.NewZipf(rng, 1.3, 1, 999)
	vals := make([]int64, 20000)
	freq := map[int64]int{}
	for i := range vals {
		vals[i] = int64(z.Uint64()) + 1
		freq[vals[i]]++
	}
	ts, _ := ComputeStats(intTable(vals), 32, 16)
	cs := ts.Columns["v"]
	// The hottest key must be estimated exactly.
	est := cs.SelectivityEqInt(cs.MCVs[0])
	truth := float64(freq[cs.MCVs[0]]) / float64(len(vals))
	if math.Abs(est-truth) > 1e-12 {
		t.Fatalf("MCV estimate %v != truth %v", est, truth)
	}
}

func TestComputeStatsInvalidBuckets(t *testing.T) {
	if _, err := ComputeStats(intTable([]int64{1}), 0, 4); err == nil {
		t.Fatal("expected error for 0 buckets")
	}
}

func TestSizeBytes(t *testing.T) {
	tab := NewTable(testSchema(), 10)
	ts, _ := ComputeStats(tab, 4, 4)
	want := int64(10*bytesPerIntCol + 10*bytesPerStrCol)
	if ts.SizeBytes != want {
		t.Fatalf("SizeBytes = %d, want %d", ts.SizeBytes, want)
	}
}

func TestEmptyTableStats(t *testing.T) {
	ts, err := ComputeStats(intTable(nil), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cs := ts.Columns["v"]
	if cs.NDV != 0 || len(cs.Hist) != 0 {
		t.Fatalf("empty stats: %+v", cs)
	}
}
