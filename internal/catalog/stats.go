package catalog

import (
	"fmt"
	"sort"
)

// Bucket is one equi-depth histogram bucket: Count values fall in
// (previous bucket's Upper, Upper].
type Bucket struct {
	Upper int64
	Count int
}

// ColumnStats summarizes one column for cardinality estimation.
type ColumnStats struct {
	Min, Max int64    // int columns only
	NDV      int      // number of distinct values
	Hist     []Bucket // equi-depth histogram, int columns only
	TopVals  []string // most common string values (string columns only)
	TopFreqs []int    // frequencies matching TopVals
	// MCVs are the most common integer values with their frequencies —
	// essential for equality selectivity on zipf-skewed foreign keys,
	// where 1/NDV underestimates hot keys by orders of magnitude.
	MCVs     []int64
	MCVFreqs []int
	Rows     int
}

// TableStats summarizes a table.
type TableStats struct {
	Rows      int
	SizeBytes int64 // simulated on-disk footprint
	Columns   map[string]*ColumnStats
}

// bytesPerIntCol is the simulated storage width of an int64 column value,
// and bytesPerStrCol an average string value (Parquet-ish, uncompressed).
const (
	bytesPerIntCol = 8
	bytesPerStrCol = 24
)

// ComputeStats scans a table and builds per-column statistics. buckets is
// the histogram resolution for int columns (≥1); topK bounds the common
// value list for string columns.
func ComputeStats(t *Table, buckets, topK int) (*TableStats, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("catalog: need at least 1 histogram bucket, got %d", buckets)
	}
	ts := &TableStats{Rows: t.NumRows, Columns: map[string]*ColumnStats{}}
	for _, c := range t.Schema.Columns {
		switch c.Type {
		case Int64:
			ts.Columns[c.Name] = intStats(t.IntCol(c.Name), buckets, topK)
			ts.SizeBytes += int64(t.NumRows) * bytesPerIntCol
		case String:
			ts.Columns[c.Name] = strStats(t.StrCol(c.Name), topK)
			ts.SizeBytes += int64(t.NumRows) * bytesPerStrCol
		}
	}
	return ts, nil
}

func intStats(vals []int64, buckets, topK int) *ColumnStats {
	cs := &ColumnStats{Rows: len(vals)}
	if len(vals) == 0 {
		return cs
	}
	sorted := make([]int64, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	cs.Min = sorted[0]
	cs.Max = sorted[len(sorted)-1]
	ndv := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			ndv++
		}
	}
	cs.NDV = ndv

	// Most common values: a single pass over the sorted data finds run
	// lengths; keep the topK longest.
	if topK > 0 {
		type run struct {
			v int64
			n int
		}
		var runs []run
		start := 0
		for i := 1; i <= len(sorted); i++ {
			if i == len(sorted) || sorted[i] != sorted[start] {
				runs = append(runs, run{sorted[start], i - start})
				start = i
			}
		}
		sort.Slice(runs, func(a, b int) bool {
			if runs[a].n != runs[b].n {
				return runs[a].n > runs[b].n
			}
			return runs[a].v < runs[b].v
		})
		if topK > len(runs) {
			topK = len(runs)
		}
		for _, r := range runs[:topK] {
			cs.MCVs = append(cs.MCVs, r.v)
			cs.MCVFreqs = append(cs.MCVFreqs, r.n)
		}
	}

	if buckets > len(sorted) {
		buckets = len(sorted)
	}
	per := len(sorted) / buckets
	rem := len(sorted) % buckets
	idx := 0
	for b := 0; b < buckets; b++ {
		n := per
		if b < rem {
			n++
		}
		if n == 0 {
			continue
		}
		idx += n
		upper := sorted[idx-1]
		// Merge buckets that share an upper bound (heavy hitters).
		if len(cs.Hist) > 0 && cs.Hist[len(cs.Hist)-1].Upper == upper {
			cs.Hist[len(cs.Hist)-1].Count += n
		} else {
			cs.Hist = append(cs.Hist, Bucket{Upper: upper, Count: n})
		}
	}
	return cs
}

func strStats(vals []string, topK int) *ColumnStats {
	cs := &ColumnStats{Rows: len(vals)}
	freq := map[string]int{}
	for _, v := range vals {
		freq[v]++
	}
	cs.NDV = len(freq)
	type kv struct {
		k string
		v int
	}
	all := make([]kv, 0, len(freq))
	for k, v := range freq {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	if topK > len(all) {
		topK = len(all)
	}
	for _, e := range all[:topK] {
		cs.TopVals = append(cs.TopVals, e.k)
		cs.TopFreqs = append(cs.TopFreqs, e.v)
	}
	return cs
}

// SelectivityLess estimates the fraction of rows with value < x (or ≤ x
// when orEqual) using the histogram, assuming uniformity within buckets.
func (cs *ColumnStats) SelectivityLess(x int64, orEqual bool) float64 {
	if cs.Rows == 0 || len(cs.Hist) == 0 {
		return 0.1
	}
	if x < cs.Min {
		return 0
	}
	bound := cs.Max
	if x >= bound {
		return 1
	}
	var count float64
	lower := cs.Min - 1
	for _, b := range cs.Hist {
		if x > b.Upper {
			count += float64(b.Count)
			lower = b.Upper
			continue
		}
		// x falls inside this bucket; interpolate.
		width := float64(b.Upper - lower)
		if width <= 0 {
			width = 1
		}
		frac := float64(x-lower) / width
		if !orEqual {
			frac = float64(x-lower-1) / width
		}
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		count += frac * float64(b.Count)
		break
	}
	s := count / float64(cs.Rows)
	if s < 0 {
		s = 0
	} else if s > 1 {
		s = 1
	}
	return s
}

// SelectivityEq estimates equality selectivity for an unknown literal:
// the uniform 1/NDV assumption.
func (cs *ColumnStats) SelectivityEq() float64 {
	if cs.NDV == 0 {
		return 0
	}
	return 1 / float64(cs.NDV)
}

// SelectivityEqInt estimates the fraction of rows equal to v, using the
// most-common-value list when v is in it and the uniform assumption over
// the remainder otherwise.
func (cs *ColumnStats) SelectivityEqInt(v int64) float64 {
	if cs.Rows == 0 {
		return 0
	}
	if v < cs.Min || v > cs.Max {
		return 0
	}
	var mcvTotal int
	for i, mv := range cs.MCVs {
		if mv == v {
			return float64(cs.MCVFreqs[i]) / float64(cs.Rows)
		}
		mcvTotal += cs.MCVFreqs[i]
	}
	rare := cs.NDV - len(cs.MCVs)
	if rare <= 0 {
		return 0
	}
	rest := cs.Rows - mcvTotal
	if rest <= 0 {
		return 0
	}
	return float64(rest) / float64(rare) / float64(cs.Rows)
}

// SelectivityEqStr estimates equality selectivity for a string literal,
// using the common-value list when the literal is in it.
func (cs *ColumnStats) SelectivityEqStr(v string) float64 {
	for i, tv := range cs.TopVals {
		if tv == v {
			return float64(cs.TopFreqs[i]) / float64(cs.Rows)
		}
	}
	// Not a common value: assume it is one of the remaining distinct values.
	rare := cs.NDV - len(cs.TopVals)
	if rare <= 0 {
		return 0
	}
	var topTotal int
	for _, f := range cs.TopFreqs {
		topTotal += f
	}
	rest := cs.Rows - topTotal
	if rest <= 0 {
		return 0
	}
	return float64(rest) / float64(rare) / float64(cs.Rows)
}
