// Package catalog defines schemas, in-memory columnar tables, and the
// statistics (row counts, distinct values, equi-depth histograms) that feed
// both the cardinality estimator and the learned cost models' "other
// features" input.
package catalog

import (
	"fmt"
	"sort"
)

// Type is a column's value type.
type Type int

// Supported column types.
const (
	Int64 Type = iota
	String
)

func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Column describes one column of a schema.
type Column struct {
	Name string
	Type Type
}

// Schema describes a table's shape.
type Schema struct {
	Name    string
	Columns []Column
}

// Col returns the named column description, or ok=false.
func (s *Schema) Col(name string) (Column, bool) {
	for _, c := range s.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// Table is an in-memory columnar table. Exactly one of Ints[name] or
// Strs[name] is populated for each schema column, according to its type.
type Table struct {
	Schema  *Schema
	NumRows int
	Ints    map[string][]int64
	Strs    map[string][]string
}

// NewTable returns an empty table for schema with column storage allocated.
func NewTable(schema *Schema, rows int) *Table {
	t := &Table{
		Schema:  schema,
		NumRows: rows,
		Ints:    map[string][]int64{},
		Strs:    map[string][]string{},
	}
	for _, c := range schema.Columns {
		switch c.Type {
		case Int64:
			t.Ints[c.Name] = make([]int64, rows)
		case String:
			t.Strs[c.Name] = make([]string, rows)
		}
	}
	return t
}

// IntCol returns the named int64 column; it panics if absent, which
// indicates a planner/binder bug rather than a user error.
func (t *Table) IntCol(name string) []int64 {
	col, ok := t.Ints[name]
	if !ok {
		panic(fmt.Sprintf("catalog: table %s has no int column %q", t.Schema.Name, name))
	}
	return col
}

// StrCol returns the named string column; it panics if absent.
func (t *Table) StrCol(name string) []string {
	col, ok := t.Strs[name]
	if !ok {
		panic(fmt.Sprintf("catalog: table %s has no string column %q", t.Schema.Name, name))
	}
	return col
}

// Validate checks that storage matches the schema and row count.
func (t *Table) Validate() error {
	for _, c := range t.Schema.Columns {
		switch c.Type {
		case Int64:
			if len(t.Ints[c.Name]) != t.NumRows {
				return fmt.Errorf("catalog: %s.%s has %d values, want %d",
					t.Schema.Name, c.Name, len(t.Ints[c.Name]), t.NumRows)
			}
		case String:
			if len(t.Strs[c.Name]) != t.NumRows {
				return fmt.Errorf("catalog: %s.%s has %d values, want %d",
					t.Schema.Name, c.Name, len(t.Strs[c.Name]), t.NumRows)
			}
		}
	}
	return nil
}

// Database is a named collection of tables.
type Database struct {
	Name   string
	Tables map[string]*Table
}

// Table returns the named table or an error.
func (d *Database) Table(name string) (*Table, error) {
	t, ok := d.Tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: database %s has no table %q", d.Name, name)
	}
	return t, nil
}

// TableNames returns the table names in sorted order.
func (d *Database) TableNames() []string {
	names := make([]string, 0, len(d.Tables))
	for n := range d.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalRows returns the sum of all table row counts.
func (d *Database) TotalRows() int {
	n := 0
	for _, t := range d.Tables {
		n += t.NumRows
	}
	return n
}
