package engine

import (
	"fmt"
	"strings"

	"raal/internal/sql"
)

// compilePred turns a bound predicate into a per-row evaluator over rel.
// Column references must be alias-qualified (the binder guarantees this).
func compilePred(rel *Relation, p sql.Predicate) (func(i int) bool, error) {
	switch pred := p.(type) {
	case *sql.Comparison:
		name := pred.Left.String()
		if pred.RightCol != nil {
			rname := pred.RightCol.String()
			lc, lok := rel.Ints[name]
			rc, rok := rel.Ints[rname]
			if !lok || !rok {
				return nil, fmt.Errorf("engine: column comparison %s needs int columns", pred)
			}
			op := pred.Op
			return func(i int) bool { return cmpInt(lc[i], rc[i], op) }, nil
		}
		if pred.Lit.IsStr {
			col, ok := rel.Strs[name]
			if !ok {
				return nil, fmt.Errorf("engine: missing string column %q", name)
			}
			lit := pred.Lit.S
			op := pred.Op
			return func(i int) bool { return cmpStr(col[i], lit, op) }, nil
		}
		col, ok := rel.Ints[name]
		if !ok {
			return nil, fmt.Errorf("engine: missing int column %q", name)
		}
		lit := pred.Lit.I
		op := pred.Op
		return func(i int) bool { return cmpInt(col[i], lit, op) }, nil

	case *sql.Between:
		col, ok := rel.Ints[pred.Col.String()]
		if !ok {
			return nil, fmt.Errorf("engine: missing int column %q", pred.Col)
		}
		lo, hi := pred.Lo, pred.Hi
		return func(i int) bool { return col[i] >= lo && col[i] <= hi }, nil

	case *sql.In:
		name := pred.Col.String()
		if col, ok := rel.Ints[name]; ok {
			set := map[int64]bool{}
			for _, v := range pred.Values {
				set[v.I] = true
			}
			return func(i int) bool { return set[col[i]] }, nil
		}
		if col, ok := rel.Strs[name]; ok {
			set := map[string]bool{}
			for _, v := range pred.Values {
				set[v.S] = true
			}
			return func(i int) bool { return set[col[i]] }, nil
		}
		return nil, fmt.Errorf("engine: missing column %q", name)

	case *sql.Like:
		col, ok := rel.Strs[pred.Col.String()]
		if !ok {
			return nil, fmt.Errorf("engine: missing string column %q", pred.Col)
		}
		match := compileLike(pred.Pattern)
		return func(i int) bool { return match(col[i]) }, nil

	case *sql.NullCheck:
		// Generated data is NULL-free: IS NOT NULL is vacuously true.
		not := pred.Not
		return func(int) bool { return not }, nil
	}
	return nil, fmt.Errorf("engine: unsupported predicate %T", p)
}

func cmpInt(a, b int64, op sql.CmpOp) bool {
	switch op {
	case sql.OpEq:
		return a == b
	case sql.OpNe:
		return a != b
	case sql.OpLt:
		return a < b
	case sql.OpLe:
		return a <= b
	case sql.OpGt:
		return a > b
	case sql.OpGe:
		return a >= b
	}
	return false
}

func cmpStr(a, b string, op sql.CmpOp) bool {
	switch op {
	case sql.OpEq:
		return a == b
	case sql.OpNe:
		return a != b
	case sql.OpLt:
		return a < b
	case sql.OpLe:
		return a <= b
	case sql.OpGt:
		return a > b
	case sql.OpGe:
		return a >= b
	}
	return false
}

// compileLike supports SQL LIKE with % wildcards (no _): the pattern is
// split on % and segments must appear in order, anchored at the ends when
// the pattern does not start/end with %.
func compileLike(pattern string) func(string) bool {
	segs := strings.Split(pattern, "%")
	anchoredStart := !strings.HasPrefix(pattern, "%")
	anchoredEnd := !strings.HasSuffix(pattern, "%")
	// Drop empty segments produced by consecutive or boundary %.
	var parts []string
	for _, s := range segs {
		if s != "" {
			parts = append(parts, s)
		}
	}
	return func(s string) bool {
		if len(parts) == 0 {
			return true // pattern was all wildcards
		}
		if anchoredStart {
			if !strings.HasPrefix(s, parts[0]) {
				return false
			}
			s = s[len(parts[0]):]
			rest := parts[1:]
			if len(rest) == 0 {
				return !anchoredEnd || s == ""
			}
			return likeTail(s, rest, anchoredEnd)
		}
		return likeTail(s, parts, anchoredEnd)
	}
}

func likeTail(s string, parts []string, anchoredEnd bool) bool {
	for i, p := range parts {
		last := i == len(parts)-1
		if last && anchoredEnd {
			return strings.HasSuffix(s, p)
		}
		idx := strings.Index(s, p)
		if idx < 0 {
			return false
		}
		s = s[idx+len(p):]
	}
	return true
}

// applyPreds filters rel by the conjunction of preds.
func applyPreds(rel *Relation, preds []sql.Predicate) (*Relation, error) {
	if len(preds) == 0 {
		return rel, nil
	}
	fns := make([]func(int) bool, len(preds))
	for i, p := range preds {
		f, err := compilePred(rel, p)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	var idx []int
rowLoop:
	for i := 0; i < rel.N; i++ {
		for _, f := range fns {
			if !f(i) {
				continue rowLoop
			}
		}
		idx = append(idx, i)
	}
	return rel.gather(idx), nil
}
