package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"raal/internal/physical"
	"raal/internal/sql"
	"raal/internal/telemetry"
)

// The streaming execution path. Operators are composable chunk iterators
// in the Volcano style, but vectorized: Next() yields a Batch of up to
// BatchSize rows instead of a single tuple. Filters, projections, and
// limits are zero-copy (selection vectors and slice-header reuse); scans
// emit windows over the catalog's column storage without copying; joins
// materialize only their build side; aggregates hold only group state.
// Nothing except explicit pipeline breakers (Sort, the aggregate hash
// tables, join build sides) ever holds a full intermediate relation,
// which is what lets the truth oracle execute 10^6–10^7-row inputs in
// near-constant memory where the materialized path held every operator's
// full output at once.
//
// The oracle contract of the materialized path is preserved exactly:
// per-node ActRows, exchange Skew (the partition-hash fold rides the
// streaming pass), incremental ErrRowLimit enforcement, and bit-identical
// final relations. The materialized path remains available via
// ExecMaterialized as the test oracle.

// Iterator is a streaming operator. Next returns the next chunk, or
// (nil, nil) at end of stream. The returned batch is valid only until the
// next Next or Close call on this iterator.
type Iterator interface {
	Next() (*Batch, error)
	// Close releases pooled slabs and finalizes per-node statistics
	// (ActRows, Skew) when the stream is abandoned before EOF.
	Close()

	// lay returns the static column layout of this operator's output.
	lay() *layout
	// emptyCols lists the columns a zero-row result materializes,
	// mirroring the materialized path (a grouped aggregate that produced
	// no groups emits only its key columns; everything else emits its
	// full layout).
	emptyCols() []streamCol
	// totalRows reports the operator's full output cardinality when it is
	// known without draining the stream — pipeline breakers know it after
	// build, pass-throughs delegate — so early-terminated plans still
	// record the exact ActRows the materialized path would.
	totalRows() (int, bool)
}

// runCtx carries per-run execution state shared by all iterators of one
// plan execution.
type runCtx struct {
	eng *Engine
	cap int // batch row capacity
	max int // maxRows cardinality guard
	sp  *telemetry.Span
}

// baseIter supplies the default lay/emptyCols/totalRows so concrete
// operators only override what they specialize.
type baseIter struct {
	l *layout
}

func (b *baseIter) lay() *layout           { return b.l }
func (b *baseIter) emptyCols() []streamCol { return b.l.cols }
func (b *baseIter) totalRows() (int, bool) { return 0, false }

// Stream compiles the plan into an iterator tree without executing it.
// The caller must Close the iterator; ActRows/Skew are recorded
// incrementally as the stream is consumed. Most callers want Run, which
// drains the stream into a Relation; Stream exists for consumers that
// stop early (limits) or never need full materialization.
func (e *Engine) Stream(p *physical.Plan) (Iterator, error) {
	return e.stream(p, nil)
}

func (e *Engine) stream(p *physical.Plan, sp *telemetry.Span) (Iterator, error) {
	for _, n := range p.Nodes {
		n.ActRows = 0
	}
	rc := &runCtx{eng: e, cap: e.batchSize(), max: e.maxRows(), sp: sp}
	return e.buildIter(p.Root, rc)
}

// runStreaming drains the plan's iterator tree into a Relation.
func (e *Engine) runStreaming(p *physical.Plan, sp *telemetry.Span) (*Relation, error) {
	it, err := e.stream(p, sp)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	return drain(it)
}

// drain accumulates a full Relation from an iterator — the only place in
// the streaming path that materializes unbounded output.
func drain(it Iterator) (*Relation, error) {
	l := it.lay()
	cols := make([]colData, len(l.cols))
	n := 0
	for {
		b, err := it.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		appendBatch(cols, l, b)
		n += b.n
	}
	rel := NewRelation()
	rel.N = n
	if n == 0 {
		// Mirror the materialized path's empty-result column set: gather
		// over an empty index list yields empty (non-nil) slices for
		// exactly the columns the operator would carry.
		for _, c := range it.emptyCols() {
			if c.isStr {
				rel.Strs[c.name] = []string{}
			} else {
				rel.Ints[c.name] = []int64{}
			}
		}
		return rel, nil
	}
	for i, c := range l.cols {
		if c.isStr {
			rel.Strs[c.name] = cols[i].strs
		} else {
			rel.Ints[c.name] = cols[i].ints
		}
	}
	return rel, nil
}

// colData accumulates one output column (exactly one of ints/strs used).
type colData struct {
	ints []int64
	strs []string
}

// appendBatch resolves b's selection vector and appends its rows to cols.
func appendBatch(cols []colData, l *layout, b *Batch) {
	for p := range l.cols {
		if l.cols[p].isStr {
			src := b.strs[p]
			if b.sel == nil {
				cols[p].strs = append(cols[p].strs, src[:b.n]...)
			} else {
				for _, r := range b.sel[:b.n] {
					cols[p].strs = append(cols[p].strs, src[r])
				}
			}
		} else {
			src := b.ints[p]
			if b.sel == nil {
				cols[p].ints = append(cols[p].ints, src[:b.n]...)
			} else {
				for _, r := range b.sel[:b.n] {
					cols[p].ints = append(cols[p].ints, src[r])
				}
			}
		}
	}
}

// buildIter compiles node n into its operator iterator wrapped in the
// accounting layer (ActRows, ErrRowLimit, telemetry).
func (e *Engine) buildIter(n *physical.Node, rc *runCtx) (Iterator, error) {
	kids := make([]Iterator, len(n.Children))
	for i, c := range n.Children {
		k, err := e.buildIter(c, rc)
		if err != nil {
			return nil, err // already wrapped at the originating node
		}
		kids[i] = k
	}
	inner, err := e.buildOp(n, kids, rc)
	if err != nil {
		return nil, fmt.Errorf("engine: %s: %w", n.Op, err)
	}
	c := &countedIter{inner: inner, node: n, rc: rc}
	if ins := e.instr; ins != nil {
		op := n.Op.String()
		c.rowsC = ins.rows.With(op)
		c.batchesC = ins.batches.With(op)
		c.nsC = ins.ns.With(op)
	}
	if rc.sp != nil {
		c.stageName = n.Op.String()
	}
	return c, nil
}

func (e *Engine) buildOp(n *physical.Node, kids []Iterator, rc *runCtx) (Iterator, error) {
	switch n.Op {
	case physical.FileScan:
		return e.newScanIter(n, rc)
	case physical.Filter:
		return newFilterIter(kids[0], n.Preds, rc)
	case physical.Project:
		return newProjectIter(kids[0], n.Columns)
	case physical.ExchangeHashPartition:
		return newExchangeIter(kids[0], n), nil
	case physical.ExchangeSinglePartition, physical.BroadcastExchange:
		return &passthroughIter{baseIter{kids[0].lay()}, kids[0]}, nil
	case physical.Sort:
		return newSortIter(kids[0], n, rc)
	case physical.SortMergeJoin, physical.BroadcastHashJoin, physical.ShuffledHashJoin:
		return newHashJoinIter(kids[0], kids[1], n, rc)
	case physical.BroadcastNestedLoopJoin:
		return newNestedLoopIter(kids[0], kids[1], n, rc)
	case physical.HashAggregate, physical.SortAggregate:
		return newAggIter(kids[0], n, rc)
	case physical.LocalLimit:
		return &limitIter{baseIter: baseIter{kids[0].lay()}, child: kids[0], remaining: n.LimitN}, nil
	default:
		return nil, fmt.Errorf("unsupported operator")
	}
}

// countedIter wraps every operator: it accumulates the node's ActRows,
// enforces the engine's row-cardinality guard incrementally (the
// materialized path could only check after an operator had already
// materialized its oversized output), and feeds the per-operator
// telemetry counters.
type countedIter struct {
	inner Iterator
	node  *physical.Node
	rc    *runCtx
	rows  int
	eof   bool

	rowsC, batchesC, nsC *telemetry.Counter
	stageName            string
}

func (c *countedIter) lay() *layout           { return c.inner.lay() }
func (c *countedIter) emptyCols() []streamCol { return c.inner.emptyCols() }

func (c *countedIter) totalRows() (int, bool) {
	if c.eof {
		return c.rows, true
	}
	return c.inner.totalRows()
}

func (c *countedIter) Next() (*Batch, error) {
	if c.eof {
		return nil, nil
	}
	var done func()
	if c.rc.sp != nil {
		done = c.rc.sp.Stage(c.stageName)
	}
	var start time.Time
	if c.nsC != nil {
		start = time.Now()
	}
	b, err := c.inner.Next()
	if c.nsC != nil {
		c.nsC.Add(uint64(time.Since(start)))
	}
	if done != nil {
		done()
	}
	if err != nil {
		return nil, err
	}
	if b == nil {
		c.eof = true
		if tot, ok := c.inner.totalRows(); ok {
			c.rows = tot
		}
		c.node.ActRows = float64(c.rows)
		return nil, nil
	}
	c.rows += b.n
	c.node.ActRows = float64(c.rows)
	if c.rowsC != nil {
		c.rowsC.Add(uint64(b.n))
		c.batchesC.Inc()
	}
	if c.rows > c.rc.max {
		return nil, fmt.Errorf("engine: %s produced %d rows: %w", c.node.Op, c.rows, ErrRowLimit)
	}
	return b, nil
}

func (c *countedIter) Close() {
	// An abandoned stream (limit early-out) still records the best
	// cardinality available: the exact total when the operator knows it
	// (pipeline breakers, and pass-throughs above them), else rows seen.
	if !c.eof {
		if tot, ok := c.inner.totalRows(); ok {
			c.rows = tot
		}
		c.node.ActRows = float64(c.rows)
	}
	c.inner.Close()
}

// ---------------------------------------------------------------------------
// Scan

// scanIter emits zero-copy windows over the catalog's column storage and
// applies pushed-down predicates with a selection vector, so a scan never
// copies table data regardless of filter selectivity.
type scanIter struct {
	baseIter
	rc    *runCtx
	cols  []colData // full table columns, positional
	total int
	off   int
	preds []rowPred
	sel   []int32
	out   Batch
}

func (e *Engine) newScanIter(n *physical.Node, rc *runCtx) (Iterator, error) {
	tab, err := e.db.Table(n.Table)
	if err != nil {
		return nil, err
	}
	cols := make([]streamCol, 0, len(n.Columns))
	data := make([]colData, 0, len(n.Columns))
	for _, c := range n.Columns {
		q := n.Alias + "." + c
		if col, ok := tab.Ints[c]; ok {
			cols = append(cols, streamCol{name: q})
			data = append(data, colData{ints: col})
			continue
		}
		if col, ok := tab.Strs[c]; ok {
			cols = append(cols, streamCol{name: q, isStr: true})
			data = append(data, colData{strs: col})
			continue
		}
		return nil, fmt.Errorf("table %s has no column %q", n.Table, c)
	}
	l := newLayout(cols)
	it := &scanIter{baseIter: baseIter{l}, rc: rc, cols: data, total: tab.NumRows}
	it.out.ints = make([][]int64, len(cols))
	it.out.strs = make([][]string, len(cols))
	if len(n.Preds) > 0 {
		it.preds, err = compileStreamPreds(l, n.Preds)
		if err != nil {
			return nil, err
		}
		it.sel = rc.eng.pool.getSel(rc.cap)
	}
	return it, nil
}

func (s *scanIter) Next() (*Batch, error) {
	for s.off < s.total {
		end := s.off + s.rc.cap
		if end > s.total {
			end = s.total
		}
		n := end - s.off
		for p := range s.cols {
			if s.cols[p].strs != nil {
				s.out.strs[p] = s.cols[p].strs[s.off:end]
				s.out.ints[p] = nil
			} else {
				s.out.ints[p] = s.cols[p].ints[s.off:end]
				s.out.strs[p] = nil
			}
		}
		s.off = end
		if s.preds == nil {
			s.out.n = n
			s.out.sel = nil
			return &s.out, nil
		}
		sel := s.sel[:0]
		for i := 0; i < n; i++ {
			keep := true
			for _, f := range s.preds {
				if !f(&s.out, i) {
					keep = false
					break
				}
			}
			if keep {
				sel = append(sel, int32(i))
			}
		}
		if len(sel) == 0 {
			continue // fully filtered window: pull the next one
		}
		s.sel = sel
		s.out.n = len(sel)
		s.out.sel = sel
		return &s.out, nil
	}
	return nil, nil
}

func (s *scanIter) Close() {
	if s.sel != nil {
		s.rc.eng.pool.putSel(s.sel)
		s.sel = nil
	}
}

// ---------------------------------------------------------------------------
// Filter

// filterIter narrows each child batch with a selection vector; column
// data is shared with the child, never copied.
type filterIter struct {
	baseIter
	rc    *runCtx
	child Iterator
	preds []rowPred
	sel   []int32
	out   Batch
}

func newFilterIter(child Iterator, preds []sql.Predicate, rc *runCtx) (Iterator, error) {
	l := child.lay()
	fns, err := compileStreamPreds(l, preds)
	if err != nil {
		return nil, err
	}
	return &filterIter{baseIter: baseIter{l}, rc: rc, child: child, preds: fns, sel: rc.eng.pool.getSel(rc.cap)}, nil
}

func (f *filterIter) Next() (*Batch, error) {
	for {
		cb, err := f.child.Next()
		if err != nil {
			return nil, err
		}
		if cb == nil {
			return nil, nil
		}
		sel := f.sel[:0]
		for i := 0; i < cb.n; i++ {
			r := cb.row(i)
			keep := true
			for _, fn := range f.preds {
				if !fn(cb, r) {
					keep = false
					break
				}
			}
			if keep {
				sel = append(sel, int32(r))
			}
		}
		if len(sel) == 0 {
			continue
		}
		f.sel = sel
		f.out = Batch{n: len(sel), sel: sel, ints: cb.ints, strs: cb.strs}
		return &f.out, nil
	}
}

func (f *filterIter) Close() {
	if f.sel != nil {
		f.rc.eng.pool.putSel(f.sel)
		f.sel = nil
	}
	f.child.Close()
}

// ---------------------------------------------------------------------------
// Project

// projectIter reorders column positions by copying slice headers only.
type projectIter struct {
	baseIter
	child Iterator
	src   []int // output position → child position
	out   Batch
}

func newProjectIter(child Iterator, cols []string) (Iterator, error) {
	cl := child.lay()
	outCols := make([]streamCol, len(cols))
	src := make([]int, len(cols))
	for i, c := range cols {
		p, ok := cl.find(c)
		if !ok {
			return nil, fmt.Errorf("engine: projection references missing column %q (have %s)",
				c, strings.Join(cl.names(), ","))
		}
		outCols[i] = cl.cols[p]
		src[i] = p
	}
	it := &projectIter{baseIter: baseIter{newLayout(outCols)}, child: child, src: src}
	it.out.ints = make([][]int64, len(cols))
	it.out.strs = make([][]string, len(cols))
	return it, nil
}

func (p *projectIter) Next() (*Batch, error) {
	cb, err := p.child.Next()
	if err != nil {
		return nil, err
	}
	if cb == nil {
		return nil, nil
	}
	for i, s := range p.src {
		p.out.ints[i] = cb.ints[s]
		p.out.strs[i] = cb.strs[s]
	}
	p.out.n = cb.n
	p.out.sel = cb.sel
	return &p.out, nil
}

func (p *projectIter) totalRows() (int, bool) { return p.child.totalRows() }
func (p *projectIter) Close()                 { p.child.Close() }

// ---------------------------------------------------------------------------
// Exchanges

// passthroughIter models single-partition and broadcast exchanges, which
// move no data on a single node.
type passthroughIter struct {
	baseIter
	child Iterator
}

func (p *passthroughIter) Next() (*Batch, error)  { return p.child.Next() }
func (p *passthroughIter) emptyCols() []streamCol { return p.child.emptyCols() }
func (p *passthroughIter) totalRows() (int, bool) { return p.child.totalRows() }
func (p *passthroughIter) Close()                 { p.child.Close() }

// exchangeIter passes batches through while folding the partition hash of
// the exchange key into per-partition counts — the skew measurement the
// materialized path computed with a second full pass over the relation
// now rides the streaming one.
type exchangeIter struct {
	baseIter
	child  Iterator
	node   *physical.Node
	keyPos int // -1 when the key is absent (skew stays 1, like measureSkew)
	isStr  bool
	counts [skewPartitions]int
	total  int
	done   bool
}

func newExchangeIter(child Iterator, n *physical.Node) Iterator {
	it := &exchangeIter{baseIter: baseIter{child.lay()}, child: child, node: n, keyPos: -1}
	if key := exchangeKey(n); key != nil {
		if p, ok := child.lay().find(key.String()); ok {
			it.keyPos = p
			it.isStr = child.lay().cols[p].isStr
		}
	}
	return it
}

func (x *exchangeIter) Next() (*Batch, error) {
	b, err := x.child.Next()
	if err != nil {
		return nil, err
	}
	if b == nil {
		if !x.done {
			x.done = true
			x.node.Skew = x.skew()
		}
		return nil, nil
	}
	x.total += b.n
	if x.keyPos >= 0 {
		if x.isStr {
			col := b.strs[x.keyPos]
			for i := 0; i < b.n; i++ {
				v := col[b.row(i)]
				var h uint64 = 14695981039346656037
				for j := 0; j < len(v); j++ {
					h = (h ^ uint64(v[j])) * 1099511628211
				}
				x.counts[h%skewPartitions]++
			}
		} else {
			col := b.ints[x.keyPos]
			for i := 0; i < b.n; i++ {
				h := uint64(col[b.row(i)]) * 0x9E3779B97F4A7C15
				x.counts[h%skewPartitions]++
			}
		}
	}
	return b, nil
}

func (x *exchangeIter) skew() float64 {
	if x.keyPos < 0 || x.total == 0 {
		return 1
	}
	max := 0
	for _, c := range x.counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / (float64(x.total) / skewPartitions)
}

func (x *exchangeIter) emptyCols() []streamCol { return x.child.emptyCols() }
func (x *exchangeIter) totalRows() (int, bool) { return x.child.totalRows() }

func (x *exchangeIter) Close() {
	if !x.done {
		// Abandoned before EOF (a limit above cut the stream): record the
		// skew of the rows that actually flowed.
		x.done = true
		x.node.Skew = x.skew()
	}
	x.child.Close()
}

// ---------------------------------------------------------------------------
// Sort

// sortIter is a pipeline breaker: it drains its child, stable-sorts once,
// then emits windows over the sorted columns. After build it knows its
// exact cardinality, so plans cut short above a sort still report the
// same ActRows as full materialization.
type sortIter struct {
	baseIter
	child  Iterator
	keyPos int
	desc   bool
	rc     *runCtx
	built  bool
	cols   []colData
	total  int
	off    int
	out    Batch
}

func newSortIter(child Iterator, n *physical.Node, rc *runCtx) (Iterator, error) {
	if n.SortCol == nil {
		return &passthroughIter{baseIter{child.lay()}, child}, nil
	}
	l := child.lay()
	p, ok := l.find(n.SortCol.String())
	if !ok {
		return nil, fmt.Errorf("sort column %q missing", n.SortCol.String())
	}
	it := &sortIter{baseIter: baseIter{l}, child: child, keyPos: p, desc: n.SortDesc, rc: rc}
	it.out.ints = make([][]int64, len(l.cols))
	it.out.strs = make([][]string, len(l.cols))
	return it, nil
}

func (s *sortIter) build() error {
	acc := make([]colData, len(s.l.cols))
	for {
		b, err := s.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		appendBatch(acc, s.l, b)
		s.total += b.n
		if s.total > s.rc.max {
			return fmt.Errorf("sort input exceeds %d rows: %w", s.rc.max, ErrRowLimit)
		}
	}
	idx := make([]int, s.total)
	for i := range idx {
		idx[i] = i
	}
	desc := s.desc
	if s.l.cols[s.keyPos].isStr {
		key := acc[s.keyPos].strs
		sort.SliceStable(idx, func(a, b int) bool {
			if desc {
				return key[idx[a]] > key[idx[b]]
			}
			return key[idx[a]] < key[idx[b]]
		})
	} else {
		key := acc[s.keyPos].ints
		sort.SliceStable(idx, func(a, b int) bool {
			if desc {
				return key[idx[a]] > key[idx[b]]
			}
			return key[idx[a]] < key[idx[b]]
		})
	}
	s.cols = make([]colData, len(s.l.cols))
	for p := range acc {
		if s.l.cols[p].isStr {
			nc := make([]string, s.total)
			for i, j := range idx {
				nc[i] = acc[p].strs[j]
			}
			s.cols[p].strs = nc
			acc[p].strs = nil
		} else {
			nc := make([]int64, s.total)
			for i, j := range idx {
				nc[i] = acc[p].ints[j]
			}
			s.cols[p].ints = nc
			acc[p].ints = nil
		}
	}
	s.built = true
	return nil
}

func (s *sortIter) Next() (*Batch, error) {
	if !s.built {
		if err := s.build(); err != nil {
			return nil, err
		}
	}
	if s.off >= s.total {
		return nil, nil
	}
	end := s.off + s.rc.cap
	if end > s.total {
		end = s.total
	}
	for p := range s.cols {
		if s.l.cols[p].isStr {
			s.out.strs[p] = s.cols[p].strs[s.off:end]
			s.out.ints[p] = nil
		} else {
			s.out.ints[p] = s.cols[p].ints[s.off:end]
			s.out.strs[p] = nil
		}
	}
	s.out.n = end - s.off
	s.out.sel = nil
	s.off = end
	return &s.out, nil
}

func (s *sortIter) emptyCols() []streamCol {
	if s.built {
		return s.child.emptyCols()
	}
	return s.l.cols
}

func (s *sortIter) totalRows() (int, bool) { return s.total, s.built }
func (s *sortIter) Close()                 { s.cols = nil; s.child.Close() }

// ---------------------------------------------------------------------------
// Limit

// limitIter truncates the stream via the selection-vector length and —
// the part the materialized path could never do — stops pulling child
// batches entirely once the limit is satisfied, so a LIMIT over a large
// scan reads only the rows it returns.
type limitIter struct {
	baseIter
	child     Iterator
	remaining int
	done      bool
	sawRows   bool
	pulled    bool
	out       Batch
}

func (l *limitIter) Next() (*Batch, error) {
	if l.done {
		return nil, nil
	}
	if l.remaining <= 0 {
		// LIMIT 0 still observes one child batch so the empty result
		// carries the same columns the materialized path would emit.
		if !l.pulled {
			l.pulled = true
			cb, err := l.child.Next()
			if err != nil {
				return nil, err
			}
			if cb != nil {
				l.sawRows = true
			}
		}
		l.done = true
		return nil, nil
	}
	cb, err := l.child.Next()
	if err != nil {
		return nil, err
	}
	l.pulled = true
	if cb == nil {
		l.done = true
		return nil, nil
	}
	l.sawRows = true
	if cb.n <= l.remaining {
		l.remaining -= cb.n
		return cb, nil
	}
	l.out = *cb
	l.out.n = l.remaining
	if l.out.sel != nil {
		l.out.sel = l.out.sel[:l.remaining]
	}
	l.remaining = 0
	l.done = true // early termination: never pull another child batch
	return &l.out, nil
}

func (l *limitIter) emptyCols() []streamCol {
	if l.sawRows {
		return l.l.cols
	}
	return l.child.emptyCols()
}

func (l *limitIter) Close() { l.child.Close() }
