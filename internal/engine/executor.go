package engine

import (
	"fmt"
	"sort"

	"raal/internal/catalog"
	"raal/internal/logical"
	"raal/internal/physical"
	"raal/internal/sql"
	"raal/internal/telemetry"
)

// ErrRowLimit is returned (wrapped) when an operator would produce more
// rows than the engine's limit — the guard against join explosions in
// generated workloads.
var ErrRowLimit = fmt.Errorf("engine: row limit exceeded")

// ExecMode selects the execution strategy.
type ExecMode int

const (
	// ExecStreaming (the default) runs plans as chunked vectorized
	// iterators: near-constant memory, incremental row-limit
	// enforcement, early termination under limits.
	ExecStreaming ExecMode = iota
	// ExecMaterialized runs the original operator-at-a-time path where
	// every operator fully materializes its output. It is kept as the
	// test oracle the streaming path is verified bit-identical against.
	ExecMaterialized
)

// Engine executes physical plans against a database.
type Engine struct {
	db *catalog.Database

	// MaxRows bounds any single operator's output cardinality; 0 means
	// the default of 5 million.
	MaxRows int

	// Mode selects streaming (default) or materialized execution. Both
	// produce bit-identical relations, ActRows, and Skew.
	Mode ExecMode

	// BatchSize is the streaming chunk capacity in rows; 0 means
	// DefaultBatchSize.
	BatchSize int

	pool  slabPool
	instr *engineInstr
}

// New returns an Engine over db.
func New(db *catalog.Database) *Engine { return &Engine{db: db} }

func (e *Engine) maxRows() int {
	if e.MaxRows > 0 {
		return e.MaxRows
	}
	return 5_000_000
}

func (e *Engine) batchSize() int {
	if e.BatchSize > 0 {
		return e.BatchSize
	}
	return DefaultBatchSize
}

// Run executes the plan, records each node's actual output cardinality
// in node.ActRows, and returns the final relation. An Engine is safe for
// concurrent Run calls on distinct plans.
func (e *Engine) Run(p *physical.Plan) (*Relation, error) {
	return e.RunTraced(p, nil)
}

// RunTraced is Run with an optional telemetry span: the streaming path
// accumulates per-operator stage durations into sp (nil sp means no
// tracing; the materialized oracle path does not trace stages).
func (e *Engine) RunTraced(p *physical.Plan, sp *telemetry.Span) (*Relation, error) {
	if ins := e.instr; ins != nil {
		ins.runs.Inc()
	}
	if e.Mode == ExecMaterialized {
		for _, n := range p.Nodes {
			n.ActRows = 0
		}
		return e.exec(p.Root)
	}
	return e.runStreaming(p, sp)
}

func (e *Engine) exec(n *physical.Node) (*Relation, error) {
	kids := make([]*Relation, len(n.Children))
	for i, c := range n.Children {
		r, err := e.exec(c)
		if err != nil {
			return nil, err
		}
		kids[i] = r
	}

	out, err := e.apply(n, kids)
	if err != nil {
		return nil, fmt.Errorf("engine: %s: %w", n.Op, err)
	}
	if out.N > e.maxRows() {
		return nil, fmt.Errorf("engine: %s produced %d rows: %w", n.Op, out.N, ErrRowLimit)
	}
	n.ActRows = float64(out.N)
	return out, nil
}

func (e *Engine) apply(n *physical.Node, kids []*Relation) (*Relation, error) {
	switch n.Op {
	case physical.FileScan:
		return e.scan(n)
	case physical.Filter:
		return applyPreds(kids[0], n.Preds)
	case physical.Project:
		return kids[0].project(n.Columns)
	case physical.ExchangeHashPartition:
		// Data movement is a no-op for single-node semantics, but the
		// key distribution determines partition skew, which the cluster
		// simulator turns into straggler time.
		n.Skew = measureSkew(kids[0], exchangeKey(n))
		return kids[0], nil
	case physical.ExchangeSinglePartition, physical.BroadcastExchange:
		return kids[0], nil
	case physical.Sort:
		return sortRelation(kids[0], n.SortCol, n.SortDesc, e.maxRows())
	case physical.SortMergeJoin, physical.BroadcastHashJoin, physical.ShuffledHashJoin:
		return hashJoin(kids[0], kids[1], n.LeftKey, n.RightKey, e.maxRows())
	case physical.BroadcastNestedLoopJoin:
		return nestedLoopJoin(kids[0], kids[1], n.LeftKey, n.RightKey, n.ThetaOp, e.maxRows())
	case physical.HashAggregate, physical.SortAggregate:
		if n.Final {
			return finalAggregate(kids[0], n.GroupBy, n.Aggs, e.maxRows())
		}
		return partialAggregate(kids[0], n.GroupBy, n.Aggs, e.maxRows())
	case physical.LocalLimit:
		if kids[0].N <= n.LimitN {
			return kids[0], nil
		}
		// A limit is a prefix: share the column storage instead of
		// copying every column through gather.
		return kids[0].prefix(n.LimitN), nil
	default:
		return nil, fmt.Errorf("unsupported operator")
	}
}

// scan materializes the node's columns with alias-qualified names and
// applies pushed-down filters.
func (e *Engine) scan(n *physical.Node) (*Relation, error) {
	tab, err := e.db.Table(n.Table)
	if err != nil {
		return nil, err
	}
	rel := NewRelation()
	rel.N = tab.NumRows
	for _, c := range n.Columns {
		q := n.Alias + "." + c
		if col, ok := tab.Ints[c]; ok {
			rel.Ints[q] = col
			continue
		}
		if col, ok := tab.Strs[c]; ok {
			rel.Strs[q] = col
			continue
		}
		return nil, fmt.Errorf("table %s has no column %q", n.Table, c)
	}
	return applyPreds(rel, n.Preds)
}

func sortRelation(rel *Relation, col *logical.BoundCol, desc bool, maxRows int) (*Relation, error) {
	if col == nil {
		return rel, nil
	}
	// Guard before building the permutation, not after exec materializes.
	if rel.N > maxRows {
		return nil, fmt.Errorf("sort input exceeds %d rows: %w", maxRows, ErrRowLimit)
	}
	name := col.String()
	idx := make([]int, rel.N)
	for i := range idx {
		idx[i] = i
	}
	if ic, ok := rel.Ints[name]; ok {
		sort.SliceStable(idx, func(a, b int) bool {
			if desc {
				return ic[idx[a]] > ic[idx[b]]
			}
			return ic[idx[a]] < ic[idx[b]]
		})
	} else if sc, ok := rel.Strs[name]; ok {
		sort.SliceStable(idx, func(a, b int) bool {
			if desc {
				return sc[idx[a]] > sc[idx[b]]
			}
			return sc[idx[a]] < sc[idx[b]]
		})
	} else {
		// Join-key sorts reference columns that exist; a miss is a bug.
		return nil, fmt.Errorf("sort column %q missing", name)
	}
	return rel.gather(idx), nil
}

// skewPartitions is the partition count used to measure key skew; it
// matches the simulator's default shuffle partitioning.
const skewPartitions = 24

// exchangeKey returns the partitioning column of a hash exchange (the
// first group key for aggregate shuffles).
func exchangeKey(n *physical.Node) *logical.BoundCol {
	if n.LeftKey != nil {
		return n.LeftKey
	}
	if len(n.GroupBy) > 0 {
		return &n.GroupBy[0]
	}
	return nil
}

// measureSkew returns max/avg partition size under hash partitioning by
// key (1 = perfectly balanced). Unknown keys or empty inputs return 1.
func measureSkew(rel *Relation, key *logical.BoundCol) float64 {
	if key == nil || rel.N == 0 {
		return 1
	}
	counts := make([]int, skewPartitions)
	if ic, ok := rel.Ints[key.String()]; ok {
		for _, v := range ic {
			h := uint64(v) * 0x9E3779B97F4A7C15
			counts[h%skewPartitions]++
		}
	} else if sc, ok := rel.Strs[key.String()]; ok {
		for _, v := range sc {
			var h uint64 = 14695981039346656037
			for i := 0; i < len(v); i++ {
				h = (h ^ uint64(v[i])) * 1099511628211
			}
			counts[h%skewPartitions]++
		}
	} else {
		return 1
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	avg := float64(rel.N) / skewPartitions
	if avg == 0 {
		return 1
	}
	return float64(max) / avg
}

// nestedLoopJoin joins left and right on a non-equi comparison
// (leftKey op rightKey), the execution strategy of a broadcast nested loop
// join. maxRows aborts runaway outputs.
func nestedLoopJoin(left, right *Relation, lk, rk *logical.BoundCol, op sql.CmpOp, maxRows int) (*Relation, error) {
	lcol, ok := left.Ints[lk.String()]
	if !ok {
		return nil, fmt.Errorf("nested loop key %q missing on left side", lk)
	}
	rcol, ok := right.Ints[rk.String()]
	if !ok {
		return nil, fmt.Errorf("nested loop key %q missing on right side", rk)
	}
	var li, ri []int
	for i, lv := range lcol {
		for j, rv := range rcol {
			if cmpInt(lv, rv, op) {
				li = append(li, i)
				ri = append(ri, j)
			}
		}
		if len(li) > maxRows {
			return nil, fmt.Errorf("nested loop output exceeds %d rows: %w", maxRows, ErrRowLimit)
		}
	}
	return combineSides(left.gather(li), right.gather(ri), len(li))
}

// combineSides merges the gathered left and right relations of a join.
func combineSides(lg, rg *Relation, n int) (*Relation, error) {
	out := NewRelation()
	out.N = n
	for name, col := range lg.Ints {
		out.Ints[name] = col
	}
	for name, col := range lg.Strs {
		out.Strs[name] = col
	}
	for name, col := range rg.Ints {
		if _, dup := out.Ints[name]; dup {
			return nil, fmt.Errorf("duplicate column %q across join sides", name)
		}
		out.Ints[name] = col
	}
	for name, col := range rg.Strs {
		if _, dup := out.Strs[name]; dup {
			return nil, fmt.Errorf("duplicate column %q across join sides", name)
		}
		out.Strs[name] = col
	}
	return out, nil
}

// hashJoin equi-joins left and right on the given keys, building on the
// right side (the broadcast/new side in our plans). maxRows aborts
// runaway joins before they exhaust memory.
func hashJoin(left, right *Relation, lk, rk *logical.BoundCol, maxRows int) (*Relation, error) {
	lname, rname := lk.String(), rk.String()
	var li, ri []int

	if lcol, ok := left.Ints[lname]; ok {
		rcol, ok := right.Ints[rname]
		if !ok {
			return nil, fmt.Errorf("join key %q missing on right side", rname)
		}
		build := make(map[int64][]int, right.N)
		for j, v := range rcol {
			build[v] = append(build[v], j)
		}
		for i, v := range lcol {
			for _, j := range build[v] {
				li = append(li, i)
				ri = append(ri, j)
			}
			if len(li) > maxRows {
				return nil, fmt.Errorf("join output exceeds %d rows: %w", maxRows, ErrRowLimit)
			}
		}
	} else if lcol, ok := left.Strs[lname]; ok {
		rcol, ok := right.Strs[rname]
		if !ok {
			return nil, fmt.Errorf("join key %q missing on right side", rname)
		}
		build := make(map[string][]int, right.N)
		for j, v := range rcol {
			build[v] = append(build[v], j)
		}
		for i, v := range lcol {
			for _, j := range build[v] {
				li = append(li, i)
				ri = append(ri, j)
			}
			if len(li) > maxRows {
				return nil, fmt.Errorf("join output exceeds %d rows: %w", maxRows, ErrRowLimit)
			}
		}
	} else {
		return nil, fmt.Errorf("join key %q missing on left side", lname)
	}

	return combineSides(left.gather(li), right.gather(ri), len(li))
}
