package engine

import (
	"fmt"
	"math"
	"strings"

	"raal/internal/catalog"
	"raal/internal/logical"
	"raal/internal/sql"
)

// Partial aggregation emits, per group, internal state columns that final
// aggregation merges — mirroring Spark's two-phase (partial/final)
// aggregation. State columns per aggregate i:
//
//	count      → __p<i>_cnt
//	sum        → __p<i>_sum
//	avg        → __p<i>_sum and __p<i>_cnt
//	min / max  → __p<i>_min / __p<i>_max
//
// Final output columns are named agg<i> (int64), and the group key keeps
// its qualified name. AVG results use integer division, which is
// sufficient for a cost-model substrate.

type aggState struct {
	cnt      int64
	sum      int64
	min, max int64
	seen     bool
}

// groupKeyFn returns a row→group-key function and an emitter that copies
// the key columns of a representative row into the output relation. Empty
// groupBy puts every row in one global group.
func groupKeyFn(rel *Relation, groupBy []logical.BoundCol) (func(i int) string, func(repRow int, out *Relation), error) {
	if len(groupBy) == 0 {
		return func(int) string { return "" }, func(int, *Relation) {}, nil
	}
	type colAccess struct {
		name string
		ints []int64
		strs []string
	}
	cols := make([]colAccess, len(groupBy))
	for i, g := range groupBy {
		name := g.String()
		ca := colAccess{name: name}
		if ic, ok := rel.Ints[name]; ok {
			ca.ints = ic
		} else if sc, ok := rel.Strs[name]; ok {
			ca.strs = sc
		} else {
			return nil, nil, fmt.Errorf("group column %q missing", name)
		}
		cols[i] = ca
	}
	keyOf := func(i int) string {
		var sb strings.Builder
		for _, c := range cols {
			if c.ints != nil {
				fmt.Fprintf(&sb, "i%d\x00", c.ints[i])
			} else {
				fmt.Fprintf(&sb, "s%s\x00", c.strs[i])
			}
		}
		return sb.String()
	}
	emit := func(repRow int, out *Relation) {
		for _, c := range cols {
			if c.ints != nil {
				out.Ints[c.name] = append(out.Ints[c.name], c.ints[repRow])
			} else {
				out.Strs[c.name] = append(out.Strs[c.name], c.strs[repRow])
			}
		}
	}
	return keyOf, emit, nil
}

// aggInput returns the int column an aggregate reads, or nil for COUNT(*).
func aggInput(rel *Relation, a logical.BoundAgg) ([]int64, error) {
	if a.Star || a.Col == nil {
		return nil, nil
	}
	name := a.Col.String()
	if ic, ok := rel.Ints[name]; ok {
		return ic, nil
	}
	if _, ok := rel.Strs[name]; ok {
		if a.Agg == sql.AggCount {
			return nil, nil // COUNT over strings counts rows (no NULLs)
		}
		return nil, fmt.Errorf("aggregate %s over string column %q", a.Agg, name)
	}
	return nil, fmt.Errorf("aggregate column %q missing", name)
}

func partialAggregate(rel *Relation, groupBy []logical.BoundCol, aggs []logical.BoundAgg, maxRows int) (*Relation, error) {
	keyOf, emitKey, err := groupKeyFn(rel, groupBy)
	if err != nil {
		return nil, err
	}
	inputs := make([][]int64, len(aggs))
	for i, a := range aggs {
		in, err := aggInput(rel, a)
		if err != nil {
			return nil, err
		}
		inputs[i] = in
	}

	states := map[string][]aggState{}
	rep := map[string]int{} // representative row per group
	var order []string
	for i := 0; i < rel.N; i++ {
		k := keyOf(i)
		st, ok := states[k]
		if !ok {
			st = make([]aggState, len(aggs))
			states[k] = st
			rep[k] = i
			order = append(order, k)
			// Enforce the cardinality guard while accumulating, the way
			// the joins do, instead of after materialization in exec.
			if len(order) > maxRows {
				return nil, fmt.Errorf("aggregate output exceeds %d groups: %w", maxRows, ErrRowLimit)
			}
		}
		for ai := range aggs {
			s := &st[ai]
			s.cnt++
			if inputs[ai] != nil {
				v := inputs[ai][i]
				s.sum += v
				if !s.seen || v < s.min {
					s.min = v
				}
				if !s.seen || v > s.max {
					s.max = v
				}
				s.seen = true
			}
		}
	}

	out := NewRelation()
	out.N = len(order)
	for _, k := range order {
		emitKey(rep[k], out)
		st := states[k]
		for ai, a := range aggs {
			appendState(out, ai, a, st[ai])
		}
	}
	// A global aggregate over zero rows still emits one all-zero row
	// (COUNT(*) of an empty input is 0, not absent).
	if len(groupBy) == 0 && out.N == 0 {
		out.N = 1
		for ai, a := range aggs {
			appendState(out, ai, a, aggState{min: math.MaxInt64, max: math.MinInt64})
		}
	}
	ensureGroupCols(out, groupBy)
	return out, nil
}

// ensureGroupCols materializes empty key columns when no group was
// produced, so downstream sorts and projections still resolve them.
func ensureGroupCols(out *Relation, groupBy []logical.BoundCol) {
	if out.N > 0 {
		return
	}
	for _, g := range groupBy {
		name := g.String()
		if g.Type == catalog.String {
			if out.Strs[name] == nil {
				out.Strs[name] = []string{}
			}
		} else if out.Ints[name] == nil {
			out.Ints[name] = []int64{}
		}
	}
}

func appendState(out *Relation, ai int, a logical.BoundAgg, s aggState) {
	pfx := fmt.Sprintf("__p%d", ai)
	switch a.Agg {
	case sql.AggCount:
		out.Ints[pfx+"_cnt"] = append(out.Ints[pfx+"_cnt"], s.cnt)
	case sql.AggSum:
		out.Ints[pfx+"_sum"] = append(out.Ints[pfx+"_sum"], s.sum)
	case sql.AggAvg:
		out.Ints[pfx+"_sum"] = append(out.Ints[pfx+"_sum"], s.sum)
		out.Ints[pfx+"_cnt"] = append(out.Ints[pfx+"_cnt"], s.cnt)
	case sql.AggMin:
		out.Ints[pfx+"_min"] = append(out.Ints[pfx+"_min"], s.min)
	case sql.AggMax:
		out.Ints[pfx+"_max"] = append(out.Ints[pfx+"_max"], s.max)
	case sql.AggNone:
		// bare group-by column: carried by the key itself
	}
}

func finalAggregate(rel *Relation, groupBy []logical.BoundCol, aggs []logical.BoundAgg, maxRows int) (*Relation, error) {
	keyOf, emitKey, err := groupKeyFn(rel, groupBy)
	if err != nil {
		return nil, err
	}

	type finalState struct {
		cnt, sum, min, max int64
		seen               bool
	}
	states := map[string][]finalState{}
	rep := map[string]int{}
	var order []string
	for i := 0; i < rel.N; i++ {
		k := keyOf(i)
		st, ok := states[k]
		if !ok {
			st = make([]finalState, len(aggs))
			for ai := range st {
				st[ai].min = math.MaxInt64
				st[ai].max = math.MinInt64
			}
			states[k] = st
			rep[k] = i
			order = append(order, k)
			if len(order) > maxRows {
				return nil, fmt.Errorf("aggregate output exceeds %d groups: %w", maxRows, ErrRowLimit)
			}
		}
		for ai, a := range aggs {
			s := &st[ai]
			pfx := fmt.Sprintf("__p%d", ai)
			switch a.Agg {
			case sql.AggCount:
				s.cnt += rel.Ints[pfx+"_cnt"][i]
			case sql.AggSum:
				s.sum += rel.Ints[pfx+"_sum"][i]
			case sql.AggAvg:
				s.sum += rel.Ints[pfx+"_sum"][i]
				s.cnt += rel.Ints[pfx+"_cnt"][i]
			case sql.AggMin:
				if v := rel.Ints[pfx+"_min"][i]; v < s.min {
					s.min = v
				}
				s.seen = true
			case sql.AggMax:
				if v := rel.Ints[pfx+"_max"][i]; v > s.max {
					s.max = v
				}
				s.seen = true
			}
		}
	}

	out := NewRelation()
	out.N = len(order)
	for _, k := range order {
		emitKey(rep[k], out)
		for ai, a := range aggs {
			name := fmt.Sprintf("agg%d", ai)
			s := states[k][ai]
			switch a.Agg {
			case sql.AggCount:
				out.Ints[name] = append(out.Ints[name], s.cnt)
			case sql.AggSum:
				out.Ints[name] = append(out.Ints[name], s.sum)
			case sql.AggAvg:
				var v int64
				if s.cnt > 0 {
					v = s.sum / s.cnt
				}
				out.Ints[name] = append(out.Ints[name], v)
			case sql.AggMin:
				out.Ints[name] = append(out.Ints[name], s.min)
			case sql.AggMax:
				out.Ints[name] = append(out.Ints[name], s.max)
			case sql.AggNone:
				// group key already emitted
			}
		}
	}
	ensureGroupCols(out, groupBy)
	return out, nil
}
