package engine

import (
	"errors"
	"sync"
	"testing"

	"raal/internal/physical"
	"raal/internal/telemetry"
)

// relEqual compares two relations for exact equality: same row count,
// same column sets, same values in the same order.
func relEqual(a, b *Relation) bool {
	if a.N != b.N || len(a.Ints) != len(b.Ints) || len(a.Strs) != len(b.Strs) {
		return false
	}
	for name, col := range a.Ints {
		other, ok := b.Ints[name]
		if !ok || len(other) != len(col) {
			return false
		}
		for i := range col {
			if col[i] != other[i] {
				return false
			}
		}
	}
	for name, col := range a.Strs {
		other, ok := b.Strs[name]
		if !ok || len(other) != len(col) {
			return false
		}
		for i := range col {
			if col[i] != other[i] {
				return false
			}
		}
	}
	return true
}

// assertModesAgree runs p under both execution modes and requires
// bit-identical relations, per-node ActRows, and per-node Skew.
func assertModesAgree(t *testing.T, eng *Engine, p *physical.Plan) *Relation {
	t.Helper()
	eng.Mode = ExecMaterialized
	relM, errM := eng.Run(p)
	actM := make([]float64, len(p.Nodes))
	skewM := make([]float64, len(p.Nodes))
	for i, n := range p.Nodes {
		actM[i], skewM[i] = n.ActRows, n.Skew
	}

	eng.Mode = ExecStreaming
	relS, errS := eng.Run(p)
	defer func() { eng.Mode = ExecStreaming }()

	if (errM != nil) != (errS != nil) {
		t.Fatalf("mode error mismatch: materialized=%v streaming=%v", errM, errS)
	}
	if errM != nil {
		// Both must fail the same way: the row-limit guard, or the exact
		// same operator error (streaming surfaces operator errors at
		// iterator-build time, but the message is preserved).
		if errors.Is(errM, ErrRowLimit) && errors.Is(errS, ErrRowLimit) {
			return nil
		}
		if errM.Error() != errS.Error() {
			t.Fatalf("error mismatch: materialized=%v streaming=%v", errM, errS)
		}
		return nil
	}
	if !relEqual(relM, relS) {
		t.Fatalf("relations differ (%s):\nmaterialized: %v %v %v\nstreaming:    %v %v %v",
			p.Sig, relM, relM.Ints, relM.Strs, relS, relS.Ints, relS.Strs)
	}
	for i, n := range p.Nodes {
		if n.ActRows != actM[i] {
			t.Fatalf("node %d (%s) ActRows: streaming %v, materialized %v", i, n.Op, n.ActRows, actM[i])
		}
		if n.Skew != skewM[i] {
			t.Fatalf("node %d (%s) Skew: streaming %v, materialized %v", i, n.Op, n.Skew, skewM[i])
		}
	}
	return relS
}

func TestStreamingMatchesMaterializedQueries(t *testing.T) {
	f := newFixture(t)
	f.planner.MaxPlans = 12
	f.eng.BatchSize = 97 // off-power-of-two: exercise partial final chunks
	queries := []string{
		`SELECT COUNT(*) FROM title t WHERE t.production_year > 1990`,
		`SELECT COUNT(*), SUM(t.production_year), MIN(t.id), MAX(t.id), AVG(t.production_year) FROM title t`,
		`SELECT t.kind_id, COUNT(*) FROM title t GROUP BY t.kind_id`,
		`SELECT cn.country_code, COUNT(*) FROM company_name cn GROUP BY cn.country_code`,
		`SELECT COUNT(*) FROM title t WHERE t.title LIKE 'b%' AND t.production_year BETWEEN 1980 AND 2000`,
		`SELECT COUNT(*) FROM title t WHERE t.kind_id IN (1, 3, 5)`,
		`SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`,
		`SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn
		 WHERE t.id = mc.movie_id AND cn.id = mc.company_id AND cn.country_code = 'de'`,
		`SELECT t.kind_id, mc.company_type_id, COUNT(*), SUM(mc.company_id)
		 FROM title t, movie_companies mc WHERE t.id = mc.movie_id
		 GROUP BY t.kind_id, mc.company_type_id ORDER BY t.kind_id`,
		`SELECT COUNT(*) FROM title t, movie_info_idx mii
		 WHERE t.id < mii.movie_id AND t.kind_id = 2 AND mii.info_type_id = 99 AND t.production_year > 2010`,
		`SELECT t.kind_id, COUNT(*) FROM title t GROUP BY t.kind_id ORDER BY t.kind_id DESC LIMIT 3`,
		`SELECT t.kind_id, COUNT(*) FROM title t GROUP BY t.kind_id ORDER BY t.kind_id LIMIT 0`,
	}
	for _, q := range queries {
		for _, p := range f.plans(t, q) {
			assertModesAgree(t, f.eng, p)
		}
	}
}

func TestStreamingEmptyInput(t *testing.T) {
	f := newFixture(t)
	// The predicate matches nothing: grouped aggregates emit zero groups
	// (key columns only), global aggregates emit the one zero row.
	for _, q := range []string{
		`SELECT t.kind_id, COUNT(*) FROM title t WHERE t.production_year > 99999 GROUP BY t.kind_id`,
		`SELECT COUNT(*), MIN(t.id) FROM title t WHERE t.production_year > 99999`,
		`SELECT t.kind_id, COUNT(*) FROM title t WHERE t.production_year > 99999
		 GROUP BY t.kind_id ORDER BY t.kind_id LIMIT 5`,
	} {
		for _, p := range f.plans(t, q) {
			assertModesAgree(t, f.eng, p)
		}
	}
}

func TestStreamingAllFilteredBatches(t *testing.T) {
	f := newFixture(t)
	// Tiny batches force many chunks, every one fully filtered out.
	f.eng.BatchSize = 7
	for _, p := range f.plans(t, `SELECT COUNT(*) FROM title t WHERE t.production_year > 99999`) {
		assertModesAgree(t, f.eng, p)
	}
}

func TestStreamingJoinKeyAbsent(t *testing.T) {
	f := newFixture(t)
	f.eng.BatchSize = 64
	// The build side is empty (no company has this code), so no probe row
	// finds a match.
	q := `SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn
	      WHERE t.id = mc.movie_id AND cn.id = mc.company_id AND cn.country_code = 'zz-nowhere'`
	for _, p := range f.plans(t, q) {
		assertModesAgree(t, f.eng, p)
	}
}

func TestStreamingRowLimitIncremental(t *testing.T) {
	f := newFixture(t)
	f.eng.MaxRows = 50 // trips on scans, joins, and aggregate group counts
	for _, q := range []string{
		`SELECT COUNT(*) FROM title t, movie_keyword mk WHERE t.id = mk.movie_id`,
		`SELECT t.production_year, COUNT(*) FROM title t GROUP BY t.production_year`,
	} {
		for _, p := range f.plans(t, q) {
			assertModesAgree(t, f.eng, p) // both modes must agree on ErrRowLimit
			f.eng.Mode = ExecStreaming
			if _, err := f.eng.Run(p); !errors.Is(err, ErrRowLimit) {
				t.Fatalf("expected ErrRowLimit, got %v", err)
			}
		}
	}
}

func TestStreamingLimitEarlyTermination(t *testing.T) {
	f := newFixture(t)
	f.eng.BatchSize = 8
	scan := &physical.Node{Op: physical.FileScan, Table: "title", Alias: "t", Columns: []string{"id", "kind_id"}}
	lim := &physical.Node{Op: physical.LocalLimit, LimitN: 10, Children: []*physical.Node{scan}}
	plan := &physical.Plan{Root: lim, Nodes: []*physical.Node{scan, lim}}

	rel, err := f.eng.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rel.N != 10 {
		t.Fatalf("limit returned %d rows, want 10", rel.N)
	}
	tab, _ := f.db.Table("title")
	// The whole point of streaming limits: the scan stops after the limit
	// is satisfied instead of reading the full table.
	if scan.ActRows >= float64(tab.NumRows) {
		t.Fatalf("scan read the full table (%v rows) despite LIMIT 10", scan.ActRows)
	}
	if scan.ActRows < 10 || scan.ActRows > 16 {
		t.Fatalf("scan ActRows = %v, want 10..16 with batch size 8", scan.ActRows)
	}
	// Values must equal the table prefix.
	ids := tab.IntCol("id")
	for i := 0; i < 10; i++ {
		if rel.Ints["t.id"][i] != ids[i] {
			t.Fatalf("row %d: got %d want %d", i, rel.Ints["t.id"][i], ids[i])
		}
	}
}

func TestStreamingInstrumentation(t *testing.T) {
	f := newFixture(t)
	reg := telemetry.NewRegistry()
	f.eng.Instrument(reg)
	sp := telemetry.StartSpan("engine-run")
	plans := f.plans(t, `SELECT t.kind_id, COUNT(*) FROM title t, movie_companies mc
		WHERE t.id = mc.movie_id GROUP BY t.kind_id`)
	if _, err := f.eng.RunTraced(plans[0], sp); err != nil {
		t.Fatal(err)
	}
	if len(sp.Stages()) == 0 {
		t.Fatal("no span stages recorded")
	}
	tab, _ := f.db.Table("title")
	rows := f.eng.instr.rows.With("FileScan").Value()
	if rows < uint64(tab.NumRows) {
		t.Fatalf("FileScan rows counter = %d, want >= %d", rows, tab.NumRows)
	}
	if f.eng.instr.batches.With("HashAggregate").Value() == 0 {
		t.Fatal("no aggregate batches counted")
	}
	if f.eng.instr.runs.Value() != 1 {
		t.Fatalf("runs counter = %d, want 1", f.eng.instr.runs.Value())
	}
}

// TestConcurrentStreamingRuns exercises one Engine (shared slab pools,
// shared instrumentation) from many goroutines under -race: workload
// collection executes plans exactly this way.
func TestConcurrentStreamingRuns(t *testing.T) {
	f := newFixture(t)
	f.eng.Instrument(telemetry.NewRegistry())
	queries := []string{
		`SELECT COUNT(*) FROM title t WHERE t.production_year > 1990`,
		`SELECT t.kind_id, COUNT(*) FROM title t GROUP BY t.kind_id`,
		`SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`,
		`SELECT mc.company_type_id, COUNT(*) FROM movie_companies mc GROUP BY mc.company_type_id`,
	}
	// Sequential baselines.
	want := make([]*Relation, len(queries))
	for i, q := range queries {
		want[i] = assertModesAgree(t, f.eng, f.plans(t, q)[0])
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		for i, q := range queries {
			wg.Add(1)
			// Each goroutine gets its own plan (ActRows is per-plan state).
			p := f.plans(t, q)[0]
			go func(i int, p *physical.Plan) {
				defer wg.Done()
				rel, err := f.eng.Run(p)
				if err != nil {
					errs <- err
					return
				}
				if !relEqual(rel, want[i]) {
					errs <- errors.New("concurrent run diverged from sequential baseline")
				}
			}(i, p)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPrefixSharesStorage(t *testing.T) {
	rel := NewRelation()
	rel.N = 5
	rel.Ints["x"] = []int64{1, 2, 3, 4, 5}
	rel.Strs["s"] = []string{"a", "b", "c", "d", "e"}
	p := rel.prefix(3)
	if p.N != 3 || len(p.Ints["x"]) != 3 || len(p.Strs["s"]) != 3 {
		t.Fatalf("prefix shape wrong: %v", p)
	}
	rel.Ints["x"][1] = 99
	if p.Ints["x"][1] != 99 {
		t.Fatal("prefix copied instead of sharing storage")
	}
}
