package engine

import (
	"raal/internal/physical"
	"raal/internal/telemetry"
)

// engineInstr holds the per-operator execution counters. All label values
// are pre-materialized (the operator vocabulary is closed), so the hot
// path pays one atomic add per batch, not a map lookup.
type engineInstr struct {
	rows    *telemetry.CounterVec
	batches *telemetry.CounterVec
	ns      *telemetry.CounterVec
	runs    *telemetry.Counter
}

// Instrument registers the engine's per-operator telemetry — rows and
// batches produced and nanoseconds spent (inclusive of children) per
// physical operator — on reg. Call before the first Run; instrumented
// engines remain safe for concurrent Run calls.
func (e *Engine) Instrument(reg *telemetry.Registry) {
	ops := make([]string, physical.NumOpTypes)
	for i := range ops {
		ops[i] = physical.OpType(i).String()
	}
	e.instr = &engineInstr{
		rows: reg.NewCounterVec("raal_engine_rows_total",
			"Rows produced per physical operator by the streaming engine.", "op", ops...),
		batches: reg.NewCounterVec("raal_engine_batches_total",
			"Batches produced per physical operator by the streaming engine.", "op", ops...),
		ns: reg.NewCounterVec("raal_engine_op_ns_total",
			"Nanoseconds spent per physical operator (inclusive of children).", "op", ops...),
		runs: reg.NewCounter("raal_engine_runs_total",
			"Plans executed by the engine."),
	}
}
