// Property test over the full generated workload corpus: every candidate
// plan of every generated query must produce bit-identical relations,
// per-node ActRows, and per-node Skew under streaming and materialized
// execution. It lives in an external test package so it can drive the
// same generator the training pipeline uses (workload imports engine).
package engine_test

import (
	"errors"
	"testing"

	"raal/internal/cardest"
	"raal/internal/catalog"
	"raal/internal/datagen"
	"raal/internal/engine"
	"raal/internal/logical"
	"raal/internal/physical"
	"raal/internal/sql"
	"raal/internal/workload"
)

func corpusRelEqual(a, b *engine.Relation) bool {
	if a.N != b.N || len(a.Ints) != len(b.Ints) || len(a.Strs) != len(b.Strs) {
		return false
	}
	for name, col := range a.Ints {
		other, ok := b.Ints[name]
		if !ok || len(other) != len(col) {
			return false
		}
		for i := range col {
			if col[i] != other[i] {
				return false
			}
		}
	}
	for name, col := range a.Strs {
		other, ok := b.Strs[name]
		if !ok || len(other) != len(col) {
			return false
		}
		for i := range col {
			if col[i] != other[i] {
				return false
			}
		}
	}
	return true
}

func TestStreamingMatchesMaterializedCorpus(t *testing.T) {
	cases := []struct {
		name string
		db   *catalog.Database
		mk   func(*catalog.Database, int64) (*workload.Generator, error)
	}{
		{"imdb", datagen.IMDB(0.02, 3), workload.NewIMDBGenerator},
		{"tpch", datagen.TPCH(0.05, 3), workload.NewTPCHGenerator},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			est, err := cardest.New(tc.db, 16, 8)
			if err != nil {
				t.Fatal(err)
			}
			planner := physical.NewPlanner(est)
			gen, err := tc.mk(tc.db, 11)
			if err != nil {
				t.Fatal(err)
			}
			eng := engine.New(tc.db)
			eng.MaxRows = 200_000
			eng.BatchSize = 256 // small chunks: exercise batch boundaries

			compared := 0
			for qi := 0; qi < 40; qi++ {
				qs := gen.GenerateOne()
				stmt, err := sql.Parse(qs)
				if err != nil {
					t.Fatalf("generated invalid SQL %q: %v", qs, err)
				}
				bound, err := logical.NewBinder(tc.db).Bind(stmt)
				if err != nil {
					continue
				}
				plans, err := planner.Enumerate(bound)
				if err != nil {
					continue
				}
				if len(plans) > 3 {
					plans = plans[:3]
				}
				for _, p := range plans {
					eng.Mode = engine.ExecMaterialized
					relM, errM := eng.Run(p)
					actM := make([]float64, len(p.Nodes))
					skewM := make([]float64, len(p.Nodes))
					for i, n := range p.Nodes {
						actM[i], skewM[i] = n.ActRows, n.Skew
					}
					eng.Mode = engine.ExecStreaming
					relS, errS := eng.Run(p)

					if (errM != nil) != (errS != nil) {
						t.Fatalf("%q (%s): error mismatch: materialized=%v streaming=%v", qs, p.Sig, errM, errS)
					}
					if errM != nil {
						if !errors.Is(errM, engine.ErrRowLimit) || !errors.Is(errS, engine.ErrRowLimit) {
							t.Fatalf("%q (%s): non-limit errors: %v / %v", qs, p.Sig, errM, errS)
						}
						continue
					}
					if !corpusRelEqual(relM, relS) {
						t.Fatalf("%q (%s): relations differ:\nmaterialized %v %v %v\nstreaming    %v %v %v",
							qs, p.Sig, relM, relM.Ints, relM.Strs, relS, relS.Ints, relS.Strs)
					}
					for i, n := range p.Nodes {
						if n.ActRows != actM[i] {
							t.Fatalf("%q (%s) node %d (%s): ActRows streaming %v != materialized %v",
								qs, p.Sig, i, n.Op, n.ActRows, actM[i])
						}
						if n.Skew != skewM[i] {
							t.Fatalf("%q (%s) node %d (%s): Skew streaming %v != materialized %v",
								qs, p.Sig, i, n.Op, n.Skew, skewM[i])
						}
					}
					compared++
				}
			}
			if compared < 20 {
				t.Fatalf("only %d plans compared; corpus too thin to prove equivalence", compared)
			}
		})
	}
}
