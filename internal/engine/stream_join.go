package engine

import (
	"fmt"

	"raal/internal/physical"
	"raal/internal/sql"
)

// Streaming joins materialize only the build (right) side — the
// broadcast/new side in our plans, typically the smaller input — and
// stream the probe side chunk by chunk. The materialized path gathered
// both full inputs into a third full copy of the join output; here the
// output exists only as transient batches, which is where most of the
// streaming engine's memory reduction comes from.

// joinBase holds the machinery shared by the hash and nested-loop joins:
// the materialized build side, the pair scratch lists, and the gather of
// (probe row, build row) pairs into pooled output slabs.
type joinBase struct {
	baseIter
	rc          *runCtx
	left, right Iterator
	nLeft       int       // left-side column count (layout prefix)
	build       []colData // right side, fully materialized
	buildN      int
	started     bool

	cb *Batch // current probe batch
	pi int    // next logical row in cb

	lrows, brows []int32 // pending output pairs (probe physical, build row)
	outInts      [][]int64
	outStrs      [][]string
	out          Batch
}

// makeJoinLayout concatenates the sides' layouts, rejecting duplicate
// qualified names just as combineSides does.
func makeJoinLayout(left, right *layout) (*layout, error) {
	cols := make([]streamCol, 0, len(left.cols)+len(right.cols))
	cols = append(cols, left.cols...)
	for _, c := range right.cols {
		if _, dup := left.find(c.name); dup {
			return nil, fmt.Errorf("duplicate column %q across join sides", c.name)
		}
		cols = append(cols, c)
	}
	return newLayout(cols), nil
}

func (j *joinBase) init(left, right Iterator, rc *runCtx) error {
	l, err := makeJoinLayout(left.lay(), right.lay())
	if err != nil {
		return err
	}
	j.l = l
	j.rc = rc
	j.left, j.right = left, right
	j.nLeft = len(left.lay().cols)
	j.lrows = rc.eng.pool.getSel(rc.cap)[:0]
	j.brows = rc.eng.pool.getSel(rc.cap)[:0]
	j.outInts = make([][]int64, len(l.cols))
	j.outStrs = make([][]string, len(l.cols))
	for p, c := range l.cols {
		if c.isStr {
			j.outStrs[p] = rc.eng.pool.getStrs(rc.cap)
		} else {
			j.outInts[p] = rc.eng.pool.getInts(rc.cap)
		}
	}
	j.out.ints = make([][]int64, len(l.cols))
	j.out.strs = make([][]string, len(l.cols))
	return nil
}

// buildRight drains the right child into contiguous columns.
func (j *joinBase) buildRight() error {
	rl := j.right.lay()
	j.build = make([]colData, len(rl.cols))
	for {
		b, err := j.right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		appendBatch(j.build, rl, b)
		j.buildN += b.n
	}
}

// flush gathers the pending pairs into the output slabs. cb is the probe
// batch the left rows index into; it must still be live.
func (j *joinBase) flush(cb *Batch) *Batch {
	n := len(j.lrows)
	for p := 0; p < j.nLeft; p++ {
		if j.l.cols[p].isStr {
			src, dst := cb.strs[p], j.outStrs[p]
			for i, r := range j.lrows {
				dst[i] = src[r]
			}
			j.out.strs[p] = dst[:n]
			j.out.ints[p] = nil
		} else {
			src, dst := cb.ints[p], j.outInts[p]
			for i, r := range j.lrows {
				dst[i] = src[r]
			}
			j.out.ints[p] = dst[:n]
			j.out.strs[p] = nil
		}
	}
	for p := j.nLeft; p < len(j.l.cols); p++ {
		bp := p - j.nLeft
		if j.l.cols[p].isStr {
			src, dst := j.build[bp].strs, j.outStrs[p]
			for i, r := range j.brows {
				dst[i] = src[r]
			}
			j.out.strs[p] = dst[:n]
			j.out.ints[p] = nil
		} else {
			src, dst := j.build[bp].ints, j.outInts[p]
			for i, r := range j.brows {
				dst[i] = src[r]
			}
			j.out.ints[p] = dst[:n]
			j.out.strs[p] = nil
		}
	}
	j.out.n = n
	j.out.sel = nil
	j.lrows = j.lrows[:0]
	j.brows = j.brows[:0]
	return &j.out
}

func (j *joinBase) Close() {
	pool := &j.rc.eng.pool
	pool.putSel(j.lrows)
	pool.putSel(j.brows)
	for p, c := range j.l.cols {
		if c.isStr {
			pool.putStrs(j.outStrs[p])
		} else {
			pool.putInts(j.outInts[p])
		}
	}
	j.build = nil
	j.left.Close()
	j.right.Close()
}

// ---------------------------------------------------------------------------
// Hash join

// hashJoinIter implements SMJ/BHJ/SHJ semantics (all three produce the
// same single-node relation; their cost difference lives in the
// simulator): build a hash index over the right side, stream the left.
type hashJoinIter struct {
	joinBase
	leftPos, rightPos int
	strKey            bool

	// Int keys use a forward-chained index: head yields the first build
	// row holding a key (1-based; 0 = no match) and chain links equal-key
	// rows in build order, so matches stream out exactly as the
	// materialized path appends them. When the key range is tight —
	// serial PKs, the overwhelmingly common build side — head is a plain
	// array and probing never hashes at all; sparse key spaces fall back
	// to a map head.
	denseHead []int32
	denseLo   int64
	headMap   map[int64]int32
	chain     []int32

	strIndex map[string][]int32

	// probe resume state: the chain position (int keys) or match list
	// (string keys) of the row being expanded
	nextJ   int32
	matches []int32
	mi      int
	curL    int32
}

func newHashJoinIter(left, right Iterator, n *physical.Node, rc *runCtx) (Iterator, error) {
	lname, rname := n.LeftKey.String(), n.RightKey.String()
	it := &hashJoinIter{}
	if lp, ok := left.lay().intPos(lname); ok {
		rp, ok := right.lay().intPos(rname)
		if !ok {
			return nil, fmt.Errorf("join key %q missing on right side", rname)
		}
		it.leftPos, it.rightPos = lp, rp
	} else if lp, ok := left.lay().strPos(lname); ok {
		rp, ok := right.lay().strPos(rname)
		if !ok {
			return nil, fmt.Errorf("join key %q missing on right side", rname)
		}
		it.leftPos, it.rightPos = lp, rp
		it.strKey = true
	} else {
		return nil, fmt.Errorf("join key %q missing on left side", lname)
	}
	if err := it.init(left, right, rc); err != nil {
		return nil, err
	}
	return it, nil
}

func (h *hashJoinIter) start() error {
	if err := h.buildRight(); err != nil {
		return err
	}
	if h.strKey {
		col := h.build[h.rightPos].strs
		h.strIndex = make(map[string][]int32, h.buildN)
		for j, v := range col {
			h.strIndex[v] = append(h.strIndex[v], int32(j))
		}
	} else if col := h.build[h.rightPos].ints; len(col) > 0 {
		n := len(col)
		h.chain = make([]int32, n)
		lo, hi := col[0], col[0]
		for _, v := range col[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if span := hi - lo + 1; span <= int64(2*n)+1024 {
			h.denseLo = lo
			h.denseHead = make([]int32, span)
			tail := make([]int32, span)
			for j, v := range col {
				i := v - lo
				if tail[i] == 0 {
					h.denseHead[i] = int32(j + 1)
				} else {
					h.chain[tail[i]-1] = int32(j + 1)
				}
				tail[i] = int32(j + 1)
			}
		} else {
			head := make(map[int64]int32, n)
			tail := make(map[int64]int32, n)
			for j, v := range col {
				if t := tail[v]; t != 0 {
					h.chain[t-1] = int32(j + 1)
				} else {
					head[v] = int32(j + 1)
				}
				tail[v] = int32(j + 1)
			}
			h.headMap = head
		}
	}
	h.started = true
	return nil
}

// lookup returns the 1-based first build row matching key v (0 = none).
func (h *hashJoinIter) lookup(v int64) int32 {
	if h.denseHead != nil {
		if i := v - h.denseLo; i >= 0 && i < int64(len(h.denseHead)) {
			return h.denseHead[i]
		}
		return 0
	}
	return h.headMap[v]
}

func (h *hashJoinIter) Next() (*Batch, error) {
	if !h.started {
		if err := h.start(); err != nil {
			return nil, err
		}
	}
	for {
		if h.cb == nil {
			cb, err := h.left.Next()
			if err != nil {
				return nil, err
			}
			if cb == nil {
				return nil, nil
			}
			h.cb, h.pi = cb, 0
		}
		// Fill the pair lists from the current probe batch up to capacity.
		var intKey []int64
		var strKey []string
		if h.strKey {
			strKey = h.cb.strs[h.leftPos]
		} else {
			intKey = h.cb.ints[h.leftPos]
		}
		for len(h.lrows) < h.rc.cap {
			if h.matches != nil {
				take := len(h.matches) - h.mi
				if room := h.rc.cap - len(h.lrows); take > room {
					take = room
				}
				for k := 0; k < take; k++ {
					h.lrows = append(h.lrows, h.curL)
					h.brows = append(h.brows, h.matches[h.mi+k])
				}
				h.mi += take
				if h.mi == len(h.matches) {
					h.matches = nil
					h.pi++
				}
				continue
			}
			if h.nextJ != 0 {
				for h.nextJ != 0 && len(h.lrows) < h.rc.cap {
					j := h.nextJ - 1
					h.lrows = append(h.lrows, h.curL)
					h.brows = append(h.brows, j)
					h.nextJ = h.chain[j]
				}
				if h.nextJ == 0 {
					h.pi++
				}
				continue
			}
			if h.pi >= h.cb.n {
				break
			}
			r := int32(h.cb.row(h.pi))
			if h.strKey {
				m := h.strIndex[strKey[r]]
				if len(m) == 0 {
					h.pi++
					continue
				}
				h.matches, h.mi, h.curL = m, 0, r
			} else {
				head := h.lookup(intKey[r])
				if head == 0 {
					h.pi++
					continue
				}
				h.nextJ, h.curL = head, r
			}
		}
		exhausted := h.matches == nil && h.nextJ == 0 && h.pi >= h.cb.n
		if len(h.lrows) > 0 {
			// Gather while the probe batch is still live, then release it
			// if it has been fully consumed.
			out := h.flush(h.cb)
			if exhausted {
				h.cb = nil
			}
			return out, nil
		}
		if exhausted {
			h.cb = nil // nothing matched in this probe batch; pull the next
		}
	}
}

// ---------------------------------------------------------------------------
// Nested-loop join

// nestedLoopIter evaluates a theta comparison of int keys against every
// build row per probe row — BroadcastNestedLoopJoin semantics with the
// output streamed instead of materialized.
type nestedLoopIter struct {
	joinBase
	leftPos, rightPos int
	op                sql.CmpOp

	ri   int // next build row for the current probe row
	curL int32
	lv   int64
	open bool // currently expanding a probe row
}

func newNestedLoopIter(left, right Iterator, n *physical.Node, rc *runCtx) (Iterator, error) {
	lp, ok := left.lay().intPos(n.LeftKey.String())
	if !ok {
		return nil, fmt.Errorf("nested loop key %q missing on left side", n.LeftKey)
	}
	rp, ok := right.lay().intPos(n.RightKey.String())
	if !ok {
		return nil, fmt.Errorf("nested loop key %q missing on right side", n.RightKey)
	}
	it := &nestedLoopIter{leftPos: lp, rightPos: rp, op: n.ThetaOp}
	if err := it.init(left, right, rc); err != nil {
		return nil, err
	}
	return it, nil
}

func (nl *nestedLoopIter) Next() (*Batch, error) {
	if !nl.started {
		if err := nl.buildRight(); err != nil {
			return nil, err
		}
		nl.started = true
	}
	rcol := nl.build[nl.rightPos].ints
	for {
		if nl.cb == nil {
			cb, err := nl.left.Next()
			if err != nil {
				return nil, err
			}
			if cb == nil {
				return nil, nil
			}
			nl.cb, nl.pi = cb, 0
		}
		keyCol := nl.cb.ints[nl.leftPos]
		for len(nl.lrows) < nl.rc.cap {
			if nl.open {
				for nl.ri < nl.buildN && len(nl.lrows) < nl.rc.cap {
					if cmpInt(nl.lv, rcol[nl.ri], nl.op) {
						nl.lrows = append(nl.lrows, nl.curL)
						nl.brows = append(nl.brows, int32(nl.ri))
					}
					nl.ri++
				}
				if nl.ri == nl.buildN {
					nl.open = false
					nl.pi++
				}
				continue
			}
			if nl.pi >= nl.cb.n {
				break
			}
			nl.curL = int32(nl.cb.row(nl.pi))
			nl.lv = keyCol[nl.curL]
			nl.ri = 0
			nl.open = true
		}
		exhausted := !nl.open && nl.pi >= nl.cb.n
		if len(nl.lrows) > 0 {
			out := nl.flush(nl.cb)
			if exhausted {
				nl.cb = nil
			}
			return out, nil
		}
		if exhausted {
			nl.cb = nil
		}
	}
}
