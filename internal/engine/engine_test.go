package engine

import (
	"testing"

	"raal/internal/cardest"
	"raal/internal/catalog"
	"raal/internal/datagen"
	"raal/internal/logical"
	"raal/internal/physical"
	"raal/internal/sql"
)

type fixture struct {
	db      *catalog.Database
	eng     *Engine
	planner *physical.Planner
	binder  *logical.Binder
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	db := datagen.IMDB(0.03, 1)
	est, err := cardest.New(db, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{db: db, eng: New(db), planner: physical.NewPlanner(est), binder: logical.NewBinder(db)}
}

func (f *fixture) plans(t *testing.T, query string) []*physical.Plan {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	q, err := f.binder.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := f.planner.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	return plans
}

// runAll executes every candidate plan and checks they agree on the result.
func (f *fixture) runAll(t *testing.T, query string) *Relation {
	t.Helper()
	plans := f.plans(t, query)
	var first *Relation
	for i, p := range plans {
		rel, err := f.eng.Run(p)
		if err != nil {
			t.Fatalf("plan %d (%s): %v", i, p.Sig, err)
		}
		if first == nil {
			first = rel
		} else if !sameSingleRow(first, rel) {
			t.Fatalf("plan %d (%s) disagrees:\nfirst: %v %v\n this: %v %v",
				i, p.Sig, first, first.Ints, rel, rel.Ints)
		}
	}
	return first
}

// sameSingleRow compares single-row aggregate results.
func sameSingleRow(a, b *Relation) bool {
	if a.N != b.N {
		return false
	}
	for name, col := range a.Ints {
		other, ok := b.Ints[name]
		if !ok || len(other) != len(col) {
			return false
		}
		for i := range col {
			if col[i] != other[i] {
				return false
			}
		}
	}
	return true
}

func TestCountSingleTableMatchesBruteForce(t *testing.T) {
	f := newFixture(t)
	rel := f.runAll(t, `SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 500`)
	mk, _ := f.db.Table("movie_keyword")
	want := int64(0)
	for _, v := range mk.IntCol("keyword_id") {
		if v < 500 {
			want++
		}
	}
	if got := rel.Ints["agg0"][0]; got != want {
		t.Fatalf("COUNT = %d, want %d", got, want)
	}
}

func TestTwoTableJoinMatchesBruteForce(t *testing.T) {
	f := newFixture(t)
	rel := f.runAll(t, `SELECT COUNT(*) FROM title t, movie_companies mc
		WHERE t.id = mc.movie_id AND mc.company_id < 200 AND mc.company_type_id > 1`)

	title, _ := f.db.Table("title")
	mc, _ := f.db.Table("movie_companies")
	ids := map[int64]int{}
	for _, id := range title.IntCol("id") {
		ids[id]++
	}
	var want int64
	mids := mc.IntCol("movie_id")
	cids := mc.IntCol("company_id")
	ctids := mc.IntCol("company_type_id")
	for i := range mids {
		if cids[i] < 200 && ctids[i] > 1 {
			want += int64(ids[mids[i]])
		}
	}
	if got := rel.Ints["agg0"][0]; got != want {
		t.Fatalf("join COUNT = %d, want %d", got, want)
	}
}

func TestThreeTableJoinPlansAgree(t *testing.T) {
	f := newFixture(t)
	rel := f.runAll(t, `SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
		WHERE t.id = mc.movie_id AND t.id = mk.movie_id
		AND mc.company_id = 5 AND mk.keyword_id < 100`)
	if rel.N != 1 {
		t.Fatalf("expected single aggregate row, got %d", rel.N)
	}
}

func TestSumAvgMinMax(t *testing.T) {
	f := newFixture(t)
	rel := f.runAll(t, `SELECT SUM(t.production_year), AVG(t.production_year), MIN(t.production_year), MAX(t.production_year), COUNT(*)
		FROM title t WHERE t.kind_id < 3`)

	title, _ := f.db.Table("title")
	years := title.IntCol("production_year")
	kinds := title.IntCol("kind_id")
	var sum, cnt int64
	min, max := int64(1<<62), int64(-1<<62)
	for i := range years {
		if kinds[i] < 3 {
			sum += years[i]
			cnt++
			if years[i] < min {
				min = years[i]
			}
			if years[i] > max {
				max = years[i]
			}
		}
	}
	if rel.Ints["agg0"][0] != sum {
		t.Fatalf("SUM = %d want %d", rel.Ints["agg0"][0], sum)
	}
	if rel.Ints["agg1"][0] != sum/cnt {
		t.Fatalf("AVG = %d want %d", rel.Ints["agg1"][0], sum/cnt)
	}
	if rel.Ints["agg2"][0] != min || rel.Ints["agg3"][0] != max {
		t.Fatalf("MIN/MAX = %d/%d want %d/%d", rel.Ints["agg2"][0], rel.Ints["agg3"][0], min, max)
	}
	if rel.Ints["agg4"][0] != cnt {
		t.Fatalf("COUNT = %d want %d", rel.Ints["agg4"][0], cnt)
	}
}

func TestGroupByOrderByLimit(t *testing.T) {
	f := newFixture(t)
	plans := f.plans(t, `SELECT t.kind_id, COUNT(*) FROM title t GROUP BY t.kind_id ORDER BY t.kind_id DESC LIMIT 3`)
	rel, err := f.eng.Run(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if rel.N > 3 {
		t.Fatalf("LIMIT 3 returned %d rows", rel.N)
	}
	keys := rel.Ints["t.kind_id"]
	for i := 1; i < len(keys); i++ {
		if keys[i] > keys[i-1] {
			t.Fatalf("not sorted DESC: %v", keys)
		}
	}
	// Verify the count of the top group against brute force.
	title, _ := f.db.Table("title")
	counts := map[int64]int64{}
	for _, k := range title.IntCol("kind_id") {
		counts[k]++
	}
	if got := rel.Ints["agg1"][0]; got != counts[keys[0]] {
		t.Fatalf("group count %d want %d", got, counts[keys[0]])
	}
}

func TestStringPredicates(t *testing.T) {
	f := newFixture(t)
	rel := f.runAll(t, `SELECT COUNT(*) FROM company_name cn
		WHERE cn.country_code = 'cc_0001' AND cn.name LIKE 'company_00%'`)
	cn, _ := f.db.Table("company_name")
	codes := cn.StrCol("country_code")
	names := cn.StrCol("name")
	var want int64
	for i := range codes {
		if codes[i] == "cc_0001" && len(names[i]) >= 10 && names[i][:10] == "company_00" {
			want++
		}
	}
	if got := rel.Ints["agg0"][0]; got != want {
		t.Fatalf("string COUNT = %d, want %d", got, want)
	}
}

func TestInBetweenPredicates(t *testing.T) {
	f := newFixture(t)
	rel := f.runAll(t, `SELECT COUNT(*) FROM title t
		WHERE t.kind_id IN (1, 3) AND t.production_year BETWEEN 1990 AND 2000`)
	title, _ := f.db.Table("title")
	kinds := title.IntCol("kind_id")
	years := title.IntCol("production_year")
	var want int64
	for i := range kinds {
		if (kinds[i] == 1 || kinds[i] == 3) && years[i] >= 1990 && years[i] <= 2000 {
			want++
		}
	}
	if got := rel.Ints["agg0"][0]; got != want {
		t.Fatalf("COUNT = %d, want %d", got, want)
	}
}

func TestActualRowsRecorded(t *testing.T) {
	f := newFixture(t)
	plans := f.plans(t, `SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	p := plans[0]
	if _, err := f.eng.Run(p); err != nil {
		t.Fatal(err)
	}
	title, _ := f.db.Table("title")
	for _, n := range p.Nodes {
		switch n.Op {
		case physical.FileScan:
			if n.Alias == "t" && n.ActRows != float64(title.NumRows) {
				t.Fatalf("scan of t ActRows = %v, want %d", n.ActRows, title.NumRows)
			}
		case physical.HashAggregate:
			if n.Final && n.ActRows != 1 {
				t.Fatalf("final aggregate ActRows = %v", n.ActRows)
			}
		}
		if n.ActRows < 0 {
			t.Fatalf("node %s has negative ActRows", n.Op)
		}
	}
}

func TestEmptyResultGroupBy(t *testing.T) {
	f := newFixture(t)
	plans := f.plans(t, `SELECT t.kind_id, COUNT(*) FROM title t WHERE t.production_year > 99999 GROUP BY t.kind_id ORDER BY t.kind_id`)
	rel, err := f.eng.Run(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if rel.N != 0 {
		t.Fatalf("expected empty result, got %d rows", rel.N)
	}
}

func TestGlobalCountOfEmptyInputIsZeroRow(t *testing.T) {
	f := newFixture(t)
	rel := f.runAll(t, `SELECT COUNT(*) FROM title t WHERE t.production_year > 99999`)
	if rel.N != 1 || rel.Ints["agg0"][0] != 0 {
		t.Fatalf("COUNT over empty input: %v rows, %v", rel.N, rel.Ints["agg0"])
	}
}

func TestLikePatterns(t *testing.T) {
	rel := NewRelation()
	rel.N = 5
	rel.Strs["t.s"] = []string{"abcdef", "abc", "xxabc", "defabc", "zzz"}
	cases := []struct {
		pattern string
		want    int
	}{
		{"abc%", 2},  // abcdef, abc
		{"%abc", 3},  // abc, xxabc, defabc
		{"%abc%", 4}, // all but zzz
		{"abc", 1},   // exact
		{"%", 5},     // everything
		{"a%f", 1},   // abcdef
		{"%b%d%", 1}, // abcdef (b then d in order)
		{"nomatch", 0},
	}
	for _, tc := range cases {
		out, err := applyPreds(rel, []sql.Predicate{&sql.Like{
			Col: sql.ColumnRef{Qualifier: "t", Name: "s"}, Pattern: tc.pattern}})
		if err != nil {
			t.Fatal(err)
		}
		if out.N != tc.want {
			t.Fatalf("LIKE %q matched %d rows, want %d", tc.pattern, out.N, tc.want)
		}
	}
}

func TestTPCHQueryExecution(t *testing.T) {
	db := datagen.TPCH(0.05, 1)
	est, err := cardest.New(db, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(db)
	binder := logical.NewBinder(db)
	planner := physical.NewPlanner(est)

	stmt, err := sql.Parse(`SELECT COUNT(*), SUM(l.l_extendedprice) FROM lineitem l, orders o
		WHERE l.l_orderkey = o.o_orderkey AND o.o_totalprice > 250000 AND l.l_quantity < 10`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := binder.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := planner.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}

	// brute force
	li, _ := db.Table("lineitem")
	ord, _ := db.Table("orders")
	bigOrders := map[int64]bool{}
	oks := ord.IntCol("o_orderkey")
	prices := ord.IntCol("o_totalprice")
	for i := range oks {
		if prices[i] > 250000 {
			bigOrders[oks[i]] = true
		}
	}
	var wantCnt, wantSum int64
	loks := li.IntCol("l_orderkey")
	qtys := li.IntCol("l_quantity")
	exts := li.IntCol("l_extendedprice")
	for i := range loks {
		if qtys[i] < 10 && bigOrders[loks[i]] {
			wantCnt++
			wantSum += exts[i]
		}
	}
	for _, p := range plans {
		rel, err := eng.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Sig, err)
		}
		if rel.Ints["agg0"][0] != wantCnt || rel.Ints["agg1"][0] != wantSum {
			t.Fatalf("%s: got %d/%d want %d/%d", p.Sig,
				rel.Ints["agg0"][0], rel.Ints["agg1"][0], wantCnt, wantSum)
		}
	}
}
