package engine

import (
	"fmt"

	"raal/internal/sql"
)

// rowPred evaluates one predicate against the physical row r of a batch.
// Predicates receive physical indices (pre-selection) so a filter can
// narrow an already-selected batch by composing selection vectors.
type rowPred func(b *Batch, r int) bool

// compileStreamPreds compiles the conjunction for a static layout. It is
// the streaming twin of compilePred: column references resolve to layout
// positions once, at iterator-construction time, instead of map lookups
// per relation.
func compileStreamPreds(l *layout, preds []sql.Predicate) ([]rowPred, error) {
	fns := make([]rowPred, len(preds))
	for i, p := range preds {
		f, err := compileStreamPred(l, p)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	return fns, nil
}

func (l *layout) intPos(name string) (int, bool) {
	p, ok := l.find(name)
	return p, ok && !l.cols[p].isStr
}

func (l *layout) strPos(name string) (int, bool) {
	p, ok := l.find(name)
	return p, ok && l.cols[p].isStr
}

func compileStreamPred(l *layout, p sql.Predicate) (rowPred, error) {
	switch pred := p.(type) {
	case *sql.Comparison:
		name := pred.Left.String()
		if pred.RightCol != nil {
			lp, lok := l.intPos(name)
			rp, rok := l.intPos(pred.RightCol.String())
			if !lok || !rok {
				return nil, fmt.Errorf("engine: column comparison %s needs int columns", pred)
			}
			op := pred.Op
			return func(b *Batch, r int) bool { return cmpInt(b.ints[lp][r], b.ints[rp][r], op) }, nil
		}
		if pred.Lit.IsStr {
			cp, ok := l.strPos(name)
			if !ok {
				return nil, fmt.Errorf("engine: missing string column %q", name)
			}
			lit, op := pred.Lit.S, pred.Op
			return func(b *Batch, r int) bool { return cmpStr(b.strs[cp][r], lit, op) }, nil
		}
		cp, ok := l.intPos(name)
		if !ok {
			return nil, fmt.Errorf("engine: missing int column %q", name)
		}
		lit, op := pred.Lit.I, pred.Op
		return func(b *Batch, r int) bool { return cmpInt(b.ints[cp][r], lit, op) }, nil

	case *sql.Between:
		cp, ok := l.intPos(pred.Col.String())
		if !ok {
			return nil, fmt.Errorf("engine: missing int column %q", pred.Col)
		}
		lo, hi := pred.Lo, pred.Hi
		return func(b *Batch, r int) bool { v := b.ints[cp][r]; return v >= lo && v <= hi }, nil

	case *sql.In:
		name := pred.Col.String()
		if cp, ok := l.intPos(name); ok {
			set := map[int64]bool{}
			for _, v := range pred.Values {
				set[v.I] = true
			}
			return func(b *Batch, r int) bool { return set[b.ints[cp][r]] }, nil
		}
		if cp, ok := l.strPos(name); ok {
			set := map[string]bool{}
			for _, v := range pred.Values {
				set[v.S] = true
			}
			return func(b *Batch, r int) bool { return set[b.strs[cp][r]] }, nil
		}
		return nil, fmt.Errorf("engine: missing column %q", name)

	case *sql.Like:
		cp, ok := l.strPos(pred.Col.String())
		if !ok {
			return nil, fmt.Errorf("engine: missing string column %q", pred.Col)
		}
		match := compileLike(pred.Pattern)
		return func(b *Batch, r int) bool { return match(b.strs[cp][r]) }, nil

	case *sql.NullCheck:
		// Generated data is NULL-free: IS NOT NULL is vacuously true.
		not := pred.Not
		return func(*Batch, int) bool { return not }, nil
	}
	return nil, fmt.Errorf("engine: unsupported predicate %T", p)
}
