// Package engine executes physical plans over in-memory columnar data.
//
// It is the single-node "truth oracle" of the reproduction: executing a
// plan yields both the query result and the *actual* per-operator
// cardinalities, which the cluster simulator (internal/sparksim) turns
// into a wall-clock cost and the feature encoder exposes to the learned
// models. Join-algorithm choices (SMJ vs BHJ) produce identical relations
// here — their cost difference materializes only in the simulator, exactly
// as in Spark.
package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is an intermediate result: columns keyed by alias-qualified
// name ("t.id").
type Relation struct {
	N    int
	Ints map[string][]int64
	Strs map[string][]string
}

// NewRelation returns an empty relation.
func NewRelation() *Relation {
	return &Relation{Ints: map[string][]int64{}, Strs: map[string][]string{}}
}

// HasCol reports whether the relation carries the named column.
func (r *Relation) HasCol(name string) bool {
	_, ok := r.Ints[name]
	if !ok {
		_, ok = r.Strs[name]
	}
	return ok
}

// ColNames returns all column names, sorted.
func (r *Relation) ColNames() []string {
	var names []string
	for n := range r.Ints {
		names = append(names, n)
	}
	for n := range r.Strs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// gather builds a new relation keeping only the rows whose indices appear
// in idx (in that order).
func (r *Relation) gather(idx []int) *Relation {
	out := NewRelation()
	out.N = len(idx)
	for name, col := range r.Ints {
		nc := make([]int64, len(idx))
		for i, j := range idx {
			nc[i] = col[j]
		}
		out.Ints[name] = nc
	}
	for name, col := range r.Strs {
		nc := make([]string, len(idx))
		for i, j := range idx {
			nc[i] = col[j]
		}
		out.Strs[name] = nc
	}
	return out
}

// prefix returns a view of the first k rows, sharing column storage with
// r — the zero-copy form of gather(0..k-1) used by LocalLimit.
func (r *Relation) prefix(k int) *Relation {
	out := NewRelation()
	out.N = k
	for name, col := range r.Ints {
		out.Ints[name] = col[:k]
	}
	for name, col := range r.Strs {
		out.Strs[name] = col[:k]
	}
	return out
}

// project keeps only the named columns.
func (r *Relation) project(cols []string) (*Relation, error) {
	out := NewRelation()
	out.N = r.N
	for _, c := range cols {
		if ic, ok := r.Ints[c]; ok {
			out.Ints[c] = ic
			continue
		}
		if sc, ok := r.Strs[c]; ok {
			out.Strs[c] = sc
			continue
		}
		return nil, fmt.Errorf("engine: projection references missing column %q (have %s)",
			c, strings.Join(r.ColNames(), ","))
	}
	return out, nil
}

// String renders a compact debug view.
func (r *Relation) String() string {
	return fmt.Sprintf("Relation(%d rows: %s)", r.N, strings.Join(r.ColNames(), ","))
}
