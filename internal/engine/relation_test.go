package engine

import (
	"testing"

	"raal/internal/logical"
)

func TestRelationProjectMissingColumn(t *testing.T) {
	rel := NewRelation()
	rel.N = 1
	rel.Ints["a.x"] = []int64{1}
	if _, err := rel.project([]string{"a.x", "a.ghost"}); err == nil {
		t.Fatal("projecting a missing column should error")
	}
}

func TestRelationGatherReorders(t *testing.T) {
	rel := NewRelation()
	rel.N = 3
	rel.Ints["a.x"] = []int64{10, 20, 30}
	rel.Strs["a.s"] = []string{"p", "q", "r"}
	g := rel.gather([]int{2, 0, 2})
	if g.N != 3 || g.Ints["a.x"][0] != 30 || g.Ints["a.x"][1] != 10 || g.Strs["a.s"][2] != "r" {
		t.Fatalf("gather wrong: %v %v", g.Ints, g.Strs)
	}
	// Mutating the gathered copy must not touch the source.
	g.Ints["a.x"][0] = 99
	if rel.Ints["a.x"][2] != 30 {
		t.Fatal("gather aliases source")
	}
}

func TestSortRelationStable(t *testing.T) {
	// Equal keys must preserve input order (stable sort), which keeps
	// engine output deterministic across plans.
	rel := NewRelation()
	rel.N = 4
	rel.Ints["a.k"] = []int64{2, 1, 2, 1}
	rel.Ints["a.v"] = []int64{100, 200, 300, 400}
	bc := logical.BoundCol{Alias: "a", Name: "k"}
	sorted, err := sortRelation(rel, &bc, false, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	wantV := []int64{200, 400, 100, 300}
	for i, v := range wantV {
		if sorted.Ints["a.v"][i] != v {
			t.Fatalf("unstable sort: %v", sorted.Ints["a.v"])
		}
	}
	// Descending keeps stability within equal keys too.
	desc, err := sortRelation(rel, &bc, true, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	wantV = []int64{100, 300, 200, 400}
	for i, v := range wantV {
		if desc.Ints["a.v"][i] != v {
			t.Fatalf("unstable desc sort: %v", desc.Ints["a.v"])
		}
	}
}

func TestSortRelationStringKey(t *testing.T) {
	rel := NewRelation()
	rel.N = 3
	rel.Strs["a.s"] = []string{"m", "a", "z"}
	bc := logical.BoundCol{Alias: "a", Name: "s"}
	sorted, err := sortRelation(rel, &bc, false, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Strs["a.s"][0] != "a" || sorted.Strs["a.s"][2] != "z" {
		t.Fatalf("string sort wrong: %v", sorted.Strs["a.s"])
	}
}

func TestSortRelationMissingColumn(t *testing.T) {
	rel := NewRelation()
	rel.N = 1
	bc := logical.BoundCol{Alias: "a", Name: "ghost"}
	if _, err := sortRelation(rel, &bc, false, 5_000_000); err == nil {
		t.Fatal("sorting a missing column should error")
	}
}

func TestHashJoinDuplicateColumnRejected(t *testing.T) {
	left := NewRelation()
	left.N = 1
	left.Ints["x.k"] = []int64{1}
	left.Ints["shared"] = []int64{5}
	right := NewRelation()
	right.N = 1
	right.Ints["y.k"] = []int64{1}
	right.Ints["shared"] = []int64{6}
	lk := logical.BoundCol{Alias: "x", Name: "k"}
	rk := logical.BoundCol{Alias: "y", Name: "k"}
	if _, err := hashJoin(left, right, &lk, &rk, 1000); err == nil {
		t.Fatal("duplicate column names across join sides should error")
	}
}

func TestColNamesSorted(t *testing.T) {
	rel := NewRelation()
	rel.Ints["b.z"] = nil
	rel.Strs["a.a"] = nil
	rel.Ints["a.m"] = nil
	names := rel.ColNames()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("not sorted: %v", names)
		}
	}
}
