package engine

import (
	"sort"
	"sync"
)

// DefaultBatchSize is the row capacity of one streaming chunk. 4096 rows
// keeps a chunk of a handful of int64 columns inside L2 while amortizing
// per-batch overhead over enough rows that the iterator dispatch cost
// disappears against the per-row work.
const DefaultBatchSize = 4096

// streamCol is one column of a streaming edge: the alias-qualified name
// and its type. The set of columns flowing over an edge is static — it is
// derived from the plan, never from data — so every batch on that edge
// shares one layout.
type streamCol struct {
	name  string
	isStr bool
}

// layout is the ordered column set of one plan edge plus a name index.
type layout struct {
	cols []streamCol
	pos  map[string]int
}

func newLayout(cols []streamCol) *layout {
	l := &layout{cols: cols, pos: make(map[string]int, len(cols))}
	for i, c := range cols {
		l.pos[c.name] = i
	}
	return l
}

// find returns the position of the named column.
func (l *layout) find(name string) (int, bool) {
	p, ok := l.pos[name]
	return p, ok
}

// names returns the column names, sorted, for error messages.
func (l *layout) names() []string {
	out := make([]string, 0, len(l.cols))
	for _, c := range l.cols {
		out = append(out, c.name)
	}
	sort.Strings(out)
	return out
}

// Batch is one chunk of rows flowing between streaming operators. Columns
// are positional (indexed by the edge's layout): ints[p] is non-nil for
// int columns, strs[p] for string columns. A non-nil sel is a selection
// vector: the batch logically contains rows sel[0..n), each an index into
// the physical column slices — filters and limits narrow a batch without
// copying any column data.
//
// A batch is only valid until the next Next() call on the iterator that
// produced it: operators own their output slabs and reuse them, which is
// what keeps the streaming path allocation-free in steady state.
type Batch struct {
	n    int
	sel  []int32
	ints [][]int64
	strs [][]string
}

// Len returns the number of logical rows in the batch.
func (b *Batch) Len() int { return b.n }

// row maps a logical row index to a physical index in the column slices.
func (b *Batch) row(i int) int {
	if b.sel != nil {
		return int(b.sel[i])
	}
	return i
}

// slabPool recycles fixed-capacity column chunks across operators and
// across runs. It is safe for concurrent use (workload collection runs
// many plans through one Engine in parallel).
type slabPool struct {
	ints sync.Pool // *[]int64
	strs sync.Pool // *[]string
	sels sync.Pool // *[]int32
}

func (p *slabPool) getInts(n int) []int64 {
	if v := p.ints.Get(); v != nil {
		if s := *(v.(*[]int64)); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]int64, n)
}

func (p *slabPool) putInts(s []int64) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	p.ints.Put(&s)
}

func (p *slabPool) getStrs(n int) []string {
	if v := p.strs.Get(); v != nil {
		if s := *(v.(*[]string)); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]string, n)
}

func (p *slabPool) putStrs(s []string) {
	if cap(s) == 0 {
		return
	}
	// Clear before pooling so recycled slabs don't pin string contents.
	s = s[:cap(s)]
	for i := range s {
		s[i] = ""
	}
	s = s[:0]
	p.strs.Put(&s)
}

func (p *slabPool) getSel(n int) []int32 {
	if v := p.sels.Get(); v != nil {
		if s := *(v.(*[]int32)); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]int32, n)
}

func (p *slabPool) putSel(s []int32) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	p.sels.Put(&s)
}
