package engine

import (
	"testing"

	"raal/internal/logical"
	"raal/internal/physical"
)

func TestBNLJMatchesBruteForce(t *testing.T) {
	f := newFixture(t)
	// Selective filters keep the quadratic join small.
	plans := f.plans(t, `SELECT COUNT(*) FROM title t, movie_info_idx mii
		WHERE t.id < mii.movie_id AND t.kind_id = 2 AND mii.info_type_id = 99 AND t.production_year > 2010`)
	if plans[0].CountOp(physical.BroadcastNestedLoopJoin) != 1 {
		t.Fatalf("expected BNLJ plan:\n%s", plans[0])
	}
	rel, err := f.eng.Run(plans[0])
	if err != nil {
		t.Fatal(err)
	}

	title, _ := f.db.Table("title")
	mii, _ := f.db.Table("movie_info_idx")
	var leftIDs []int64
	ids := title.IntCol("id")
	kinds := title.IntCol("kind_id")
	years := title.IntCol("production_year")
	for i := range ids {
		if kinds[i] == 2 && years[i] > 2010 {
			leftIDs = append(leftIDs, ids[i])
		}
	}
	var want int64
	mids := mii.IntCol("movie_id")
	itids := mii.IntCol("info_type_id")
	for j := range mids {
		if itids[j] != 99 {
			continue
		}
		for _, id := range leftIDs {
			if id < mids[j] {
				want++
			}
		}
	}
	if got := rel.Ints["agg0"][0]; got != want {
		t.Fatalf("BNLJ COUNT = %d, want %d", got, want)
	}
}

func TestSHJAgreesWithOtherJoins(t *testing.T) {
	f := newFixture(t)
	f.planner.MaxPlans = 12
	plans := f.plans(t, `SELECT COUNT(*) FROM title t, movie_companies mc
		WHERE t.id = mc.movie_id AND mc.company_id < 300`)
	var shj *physical.Plan
	for _, p := range plans {
		if p.CountOp(physical.ShuffledHashJoin) == 1 {
			shj = p
		}
	}
	if shj == nil {
		t.Fatal("no SHJ plan")
	}
	a, err := f.eng.Run(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.eng.Run(shj)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ints["agg0"][0] != b.Ints["agg0"][0] {
		t.Fatalf("SHJ result %d != %d", b.Ints["agg0"][0], a.Ints["agg0"][0])
	}
}

func TestSortAggregateAgreesWithHash(t *testing.T) {
	f := newFixture(t)
	f.planner.MaxPlans = 12
	plans := f.plans(t, `SELECT t.kind_id, COUNT(*) FROM title t GROUP BY t.kind_id ORDER BY t.kind_id`)
	var sa *physical.Plan
	for _, p := range plans {
		if p.CountOp(physical.SortAggregate) == 2 {
			sa = p
		}
	}
	if sa == nil {
		t.Fatal("no sort-aggregate plan")
	}
	a, err := f.eng.Run(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.eng.Run(sa)
	if err != nil {
		t.Fatal(err)
	}
	if a.N != b.N {
		t.Fatalf("group counts differ: %d vs %d", a.N, b.N)
	}
	for i := 0; i < a.N; i++ {
		if a.Ints["t.kind_id"][i] != b.Ints["t.kind_id"][i] || a.Ints["agg1"][i] != b.Ints["agg1"][i] {
			t.Fatalf("row %d differs: %v/%v vs %v/%v", i,
				a.Ints["t.kind_id"][i], a.Ints["agg1"][i],
				b.Ints["t.kind_id"][i], b.Ints["agg1"][i])
		}
	}
}

func TestMultiColumnGroupBy(t *testing.T) {
	f := newFixture(t)
	plans := f.plans(t, `SELECT t.kind_id, mc.company_type_id, COUNT(*), SUM(mc.company_id)
		FROM title t, movie_companies mc
		WHERE t.id = mc.movie_id
		GROUP BY t.kind_id, mc.company_type_id ORDER BY t.kind_id`)
	rel, err := f.eng.Run(plans[0])
	if err != nil {
		t.Fatal(err)
	}

	// Brute force the grouped counts and sums.
	title, _ := f.db.Table("title")
	mc, _ := f.db.Table("movie_companies")
	kindOf := map[int64]int64{}
	ids := title.IntCol("id")
	kinds := title.IntCol("kind_id")
	for i := range ids {
		kindOf[ids[i]] = kinds[i]
	}
	type key struct{ kind, ctype int64 }
	wantCnt := map[key]int64{}
	wantSum := map[key]int64{}
	mids := mc.IntCol("movie_id")
	ctypes := mc.IntCol("company_type_id")
	cids := mc.IntCol("company_id")
	for i := range mids {
		kind, ok := kindOf[mids[i]]
		if !ok {
			continue
		}
		k := key{kind, ctypes[i]}
		wantCnt[k]++
		wantSum[k] += cids[i]
	}
	if rel.N != len(wantCnt) {
		t.Fatalf("groups = %d, want %d", rel.N, len(wantCnt))
	}
	gk := rel.Ints["t.kind_id"]
	gc := rel.Ints["mc.company_type_id"]
	cnts := rel.Ints["agg2"]
	sums := rel.Ints["agg3"]
	for i := 0; i < rel.N; i++ {
		k := key{gk[i], gc[i]}
		if cnts[i] != wantCnt[k] || sums[i] != wantSum[k] {
			t.Fatalf("group %v: got %d/%d want %d/%d", k, cnts[i], sums[i], wantCnt[k], wantSum[k])
		}
	}
	// ORDER BY first group column must hold.
	for i := 1; i < rel.N; i++ {
		if gk[i] < gk[i-1] {
			t.Fatalf("not sorted by kind_id: %v", gk)
		}
	}
}

func TestExchangeSkewMeasured(t *testing.T) {
	f := newFixture(t)
	// movie_keyword.movie_id is zipf-distributed: hash partitioning by it
	// must show measurable skew.
	plans := f.plans(t, `SELECT COUNT(*) FROM title t, movie_keyword mk WHERE t.id = mk.movie_id`)
	var smj *physical.Plan
	for _, p := range plans {
		if p.CountOp(physical.SortMergeJoin) == 1 {
			smj = p
		}
	}
	if smj == nil {
		t.Skip("no SMJ plan")
	}
	if _, err := f.eng.Run(smj); err != nil {
		t.Fatal(err)
	}
	var skews []float64
	for _, n := range smj.Nodes {
		if n.Op == physical.ExchangeHashPartition {
			skews = append(skews, n.Skew)
		}
	}
	if len(skews) < 2 {
		t.Fatalf("expected ≥2 measured exchanges, got %v", skews)
	}
	maxSkew := 0.0
	for _, s := range skews {
		if s < 1 {
			t.Fatalf("skew below 1: %v", skews)
		}
		if s > maxSkew {
			maxSkew = s
		}
	}
	// The zipf FK side must be visibly skewed.
	if maxSkew < 1.5 {
		t.Fatalf("zipf key skew not detected: %v", skews)
	}
}

func TestMeasureSkewUniformKey(t *testing.T) {
	rel := NewRelation()
	rel.N = 24000
	col := make([]int64, rel.N)
	for i := range col {
		col[i] = int64(i) // serial: perfectly spread
	}
	rel.Ints["t.id"] = col
	bc := logical.BoundCol{Alias: "t", Name: "id"}
	s := measureSkew(rel, &bc)
	if s < 0.9 || s > 1.2 {
		t.Fatalf("uniform key skew = %v, want ≈1", s)
	}
}

func TestMeasureSkewHotKey(t *testing.T) {
	rel := NewRelation()
	rel.N = 1000
	col := make([]int64, rel.N)
	for i := range col {
		col[i] = 7 // single hot key: everything lands in one partition
	}
	rel.Ints["t.id"] = col
	bc := logical.BoundCol{Alias: "t", Name: "id"}
	s := measureSkew(rel, &bc)
	if s < float64(skewPartitions)-0.01 {
		t.Fatalf("hot key skew = %v, want %d", s, skewPartitions)
	}
}
