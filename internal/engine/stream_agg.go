package engine

import (
	"fmt"
	"math"
	"strconv"

	"raal/internal/physical"
	"raal/internal/sql"
)

// Streaming two-phase aggregation. Both phases are pipeline breakers that
// hold only per-group state (plus a copy of each group's key values) —
// never their input — so an aggregation over a 10^7-row join stream costs
// memory proportional to the number of groups, not the number of rows.
//
// Group keys are encoded byte-identically to the materialized path's
// "i%d\x00" / "s%s\x00" format, and groups are emitted in first-seen
// order, so output relations match the materialized oracle bit for bit.

// groupAccessor reads one group-by column from the child stream.
type groupAccessor struct {
	col streamCol
	pos int
}

// appendKey extends buf with the materialized path's group-key encoding
// for physical row r.
func appendKey(buf []byte, accs []groupAccessor, b *Batch, r int) []byte {
	for _, a := range accs {
		if a.col.isStr {
			buf = append(buf, 's')
			buf = append(buf, b.strs[a.pos][r]...)
		} else {
			buf = append(buf, 'i')
			buf = strconv.AppendInt(buf, b.ints[a.pos][r], 10)
		}
		buf = append(buf, 0)
	}
	return buf
}

// aggIter implements both the partial (state-emitting) and final
// (merging) aggregation phases.
type aggIter struct {
	baseIter
	child Iterator
	node  *physical.Node
	rc    *runCtx

	accs    []groupAccessor
	nGroup  int      // group-column count (layout prefix)
	inputs  []int    // partial: input col position per agg, -1 = count rows
	stateIn [][2]int // final: per agg, positions of its state cols (-1 unused)

	built  bool
	groups int
	cols   []colData // finished output columns
	off    int
	out    Batch
}

func newAggIter(child Iterator, n *physical.Node, rc *runCtx) (Iterator, error) {
	cl := child.lay()
	it := &aggIter{child: child, node: n, rc: rc}
	outCols := make([]streamCol, 0, len(n.GroupBy)+2*len(n.Aggs))
	for _, g := range n.GroupBy {
		name := g.String()
		p, ok := cl.find(name)
		if !ok {
			return nil, fmt.Errorf("group column %q missing", name)
		}
		it.accs = append(it.accs, groupAccessor{col: cl.cols[p], pos: p})
		outCols = append(outCols, cl.cols[p])
	}
	it.nGroup = len(outCols)

	if n.Final {
		it.stateIn = make([][2]int, len(n.Aggs))
		statePos := func(ai int, suffix string) (int, error) {
			name := fmt.Sprintf("__p%d_%s", ai, suffix)
			p, ok := cl.intPos(name)
			if !ok {
				return -1, fmt.Errorf("aggregate state column %q missing", name)
			}
			return p, nil
		}
		for ai, a := range n.Aggs {
			it.stateIn[ai] = [2]int{-1, -1}
			var err error
			switch a.Agg {
			case sql.AggCount:
				it.stateIn[ai][0], err = statePos(ai, "cnt")
			case sql.AggSum:
				it.stateIn[ai][0], err = statePos(ai, "sum")
			case sql.AggAvg:
				it.stateIn[ai][0], err = statePos(ai, "sum")
				if err == nil {
					it.stateIn[ai][1], err = statePos(ai, "cnt")
				}
			case sql.AggMin:
				it.stateIn[ai][0], err = statePos(ai, "min")
			case sql.AggMax:
				it.stateIn[ai][0], err = statePos(ai, "max")
			case sql.AggNone:
				continue
			}
			if err != nil {
				return nil, err
			}
			outCols = append(outCols, streamCol{name: fmt.Sprintf("agg%d", ai)})
		}
	} else {
		it.inputs = make([]int, len(n.Aggs))
		for ai, a := range n.Aggs {
			it.inputs[ai] = -1
			if a.Star || a.Col == nil {
				// COUNT(*) / bare group column: counts rows
			} else {
				name := a.Col.String()
				if p, ok := cl.intPos(name); ok {
					it.inputs[ai] = p
				} else if _, ok := cl.strPos(name); ok {
					if a.Agg != sql.AggCount {
						return nil, fmt.Errorf("aggregate %s over string column %q", a.Agg, name)
					}
					// COUNT over strings counts rows (no NULLs)
				} else {
					return nil, fmt.Errorf("aggregate column %q missing", name)
				}
			}
			pfx := fmt.Sprintf("__p%d", ai)
			switch a.Agg {
			case sql.AggCount:
				outCols = append(outCols, streamCol{name: pfx + "_cnt"})
			case sql.AggSum:
				outCols = append(outCols, streamCol{name: pfx + "_sum"})
			case sql.AggAvg:
				outCols = append(outCols, streamCol{name: pfx + "_sum"}, streamCol{name: pfx + "_cnt"})
			case sql.AggMin:
				outCols = append(outCols, streamCol{name: pfx + "_min"})
			case sql.AggMax:
				outCols = append(outCols, streamCol{name: pfx + "_max"})
			case sql.AggNone:
			}
		}
	}
	it.l = newLayout(outCols)
	it.out.ints = make([][]int64, len(outCols))
	it.out.strs = make([][]string, len(outCols))
	return it, nil
}

// update folds physical row r of b into one group's states.
func (a *aggIter) update(st []aggState, b *Batch, r int, final bool) {
	if final {
		for ai, ag := range a.node.Aggs {
			s := &st[ai]
			switch ag.Agg {
			case sql.AggCount:
				s.cnt += b.ints[a.stateIn[ai][0]][r]
			case sql.AggSum:
				s.sum += b.ints[a.stateIn[ai][0]][r]
			case sql.AggAvg:
				s.sum += b.ints[a.stateIn[ai][0]][r]
				s.cnt += b.ints[a.stateIn[ai][1]][r]
			case sql.AggMin:
				if v := b.ints[a.stateIn[ai][0]][r]; v < s.min {
					s.min = v
				}
			case sql.AggMax:
				if v := b.ints[a.stateIn[ai][0]][r]; v > s.max {
					s.max = v
				}
			}
		}
		return
	}
	for ai := range a.node.Aggs {
		s := &st[ai]
		s.cnt++
		if p := a.inputs[ai]; p >= 0 {
			v := b.ints[p][r]
			s.sum += v
			if !s.seen || v < s.min {
				s.min = v
			}
			if !s.seen || v > s.max {
				s.max = v
			}
			s.seen = true
		}
	}
}

func (a *aggIter) build() error {
	aggs := a.node.Aggs
	final := a.node.Final
	keyVals := make([]colData, a.nGroup) // copied key values, contiguous per group
	var grpStates [][]aggState           // per group in first-seen order

	newGroup := func() ([]aggState, error) {
		st := make([]aggState, len(aggs))
		if final {
			for ai := range st {
				st[ai].min = math.MaxInt64
				st[ai].max = math.MinInt64
			}
		}
		grpStates = append(grpStates, st)
		if len(grpStates) > a.rc.max {
			return nil, fmt.Errorf("aggregate output exceeds %d groups: %w", a.rc.max, ErrRowLimit)
		}
		return st, nil
	}

	// Three keying strategies, hottest first: no key at all (global
	// aggregates), a raw int64 map for the common single-int GROUP BY
	// (skips both key encoding and string hashing on every input row),
	// and the encoded-string map for composite or string keys. All three
	// discover groups in first-seen order, so output order — and thus
	// bit-identity with the materialized path — is unchanged.
	switch {
	case a.nGroup == 0:
		var st []aggState
		for {
			b, err := a.child.Next()
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			for i := 0; i < b.n; i++ {
				if st == nil {
					if st, err = newGroup(); err != nil {
						return err
					}
				}
				a.update(st, b, b.row(i), final)
			}
		}
	case a.nGroup == 1 && !a.accs[0].col.isStr:
		pos := a.accs[0].pos
		states := map[int64][]aggState{}
		for {
			b, err := a.child.Next()
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			for i := 0; i < b.n; i++ {
				r := b.row(i)
				k := b.ints[pos][r]
				st, ok := states[k]
				if !ok {
					if st, err = newGroup(); err != nil {
						return err
					}
					states[k] = st
					keyVals[0].ints = append(keyVals[0].ints, k)
				}
				a.update(st, b, r, final)
			}
		}
	default:
		states := map[string][]aggState{}
		var buf []byte
		for {
			b, err := a.child.Next()
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			for i := 0; i < b.n; i++ {
				r := b.row(i)
				buf = appendKey(buf[:0], a.accs, b, r)
				st, ok := states[string(buf)]
				if !ok {
					if st, err = newGroup(); err != nil {
						return err
					}
					states[string(buf)] = st
					for gi, acc := range a.accs {
						if acc.col.isStr {
							keyVals[gi].strs = append(keyVals[gi].strs, b.strs[acc.pos][r])
						} else {
							keyVals[gi].ints = append(keyVals[gi].ints, b.ints[acc.pos][r])
						}
					}
				}
				a.update(st, b, r, final)
			}
		}
	}

	// A global partial aggregate over zero rows still emits one all-zero
	// row (COUNT(*) of an empty input is 0, not absent).
	if !final && len(a.node.GroupBy) == 0 && len(grpStates) == 0 {
		st := make([]aggState, len(aggs))
		for ai := range st {
			st[ai].min = math.MaxInt64
			st[ai].max = math.MinInt64
		}
		grpStates = append(grpStates, st)
	}

	a.groups = len(grpStates)
	a.cols = make([]colData, len(a.l.cols))
	for gi := 0; gi < a.nGroup; gi++ {
		a.cols[gi] = keyVals[gi]
	}
	col := a.nGroup
	for ai, ag := range aggs {
		gi := ai
		mk := func(get func(aggState) int64) {
			vals := make([]int64, a.groups)
			for g := range grpStates {
				vals[g] = get(grpStates[g][gi])
			}
			a.cols[col].ints = vals
			col++
		}
		if final {
			switch ag.Agg {
			case sql.AggCount:
				mk(func(s aggState) int64 { return s.cnt })
			case sql.AggSum:
				mk(func(s aggState) int64 { return s.sum })
			case sql.AggAvg:
				mk(func(s aggState) int64 {
					if s.cnt > 0 {
						return s.sum / s.cnt
					}
					return 0
				})
			case sql.AggMin:
				mk(func(s aggState) int64 { return s.min })
			case sql.AggMax:
				mk(func(s aggState) int64 { return s.max })
			}
		} else {
			switch ag.Agg {
			case sql.AggCount:
				mk(func(s aggState) int64 { return s.cnt })
			case sql.AggSum:
				mk(func(s aggState) int64 { return s.sum })
			case sql.AggAvg:
				mk(func(s aggState) int64 { return s.sum })
				mk(func(s aggState) int64 { return s.cnt })
			case sql.AggMin:
				mk(func(s aggState) int64 { return s.min })
			case sql.AggMax:
				mk(func(s aggState) int64 { return s.max })
			}
		}
	}
	a.built = true
	return nil
}

func (a *aggIter) Next() (*Batch, error) {
	if !a.built {
		if err := a.build(); err != nil {
			return nil, err
		}
	}
	if a.off >= a.groups {
		return nil, nil
	}
	end := a.off + a.rc.cap
	if end > a.groups {
		end = a.groups
	}
	for p := range a.cols {
		if a.l.cols[p].isStr {
			a.out.strs[p] = a.cols[p].strs[a.off:end]
			a.out.ints[p] = nil
		} else {
			a.out.ints[p] = a.cols[p].ints[a.off:end]
			a.out.strs[p] = nil
		}
	}
	a.out.n = end - a.off
	a.out.sel = nil
	a.off = end
	return &a.out, nil
}

// emptyCols mirrors ensureGroupCols: an aggregate that produced no groups
// materializes only its key columns.
func (a *aggIter) emptyCols() []streamCol {
	if a.built && a.groups == 0 {
		return a.l.cols[:a.nGroup]
	}
	return a.l.cols
}

func (a *aggIter) totalRows() (int, bool) { return a.groups, a.built }
func (a *aggIter) Close()                 { a.cols = nil; a.child.Close() }
