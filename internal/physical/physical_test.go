package physical

import (
	"strings"
	"testing"

	"raal/internal/cardest"
	"raal/internal/datagen"
	"raal/internal/logical"
	"raal/internal/sql"
)

func newPlanner(t *testing.T) (*Planner, *logical.Binder) {
	t.Helper()
	db := datagen.IMDB(0.05, 1)
	est, err := cardest.New(db, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	return NewPlanner(est), logical.NewBinder(db)
}

func plansFor(t *testing.T, query string) []*Plan {
	t.Helper()
	pl, binder := newPlanner(t)
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	q, err := binder.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := pl.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	return plans
}

func TestSingleTableTwoPlans(t *testing.T) {
	// Paper Sec. III: "for the queries on one table, normally there are
	// only two physical execution plans" differing in FileScan conditions.
	plans := plansFor(t, `SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 500`)
	if len(plans) != 2 {
		t.Fatalf("got %d plans, want 2:\n%v", len(plans), sigs(plans))
	}
	// One pushes the filter into the scan, the other keeps a Filter node.
	if plans[0].CountOp(Filter) != 0 {
		t.Fatalf("plan 0 should push filters into scan:\n%s", plans[0])
	}
	if plans[1].CountOp(Filter) != 1 {
		t.Fatalf("plan 1 should keep a Filter node:\n%s", plans[1])
	}
}

func TestJoinPlanAlternatives(t *testing.T) {
	plans := plansFor(t, `SELECT COUNT(*) FROM title t, movie_companies mc
		WHERE t.id = mc.movie_id AND mc.company_id < 50`)
	if len(plans) < 3 {
		t.Fatalf("want ≥3 candidate plans, got %d:\n%v", len(plans), sigs(plans))
	}
	var sawSMJ, sawBHJ bool
	for _, p := range plans {
		if p.CountOp(SortMergeJoin) > 0 {
			sawSMJ = true
		}
		if p.CountOp(BroadcastHashJoin) > 0 {
			sawBHJ = true
		}
	}
	if !sawSMJ || !sawBHJ {
		t.Fatalf("plan set should cover both SMJ and BHJ:\n%v", sigs(plans))
	}
}

func TestSMJStructure(t *testing.T) {
	plans := plansFor(t, `SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	var smj *Plan
	for _, p := range plans {
		if p.CountOp(SortMergeJoin) == 1 {
			smj = p
			break
		}
	}
	if smj == nil {
		t.Fatal("no SMJ plan found")
	}
	// SMJ requires exchange + sort on both sides.
	if smj.CountOp(ExchangeHashPartition) != 2 {
		t.Fatalf("SMJ plan needs 2 hash exchanges:\n%s", smj)
	}
	if smj.CountOp(Sort) != 2 {
		t.Fatalf("SMJ plan needs 2 sorts:\n%s", smj)
	}
}

func TestBHJStructure(t *testing.T) {
	plans := plansFor(t, `SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	var bhj *Plan
	for _, p := range plans {
		if p.CountOp(BroadcastHashJoin) == 1 {
			bhj = p
			break
		}
	}
	if bhj == nil {
		t.Fatal("no BHJ plan found")
	}
	if bhj.CountOp(BroadcastExchange) != 1 {
		t.Fatalf("BHJ plan needs a broadcast exchange:\n%s", bhj)
	}
}

func TestAggregationIsTwoPhase(t *testing.T) {
	plans := plansFor(t, `SELECT COUNT(*) FROM movie_keyword mk`)
	p := plans[0]
	if p.CountOp(HashAggregate) != 2 {
		t.Fatalf("want partial+final aggregate:\n%s", p)
	}
	if p.CountOp(ExchangeSinglePartition) != 1 {
		t.Fatalf("global aggregate needs single-partition exchange:\n%s", p)
	}
	// Root is the final aggregate.
	if p.Root.Op != HashAggregate || !p.Root.Final {
		t.Fatalf("root should be final HashAggregate, got %s", p.Root.Op)
	}
}

func TestGroupByUsesHashExchange(t *testing.T) {
	plans := plansFor(t, `SELECT t.kind_id, COUNT(*) FROM title t GROUP BY t.kind_id`)
	p := plans[0]
	// 1 for group-by shuffle; scan side has no joins so no other exchanges.
	if p.CountOp(ExchangeHashPartition) != 1 {
		t.Fatalf("group-by should hash partition:\n%s", p)
	}
}

func TestOrderByLimit(t *testing.T) {
	plans := plansFor(t, `SELECT t.kind_id, COUNT(*) FROM title t GROUP BY t.kind_id ORDER BY t.kind_id DESC LIMIT 3`)
	p := plans[0]
	if p.Root.Op != LocalLimit || p.Root.LimitN != 3 {
		t.Fatalf("root should be LocalLimit 3:\n%s", p)
	}
	sortNode := p.Root.Children[0]
	if sortNode.Op != Sort || !sortNode.SortDesc {
		t.Fatalf("below limit should be DESC sort:\n%s", p)
	}
}

func TestBottomUpNodeOrder(t *testing.T) {
	plans := plansFor(t, `SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
		WHERE t.id = mc.movie_id AND t.id = mk.movie_id AND mc.company_id < 100`)
	for _, p := range plans {
		for i, n := range p.Nodes {
			if n.ID != i {
				t.Fatalf("node ID %d at position %d", n.ID, i)
			}
			for _, c := range n.Children {
				if c.ID >= n.ID {
					t.Fatalf("child %d not before parent %d", c.ID, n.ID)
				}
			}
		}
		if p.Nodes[len(p.Nodes)-1] != p.Root {
			t.Fatal("root must be last in execution order")
		}
	}
}

func TestIsNotNullGuardsOnJoinKeys(t *testing.T) {
	plans := plansFor(t, `SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	p := plans[0]
	found := false
	for _, n := range p.Nodes {
		if n.Op == FileScan && n.Alias == "t" {
			for _, pr := range n.Preds {
				if nc, ok := pr.(*sql.NullCheck); ok && nc.Not && nc.Col.Name == "id" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("scan of t should carry isnotnull(t.id) guard:\n%s", p)
	}
}

func TestStatementsRenderSparkStyle(t *testing.T) {
	plans := plansFor(t, `SELECT COUNT(*) FROM title t, movie_info_idx mii
		WHERE t.id = mii.movie_id AND t.kind_id < 7 AND t.production_year > 1961`)
	joined := ""
	for _, p := range plans {
		for _, n := range p.Nodes {
			joined += n.Statement() + "\n"
		}
	}
	for _, want := range []string{"FileScan parquet title", "IS NOT NULL", "HashAggregate", "count(1)"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("statements missing %q:\n%s", want, joined)
		}
	}
}

func TestDefaultPlanUsesThreshold(t *testing.T) {
	pl, binder := newPlanner(t)
	stmt, _ := sql.Parse(`SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	q, err := binder.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}

	// With a huge threshold, the default plan broadcasts.
	pl.BroadcastThreshold = 1 << 40
	p, err := pl.DefaultPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.CountOp(BroadcastHashJoin) != 1 {
		t.Fatalf("huge threshold should broadcast:\n%s", p)
	}

	// With a zero threshold, it sort-merges.
	pl.BroadcastThreshold = 0
	p, err = pl.DefaultPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.CountOp(SortMergeJoin) != 1 {
		t.Fatalf("zero threshold should sort-merge:\n%s", p)
	}
}

func TestMaxPlansCap(t *testing.T) {
	pl, binder := newPlanner(t)
	pl.MaxPlans = 2
	stmt, _ := sql.Parse(`SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
		WHERE t.id = mc.movie_id AND t.id = mk.movie_id`)
	q, err := binder.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := pl.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("MaxPlans=2 but got %d", len(plans))
	}
}

func TestEstRowsPopulated(t *testing.T) {
	plans := plansFor(t, `SELECT COUNT(*) FROM title t, movie_companies mc
		WHERE t.id = mc.movie_id AND mc.company_id < 10`)
	for _, p := range plans {
		for _, n := range p.Nodes {
			if n.EstRows < 0 {
				t.Fatalf("negative estimate on %s", n.Statement())
			}
			if n.Op == FileScan && n.EstRows == 0 {
				t.Fatalf("scan estimate should be positive:\n%s", p)
			}
		}
	}
}

func TestPlanSigsDistinct(t *testing.T) {
	plans := plansFor(t, `SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	seen := map[string]bool{}
	for _, p := range plans {
		if seen[p.Sig] {
			t.Fatalf("duplicate plan signature %q", p.Sig)
		}
		seen[p.Sig] = true
	}
}

func sigs(plans []*Plan) []string {
	out := make([]string, len(plans))
	for i, p := range plans {
		out[i] = p.Sig
	}
	return out
}
