package physical

import (
	"testing"
)

func TestReoptimizeSMJToBHJ(t *testing.T) {
	pl, binder := newPlanner(t)
	stmt := mustParseStmt(t, `SELECT COUNT(*) FROM title t, movie_companies mc
		WHERE t.id = mc.movie_id AND mc.company_id < 20`)
	q, err := binder.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := pl.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	var smj *Plan
	for _, p := range plans {
		if p.CountOp(SortMergeJoin) == 1 {
			smj = p
		}
	}
	if smj == nil {
		t.Fatal("no SMJ plan")
	}
	// Pretend the build side came out tiny at runtime.
	for _, n := range smj.Nodes {
		n.ActRows = 10
	}
	re, switched := Reoptimize(smj, 10<<20)
	if switched != 1 {
		t.Fatalf("switched = %d, want 1", switched)
	}
	if re.CountOp(BroadcastHashJoin) != 1 || re.CountOp(SortMergeJoin) != 0 {
		t.Fatalf("AQE should convert SMJ to BHJ:\n%s", re)
	}
	if re.CountOp(Sort) != 0 || re.CountOp(ExchangeHashPartition) != 0 {
		t.Fatalf("converted plan should drop shuffle sorts:\n%s", re)
	}
	// Original untouched.
	if smj.CountOp(SortMergeJoin) != 1 {
		t.Fatal("input plan was mutated")
	}
}

func TestReoptimizeBHJToSMJ(t *testing.T) {
	pl, binder := newPlanner(t)
	stmt := mustParseStmt(t, `SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	q, err := binder.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := pl.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	var bhj *Plan
	for _, p := range plans {
		if p.CountOp(BroadcastHashJoin) == 1 {
			bhj = p
			break
		}
	}
	if bhj == nil {
		t.Fatal("no BHJ plan")
	}
	// Pretend the broadcast side exploded at runtime.
	for _, n := range bhj.Nodes {
		n.ActRows = 1e8
	}
	re, switched := Reoptimize(bhj, 10<<20)
	if switched != 1 {
		t.Fatalf("switched = %d, want 1", switched)
	}
	if re.CountOp(SortMergeJoin) != 1 || re.CountOp(BroadcastHashJoin) != 0 {
		t.Fatalf("AQE should convert BHJ to SMJ:\n%s", re)
	}
	if re.CountOp(Sort) != 2 || re.CountOp(ExchangeHashPartition) != 2 {
		t.Fatalf("converted plan needs shuffle sorts:\n%s", re)
	}
}

func TestReoptimizeNoChangeWhenSizesAgree(t *testing.T) {
	pl, binder := newPlanner(t)
	stmt := mustParseStmt(t, `SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 100`)
	q, err := binder.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := pl.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	re, switched := Reoptimize(plans[0], 10<<20)
	if switched != 0 {
		t.Fatalf("single-table plan switched %d joins", switched)
	}
	if len(re.Nodes) != len(plans[0].Nodes) {
		t.Fatal("node count changed without joins")
	}
}

func TestReoptimizeBottomUpOrderValid(t *testing.T) {
	pl, binder := newPlanner(t)
	stmt := mustParseStmt(t, `SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
		WHERE t.id = mc.movie_id AND t.id = mk.movie_id AND mk.keyword_id < 10`)
	q, err := binder.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := pl.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		for _, n := range p.Nodes {
			n.ActRows = 5 // force everything broadcastable
		}
		re, _ := Reoptimize(p, 10<<20)
		for i, n := range re.Nodes {
			if n.ID != i {
				t.Fatalf("IDs not reassigned: node %d at %d", n.ID, i)
			}
			for _, c := range n.Children {
				if c.ID >= n.ID {
					t.Fatalf("child %d after parent %d", c.ID, n.ID)
				}
			}
		}
	}
}
