package physical

// Adaptive query execution (AQE), in the style of Spark 3.x: once runtime
// cardinalities are known at stage boundaries, join algorithms chosen from
// (mis)estimates can be corrected — a sort-merge join whose build side
// turned out tiny becomes a broadcast join, and a broadcast join whose
// build side exploded becomes a sort-merge join.
//
// The paper's model predicts costs for *statically chosen* plans ("if the
// resource changes during the query execution, we will continue executing
// the chosen plan"); AQE is the runtime-feedback contrast, and the `aqe`
// experiment measures how much of RAAL's win survives it.

import "raal/internal/logical"

// Reoptimize returns a copy of p with every equi-join's algorithm
// re-decided from actual cardinalities (the plan must have been executed)
// against the broadcast threshold. It also returns how many joins were
// switched. The input plan is not modified.
func Reoptimize(p *Plan, broadcastThreshold float64) (*Plan, int) {
	switched := 0

	var rewrite func(n *Node) *Node
	rewrite = func(n *Node) *Node {
		c := *n // shallow copy; payload pointers are shared, children replaced
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = rewrite(ch)
		}

		switch c.Op {
		case SortMergeJoin, ShuffledHashJoin:
			// Children are Sort(Exchange(x)) / Exchange(x); unwrap to the
			// true inputs.
			probe := unwrapShuffle(c.Children[0])
			build := unwrapShuffle(c.Children[1])
			if actBytes(build) < broadcastThreshold {
				switched++
				bx := &Node{
					Op: BroadcastExchange, Children: []*Node{build},
					EstRows: build.EstRows, ActRows: build.ActRows, RowBytes: build.RowBytes,
				}
				return &Node{
					Op: BroadcastHashJoin, Children: []*Node{probe, bx},
					LeftKey: c.LeftKey, RightKey: c.RightKey,
					EstRows: c.EstRows, ActRows: c.ActRows, RowBytes: c.RowBytes,
				}
			}
		case BroadcastHashJoin:
			build := c.Children[1].Children[0] // under BroadcastExchange
			if actBytes(build) >= broadcastThreshold {
				switched++
				probe := c.Children[0]
				return &Node{
					Op:       SortMergeJoin,
					Children: []*Node{shuffleSort(probe, c.LeftKey), shuffleSort(build, c.RightKey)},
					LeftKey:  c.LeftKey, RightKey: c.RightKey,
					EstRows: c.EstRows, ActRows: c.ActRows, RowBytes: c.RowBytes,
				}
			}
		}
		return &c
	}

	out := &Plan{Root: rewrite(p.Root), Query: p.Query, Sig: p.Sig + ";aqe"}
	out.finalize()
	return out, switched
}

// unwrapShuffle strips the Sort/ExchangeHashPartition wrappers a shuffle
// join puts over its inputs.
func unwrapShuffle(n *Node) *Node {
	for n.Op == Sort || n.Op == ExchangeHashPartition {
		n = n.Children[0]
	}
	return n
}

// shuffleSort wraps x in ExchangeHashPartition + Sort on key (the
// pre-processing a sort-merge join side requires), propagating observed
// cardinalities since both operators are cardinality-preserving.
func shuffleSort(x *Node, key *logical.BoundCol) *Node {
	ex := &Node{Op: ExchangeHashPartition, Children: []*Node{x}, LeftKey: key,
		EstRows: x.EstRows, ActRows: x.ActRows, RowBytes: x.RowBytes}
	return &Node{Op: Sort, Children: []*Node{ex}, SortCol: key,
		EstRows: x.EstRows, ActRows: x.ActRows, RowBytes: x.RowBytes}
}

// actBytes is a node's observed output volume (estimate when never run).
func actBytes(n *Node) float64 {
	rows := n.ActRows
	if rows == 0 {
		rows = n.EstRows
	}
	w := n.RowBytes
	if w <= 0 {
		w = 8
	}
	return rows * w
}
