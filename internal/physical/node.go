// Package physical represents Spark SQL physical plans and enumerates
// candidate plans for a bound query, playing the role of Catalyst's
// physical planning phase. Each query yields several alternative plans
// (different join orders, join algorithms, and scan pushdown choices) from
// which a cost model must choose — exactly the setting of the paper's
// Sec. III experiments.
package physical

import (
	"fmt"
	"strings"

	"raal/internal/logical"
	"raal/internal/sql"
)

// OpType is a physical operator, matching the vocabulary of the paper's
// Table II plus the join/exchange variants it lists in Sec. IV-C.
type OpType int

// Physical operators.
const (
	FileScan OpType = iota
	Filter
	Project
	Sort
	SortMergeJoin
	BroadcastHashJoin
	ShuffledHashJoin
	BroadcastNestedLoopJoin
	HashAggregate
	SortAggregate
	ExchangeHashPartition
	ExchangeSinglePartition
	BroadcastExchange
	LocalLimit
	numOpTypes
)

// NumOpTypes is the size of the operator vocabulary (for one-hot encoding).
const NumOpTypes = int(numOpTypes)

func (o OpType) String() string {
	switch o {
	case FileScan:
		return "FileScan"
	case Filter:
		return "Filter"
	case Project:
		return "Project"
	case Sort:
		return "Sort"
	case SortMergeJoin:
		return "SortMergeJoin"
	case BroadcastHashJoin:
		return "BroadcastHashJoin"
	case ShuffledHashJoin:
		return "ShuffledHashJoin"
	case BroadcastNestedLoopJoin:
		return "BroadcastNestedLoopJoin"
	case HashAggregate:
		return "HashAggregate"
	case SortAggregate:
		return "SortAggregate"
	case ExchangeHashPartition:
		return "ExchangeHashPartition"
	case ExchangeSinglePartition:
		return "ExchangeSinglePartition"
	case BroadcastExchange:
		return "BroadcastExchange"
	case LocalLimit:
		return "LocalLimit"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// Node is one operator in a physical plan tree.
type Node struct {
	ID       int // index in the plan's bottom-up execution order
	Op       OpType
	Children []*Node

	// FileScan
	Table, Alias string
	Columns      []string // projected columns (unqualified names)

	// Filter (and FileScan when filters are pushed down)
	Preds []sql.Predicate

	// Joins: the key on the already-built (left) side and the newly
	// joined (right) side. For broadcast joins the right side is built.
	LeftKey, RightKey *logical.BoundCol
	// ThetaOp is the comparison of a non-equi (nested loop) join.
	ThetaOp sql.CmpOp

	// Aggregates
	GroupBy []logical.BoundCol
	Aggs    []logical.BoundAgg
	Final   bool // final (post-shuffle) aggregation

	// Sort
	SortCol  *logical.BoundCol
	SortDesc bool

	// LocalLimit
	LimitN int

	// Cardinalities: planner estimate and, after engine execution, truth.
	EstRows  float64
	ActRows  float64
	// Skew is the max/avg partition ratio measured by the engine on
	// hash-partition exchanges (1 = perfectly balanced, 0 = unmeasured).
	Skew float64
	RawRows  float64 // FileScan only: unfiltered table rows (drives I/O)
	RowBytes float64 // estimated bytes per output row
}

// Statement renders the Spark-style execution statement for this node —
// the text that node-semantic embedding tokenizes (Sec. IV-C, Fig. 4).
func (n *Node) Statement() string {
	switch n.Op {
	case FileScan:
		s := fmt.Sprintf("FileScan parquet %s[%s]", n.Table, strings.Join(n.Columns, ","))
		if len(n.Preds) > 0 {
			s += " PushedFilters: [" + predString(n.Preds) + "]"
		}
		return s
	case Filter:
		return "Filter (" + predString(n.Preds) + ")"
	case Project:
		return fmt.Sprintf("Project [%s]", strings.Join(n.Columns, ","))
	case Sort:
		dir := "ASC"
		if n.SortDesc {
			dir = "DESC"
		}
		return fmt.Sprintf("Sort [%s %s NULLS FIRST]", n.SortCol, dir)
	case SortMergeJoin:
		return fmt.Sprintf("SortMergeJoin [%s], [%s], Inner", n.LeftKey, n.RightKey)
	case BroadcastHashJoin:
		return fmt.Sprintf("BroadcastHashJoin [%s], [%s], Inner, BuildRight", n.LeftKey, n.RightKey)
	case ShuffledHashJoin:
		return fmt.Sprintf("ShuffledHashJoin [%s], [%s], Inner, BuildRight", n.LeftKey, n.RightKey)
	case BroadcastNestedLoopJoin:
		return fmt.Sprintf("BroadcastNestedLoopJoin BuildRight, Inner, (%s %s %s)", n.LeftKey, n.ThetaOp, n.RightKey)
	case HashAggregate, SortAggregate:
		var keyParts []string
		for _, g := range n.GroupBy {
			keyParts = append(keyParts, g.String())
		}
		keys := strings.Join(keyParts, ",")
		var fns []string
		for _, a := range n.Aggs {
			if a.Agg == sql.AggNone {
				continue
			}
			if a.Star {
				fns = append(fns, "count(1)")
			} else {
				fns = append(fns, fmt.Sprintf("%s(%s)", strings.ToLower(a.Agg.String()), a.Col))
			}
		}
		mode := "partial"
		if n.Final {
			mode = "final"
		}
		return fmt.Sprintf("%s (keys=[%s], functions=[%s], mode=%s)", n.Op, keys, strings.Join(fns, ","), mode)
	case ExchangeHashPartition:
		key := ""
		if n.LeftKey != nil {
			key = n.LeftKey.String()
		} else if len(n.GroupBy) > 0 {
			var parts []string
			for _, g := range n.GroupBy {
				parts = append(parts, g.String())
			}
			key = strings.Join(parts, ",")
		}
		return fmt.Sprintf("Exchange hashpartitioning(%s, 200)", key)
	case ExchangeSinglePartition:
		return "Exchange SinglePartition"
	case BroadcastExchange:
		return "BroadcastExchange HashedRelationBroadcastMode"
	case LocalLimit:
		return fmt.Sprintf("LocalLimit %d", n.LimitN)
	default:
		return n.Op.String()
	}
}

func predString(preds []sql.Predicate) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " && ")
}

// Plan is a complete physical plan: a tree plus its bottom-up execution
// order (children always precede parents, left subtree before right).
type Plan struct {
	Root  *Node
	Query *logical.Query
	Nodes []*Node
	Sig   string // human-readable signature: join order + algorithms
}

// finalize assigns IDs in bottom-up order and collects Nodes.
func (p *Plan) finalize() {
	p.Nodes = p.Nodes[:0]
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, c := range n.Children {
			walk(c)
		}
		n.ID = len(p.Nodes)
		p.Nodes = append(p.Nodes, n)
	}
	walk(p.Root)
}

// String renders the plan as an indented tree, root first (the way Spark's
// explain() prints physical plans).
func (p *Plan) String() string {
	var sb strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(fmt.Sprintf("%s (est=%.0f", n.Statement(), n.EstRows))
		if n.ActRows > 0 {
			sb.WriteString(fmt.Sprintf(", act=%.0f", n.ActRows))
		}
		sb.WriteString(")\n")
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return sb.String()
}

// CountOp returns how many nodes have the given operator type.
func (p *Plan) CountOp(op OpType) int {
	n := 0
	for _, node := range p.Nodes {
		if node.Op == op {
			n++
		}
	}
	return n
}
