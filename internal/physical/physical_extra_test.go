package physical

import (
	"strings"
	"testing"

	"raal/internal/sql"
)

func TestSHJPlanGenerated(t *testing.T) {
	pl, binder := newPlanner(t)
	pl.MaxPlans = 12
	stmt := mustParseStmt(t, `SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	q, err := binder.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := pl.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	var shj *Plan
	for _, p := range plans {
		if p.CountOp(ShuffledHashJoin) == 1 {
			shj = p
			break
		}
	}
	if shj == nil {
		t.Fatalf("no SHJ candidate among %v", sigs(plans))
	}
	// SHJ shuffles both sides but does not sort them.
	if shj.CountOp(ExchangeHashPartition) != 2 {
		t.Fatalf("SHJ needs 2 hash exchanges:\n%s", shj)
	}
	if shj.CountOp(Sort) != 0 {
		t.Fatalf("SHJ must not sort:\n%s", shj)
	}
	if !strings.Contains(shj.Sig, "SHJ") {
		t.Fatalf("sig missing SHJ: %s", shj.Sig)
	}
}

func TestSortAggregateVariant(t *testing.T) {
	pl, binder := newPlanner(t)
	pl.MaxPlans = 12
	stmt := mustParseStmt(t, `SELECT t.kind_id, COUNT(*) FROM title t GROUP BY t.kind_id`)
	q, err := binder.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := pl.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	var sa *Plan
	for _, p := range plans {
		if p.CountOp(SortAggregate) == 2 {
			sa = p
			break
		}
	}
	if sa == nil {
		t.Fatalf("no sort-aggregate candidate among %v", sigs(plans))
	}
	// Sort before partial aggregation and after the shuffle.
	if sa.CountOp(Sort) != 2 {
		t.Fatalf("sort-agg plan needs 2 sorts:\n%s", sa)
	}
	if !strings.Contains(sa.Sig, "agg=sort") {
		t.Fatalf("sig missing agg=sort: %s", sa.Sig)
	}
}

func TestBNLJForThetaJoin(t *testing.T) {
	pl, binder := newPlanner(t)
	stmt := mustParseStmt(t, `SELECT COUNT(*) FROM title t, movie_info_idx mii WHERE t.id < mii.movie_id AND t.kind_id = 1 AND mii.info_type_id = 99`)
	q, err := binder.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := pl.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.CountOp(BroadcastNestedLoopJoin) != 1 {
			t.Fatalf("theta query should use BNLJ:\n%s", p)
		}
		if p.CountOp(BroadcastExchange) != 1 {
			t.Fatalf("BNLJ needs a broadcast build side:\n%s", p)
		}
	}
	// The statement must show the comparison.
	joined := ""
	for _, n := range plans[0].Nodes {
		joined += n.Statement()
	}
	if !strings.Contains(joined, "BroadcastNestedLoopJoin") || !strings.Contains(joined, "<") {
		t.Fatalf("BNLJ statement wrong: %s", joined)
	}
}

func mustParseStmt(t *testing.T, q string) *sql.SelectStmt {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}
