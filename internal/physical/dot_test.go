package physical

import (
	"strings"
	"testing"
)

func TestPlanDOT(t *testing.T) {
	pl, binder := newPlanner(t)
	stmt := mustParseStmt(t, `SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	q, err := binder.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := pl.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	dot := plans[0].DOT()
	for _, want := range []string{"digraph plan", "FileScan", "title", "HashAggregate", "->", "est "} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// One node statement per plan node, one edge per child link.
	edges := strings.Count(dot, "->")
	wantEdges := 0
	for _, n := range plans[0].Nodes {
		wantEdges += len(n.Children)
	}
	if edges != wantEdges {
		t.Fatalf("DOT has %d edges, want %d", edges, wantEdges)
	}
}
