package physical

import (
	"fmt"
	"sort"
	"strings"

	"raal/internal/catalog"
	"raal/internal/cardest"
	"raal/internal/logical"
	"raal/internal/sql"
)

// Planner enumerates candidate physical plans for a bound query.
type Planner struct {
	Est *cardest.Estimator

	// MaxPlans caps the number of candidates returned (Catalyst-style;
	// the paper evaluates the first three). Default 6.
	MaxPlans int

	// BroadcastThreshold mirrors spark.sql.autoBroadcastJoinThreshold:
	// the size-based rule the *default* cost model uses to pick
	// broadcast joins. Default 10 MB.
	BroadcastThreshold float64
}

// NewPlanner returns a Planner with Spark-like defaults.
func NewPlanner(est *cardest.Estimator) *Planner {
	return &Planner{Est: est, MaxPlans: 6, BroadcastThreshold: 10 << 20}
}

// joinMode is a join-algorithm assignment policy for one candidate plan.
type joinMode int

const (
	modeThreshold joinMode = iota // BHJ when build side under threshold (Catalyst default)
	modeAllSMJ
	modeAllBHJ
	modeAllSHJ
)

func (m joinMode) String() string {
	switch m {
	case modeThreshold:
		return "auto"
	case modeAllSMJ:
		return "smj"
	case modeAllBHJ:
		return "bhj"
	case modeAllSHJ:
		return "shj"
	}
	return "?"
}

// Enumerate returns up to MaxPlans distinct physical plans for q, most
// Catalyst-like first. The first plan is always the one Spark's default
// rule-based model would pick (greedy order, threshold joins, pushdown).
func (pl *Planner) Enumerate(q *logical.Query) ([]*Plan, error) {
	orders := pl.joinOrders(q)
	var plans []*Plan
	seen := map[string]bool{}
	add := func(p *Plan, err error) error {
		if err != nil {
			return err
		}
		if !seen[p.Sig] {
			seen[p.Sig] = true
			plans = append(plans, p)
		}
		return nil
	}

	for _, order := range orders {
		for _, mode := range []joinMode{modeThreshold, modeAllSMJ, modeAllBHJ, modeAllSHJ} {
			if err := add(pl.build(q, order, mode, true, false)); err != nil {
				return nil, err
			}
		}
	}
	// Sort-based aggregation alternative for grouped queries.
	if len(q.GroupBy) > 0 {
		if err := add(pl.build(q, orders[0], modeThreshold, true, true)); err != nil {
			return nil, err
		}
	}
	// Pushdown-disabled variants: this is the second physical plan the
	// paper observes for single-table queries ("variation in the
	// conditions in the File Scan operators").
	for _, order := range orders {
		if err := add(pl.build(q, order, modeThreshold, false, false)); err != nil {
			return nil, err
		}
	}

	max := pl.MaxPlans
	if max <= 0 {
		max = 6
	}
	if len(plans) > max {
		plans = plans[:max]
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("physical: no plans produced for %s", q.Stmt)
	}
	return plans, nil
}

// DefaultPlan returns the plan Catalyst's rule-based model would choose.
func (pl *Planner) DefaultPlan(q *logical.Query) (*Plan, error) {
	orders := pl.joinOrders(q)
	return pl.build(q, orders[0], modeThreshold, true, false)
}

// joinOrders returns 1-3 connected join orders: greedy ascending by
// filtered size (Catalyst-like), FROM-clause order, and greedy descending.
func (pl *Planner) joinOrders(q *logical.Query) [][]string {
	aliases := make([]string, len(q.Tables))
	rows := map[string]float64{}
	table := map[string]string{}
	for i, tr := range q.Tables {
		aliases[i] = tr.Alias
		table[tr.Alias] = tr.Table
		rows[tr.Alias] = pl.Est.ScanRows(tr.Table, q.Filters[tr.Alias])
	}
	if len(aliases) == 1 {
		return [][]string{aliases}
	}

	connected := func(alias string, joined map[string]bool) bool {
		if l, _ := q.JoinKeysFor(alias, joined); l != nil {
			return true
		}
		_, _, _, ok := q.ThetaJoinFor(alias, joined)
		return ok
	}

	greedy := func(asc bool) []string {
		remaining := append([]string(nil), aliases...)
		sort.Slice(remaining, func(i, j int) bool {
			if rows[remaining[i]] != rows[remaining[j]] {
				if asc {
					return rows[remaining[i]] < rows[remaining[j]]
				}
				return rows[remaining[i]] > rows[remaining[j]]
			}
			return remaining[i] < remaining[j]
		})
		order := []string{remaining[0]}
		joined := map[string]bool{remaining[0]: true}
		remaining = remaining[1:]
		for len(remaining) > 0 {
			picked := -1
			for i, a := range remaining {
				if connected(a, joined) {
					picked = i
					break
				}
			}
			if picked < 0 {
				return nil // disconnected (binder prevents this)
			}
			a := remaining[picked]
			order = append(order, a)
			joined[a] = true
			remaining = append(remaining[:picked], remaining[picked+1:]...)
		}
		return order
	}

	written := func() []string {
		remaining := append([]string(nil), aliases...)
		order := []string{remaining[0]}
		joined := map[string]bool{remaining[0]: true}
		remaining = remaining[1:]
		for len(remaining) > 0 {
			picked := -1
			for i, a := range remaining {
				if connected(a, joined) {
					picked = i
					break
				}
			}
			if picked < 0 {
				return nil
			}
			order = append(order, remaining[picked])
			joined[remaining[picked]] = true
			remaining = append(remaining[:picked], remaining[picked+1:]...)
		}
		return order
	}

	var out [][]string
	seen := map[string]bool{}
	for _, o := range [][]string{greedy(true), written(), greedy(false)} {
		if o == nil {
			continue
		}
		key := strings.Join(o, ",")
		if !seen[key] {
			seen[key] = true
			out = append(out, o)
		}
	}
	return out
}

// neededColumns returns, per alias, the sorted set of columns referenced
// anywhere in the query (filters, join keys, aggregates, group/order by).
func (pl *Planner) neededColumns(q *logical.Query) map[string][]string {
	sets := map[string]map[string]bool{}
	addRef := func(alias, name string) {
		if sets[alias] == nil {
			sets[alias] = map[string]bool{}
		}
		sets[alias][name] = true
	}
	for alias, preds := range q.Filters {
		for _, p := range preds {
			for _, c := range p.Columns() {
				addRef(alias, c.Name)
			}
		}
	}
	for _, j := range q.Joins {
		addRef(j.Left.Alias, j.Left.Name)
		addRef(j.Right.Alias, j.Right.Name)
	}
	for _, t := range q.Thetas {
		addRef(t.Left.Alias, t.Left.Name)
		addRef(t.Right.Alias, t.Right.Name)
	}
	for _, a := range q.Aggs {
		if a.Col != nil {
			addRef(a.Col.Alias, a.Col.Name)
		}
	}
	for _, g := range q.GroupBy {
		addRef(g.Alias, g.Name)
	}
	if q.OrderBy != nil {
		addRef(q.OrderBy.Alias, q.OrderBy.Name)
	}
	out := map[string][]string{}
	for _, tr := range q.Tables {
		var cols []string
		for c := range sets[tr.Alias] {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		if len(cols) == 0 {
			// COUNT(*) over an unfiltered table still scans something;
			// Spark reads the narrowest column.
			if tab, err := pl.Est.DB().Table(tr.Table); err == nil && len(tab.Schema.Columns) > 0 {
				cols = []string{tab.Schema.Columns[0].Name}
			}
		}
		out[tr.Alias] = cols
	}
	return out
}

// rowBytes estimates the width of one row carrying the given columns.
func (pl *Planner) rowBytes(tableName string, cols []string) float64 {
	var w float64
	tab, err := pl.Est.DB().Table(tableName)
	if err != nil {
		return float64(8 * len(cols))
	}
	for _, c := range cols {
		if col, ok := tab.Schema.Col(c); ok && col.Type == catalog.String {
			w += 24
		} else {
			w += 8
		}
	}
	if w == 0 {
		w = 8
	}
	return w
}

// build constructs one physical plan for the given join order and mode.
// sortAgg selects sort-based instead of hash-based aggregation.
func (pl *Planner) build(q *logical.Query, order []string, mode joinMode, pushdown, sortAgg bool) (*Plan, error) {
	if order == nil {
		return nil, fmt.Errorf("physical: nil join order")
	}
	needed := pl.neededColumns(q)
	table := map[string]string{}
	for _, tr := range q.Tables {
		table[tr.Alias] = tr.Table
	}

	// scanPreds: user filters plus Spark's isnotnull guards on join keys.
	scanPreds := func(alias string) []sql.Predicate {
		preds := append([]sql.Predicate(nil), q.Filters[alias]...)
		guarded := map[string]bool{}
		for _, j := range q.Joins {
			for _, bc := range []logical.BoundCol{j.Left, j.Right} {
				if bc.Alias == alias && !guarded[bc.Name] {
					guarded[bc.Name] = true
					preds = append(preds, &sql.NullCheck{
						Col: sql.ColumnRef{Qualifier: alias, Name: bc.Name}, Not: true})
				}
			}
		}
		return preds
	}

	// qualify returns the engine-visible (alias-qualified) column list.
	qualify := func(alias string) []string {
		cols := needed[alias]
		out := make([]string, len(cols))
		for i, c := range cols {
			out[i] = alias + "." + c
		}
		return out
	}

	scanSubtree := func(alias string) *Node {
		tbl := table[alias]
		preds := scanPreds(alias)
		raw := pl.Est.TableRows(tbl)
		filtered := pl.Est.ScanRows(tbl, preds)
		width := pl.rowBytes(tbl, needed[alias])

		scan := &Node{Op: FileScan, Table: tbl, Alias: alias, Columns: needed[alias], RowBytes: width, RawRows: raw}
		var top *Node
		if pushdown {
			scan.Preds = preds
			scan.EstRows = filtered
			top = scan
		} else {
			scan.EstRows = raw
			top = scan
			if len(preds) > 0 {
				top = &Node{Op: Filter, Children: []*Node{scan}, Preds: preds, EstRows: filtered, RowBytes: width}
			}
		}
		proj := &Node{Op: Project, Children: []*Node{top}, Columns: qualify(alias), EstRows: filtered, RowBytes: width}
		return proj
	}

	cur := scanSubtree(order[0])
	joined := map[string]bool{order[0]: true}
	var algoSig []string

	for _, alias := range order[1:] {
		leftKey, rightKey := q.JoinKeysFor(alias, joined)
		if leftKey == nil {
			// No equi key: fall back to a broadcast nested loop join on
			// a theta edge.
			tl, tr, op, ok := q.ThetaJoinFor(alias, joined)
			if !ok {
				return nil, fmt.Errorf("physical: join order %v is disconnected at %s", order, alias)
			}
			newSide := scanSubtree(alias)
			joinRows := cur.EstRows * newSide.EstRows / 3 // inequality selectivity
			bx := &Node{Op: BroadcastExchange, Children: []*Node{newSide}, EstRows: newSide.EstRows, RowBytes: newSide.RowBytes}
			cur = &Node{
				Op: BroadcastNestedLoopJoin, Children: []*Node{cur, bx},
				LeftKey: tl, RightKey: tr, ThetaOp: op,
				EstRows: joinRows, RowBytes: cur.RowBytes + newSide.RowBytes,
			}
			algoSig = append(algoSig, "BNLJ")
			joined[alias] = true
			continue
		}
		newSide := scanSubtree(alias)
		joinRows := pl.Est.JoinRows(cur.EstRows, newSide.EstRows, *leftKey, *rightKey)
		joinWidth := cur.RowBytes + newSide.RowBytes

		useBHJ := false
		switch mode {
		case modeAllBHJ:
			useBHJ = true
		case modeAllSMJ:
			useBHJ = false
		case modeThreshold:
			useBHJ = newSide.EstRows*newSide.RowBytes < pl.BroadcastThreshold
		}

		if mode == modeAllSHJ {
			lx := &Node{Op: ExchangeHashPartition, Children: []*Node{cur}, LeftKey: leftKey, EstRows: cur.EstRows, RowBytes: cur.RowBytes}
			rx := &Node{Op: ExchangeHashPartition, Children: []*Node{newSide}, LeftKey: rightKey, EstRows: newSide.EstRows, RowBytes: newSide.RowBytes}
			cur = &Node{
				Op: ShuffledHashJoin, Children: []*Node{lx, rx},
				LeftKey: leftKey, RightKey: rightKey,
				EstRows: joinRows, RowBytes: joinWidth,
			}
			algoSig = append(algoSig, "SHJ")
		} else if useBHJ {
			bx := &Node{Op: BroadcastExchange, Children: []*Node{newSide}, EstRows: newSide.EstRows, RowBytes: newSide.RowBytes}
			cur = &Node{
				Op: BroadcastHashJoin, Children: []*Node{cur, bx},
				LeftKey: leftKey, RightKey: rightKey,
				EstRows: joinRows, RowBytes: joinWidth,
			}
			algoSig = append(algoSig, "BHJ")
		} else {
			lx := &Node{Op: ExchangeHashPartition, Children: []*Node{cur}, LeftKey: leftKey, EstRows: cur.EstRows, RowBytes: cur.RowBytes}
			ls := &Node{Op: Sort, Children: []*Node{lx}, SortCol: leftKey, EstRows: cur.EstRows, RowBytes: cur.RowBytes}
			rx := &Node{Op: ExchangeHashPartition, Children: []*Node{newSide}, LeftKey: rightKey, EstRows: newSide.EstRows, RowBytes: newSide.RowBytes}
			rs := &Node{Op: Sort, Children: []*Node{rx}, SortCol: rightKey, EstRows: newSide.EstRows, RowBytes: newSide.RowBytes}
			cur = &Node{
				Op: SortMergeJoin, Children: []*Node{ls, rs},
				LeftKey: leftKey, RightKey: rightKey,
				EstRows: joinRows, RowBytes: joinWidth,
			}
			algoSig = append(algoSig, "SMJ")
		}
		joined[alias] = true
	}

	// Aggregation: partial → exchange → final (Spark's two-phase
	// aggregation), present whenever the query aggregates or groups.
	if len(q.Aggs) > 0 {
		groups := pl.Est.GroupRows(cur.EstRows, q.GroupBy)
		aggWidth := float64(8 * len(q.Aggs))
		aggOp := HashAggregate
		if sortAgg && len(q.GroupBy) > 0 {
			// Sort-based aggregation needs its input ordered by the key.
			aggOp = SortAggregate
			cur = &Node{Op: Sort, Children: []*Node{cur}, SortCol: &q.GroupBy[0], EstRows: cur.EstRows, RowBytes: cur.RowBytes}
		}
		partial := &Node{Op: aggOp, Children: []*Node{cur},
			GroupBy: q.GroupBy, Aggs: q.Aggs, EstRows: groups, RowBytes: aggWidth}
		var ex *Node
		if len(q.GroupBy) > 0 {
			ex = &Node{Op: ExchangeHashPartition, Children: []*Node{partial},
				GroupBy: q.GroupBy, EstRows: groups, RowBytes: aggWidth}
		} else {
			ex = &Node{Op: ExchangeSinglePartition, Children: []*Node{partial},
				EstRows: groups, RowBytes: aggWidth}
		}
		pre := ex
		if sortAgg && len(q.GroupBy) > 0 {
			pre = &Node{Op: Sort, Children: []*Node{ex}, SortCol: &q.GroupBy[0], EstRows: groups, RowBytes: aggWidth}
		}
		cur = &Node{Op: aggOp, Children: []*Node{pre},
			GroupBy: q.GroupBy, Aggs: q.Aggs, Final: true, EstRows: groups, RowBytes: aggWidth}
	}

	if q.OrderBy != nil {
		ex := &Node{Op: ExchangeSinglePartition, Children: []*Node{cur}, EstRows: cur.EstRows, RowBytes: cur.RowBytes}
		cur = &Node{Op: Sort, Children: []*Node{ex}, SortCol: q.OrderBy, SortDesc: q.Desc, EstRows: cur.EstRows, RowBytes: cur.RowBytes}
	}
	if q.Limit >= 0 {
		rows := cur.EstRows
		if float64(q.Limit) < rows {
			rows = float64(q.Limit)
		}
		cur = &Node{Op: LocalLimit, Children: []*Node{cur}, LimitN: q.Limit, EstRows: rows, RowBytes: cur.RowBytes}
	}

	p := &Plan{Root: cur, Query: q}
	p.Sig = fmt.Sprintf("order=%s;algos=%s;push=%v",
		strings.Join(order, ","), strings.Join(algoSig, ","), pushdown)
	if sortAgg {
		p.Sig += ";agg=sort"
	}
	p.finalize()
	return p, nil
}
