package physical

import (
	"fmt"
	"strings"
)

// DOT renders the plan as a Graphviz digraph (bottom-up data flow), with
// estimated and actual cardinalities on each operator — handy for
// documentation and debugging plan choices.
func (p *Plan) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph plan {\n")
	sb.WriteString("  rankdir=BT;\n  node [shape=box, fontsize=10];\n")
	for _, n := range p.Nodes {
		label := n.Op.String()
		switch n.Op {
		case FileScan:
			label = fmt.Sprintf("%s\\n%s", n.Op, n.Table)
		case SortMergeJoin, BroadcastHashJoin, ShuffledHashJoin:
			label = fmt.Sprintf("%s\\n%s = %s", n.Op, n.LeftKey, n.RightKey)
		case BroadcastNestedLoopJoin:
			label = fmt.Sprintf("%s\\n%s %s %s", n.Op, n.LeftKey, n.ThetaOp, n.RightKey)
		case Sort:
			label = fmt.Sprintf("%s\\n%s", n.Op, n.SortCol)
		case HashAggregate, SortAggregate:
			mode := "partial"
			if n.Final {
				mode = "final"
			}
			label = fmt.Sprintf("%s\\n%s", n.Op, mode)
		}
		card := fmt.Sprintf("est %.0f", n.EstRows)
		if n.ActRows > 0 {
			card += fmt.Sprintf(" / act %.0f", n.ActRows)
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\\n%s\"];\n", n.ID, label, card)
	}
	for _, n := range p.Nodes {
		for _, c := range n.Children {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", c.ID, n.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
