package autodiff

import (
	"fmt"
	"math"

	"raal/internal/tensor"
)

// Tape32 is the reduced-precision twin of an inference-mode Tape: the
// same bump-pointer arena discipline (slabs of values + matrix headers,
// cursor-rewind Reset, pointer-identical warm replay) parameterized over
// float32 storage. It is forward-only — quantized models are never
// trained, so there are no records, no Vars, and no Backward; every op
// computes immediately and returns an arena-backed *tensor.Matrix32.
//
// The semantics of each op mirror its float64 Tape counterpart exactly
// (same masks, same padding, same accumulation order), so the only
// differences between a float64 and a float32 forward pass are where each
// intermediate rounds and the transcendentals, which run through the
// all-f32 fast kernels (tensor.Exp32/Tanh32/Sigmoid32 — a few ulps from
// the rounded float64 result). The tape also carries inference-only
// fusions the float64 tape cannot have (LSTMCell): no backward pass means
// intermediates need not be materialized.
//
// A Tape32 is not safe for concurrent use; run one per goroutine.
type Tape32 struct {
	data    [][]float32 // value slabs
	bi, off int         // cursor: current slab, next free element

	hdrs [][]tensor.Matrix32 // matrix-header slabs
	nHdr int                 // headers in use
}

// arenaBlockFloats32 is the size of one value slab: 128 KiB of float32.
const arenaBlockFloats32 = 1 << 15

// NewTape32 returns an empty forward-only float32 tape.
func NewTape32() *Tape32 { return &Tape32{} }

// Reset rewinds the arena cursor: every matrix handed out since the last
// Reset is reclaimed, and an identical op sequence replayed afterwards
// reuses the same slabs — zero steady-state allocations, exactly like the
// float64 tape's Reset.
func (t *Tape32) Reset() { t.bi, t.off, t.nHdr = 0, 0, 0 }

// slab returns n contiguous float32s with unspecified contents.
func (t *Tape32) slab(n int) []float32 {
	for {
		if t.bi == len(t.data) {
			sz := arenaBlockFloats32
			if n > sz {
				sz = n
			}
			t.data = append(t.data, make([]float32, sz))
		}
		if blk := t.data[t.bi]; t.off+n <= len(blk) {
			s := blk[t.off : t.off+n : t.off+n]
			t.off += n
			return s
		}
		t.bi++
		t.off = 0
	}
}

// get returns a rows×cols arena matrix with unspecified contents; the
// caller must fully overwrite (or Zero) it.
func (t *Tape32) get(rows, cols int) *tensor.Matrix32 {
	bi, off := t.nHdr/slabBlock, t.nHdr%slabBlock
	if bi == len(t.hdrs) {
		t.hdrs = append(t.hdrs, make([]tensor.Matrix32, slabBlock))
	}
	t.nHdr++
	m := &t.hdrs[bi][off]
	m.Rows, m.Cols = rows, cols
	m.Data = t.slab(rows * cols)
	return m
}

// NewMatrix returns a zeroed rows×cols matrix on loan from the arena;
// valid until the next Reset.
func (t *Tape32) NewMatrix(rows, cols int) *tensor.Matrix32 {
	m := t.get(rows, cols)
	m.Zero()
	return m
}

// MatMul returns a×b.
func (t *Tape32) MatMul(a, b *tensor.Matrix32) *tensor.Matrix32 {
	out := t.get(a.Rows, b.Cols)
	tensor.MatMul32Into(out, a, b)
	return out
}

// MatMulQ returns a×dequant(q), fusing the int8 dequantization into the
// accumulation (see tensor.MatMulQ32Into).
func (t *Tape32) MatMulQ(a *tensor.Matrix32, q *tensor.QMatrix8) *tensor.Matrix32 {
	out := t.get(a.Rows, q.Cols)
	tensor.MatMulQ32Into(out, a, q)
	return out
}

// MatMulTransB returns a×bᵀ without materializing bᵀ.
func (t *Tape32) MatMulTransB(a, b *tensor.Matrix32) *tensor.Matrix32 {
	out := t.get(a.Rows, b.Rows)
	tensor.MatMulTransB32Into(out, a, b)
	return out
}

// Add returns a+b elementwise.
func (t *Tape32) Add(a, b *tensor.Matrix32) *tensor.Matrix32 {
	out := t.get(a.Rows, a.Cols)
	tensor.Add32Into(out, a, b)
	return out
}

// Mul returns the Hadamard product a∘b.
func (t *Tape32) Mul(a, b *tensor.Matrix32) *tensor.Matrix32 {
	out := t.get(a.Rows, a.Cols)
	tensor.Mul32Into(out, a, b)
	return out
}

// Scale returns s·a.
func (t *Tape32) Scale(a *tensor.Matrix32, s float32) *tensor.Matrix32 {
	out := t.get(a.Rows, a.Cols)
	tensor.Scale32Into(out, a, s)
	return out
}

// Tanh returns tanh(a) elementwise.
func (t *Tape32) Tanh(a *tensor.Matrix32) *tensor.Matrix32 {
	out := t.get(a.Rows, a.Cols)
	tensor.Tanh32Into(out, a)
	return out
}

// AddRowAct returns act(m + r broadcast over rows) through the fused
// kernel — the f32 form of the Tape.AddRowApply path every dense layer
// and LSTM gate runs.
func (t *Tape32) AddRowAct(m, r *tensor.Matrix32, act tensor.Act) *tensor.Matrix32 {
	out := t.get(m.Rows, m.Cols)
	tensor.AddRowAct32Into(out, m, r, act)
	return out
}

// MatMulAddRows returns rows [i, i+a.Rows) of big plus a×b — the fused
// form of AddRowsAt(big, i, MatMul(a, b)) that the inference LSTM
// recurrence runs, saving one full intermediate write+read per step.
func (t *Tape32) MatMulAddRows(big *tensor.Matrix32, i int, a, b *tensor.Matrix32) *tensor.Matrix32 {
	rows, cols := a.Rows, b.Cols
	if big.Cols != cols {
		panic(fmt.Sprintf("autodiff: MatMulAddRows col mismatch %d != %d", big.Cols, cols))
	}
	if i < 0 || i+rows > big.Rows {
		panic(fmt.Sprintf("autodiff: MatMulAddRows rows [%d,%d) out of %d", i, i+rows, big.Rows))
	}
	out := t.get(rows, cols)
	base := &tensor.Matrix32{Rows: rows, Cols: cols, Data: big.Data[i*cols : (i+rows)*cols]}
	tensor.MatMulAdd32Into(out, base, a, b)
	return out
}

// LSTMCell runs one fused LSTM cell step: z is the batch×4h gate
// pre-activation, b the packed gate bias, sc the cell state (updated in
// place); the returned batch×h matrix is the new hidden state. See
// tensor.LSTMCell32Into for the fusion rationale.
func (t *Tape32) LSTMCell(z, b, sc *tensor.Matrix32) *tensor.Matrix32 {
	sh := t.get(sc.Rows, sc.Cols)
	tensor.LSTMCell32Into(sh, sc, z, b)
	return sh
}

// SliceCols extracts columns [lo,hi) of a as a copy.
func (t *Tape32) SliceCols(a *tensor.Matrix32, lo, hi int) *tensor.Matrix32 {
	if lo < 0 || hi > a.Cols || lo > hi {
		panic(fmt.Sprintf("autodiff: SliceCols [%d,%d) out of %d cols", lo, hi, a.Cols))
	}
	out := t.get(a.Rows, hi-lo)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i), a.Row(i)[lo:hi])
	}
	return out
}

// AddRowsAt returns rows [i, i+small.Rows) of big plus small, elementwise
// — the stacked-LSTM recurrence step (see Tape.AddRowsAt).
func (t *Tape32) AddRowsAt(big *tensor.Matrix32, i int, small *tensor.Matrix32) *tensor.Matrix32 {
	rows, cols := small.Rows, small.Cols
	if big.Cols != cols {
		panic(fmt.Sprintf("autodiff: AddRowsAt col mismatch %d != %d", big.Cols, cols))
	}
	if i < 0 || i+rows > big.Rows {
		panic(fmt.Sprintf("autodiff: AddRowsAt rows [%d,%d) out of %d", i, i+rows, big.Rows))
	}
	out := t.get(rows, cols)
	win := big.Data[i*cols : (i+rows)*cols]
	for k, v := range win {
		out.Data[k] = v + small.Data[k]
	}
	return out
}

// GatherRows extracts row i of every input and stacks the copies into a
// len(vs)×cols matrix.
func (t *Tape32) GatherRows(vs []*tensor.Matrix32, i int) *tensor.Matrix32 {
	if len(vs) == 0 {
		return t.get(0, 0)
	}
	cols := vs[0].Cols
	out := t.get(len(vs), cols)
	for k, v := range vs {
		if v.Cols != cols {
			panic(fmt.Sprintf("autodiff: GatherRows col mismatch %d != %d", v.Cols, cols))
		}
		if i < 0 || i >= v.Rows {
			panic(fmt.Sprintf("autodiff: GatherRows(%d) out of %d rows", i, v.Rows))
		}
		copy(out.Row(k), v.Row(i))
	}
	return out
}

// ConcatCols concatenates matrices horizontally.
func (t *Tape32) ConcatCols(vs ...*tensor.Matrix32) *tensor.Matrix32 {
	rows, cols := 0, 0
	if len(vs) > 0 {
		rows = vs[0].Rows
		for _, v := range vs {
			if v.Rows != rows {
				panic(fmt.Sprintf("tensor: concatCols row mismatch %d != %d", v.Rows, rows))
			}
			cols += v.Cols
		}
	}
	out := t.get(rows, cols)
	for i := 0; i < rows; i++ {
		off := 0
		orow := out.Row(i)
		for _, v := range vs {
			copy(orow[off:off+v.Cols], v.Row(i))
			off += v.Cols
		}
	}
	return out
}

// ConcatRows concatenates matrices vertically.
func (t *Tape32) ConcatRows(vs ...*tensor.Matrix32) *tensor.Matrix32 {
	rows, cols := 0, 0
	if len(vs) > 0 {
		cols = vs[0].Cols
		for _, v := range vs {
			if v.Cols != cols {
				panic(fmt.Sprintf("tensor: concatRows col mismatch %d != %d", v.Cols, cols))
			}
			rows += v.Rows
		}
	}
	out := t.get(rows, cols)
	off := 0
	for _, v := range vs {
		copy(out.Data[off:off+len(v.Data)], v.Data)
		off += len(v.Data)
	}
	return out
}

// softmaxRow32 fills outRow with the masked softmax of in: masked-out
// columns get probability exactly 0, a fully masked row becomes all
// zeros. exp evaluates through the all-f32 fast kernel; the sum
// accumulates in f32 in ascending column order (deterministic — these
// ops never fan out).
func softmaxRow32(in, outRow []float32, masked func(j int) bool) {
	maxv := float32(math.Inf(-1))
	any := false
	for j, x := range in {
		if masked(j) && (!any || x > maxv) {
			maxv = x
			any = true
		}
	}
	if !any {
		for j := range outRow {
			outRow[j] = 0
		}
		return
	}
	var sum float32
	for j, x := range in {
		if masked(j) {
			e := tensor.Exp32(x - maxv)
			outRow[j] = e
			sum += e
		} else {
			outRow[j] = 0
		}
	}
	for j := range outRow {
		outRow[j] /= sum
	}
}

// SoftmaxRows applies a row-wise softmax; mask (nil = all true) selects
// which columns may receive probability. Same semantics as
// Tape.SoftmaxRows.
func (t *Tape32) SoftmaxRows(a *tensor.Matrix32, mask []bool) *tensor.Matrix32 {
	if mask != nil && len(mask) != a.Cols {
		panic(fmt.Sprintf("autodiff: softmax mask length %d != cols %d", len(mask), a.Cols))
	}
	out := t.get(a.Rows, a.Cols)
	sel := func(j int) bool { return mask == nil || mask[j] }
	for i := 0; i < a.Rows; i++ {
		softmaxRow32(a.Row(i), out.Row(i), sel)
	}
	return out
}

// SoftmaxRowsMask2D applies a row-wise softmax with an independent column
// mask per row. Same semantics as Tape.SoftmaxRowsMask2D.
func (t *Tape32) SoftmaxRowsMask2D(a *tensor.Matrix32, mask [][]bool) *tensor.Matrix32 {
	if len(mask) != a.Rows {
		panic(fmt.Sprintf("autodiff: 2D softmax mask rows %d != %d", len(mask), a.Rows))
	}
	out := t.get(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		if len(mask[i]) != a.Cols {
			panic(fmt.Sprintf("autodiff: 2D softmax mask row %d has %d cols, want %d", i, len(mask[i]), a.Cols))
		}
		row := mask[i]
		softmaxRow32(a.Row(i), out.Row(i), func(j int) bool { return row[j] })
	}
	return out
}

// MeanRowsMasked averages the rows of a whose mask entry is true into a
// 1×cols matrix (all zeros when nothing is selected).
func (t *Tape32) MeanRowsMasked(a *tensor.Matrix32, mask []bool) *tensor.Matrix32 {
	if len(mask) != a.Rows {
		panic(fmt.Sprintf("autodiff: mean mask length %d != rows %d", len(mask), a.Rows))
	}
	n := 0
	for _, m := range mask {
		if m {
			n++
		}
	}
	out := t.NewMatrix(1, a.Cols)
	if n == 0 {
		return out
	}
	inv := float32(n)
	for i, m := range mask {
		if !m {
			continue
		}
		row := a.Row(i)
		for j, x := range row {
			out.Data[j] += x / inv
		}
	}
	return out
}

// Im2ColRows materializes the width-row neighborhood of every row of x
// with "same" zero padding, as one rows×(width·cols) matrix. Same
// semantics as Tape.Im2ColRows.
func (t *Tape32) Im2ColRows(x *tensor.Matrix32, width int) *tensor.Matrix32 {
	if width < 1 || width%2 == 0 {
		panic(fmt.Sprintf("autodiff: Im2ColRows width %d must be odd and positive", width))
	}
	rows, cols := x.Rows, x.Cols
	half := width / 2
	out := t.get(rows, width*cols)
	for p := 0; p < rows; p++ {
		orow := out.Row(p)
		for k := 0; k < width; k++ {
			dst := orow[k*cols : (k+1)*cols]
			if src := p + k - half; src >= 0 && src < rows {
				copy(dst, x.Row(src))
			} else {
				for j := range dst {
					dst[j] = 0
				}
			}
		}
	}
	return out
}
