package autodiff

import (
	"testing"

	"raal/internal/tensor"
)

func TestGradSliceCols(t *testing.T) {
	ps := randParams(31, [2]int{3, 6})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		left := tp.SliceCols(vs[0], 0, 2)
		right := tp.SliceCols(vs[0], 4, 6)
		return tp.SumAll(tp.Mul(left, right))
	})
}

func TestSliceColsValues(t *testing.T) {
	tp := NewTape()
	a := tp.Const(tensor.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}}))
	s := tp.SliceCols(a, 1, 3)
	want := tensor.FromRows([][]float64{{2, 3}, {5, 6}})
	if !tensor.AllClose(s.Value, want, 0) {
		t.Fatalf("SliceCols = %v", s.Value)
	}
}

func TestSliceColsBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := NewTape()
	tp.SliceCols(tp.Const(tensor.New(2, 3)), 1, 5)
}

func TestGradScaleComposite(t *testing.T) {
	ps := randParams(32, [2]int{2, 2})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		// -2·tanh(x) + 0.5·x, exercising Scale on both branches.
		return tp.MeanAll(tp.Add(tp.Scale(tp.Tanh(vs[0]), -2), tp.Scale(vs[0], 0.5)))
	})
}

func TestRowAtBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := NewTape()
	tp.RowAt(tp.Const(tensor.New(2, 3)), 5)
}

func TestMeanRowsMaskedLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := NewTape()
	tp.MeanRowsMasked(tp.Const(tensor.New(3, 2)), []bool{true})
}

func TestMSEShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := NewTape()
	tp.MSE(tp.Const(tensor.New(2, 1)), tensor.New(3, 1))
}

func TestDropoutNilMaskIsIdentity(t *testing.T) {
	tp := NewTape()
	v := tp.Const(tensor.FromRows([][]float64{{1, 2}}))
	if tp.Dropout(v, 0.5, nil) != v {
		t.Fatal("nil-mask dropout should return the input var")
	}
}
