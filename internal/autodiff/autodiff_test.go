package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"raal/internal/tensor"
)

// numericalGrad computes d(loss)/d(param) by central differences, where
// loss re-runs the full forward pass.
func numericalGrad(param *tensor.Matrix, loss func() float64) *tensor.Matrix {
	const eps = 1e-6
	g := tensor.New(param.Rows, param.Cols)
	for i := range param.Data {
		orig := param.Data[i]
		param.Data[i] = orig + eps
		up := loss()
		param.Data[i] = orig - eps
		down := loss()
		param.Data[i] = orig
		g.Data[i] = (up - down) / (2 * eps)
	}
	return g
}

// checkGrad runs forward once with a fresh tape, backpropagates, and
// compares every parameter's analytic gradient with the numeric one.
func checkGrad(t *testing.T, params []*tensor.Matrix, forward func(tp *Tape, ps []*Var) *Var) {
	t.Helper()
	tp := NewTape()
	vars := make([]*Var, len(params))
	for i, p := range params {
		vars[i] = tp.Param(p)
	}
	loss := forward(tp, vars)
	tp.Backward(loss)

	lossAt := func() float64 {
		tp2 := NewTape()
		vs := make([]*Var, len(params))
		for i, p := range params {
			vs[i] = tp2.Param(p)
		}
		return forward(tp2, vs).Value.Data[0]
	}
	for pi, p := range params {
		want := numericalGrad(p, lossAt)
		got := vars[pi].Grad
		if got == nil {
			got = tensor.New(p.Rows, p.Cols)
		}
		if !tensor.AllClose(got, want, 1e-4) {
			t.Fatalf("param %d gradient mismatch:\n got %v\nwant %v", pi, got, want)
		}
	}
}

func randParams(seed int64, shapes ...[2]int) []*tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Matrix, len(shapes))
	for i, s := range shapes {
		out[i] = tensor.Randn(s[0], s[1], 0.7, rng)
	}
	return out
}

func TestGradMatMulChain(t *testing.T) {
	ps := randParams(1, [2]int{3, 4}, [2]int{4, 2})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		return tp.MeanAll(tp.MatMul(vs[0], vs[1]))
	})
}

func TestGradAddSubMulScale(t *testing.T) {
	ps := randParams(2, [2]int{2, 3}, [2]int{2, 3})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		sum := tp.Add(vs[0], vs[1])
		diff := tp.Sub(vs[0], vs[1])
		prod := tp.Mul(sum, diff) // (a+b)(a−b)
		return tp.SumAll(tp.Scale(prod, 0.5))
	})
}

func TestGradActivations(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func(tp *Tape, v *Var) *Var
	}{
		{"sigmoid", func(tp *Tape, v *Var) *Var { return tp.Sigmoid(v) }},
		{"tanh", func(tp *Tape, v *Var) *Var { return tp.Tanh(v) }},
		{"relu", func(tp *Tape, v *Var) *Var { return tp.ReLU(v) }},
		{"leakyrelu", func(tp *Tape, v *Var) *Var { return tp.LeakyReLU(v, 0.1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ps := randParams(3, [2]int{2, 4})
			checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
				return tp.MeanAll(tc.f(tp, vs[0]))
			})
		})
	}
}

func TestGradAddRow(t *testing.T) {
	ps := randParams(4, [2]int{3, 4}, [2]int{1, 4})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		return tp.MeanAll(tp.Tanh(tp.AddRow(vs[0], vs[1])))
	})
}

func TestGradSoftmaxRows(t *testing.T) {
	ps := randParams(5, [2]int{3, 5})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		sm := tp.SoftmaxRows(vs[0], nil)
		// weight the probabilities so the gradient isn't trivially zero
		w := tensor.New(3, 5)
		for i := range w.Data {
			w.Data[i] = float64(i%4) - 1.5
		}
		return tp.SumAll(tp.Mul(sm, tp.Const(w)))
	})
}

func TestGradSoftmaxMasked(t *testing.T) {
	mask := []bool{true, false, true, true, false}
	ps := randParams(6, [2]int{2, 5})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		sm := tp.SoftmaxRows(vs[0], mask)
		w := tensor.New(2, 5)
		for i := range w.Data {
			w.Data[i] = math.Sin(float64(i))
		}
		return tp.SumAll(tp.Mul(sm, tp.Const(w)))
	})
}

func TestSoftmaxMaskedColumnsZero(t *testing.T) {
	tp := NewTape()
	x := tp.Const(tensor.FromRows([][]float64{{5, 100, 1}}))
	sm := tp.SoftmaxRows(x, []bool{true, false, true})
	if sm.Value.At(0, 1) != 0 {
		t.Fatalf("masked column got probability %v", sm.Value.At(0, 1))
	}
	sum := sm.Value.Sum()
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestSoftmaxFullyMaskedRowIsZero(t *testing.T) {
	tp := NewTape()
	x := tp.Const(tensor.FromRows([][]float64{{5, 3}}))
	sm := tp.SoftmaxRows(x, []bool{false, false})
	if sm.Value.Sum() != 0 {
		t.Fatalf("fully masked row should be zero, got %v", sm.Value)
	}
}

func TestGradSoftmaxMask2D(t *testing.T) {
	mask := [][]bool{
		{false, true, true, false},
		{true, false, false, true},
		{false, false, false, false}, // fully masked row
	}
	ps := randParams(21, [2]int{3, 4})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		sm := tp.SoftmaxRowsMask2D(vs[0], mask)
		w := tensor.New(3, 4)
		for i := range w.Data {
			w.Data[i] = math.Cos(float64(i))
		}
		return tp.SumAll(tp.Mul(sm, tp.Const(w)))
	})
}

func TestSoftmaxMask2DRowsSumToOne(t *testing.T) {
	tp := NewTape()
	x := tp.Const(tensor.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}}))
	sm := tp.SoftmaxRowsMask2D(x, [][]bool{{true, true, false}, {false, false, false}})
	row0 := sm.Value.Row(0)
	if math.Abs(row0[0]+row0[1]-1) > 1e-12 || row0[2] != 0 {
		t.Fatalf("row 0 = %v", row0)
	}
	for _, v := range sm.Value.Row(1) {
		if v != 0 {
			t.Fatalf("fully masked row should be zero: %v", sm.Value.Row(1))
		}
	}
}

func TestGradConcatCols(t *testing.T) {
	ps := randParams(7, [2]int{2, 3}, [2]int{2, 2})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		return tp.MeanAll(tp.Tanh(tp.ConcatCols(vs[0], vs[1])))
	})
}

func TestGradConcatRows(t *testing.T) {
	ps := randParams(8, [2]int{2, 3}, [2]int{1, 3})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		return tp.MeanAll(tp.Sigmoid(tp.ConcatRows(vs[0], vs[1])))
	})
}

func TestGradRowAt(t *testing.T) {
	ps := randParams(9, [2]int{4, 3})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		r1 := tp.RowAt(vs[0], 1)
		r3 := tp.RowAt(vs[0], 3)
		return tp.SumAll(tp.Mul(r1, r3))
	})
}

func TestGradTranspose(t *testing.T) {
	ps := randParams(10, [2]int{3, 4})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		return tp.MeanAll(tp.MatMul(vs[0], tp.Transpose(vs[0])))
	})
}

func TestGradMeanRowsMasked(t *testing.T) {
	mask := []bool{true, false, true, true}
	ps := randParams(11, [2]int{4, 3})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		return tp.SumAll(tp.MeanRowsMasked(vs[0], mask))
	})
}

func TestGradMSE(t *testing.T) {
	target := tensor.FromRows([][]float64{{1, -1}, {0.5, 2}})
	ps := randParams(12, [2]int{2, 2})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		return tp.MSE(tp.Tanh(vs[0]), target)
	})
}

func TestGradDropout(t *testing.T) {
	keep := []bool{true, false, true, true, false, true}
	ps := randParams(13, [2]int{2, 3})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		return tp.MeanAll(tp.Dropout(vs[0], 0.5, keep))
	})
}

func TestGradSharedParameterAccumulates(t *testing.T) {
	// Using the same parameter twice must sum both contributions.
	ps := randParams(14, [2]int{2, 2})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		a := tp.MatMul(vs[0], vs[0]) // same Var on both sides
		return tp.MeanAll(a)
	})
}

func TestConstHasNoGrad(t *testing.T) {
	tp := NewTape()
	c := tp.Const(tensor.FromRows([][]float64{{1, 2}}))
	p := tp.Param(tensor.FromRows([][]float64{{3}, {4}}))
	loss := tp.SumAll(tp.MatMul(c, p))
	tp.Backward(loss)
	if c.Grad != nil {
		t.Fatal("const should not accumulate gradient")
	}
	if p.Grad == nil || p.Grad.At(0, 0) != 1 || p.Grad.At(1, 0) != 2 {
		t.Fatalf("param grad wrong: %v", p.Grad)
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := NewTape()
	v := tp.Param(tensor.New(2, 2))
	tp.Backward(v)
}

func TestTapeReset(t *testing.T) {
	tp := NewTape()
	p := tp.Param(tensor.FromRows([][]float64{{2}}))
	tp.Backward(tp.SumAll(p))
	if tp.Len() != 1 {
		t.Fatalf("tape len %d", tp.Len())
	}
	tp.Reset()
	if tp.Len() != 0 {
		t.Fatal("reset did not clear tape")
	}
}

func TestGradAccumulatesAcrossBackwards(t *testing.T) {
	// Two forward/backward passes without zeroing must double the grad.
	p := tensor.FromRows([][]float64{{3}})
	tp := NewTape()
	v := tp.Param(p)
	tp.Backward(tp.SumAll(v))
	tp.Reset()
	tp.Backward(tp.SumAll(v))
	if v.Grad.At(0, 0) != 2 {
		t.Fatalf("grad = %v, want 2", v.Grad.At(0, 0))
	}
}
