package autodiff

import (
	"testing"

	"raal/internal/tensor"
)

// TestGradGatherRows checks the fused gather against numeric gradients.
func TestGradGatherRows(t *testing.T) {
	ps := randParams(31, [2]int{3, 4}, [2]int{3, 4}, [2]int{3, 4})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		return tp.MeanAll(tp.GatherRows(vs, 1))
	})
}

// TestGatherRowsMatchesRowAtConcat pins GatherRows to the chain it
// replaces: RowAt per input followed by ConcatRows, bit for bit in both
// values and gradients.
func TestGatherRowsMatchesRowAtConcat(t *testing.T) {
	ps := randParams(32, [2]int{4, 3}, [2]int{4, 3})
	for row := 0; row < 4; row++ {
		tpA, tpB := NewTape(), NewTape()
		vsA := []*Var{tpA.Param(ps[0]), tpA.Param(ps[1])}
		vsB := []*Var{tpB.Param(ps[0]), tpB.Param(ps[1])}

		fused := tpA.GatherRows(vsA, row)
		chain := tpB.ConcatRows(tpB.RowAt(vsB[0], row), tpB.RowAt(vsB[1], row))
		mustEqualMat(t, fused.Value, chain.Value, "GatherRows value")

		tpA.Backward(tpA.MeanAll(fused))
		tpB.Backward(tpB.MeanAll(chain))
		for i := range vsA {
			mustEqualMat(t, vsA[i].Grad, vsB[i].Grad, "GatherRows grad")
		}
	}
}

// TestGradAddRowsAt checks the stacked-window add against numeric
// gradients, including gradient flow into both the window'd matrix and
// the addend.
func TestGradAddRowsAt(t *testing.T) {
	ps := randParams(33, [2]int{6, 3}, [2]int{2, 3})
	checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
		a := tp.AddRowsAt(vs[0], 0, vs[1])
		b := tp.AddRowsAt(vs[0], 4, vs[1]) // overlapping use of the same big matrix
		return tp.MeanAll(tp.Add(a, b))
	})
}

// TestAddRowsAtMatchesSliceAdd pins AddRowsAt values to the explicit
// row-window formulation.
func TestAddRowsAtMatchesSliceAdd(t *testing.T) {
	ps := randParams(34, [2]int{5, 4}, [2]int{2, 4})
	tp := NewTape()
	big, small := tp.Param(ps[0]), tp.Param(ps[1])
	got := tp.AddRowsAt(big, 2, small)
	want := tensor.Add(ps[0].SliceRows(2, 4), ps[1])
	mustEqualMat(t, got.Value, want, "AddRowsAt value")
}

// TestGradIm2ColRows checks the convolution lowering against numeric
// gradients for widths that pad zero, one, and two boundary rows.
func TestGradIm2ColRows(t *testing.T) {
	for _, width := range []int{1, 3, 5} {
		ps := randParams(35, [2]int{4, 2})
		checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
			return tp.MeanAll(tp.Im2ColRows(vs[0], width))
		})
	}
}

// TestIm2ColRowsValues pins the window layout: row p is the width-row
// neighborhood of input row p, zero-padded at the boundaries.
func TestIm2ColRowsValues(t *testing.T) {
	tp := NewTape()
	x := tp.Const(tensor.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}}))
	out := tp.Im2ColRows(x, 3)
	want := tensor.FromRows([][]float64{
		{0, 0, 1, 2, 3, 4},
		{1, 2, 3, 4, 5, 6},
		{3, 4, 5, 6, 0, 0},
	})
	mustEqualMat(t, out.Value, want, "Im2ColRows layout")
	if tp.Len() != 0 {
		t.Fatalf("Im2ColRows of a constant recorded %d ops, want 0", tp.Len())
	}
}

// TestLeafSharedAcrossTapesKeepsState verifies that a single Param leaf
// used by two tapes accumulates gradients from both — the leaf table is
// per-tape, so neither tape may stash per-tape state on the shared Var.
func TestLeafSharedAcrossTapesKeepsState(t *testing.T) {
	p := tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	tpA, tpB := NewTape(), NewTape()
	leafA := tpA.Param(p)
	tpA.Backward(tpA.MeanAll(tpA.Scale(leafA, 2)))

	// Reuse the same Var on a second tape: gradients must accumulate on top.
	tpB.Backward(tpB.MeanAll(tpB.Scale(leafA, 2)))
	for i, g := range leafA.Grad.Data {
		if want := 2 * 2.0 / 4.0; g != want {
			t.Fatalf("grad[%d] = %v, want %v after two backwards", i, g, want)
		}
	}
}

func mustEqualMat(t *testing.T, got, want *tensor.Matrix, what string) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil matrix (got=%v want=%v)", what, got, want)
	}
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %dx%d, want %dx%d", what, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (bit-exact)", what, i, got.Data[i], want.Data[i])
		}
	}
}
