// Package autodiff implements tape-based reverse-mode automatic
// differentiation over dense matrices.
//
// A Tape records every operation in creation order; because an operation can
// only consume values that already exist, the tape order is a topological
// order of the computation graph, and Backward simply walks it in reverse.
// All neural-network layers in internal/nn are built from the primitives
// here, so a single numerically-checked gradient core backs the entire deep
// cost model.
//
// # Arena
//
// Every matrix an operation produces — output values, gradient
// accumulators, and backward scratch — is drawn from a per-tape free list
// keyed by shape, and Reset recycles all of it. A tape that is reused
// across forward passes of the same model (the pattern in Fit's epoch loop
// and the Predict worker pool) therefore reaches zero steady-state matrix
// allocations once its free lists are warm. Pooling never changes results:
// a recycled matrix is either fully overwritten or explicitly zeroed before
// use, and the order of floating-point operations is untouched.
//
// Leaves are exempt: Param wraps caller-owned weights whose gradients must
// accumulate across Backward calls until the optimizer clears them, so leaf
// values and gradients are never pooled. Const wraps caller-owned inputs,
// so its value is not pooled either (use NewMatrix for a pooled input
// buffer).
package autodiff

import (
	"fmt"
	"math"

	"raal/internal/tensor"
)

// Var is a node in the computation graph: a matrix value plus (once
// Backward has run) the gradient of the loss with respect to it.
//
// Vars created by tape operations live in the tape's arena: the Var itself,
// its Value, and its Grad are all reclaimed by Tape.Reset, so they must not
// be used after the tape is reset. Vars returned by Param are independent
// of any tape and live as long as the caller keeps them.
type Var struct {
	Value *tensor.Matrix
	Grad  *tensor.Matrix

	needsGrad bool
	backward  func()
	t         *Tape // owning tape; nil for leaves (Param), whose grads persist
	poolVal   bool  // Value came from the arena and is recycled on Reset
}

// NeedsGrad reports whether gradients are tracked for this variable.
func (v *Var) NeedsGrad() bool { return v.needsGrad }

// grad returns the gradient accumulator, allocating it on first use. Leaf
// gradients are plain allocations that survive Reset (they accumulate until
// the optimizer zeroes them); tape-owned gradients come from the arena.
func (v *Var) grad() *tensor.Matrix {
	if v.Grad == nil {
		if v.t != nil {
			v.Grad = v.t.zeroed(v.Value.Rows, v.Value.Cols)
		} else {
			v.Grad = tensor.New(v.Value.Rows, v.Value.Cols)
		}
	}
	return v.Grad
}

// slabBlock is the number of Vars per arena block. Blocks are never
// reallocated, so pointers into them stay valid across appends.
const slabBlock = 512

// Tape records operations for reverse-mode differentiation. The zero value
// is ready to use. A Tape is not safe for concurrent use; run one tape per
// goroutine.
type Tape struct {
	nodes []*Var // grad-tracked ops, in recording order (the backward walk)

	blocks [][]Var // Var arena: fixed-size blocks with stable addresses
	nVars  int     // Vars in use across blocks

	free map[int64][]*tensor.Matrix // recycled matrices keyed by shape
	lent []*tensor.Matrix           // NewMatrix loans, reclaimed on Reset

	noGrad bool // inference mode: skip closures and node recording
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// NewInferenceTape returns a tape that evaluates operations forward-only:
// no nodes are recorded, no backward closures are built, and Backward does
// nothing. Values are bit-identical to a recording tape's; only the
// gradient bookkeeping is skipped, which removes it from the serving hot
// path entirely.
func NewInferenceTape() *Tape { return &Tape{noGrad: true} }

// Reset drops all recorded operations and recycles every arena-owned
// matrix (op outputs, gradients, and NewMatrix loans) into the free lists,
// so the tape can rebuild an equally-shaped graph without allocating.
// Leaf (Param) values and gradients are untouched.
func (t *Tape) Reset() {
	for i := 0; i < t.nVars; i++ {
		v := &t.blocks[i/slabBlock][i%slabBlock]
		if v.poolVal {
			t.put(v.Value)
		}
		if v.Grad != nil {
			t.put(v.Grad)
		}
		v.Value, v.Grad, v.backward = nil, nil, nil
	}
	t.nVars = 0
	for i := range t.nodes {
		t.nodes[i] = nil
	}
	t.nodes = t.nodes[:0]
	for i, m := range t.lent {
		t.put(m)
		t.lent[i] = nil
	}
	t.lent = t.lent[:0]
}

// Len returns the number of recorded nodes (useful in tests).
func (t *Tape) Len() int { return len(t.nodes) }

// NewMatrix returns a zeroed rows×cols matrix on loan from the tape's
// arena; it is valid until the next Reset, which reclaims it. Use it for
// per-pass input buffers (wrap with Const) so a reused tape allocates
// nothing steady-state.
func (t *Tape) NewMatrix(rows, cols int) *tensor.Matrix {
	m := t.zeroed(rows, cols)
	t.lent = append(t.lent, m)
	return m
}

func shapeKey(rows, cols int) int64 { return int64(rows)<<32 | int64(cols) }

// get returns an arena matrix with unspecified contents; the caller must
// fully overwrite it.
func (t *Tape) get(rows, cols int) *tensor.Matrix {
	k := shapeKey(rows, cols)
	if s := t.free[k]; len(s) > 0 {
		m := s[len(s)-1]
		s[len(s)-1] = nil
		t.free[k] = s[:len(s)-1]
		return m
	}
	return tensor.New(rows, cols)
}

// zeroed returns an arena matrix with every element zero.
func (t *Tape) zeroed(rows, cols int) *tensor.Matrix {
	k := shapeKey(rows, cols)
	if s := t.free[k]; len(s) > 0 {
		m := s[len(s)-1]
		s[len(s)-1] = nil
		t.free[k] = s[:len(s)-1]
		m.Zero()
		return m
	}
	return tensor.New(rows, cols)
}

// put returns a matrix to the free list. Only arena-owned matrices may be
// put, and each exactly once per cycle (Reset walks values, gradients, and
// loans through disjoint channels, so no matrix is freed twice).
func (t *Tape) put(m *tensor.Matrix) {
	if t.free == nil {
		t.free = make(map[int64][]*tensor.Matrix)
	}
	k := shapeKey(m.Rows, m.Cols)
	t.free[k] = append(t.free[k], m)
}

// newVar carves the next Var out of the slab. Blocks have fixed size and
// are never copied, so the returned pointer is stable.
func (t *Tape) newVar(val *tensor.Matrix, pooled bool) *Var {
	bi, off := t.nVars/slabBlock, t.nVars%slabBlock
	if bi == len(t.blocks) {
		t.blocks = append(t.blocks, make([]Var, slabBlock))
	}
	t.nVars++
	v := &t.blocks[bi][off]
	*v = Var{Value: val, t: t, poolVal: pooled}
	return v
}

// Param registers m as a trainable leaf: its gradient is accumulated into
// m's Var across Backward calls until ZeroGrad. Param Vars are independent
// of the tape — they and their gradients survive Reset.
func (t *Tape) Param(m *tensor.Matrix) *Var {
	return &Var{Value: m, needsGrad: true}
}

// Const wraps m as a constant input: no gradient is tracked and m itself is
// never recycled (the Var holding it is).
func (t *Tape) Const(m *tensor.Matrix) *Var {
	return t.newVar(m, false)
}

// track reports whether an op over the given inputs must record a backward
// closure. Split by arity so the hot path never allocates a variadic slice.
func (t *Tape) track1(a *Var) bool { return !t.noGrad && a.needsGrad }
func (t *Tape) track2(a, b *Var) bool {
	return !t.noGrad && (a.needsGrad || b.needsGrad)
}

// recordOp marks out as grad-tracked with the given backward closure.
func (t *Tape) recordOp(out *Var, backward func()) *Var {
	out.needsGrad = true
	out.backward = backward
	t.nodes = append(t.nodes, out)
	return out
}

// Backward seeds root's gradient with 1 (root must be 1×1) and propagates
// gradients through every recorded operation in reverse order.
func (t *Tape) Backward(root *Var) {
	if root.Value.Rows != 1 || root.Value.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Backward root must be 1x1, got %dx%d", root.Value.Rows, root.Value.Cols))
	}
	root.grad().Data[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.backward != nil && n.Grad != nil {
			n.backward()
		}
	}
}

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Var) *Var {
	val := t.get(a.Value.Rows, b.Value.Cols)
	tensor.MatMulInto(val, a.Value, b.Value)
	out := t.newVar(val, true)
	if !t.track2(a, b) {
		return out
	}
	return t.recordOp(out, func() {
		if a.needsGrad {
			tmp := t.get(out.Grad.Rows, b.Value.Rows)
			tensor.MatMulTransBInto(tmp, out.Grad, b.Value)
			tensor.AddInPlace(a.grad(), tmp)
			t.put(tmp)
		}
		if b.needsGrad {
			tmp := t.get(a.Value.Cols, out.Grad.Cols)
			tensor.MatMulTransAInto(tmp, a.Value, out.Grad)
			tensor.AddInPlace(b.grad(), tmp)
			t.put(tmp)
		}
	})
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Var) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	tensor.AddInto(val, a.Value, b.Value)
	out := t.newVar(val, true)
	if !t.track2(a, b) {
		return out
	}
	return t.recordOp(out, func() {
		if a.needsGrad {
			tensor.AddInPlace(a.grad(), out.Grad)
		}
		if b.needsGrad {
			tensor.AddInPlace(b.grad(), out.Grad)
		}
	})
}

// Sub returns a−b (same shape).
func (t *Tape) Sub(a, b *Var) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	tensor.SubInto(val, a.Value, b.Value)
	out := t.newVar(val, true)
	if !t.track2(a, b) {
		return out
	}
	return t.recordOp(out, func() {
		if a.needsGrad {
			tensor.AddInPlace(a.grad(), out.Grad)
		}
		if b.needsGrad {
			tensor.AxpyInPlace(b.grad(), -1, out.Grad)
		}
	})
}

// Mul returns the elementwise product a∘b.
func (t *Tape) Mul(a, b *Var) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	tensor.MulInto(val, a.Value, b.Value)
	out := t.newVar(val, true)
	if !t.track2(a, b) {
		return out
	}
	return t.recordOp(out, func() {
		if a.needsGrad {
			tmp := t.get(out.Grad.Rows, out.Grad.Cols)
			tensor.MulInto(tmp, out.Grad, b.Value)
			tensor.AddInPlace(a.grad(), tmp)
			t.put(tmp)
		}
		if b.needsGrad {
			tmp := t.get(out.Grad.Rows, out.Grad.Cols)
			tensor.MulInto(tmp, out.Grad, a.Value)
			tensor.AddInPlace(b.grad(), tmp)
			t.put(tmp)
		}
	})
}

// Scale returns s·a.
func (t *Tape) Scale(a *Var, s float64) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	tensor.ScaleInto(val, a.Value, s)
	out := t.newVar(val, true)
	if !t.track1(a) {
		return out
	}
	return t.recordOp(out, func() {
		tensor.AxpyInPlace(a.grad(), s, out.Grad)
	})
}

// AddRow broadcasts the 1×n row vector r across every row of m.
func (t *Tape) AddRow(m, r *Var) *Var {
	val := t.get(m.Value.Rows, m.Value.Cols)
	tensor.AddRowInto(val, m.Value, r.Value)
	out := t.newVar(val, true)
	if !t.track2(m, r) {
		return out
	}
	return t.recordOp(out, func() {
		if m.needsGrad {
			tensor.AddInPlace(m.grad(), out.Grad)
		}
		if r.needsGrad {
			g := r.grad()
			for i := 0; i < out.Grad.Rows; i++ {
				row := out.Grad.Row(i)
				for j, v := range row {
					g.Data[j] += v
				}
			}
		}
	})
}

// ActFn selects the activation fused into AddRowApply. The derivative of
// every supported activation is computable from its output, so the fused
// op never stores pre-activation values.
type ActFn int

// Supported fused activations.
const (
	ActIdentity ActFn = iota
	ActSigmoid
	ActTanh
	ActReLU
)

// fn returns the forward scalar function; nil means identity, which lets
// the tensor kernel skip the per-element call.
func (f ActFn) fn() func(float64) float64 {
	switch f {
	case ActIdentity:
		return nil
	case ActSigmoid:
		return func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	case ActTanh:
		return math.Tanh
	case ActReLU:
		return func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		}
	default:
		panic(fmt.Sprintf("autodiff: unknown ActFn(%d)", int(f)))
	}
}

// AddRowApply broadcasts the 1×n bias row r across every row of m and
// applies activation f, fusing what is otherwise an AddRow op plus an
// activation op into a single kernel pass — the shape of every dense layer
// and LSTM gate. It is exactly equivalent, bit for bit in both values and
// gradients, to applying the activation to AddRow(m, r).
func (t *Tape) AddRowApply(m, r *Var, f ActFn) *Var {
	val := t.get(m.Value.Rows, m.Value.Cols)
	tensor.AddRowApplyInto(val, m.Value, r.Value, f.fn())
	out := t.newVar(val, true)
	if !t.track2(m, r) {
		return out
	}
	return t.recordOp(out, func() {
		// d = dL/d(pre-activation), derived from the output value with the
		// same association the unfused activation backward uses; it then
		// flows to m elementwise and to r as column sums, in the same
		// ascending-row order as AddRow's backward.
		var mg, rg *tensor.Matrix
		if m.needsGrad {
			mg = m.grad()
		}
		if r.needsGrad {
			rg = r.grad()
		}
		for i := 0; i < val.Rows; i++ {
			y := val.Row(i)
			dy := out.Grad.Row(i)
			var mrow []float64
			if mg != nil {
				mrow = mg.Row(i)
			}
			for j := range y {
				var d float64
				switch f {
				case ActIdentity:
					d = dy[j]
				case ActSigmoid:
					d = dy[j] * y[j] * (1 - y[j])
				case ActTanh:
					d = dy[j] * (1 - y[j]*y[j])
				case ActReLU:
					if y[j] > 0 {
						d = dy[j]
					}
				}
				if mrow != nil {
					mrow[j] += d
				}
				if rg != nil {
					rg.Data[j] += d
				}
			}
		}
	})
}

// Sigmoid applies the logistic function elementwise.
func (t *Tape) Sigmoid(a *Var) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	tensor.ApplyInto(val, a.Value, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
	out := t.newVar(val, true)
	if !t.track1(a) {
		return out
	}
	return t.recordOp(out, func() {
		g := a.grad()
		for i, s := range val.Data {
			g.Data[i] += out.Grad.Data[i] * s * (1 - s)
		}
	})
}

// Tanh applies the hyperbolic tangent elementwise.
func (t *Tape) Tanh(a *Var) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	tensor.ApplyInto(val, a.Value, math.Tanh)
	out := t.newVar(val, true)
	if !t.track1(a) {
		return out
	}
	return t.recordOp(out, func() {
		g := a.grad()
		for i, y := range val.Data {
			g.Data[i] += out.Grad.Data[i] * (1 - y*y)
		}
	})
}

// ReLU applies max(0,x) elementwise.
func (t *Tape) ReLU(a *Var) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	tensor.ApplyInto(val, a.Value, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
	out := t.newVar(val, true)
	if !t.track1(a) {
		return out
	}
	return t.recordOp(out, func() {
		g := a.grad()
		for i, x := range a.Value.Data {
			if x > 0 {
				g.Data[i] += out.Grad.Data[i]
			}
		}
	})
}

// LeakyReLU applies max(alpha·x, x) elementwise.
func (t *Tape) LeakyReLU(a *Var, alpha float64) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	tensor.ApplyInto(val, a.Value, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return alpha * x
	})
	out := t.newVar(val, true)
	if !t.track1(a) {
		return out
	}
	return t.recordOp(out, func() {
		g := a.grad()
		for i, x := range a.Value.Data {
			if x > 0 {
				g.Data[i] += out.Grad.Data[i]
			} else {
				g.Data[i] += alpha * out.Grad.Data[i]
			}
		}
	})
}

// Transpose returns aᵀ.
func (t *Tape) Transpose(a *Var) *Var {
	val := t.get(a.Value.Cols, a.Value.Rows)
	tensor.TransposeInto(val, a.Value)
	out := t.newVar(val, true)
	if !t.track1(a) {
		return out
	}
	return t.recordOp(out, func() {
		tmp := t.get(out.Grad.Cols, out.Grad.Rows)
		tensor.TransposeInto(tmp, out.Grad)
		tensor.AddInPlace(a.grad(), tmp)
		t.put(tmp)
	})
}

// SoftmaxRows applies a row-wise softmax. mask may be nil; otherwise it must
// have one entry per column, and columns whose mask entry is false receive
// zero probability in every row (their logits are treated as −∞). Rows whose
// mask is entirely false become all-zero rows.
func (t *Tape) SoftmaxRows(a *Var, mask []bool) *Var {
	if mask != nil && len(mask) != a.Value.Cols {
		panic(fmt.Sprintf("autodiff: softmax mask length %d != cols %d", len(mask), a.Value.Cols))
	}
	val := t.get(a.Value.Rows, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		in := a.Value.Row(i)
		outRow := val.Row(i)
		maxv := math.Inf(-1)
		for j, x := range in {
			if (mask == nil || mask[j]) && x > maxv {
				maxv = x
			}
		}
		if math.IsInf(maxv, -1) {
			for j := range outRow {
				outRow[j] = 0 // fully masked row
			}
			continue
		}
		var sum float64
		for j, x := range in {
			if mask == nil || mask[j] {
				e := math.Exp(x - maxv)
				outRow[j] = e
				sum += e
			} else {
				outRow[j] = 0
			}
		}
		for j := range outRow {
			outRow[j] /= sum
		}
	}
	out := t.newVar(val, true)
	if !t.track1(a) {
		return out
	}
	return t.recordOp(out, func() {
		g := a.grad()
		for i := 0; i < val.Rows; i++ {
			y := val.Row(i)
			dy := out.Grad.Row(i)
			var dot float64
			for j := range y {
				dot += y[j] * dy[j]
			}
			grow := g.Row(i)
			for j := range y {
				grow[j] += y[j] * (dy[j] - dot)
			}
		}
	})
}

// SoftmaxRowsMask2D applies a row-wise softmax with an independent column
// mask per row: entry (i,j) receives zero probability when mask[i][j] is
// false. Rows whose mask is entirely false become all-zero rows. This is
// the primitive behind node-aware attention, where node i attends only
// over its own children.
func (t *Tape) SoftmaxRowsMask2D(a *Var, mask [][]bool) *Var {
	if len(mask) != a.Value.Rows {
		panic(fmt.Sprintf("autodiff: 2D softmax mask rows %d != %d", len(mask), a.Value.Rows))
	}
	val := t.get(a.Value.Rows, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		if len(mask[i]) != a.Value.Cols {
			panic(fmt.Sprintf("autodiff: 2D softmax mask row %d has %d cols, want %d", i, len(mask[i]), a.Value.Cols))
		}
		in := a.Value.Row(i)
		outRow := val.Row(i)
		maxv := math.Inf(-1)
		for j, x := range in {
			if mask[i][j] && x > maxv {
				maxv = x
			}
		}
		if math.IsInf(maxv, -1) {
			for j := range outRow {
				outRow[j] = 0
			}
			continue
		}
		var sum float64
		for j, x := range in {
			if mask[i][j] {
				e := math.Exp(x - maxv)
				outRow[j] = e
				sum += e
			} else {
				outRow[j] = 0
			}
		}
		for j := range outRow {
			outRow[j] /= sum
		}
	}
	out := t.newVar(val, true)
	if !t.track1(a) {
		return out
	}
	return t.recordOp(out, func() {
		g := a.grad()
		for i := 0; i < val.Rows; i++ {
			y := val.Row(i)
			dy := out.Grad.Row(i)
			var dot float64
			for j := range y {
				dot += y[j] * dy[j]
			}
			grow := g.Row(i)
			for j := range y {
				grow[j] += y[j] * (dy[j] - dot)
			}
		}
	})
}

// ConcatCols concatenates variables horizontally.
func (t *Tape) ConcatCols(vs ...*Var) *Var {
	rows, cols := 0, 0
	if len(vs) > 0 {
		rows = vs[0].Value.Rows
		for _, v := range vs {
			if v.Value.Rows != rows {
				panic(fmt.Sprintf("tensor: concatCols row mismatch %d != %d", v.Value.Rows, rows))
			}
			cols += v.Value.Cols
		}
	}
	val := t.get(rows, cols)
	for i := 0; i < rows; i++ {
		off := 0
		orow := val.Row(i)
		for _, v := range vs {
			w := v.Value.Cols
			copy(orow[off:off+w], v.Value.Row(i))
			off += w
		}
	}
	out := t.newVar(val, true)
	tracked := false
	if !t.noGrad {
		for _, v := range vs {
			if v.needsGrad {
				tracked = true
				break
			}
		}
	}
	if !tracked {
		return out
	}
	return t.recordOp(out, func() {
		off := 0
		for _, v := range vs {
			w := v.Value.Cols
			if v.needsGrad {
				g := v.grad()
				for i := 0; i < out.Grad.Rows; i++ {
					src := out.Grad.Row(i)[off : off+w]
					dst := g.Row(i)
					for j, x := range src {
						dst[j] += x
					}
				}
			}
			off += w
		}
	})
}

// ConcatRows concatenates variables vertically.
func (t *Tape) ConcatRows(vs ...*Var) *Var {
	rows, cols := 0, 0
	if len(vs) > 0 {
		cols = vs[0].Value.Cols
		for _, v := range vs {
			if v.Value.Cols != cols {
				panic(fmt.Sprintf("tensor: concatRows col mismatch %d != %d", v.Value.Cols, cols))
			}
			rows += v.Value.Rows
		}
	}
	val := t.get(rows, cols)
	off := 0
	for _, v := range vs {
		copy(val.Data[off:off+len(v.Value.Data)], v.Value.Data)
		off += len(v.Value.Data)
	}
	out := t.newVar(val, true)
	tracked := false
	if !t.noGrad {
		for _, v := range vs {
			if v.needsGrad {
				tracked = true
				break
			}
		}
	}
	if !tracked {
		return out
	}
	return t.recordOp(out, func() {
		off := 0
		for _, v := range vs {
			n := v.Value.Rows * v.Value.Cols
			if v.needsGrad {
				g := v.grad()
				src := out.Grad.Data[off : off+n]
				for j, x := range src {
					g.Data[j] += x
				}
			}
			off += n
		}
	})
}

// RowAt extracts row i of a as a 1×cols variable.
func (t *Tape) RowAt(a *Var, i int) *Var {
	if i < 0 || i >= a.Value.Rows {
		panic(fmt.Sprintf("autodiff: RowAt(%d) out of %d rows", i, a.Value.Rows))
	}
	val := t.get(1, a.Value.Cols)
	copy(val.Data, a.Value.Row(i))
	out := t.newVar(val, true)
	if !t.track1(a) {
		return out
	}
	return t.recordOp(out, func() {
		dst := a.grad().Row(i)
		for j, x := range out.Grad.Data {
			dst[j] += x
		}
	})
}

// SliceCols extracts columns [lo,hi) of a as a copy.
func (t *Tape) SliceCols(a *Var, lo, hi int) *Var {
	if lo < 0 || hi > a.Value.Cols || lo > hi {
		panic(fmt.Sprintf("autodiff: SliceCols [%d,%d) out of %d cols", lo, hi, a.Value.Cols))
	}
	w := hi - lo
	val := t.get(a.Value.Rows, w)
	for i := 0; i < a.Value.Rows; i++ {
		copy(val.Row(i), a.Value.Row(i)[lo:hi])
	}
	out := t.newVar(val, true)
	if !t.track1(a) {
		return out
	}
	return t.recordOp(out, func() {
		g := a.grad()
		for i := 0; i < val.Rows; i++ {
			dst := g.Row(i)[lo:hi]
			src := out.Grad.Row(i)
			for j, x := range src {
				dst[j] += x
			}
		}
	})
}

// MeanRowsMasked averages the rows of a whose mask entry is true, returning
// a 1×cols variable. If no row is selected the result is all zeros.
func (t *Tape) MeanRowsMasked(a *Var, mask []bool) *Var {
	if len(mask) != a.Value.Rows {
		panic(fmt.Sprintf("autodiff: mean mask length %d != rows %d", len(mask), a.Value.Rows))
	}
	n := 0
	for _, m := range mask {
		if m {
			n++
		}
	}
	val := t.zeroed(1, a.Value.Cols)
	if n > 0 {
		for i, m := range mask {
			if !m {
				continue
			}
			row := a.Value.Row(i)
			for j, x := range row {
				val.Data[j] += x / float64(n)
			}
		}
	}
	out := t.newVar(val, true)
	if !t.track1(a) || n == 0 {
		return out
	}
	return t.recordOp(out, func() {
		g := a.grad()
		for i, m := range mask {
			if !m {
				continue
			}
			dst := g.Row(i)
			for j, x := range out.Grad.Data {
				dst[j] += x / float64(n)
			}
		}
	})
}

// SumAll reduces a to a 1×1 variable holding the sum of its elements.
func (t *Tape) SumAll(a *Var) *Var {
	val := t.get(1, 1)
	val.Data[0] = a.Value.Sum()
	out := t.newVar(val, true)
	if !t.track1(a) {
		return out
	}
	return t.recordOp(out, func() {
		g := a.grad()
		d := out.Grad.Data[0]
		for i := range g.Data {
			g.Data[i] += d
		}
	})
}

// MeanAll reduces a to a 1×1 variable holding the mean of its elements.
func (t *Tape) MeanAll(a *Var) *Var {
	n := float64(len(a.Value.Data))
	val := t.get(1, 1)
	val.Data[0] = a.Value.Mean()
	out := t.newVar(val, true)
	if !t.track1(a) {
		return out
	}
	return t.recordOp(out, func() {
		g := a.grad()
		d := out.Grad.Data[0] / n
		for i := range g.Data {
			g.Data[i] += d
		}
	})
}

// MSE returns the mean squared error between pred and the constant target,
// as a 1×1 variable.
func (t *Tape) MSE(pred *Var, target *tensor.Matrix) *Var {
	if !pred.Value.SameShape(target) {
		panic(fmt.Sprintf("autodiff: MSE shape mismatch %dx%d vs %dx%d",
			pred.Value.Rows, pred.Value.Cols, target.Rows, target.Cols))
	}
	n := float64(len(target.Data))
	var loss float64
	for i, p := range pred.Value.Data {
		d := p - target.Data[i]
		loss += d * d
	}
	loss /= n
	val := t.get(1, 1)
	val.Data[0] = loss
	out := t.newVar(val, true)
	if !t.track1(pred) {
		return out
	}
	return t.recordOp(out, func() {
		g := pred.grad()
		d := out.Grad.Data[0]
		for i, p := range pred.Value.Data {
			g.Data[i] += d * 2 * (p - target.Data[i]) / n
		}
	})
}

// Dropout zeroes each element with probability p at training time and
// rescales survivors by 1/(1−p). keep must be a pre-sampled boolean mask of
// the same size as a (one entry per element); this keeps the op
// deterministic and testable. Passing a nil mask makes Dropout the identity.
func (t *Tape) Dropout(a *Var, p float64, keep []bool) *Var {
	if keep == nil {
		return a
	}
	if len(keep) != len(a.Value.Data) {
		panic(fmt.Sprintf("autodiff: dropout mask length %d != %d", len(keep), len(a.Value.Data)))
	}
	scale := 1 / (1 - p)
	val := t.get(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		if keep[i] {
			val.Data[i] = x * scale
		} else {
			val.Data[i] = 0
		}
	}
	out := t.newVar(val, true)
	if !t.track1(a) {
		return out
	}
	return t.recordOp(out, func() {
		g := a.grad()
		for i := range g.Data {
			if keep[i] {
				g.Data[i] += out.Grad.Data[i] * scale
			}
		}
	})
}
