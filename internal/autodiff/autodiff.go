// Package autodiff implements tape-based reverse-mode automatic
// differentiation over dense matrices.
//
// A Tape records every operation in creation order; because an operation can
// only consume values that already exist, the tape order is a topological
// order of the computation graph, and Backward simply walks it in reverse.
// All neural-network layers in internal/nn are built from the primitives
// here, so a single numerically-checked gradient core backs the entire deep
// cost model.
//
// # Flat tape
//
// The tape is flat in the infergo style: each recorded operation is one
// fixed-size, pointer-free record (an opcode plus integer operand slots),
// and operands are addressed by index into the tape's Var slab rather than
// through per-node pointers or backward closures. Recording an op is an
// append of one record; Backward is a reverse walk dispatching on the
// opcode. Nothing on the hot path allocates per node, and the garbage
// collector never scans a pointer graph proportional to the tape length.
//
// # Arena
//
// Every matrix an operation produces — output values, gradient
// accumulators, and NewMatrix loans — is carved out of per-tape slabs by a
// bump-pointer arena, and Reset is a cursor rewind: no free lists, no
// shape-keyed maps, no per-matrix bookkeeping. A tape that is reused across
// forward passes of the same model (the pattern in Fit's epoch loop and the
// Predict worker pool) replays the same allocation sequence against the
// same slabs and therefore reaches zero steady-state matrix allocations.
// Pooling never changes results: an arena matrix is either fully
// overwritten or explicitly zeroed before use, and the order of
// floating-point operations is untouched.
//
// Leaves are exempt: Param wraps caller-owned weights whose gradients must
// accumulate across Backward calls until the optimizer clears them, so leaf
// values and gradients are never pooled. Const wraps caller-owned inputs,
// so its value is not pooled either (use NewMatrix for a pooled input
// buffer).
package autodiff

import (
	"fmt"
	"math"

	"raal/internal/tensor"
)

// Var is a node in the computation graph: a matrix value plus (once
// Backward has run) the gradient of the loss with respect to it.
//
// Vars created by tape operations live in the tape's arena: the Var itself,
// its Value, and its Grad are all reclaimed by Tape.Reset, so they must not
// be used after the tape is reset. Vars returned by Param are independent
// of any tape and live as long as the caller keeps them.
type Var struct {
	Value *tensor.Matrix
	Grad  *tensor.Matrix

	needsGrad bool
	idx       int32 // slot in the owning tape's Var slab; leafIdx for leaves
}

// leafIdx marks a Var that lives outside any tape slab (Param leaves).
const leafIdx int32 = -1

// NeedsGrad reports whether gradients are tracked for this variable.
func (v *Var) NeedsGrad() bool { return v.needsGrad }

// opcode identifies the operation a tape record replays in Backward.
type opcode uint8

const (
	opMatMul opcode = iota
	opAdd
	opSub
	opMul
	opScale
	opAddRow
	opAddRowAct
	opSigmoid
	opTanh
	opReLU
	opLeakyReLU
	opTranspose
	opSoftmaxRows // shared by the 1-D and 2-D masked variants
	opConcatCols
	opConcatRows
	opRowAt
	opSliceCols
	opMeanRowsMasked
	opSumAll
	opMeanAll
	opMSE
	opDropout
	opGatherRows
	opAddRowsAt
	opIm2ColRows
)

// rec is one recorded operation: a fixed-size record with no pointers.
// Operand fields hold slab indices (>= 0) or encoded leaf references
// (< 0, see Tape.ref); the remaining fields are opcode-specific:
//
//	act    fused activation selector (opAddRowAct)
//	x0, x1 aux-slab offset/length, row index, or column bounds
//	s      scalar: scale factor, leak alpha, element count n, 1/(1−p)
//
// opGatherRows stores its gathered row index in a (it has no single
// operand; its inputs live in the aux-args slab at [x0, x0+x1)).
type rec struct {
	op     opcode
	act    uint8
	out    int32
	a, b   int32
	x0, x1 int32
	s      float64
}

// slabBlock is the number of Vars (and matrix headers) per arena block.
// Blocks are never reallocated, so pointers into them stay valid across
// appends.
const slabBlock = 512

// arenaBlockFloats is the size of one value slab: 128 KiB of float64.
const arenaBlockFloats = 1 << 14

// arena is a bump-pointer allocator over fixed slabs of float64 values and
// matrix headers. Allocation walks a cursor forward; rewind moves it back
// to the start without releasing the slabs, so an identical allocation
// sequence replayed after rewind returns the same memory — including
// pointer-identical matrix headers, which the recycling tests pin.
type arena struct {
	data    [][]float64 // value slabs
	bi, off int         // cursor: current slab, next free element

	hdrs [][]tensor.Matrix // matrix-header slabs
	nHdr int               // headers in use
}

func (a *arena) rewind() {
	a.bi, a.off, a.nHdr = 0, 0, 0
}

// slab returns n contiguous float64s with unspecified contents. Requests
// larger than a standard slab get a dedicated block of exactly their size.
func (a *arena) slab(n int) []float64 {
	for {
		if a.bi == len(a.data) {
			sz := arenaBlockFloats
			if n > sz {
				sz = n
			}
			a.data = append(a.data, make([]float64, sz))
		}
		if blk := a.data[a.bi]; a.off+n <= len(blk) {
			s := blk[a.off : a.off+n : a.off+n]
			a.off += n
			return s
		}
		a.bi++
		a.off = 0
	}
}

// mat returns a rows×cols matrix with unspecified contents; the caller
// must fully overwrite (or Zero) it.
func (a *arena) mat(rows, cols int) *tensor.Matrix {
	bi, off := a.nHdr/slabBlock, a.nHdr%slabBlock
	if bi == len(a.hdrs) {
		a.hdrs = append(a.hdrs, make([]tensor.Matrix, slabBlock))
	}
	a.nHdr++
	m := &a.hdrs[bi][off]
	m.Rows, m.Cols = rows, cols
	m.Data = a.slab(rows * cols)
	return m
}

// Tape records operations for reverse-mode differentiation. The zero value
// is ready to use. A Tape is not safe for concurrent use; run one tape per
// goroutine. Operands passed to a tape's ops must be Vars of that same
// tape or leaves (Param) — Vars from other tapes are not addressable
// through this tape's records.
type Tape struct {
	recs []rec // recorded grad-tracked ops (the backward walk)

	vars  [][]Var // Var slab: fixed-size blocks with stable addresses
	nVars int     // Vars in use across blocks

	leaves []*Var // leaf operands referenced this pass, encoded as −(i+1)

	arena arena // value/gradient/header storage, rewound by Reset

	// Aux slabs for record payloads that don't fit the fixed fields.
	auxArgs []int32          // operand lists (concat, gather)
	auxMask [][]bool         // row/element masks (mean, dropout)
	auxMat  []*tensor.Matrix // caller-owned matrices (MSE targets)

	// scratch is the single backward temporary: every backward step that
	// needs an intermediate product uses it exclusively and consumes it
	// before the next step runs, so one grow-only buffer serves the whole
	// walk.
	scratch    []float64
	scratchHdr tensor.Matrix

	noGrad bool // inference mode: skip all recording
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// NewInferenceTape returns a tape that evaluates operations forward-only:
// no records are appended and Backward does nothing. Values are
// bit-identical to a recording tape's; only the gradient bookkeeping is
// skipped, which removes it from the serving hot path entirely.
func NewInferenceTape() *Tape { return &Tape{noGrad: true} }

// Reset drops all recorded operations and rewinds the arena cursor, so the
// tape can rebuild an equally-shaped graph without allocating. Leaf
// (Param) values and gradients are untouched.
func (t *Tape) Reset() {
	for i := 0; i < t.nVars; i++ {
		t.vars[i/slabBlock][i%slabBlock] = Var{}
	}
	t.nVars = 0
	t.recs = t.recs[:0]
	for i := range t.leaves {
		t.leaves[i] = nil
	}
	t.leaves = t.leaves[:0]
	t.auxArgs = t.auxArgs[:0]
	for i := range t.auxMask {
		t.auxMask[i] = nil
	}
	t.auxMask = t.auxMask[:0]
	for i := range t.auxMat {
		t.auxMat[i] = nil
	}
	t.auxMat = t.auxMat[:0]
	t.arena.rewind()
}

// Len returns the number of recorded operations (useful in tests).
func (t *Tape) Len() int { return len(t.recs) }

// NewMatrix returns a zeroed rows×cols matrix on loan from the tape's
// arena; it is valid until the next Reset, which reclaims it. Use it for
// per-pass input buffers (wrap with Const) so a reused tape allocates
// nothing steady-state.
func (t *Tape) NewMatrix(rows, cols int) *tensor.Matrix {
	m := t.arena.mat(rows, cols)
	m.Zero()
	return m
}

// get returns an arena matrix with unspecified contents; the caller must
// fully overwrite it.
func (t *Tape) get(rows, cols int) *tensor.Matrix { return t.arena.mat(rows, cols) }

// zeroed returns an arena matrix with every element zero.
func (t *Tape) zeroed(rows, cols int) *tensor.Matrix {
	m := t.arena.mat(rows, cols)
	m.Zero()
	return m
}

// newVar carves the next Var out of the slab. Blocks have fixed size and
// are never copied, so the returned pointer is stable.
func (t *Tape) newVar(val *tensor.Matrix) *Var {
	bi, off := t.nVars/slabBlock, t.nVars%slabBlock
	if bi == len(t.vars) {
		t.vars = append(t.vars, make([]Var, slabBlock))
	}
	v := &t.vars[bi][off]
	*v = Var{Value: val, idx: int32(t.nVars)}
	t.nVars++
	return v
}

// ref encodes operand v for storage in a record: tape Vars are their slab
// index, leaves are registered in the leaf table and encoded as −(i+1).
func (t *Tape) ref(v *Var) int32 {
	if v.idx != leafIdx {
		return v.idx
	}
	t.leaves = append(t.leaves, v)
	return int32(-len(t.leaves))
}

// at resolves a record operand reference back to its Var.
func (t *Tape) at(i int32) *Var {
	if i >= 0 {
		return &t.vars[i/slabBlock][i%slabBlock]
	}
	return t.leaves[-1-i]
}

// gradOf returns v's gradient accumulator, allocating it zeroed on first
// use. Leaf gradients are plain allocations that survive Reset (they
// accumulate until the optimizer zeroes them); tape-owned gradients come
// from the arena.
func (t *Tape) gradOf(v *Var) *tensor.Matrix {
	if v.Grad == nil {
		if v.idx != leafIdx {
			v.Grad = t.zeroed(v.Value.Rows, v.Value.Cols)
		} else {
			v.Grad = tensor.New(v.Value.Rows, v.Value.Cols)
		}
	}
	return v.Grad
}

// tmpMat returns the tape's backward scratch sized rows×cols, contents
// unspecified. Valid only until the next tmpMat call.
func (t *Tape) tmpMat(rows, cols int) *tensor.Matrix {
	n := rows * cols
	if cap(t.scratch) < n {
		t.scratch = make([]float64, n)
	}
	t.scratchHdr = tensor.Matrix{Rows: rows, Cols: cols, Data: t.scratch[:n]}
	return &t.scratchHdr
}

// Param registers m as a trainable leaf: its gradient is accumulated into
// m's Var across Backward calls until ZeroGrad. Param Vars are independent
// of the tape — they and their gradients survive Reset.
func (t *Tape) Param(m *tensor.Matrix) *Var {
	return &Var{Value: m, needsGrad: true, idx: leafIdx}
}

// Const wraps m as a constant input: no gradient is tracked and m itself is
// never recycled (the Var holding it is).
func (t *Tape) Const(m *tensor.Matrix) *Var {
	return t.newVar(m)
}

// track reports whether an op over the given inputs must be recorded.
// Split by arity so the hot path never allocates a variadic slice.
func (t *Tape) track1(a *Var) bool { return !t.noGrad && a.needsGrad }
func (t *Tape) track2(a, b *Var) bool {
	return !t.noGrad && (a.needsGrad || b.needsGrad)
}

func (t *Tape) trackN(vs []*Var) bool {
	if t.noGrad {
		return false
	}
	for _, v := range vs {
		if v.needsGrad {
			return true
		}
	}
	return false
}

// push marks out as grad-tracked and appends its record.
func (t *Tape) push(out *Var, r rec) *Var {
	out.needsGrad = true
	r.out = out.idx
	t.recs = append(t.recs, r)
	return out
}

// pushArgs stores an operand list in the aux-args slab, returning its
// offset and length for the record's x0/x1 fields.
func (t *Tape) pushArgs(vs []*Var) (off, ln int32) {
	off = int32(len(t.auxArgs))
	for _, v := range vs {
		t.auxArgs = append(t.auxArgs, t.ref(v))
	}
	return off, int32(len(vs))
}

func (t *Tape) pushMask(m []bool) int32 {
	t.auxMask = append(t.auxMask, m)
	return int32(len(t.auxMask) - 1)
}

func (t *Tape) pushMat(m *tensor.Matrix) int32 {
	t.auxMat = append(t.auxMat, m)
	return int32(len(t.auxMat) - 1)
}

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Var) *Var {
	val := t.get(a.Value.Rows, b.Value.Cols)
	tensor.MatMulInto(val, a.Value, b.Value)
	out := t.newVar(val)
	if !t.track2(a, b) {
		return out
	}
	return t.push(out, rec{op: opMatMul, a: t.ref(a), b: t.ref(b)})
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Var) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	tensor.AddInto(val, a.Value, b.Value)
	out := t.newVar(val)
	if !t.track2(a, b) {
		return out
	}
	return t.push(out, rec{op: opAdd, a: t.ref(a), b: t.ref(b)})
}

// Sub returns a−b (same shape).
func (t *Tape) Sub(a, b *Var) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	tensor.SubInto(val, a.Value, b.Value)
	out := t.newVar(val)
	if !t.track2(a, b) {
		return out
	}
	return t.push(out, rec{op: opSub, a: t.ref(a), b: t.ref(b)})
}

// Mul returns the elementwise product a∘b.
func (t *Tape) Mul(a, b *Var) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	tensor.MulInto(val, a.Value, b.Value)
	out := t.newVar(val)
	if !t.track2(a, b) {
		return out
	}
	return t.push(out, rec{op: opMul, a: t.ref(a), b: t.ref(b)})
}

// Scale returns s·a.
func (t *Tape) Scale(a *Var, s float64) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	tensor.ScaleInto(val, a.Value, s)
	out := t.newVar(val)
	if !t.track1(a) {
		return out
	}
	return t.push(out, rec{op: opScale, a: t.ref(a), s: s})
}

// AddRow broadcasts the 1×n row vector r across every row of m.
func (t *Tape) AddRow(m, r *Var) *Var {
	val := t.get(m.Value.Rows, m.Value.Cols)
	tensor.AddRowInto(val, m.Value, r.Value)
	out := t.newVar(val)
	if !t.track2(m, r) {
		return out
	}
	return t.push(out, rec{op: opAddRow, a: t.ref(m), b: t.ref(r)})
}

// ActFn selects the activation fused into AddRowApply. The derivative of
// every supported activation is computable from its output, so the fused
// op never stores pre-activation values.
type ActFn int

// Supported fused activations.
const (
	ActIdentity ActFn = iota
	ActSigmoid
	ActTanh
	ActReLU
)

// kernel maps the activation onto the tensor-layer enum driving the fused
// forward kernel.
func (f ActFn) kernel() tensor.Act {
	switch f {
	case ActIdentity:
		return tensor.ActNone
	case ActSigmoid:
		return tensor.ActSigmoid
	case ActTanh:
		return tensor.ActTanh
	case ActReLU:
		return tensor.ActReLU
	default:
		panic(fmt.Sprintf("autodiff: unknown ActFn(%d)", int(f)))
	}
}

// AddRowApply broadcasts the 1×n bias row r across every row of m and
// applies activation f, fusing what is otherwise an AddRow op plus an
// activation op into a single kernel pass — the shape of every dense layer
// and LSTM gate. It is exactly equivalent, bit for bit in both values and
// gradients, to applying the activation to AddRow(m, r).
func (t *Tape) AddRowApply(m, r *Var, f ActFn) *Var {
	val := t.get(m.Value.Rows, m.Value.Cols)
	tensor.AddRowActInto(val, m.Value, r.Value, f.kernel())
	out := t.newVar(val)
	if !t.track2(m, r) {
		return out
	}
	return t.push(out, rec{op: opAddRowAct, act: uint8(f), a: t.ref(m), b: t.ref(r)})
}

// Sigmoid applies the logistic function elementwise.
func (t *Tape) Sigmoid(a *Var) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	tensor.SigmoidInto(val, a.Value)
	out := t.newVar(val)
	if !t.track1(a) {
		return out
	}
	return t.push(out, rec{op: opSigmoid, a: t.ref(a)})
}

// Tanh applies the hyperbolic tangent elementwise.
func (t *Tape) Tanh(a *Var) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	tensor.TanhInto(val, a.Value)
	out := t.newVar(val)
	if !t.track1(a) {
		return out
	}
	return t.push(out, rec{op: opTanh, a: t.ref(a)})
}

// ReLU applies max(0,x) elementwise.
func (t *Tape) ReLU(a *Var) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	tensor.ReLUInto(val, a.Value)
	out := t.newVar(val)
	if !t.track1(a) {
		return out
	}
	return t.push(out, rec{op: opReLU, a: t.ref(a)})
}

// LeakyReLU applies max(alpha·x, x) elementwise.
func (t *Tape) LeakyReLU(a *Var, alpha float64) *Var {
	val := t.get(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		if x > 0 {
			val.Data[i] = x
		} else {
			val.Data[i] = alpha * x
		}
	}
	out := t.newVar(val)
	if !t.track1(a) {
		return out
	}
	return t.push(out, rec{op: opLeakyReLU, a: t.ref(a), s: alpha})
}

// Transpose returns aᵀ.
func (t *Tape) Transpose(a *Var) *Var {
	val := t.get(a.Value.Cols, a.Value.Rows)
	tensor.TransposeInto(val, a.Value)
	out := t.newVar(val)
	if !t.track1(a) {
		return out
	}
	return t.push(out, rec{op: opTranspose, a: t.ref(a)})
}

// SoftmaxRows applies a row-wise softmax. mask may be nil; otherwise it must
// have one entry per column, and columns whose mask entry is false receive
// zero probability in every row (their logits are treated as −∞). Rows whose
// mask is entirely false become all-zero rows.
func (t *Tape) SoftmaxRows(a *Var, mask []bool) *Var {
	if mask != nil && len(mask) != a.Value.Cols {
		panic(fmt.Sprintf("autodiff: softmax mask length %d != cols %d", len(mask), a.Value.Cols))
	}
	val := t.get(a.Value.Rows, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		in := a.Value.Row(i)
		outRow := val.Row(i)
		maxv := math.Inf(-1)
		for j, x := range in {
			if (mask == nil || mask[j]) && x > maxv {
				maxv = x
			}
		}
		if math.IsInf(maxv, -1) {
			for j := range outRow {
				outRow[j] = 0 // fully masked row
			}
			continue
		}
		var sum float64
		for j, x := range in {
			if mask == nil || mask[j] {
				e := math.Exp(x - maxv)
				outRow[j] = e
				sum += e
			} else {
				outRow[j] = 0
			}
		}
		for j := range outRow {
			outRow[j] /= sum
		}
	}
	out := t.newVar(val)
	if !t.track1(a) {
		return out
	}
	// The backward pass needs no mask: masked entries have probability
	// exactly 0, so their contributions vanish term by term.
	return t.push(out, rec{op: opSoftmaxRows, a: t.ref(a)})
}

// SoftmaxRowsMask2D applies a row-wise softmax with an independent column
// mask per row: entry (i,j) receives zero probability when mask[i][j] is
// false. Rows whose mask is entirely false become all-zero rows. This is
// the primitive behind node-aware attention, where node i attends only
// over its own children.
func (t *Tape) SoftmaxRowsMask2D(a *Var, mask [][]bool) *Var {
	if len(mask) != a.Value.Rows {
		panic(fmt.Sprintf("autodiff: 2D softmax mask rows %d != %d", len(mask), a.Value.Rows))
	}
	val := t.get(a.Value.Rows, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		if len(mask[i]) != a.Value.Cols {
			panic(fmt.Sprintf("autodiff: 2D softmax mask row %d has %d cols, want %d", i, len(mask[i]), a.Value.Cols))
		}
		in := a.Value.Row(i)
		outRow := val.Row(i)
		maxv := math.Inf(-1)
		for j, x := range in {
			if mask[i][j] && x > maxv {
				maxv = x
			}
		}
		if math.IsInf(maxv, -1) {
			for j := range outRow {
				outRow[j] = 0
			}
			continue
		}
		var sum float64
		for j, x := range in {
			if mask[i][j] {
				e := math.Exp(x - maxv)
				outRow[j] = e
				sum += e
			} else {
				outRow[j] = 0
			}
		}
		for j := range outRow {
			outRow[j] /= sum
		}
	}
	out := t.newVar(val)
	if !t.track1(a) {
		return out
	}
	return t.push(out, rec{op: opSoftmaxRows, a: t.ref(a)})
}

// ConcatCols concatenates variables horizontally.
func (t *Tape) ConcatCols(vs ...*Var) *Var {
	rows, cols := 0, 0
	if len(vs) > 0 {
		rows = vs[0].Value.Rows
		for _, v := range vs {
			if v.Value.Rows != rows {
				panic(fmt.Sprintf("tensor: concatCols row mismatch %d != %d", v.Value.Rows, rows))
			}
			cols += v.Value.Cols
		}
	}
	val := t.get(rows, cols)
	for i := 0; i < rows; i++ {
		off := 0
		orow := val.Row(i)
		for _, v := range vs {
			w := v.Value.Cols
			copy(orow[off:off+w], v.Value.Row(i))
			off += w
		}
	}
	out := t.newVar(val)
	if !t.trackN(vs) {
		return out
	}
	off, ln := t.pushArgs(vs)
	return t.push(out, rec{op: opConcatCols, x0: off, x1: ln})
}

// ConcatRows concatenates variables vertically.
func (t *Tape) ConcatRows(vs ...*Var) *Var {
	rows, cols := 0, 0
	if len(vs) > 0 {
		cols = vs[0].Value.Cols
		for _, v := range vs {
			if v.Value.Cols != cols {
				panic(fmt.Sprintf("tensor: concatRows col mismatch %d != %d", v.Value.Cols, cols))
			}
			rows += v.Value.Rows
		}
	}
	val := t.get(rows, cols)
	off := 0
	for _, v := range vs {
		copy(val.Data[off:off+len(v.Value.Data)], v.Value.Data)
		off += len(v.Value.Data)
	}
	out := t.newVar(val)
	if !t.trackN(vs) {
		return out
	}
	aoff, ln := t.pushArgs(vs)
	return t.push(out, rec{op: opConcatRows, x0: aoff, x1: ln})
}

// GatherRows extracts row i of every input and stacks the copies into a
// len(vs)×cols variable: out.Row(k) = vs[k].Row(i). One op replaces the
// per-timestep RowAt + ConcatRows chain the recurrent readout used to
// record (len(vs)+1 ops and as many intermediate Vars).
func (t *Tape) GatherRows(vs []*Var, i int) *Var {
	if len(vs) == 0 {
		return t.newVar(t.get(0, 0))
	}
	cols := vs[0].Value.Cols
	val := t.get(len(vs), cols)
	for k, v := range vs {
		if v.Value.Cols != cols {
			panic(fmt.Sprintf("autodiff: GatherRows col mismatch %d != %d", v.Value.Cols, cols))
		}
		if i < 0 || i >= v.Value.Rows {
			panic(fmt.Sprintf("autodiff: GatherRows(%d) out of %d rows", i, v.Value.Rows))
		}
		copy(val.Row(k), v.Value.Row(i))
	}
	out := t.newVar(val)
	if !t.trackN(vs) {
		return out
	}
	off, ln := t.pushArgs(vs)
	return t.push(out, rec{op: opGatherRows, a: int32(i), x0: off, x1: ln})
}

// AddRowsAt returns rows [i, i+small.Rows) of big plus small, elementwise —
// an Add against a contiguous row window of big without materializing the
// window as its own Var. This is the stacked-input recurrence step: the
// input projection for all timesteps is one big matmul, and each step adds
// its row window to the recurrent term.
func (t *Tape) AddRowsAt(big *Var, i int, small *Var) *Var {
	rows, cols := small.Value.Rows, small.Value.Cols
	if big.Value.Cols != cols {
		panic(fmt.Sprintf("autodiff: AddRowsAt col mismatch %d != %d", big.Value.Cols, cols))
	}
	if i < 0 || i+rows > big.Value.Rows {
		panic(fmt.Sprintf("autodiff: AddRowsAt rows [%d,%d) out of %d", i, i+rows, big.Value.Rows))
	}
	val := t.get(rows, cols)
	win := big.Value.Data[i*cols : (i+rows)*cols]
	for k, v := range win {
		val.Data[k] = v + small.Value.Data[k]
	}
	out := t.newVar(val)
	if !t.track2(big, small) {
		return out
	}
	return t.push(out, rec{op: opAddRowsAt, a: t.ref(big), b: t.ref(small), x0: int32(i)})
}

// Im2ColRows materializes the width-row neighborhood of every row of x
// ("same" padding: out-of-range rows read as zero) as one rows×(width·cols)
// matrix: out.Row(p) = [x.Row(p−half) … x.Row(p+half)]. width must be odd.
// One op replaces the per-position RowAt/zero/ConcatCols chain that
// convolution lowering used to record.
func (t *Tape) Im2ColRows(x *Var, width int) *Var {
	if width < 1 || width%2 == 0 {
		panic(fmt.Sprintf("autodiff: Im2ColRows width %d must be odd and positive", width))
	}
	rows, cols := x.Value.Rows, x.Value.Cols
	half := width / 2
	val := t.get(rows, width*cols)
	for p := 0; p < rows; p++ {
		orow := val.Row(p)
		for k := 0; k < width; k++ {
			dst := orow[k*cols : (k+1)*cols]
			if src := p + k - half; src >= 0 && src < rows {
				copy(dst, x.Value.Row(src))
			} else {
				for j := range dst {
					dst[j] = 0
				}
			}
		}
	}
	out := t.newVar(val)
	if !t.track1(x) {
		return out
	}
	return t.push(out, rec{op: opIm2ColRows, a: t.ref(x), x0: int32(width)})
}

// RowAt extracts row i of a as a 1×cols variable.
func (t *Tape) RowAt(a *Var, i int) *Var {
	if i < 0 || i >= a.Value.Rows {
		panic(fmt.Sprintf("autodiff: RowAt(%d) out of %d rows", i, a.Value.Rows))
	}
	val := t.get(1, a.Value.Cols)
	copy(val.Data, a.Value.Row(i))
	out := t.newVar(val)
	if !t.track1(a) {
		return out
	}
	return t.push(out, rec{op: opRowAt, a: t.ref(a), x0: int32(i)})
}

// SliceCols extracts columns [lo,hi) of a as a copy.
func (t *Tape) SliceCols(a *Var, lo, hi int) *Var {
	if lo < 0 || hi > a.Value.Cols || lo > hi {
		panic(fmt.Sprintf("autodiff: SliceCols [%d,%d) out of %d cols", lo, hi, a.Value.Cols))
	}
	w := hi - lo
	val := t.get(a.Value.Rows, w)
	for i := 0; i < a.Value.Rows; i++ {
		copy(val.Row(i), a.Value.Row(i)[lo:hi])
	}
	out := t.newVar(val)
	if !t.track1(a) {
		return out
	}
	return t.push(out, rec{op: opSliceCols, a: t.ref(a), x0: int32(lo), x1: int32(hi)})
}

// MeanRowsMasked averages the rows of a whose mask entry is true, returning
// a 1×cols variable. If no row is selected the result is all zeros.
func (t *Tape) MeanRowsMasked(a *Var, mask []bool) *Var {
	if len(mask) != a.Value.Rows {
		panic(fmt.Sprintf("autodiff: mean mask length %d != rows %d", len(mask), a.Value.Rows))
	}
	n := 0
	for _, m := range mask {
		if m {
			n++
		}
	}
	val := t.zeroed(1, a.Value.Cols)
	if n > 0 {
		for i, m := range mask {
			if !m {
				continue
			}
			row := a.Value.Row(i)
			for j, x := range row {
				val.Data[j] += x / float64(n)
			}
		}
	}
	out := t.newVar(val)
	if !t.track1(a) || n == 0 {
		return out
	}
	return t.push(out, rec{op: opMeanRowsMasked, a: t.ref(a), x0: t.pushMask(mask), s: float64(n)})
}

// SumAll reduces a to a 1×1 variable holding the sum of its elements.
func (t *Tape) SumAll(a *Var) *Var {
	val := t.get(1, 1)
	val.Data[0] = a.Value.Sum()
	out := t.newVar(val)
	if !t.track1(a) {
		return out
	}
	return t.push(out, rec{op: opSumAll, a: t.ref(a)})
}

// MeanAll reduces a to a 1×1 variable holding the mean of its elements.
func (t *Tape) MeanAll(a *Var) *Var {
	val := t.get(1, 1)
	val.Data[0] = a.Value.Mean()
	out := t.newVar(val)
	if !t.track1(a) {
		return out
	}
	return t.push(out, rec{op: opMeanAll, a: t.ref(a), s: float64(len(a.Value.Data))})
}

// MSE returns the mean squared error between pred and the constant target,
// as a 1×1 variable.
func (t *Tape) MSE(pred *Var, target *tensor.Matrix) *Var {
	if !pred.Value.SameShape(target) {
		panic(fmt.Sprintf("autodiff: MSE shape mismatch %dx%d vs %dx%d",
			pred.Value.Rows, pred.Value.Cols, target.Rows, target.Cols))
	}
	n := float64(len(target.Data))
	var loss float64
	for i, p := range pred.Value.Data {
		d := p - target.Data[i]
		loss += d * d
	}
	loss /= n
	val := t.get(1, 1)
	val.Data[0] = loss
	out := t.newVar(val)
	if !t.track1(pred) {
		return out
	}
	return t.push(out, rec{op: opMSE, a: t.ref(pred), x0: t.pushMat(target), s: n})
}

// Dropout zeroes each element with probability p at training time and
// rescales survivors by 1/(1−p). keep must be a pre-sampled boolean mask of
// the same size as a (one entry per element); this keeps the op
// deterministic and testable. Passing a nil mask makes Dropout the identity.
func (t *Tape) Dropout(a *Var, p float64, keep []bool) *Var {
	if keep == nil {
		return a
	}
	if len(keep) != len(a.Value.Data) {
		panic(fmt.Sprintf("autodiff: dropout mask length %d != %d", len(keep), len(a.Value.Data)))
	}
	scale := 1 / (1 - p)
	val := t.get(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		if keep[i] {
			val.Data[i] = x * scale
		} else {
			val.Data[i] = 0
		}
	}
	out := t.newVar(val)
	if !t.track1(a) {
		return out
	}
	return t.push(out, rec{op: opDropout, a: t.ref(a), x0: t.pushMask(keep), s: scale})
}
