// Package autodiff implements tape-based reverse-mode automatic
// differentiation over dense matrices.
//
// A Tape records every operation in creation order; because an operation can
// only consume values that already exist, the tape order is a topological
// order of the computation graph, and Backward simply walks it in reverse.
// All neural-network layers in internal/nn are built from the primitives
// here, so a single numerically-checked gradient core backs the entire deep
// cost model.
package autodiff

import (
	"fmt"
	"math"

	"raal/internal/tensor"
)

// Var is a node in the computation graph: a matrix value plus (once
// Backward has run) the gradient of the loss with respect to it.
type Var struct {
	Value *tensor.Matrix
	Grad  *tensor.Matrix

	needsGrad bool
	backward  func()
}

// NeedsGrad reports whether gradients are tracked for this variable.
func (v *Var) NeedsGrad() bool { return v.needsGrad }

// grad returns the gradient accumulator, allocating it on first use.
func (v *Var) grad() *tensor.Matrix {
	if v.Grad == nil {
		v.Grad = tensor.New(v.Value.Rows, v.Value.Cols)
	}
	return v.Grad
}

// Tape records operations for reverse-mode differentiation. The zero value
// is ready to use. A Tape is not safe for concurrent use; run one tape per
// goroutine.
type Tape struct {
	nodes []*Var
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset drops all recorded operations so the tape can be reused.
func (t *Tape) Reset() { t.nodes = t.nodes[:0] }

// Len returns the number of recorded nodes (useful in tests).
func (t *Tape) Len() int { return len(t.nodes) }

// Param registers m as a trainable leaf: its gradient is accumulated into
// m's Var across Backward calls until ZeroGrad.
func (t *Tape) Param(m *tensor.Matrix) *Var {
	v := &Var{Value: m, needsGrad: true}
	return v
}

// Const wraps m as a constant input: no gradient is tracked.
func (t *Tape) Const(m *tensor.Matrix) *Var {
	return &Var{Value: m}
}

func (t *Tape) record(v *Var, inputs ...*Var) *Var {
	for _, in := range inputs {
		if in.needsGrad {
			v.needsGrad = true
			break
		}
	}
	if !v.needsGrad {
		v.backward = nil
	}
	t.nodes = append(t.nodes, v)
	return v
}

// Backward seeds root's gradient with 1 (root must be 1×1) and propagates
// gradients through every recorded operation in reverse order.
func (t *Tape) Backward(root *Var) {
	if root.Value.Rows != 1 || root.Value.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Backward root must be 1x1, got %dx%d", root.Value.Rows, root.Value.Cols))
	}
	root.grad().Data[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.backward != nil && n.Grad != nil {
			n.backward()
		}
	}
}

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Var) *Var {
	out := &Var{Value: tensor.MatMul(a.Value, b.Value)}
	out.backward = func() {
		if a.needsGrad {
			tensor.AddInPlace(a.grad(), tensor.MatMulTransB(out.Grad, b.Value))
		}
		if b.needsGrad {
			tensor.AddInPlace(b.grad(), tensor.MatMulTransA(a.Value, out.Grad))
		}
	}
	return t.record(out, a, b)
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Var) *Var {
	out := &Var{Value: tensor.Add(a.Value, b.Value)}
	out.backward = func() {
		if a.needsGrad {
			tensor.AddInPlace(a.grad(), out.Grad)
		}
		if b.needsGrad {
			tensor.AddInPlace(b.grad(), out.Grad)
		}
	}
	return t.record(out, a, b)
}

// Sub returns a−b (same shape).
func (t *Tape) Sub(a, b *Var) *Var {
	out := &Var{Value: tensor.Sub(a.Value, b.Value)}
	out.backward = func() {
		if a.needsGrad {
			tensor.AddInPlace(a.grad(), out.Grad)
		}
		if b.needsGrad {
			tensor.AxpyInPlace(b.grad(), -1, out.Grad)
		}
	}
	return t.record(out, a, b)
}

// Mul returns the elementwise product a∘b.
func (t *Tape) Mul(a, b *Var) *Var {
	out := &Var{Value: tensor.Mul(a.Value, b.Value)}
	out.backward = func() {
		if a.needsGrad {
			tensor.AddInPlace(a.grad(), tensor.Mul(out.Grad, b.Value))
		}
		if b.needsGrad {
			tensor.AddInPlace(b.grad(), tensor.Mul(out.Grad, a.Value))
		}
	}
	return t.record(out, a, b)
}

// Scale returns s·a.
func (t *Tape) Scale(a *Var, s float64) *Var {
	out := &Var{Value: tensor.Scale(a.Value, s)}
	out.backward = func() {
		if a.needsGrad {
			tensor.AxpyInPlace(a.grad(), s, out.Grad)
		}
	}
	return t.record(out, a)
}

// AddRow broadcasts the 1×n row vector r across every row of m.
func (t *Tape) AddRow(m, r *Var) *Var {
	out := &Var{Value: tensor.AddRow(m.Value, r.Value)}
	out.backward = func() {
		if m.needsGrad {
			tensor.AddInPlace(m.grad(), out.Grad)
		}
		if r.needsGrad {
			g := r.grad()
			for i := 0; i < out.Grad.Rows; i++ {
				row := out.Grad.Row(i)
				for j, v := range row {
					g.Data[j] += v
				}
			}
		}
	}
	return t.record(out, m, r)
}

// Sigmoid applies the logistic function elementwise.
func (t *Tape) Sigmoid(a *Var) *Var {
	val := tensor.Apply(a.Value, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
	out := &Var{Value: val}
	out.backward = func() {
		if a.needsGrad {
			g := a.grad()
			for i, s := range val.Data {
				g.Data[i] += out.Grad.Data[i] * s * (1 - s)
			}
		}
	}
	return t.record(out, a)
}

// Tanh applies the hyperbolic tangent elementwise.
func (t *Tape) Tanh(a *Var) *Var {
	val := tensor.Apply(a.Value, math.Tanh)
	out := &Var{Value: val}
	out.backward = func() {
		if a.needsGrad {
			g := a.grad()
			for i, y := range val.Data {
				g.Data[i] += out.Grad.Data[i] * (1 - y*y)
			}
		}
	}
	return t.record(out, a)
}

// ReLU applies max(0,x) elementwise.
func (t *Tape) ReLU(a *Var) *Var {
	val := tensor.Apply(a.Value, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
	out := &Var{Value: val}
	out.backward = func() {
		if a.needsGrad {
			g := a.grad()
			for i, x := range a.Value.Data {
				if x > 0 {
					g.Data[i] += out.Grad.Data[i]
				}
			}
		}
	}
	return t.record(out, a)
}

// LeakyReLU applies max(alpha·x, x) elementwise.
func (t *Tape) LeakyReLU(a *Var, alpha float64) *Var {
	val := tensor.Apply(a.Value, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return alpha * x
	})
	out := &Var{Value: val}
	out.backward = func() {
		if a.needsGrad {
			g := a.grad()
			for i, x := range a.Value.Data {
				if x > 0 {
					g.Data[i] += out.Grad.Data[i]
				} else {
					g.Data[i] += alpha * out.Grad.Data[i]
				}
			}
		}
	}
	return t.record(out, a)
}

// Transpose returns aᵀ.
func (t *Tape) Transpose(a *Var) *Var {
	out := &Var{Value: a.Value.Transpose()}
	out.backward = func() {
		if a.needsGrad {
			tensor.AddInPlace(a.grad(), out.Grad.Transpose())
		}
	}
	return t.record(out, a)
}

// SoftmaxRows applies a row-wise softmax. mask may be nil; otherwise it must
// have one entry per column, and columns whose mask entry is false receive
// zero probability in every row (their logits are treated as −∞). Rows whose
// mask is entirely false become all-zero rows.
func (t *Tape) SoftmaxRows(a *Var, mask []bool) *Var {
	if mask != nil && len(mask) != a.Value.Cols {
		panic(fmt.Sprintf("autodiff: softmax mask length %d != cols %d", len(mask), a.Value.Cols))
	}
	val := tensor.New(a.Value.Rows, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		in := a.Value.Row(i)
		outRow := val.Row(i)
		maxv := math.Inf(-1)
		for j, x := range in {
			if (mask == nil || mask[j]) && x > maxv {
				maxv = x
			}
		}
		if math.IsInf(maxv, -1) {
			continue // fully masked row stays zero
		}
		var sum float64
		for j, x := range in {
			if mask == nil || mask[j] {
				e := math.Exp(x - maxv)
				outRow[j] = e
				sum += e
			}
		}
		for j := range outRow {
			outRow[j] /= sum
		}
	}
	out := &Var{Value: val}
	out.backward = func() {
		if !a.needsGrad {
			return
		}
		g := a.grad()
		for i := 0; i < val.Rows; i++ {
			y := val.Row(i)
			dy := out.Grad.Row(i)
			var dot float64
			for j := range y {
				dot += y[j] * dy[j]
			}
			grow := g.Row(i)
			for j := range y {
				grow[j] += y[j] * (dy[j] - dot)
			}
		}
	}
	return t.record(out, a)
}

// ConcatCols concatenates variables horizontally.
func (t *Tape) ConcatCols(vs ...*Var) *Var {
	mats := make([]*tensor.Matrix, len(vs))
	for i, v := range vs {
		mats[i] = v.Value
	}
	out := &Var{Value: tensor.ConcatCols(mats...)}
	out.backward = func() {
		off := 0
		for _, v := range vs {
			w := v.Value.Cols
			if v.needsGrad {
				g := v.grad()
				for i := 0; i < out.Grad.Rows; i++ {
					src := out.Grad.Row(i)[off : off+w]
					dst := g.Row(i)
					for j, x := range src {
						dst[j] += x
					}
				}
			}
			off += w
		}
	}
	return t.record(out, vs...)
}

// ConcatRows concatenates variables vertically.
func (t *Tape) ConcatRows(vs ...*Var) *Var {
	mats := make([]*tensor.Matrix, len(vs))
	for i, v := range vs {
		mats[i] = v.Value
	}
	out := &Var{Value: tensor.ConcatRows(mats...)}
	out.backward = func() {
		off := 0
		for _, v := range vs {
			n := v.Value.Rows * v.Value.Cols
			if v.needsGrad {
				g := v.grad()
				src := out.Grad.Data[off : off+n]
				for j, x := range src {
					g.Data[j] += x
				}
			}
			off += n
		}
	}
	return t.record(out, vs...)
}

// RowAt extracts row i of a as a 1×cols variable.
func (t *Tape) RowAt(a *Var, i int) *Var {
	if i < 0 || i >= a.Value.Rows {
		panic(fmt.Sprintf("autodiff: RowAt(%d) out of %d rows", i, a.Value.Rows))
	}
	out := &Var{Value: tensor.RowVector(a.Value.Row(i))}
	out.backward = func() {
		if a.needsGrad {
			dst := a.grad().Row(i)
			for j, x := range out.Grad.Data {
				dst[j] += x
			}
		}
	}
	return t.record(out, a)
}

// SoftmaxRowsMask2D applies a row-wise softmax with an independent column
// mask per row: entry (i,j) receives zero probability when mask[i][j] is
// false. Rows whose mask is entirely false become all-zero rows. This is
// the primitive behind node-aware attention, where node i attends only
// over its own children.
func (t *Tape) SoftmaxRowsMask2D(a *Var, mask [][]bool) *Var {
	if len(mask) != a.Value.Rows {
		panic(fmt.Sprintf("autodiff: 2D softmax mask rows %d != %d", len(mask), a.Value.Rows))
	}
	val := tensor.New(a.Value.Rows, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		if len(mask[i]) != a.Value.Cols {
			panic(fmt.Sprintf("autodiff: 2D softmax mask row %d has %d cols, want %d", i, len(mask[i]), a.Value.Cols))
		}
		in := a.Value.Row(i)
		outRow := val.Row(i)
		maxv := math.Inf(-1)
		for j, x := range in {
			if mask[i][j] && x > maxv {
				maxv = x
			}
		}
		if math.IsInf(maxv, -1) {
			continue
		}
		var sum float64
		for j, x := range in {
			if mask[i][j] {
				e := math.Exp(x - maxv)
				outRow[j] = e
				sum += e
			}
		}
		for j := range outRow {
			outRow[j] /= sum
		}
	}
	out := &Var{Value: val}
	out.backward = func() {
		if !a.needsGrad {
			return
		}
		g := a.grad()
		for i := 0; i < val.Rows; i++ {
			y := val.Row(i)
			dy := out.Grad.Row(i)
			var dot float64
			for j := range y {
				dot += y[j] * dy[j]
			}
			grow := g.Row(i)
			for j := range y {
				grow[j] += y[j] * (dy[j] - dot)
			}
		}
	}
	return t.record(out, a)
}

// SliceCols extracts columns [lo,hi) of a as a copy.
func (t *Tape) SliceCols(a *Var, lo, hi int) *Var {
	if lo < 0 || hi > a.Value.Cols || lo > hi {
		panic(fmt.Sprintf("autodiff: SliceCols [%d,%d) out of %d cols", lo, hi, a.Value.Cols))
	}
	w := hi - lo
	val := tensor.New(a.Value.Rows, w)
	for i := 0; i < a.Value.Rows; i++ {
		copy(val.Row(i), a.Value.Row(i)[lo:hi])
	}
	out := &Var{Value: val}
	out.backward = func() {
		if !a.needsGrad {
			return
		}
		g := a.grad()
		for i := 0; i < val.Rows; i++ {
			dst := g.Row(i)[lo:hi]
			src := out.Grad.Row(i)
			for j, x := range src {
				dst[j] += x
			}
		}
	}
	return t.record(out, a)
}

// MeanRowsMasked averages the rows of a whose mask entry is true, returning
// a 1×cols variable. If no row is selected the result is all zeros.
func (t *Tape) MeanRowsMasked(a *Var, mask []bool) *Var {
	if len(mask) != a.Value.Rows {
		panic(fmt.Sprintf("autodiff: mean mask length %d != rows %d", len(mask), a.Value.Rows))
	}
	n := 0
	for _, m := range mask {
		if m {
			n++
		}
	}
	val := tensor.New(1, a.Value.Cols)
	if n > 0 {
		for i, m := range mask {
			if !m {
				continue
			}
			row := a.Value.Row(i)
			for j, x := range row {
				val.Data[j] += x / float64(n)
			}
		}
	}
	out := &Var{Value: val}
	out.backward = func() {
		if !a.needsGrad || n == 0 {
			return
		}
		g := a.grad()
		for i, m := range mask {
			if !m {
				continue
			}
			dst := g.Row(i)
			for j, x := range out.Grad.Data {
				dst[j] += x / float64(n)
			}
		}
	}
	return t.record(out, a)
}

// SumAll reduces a to a 1×1 variable holding the sum of its elements.
func (t *Tape) SumAll(a *Var) *Var {
	out := &Var{Value: tensor.FromSlice(1, 1, []float64{a.Value.Sum()})}
	out.backward = func() {
		if a.needsGrad {
			g := a.grad()
			d := out.Grad.Data[0]
			for i := range g.Data {
				g.Data[i] += d
			}
		}
	}
	return t.record(out, a)
}

// MeanAll reduces a to a 1×1 variable holding the mean of its elements.
func (t *Tape) MeanAll(a *Var) *Var {
	n := float64(len(a.Value.Data))
	out := &Var{Value: tensor.FromSlice(1, 1, []float64{a.Value.Mean()})}
	out.backward = func() {
		if a.needsGrad {
			g := a.grad()
			d := out.Grad.Data[0] / n
			for i := range g.Data {
				g.Data[i] += d
			}
		}
	}
	return t.record(out, a)
}

// MSE returns the mean squared error between pred and the constant target,
// as a 1×1 variable.
func (t *Tape) MSE(pred *Var, target *tensor.Matrix) *Var {
	if !pred.Value.SameShape(target) {
		panic(fmt.Sprintf("autodiff: MSE shape mismatch %dx%d vs %dx%d",
			pred.Value.Rows, pred.Value.Cols, target.Rows, target.Cols))
	}
	n := float64(len(target.Data))
	var loss float64
	for i, p := range pred.Value.Data {
		d := p - target.Data[i]
		loss += d * d
	}
	loss /= n
	out := &Var{Value: tensor.FromSlice(1, 1, []float64{loss})}
	out.backward = func() {
		if pred.needsGrad {
			g := pred.grad()
			d := out.Grad.Data[0]
			for i, p := range pred.Value.Data {
				g.Data[i] += d * 2 * (p - target.Data[i]) / n
			}
		}
	}
	return t.record(out, pred)
}

// Dropout zeroes each element with probability p at training time and
// rescales survivors by 1/(1−p). keep must be a pre-sampled boolean mask of
// the same size as a (one entry per element); this keeps the op
// deterministic and testable. Passing a nil mask makes Dropout the identity.
func (t *Tape) Dropout(a *Var, p float64, keep []bool) *Var {
	if keep == nil {
		return a
	}
	if len(keep) != len(a.Value.Data) {
		panic(fmt.Sprintf("autodiff: dropout mask length %d != %d", len(keep), len(a.Value.Data)))
	}
	scale := 1 / (1 - p)
	val := tensor.New(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		if keep[i] {
			val.Data[i] = x * scale
		}
	}
	out := &Var{Value: val}
	out.backward = func() {
		if a.needsGrad {
			g := a.grad()
			for i := range g.Data {
				if keep[i] {
					g.Data[i] += out.Grad.Data[i] * scale
				}
			}
		}
	}
	return t.record(out, a)
}
