package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"raal/internal/tensor"
)

func randM32(rng *rand.Rand, rows, cols int) *tensor.Matrix32 {
	m := tensor.New32(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// TestTape32OpsMatchFloat64 runs each f32 op against its float64 Tape
// counterpart on the same (narrowed) inputs and requires agreement within
// f32 rounding tolerance — the ops must differ only in storage precision,
// never in semantics. The transcendental ops (tanh, sigmoid, softmax) get
// a looser 2e-5 bound: they run through the fast f32 kernels
// (tensor.Sigmoid32's interpolated table, tensor.Exp32), whose ≲1e-5
// absolute error is the documented trade for skipping the float64 math
// library on the hot path.
func TestTape32OpsMatchFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tp64 := NewInferenceTape()
	tp32 := NewTape32()

	a64 := tensor.Randn(6, 8, 1, rng)
	b64 := tensor.Randn(8, 5, 1, rng)
	a32, b32 := tensor.ToMatrix32(a64), tensor.ToMatrix32(b64)

	check := func(label string, got *tensor.Matrix32, want *Var, tol float64) {
		t.Helper()
		if got.Rows != want.Value.Rows || got.Cols != want.Value.Cols {
			t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Value.Rows, want.Value.Cols)
		}
		for i, v := range got.Data {
			if math.Abs(float64(v)-want.Value.Data[i]) > tol {
				t.Fatalf("%s: element %d = %g, want %g", label, i, v, want.Value.Data[i])
			}
		}
	}

	av, bv := tp64.Const(a64), tp64.Const(b64)
	check("matmul", tp32.MatMul(a32, b32), tp64.MatMul(av, bv), 1e-4)
	check("tanh", tp32.Tanh(a32), tp64.Tanh(av), 2e-5)
	check("scale", tp32.Scale(a32, 0.5), tp64.Scale(av, 0.5), 1e-6)
	check("sliceCols", tp32.SliceCols(a32, 2, 7), tp64.SliceCols(av, 2, 7), 1e-6)

	mask := []bool{true, false, true, true, false, true}
	check("meanRowsMasked", tp32.MeanRowsMasked(a32, mask), tp64.MeanRowsMasked(av, mask), 1e-6)

	cmask := []bool{true, true, false, true, false, true, true, true}
	check("softmaxRows", tp32.SoftmaxRows(a32, cmask), tp64.SoftmaxRows(av, cmask), 2e-5)

	mask2d := make([][]bool, 6)
	for i := range mask2d {
		mask2d[i] = make([]bool, 8)
		for j := range mask2d[i] {
			mask2d[i][j] = rng.Intn(2) == 0
		}
	}
	check("softmaxMask2D", tp32.SoftmaxRowsMask2D(a32, mask2d), tp64.SoftmaxRowsMask2D(av, mask2d), 2e-5)

	r64 := tensor.Randn(1, 8, 1, rng)
	r32 := tensor.ToMatrix32(r64)
	rv := tp64.Const(r64)
	check("addRowAct/sigmoid", tp32.AddRowAct(a32, r32, tensor.ActSigmoid), tp64.AddRowApply(av, rv, ActSigmoid), 2e-5)

	check("im2col", tp32.Im2ColRows(a32, 3), tp64.Im2ColRows(av, 3), 1e-6)
	check("concatCols", tp32.ConcatCols(a32, a32), tp64.ConcatCols(av, av), 1e-6)
	check("concatRows", tp32.ConcatRows(a32, a32), tp64.ConcatRows(av, av), 1e-6)
	check("gatherRows", tp32.GatherRows([]*tensor.Matrix32{a32, a32}, 3), tp64.GatherRows([]*Var{av, av}, 3), 1e-6)

	small64 := tensor.Randn(2, 8, 1, rng)
	small32 := tensor.ToMatrix32(small64)
	check("addRowsAt", tp32.AddRowsAt(a32, 2, small32), tp64.AddRowsAt(av, 2, tp64.Const(small64)), 1e-6)
}

// TestTape32WarmReplayReusesArena pins the arena contract: after Reset, an
// identical op sequence returns pointer-identical matrices backed by the
// same slabs, and the steady state allocates zero new f32 matrices.
func TestTape32WarmReplayReusesArena(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tp := NewTape32()
	a := randM32(rng, 16, 16)
	b := randM32(rng, 16, 16)

	run := func() *tensor.Matrix32 {
		h := tp.MatMul(a, b)
		h = tp.Tanh(h)
		return tp.Add(h, a)
	}
	first := run()
	want := first.Clone()
	tp.Reset()

	before := tensor.Allocs32()
	second := run()
	if got := tensor.Allocs32() - before; got != 0 {
		t.Fatalf("warm replay allocated %d matrices, want 0", got)
	}
	if first != second {
		t.Fatalf("warm replay returned a different header: %p vs %p", first, second)
	}
	for i, v := range second.Data {
		if v != want.Data[i] {
			t.Fatalf("warm replay element %d = %g, want %g", i, v, want.Data[i])
		}
	}
}
