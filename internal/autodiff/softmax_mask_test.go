package autodiff

import (
	"math"
	"testing"

	"raal/internal/tensor"
)

// Fully-masked rows are the degenerate case of both softmax primitives: a
// leaf node has no children (SoftmaxRowsMask2D) and a zero-length plan
// prefix has no real nodes (SoftmaxRows). The contract is that such rows
// produce an all-zero probability row and contribute nothing to the
// input's gradient — previously this was only exercised indirectly through
// whole-model forward passes.

func TestSoftmaxRowsFullyMasked(t *testing.T) {
	tp := NewTape()
	a := tp.Param(tensor.FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6}))
	mask := []bool{false, false, false}
	sm := tp.SoftmaxRows(a, mask)
	for i, v := range sm.Value.Data {
		if v != 0 {
			t.Fatalf("fully masked softmax entry %d = %v, want 0", i, v)
		}
	}

	// Backward through a reduction: the input's gradient must stay zero.
	tp.Backward(tp.SumAll(sm))
	if a.Grad != nil {
		for i, g := range a.Grad.Data {
			if g != 0 {
				t.Fatalf("fully masked softmax leaked gradient %v at %d", g, i)
			}
		}
	}
}

func TestSoftmaxRowsPartialMask(t *testing.T) {
	tp := NewTape()
	a := tp.Param(tensor.FromSlice(1, 4, []float64{1, 100, 2, 100}))
	mask := []bool{true, false, true, false}
	sm := tp.SoftmaxRows(a, mask)
	row := sm.Value.Row(0)
	if row[1] != 0 || row[3] != 0 {
		t.Fatalf("masked columns got probability: %v", row)
	}
	if math.Abs(row[0]+row[2]-1) > 1e-12 {
		t.Fatalf("unmasked columns should sum to 1: %v", row)
	}

	// Weight the output so the softmax gradient is non-trivial, then check
	// masked columns receive exactly zero gradient and unmasked ones do
	// not.
	w := tp.Const(tensor.FromSlice(1, 4, []float64{1, 1, 2, 1}))
	tp.Backward(tp.SumAll(tp.Mul(sm, w)))
	g := a.Grad.Data
	if g[1] != 0 || g[3] != 0 {
		t.Fatalf("masked columns leaked gradient: %v", g)
	}
	if g[0] == 0 || g[2] == 0 {
		t.Fatalf("unmasked columns should receive gradient: %v", g)
	}
}

func TestSoftmaxRowsMask2DFullyMaskedRow(t *testing.T) {
	tp := NewTape()
	a := tp.Param(tensor.FromSlice(3, 3, []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}))
	mask := [][]bool{
		{false, false, false}, // leaf: attends over nothing
		{true, false, true},
		{false, true, false},
	}
	sm := tp.SoftmaxRowsMask2D(a, mask)
	for j := 0; j < 3; j++ {
		if sm.Value.At(0, j) != 0 {
			t.Fatalf("fully masked row 0 has probability at col %d: %v", j, sm.Value.Row(0))
		}
	}
	var sum1 float64
	for j := 0; j < 3; j++ {
		sum1 += sm.Value.At(1, j)
	}
	if math.Abs(sum1-1) > 1e-12 {
		t.Fatalf("row 1 should still normalize: %v", sm.Value.Row(1))
	}
	if sm.Value.At(2, 1) != 1 {
		t.Fatalf("single-child row should put all mass on the child: %v", sm.Value.Row(2))
	}

	w := tp.Const(tensor.FromSlice(3, 3, []float64{
		5, 5, 5,
		1, 1, 3,
		1, 2, 1,
	}))
	tp.Backward(tp.SumAll(tp.Mul(sm, w)))
	g := a.Grad
	for j := 0; j < 3; j++ {
		if g.At(0, j) != 0 {
			t.Fatalf("fully masked row leaked gradient: %v", g.Row(0))
		}
	}
	if g.At(1, 1) != 0 {
		t.Fatalf("masked entry (1,1) leaked gradient: %v", g.Row(1))
	}
	if g.At(1, 0) == 0 || g.At(1, 2) == 0 {
		t.Fatalf("unmasked entries of row 1 should receive gradient: %v", g.Row(1))
	}
	// A single-child row's softmax is constant (always 1), so its input
	// gradient is exactly zero everywhere.
	for j := 0; j < 3; j++ {
		if g.At(2, j) != 0 {
			t.Fatalf("constant single-child row should have zero gradient: %v", g.Row(2))
		}
	}
}
