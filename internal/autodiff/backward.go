package autodiff

import (
	"fmt"

	"raal/internal/tensor"
)

// Backward seeds root's gradient with 1 (root must be 1×1) and propagates
// gradients through every recorded operation in reverse order.
func (t *Tape) Backward(root *Var) {
	if root.Value.Rows != 1 || root.Value.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Backward root must be 1x1, got %dx%d", root.Value.Rows, root.Value.Cols))
	}
	t.gradOf(root).Data[0] = 1
	for i := len(t.recs) - 1; i >= 0; i-- {
		t.step(&t.recs[i])
	}
}

// step replays one record's adjoint. A record whose output never received
// gradient (no downstream consumer contributed) is skipped, matching the
// closure tape's nil-Grad check. Gradient accumulation order within each
// op is ported unchanged from the closure implementation, so gradients
// stay bit-identical to it.
func (t *Tape) step(r *rec) {
	out := t.at(r.out)
	if out.Grad == nil {
		return
	}
	switch r.op {
	case opMatMul:
		a, b := t.at(r.a), t.at(r.b)
		if a.needsGrad {
			tmp := t.tmpMat(out.Grad.Rows, b.Value.Rows)
			tensor.MatMulTransBInto(tmp, out.Grad, b.Value)
			tensor.AddInPlace(t.gradOf(a), tmp)
		}
		if b.needsGrad {
			tmp := t.tmpMat(a.Value.Cols, out.Grad.Cols)
			tensor.MatMulTransAInto(tmp, a.Value, out.Grad)
			tensor.AddInPlace(t.gradOf(b), tmp)
		}

	case opAdd:
		a, b := t.at(r.a), t.at(r.b)
		if a.needsGrad {
			tensor.AddInPlace(t.gradOf(a), out.Grad)
		}
		if b.needsGrad {
			tensor.AddInPlace(t.gradOf(b), out.Grad)
		}

	case opSub:
		a, b := t.at(r.a), t.at(r.b)
		if a.needsGrad {
			tensor.AddInPlace(t.gradOf(a), out.Grad)
		}
		if b.needsGrad {
			tensor.AxpyInPlace(t.gradOf(b), -1, out.Grad)
		}

	case opMul:
		a, b := t.at(r.a), t.at(r.b)
		if a.needsGrad {
			tmp := t.tmpMat(out.Grad.Rows, out.Grad.Cols)
			tensor.MulInto(tmp, out.Grad, b.Value)
			tensor.AddInPlace(t.gradOf(a), tmp)
		}
		if b.needsGrad {
			tmp := t.tmpMat(out.Grad.Rows, out.Grad.Cols)
			tensor.MulInto(tmp, out.Grad, a.Value)
			tensor.AddInPlace(t.gradOf(b), tmp)
		}

	case opScale:
		tensor.AxpyInPlace(t.gradOf(t.at(r.a)), r.s, out.Grad)

	case opAddRow:
		m, rv := t.at(r.a), t.at(r.b)
		if m.needsGrad {
			tensor.AddInPlace(t.gradOf(m), out.Grad)
		}
		if rv.needsGrad {
			g := t.gradOf(rv)
			for i := 0; i < out.Grad.Rows; i++ {
				row := out.Grad.Row(i)
				for j, v := range row {
					g.Data[j] += v
				}
			}
		}

	case opAddRowAct:
		// d = dL/d(pre-activation), derived from the output value with the
		// same association the unfused activation backward uses; it then
		// flows to m elementwise and to r as column sums, in the same
		// ascending-row order as AddRow's backward.
		m, rv := t.at(r.a), t.at(r.b)
		f := ActFn(r.act)
		var mg, rg *tensor.Matrix
		if m.needsGrad {
			mg = t.gradOf(m)
		}
		if rv.needsGrad {
			rg = t.gradOf(rv)
		}
		val := out.Value
		for i := 0; i < val.Rows; i++ {
			y := val.Row(i)
			dy := out.Grad.Row(i)
			var mrow []float64
			if mg != nil {
				mrow = mg.Row(i)
			}
			for j := range y {
				var d float64
				switch f {
				case ActIdentity:
					d = dy[j]
				case ActSigmoid:
					d = dy[j] * y[j] * (1 - y[j])
				case ActTanh:
					d = dy[j] * (1 - y[j]*y[j])
				case ActReLU:
					if y[j] > 0 {
						d = dy[j]
					}
				}
				if mrow != nil {
					mrow[j] += d
				}
				if rg != nil {
					rg.Data[j] += d
				}
			}
		}

	case opSigmoid:
		g := t.gradOf(t.at(r.a))
		for i, s := range out.Value.Data {
			g.Data[i] += out.Grad.Data[i] * s * (1 - s)
		}

	case opTanh:
		g := t.gradOf(t.at(r.a))
		for i, y := range out.Value.Data {
			g.Data[i] += out.Grad.Data[i] * (1 - y*y)
		}

	case opReLU:
		a := t.at(r.a)
		g := t.gradOf(a)
		for i, x := range a.Value.Data {
			if x > 0 {
				g.Data[i] += out.Grad.Data[i]
			}
		}

	case opLeakyReLU:
		a := t.at(r.a)
		g := t.gradOf(a)
		for i, x := range a.Value.Data {
			if x > 0 {
				g.Data[i] += out.Grad.Data[i]
			} else {
				g.Data[i] += r.s * out.Grad.Data[i]
			}
		}

	case opTranspose:
		tmp := t.tmpMat(out.Grad.Cols, out.Grad.Rows)
		tensor.TransposeInto(tmp, out.Grad)
		tensor.AddInPlace(t.gradOf(t.at(r.a)), tmp)

	case opSoftmaxRows:
		// Masked variants share this adjoint: masked entries carry
		// probability exactly 0, so their terms vanish on their own.
		g := t.gradOf(t.at(r.a))
		val := out.Value
		for i := 0; i < val.Rows; i++ {
			y := val.Row(i)
			dy := out.Grad.Row(i)
			var dot float64
			for j := range y {
				dot += y[j] * dy[j]
			}
			grow := g.Row(i)
			for j := range y {
				grow[j] += y[j] * (dy[j] - dot)
			}
		}

	case opConcatCols:
		args := t.auxArgs[r.x0 : r.x0+r.x1]
		off := 0
		for _, ai := range args {
			v := t.at(ai)
			w := v.Value.Cols
			if v.needsGrad {
				g := t.gradOf(v)
				for i := 0; i < out.Grad.Rows; i++ {
					src := out.Grad.Row(i)[off : off+w]
					dst := g.Row(i)
					for j, x := range src {
						dst[j] += x
					}
				}
			}
			off += w
		}

	case opConcatRows:
		args := t.auxArgs[r.x0 : r.x0+r.x1]
		off := 0
		for _, ai := range args {
			v := t.at(ai)
			n := v.Value.Rows * v.Value.Cols
			if v.needsGrad {
				g := t.gradOf(v)
				src := out.Grad.Data[off : off+n]
				for j, x := range src {
					g.Data[j] += x
				}
			}
			off += n
		}

	case opGatherRows:
		args := t.auxArgs[r.x0 : r.x0+r.x1]
		row := int(r.a)
		for k, ai := range args {
			v := t.at(ai)
			if !v.needsGrad {
				continue
			}
			dst := t.gradOf(v).Row(row)
			src := out.Grad.Row(k)
			for j, x := range src {
				dst[j] += x
			}
		}

	case opAddRowsAt:
		big, small := t.at(r.a), t.at(r.b)
		if big.needsGrad {
			g := t.gradOf(big)
			cols := out.Grad.Cols
			dst := g.Data[int(r.x0)*cols : int(r.x0)*cols+len(out.Grad.Data)]
			for i, x := range out.Grad.Data {
				dst[i] += x
			}
		}
		if small.needsGrad {
			tensor.AddInPlace(t.gradOf(small), out.Grad)
		}

	case opIm2ColRows:
		x := t.at(r.a)
		g := t.gradOf(x)
		width := int(r.x0)
		half := width / 2
		rows, cols := x.Value.Rows, x.Value.Cols
		for p := 0; p < rows; p++ {
			orow := out.Grad.Row(p)
			for k := 0; k < width; k++ {
				src := p + k - half
				if src < 0 || src >= rows {
					continue
				}
				dst := g.Row(src)
				seg := orow[k*cols : (k+1)*cols]
				for j, x := range seg {
					dst[j] += x
				}
			}
		}

	case opRowAt:
		dst := t.gradOf(t.at(r.a)).Row(int(r.x0))
		for j, x := range out.Grad.Data {
			dst[j] += x
		}

	case opSliceCols:
		g := t.gradOf(t.at(r.a))
		lo, hi := int(r.x0), int(r.x1)
		for i := 0; i < out.Grad.Rows; i++ {
			dst := g.Row(i)[lo:hi]
			src := out.Grad.Row(i)
			for j, x := range src {
				dst[j] += x
			}
		}

	case opMeanRowsMasked:
		g := t.gradOf(t.at(r.a))
		mask := t.auxMask[r.x0]
		for i, m := range mask {
			if !m {
				continue
			}
			dst := g.Row(i)
			for j, x := range out.Grad.Data {
				dst[j] += x / r.s
			}
		}

	case opSumAll:
		g := t.gradOf(t.at(r.a))
		d := out.Grad.Data[0]
		for i := range g.Data {
			g.Data[i] += d
		}

	case opMeanAll:
		g := t.gradOf(t.at(r.a))
		d := out.Grad.Data[0] / r.s
		for i := range g.Data {
			g.Data[i] += d
		}

	case opMSE:
		pred := t.at(r.a)
		target := t.auxMat[r.x0]
		g := t.gradOf(pred)
		d := out.Grad.Data[0]
		for i, p := range pred.Value.Data {
			g.Data[i] += d * 2 * (p - target.Data[i]) / r.s
		}

	case opDropout:
		g := t.gradOf(t.at(r.a))
		keep := t.auxMask[r.x0]
		for i := range g.Data {
			if keep[i] {
				g.Data[i] += out.Grad.Data[i] * r.s
			}
		}

	default:
		panic(fmt.Sprintf("autodiff: unknown opcode %d", r.op))
	}
}
