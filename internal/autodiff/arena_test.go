package autodiff

import (
	"math/rand"
	"testing"

	"raal/internal/tensor"
)

// mlpForward builds a small two-layer network with every fused op the
// model layers use: matmul, fused bias+activation, element-wise ops, and
// a scalar loss.
func mlpForward(tp *Tape, w1, b1, w2, b2 *Var, x *tensor.Matrix) *Var {
	h := tp.AddRowApply(tp.MatMul(tp.Const(x), w1), b1, ActTanh)
	y := tp.AddRowApply(tp.MatMul(h, w2), b2, ActIdentity)
	return tp.MeanAll(tp.Mul(y, y))
}

func arenaFixture(seed int64) (w1, b1, w2, b2, x *tensor.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	w1 = tensor.Randn(5, 7, 0.5, rng)
	b1 = tensor.Randn(1, 7, 0.5, rng)
	w2 = tensor.Randn(7, 3, 0.5, rng)
	b2 = tensor.Randn(1, 3, 0.5, rng)
	x = tensor.Randn(4, 5, 1, rng)
	return
}

// TestResetReusesArenaBitIdentical runs the same graph on one tape many
// times with Reset between passes and on a fresh tape each pass: values
// and gradients must match bit for bit — the arena may never change what
// is computed, only where it lives.
func TestResetReusesArenaBitIdentical(t *testing.T) {
	w1, b1, w2, b2, x := arenaFixture(3)

	pooled := NewTape()
	for pass := 0; pass < 5; pass++ {
		pooled.Reset()
		pv := [4]*Var{pooled.Param(w1), pooled.Param(b1), pooled.Param(w2), pooled.Param(b2)}
		ploss := mlpForward(pooled, pv[0], pv[1], pv[2], pv[3], x)
		pooled.Backward(ploss)

		fresh := NewTape()
		fv := [4]*Var{fresh.Param(w1), fresh.Param(b1), fresh.Param(w2), fresh.Param(b2)}
		floss := mlpForward(fresh, fv[0], fv[1], fv[2], fv[3], x)
		fresh.Backward(floss)

		if ploss.Value.Data[0] != floss.Value.Data[0] {
			t.Fatalf("pass %d: pooled loss %v != fresh loss %v", pass, ploss.Value.Data[0], floss.Value.Data[0])
		}
		for i := range pv {
			for j := range pv[i].Grad.Data {
				if pv[i].Grad.Data[j] != fv[i].Grad.Data[j] {
					t.Fatalf("pass %d: param %d grad[%d] pooled %v != fresh %v",
						pass, i, j, pv[i].Grad.Data[j], fv[i].Grad.Data[j])
				}
			}
		}
	}
}

// TestInferenceTapeMatchesTrainingTape pins that the no-grad tape computes
// bit-identical forward values while recording no nodes.
func TestInferenceTapeMatchesTrainingTape(t *testing.T) {
	w1, b1, w2, b2, x := arenaFixture(5)

	train := NewTape()
	trainLoss := mlpForward(train, train.Param(w1), train.Param(b1), train.Param(w2), train.Param(b2), x)

	inf := NewInferenceTape()
	infLoss := mlpForward(inf, inf.Param(w1), inf.Param(b1), inf.Param(w2), inf.Param(b2), x)

	if trainLoss.Value.Data[0] != infLoss.Value.Data[0] {
		t.Fatalf("inference value %v != training value %v", infLoss.Value.Data[0], trainLoss.Value.Data[0])
	}
	if train.Len() == 0 {
		t.Fatal("training tape should record nodes")
	}
	if inf.Len() != 0 {
		t.Fatalf("inference tape recorded %d nodes, want 0", inf.Len())
	}
}

// TestWarmTapeAllocatesNoMatrices is the arena's core guarantee: after one
// warm-up pass, repeating the same graph through Reset performs zero
// matrix allocations — every value and gradient comes from the free list.
func TestWarmTapeAllocatesNoMatrices(t *testing.T) {
	w1, b1, w2, b2, x := arenaFixture(9)
	tp := NewTape()
	// Params are persistent leaves, created once and reused across passes
	// (as nn.Param does in the real model); their gradients accumulate in
	// place, so the steady state has no leaf allocations either.
	pv := [4]*Var{tp.Param(w1), tp.Param(b1), tp.Param(w2), tp.Param(b2)}
	run := func() {
		tp.Reset()
		loss := mlpForward(tp, pv[0], pv[1], pv[2], pv[3], x)
		tp.Backward(loss)
	}
	run() // warm-up: populates the arena and the leaf gradients

	before := tensor.Allocs()
	for i := 0; i < 10; i++ {
		run()
	}
	if got := tensor.Allocs() - before; got != 0 {
		t.Fatalf("10 warm passes allocated %d matrices, want 0", got)
	}
}

// TestFusedAddRowApplyMatchesUnfused checks the fused bias+activation op
// against the unfused AddRow→activation pair: identical values and
// identical gradients, bit for bit, for every fused activation.
func TestFusedAddRowApplyMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := tensor.Randn(4, 6, 1, rng)
	r := tensor.Randn(1, 6, 1, rng)

	unfusedOf := func(tp *Tape, z, b *Var, f ActFn) *Var {
		s := tp.AddRow(z, b)
		switch f {
		case ActIdentity:
			return s
		case ActSigmoid:
			return tp.Sigmoid(s)
		case ActTanh:
			return tp.Tanh(s)
		case ActReLU:
			return tp.ReLU(s)
		}
		t.Fatalf("unknown ActFn %v", f)
		return nil
	}

	for _, f := range []ActFn{ActIdentity, ActSigmoid, ActTanh, ActReLU} {
		ft := NewTape()
		fm, fr := ft.Param(m), ft.Param(r)
		fused := ft.AddRowApply(fm, fr, f)
		ft.Backward(ft.MeanAll(ft.Mul(fused, fused)))

		ut := NewTape()
		um, ur := ut.Param(m), ut.Param(r)
		unfused := unfusedOf(ut, um, ur, f)
		ut.Backward(ut.MeanAll(ut.Mul(unfused, unfused)))

		for i := range fused.Value.Data {
			if fused.Value.Data[i] != unfused.Value.Data[i] {
				t.Fatalf("ActFn %v: fused value[%d] %v != unfused %v", f, i, fused.Value.Data[i], unfused.Value.Data[i])
			}
		}
		for i := range fm.Grad.Data {
			if fm.Grad.Data[i] != um.Grad.Data[i] {
				t.Fatalf("ActFn %v: fused m-grad[%d] %v != unfused %v", f, i, fm.Grad.Data[i], um.Grad.Data[i])
			}
		}
		for i := range fr.Grad.Data {
			if fr.Grad.Data[i] != ur.Grad.Data[i] {
				t.Fatalf("ActFn %v: fused bias-grad[%d] %v != unfused %v", f, i, fr.Grad.Data[i], ur.Grad.Data[i])
			}
		}
	}
}

// TestGradAddRowApply verifies the fused op against numeric gradients,
// independent of the unfused implementation.
func TestGradAddRowApply(t *testing.T) {
	for _, f := range []ActFn{ActIdentity, ActSigmoid, ActTanh} {
		ps := randParams(31, [2]int{3, 4}, [2]int{1, 4})
		checkGrad(t, ps, func(tp *Tape, vs []*Var) *Var {
			return tp.MeanAll(tp.AddRowApply(vs[0], vs[1], f))
		})
	}
	// ReLU is omitted: central differences straddle the kink at 0.
}

// TestNewMatrixRecycledAcrossReset pins the loan channel: tape-provided
// scratch matrices return to the arena on Reset and are handed out again.
func TestNewMatrixRecycledAcrossReset(t *testing.T) {
	tp := NewTape()
	m1 := tp.NewMatrix(3, 4)
	m1.Fill(42)
	tp.Reset()
	m2 := tp.NewMatrix(3, 4)
	if m2 != m1 {
		t.Fatal("NewMatrix after Reset should reuse the loaned matrix")
	}
	for _, v := range m2.Data {
		if v != 0 {
			t.Fatalf("recycled loan must come back zeroed, got %v", v)
		}
	}
}

// TestConstValueNotRecycled pins that Const never pools a caller-owned
// matrix: recycling it would let a later op silently overwrite caller
// state.
func TestConstValueNotRecycled(t *testing.T) {
	tp := NewTape()
	own := tensor.FromSlice(1, 2, []float64{1, 2})
	tp.Const(own)
	tp.Reset()
	got := tp.get(1, 2)
	if got == own {
		t.Fatal("Reset must not recycle a Const's caller-owned value")
	}
	if own.Data[0] != 1 || own.Data[1] != 2 {
		t.Fatalf("caller-owned matrix mutated: %v", own.Data)
	}
}
