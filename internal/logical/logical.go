// Package logical binds a parsed SELECT statement against a catalog and
// normalizes it into a query graph: base tables, per-table filter
// conjuncts, and equi-join edges. The query graph is what the physical
// planner enumerates over, mirroring how Catalyst's analyzed+optimized
// logical plan feeds physical planning. Binding also performs the classic
// logical rewrites the paper's substrate needs: predicate pushdown (filters
// are attached to their table), implicit-NULL guard insertion on join keys,
// and type checking.
package logical

import (
	"fmt"

	"raal/internal/catalog"
	"raal/internal/sql"
)

// BoundCol is a column resolved to a specific FROM-list table.
type BoundCol struct {
	Alias string // table alias in this query
	Table string // underlying catalog table
	Name  string
	Type  catalog.Type
}

func (b BoundCol) String() string { return b.Alias + "." + b.Name }

// JoinEdge is one equi-join predicate between two tables.
type JoinEdge struct {
	Left, Right BoundCol
}

func (j JoinEdge) String() string { return j.Left.String() + " = " + j.Right.String() }

// ThetaJoin is a non-equi join predicate between two tables (e.g.
// a.x < b.y); such joins can only execute as nested loops.
type ThetaJoin struct {
	Left, Right BoundCol
	Op          sql.CmpOp
}

func (t ThetaJoin) String() string {
	return fmt.Sprintf("%s %s %s", t.Left, t.Op, t.Right)
}

// BoundAgg is a select-list aggregate bound to a column (or * for COUNT).
type BoundAgg struct {
	Agg  sql.AggFunc
	Star bool
	Col  *BoundCol // nil for COUNT(*) and plain group-by columns
}

// Query is the bound, normalized form of a SELECT statement.
type Query struct {
	Stmt    *sql.SelectStmt
	Tables  []sql.TableRef            // FROM order preserved
	Filters map[string][]sql.Predicate // alias → pushed-down conjuncts
	Joins   []JoinEdge
	Thetas  []ThetaJoin
	Aggs    []BoundAgg
	GroupBy []BoundCol
	OrderBy *BoundCol
	Desc    bool
	Limit   int // -1 when absent
}

// Binder resolves statements against a database.
type Binder struct {
	db *catalog.Database
}

// NewBinder returns a Binder over db.
func NewBinder(db *catalog.Database) *Binder { return &Binder{db: db} }

// Bind validates stmt against the catalog and produces a query graph.
func (b *Binder) Bind(stmt *sql.SelectStmt) (*Query, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("logical: query has no FROM clause")
	}
	q := &Query{
		Stmt:    stmt,
		Tables:  stmt.From,
		Filters: map[string][]sql.Predicate{},
		Limit:   stmt.Limit,
	}
	aliasToTable := map[string]*catalog.Table{}
	for _, tr := range stmt.From {
		tab, err := b.db.Table(tr.Table)
		if err != nil {
			return nil, err
		}
		if _, dup := aliasToTable[tr.Alias]; dup {
			return nil, fmt.Errorf("logical: duplicate alias %q", tr.Alias)
		}
		aliasToTable[tr.Alias] = tab
	}

	resolve := func(ref sql.ColumnRef) (BoundCol, error) {
		if ref.Qualifier != "" {
			tab, ok := aliasToTable[ref.Qualifier]
			if !ok {
				return BoundCol{}, fmt.Errorf("logical: unknown alias %q in %s", ref.Qualifier, ref)
			}
			col, ok := tab.Schema.Col(ref.Name)
			if !ok {
				return BoundCol{}, fmt.Errorf("logical: table %s has no column %q", tab.Schema.Name, ref.Name)
			}
			return BoundCol{Alias: ref.Qualifier, Table: tab.Schema.Name, Name: ref.Name, Type: col.Type}, nil
		}
		var found *BoundCol
		for alias, tab := range aliasToTable {
			if col, ok := tab.Schema.Col(ref.Name); ok {
				if found != nil {
					return BoundCol{}, fmt.Errorf("logical: ambiguous column %q", ref.Name)
				}
				bc := BoundCol{Alias: alias, Table: tab.Schema.Name, Name: ref.Name, Type: col.Type}
				found = &bc
			}
		}
		if found == nil {
			return BoundCol{}, fmt.Errorf("logical: unknown column %q", ref.Name)
		}
		return *found, nil
	}

	// Bind WHERE conjuncts: join edges vs single-table filters.
	for _, p := range stmt.Where {
		switch pred := p.(type) {
		case *sql.Comparison:
			if pred.IsJoin() {
				l, err := resolve(pred.Left)
				if err != nil {
					return nil, err
				}
				r, err := resolve(*pred.RightCol)
				if err != nil {
					return nil, err
				}
				if l.Alias == r.Alias {
					// same-table comparison stays a filter
					q.Filters[l.Alias] = append(q.Filters[l.Alias], rewritten(pred, l))
					continue
				}
				if l.Type != r.Type {
					return nil, fmt.Errorf("logical: join type mismatch %s (%s) %s %s (%s)", l, l.Type, pred.Op, r, r.Type)
				}
				if pred.Op == sql.OpEq {
					q.Joins = append(q.Joins, JoinEdge{Left: l, Right: r})
				} else {
					if l.Type != catalog.Int64 {
						return nil, fmt.Errorf("logical: non-equi join requires integer columns, got %s", pred)
					}
					q.Thetas = append(q.Thetas, ThetaJoin{Left: l, Right: r, Op: pred.Op})
				}
				continue
			}
			bc, err := resolve(pred.Left)
			if err != nil {
				return nil, err
			}
			if bc.Type == catalog.Int64 && pred.Lit.IsStr || bc.Type == catalog.String && !pred.Lit.IsStr {
				return nil, fmt.Errorf("logical: type mismatch in %s (column is %s)", pred, bc.Type)
			}
			q.Filters[bc.Alias] = append(q.Filters[bc.Alias], rewritten(pred, bc))
		case *sql.Between:
			bc, err := resolve(pred.Col)
			if err != nil {
				return nil, err
			}
			if bc.Type != catalog.Int64 {
				return nil, fmt.Errorf("logical: BETWEEN on non-integer column %s", bc)
			}
			q.Filters[bc.Alias] = append(q.Filters[bc.Alias], &sql.Between{
				Col: sql.ColumnRef{Qualifier: bc.Alias, Name: bc.Name}, Lo: pred.Lo, Hi: pred.Hi})
		case *sql.In:
			bc, err := resolve(pred.Col)
			if err != nil {
				return nil, err
			}
			for _, v := range pred.Values {
				if bc.Type == catalog.Int64 && v.IsStr || bc.Type == catalog.String && !v.IsStr {
					return nil, fmt.Errorf("logical: type mismatch in %s", pred)
				}
			}
			q.Filters[bc.Alias] = append(q.Filters[bc.Alias], &sql.In{
				Col: sql.ColumnRef{Qualifier: bc.Alias, Name: bc.Name}, Values: pred.Values})
		case *sql.Like:
			bc, err := resolve(pred.Col)
			if err != nil {
				return nil, err
			}
			if bc.Type != catalog.String {
				return nil, fmt.Errorf("logical: LIKE on non-string column %s", bc)
			}
			q.Filters[bc.Alias] = append(q.Filters[bc.Alias], &sql.Like{
				Col: sql.ColumnRef{Qualifier: bc.Alias, Name: bc.Name}, Pattern: pred.Pattern})
		case *sql.NullCheck:
			bc, err := resolve(pred.Col)
			if err != nil {
				return nil, err
			}
			q.Filters[bc.Alias] = append(q.Filters[bc.Alias], &sql.NullCheck{
				Col: sql.ColumnRef{Qualifier: bc.Alias, Name: bc.Name}, Not: pred.Not})
		default:
			return nil, fmt.Errorf("logical: unsupported predicate %T", p)
		}
	}

	// Connectivity: every table must be reachable through join edges
	// (no cross products — the GPSJ workloads never produce them).
	if len(stmt.From) > 1 {
		if err := q.checkConnected(); err != nil {
			return nil, err
		}
	}

	// Bind GROUP BY first so select-list validation can consult it.
	for _, g := range stmt.GroupBy {
		bc, err := resolve(g)
		if err != nil {
			return nil, err
		}
		q.GroupBy = append(q.GroupBy, bc)
	}

	// Bind select list.
	for _, it := range stmt.Items {
		if it.Agg == sql.AggNone {
			bc, err := resolve(it.Col)
			if err != nil {
				return nil, err
			}
			inGroup := false
			for _, g := range q.GroupBy {
				if g == bc {
					inGroup = true
				}
			}
			if !inGroup {
				return nil, fmt.Errorf("logical: bare column %s must appear in GROUP BY", bc)
			}
			q.Aggs = append(q.Aggs, BoundAgg{Agg: sql.AggNone, Col: &bc})
			continue
		}
		if it.Star {
			q.Aggs = append(q.Aggs, BoundAgg{Agg: it.Agg, Star: true})
			continue
		}
		bc, err := resolve(it.Col)
		if err != nil {
			return nil, err
		}
		if (it.Agg == sql.AggSum || it.Agg == sql.AggAvg) && bc.Type != catalog.Int64 {
			return nil, fmt.Errorf("logical: %s over non-numeric column %s", it.Agg, bc)
		}
		q.Aggs = append(q.Aggs, BoundAgg{Agg: it.Agg, Col: &bc})
	}

	if stmt.OrderBy != nil {
		bc, err := resolve(stmt.OrderBy.Col)
		if err != nil {
			return nil, err
		}
		q.OrderBy = &bc
		q.Desc = stmt.OrderBy.Desc
	}
	return q, nil
}

// rewritten returns a copy of cmp with the left column fully qualified by
// its bound alias, so downstream layers never re-resolve.
func rewritten(cmp *sql.Comparison, bc BoundCol) *sql.Comparison {
	out := *cmp
	out.Left = sql.ColumnRef{Qualifier: bc.Alias, Name: bc.Name}
	if cmp.RightCol != nil {
		rc := *cmp.RightCol
		rc.Qualifier = bc.Alias
		out.RightCol = &rc
	}
	return &out
}

// checkConnected verifies the join graph spans all tables.
func (q *Query) checkConnected() error {
	adj := map[string][]string{}
	for _, j := range q.Joins {
		adj[j.Left.Alias] = append(adj[j.Left.Alias], j.Right.Alias)
		adj[j.Right.Alias] = append(adj[j.Right.Alias], j.Left.Alias)
	}
	for _, t := range q.Thetas {
		adj[t.Left.Alias] = append(adj[t.Left.Alias], t.Right.Alias)
		adj[t.Right.Alias] = append(adj[t.Right.Alias], t.Left.Alias)
	}
	seen := map[string]bool{q.Tables[0].Alias: true}
	stack := []string{q.Tables[0].Alias}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	for _, tr := range q.Tables {
		if !seen[tr.Alias] {
			return fmt.Errorf("logical: table %s is not connected by any join predicate (cross products unsupported)", tr.Alias)
		}
	}
	return nil
}

// JoinKeysFor returns the join columns of alias against tables already in
// joined, or nil if alias has no edge into the joined set.
func (q *Query) JoinKeysFor(alias string, joined map[string]bool) (left, right *BoundCol) {
	for i := range q.Joins {
		j := &q.Joins[i]
		if j.Left.Alias == alias && joined[j.Right.Alias] {
			return &j.Right, &j.Left // (already-joined side, new side)
		}
		if j.Right.Alias == alias && joined[j.Left.Alias] {
			return &j.Left, &j.Right
		}
	}
	return nil, nil
}

// ThetaJoinFor returns a non-equi join predicate connecting alias to the
// joined set: the joined-side column, the new-side column, and the
// comparison oriented as joinedCol op newCol. ok is false when no theta
// edge applies.
func (q *Query) ThetaJoinFor(alias string, joined map[string]bool) (left, right *BoundCol, op sql.CmpOp, ok bool) {
	for i := range q.Thetas {
		t := &q.Thetas[i]
		if t.Right.Alias == alias && joined[t.Left.Alias] {
			return &t.Left, &t.Right, t.Op, true
		}
		if t.Left.Alias == alias && joined[t.Right.Alias] {
			return &t.Right, &t.Left, t.Op.Flip(), true
		}
	}
	return nil, nil, 0, false
}
