package logical

import (
	"strings"
	"testing"

	"raal/internal/datagen"
	"raal/internal/sql"
)

func bindQuery(t *testing.T, query string) (*Query, error) {
	t.Helper()
	db := datagen.IMDB(0.02, 1)
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return NewBinder(db).Bind(stmt)
}

func mustBind(t *testing.T, query string) *Query {
	t.Helper()
	q, err := bindQuery(t, query)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	return q
}

func TestBindSingleTable(t *testing.T) {
	q := mustBind(t, `SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 100`)
	if len(q.Tables) != 1 || len(q.Joins) != 0 {
		t.Fatalf("tables %d joins %d", len(q.Tables), len(q.Joins))
	}
	if len(q.Filters["mk"]) != 1 {
		t.Fatalf("filters: %v", q.Filters)
	}
	if len(q.Aggs) != 1 || !q.Aggs[0].Star {
		t.Fatalf("aggs: %v", q.Aggs)
	}
}

func TestBindJoins(t *testing.T) {
	q := mustBind(t, `SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
		WHERE t.id = mc.movie_id AND t.id = mk.movie_id AND mc.company_id < 50`)
	if len(q.Joins) != 2 {
		t.Fatalf("joins: %v", q.Joins)
	}
	if q.Joins[0].Left.Table != "title" || q.Joins[0].Right.Table != "movie_companies" {
		t.Fatalf("join 0: %v", q.Joins[0])
	}
	if len(q.Filters["mc"]) != 1 {
		t.Fatalf("mc filters: %v", q.Filters["mc"])
	}
}

func TestBindUnqualifiedColumn(t *testing.T) {
	q := mustBind(t, `SELECT COUNT(*) FROM movie_keyword WHERE keyword_id < 10`)
	f := q.Filters["movie_keyword"]
	if len(f) != 1 {
		t.Fatalf("filters: %v", q.Filters)
	}
	cmp := f[0].(*sql.Comparison)
	if cmp.Left.Qualifier != "movie_keyword" {
		t.Fatalf("qualifier not filled: %v", cmp)
	}
}

func TestBindAmbiguousColumn(t *testing.T) {
	// movie_id exists in both movie_companies and movie_keyword.
	_, err := bindQuery(t, `SELECT COUNT(*) FROM movie_companies mc, movie_keyword mk
		WHERE mc.movie_id = mk.movie_id AND movie_id < 10`)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("want ambiguity error, got %v", err)
	}
}

func TestBindErrors(t *testing.T) {
	cases := map[string]string{
		`SELECT COUNT(*) FROM nonexistent`:                                                "no table",
		`SELECT COUNT(*) FROM title t WHERE t.ghost = 1`:                                  "no column",
		`SELECT COUNT(*) FROM title t WHERE t.title = 5`:                                  "type mismatch",
		`SELECT COUNT(*) FROM title t WHERE t.id = 'x'`:                                   "type mismatch",
		`SELECT COUNT(*) FROM title t, movie_keyword mk WHERE t.id > 5`:                   "not connected",
		`SELECT COUNT(*) FROM title t, company_name cn WHERE t.title < cn.name`:           "non-equi join requires integer",
		`SELECT COUNT(*) FROM title t, title t WHERE t.id = t.id`:                         "duplicate alias",
		`SELECT t.id FROM title t`:                                                        "GROUP BY",
		`SELECT SUM(t.title) FROM title t`:                                                "non-numeric",
		`SELECT COUNT(*) FROM title t WHERE t.title BETWEEN 1 AND 2`:                      "non-integer",
		`SELECT COUNT(*) FROM title t WHERE t.id LIKE 'x%'`:                               "non-string",
		`SELECT COUNT(*) FROM title t, movie_keyword mk WHERE t.id = mk.keyword_id AND t.title = mk.movie_id`: "", // first edge ok, second mismatch
	}
	for query, wantSub := range cases {
		_, err := bindQuery(t, query)
		if err == nil {
			t.Fatalf("Bind(%q) should fail", query)
		}
		if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("Bind(%q): error %q does not mention %q", query, err, wantSub)
		}
	}
}

func TestBindSameTableComparisonIsFilter(t *testing.T) {
	q := mustBind(t, `SELECT COUNT(*) FROM movie_companies mc WHERE mc.movie_id = mc.company_id`)
	if len(q.Joins) != 0 {
		t.Fatalf("same-table comparison treated as join: %v", q.Joins)
	}
	if len(q.Filters["mc"]) != 1 {
		t.Fatalf("filters: %v", q.Filters)
	}
}

func TestBindGroupByOrderByLimit(t *testing.T) {
	q := mustBind(t, `SELECT t.kind_id, COUNT(*) FROM title t GROUP BY t.kind_id ORDER BY t.kind_id DESC LIMIT 5`)
	if len(q.GroupBy) != 1 || q.GroupBy[0].Name != "kind_id" {
		t.Fatalf("group by: %v", q.GroupBy)
	}
	if q.OrderBy == nil || !q.Desc {
		t.Fatalf("order by: %v desc=%v", q.OrderBy, q.Desc)
	}
	if q.Limit != 5 {
		t.Fatalf("limit: %d", q.Limit)
	}
	if len(q.Aggs) != 2 || q.Aggs[0].Agg != sql.AggNone || q.Aggs[1].Agg != sql.AggCount {
		t.Fatalf("aggs: %v", q.Aggs)
	}
}

func TestJoinKeysFor(t *testing.T) {
	q := mustBind(t, `SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
		WHERE t.id = mc.movie_id AND t.id = mk.movie_id`)
	joined := map[string]bool{"t": true}
	l, r := q.JoinKeysFor("mc", joined)
	if l == nil || l.Alias != "t" || r.Alias != "mc" {
		t.Fatalf("keys: %v %v", l, r)
	}
	if l2, _ := q.JoinKeysFor("mk", map[string]bool{"mc": true}); l2 != nil {
		t.Fatal("mk has no edge to mc")
	}
}

func TestBindThetaJoin(t *testing.T) {
	q := mustBind(t, `SELECT COUNT(*) FROM title t, movie_keyword mk WHERE t.id < mk.movie_id`)
	if len(q.Joins) != 0 || len(q.Thetas) != 1 {
		t.Fatalf("joins %v thetas %v", q.Joins, q.Thetas)
	}
	th := q.Thetas[0]
	if th.Op != sql.OpLt || th.Left.Alias != "t" || th.Right.Alias != "mk" {
		t.Fatalf("theta: %v", th)
	}
}

func TestThetaJoinFor(t *testing.T) {
	q := mustBind(t, `SELECT COUNT(*) FROM title t, movie_keyword mk WHERE t.id < mk.movie_id`)
	// mk joins into {t}: orientation preserved.
	l, r, op, ok := q.ThetaJoinFor("mk", map[string]bool{"t": true})
	if !ok || l.Alias != "t" || r.Alias != "mk" || op != sql.OpLt {
		t.Fatalf("forward: %v %v %v %v", l, r, op, ok)
	}
	// t joins into {mk}: comparison must flip (t.id < mk.movie_id ⇔ mk.movie_id > t.id).
	l, r, op, ok = q.ThetaJoinFor("t", map[string]bool{"mk": true})
	if !ok || l.Alias != "mk" || r.Alias != "t" || op != sql.OpGt {
		t.Fatalf("flipped: %v %v %v %v", l, r, op, ok)
	}
	if _, _, _, ok = q.ThetaJoinFor("mk", map[string]bool{}); ok {
		t.Fatal("no joined set should find nothing")
	}
}

func TestBindStringPredicates(t *testing.T) {
	q := mustBind(t, `SELECT COUNT(*) FROM company_name cn
		WHERE cn.country_code = 'cc_0001' AND cn.name LIKE 'company%' AND cn.name IS NOT NULL`)
	if len(q.Filters["cn"]) != 3 {
		t.Fatalf("filters: %v", q.Filters["cn"])
	}
}
