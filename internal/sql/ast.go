package sql

import (
	"fmt"
	"strings"
)

// AggFunc is an aggregate function in a select list.
type AggFunc int

// Aggregate functions. AggNone marks a plain column reference.
const (
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (a AggFunc) String() string {
	switch a {
	case AggNone:
		return ""
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(a))
	}
}

// ColumnRef names a column, optionally qualified by a table alias.
type ColumnRef struct {
	Qualifier string // alias or table name; may be empty
	Name      string
}

func (c ColumnRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// SelectItem is one output expression: either an aggregate (possibly over
// *) or a bare column.
type SelectItem struct {
	Agg  AggFunc
	Star bool // COUNT(*)
	Col  ColumnRef
}

func (s SelectItem) String() string {
	if s.Agg == AggNone {
		return s.Col.String()
	}
	if s.Star {
		return s.Agg.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", s.Agg, s.Col)
}

// TableRef is a FROM-list entry.
type TableRef struct {
	Table string
	Alias string // equals Table when no alias was given
}

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(o))
	}
}

// Negate returns the complementary operator (e.g. < becomes >=).
func (o CmpOp) Negate() CmpOp {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	return o
}

// Flip returns the operator with sides swapped (e.g. a < b ⇔ b > a).
func (o CmpOp) Flip() CmpOp {
	switch o {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return o
}

// Literal is an int64 or string constant.
type Literal struct {
	IsStr bool
	I     int64
	S     string
}

func (l Literal) String() string {
	if l.IsStr {
		return "'" + l.S + "'"
	}
	return fmt.Sprintf("%d", l.I)
}

// IntLit returns an integer literal.
func IntLit(v int64) Literal { return Literal{I: v} }

// StrLit returns a string literal.
func StrLit(v string) Literal { return Literal{IsStr: true, S: v} }

// Predicate is one conjunct of a WHERE clause.
type Predicate interface {
	fmt.Stringer
	// Columns returns every column the predicate references.
	Columns() []ColumnRef
	isPredicate()
}

// Comparison is col op literal, or col op col (a join predicate).
type Comparison struct {
	Left    ColumnRef
	Op      CmpOp
	Lit     Literal
	RightCol *ColumnRef // non-nil for column-to-column comparisons
}

func (c *Comparison) isPredicate() {}

// IsJoin reports whether the comparison relates two columns.
func (c *Comparison) IsJoin() bool { return c.RightCol != nil }

func (c *Comparison) String() string {
	if c.RightCol != nil {
		return fmt.Sprintf("%s %s %s", c.Left, c.Op, *c.RightCol)
	}
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Lit)
}

// Columns implements Predicate.
func (c *Comparison) Columns() []ColumnRef {
	if c.RightCol != nil {
		return []ColumnRef{c.Left, *c.RightCol}
	}
	return []ColumnRef{c.Left}
}

// Between is col BETWEEN lo AND hi (integers only).
type Between struct {
	Col    ColumnRef
	Lo, Hi int64
}

func (b *Between) isPredicate() {}

func (b *Between) String() string {
	return fmt.Sprintf("%s BETWEEN %d AND %d", b.Col, b.Lo, b.Hi)
}

// Columns implements Predicate.
func (b *Between) Columns() []ColumnRef { return []ColumnRef{b.Col} }

// In is col IN (v1, v2, ...).
type In struct {
	Col    ColumnRef
	Values []Literal
}

func (i *In) isPredicate() {}

func (i *In) String() string {
	vals := make([]string, len(i.Values))
	for j, v := range i.Values {
		vals[j] = v.String()
	}
	return fmt.Sprintf("%s IN (%s)", i.Col, strings.Join(vals, ", "))
}

// Columns implements Predicate.
func (i *In) Columns() []ColumnRef { return []ColumnRef{i.Col} }

// Like is col LIKE pattern, with % wildcards at either end.
type Like struct {
	Col     ColumnRef
	Pattern string
}

func (l *Like) isPredicate() {}

func (l *Like) String() string { return fmt.Sprintf("%s LIKE '%s'", l.Col, l.Pattern) }

// Columns implements Predicate.
func (l *Like) Columns() []ColumnRef { return []ColumnRef{l.Col} }

// NullCheck is col IS [NOT] NULL. The synthetic data has no NULLs, so IS
// NOT NULL is always true and IS NULL always false; the planner still emits
// the Spark-style "isnotnull" guards that appear in physical plans.
type NullCheck struct {
	Col ColumnRef
	Not bool
}

func (n *NullCheck) isPredicate() {}

func (n *NullCheck) String() string {
	if n.Not {
		return fmt.Sprintf("%s IS NOT NULL", n.Col)
	}
	return fmt.Sprintf("%s IS NULL", n.Col)
}

// Columns implements Predicate.
func (n *NullCheck) Columns() []ColumnRef { return []ColumnRef{n.Col} }

// OrderItem is an ORDER BY entry.
type OrderItem struct {
	Col  ColumnRef
	Desc bool
}

// SelectStmt is a parsed single-block query.
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Where   []Predicate // conjuncts
	GroupBy []ColumnRef
	OrderBy *OrderItem
	Limit   int // -1 when absent
}

// HasAggregate reports whether any select item aggregates.
func (s *SelectStmt) HasAggregate() bool {
	for _, it := range s.Items {
		if it.Agg != AggNone {
			return true
		}
	}
	return false
}

func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.String())
	}
	sb.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.Table)
		if t.Alias != t.Table {
			sb.WriteString(" " + t.Alias)
		}
	}
	if len(s.Where) > 0 {
		sb.WriteString(" WHERE ")
		for i, p := range s.Where {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(p.String())
		}
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.OrderBy != nil {
		sb.WriteString(" ORDER BY " + s.OrderBy.Col.String())
		if s.OrderBy.Desc {
			sb.WriteString(" DESC")
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", s.Limit))
	}
	return sb.String()
}
