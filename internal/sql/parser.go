package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement.
func Parse(input string) (*SelectStmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	// optional trailing semicolon
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokIdent && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, got %s", strings.ToUpper(kw), p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("sql: expected %q, got %s", sym, p.peek())
	}
	return nil
}

var aggNames = map[string]AggFunc{
	"count": AggCount, "sum": AggSum, "avg": AggAvg, "min": AggMin, "max": AggMax,
}

// reserved words that cannot serve as table aliases.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "order": true,
	"by": true, "limit": true, "and": true, "or": true, "between": true,
	"in": true, "like": true, "is": true, "not": true, "null": true,
	"asc": true, "desc": true, "as": true,
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}

	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != tokIdent || reserved[t.text] {
			return nil, fmt.Errorf("sql: expected table name, got %s", t)
		}
		ref := TableRef{Table: t.text, Alias: t.text}
		p.acceptKeyword("as")
		if a := p.peek(); a.kind == tokIdent && !reserved[a.text] {
			ref.Alias = p.next().text
		}
		stmt.From = append(stmt.From, ref)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if p.acceptKeyword("where") {
		for {
			pred, err := p.predicate()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, pred)
			if !p.acceptKeyword("and") {
				break
			}
		}
	}

	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		col, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		item := OrderItem{Col: col}
		if p.acceptKeyword("desc") {
			item.Desc = true
		} else {
			p.acceptKeyword("asc")
		}
		stmt.OrderBy = &item
	}

	if p.acceptKeyword("limit") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: expected LIMIT count, got %s", t)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}

	return stmt, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokIdent {
		if agg, ok := aggNames[t.text]; ok && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			p.next() // agg name
			p.next() // (
			if p.acceptSymbol("*") {
				if agg != AggCount {
					return SelectItem{}, fmt.Errorf("sql: %s(*) is not supported", agg)
				}
				if err := p.expectSymbol(")"); err != nil {
					return SelectItem{}, err
				}
				return SelectItem{Agg: agg, Star: true}, nil
			}
			col, err := p.columnRef()
			if err != nil {
				return SelectItem{}, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Agg: agg, Col: col}, nil
		}
		col, err := p.columnRef()
		if err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Col: col}, nil
	}
	return SelectItem{}, fmt.Errorf("sql: expected select item, got %s", t)
}

func (p *parser) columnRef() (ColumnRef, error) {
	t := p.next()
	if t.kind != tokIdent || reserved[t.text] {
		return ColumnRef{}, fmt.Errorf("sql: expected column, got %s", t)
	}
	if p.acceptSymbol(".") {
		name := p.next()
		if name.kind != tokIdent {
			return ColumnRef{}, fmt.Errorf("sql: expected column after %q., got %s", t.text, name)
		}
		return ColumnRef{Qualifier: t.text, Name: name.text}, nil
	}
	return ColumnRef{Name: t.text}, nil
}

func (p *parser) literal() (Literal, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		// Fractional literals are scaled semantics we don't need; the
		// workloads use integers.
		if strings.Contains(t.text, ".") {
			return Literal{}, fmt.Errorf("sql: fractional literal %q not supported", t.text)
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Literal{}, fmt.Errorf("sql: bad number %q", t.text)
		}
		return IntLit(v), nil
	case tokString:
		return StrLit(t.text), nil
	default:
		return Literal{}, fmt.Errorf("sql: expected literal, got %s", t)
	}
}

var symbolOps = map[string]CmpOp{
	"=": OpEq, "!=": OpNe, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) predicate() (Predicate, error) {
	col, err := p.columnRef()
	if err != nil {
		return nil, err
	}

	t := p.peek()
	switch {
	case t.kind == tokSymbol && symbolOps[t.text] != 0 || t.kind == tokSymbol && t.text == "=":
		op := symbolOps[p.next().text]
		// Right side: literal or column.
		r := p.peek()
		if r.kind == tokIdent && !reserved[r.text] {
			rcol, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			return &Comparison{Left: col, Op: op, RightCol: &rcol}, nil
		}
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		return &Comparison{Left: col, Op: op, Lit: lit}, nil

	case t.kind == tokIdent && t.text == "between":
		p.next()
		lo, err := p.literal()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.literal()
		if err != nil {
			return nil, err
		}
		if lo.IsStr || hi.IsStr {
			return nil, fmt.Errorf("sql: BETWEEN requires integer bounds")
		}
		return &Between{Col: col, Lo: lo.I, Hi: hi.I}, nil

	case t.kind == tokIdent && t.text == "in":
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var vals []Literal
		for {
			lit, err := p.literal()
			if err != nil {
				return nil, err
			}
			vals = append(vals, lit)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &In{Col: col, Values: vals}, nil

	case t.kind == tokIdent && t.text == "like":
		p.next()
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		if !lit.IsStr {
			return nil, fmt.Errorf("sql: LIKE requires a string pattern")
		}
		return &Like{Col: col, Pattern: lit.S}, nil

	case t.kind == tokIdent && t.text == "is":
		p.next()
		not := p.acceptKeyword("not")
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return &NullCheck{Col: col, Not: not}, nil
	}
	return nil, fmt.Errorf("sql: expected predicate operator, got %s", t)
}
