package sql

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the parser pseudo-random token soups: it
// must return errors, never panic or hang.
func TestParserNeverPanics(t *testing.T) {
	words := []string{
		"SELECT", "FROM", "WHERE", "AND", "COUNT", "SUM", "GROUP", "BY",
		"ORDER", "LIMIT", "BETWEEN", "IN", "LIKE", "IS", "NOT", "NULL",
		"(", ")", ",", "*", ".", "=", "<", ">", "<=", ">=", "!=", "<>",
		"t", "a", "b", "movie_keyword", "5", "-3", "999999999", "'x'", "''",
		";", "count", "select",
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		n := 1 + rng.Intn(20)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = words[rng.Intn(len(words))]
		}
		input := strings.Join(parts, " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", input, r)
				}
			}()
			_, _ = Parse(input)
		}()
	}
}

// TestParserHandlesRandomBytes exercises the lexer with arbitrary bytes.
func TestParserHandlesRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(40)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Intn(128))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("lexer panicked on %q: %v", b, r)
				}
			}()
			_, _ = Parse(string(b))
		}()
	}
}

// TestParseValidQueriesAlwaysRoundTrip: any statement that parses must
// render to a string that parses to the same rendering (idempotence).
func TestParseValidQueriesAlwaysRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ops := []string{"=", "<", ">", "<=", ">=", "!="}
	for i := 0; i < 500; i++ {
		q := "SELECT COUNT(*) FROM t WHERE a " + ops[rng.Intn(len(ops))] +
			" " + string(rune('0'+rng.Intn(10)))
		if rng.Intn(2) == 0 {
			q += " AND b BETWEEN 1 AND " + string(rune('1'+rng.Intn(9)))
		}
		if rng.Intn(3) == 0 {
			q += " LIMIT " + string(rune('1'+rng.Intn(9)))
		}
		s1, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", s1.String(), err)
		}
		if s1.String() != s2.String() {
			t.Fatalf("not idempotent: %q vs %q", s1.String(), s2.String())
		}
	}
}
