package sql

import (
	"strings"
	"testing"
)

// FuzzParse drives the parser with arbitrary input: it must return an
// error or a statement, never panic and never hang. The seed corpus
// covers the workload generators' query shapes (JOB-style multi-join
// aggregates, string predicates, BETWEEN/IN/LIKE, ORDER/GROUP/LIMIT)
// plus known-tricky fragments. Run continuously with `make fuzz`; the
// seeds alone replay under plain `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Workload-generator shapes (see internal/workload/generator.go).
		"SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 500",
		"SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id AND mc.company_id < 50",
		"SELECT SUM(t.production_year) FROM title t, movie_keyword mk, movie_companies mc " +
			"WHERE t.id = mk.movie_id AND t.id = mc.movie_id AND mk.keyword_id = 120 AND t.production_year > 1990",
		"SELECT AVG(l.quantity) FROM lineitem l WHERE l.shipdate BETWEEN 100 AND 900",
		"SELECT MIN(o.totalprice), MAX(o.totalprice) FROM orders o, customer c WHERE o.custkey = c.custkey",
		"SELECT COUNT(*) FROM title t WHERE t.title LIKE 'The %'",
		"SELECT COUNT(*) FROM title t WHERE t.kind_id IN (1, 2, 7)",
		"SELECT COUNT(*) FROM title t WHERE t.production_year IS NOT NULL GROUP BY t.kind_id ORDER BY t.kind_id LIMIT 10",
		"SELECT name, COUNT(*) FROM company_name GROUP BY name;",
		// Tricky fragments: empties, bare keywords, unbalanced tokens.
		"",
		";",
		"SELECT",
		"SELECT * FROM",
		"SELECT COUNT( FROM t",
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a = ",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"SELECT a FROM t WHERE a IN ()",
		"SELECT a FROM t LIMIT -1",
		"select a from t where a <> 3",
		"SELECT a.b.c FROM t",
		"SELECT ((((",
		"\x00\x01\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		// Cap pathological inputs: the fuzzer can grow strings without
		// bound and the parser is O(n) — the property of interest is
		// "no panic", not throughput on megabyte inputs.
		if len(input) > 1<<16 {
			t.Skip()
		}
		stmt, err := Parse(input)
		if err != nil {
			if stmt != nil {
				t.Fatalf("Parse(%q) returned both a statement and %v", input, err)
			}
			return
		}
		// A statement that parsed must render without panicking, and the
		// rendering must itself be parsable (printer/parser closure).
		rendered := stmt.String()
		if _, err := Parse(rendered); err != nil {
			t.Fatalf("Parse(%q) succeeded but its rendering %q does not re-parse: %v",
				input, rendered, err)
		}
		if strings.TrimSpace(rendered) == "" {
			t.Fatalf("Parse(%q) rendered to empty", input)
		}
	})
}
