package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return stmt
}

func TestParsePaperQuery1(t *testing.T) {
	// The single-table query from Sec. III.
	stmt := mustParse(t, `SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 71692;`)
	if len(stmt.Items) != 1 || stmt.Items[0].Agg != AggCount || !stmt.Items[0].Star {
		t.Fatalf("items: %v", stmt.Items)
	}
	if len(stmt.From) != 1 || stmt.From[0].Table != "movie_keyword" || stmt.From[0].Alias != "mk" {
		t.Fatalf("from: %v", stmt.From)
	}
	cmp, ok := stmt.Where[0].(*Comparison)
	if !ok || cmp.Op != OpLt || cmp.Lit.I != 71692 || cmp.Left.Qualifier != "mk" {
		t.Fatalf("where: %v", stmt.Where)
	}
}

func TestParsePaperQuery4(t *testing.T) {
	// The three-table join query from Sec. III.
	stmt := mustParse(t, `SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
		WHERE t.id = mc.movie_id AND t.id = mk.movie_id
		AND mc.company_id = 43268 AND mk.keyword_id < 2560`)
	if len(stmt.From) != 3 {
		t.Fatalf("from: %v", stmt.From)
	}
	if len(stmt.Where) != 4 {
		t.Fatalf("where: %d conjuncts", len(stmt.Where))
	}
	joins := 0
	for _, p := range stmt.Where {
		if c, ok := p.(*Comparison); ok && c.IsJoin() {
			joins++
		}
	}
	if joins != 2 {
		t.Fatalf("join predicates: %d, want 2", joins)
	}
}

func TestParseAggregates(t *testing.T) {
	stmt := mustParse(t, `SELECT SUM(l_extendedprice), AVG(l_discount), MIN(l_quantity), MAX(l_quantity), COUNT(l_orderkey) FROM lineitem`)
	wantAggs := []AggFunc{AggSum, AggAvg, AggMin, AggMax, AggCount}
	for i, it := range stmt.Items {
		if it.Agg != wantAggs[i] {
			t.Fatalf("item %d agg = %v, want %v", i, it.Agg, wantAggs[i])
		}
	}
	if !stmt.HasAggregate() {
		t.Fatal("HasAggregate should be true")
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	stmt := mustParse(t, `SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment ORDER BY c_mktsegment DESC LIMIT 10`)
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0].Name != "c_mktsegment" {
		t.Fatalf("group by: %v", stmt.GroupBy)
	}
	if stmt.OrderBy == nil || !stmt.OrderBy.Desc {
		t.Fatalf("order by: %v", stmt.OrderBy)
	}
	if stmt.Limit != 10 {
		t.Fatalf("limit: %d", stmt.Limit)
	}
}

func TestParseStringPredicates(t *testing.T) {
	stmt := mustParse(t, `SELECT COUNT(*) FROM company_name cn
		WHERE cn.country_code = 'cc_0003' AND cn.name LIKE 'company%'
		AND cn.country_code IN ('cc_0001', 'cc_0002')`)
	if _, ok := stmt.Where[0].(*Comparison); !ok {
		t.Fatalf("pred 0: %T", stmt.Where[0])
	}
	like, ok := stmt.Where[1].(*Like)
	if !ok || like.Pattern != "company%" {
		t.Fatalf("pred 1: %v", stmt.Where[1])
	}
	in, ok := stmt.Where[2].(*In)
	if !ok || len(in.Values) != 2 || !in.Values[0].IsStr {
		t.Fatalf("pred 2: %v", stmt.Where[2])
	}
}

func TestParseBetweenAndNullChecks(t *testing.T) {
	stmt := mustParse(t, `SELECT COUNT(*) FROM title t
		WHERE t.production_year BETWEEN 1990 AND 2000
		AND t.kind_id IS NOT NULL AND t.id IS NULL`)
	b, ok := stmt.Where[0].(*Between)
	if !ok || b.Lo != 1990 || b.Hi != 2000 {
		t.Fatalf("between: %v", stmt.Where[0])
	}
	nn, ok := stmt.Where[1].(*NullCheck)
	if !ok || !nn.Not {
		t.Fatalf("is not null: %v", stmt.Where[1])
	}
	n, ok := stmt.Where[2].(*NullCheck)
	if !ok || n.Not {
		t.Fatalf("is null: %v", stmt.Where[2])
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	stmt := mustParse(t, `SELECT COUNT(*) FROM supplier WHERE s_acctbal > -500`)
	cmp := stmt.Where[0].(*Comparison)
	if cmp.Lit.I != -500 {
		t.Fatalf("literal: %v", cmp.Lit)
	}
}

func TestParseAllComparisonOps(t *testing.T) {
	ops := map[string]CmpOp{
		"=": OpEq, "!=": OpNe, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	}
	for sym, want := range ops {
		stmt := mustParse(t, `SELECT COUNT(*) FROM t WHERE a `+sym+` 5`)
		cmp := stmt.Where[0].(*Comparison)
		if cmp.Op != want {
			t.Fatalf("op %q parsed as %v, want %v", sym, cmp.Op, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, q := range []string{
		``,
		`FROM t`,
		`SELECT`,
		`SELECT * FROM`,
		`SELECT COUNT(* FROM t`,
		`SELECT COUNT(*) FROM t WHERE`,
		`SELECT COUNT(*) FROM t WHERE a`,
		`SELECT COUNT(*) FROM t WHERE a = `,
		`SELECT COUNT(*) FROM t WHERE a BETWEEN 'x' AND 'y'`,
		`SELECT COUNT(*) FROM t WHERE a LIKE 5`,
		`SELECT SUM(*) FROM t`,
		`SELECT COUNT(*) FROM t LIMIT abc`,
		`SELECT COUNT(*) FROM t extra garbage here ,`,
		`SELECT COUNT(*) FROM t WHERE a = 'unterminated`,
		`SELECT a.b.c FROM t`,
	} {
		if _, err := Parse(q); err == nil {
			t.Fatalf("Parse(%q) should fail", q)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	stmt := mustParse(t, `select count(*) from Title T where T.ID < 5`)
	if stmt.From[0].Table != "title" || stmt.From[0].Alias != "t" {
		t.Fatalf("case folding failed: %v", stmt.From)
	}
}

func TestStringLiteralPreservesCase(t *testing.T) {
	stmt := mustParse(t, `SELECT COUNT(*) FROM t WHERE a = 'MixedCase'`)
	cmp := stmt.Where[0].(*Comparison)
	if cmp.Lit.S != "MixedCase" {
		t.Fatalf("literal case not preserved: %q", cmp.Lit.S)
	}
}

func TestStmtStringRoundTrip(t *testing.T) {
	// Rendering then re-parsing must produce the same structure.
	queries := []string{
		`SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id AND mc.company_id < 100`,
		`SELECT c_mktsegment, SUM(c_acctbal) FROM customer WHERE c_acctbal > 0 GROUP BY c_mktsegment ORDER BY c_mktsegment LIMIT 5`,
	}
	for _, q := range queries {
		s1 := mustParse(t, q)
		s2 := mustParse(t, s1.String())
		if s1.String() != s2.String() {
			t.Fatalf("round trip changed:\n%s\n%s", s1, s2)
		}
	}
}

func TestCmpOpNegateFlip(t *testing.T) {
	if OpLt.Negate() != OpGe || OpEq.Negate() != OpNe {
		t.Fatal("Negate wrong")
	}
	if OpLt.Flip() != OpGt || OpLe.Flip() != OpGe || OpEq.Flip() != OpEq {
		t.Fatal("Flip wrong")
	}
}

func TestPredicateColumns(t *testing.T) {
	stmt := mustParse(t, `SELECT COUNT(*) FROM a, b WHERE a.x = b.y AND a.z > 3`)
	cols := stmt.Where[0].Columns()
	if len(cols) != 2 || cols[0].String() != "a.x" || cols[1].String() != "b.y" {
		t.Fatalf("join columns: %v", cols)
	}
	cols = stmt.Where[1].Columns()
	if len(cols) != 1 || cols[0].String() != "a.z" {
		t.Fatalf("filter columns: %v", cols)
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := Parse(`SELECT COUNT(*) FROM t WHERE a @ 3`); err == nil || !strings.Contains(err.Error(), "unexpected") {
		t.Fatalf("expected lexer error, got %v", err)
	}
}
