// Package sql implements a lexer, AST, and recursive-descent parser for the
// GPSJ (generalized projection / selection / join) query class the paper
// evaluates on: single-block SELECT statements with aggregates, inner
// equi-joins, conjunctive predicates over numeric and string attributes,
// GROUP BY, ORDER BY, and LIMIT.
package sql

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // identifiers are lowercased; keywords compare lowercased
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits input into tokens. Identifiers and keywords are lowercased;
// string literals keep their case.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(c):
			start := i
			for i < n && isIdentByte(input[i]) {
				i++
			}
			toks = append(toks, token{tokIdent, strings.ToLower(input[start:i]), start})
		case isASCIIDigit(c) || (c == '-' && i+1 < n && isASCIIDigit(input[i+1]) && startsValue(toks)):
			start := i
			if c == '-' {
				i++
			}
			for i < n && (isASCIIDigit(input[i]) || input[i] == '.') {
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for i < n && input[i] != '\'' {
				sb.WriteByte(input[i])
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			i++ // closing quote
			toks = append(toks, token{tokString, sb.String(), start})
		case c == '<' || c == '>' || c == '!':
			start := i
			i++
			if i < n && input[i] == '=' {
				i++
			} else if c == '<' && i < n && input[i] == '>' {
				i++
			} else if c == '!' {
				return nil, fmt.Errorf("sql: unexpected '!' at offset %d (use != or <>)", start)
			}
			toks = append(toks, token{tokSymbol, input[start:i], start})
		case strings.ContainsRune("=,().*;+-/%", rune(c)):
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

// Identifier bytes are strictly ASCII. Classifying raw bytes with the
// unicode package is a trap: rune(0xdf) is the letter 'ß', so a stray
// non-UTF-8 byte used to lex as an identifier whose ToLower rendering was
// no longer lexable — parse(render(parse(x))) diverged. Bytes ≥ 0x80 now
// fall through to the lexer's "unexpected character" error (they remain
// legal inside string literals, which are kept raw).
func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentByte(c byte) bool { return isIdentStart(c) || isASCIIDigit(c) }

func isASCIIDigit(c byte) bool { return '0' <= c && c <= '9' }

// startsValue reports whether the next token position can begin a value
// (so '-' starts a negative number rather than being a binary operator).
func startsValue(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	if last.kind == tokSymbol {
		switch last.text {
		case ")", "*":
			return false
		}
		return true
	}
	if last.kind == tokIdent {
		switch last.text {
		case "and", "or", "between", "in", "where", "like", "limit":
			return true
		}
	}
	return false
}
