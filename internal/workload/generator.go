// Package workload generates benchmark query workloads and collects
// training data for the deep cost models.
//
// It mirrors the paper's data collection phase (Sec. IV-B, Sec. V-A): for
// each benchmark it generates thousands of queries with 0–5 joins in two
// flavors — numeric-only predicates and predicates with string attributes —
// enumerates each query's candidate physical plans, executes them once to
// obtain true cardinalities, and then prices every plan under many resource
// states on the cluster simulator to produce (plan, resources, cost)
// records.
package workload

import (
	"fmt"
	"math/rand"

	"raal/internal/catalog"
)

// joinEdge is one joinable column pair in a benchmark's schema graph.
type joinEdge struct {
	leftTable, leftCol   string
	rightTable, rightCol string
}

// numericCol describes a column predicates can range over.
type numericCol struct {
	table, col string
	lo, hi     int64
}

// stringCol describes a string column with its value pool shape.
type stringCol struct {
	table, col, prefix string
	poolSize           int
}

// Generator produces random SQL query strings for one benchmark.
type Generator struct {
	rng      *rand.Rand
	edges    []joinEdge
	numerics map[string][]numericCol
	strings  map[string][]stringCol
	// StringProb is the probability a generated predicate uses a string
	// attribute (the paper's second workload type).
	StringProb float64
	// MaxJoins caps the number of join edges (paper: 0–5).
	MaxJoins int
}

// NewIMDBGenerator builds a generator for the synthetic IMDB schema. The
// db is consulted for live value ranges so predicates hit real data.
func NewIMDBGenerator(db *catalog.Database, seed int64) (*Generator, error) {
	g := &Generator{
		rng:        rand.New(rand.NewSource(seed)),
		StringProb: 0.25,
		MaxJoins:   5,
		numerics:   map[string][]numericCol{},
		strings:    map[string][]stringCol{},
	}
	g.edges = []joinEdge{
		{"title", "id", "movie_companies", "movie_id"},
		{"title", "id", "movie_keyword", "movie_id"},
		{"title", "id", "movie_info", "movie_id"},
		{"title", "id", "movie_info_idx", "movie_id"},
		{"title", "id", "cast_info", "movie_id"},
		{"company_name", "id", "movie_companies", "company_id"},
		{"keyword", "id", "movie_keyword", "keyword_id"},
	}
	numeric := []struct{ table, col string }{
		{"title", "kind_id"}, {"title", "production_year"},
		{"movie_companies", "company_id"}, {"movie_companies", "company_type_id"},
		{"movie_keyword", "keyword_id"},
		{"movie_info", "info_type_id"},
		{"movie_info_idx", "info_type_id"},
		{"cast_info", "person_id"}, {"cast_info", "role_id"},
	}
	for _, nc := range numeric {
		lo, hi, err := columnRange(db, nc.table, nc.col)
		if err != nil {
			return nil, err
		}
		g.numerics[nc.table] = append(g.numerics[nc.table], numericCol{nc.table, nc.col, lo, hi})
	}
	g.strings["company_name"] = []stringCol{
		{"company_name", "country_code", "cc", 80},
		{"company_name", "name", "company", 4000},
	}
	g.strings["movie_info"] = []stringCol{{"movie_info", "info", "info", 500}}
	g.strings["movie_info_idx"] = []stringCol{{"movie_info_idx", "info", "rating", 100}}
	g.strings["keyword"] = []stringCol{{"keyword", "keyword", "keyword", 8000}}
	g.strings["title"] = []stringCol{{"title", "title", "title", 2000}}
	return g, nil
}

// NewTPCHGenerator builds a generator for the synthetic TPC-H schema.
func NewTPCHGenerator(db *catalog.Database, seed int64) (*Generator, error) {
	g := &Generator{
		rng:        rand.New(rand.NewSource(seed)),
		StringProb: 0.25,
		MaxJoins:   5,
		numerics:   map[string][]numericCol{},
		strings:    map[string][]stringCol{},
	}
	g.edges = []joinEdge{
		{"orders", "o_orderkey", "lineitem", "l_orderkey"},
		{"customer", "c_custkey", "orders", "o_custkey"},
		{"nation", "n_nationkey", "customer", "c_nationkey"},
		{"region", "r_regionkey", "nation", "n_regionkey"},
		{"part", "p_partkey", "lineitem", "l_partkey"},
		{"supplier", "s_suppkey", "lineitem", "l_suppkey"},
		{"nation", "n_nationkey", "supplier", "s_nationkey"},
		{"part", "p_partkey", "partsupp", "ps_partkey"},
		{"supplier", "s_suppkey", "partsupp", "ps_suppkey"},
	}
	numeric := []struct{ table, col string }{
		{"lineitem", "l_quantity"}, {"lineitem", "l_extendedprice"},
		{"lineitem", "l_discount"}, {"lineitem", "l_shipdate"},
		{"orders", "o_totalprice"}, {"orders", "o_orderdate"},
		{"customer", "c_acctbal"},
		{"part", "p_size"}, {"part", "p_retailprice"},
		{"partsupp", "ps_availqty"}, {"partsupp", "ps_supplycost"},
		{"supplier", "s_acctbal"},
	}
	for _, nc := range numeric {
		lo, hi, err := columnRange(db, nc.table, nc.col)
		if err != nil {
			return nil, err
		}
		g.numerics[nc.table] = append(g.numerics[nc.table], numericCol{nc.table, nc.col, lo, hi})
	}
	g.strings["customer"] = []stringCol{{"customer", "c_mktsegment", "", 5}}
	g.strings["orders"] = []stringCol{{"orders", "o_orderpriority", "", 5}}
	g.strings["lineitem"] = []stringCol{{"lineitem", "l_returnflag", "", 3}}
	g.strings["part"] = []stringCol{
		{"part", "p_brand", "Brand", 25},
		{"part", "p_type", "type", 150},
	}
	return g, nil
}

func columnRange(db *catalog.Database, table, col string) (int64, int64, error) {
	t, err := db.Table(table)
	if err != nil {
		return 0, 0, err
	}
	vals, ok := t.Ints[col]
	if !ok || len(vals) == 0 {
		return 0, 0, fmt.Errorf("workload: %s.%s has no data", table, col)
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, nil
}

// Generate produces n random SQL strings.
func (g *Generator) Generate(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.GenerateOne()
	}
	return out
}

// GenerateOne produces one random query.
func (g *Generator) GenerateOne() string {
	joins := g.rng.Intn(g.MaxJoins + 1)

	// Grow a connected table set along schema edges.
	tables := []string{g.edges[g.rng.Intn(len(g.edges))].leftTable}
	if g.rng.Intn(2) == 0 {
		tables[0] = g.edges[g.rng.Intn(len(g.edges))].rightTable
	}
	in := map[string]bool{tables[0]: true}
	var joinPreds []string
	for len(tables) <= joins {
		candidates := make([]joinEdge, 0, len(g.edges))
		for _, e := range g.edges {
			if in[e.leftTable] != in[e.rightTable] { // extends the set
				candidates = append(candidates, e)
			}
		}
		if len(candidates) == 0 {
			break
		}
		e := candidates[g.rng.Intn(len(candidates))]
		newTable := e.leftTable
		if in[e.leftTable] {
			newTable = e.rightTable
		}
		in[newTable] = true
		tables = append(tables, newTable)
		joinPreds = append(joinPreds, fmt.Sprintf("%s.%s = %s.%s",
			e.leftTable, e.leftCol, e.rightTable, e.rightCol))
	}

	// Filters: 1-3 predicates over the chosen tables. Multi-join queries
	// get a selective equality predicate first (as the paper's JOB-style
	// queries do), which also keeps truth execution tractable.
	var filters []string
	if len(tables) >= 3 {
		t := tables[g.rng.Intn(len(tables))]
		if cols := g.numerics[t]; len(cols) > 0 {
			c := cols[g.rng.Intn(len(cols))]
			span := c.hi - c.lo
			if span <= 0 {
				span = 1
			}
			filters = append(filters, fmt.Sprintf("%s.%s = %d", c.table, c.col, c.lo+g.rng.Int63n(span+1)))
		}
	}
	nf := 1 + g.rng.Intn(3)
	for i := 0; i < nf; i++ {
		t := tables[g.rng.Intn(len(tables))]
		if p := g.predicateFor(t); p != "" {
			filters = append(filters, p)
		}
	}

	agg := g.aggregateFor(tables)
	sqlStr := "SELECT " + agg + " FROM "
	for i, t := range tables {
		if i > 0 {
			sqlStr += ", "
		}
		sqlStr += t
	}
	preds := append(joinPreds, filters...)
	if len(preds) > 0 {
		sqlStr += " WHERE " + preds[0]
		for _, p := range preds[1:] {
			sqlStr += " AND " + p
		}
	}
	return sqlStr
}

// predicateFor returns one random predicate over table t ("" if the table
// has no usable column of the drawn kind).
func (g *Generator) predicateFor(t string) string {
	if g.rng.Float64() < g.StringProb {
		if cols := g.strings[t]; len(cols) > 0 {
			return g.stringPredicate(cols[g.rng.Intn(len(cols))])
		}
	}
	cols := g.numerics[t]
	if len(cols) == 0 {
		return ""
	}
	c := cols[g.rng.Intn(len(cols))]
	span := c.hi - c.lo
	if span <= 0 {
		span = 1
	}
	v := c.lo + g.rng.Int63n(span+1)
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("%s.%s < %d", c.table, c.col, v)
	case 1:
		return fmt.Sprintf("%s.%s > %d", c.table, c.col, v)
	case 2:
		return fmt.Sprintf("%s.%s = %d", c.table, c.col, v)
	case 3:
		lo := c.lo + g.rng.Int63n(span+1)
		hi := lo + g.rng.Int63n(span/4+1)
		return fmt.Sprintf("%s.%s BETWEEN %d AND %d", c.table, c.col, lo, hi)
	default:
		return fmt.Sprintf("%s.%s <= %d", c.table, c.col, v)
	}
}

func (g *Generator) stringPredicate(c stringCol) string {
	pick := func() string {
		if c.prefix == "" {
			// enumerated domain columns: sample a live value shape
			switch c.col {
			case "c_mktsegment":
				return []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}[g.rng.Intn(5)]
			case "o_orderpriority":
				return []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}[g.rng.Intn(5)]
			case "l_returnflag":
				return []string{"R", "A", "N"}[g.rng.Intn(3)]
			}
			return "UNKNOWN"
		}
		return fmt.Sprintf("%s_%04d", c.prefix, g.rng.Intn(c.poolSize))
	}
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%s.%s = '%s'", c.table, c.col, pick())
	case 1:
		if c.prefix != "" {
			return fmt.Sprintf("%s.%s LIKE '%s_%d%%'", c.table, c.col, c.prefix, g.rng.Intn(10))
		}
		return fmt.Sprintf("%s.%s = '%s'", c.table, c.col, pick())
	default:
		return fmt.Sprintf("%s.%s IN ('%s', '%s')", c.table, c.col, pick(), pick())
	}
}

func (g *Generator) aggregateFor(tables []string) string {
	if g.rng.Float64() < 0.75 {
		return "COUNT(*)"
	}
	// aggregate over a numeric column of a participating table
	for _, t := range tables {
		if cols := g.numerics[t]; len(cols) > 0 {
			c := cols[g.rng.Intn(len(cols))]
			fn := []string{"SUM", "AVG", "MIN", "MAX"}[g.rng.Intn(4)]
			return fmt.Sprintf("%s(%s.%s)", fn, c.table, c.col)
		}
	}
	return "COUNT(*)"
}
