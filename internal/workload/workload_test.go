package workload

import (
	"math/rand"
	"strings"
	"testing"

	"raal/internal/datagen"
	"raal/internal/encode"
	"raal/internal/logical"
	"raal/internal/sql"
)

func TestIMDBGeneratorProducesValidSQL(t *testing.T) {
	db := datagen.IMDB(0.02, 1)
	g, err := NewIMDBGenerator(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	binder := logical.NewBinder(db)
	bound := 0
	for _, qs := range g.Generate(200) {
		stmt, err := sql.Parse(qs)
		if err != nil {
			t.Fatalf("generated unparsable SQL %q: %v", qs, err)
		}
		if _, err := binder.Bind(stmt); err != nil {
			t.Fatalf("generated unbindable SQL %q: %v", qs, err)
		}
		bound++
	}
	if bound != 200 {
		t.Fatalf("bound %d of 200", bound)
	}
}

func TestTPCHGeneratorProducesValidSQL(t *testing.T) {
	db := datagen.TPCH(0.05, 1)
	g, err := NewTPCHGenerator(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	binder := logical.NewBinder(db)
	for _, qs := range g.Generate(150) {
		stmt, err := sql.Parse(qs)
		if err != nil {
			t.Fatalf("generated unparsable SQL %q: %v", qs, err)
		}
		if _, err := binder.Bind(stmt); err != nil {
			t.Fatalf("generated unbindable SQL %q: %v", qs, err)
		}
	}
}

func TestGeneratorJoinCountsVary(t *testing.T) {
	db := datagen.IMDB(0.02, 1)
	g, _ := NewIMDBGenerator(db, 3)
	joinCounts := map[int]int{}
	for _, qs := range g.Generate(300) {
		joinCounts[strings.Count(qs, ",")]++ // FROM commas ≈ joins
	}
	if len(joinCounts) < 4 {
		t.Fatalf("join count diversity too low: %v", joinCounts)
	}
	if joinCounts[0] == 0 {
		t.Fatal("no single-table queries generated")
	}
}

func TestGeneratorEmitsStringPredicates(t *testing.T) {
	db := datagen.IMDB(0.02, 1)
	g, _ := NewIMDBGenerator(db, 4)
	g.StringProb = 0.9
	sawString := false
	for _, qs := range g.Generate(100) {
		if strings.Contains(qs, "'") {
			sawString = true
			break
		}
	}
	if !sawString {
		t.Fatal("no string-attribute predicates generated")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	db := datagen.IMDB(0.02, 1)
	g1, _ := NewIMDBGenerator(db, 7)
	g2, _ := NewIMDBGenerator(db, 7)
	a := g1.Generate(20)
	b := g2.Generate(20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestRandomResourcesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if err := RandomResources(rng).Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func collectSmall(t *testing.T) *Dataset {
	t.Helper()
	db := datagen.IMDB(0.02, 1)
	g, err := NewIMDBGenerator(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultCollectConfig()
	cfg.NumQueries = 30
	cfg.ResStatesPerPlan = 2
	ds, err := Collect(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestCollectProducesRecords(t *testing.T) {
	ds := collectSmall(t)
	if len(ds.Records) < 30 {
		t.Fatalf("too few records: %d", len(ds.Records))
	}
	if len(ds.Plans) < 30 {
		t.Fatalf("too few plans: %d", len(ds.Plans))
	}
	for _, r := range ds.Records {
		if r.CostSec <= 0 {
			t.Fatalf("non-positive cost %v", r.CostSec)
		}
		if err := r.Res.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCollectCostsVaryWithResources(t *testing.T) {
	// The same plan priced under different resources must differ in cost
	// for at least some plans — that's the resource signal RAAL learns.
	ds := collectSmall(t)
	byPlan := map[int][]float64{}
	for i, r := range ds.Records {
		_ = i
		key := 0
		for j, p := range ds.Plans {
			if p == r.Plan {
				key = j
				break
			}
		}
		byPlan[key] = append(byPlan[key], r.CostSec)
	}
	varied := 0
	for _, costs := range byPlan {
		if len(costs) >= 2 && costs[0] != costs[1] {
			varied++
		}
	}
	if varied == 0 {
		t.Fatal("no plan shows resource-dependent cost")
	}
}

func TestCollectFixedResources(t *testing.T) {
	db := datagen.IMDB(0.02, 1)
	g, _ := NewIMDBGenerator(db, 1)
	cfg := DefaultCollectConfig()
	cfg.NumQueries = 10
	fixed := RandomResources(rand.New(rand.NewSource(3)))
	cfg.FixedRes = &fixed
	ds, err := Collect(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Records {
		if r.Res != fixed {
			t.Fatal("fixed-resource collection produced varying resources")
		}
	}
	// Exactly one record per plan in fixed mode.
	if len(ds.Records) != len(ds.Plans) {
		t.Fatalf("records %d != plans %d", len(ds.Records), len(ds.Plans))
	}
}

func TestEncodeDataset(t *testing.T) {
	ds := collectSmall(t)
	enc, err := ds.FitEncoder(encode.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	samples := ds.Encode(enc)
	if len(samples) != len(ds.Records) {
		t.Fatalf("sample count %d != record count %d", len(samples), len(ds.Records))
	}
	for i, s := range samples {
		if s.CostSec != ds.Records[i].CostSec {
			t.Fatal("label not carried into sample")
		}
	}
}

func TestSplit(t *testing.T) {
	ds := collectSmall(t)
	enc, err := ds.FitEncoder(encode.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	samples := ds.Encode(enc)
	train, test := Split(samples, 0.8, 1)
	if len(train)+len(test) != len(samples) {
		t.Fatal("split loses samples")
	}
	if len(train) < len(test) {
		t.Fatalf("80/20 split wrong: %d/%d", len(train), len(test))
	}
	// Deterministic
	train2, _ := Split(samples, 0.8, 1)
	for i := range train {
		if train[i] != train2[i] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestCollectErrors(t *testing.T) {
	db := datagen.IMDB(0.02, 1)
	g, _ := NewIMDBGenerator(db, 1)
	cfg := DefaultCollectConfig()
	cfg.NumQueries = 0
	if _, err := Collect(db, g, cfg); err == nil {
		t.Fatal("zero queries should error")
	}
}
