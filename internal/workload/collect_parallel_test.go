package workload

import (
	"testing"

	"raal/internal/datagen"
	"raal/internal/sparksim"
)

// collectWith runs Collect over a fresh generator at the given worker
// count. Generators are stateful (they own an rng stream), so each run
// gets its own; the catalog is shared read-only.
func collectWith(t *testing.T, workers int) *Dataset {
	t.Helper()
	db := datagen.IMDB(0.02, 1)
	g, err := NewIMDBGenerator(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultCollectConfig()
	cfg.NumQueries = 40
	cfg.ResStatesPerPlan = 2
	cfg.Workers = workers
	ds, err := Collect(db, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestCollectWorkerCountInvariant is the contract the three-phase design
// exists to uphold: the collected dataset is bit-identical at any worker
// count. Query generation and resource/pricing draws stay sequential, so
// parallelism in the plan-execution phase must never leak into records.
func TestCollectWorkerCountInvariant(t *testing.T) {
	serial := collectWith(t, 1)
	for _, workers := range []int{2, 8} {
		par := collectWith(t, workers)
		if par.Skipped != serial.Skipped {
			t.Fatalf("workers=%d: Skipped %d != serial %d", workers, par.Skipped, serial.Skipped)
		}
		if len(par.Plans) != len(serial.Plans) {
			t.Fatalf("workers=%d: %d plans != serial %d", workers, len(par.Plans), len(serial.Plans))
		}
		for i := range par.Plans {
			if par.Plans[i].Sig != serial.Plans[i].Sig {
				t.Fatalf("workers=%d plan %d: sig %q != serial %q",
					workers, i, par.Plans[i].Sig, serial.Plans[i].Sig)
			}
		}
		if len(par.Records) != len(serial.Records) {
			t.Fatalf("workers=%d: %d records != serial %d", workers, len(par.Records), len(serial.Records))
		}
		for i := range par.Records {
			a, b := par.Records[i], serial.Records[i]
			if a.QueryID != b.QueryID || a.Plan.Sig != b.Plan.Sig ||
				a.Res != b.Res || a.CostSec != b.CostSec {
				t.Fatalf("workers=%d record %d differs:\n  parallel %+v (plan %s)\n  serial   %+v (plan %s)",
					workers, i, a, a.Plan.Sig, b, b.Plan.Sig)
			}
		}
	}
}

// TestCollectWorkerCountInvariantFixedRes covers the FixedRes branch,
// which consumes no rng draws in the pricing phase.
func TestCollectWorkerCountInvariantFixedRes(t *testing.T) {
	db := datagen.IMDB(0.02, 1)
	fixed := &sparksim.Resources{
		Nodes: 4, CoresPerNode: 4, Executors: 4, ExecCores: 2,
		ExecMemMB: 4096, NetMBps: 200, DiskMBps: 150,
	}
	run := func(workers int) *Dataset {
		g, err := NewIMDBGenerator(db, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultCollectConfig()
		cfg.NumQueries = 24
		cfg.FixedRes = fixed
		cfg.Workers = workers
		ds, err := Collect(db, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	serial, par := run(1), run(6)
	if len(par.Records) != len(serial.Records) {
		t.Fatalf("%d records != serial %d", len(par.Records), len(serial.Records))
	}
	for i := range par.Records {
		a, b := par.Records[i], serial.Records[i]
		if a.QueryID != b.QueryID || a.Plan.Sig != b.Plan.Sig || a.CostSec != b.CostSec {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
	}
}
