package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"raal/internal/cardest"
	"raal/internal/catalog"
	"raal/internal/encode"
	"raal/internal/engine"
	"raal/internal/logical"
	"raal/internal/physical"
	"raal/internal/sparksim"
	"raal/internal/sql"
)

// Record is one training observation: a physical plan executed under a
// resource allocation, with its simulated wall-clock cost.
type Record struct {
	QueryID int
	Plan    *physical.Plan
	Res     sparksim.Resources
	CostSec float64
}

// Dataset is a collected corpus plus the artifacts needed to encode it.
type Dataset struct {
	DB      *catalog.Database
	Est     *cardest.Estimator
	Records []Record
	Plans   []*physical.Plan // unique executed plans (for encoder fitting)
	Skipped int              // queries dropped due to bind/plan errors
}

// CollectConfig controls dataset collection.
type CollectConfig struct {
	NumQueries int
	// PlansPerQuery caps candidate plans evaluated per query (the paper
	// evaluates the first three Catalyst plans).
	PlansPerQuery int
	// ResStatesPerPlan is how many random resource states each plan is
	// priced under.
	ResStatesPerPlan int
	// FixedRes, when non-nil, replaces random resource states (the
	// paper's local fixed-resource setting for the TLSTM comparison).
	FixedRes *sparksim.Resources
	// MaxEngineRows bounds operator outputs during truth execution;
	// queries whose plans explode past it are skipped (0 = 2 million).
	MaxEngineRows int
	Seed          int64
	Sim           sparksim.Config
}

// DefaultCollectConfig returns the harness defaults (scaled down from the
// paper's 63K/50K records; see EXPERIMENTS.md).
func DefaultCollectConfig() CollectConfig {
	return CollectConfig{
		NumQueries:       400,
		PlansPerQuery:    3,
		ResStatesPerPlan: 3,
		Seed:             1,
		Sim:              sparksim.DefaultConfig(),
	}
}

// RandomResources draws a plausible allocation from the paper's resource
// grid: 1–8 executors, 1–4 cores, 1–14 GB, and varying throughputs.
func RandomResources(rng *rand.Rand) sparksim.Resources {
	return sparksim.Resources{
		Nodes:        4,
		CoresPerNode: 4,
		Executors:    1 + rng.Intn(8),
		ExecCores:    1 + rng.Intn(4),
		ExecMemMB:    float64(1+rng.Intn(14)) * 1024,
		NetMBps:      60 + float64(rng.Intn(10))*100,
		DiskMBps:     80 + float64(rng.Intn(8))*60,
		Dynamic:      rng.Float64() < 0.3,
	}
}

// Collect generates queries, enumerates and executes their candidate
// plans, and prices each plan under the configured resource states.
func Collect(db *catalog.Database, gen *Generator, cfg CollectConfig) (*Dataset, error) {
	if cfg.NumQueries <= 0 {
		return nil, fmt.Errorf("workload: NumQueries must be positive")
	}
	if cfg.PlansPerQuery <= 0 {
		cfg.PlansPerQuery = 3
	}
	if cfg.ResStatesPerPlan <= 0 {
		cfg.ResStatesPerPlan = 1
	}
	est, err := cardest.New(db, 32, 16)
	if err != nil {
		return nil, err
	}
	planner := physical.NewPlanner(est)
	eng := engine.New(db)
	eng.MaxRows = cfg.MaxEngineRows
	if eng.MaxRows == 0 {
		eng.MaxRows = 2_000_000
	}
	sim := sparksim.New(cfg.Sim)
	sim.Seed = cfg.Seed
	rng := rand.New(rand.NewSource(cfg.Seed + 7))

	ds := &Dataset{DB: db, Est: est}
	for qi := 0; qi < cfg.NumQueries; qi++ {
		qs := gen.GenerateOne()
		stmt, err := sql.Parse(qs)
		if err != nil {
			return nil, fmt.Errorf("workload: generated invalid SQL %q: %w", qs, err)
		}
		bound, err := logical.NewBinder(db).Bind(stmt)
		if err != nil {
			ds.Skipped++
			continue
		}
		plans, err := planner.Enumerate(bound)
		if err != nil {
			ds.Skipped++
			continue
		}
		if len(plans) > cfg.PlansPerQuery {
			plans = plans[:cfg.PlansPerQuery]
		}
		// Execute all plans first so an exploding query is skipped whole.
		exploded := false
		for _, p := range plans {
			if _, err := eng.Run(p); err != nil {
				if errors.Is(err, engine.ErrRowLimit) {
					exploded = true
					break
				}
				return nil, fmt.Errorf("workload: executing %q: %w", qs, err)
			}
		}
		if exploded {
			ds.Skipped++
			continue
		}
		for _, p := range plans {
			ds.Plans = append(ds.Plans, p)
			states := cfg.ResStatesPerPlan
			for s := 0; s < states; s++ {
				var res sparksim.Resources
				if cfg.FixedRes != nil {
					res = *cfg.FixedRes
					s = states // one state only
				} else {
					res = RandomResources(rng)
				}
				cost, err := sim.Estimate(p, res)
				if err != nil {
					return nil, err
				}
				ds.Records = append(ds.Records, Record{QueryID: qi, Plan: p, Res: res, CostSec: cost})
			}
		}
	}
	if len(ds.Records) == 0 {
		return nil, fmt.Errorf("workload: no records collected (%d queries skipped)", ds.Skipped)
	}
	return ds, nil
}

// FitEncoder fits a feature encoder on the dataset's plans.
func (d *Dataset) FitEncoder(cfg encode.Config) (*encode.Encoder, error) {
	return encode.Fit(d.Plans, cfg)
}

// Encode converts all records into training samples.
func (d *Dataset) Encode(enc *encode.Encoder) []*encode.Sample {
	out := make([]*encode.Sample, len(d.Records))
	for i, r := range d.Records {
		s := enc.EncodePlan(r.Plan, r.Res)
		s.CostSec = r.CostSec
		out[i] = s
	}
	return out
}

// Split shuffles samples and splits them into train/test by trainFrac
// (the paper uses 80/20).
func Split(samples []*encode.Sample, trainFrac float64, seed int64) (train, test []*encode.Sample) {
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	cut := int(float64(len(samples)) * trainFrac)
	for i, j := range idx {
		if i < cut {
			train = append(train, samples[j])
		} else {
			test = append(test, samples[j])
		}
	}
	return train, test
}

// SplitRecords splits the raw records (useful when train/test must not
// share plans).
func (d *Dataset) SplitRecords(trainFrac float64, seed int64) (train, test []Record) {
	idx := make([]int, len(d.Records))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	cut := int(float64(len(idx)) * trainFrac)
	for i, j := range idx {
		if i < cut {
			train = append(train, d.Records[j])
		} else {
			test = append(test, d.Records[j])
		}
	}
	return train, test
}
