package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"raal/internal/cardest"
	"raal/internal/catalog"
	"raal/internal/encode"
	"raal/internal/engine"
	"raal/internal/logical"
	"raal/internal/physical"
	"raal/internal/sparksim"
	"raal/internal/sql"
)

// Record is one training observation: a physical plan executed under a
// resource allocation, with its simulated wall-clock cost.
type Record struct {
	QueryID int
	Plan    *physical.Plan
	Res     sparksim.Resources
	CostSec float64
}

// Dataset is a collected corpus plus the artifacts needed to encode it.
type Dataset struct {
	DB      *catalog.Database
	Est     *cardest.Estimator
	Records []Record
	Plans   []*physical.Plan // unique executed plans (for encoder fitting)
	Skipped int              // queries dropped due to bind/plan errors
}

// CollectConfig controls dataset collection.
type CollectConfig struct {
	NumQueries int
	// PlansPerQuery caps candidate plans evaluated per query (the paper
	// evaluates the first three Catalyst plans).
	PlansPerQuery int
	// ResStatesPerPlan is how many random resource states each plan is
	// priced under.
	ResStatesPerPlan int
	// FixedRes, when non-nil, replaces random resource states (the
	// paper's local fixed-resource setting for the TLSTM comparison).
	FixedRes *sparksim.Resources
	// MaxEngineRows bounds operator outputs during truth execution;
	// queries whose plans explode past it are skipped (0 = 2 million).
	MaxEngineRows int
	// Workers bounds the goroutines that parse, bind, plan, and execute
	// queries concurrently (0 = GOMAXPROCS, capped at 8; 1 = serial).
	// The collected records are bit-identical at any worker count.
	Workers int
	Seed    int64
	Sim     sparksim.Config
}

// DefaultCollectConfig returns the harness defaults (scaled down from the
// paper's 63K/50K records; see EXPERIMENTS.md).
func DefaultCollectConfig() CollectConfig {
	return CollectConfig{
		NumQueries:       400,
		PlansPerQuery:    3,
		ResStatesPerPlan: 3,
		Seed:             1,
		Sim:              sparksim.DefaultConfig(),
	}
}

// RandomResources draws a plausible allocation from the paper's resource
// grid: 1–8 executors, 1–4 cores, 1–14 GB, and varying throughputs.
func RandomResources(rng *rand.Rand) sparksim.Resources {
	return sparksim.Resources{
		Nodes:        4,
		CoresPerNode: 4,
		Executors:    1 + rng.Intn(8),
		ExecCores:    1 + rng.Intn(4),
		ExecMemMB:    float64(1+rng.Intn(14)) * 1024,
		NetMBps:      60 + float64(rng.Intn(10))*100,
		DiskMBps:     80 + float64(rng.Intn(8))*60,
		Dynamic:      rng.Float64() < 0.3,
	}
}

// planned is the per-query outcome of the parallel phase.
type planned struct {
	qs    string
	plans []*physical.Plan
	skip  bool
	err   error
}

// Collect generates queries, enumerates and executes their candidate
// plans, and prices each plan under the configured resource states.
//
// Collection runs in three phases so the dataset is bit-identical at any
// worker count: (1) query generation is sequential (it owns the
// generator's rng stream); (2) parse → bind → plan → truth-execute runs
// under a bounded worker pool — the expensive part, and safe because the
// streaming engine, the planner, and the cardinality estimator are all
// concurrency-clean; (3) resource draws and simulator pricing replay
// sequentially in query order, preserving the shared rng's consumption
// order exactly as the old serial loop did.
func Collect(db *catalog.Database, gen *Generator, cfg CollectConfig) (*Dataset, error) {
	if cfg.NumQueries <= 0 {
		return nil, fmt.Errorf("workload: NumQueries must be positive")
	}
	if cfg.PlansPerQuery <= 0 {
		cfg.PlansPerQuery = 3
	}
	if cfg.ResStatesPerPlan <= 0 {
		cfg.ResStatesPerPlan = 1
	}
	est, err := cardest.New(db, 32, 16)
	if err != nil {
		return nil, err
	}
	planner := physical.NewPlanner(est)
	eng := engine.New(db)
	eng.MaxRows = cfg.MaxEngineRows
	if eng.MaxRows == 0 {
		eng.MaxRows = 2_000_000
	}
	sim := sparksim.New(cfg.Sim)
	sim.Seed = cfg.Seed
	rng := rand.New(rand.NewSource(cfg.Seed + 7))

	// Phase 1: sequential query generation.
	queries := make([]string, cfg.NumQueries)
	for qi := range queries {
		queries[qi] = gen.GenerateOne()
	}

	// Phase 2: parallel plan + truth execution.
	results := make([]planned, cfg.NumQueries)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	if workers > cfg.NumQueries {
		workers = cfg.NumQueries
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range idx {
				results[qi] = planOne(db, planner, eng, queries[qi], cfg.PlansPerQuery)
			}
		}()
	}
	for qi := range queries {
		idx <- qi
	}
	close(idx)
	wg.Wait()

	// Phase 3: sequential pricing in query order (owns the shared rng).
	ds := &Dataset{DB: db, Est: est}
	for qi := range results {
		r := &results[qi]
		if r.err != nil {
			return nil, r.err
		}
		if r.skip {
			ds.Skipped++
			continue
		}
		for _, p := range r.plans {
			ds.Plans = append(ds.Plans, p)
			states := cfg.ResStatesPerPlan
			for s := 0; s < states; s++ {
				var res sparksim.Resources
				if cfg.FixedRes != nil {
					res = *cfg.FixedRes
					s = states // one state only
				} else {
					res = RandomResources(rng)
				}
				cost, err := sim.Estimate(p, res)
				if err != nil {
					return nil, err
				}
				ds.Records = append(ds.Records, Record{QueryID: qi, Plan: p, Res: res, CostSec: cost})
			}
		}
	}
	if len(ds.Records) == 0 {
		return nil, fmt.Errorf("workload: no records collected (%d queries skipped)", ds.Skipped)
	}
	return ds, nil
}

// planOne parses, binds, plans, and truth-executes one generated query.
func planOne(db *catalog.Database, planner *physical.Planner, eng *engine.Engine, qs string, plansPer int) planned {
	stmt, err := sql.Parse(qs)
	if err != nil {
		return planned{qs: qs, err: fmt.Errorf("workload: generated invalid SQL %q: %w", qs, err)}
	}
	bound, err := logical.NewBinder(db).Bind(stmt)
	if err != nil {
		return planned{qs: qs, skip: true}
	}
	plans, err := planner.Enumerate(bound)
	if err != nil {
		return planned{qs: qs, skip: true}
	}
	if len(plans) > plansPer {
		plans = plans[:plansPer]
	}
	// Execute all plans first so an exploding query is skipped whole.
	for _, p := range plans {
		if _, err := eng.Run(p); err != nil {
			if errors.Is(err, engine.ErrRowLimit) {
				return planned{qs: qs, skip: true}
			}
			return planned{qs: qs, err: fmt.Errorf("workload: executing %q: %w", qs, err)}
		}
	}
	return planned{qs: qs, plans: plans}
}

// FitEncoder fits a feature encoder on the dataset's plans.
func (d *Dataset) FitEncoder(cfg encode.Config) (*encode.Encoder, error) {
	return encode.Fit(d.Plans, cfg)
}

// Encode converts all records into training samples.
func (d *Dataset) Encode(enc *encode.Encoder) []*encode.Sample {
	out := make([]*encode.Sample, len(d.Records))
	for i, r := range d.Records {
		s := enc.EncodePlan(r.Plan, r.Res)
		s.CostSec = r.CostSec
		out[i] = s
	}
	return out
}

// Split shuffles samples and splits them into train/test by trainFrac
// (the paper uses 80/20).
func Split(samples []*encode.Sample, trainFrac float64, seed int64) (train, test []*encode.Sample) {
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	cut := int(float64(len(samples)) * trainFrac)
	for i, j := range idx {
		if i < cut {
			train = append(train, samples[j])
		} else {
			test = append(test, samples[j])
		}
	}
	return train, test
}

// SplitRecords splits the raw records (useful when train/test must not
// share plans).
func (d *Dataset) SplitRecords(trainFrac float64, seed int64) (train, test []Record) {
	idx := make([]int, len(d.Records))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	cut := int(float64(len(idx)) * trainFrac)
	for i, j := range idx {
		if i < cut {
			train = append(train, d.Records[j])
		} else {
			test = append(test, d.Records[j])
		}
	}
	return train, test
}
