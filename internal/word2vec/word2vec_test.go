package word2vec

import (
	"math"
	"math/rand"
	"testing"
)

// clusterCorpus builds sentences from two disjoint token groups so that
// words within a group co-occur and words across groups never do.
func clusterCorpus(rng *rand.Rand, n int) [][]string {
	groupA := []string{"scan", "filter", "project", "table_a"}
	groupB := []string{"join", "shuffle", "sort", "table_b"}
	var out [][]string
	for i := 0; i < n; i++ {
		g := groupA
		if i%2 == 1 {
			g = groupB
		}
		s := make([]string, 6)
		for j := range s {
			s[j] = g[rng.Intn(len(g))]
		}
		out = append(out, s)
	}
	return out
}

func TestTrainSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	corpus := clusterCorpus(rng, 400)
	cfg := DefaultConfig()
	cfg.Epochs = 10
	m, err := Train(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	intra := m.Similarity("scan", "filter")
	inter := m.Similarity("scan", "join")
	if intra <= inter {
		t.Fatalf("intra-cluster similarity %v should exceed inter-cluster %v", intra, inter)
	}
	intra2 := m.Similarity("join", "sort")
	inter2 := m.Similarity("filter", "shuffle")
	if intra2 <= inter2 {
		t.Fatalf("intra-cluster similarity %v should exceed inter-cluster %v", intra2, inter2)
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	corpus := clusterCorpus(rng, 50)
	cfg := DefaultConfig()
	cfg.Epochs = 2
	m1, err := Train(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for w, i := range m1.Vocab {
		j := m2.Vocab[w]
		for d := range m1.In[i] {
			if m1.In[i][d] != m2.In[j][d] {
				t.Fatalf("training not deterministic for %q", w)
			}
		}
	}
}

func TestVectorOOV(t *testing.T) {
	m, err := Train([][]string{{"a", "b", "a", "b"}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Vector("zzz") != nil {
		t.Fatal("OOV should return nil")
	}
	if m.Vector("a") == nil {
		t.Fatal("in-vocab word should return a vector")
	}
}

func TestEmbedAverages(t *testing.T) {
	m, err := Train([][]string{{"a", "b", "a", "b", "c", "a"}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	va, vb := m.Vector("a"), m.Vector("b")
	got := m.Embed([]string{"a", "b", "zzz"}) // OOV token ignored
	for d := range got {
		want := (va[d] + vb[d]) / 2
		if math.Abs(got[d]-want) > 1e-12 {
			t.Fatalf("Embed[%d] = %v want %v", d, got[d], want)
		}
	}
}

func TestEmbedAllOOVIsZero(t *testing.T) {
	m, err := Train([][]string{{"a", "b", "a", "b"}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Embed([]string{"x", "y"}) {
		if v != 0 {
			t.Fatal("all-OOV embedding should be zero")
		}
	}
}

func TestEmptyCorpusError(t *testing.T) {
	if _, err := Train(nil, DefaultConfig()); err == nil {
		t.Fatal("expected error for empty corpus")
	}
	if _, err := Train([][]string{{"only"}}, DefaultConfig()); err == nil {
		t.Fatal("expected error: single-token sentences cannot be trained")
	}
}

func TestMinCountFiltersRareWords(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinCount = 3
	corpus := [][]string{
		{"common", "common", "rare"},
		{"common", "common", "other"},
	}
	m, err := Train(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Vector("rare") != nil {
		t.Fatal("rare word should be filtered by MinCount")
	}
	if m.Vector("common") == nil {
		t.Fatal("common word should be kept")
	}
}

func TestInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 0
	if _, err := Train([][]string{{"a", "b"}}, cfg); err == nil {
		t.Fatal("expected error for Dim=0")
	}
}

func TestCosine(t *testing.T) {
	if c := Cosine([]float64{1, 0}, []float64{1, 0}); math.Abs(c-1) > 1e-12 {
		t.Fatalf("cosine of identical vectors = %v", c)
	}
	if c := Cosine([]float64{1, 0}, []float64{0, 1}); math.Abs(c) > 1e-12 {
		t.Fatalf("cosine of orthogonal vectors = %v", c)
	}
	if c := Cosine([]float64{0, 0}, []float64{1, 1}); c != 0 {
		t.Fatalf("cosine with zero vector = %v", c)
	}
}

func TestSimilarityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := Train(clusterCorpus(rng, 100), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range m.Words {
		for _, b := range m.Words {
			s := m.Similarity(a, b)
			if s < -1.0000001 || s > 1.0000001 {
				t.Fatalf("similarity(%q,%q)=%v outside [-1,1]", a, b, s)
			}
		}
	}
}
