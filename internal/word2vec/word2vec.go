// Package word2vec implements skip-gram word embeddings with negative
// sampling (Mikolov et al., 2013).
//
// The paper (Sec. IV-C) embeds each operator's execution statement with
// word2vec so that semantically similar plan nodes land close together in
// embedding space — something one-hot encoding cannot do. Tokens here are
// the pieces of physical-plan statements: operation names, table and column
// identifiers, comparison operators, and bucketed literals.
package word2vec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config controls training.
type Config struct {
	Dim        int     // embedding dimensionality
	Window     int     // context window radius
	Negatives  int     // negative samples per positive pair
	Epochs     int     // passes over the corpus
	LR         float64 // initial learning rate (linearly decayed)
	MinCount   int     // drop tokens rarer than this
	Seed      int64 // RNG seed; training is deterministic given it
	TableBits int   // log2 size of the negative-sampling table
}

// DefaultConfig returns sensible defaults for plan-statement corpora.
func DefaultConfig() Config {
	return Config{Dim: 16, Window: 4, Negatives: 5, Epochs: 8, LR: 0.05, MinCount: 1, Seed: 1, TableBits: 16}
}

// Model holds trained embeddings.
type Model struct {
	Dim   int
	Vocab map[string]int
	Words []string
	In    [][]float64 // input embeddings — the vectors served to callers
	out   [][]float64 // context embeddings, training-only
}

// Train learns embeddings from tokenized sentences. It returns an error if
// the corpus is empty after MinCount filtering or the config is invalid.
func Train(sentences [][]string, cfg Config) (*Model, error) {
	if cfg.Dim <= 0 || cfg.Window <= 0 || cfg.Epochs <= 0 || cfg.LR <= 0 {
		return nil, fmt.Errorf("word2vec: invalid config %+v", cfg)
	}
	if cfg.Negatives <= 0 {
		cfg.Negatives = 5
	}
	if cfg.TableBits <= 0 {
		cfg.TableBits = 16
	}

	counts := map[string]int{}
	for _, s := range sentences {
		for _, w := range s {
			counts[w]++
		}
	}
	var words []string
	for w, c := range counts {
		if c >= cfg.MinCount {
			words = append(words, w)
		}
	}
	if len(words) == 0 {
		return nil, fmt.Errorf("word2vec: empty vocabulary (corpus has %d sentences)", len(sentences))
	}
	sort.Strings(words) // deterministic vocab order
	vocab := make(map[string]int, len(words))
	for i, w := range words {
		vocab[w] = i
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Dim: cfg.Dim, Vocab: vocab, Words: words}
	m.In = make([][]float64, len(words))
	m.out = make([][]float64, len(words))
	for i := range words {
		m.In[i] = make([]float64, cfg.Dim)
		m.out[i] = make([]float64, cfg.Dim)
		for d := range m.In[i] {
			m.In[i][d] = (rng.Float64() - 0.5) / float64(cfg.Dim)
		}
	}

	// Unigram^0.75 negative-sampling table.
	tableSize := 1 << cfg.TableBits
	table := make([]int, tableSize)
	var total float64
	pow := make([]float64, len(words))
	for i, w := range words {
		pow[i] = math.Pow(float64(counts[w]), 0.75)
		total += pow[i]
	}
	idx, cum := 0, pow[0]/total
	for i := range table {
		table[i] = idx
		if float64(i)/float64(tableSize) > cum && idx < len(words)-1 {
			idx++
			cum += pow[idx] / total
		}
	}

	// Encode sentences once.
	encoded := make([][]int, 0, len(sentences))
	for _, s := range sentences {
		var enc []int
		for _, w := range s {
			if id, ok := vocab[w]; ok {
				enc = append(enc, id)
			}
		}
		if len(enc) > 1 {
			encoded = append(encoded, enc)
		}
	}
	if len(encoded) == 0 {
		return nil, fmt.Errorf("word2vec: no trainable sentences after filtering")
	}

	grad := make([]float64, cfg.Dim)
	totalSteps := cfg.Epochs * len(encoded)
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, sent := range encoded {
			lr := cfg.LR * (1 - float64(step)/float64(totalSteps+1))
			if lr < cfg.LR*0.0001 {
				lr = cfg.LR * 0.0001
			}
			step++
			for pos, center := range sent {
				lo := pos - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := pos + cfg.Window + 1
				if hi > len(sent) {
					hi = len(sent)
				}
				for cpos := lo; cpos < hi; cpos++ {
					if cpos == pos {
						continue
					}
					ctx := sent[cpos]
					vin := m.In[center]
					for d := range grad {
						grad[d] = 0
					}
					// positive pair
					m.trainPair(vin, m.out[ctx], 1, lr, grad)
					// negatives
					for n := 0; n < cfg.Negatives; n++ {
						neg := table[rng.Intn(tableSize)]
						if neg == ctx {
							continue
						}
						m.trainPair(vin, m.out[neg], 0, lr, grad)
					}
					for d := range vin {
						vin[d] += grad[d]
					}
				}
			}
		}
	}
	return m, nil
}

// trainPair applies one SGNS update: label 1 for a positive pair, 0 for a
// negative sample. The input-vector gradient is accumulated into grad so
// the caller can apply it once per context.
func (m *Model) trainPair(vin, vout []float64, label, lr float64, grad []float64) {
	var dot float64
	for d := range vin {
		dot += vin[d] * vout[d]
	}
	pred := 1 / (1 + math.Exp(-dot))
	g := lr * (label - pred)
	for d := range vin {
		grad[d] += g * vout[d]
		vout[d] += g * vin[d]
	}
}

// Vector returns the embedding for word, or nil if it is out of vocabulary.
func (m *Model) Vector(word string) []float64 {
	if id, ok := m.Vocab[word]; ok {
		return m.In[id]
	}
	return nil
}

// Embed averages the embeddings of the in-vocabulary tokens, returning a
// Dim-length vector (all zeros if every token is unknown). Averaging is how
// a node's multi-token execution statement becomes one semantic vector.
func (m *Model) Embed(tokens []string) []float64 {
	out := make([]float64, m.Dim)
	n := 0
	for _, t := range tokens {
		if v := m.Vector(t); v != nil {
			for d := range out {
				out[d] += v[d]
			}
			n++
		}
	}
	if n > 0 {
		for d := range out {
			out[d] /= float64(n)
		}
	}
	return out
}

// Similarity returns the cosine similarity of two words' embeddings, or 0
// if either is out of vocabulary.
func (m *Model) Similarity(a, b string) float64 {
	va, vb := m.Vector(a), m.Vector(b)
	if va == nil || vb == nil {
		return 0
	}
	return Cosine(va, vb)
}

// Cosine returns the cosine similarity of two equal-length vectors.
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
