package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WriteText serializes every registered metric in the Prometheus text
// exposition format (version 0.0.4): a `# HELP` and `# TYPE` pair per
// family, then one sample line per child, families sorted by name and
// children by label value. Values observed concurrently with a scrape
// land in either this scrape or the next — each individual sample is an
// atomic read.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range f.sortedChildren() {
			switch m := c.(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelPair(f.label, m.labelValue), formatUint(m.Value()))
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelPair(f.label, m.labelValue), formatFloat(m.Value()))
			case *Histogram:
				writeHistogram(bw, f, m)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative _bucket series plus _sum and
// _count. The per-bucket counts are read once and accumulated, so the
// emitted `le` series is always non-decreasing even mid-scrape.
func writeHistogram(bw *bufio.Writer, f *family, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(bw, "%s_bucket%s %s\n", f.name,
			labelPairs(f.label, h.labelValue, "le", formatFloat(bound)), formatUint(cum))
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(bw, "%s_bucket%s %s\n", f.name,
		labelPairs(f.label, h.labelValue, "le", "+Inf"), formatUint(cum))
	fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labelPair(f.label, h.labelValue), formatFloat(h.Sum()))
	fmt.Fprintf(bw, "%s_count%s %s\n", f.name, labelPair(f.label, h.labelValue), formatUint(cum))
}

// labelPair renders `{key="value"}`, or "" for unlabeled children.
// strconv.Quote escapes the double quote, backslash, and newline exactly
// as the exposition format requires.
func labelPair(key, value string) string {
	if key == "" || value == "" {
		return ""
	}
	return "{" + key + "=" + strconv.Quote(value) + "}"
}

// labelPairs renders up to two label pairs (the vec label, if any, plus
// one extra such as a histogram's `le`).
func labelPairs(key, value, extraKey, extraValue string) string {
	var parts []string
	if key != "" && value != "" {
		parts = append(parts, key+"="+strconv.Quote(value))
	}
	parts = append(parts, extraKey+`="`+extraValue+`"`)
	return "{" + strings.Join(parts, ",") + "}"
}

// escapeHelp escapes backslash and newline in help text.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// Handler returns an http.Handler that serves the registry in the text
// exposition format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
