package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"raal/internal/telemetry/promtest"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.NewGauge("test_depth", "depth")
	g.Set(3)
	g.Add(2.5)
	g.Dec()
	if got := g.Value(); got != 4.5 {
		t.Fatalf("gauge = %g, want 4.5", got)
	}
}

func TestGetOrCreateReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("dup_total", "dup")
	b := r.NewCounter("dup_total", "dup")
	if a != b {
		t.Fatal("re-registering the same counter must return the existing one")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering dup_total as a gauge should panic")
		}
	}()
	r.NewGauge("dup_total", "now a gauge")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name should panic")
		}
	}()
	r.NewCounter("9starts_with_digit", "bad")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if want := 0.05 + 0.5 + 0.5 + 5 + 50; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", h.Sum(), want)
	}
	// Exposition must be cumulative: le=0.1→1, le=1→3, le=10→4, +Inf→5.
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`test_lat_seconds_bucket{le="0.1"} 1`,
		`test_lat_seconds_bucket{le="1"} 3`,
		`test_lat_seconds_bucket{le="10"} 4`,
		`test_lat_seconds_bucket{le="+Inf"} 5`,
		`test_lat_seconds_count 5`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

func TestVecChildrenPreMaterialized(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_req_total", "requests", "endpoint", "estimate", "select")
	v.With("estimate").Inc()
	v.With("estimate").Inc()
	v.With("select").Inc()
	if v.With("estimate").Value() != 2 || v.With("select").Value() != 1 {
		t.Fatal("vec children miscounted")
	}
	// Unknown label values are dropped silently (nil no-op child).
	v.With("unknown").Inc()
	if v.With("unknown") != nil {
		t.Fatal("unknown label value must yield a nil (no-op) child")
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `test_req_total{endpoint="estimate"} 2`) ||
		!strings.Contains(buf.String(), `test_req_total{endpoint="select"} 1`) {
		t.Fatalf("vec exposition wrong:\n%s", buf.String())
	}
}

func TestGaugeVecChildrenPreMaterialized(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("test_replica_state", "per replica", "replica", "r0", "r1")
	v.With("r0").Set(3)
	v.With("r1").Set(1)
	v.With("r1").Add(1)
	if v.With("r0").Value() != 3 || v.With("r1").Value() != 2 {
		t.Fatal("gauge vec children misread")
	}
	if v.With("unknown") != nil {
		t.Fatal("unknown label value must yield a nil (no-op) child")
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `test_replica_state{replica="r0"} 3`) ||
		!strings.Contains(buf.String(), `test_replica_state{replica="r1"} 2`) {
		t.Fatalf("gauge vec exposition wrong:\n%s", buf.String())
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	var sp *Span
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	cv.With("x").Inc()
	gv.With("x").Set(1)
	hv.With("x").Observe(1)
	sp.Stage("s")()
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || sp.Total() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
}

// TestCountersStrictlyIncreaseConcurrently hammers one counter, one
// gauge, and one histogram from many goroutines while a scraper reads
// them; run under -race this is the data-race proof, and the final
// values prove no increment is lost.
func TestCountersStrictlyIncreaseConcurrently(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_ops_total", "ops")
	g := r.NewGauge("conc_level", "level")
	h := r.NewHistogram("conc_lat_seconds", "lat", []float64{0.5})
	v := r.NewCounterVec("conc_by_kind_total", "by kind", "kind", "a", "b")

	const workers, perWorker = 8, 2000
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() { // concurrent scraper: reads must never go backwards
		defer close(scraperDone)
		last := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			now := c.Value()
			if now < last {
				t.Error("counter went backwards")
				return
			}
			last = now
			var buf bytes.Buffer
			if err := r.WriteText(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 0.9)
				if w%2 == 0 {
					v.With("a").Inc()
				} else {
					v.With("b").Inc()
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	<-scraperDone

	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("gauge = %g, want %d", g.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	if v.With("a").Value()+v.With("b").Value() != workers*perWorker {
		t.Fatal("vec children lost increments")
	}
}

func TestExpositionIsValidPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("app_requests_total", "total requests").Add(7)
	r.NewGauge("app_queue_depth", "queued requests").Set(3)
	r.NewHistogram("app_latency_seconds", "request latency", nil).Observe(0.02)
	v := r.NewCounterVec("app_by_endpoint_total", "per endpoint", "endpoint", "estimate", "select")
	v.With("estimate").Add(2)
	hv := r.NewHistogramVec("app_ep_seconds", "per-endpoint latency", []float64{0.01, 0.1}, "endpoint", "estimate", "select")
	hv.With("select").Observe(0.05)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	promtest.Validate(t, body)

	// Histogram invariant: cumulative buckets are non-decreasing and
	// +Inf equals _count.
	promtest.HistogramCumulative(t, body, "app_latency_seconds")
	promtest.HistogramCumulative(t, body, "app_ep_seconds")
}

func TestHelpAndLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("esc_total", "help with \\ backslash\nand newline").Inc()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `help with \\ backslash\nand newline`) {
		t.Fatalf("help not escaped:\n%s", buf.String())
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "\t") {
			t.Fatalf("raw control char leaked into exposition: %q", line)
		}
	}
}

func ExampleRegistry_WriteText() {
	r := NewRegistry()
	r.NewCounter("example_total", "an example counter").Add(3)
	var buf bytes.Buffer
	_ = r.WriteText(&buf)
	fmt.Print(buf.String())
	// Output:
	// # HELP example_total an example counter
	// # TYPE example_total counter
	// example_total 3
}
