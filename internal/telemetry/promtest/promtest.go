// Package promtest validates Prometheus text-exposition output in
// tests, the way net/http/httptest supports HTTP tests. It deliberately
// re-implements the format rules rather than calling the telemetry
// writer, so a writer bug cannot validate itself.
package promtest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// metricLine matches one exposition sample: name, optional {labels},
// value, optional timestamp.
var metricLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? \S+( [0-9]+)?$`)

// Validate checks body line by line against the text exposition format
// (version 0.0.4): every line must be a well-formed comment or sample,
// each family's TYPE must precede its samples, and sample values must
// parse as floats (or ±Inf/NaN).
func Validate(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("line %d: unknown TYPE %q", ln+1, parts[3])
				}
				typed[parts[2]] = parts[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("line %d: not a valid sample line: %q", ln+1, line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		fam := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[fam]; !ok && typed[name] == "" {
			t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, name)
		}
		rest := line // strip "name" or "name{...}" — the value is next
		if j := strings.LastIndex(line, "}"); j >= 0 {
			rest = line[j+1:]
		} else {
			rest = line[strings.Index(line, " "):]
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 {
			t.Fatalf("line %d: no value: %q", ln+1, line)
		}
		val := fields[0]
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("line %d: value %q does not parse: %v", ln+1, val, err)
			}
		}
	}
}

// HistogramCumulative asserts the family's le-bucket series is
// non-decreasing within every label combination.
func HistogramCumulative(t *testing.T, body, fam string) {
	t.Helper()
	last := map[string]float64{} // series key (labels minus le) → last cum
	seen := false
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, fam+"_bucket") {
			continue
		}
		seen = true
		key := "" // collapse to the non-le labels
		if i := strings.Index(line, "{"); i >= 0 {
			j := strings.Index(line, "}")
			for _, p := range strings.Split(line[i+1:j], ",") {
				if !strings.HasPrefix(p, "le=") {
					key += p + ";"
				}
			}
		}
		v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatalf("bucket value in %q: %v", line, err)
		}
		if v < last[key] {
			t.Fatalf("%s: cumulative bucket decreased in %q", fam, line)
		}
		last[key] = v
	}
	if !seen {
		t.Fatalf("no %s_bucket series found", fam)
	}
}

// Value extracts the value of the first sample whose name (and label
// set, when labels is non-empty) matches; it fails the test if absent.
// labels is matched as a substring of the rendered label block, e.g.
// `endpoint="estimate"`.
func Value(t *testing.T, body, name, labels string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // longer metric name sharing the prefix
		}
		if labels != "" && !strings.Contains(rest, labels) {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatalf("sample %q value: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s%s not found in exposition:\n%s", name, labels, body)
	return 0
}
