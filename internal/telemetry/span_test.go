package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestSpanStagesAccumulate(t *testing.T) {
	sp := StartSpan("predict")
	for i := 0; i < 3; i++ { // repeated stages accumulate, like chunked predicts
		stop := sp.Stage("embed")
		time.Sleep(time.Millisecond)
		stop()
		stop = sp.Stage("lstm")
		time.Sleep(2 * time.Millisecond)
		stop()
	}
	total := sp.End()

	stages := sp.Stages()
	if len(stages) != 2 || stages[0].Name != "embed" || stages[1].Name != "lstm" {
		t.Fatalf("stages = %+v, want embed,lstm in entry order", stages)
	}
	if sp.Dur("embed") <= 0 || sp.Dur("lstm") <= 0 {
		t.Fatal("stage durations must be positive")
	}
	if sp.Dur("lstm") < sp.Dur("embed") {
		t.Errorf("lstm (%v) slept twice as long as embed (%v)", sp.Dur("lstm"), sp.Dur("embed"))
	}
	var sum time.Duration
	for _, st := range stages {
		sum += st.Dur
	}
	if sum > total {
		t.Fatalf("serial stage durations (%v) exceed span total (%v)", sum, total)
	}
	if sp.Total() != total {
		t.Fatal("Total must be fixed after End")
	}
}

func TestSpanStringAndName(t *testing.T) {
	sp := StartSpan("estimate")
	sp.Stage("encode")()
	sp.End()
	if sp.Name() != "estimate" {
		t.Fatalf("name = %q", sp.Name())
	}
	s := sp.String()
	if !strings.Contains(s, "estimate") || !strings.Contains(s, "encode=") || !strings.Contains(s, "total=") {
		t.Fatalf("String() = %q", s)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var sp *Span
	sp.Stage("x")()
	if sp.End() != 0 || sp.Total() != 0 || sp.Dur("x") != 0 || sp.Stages() != nil || sp.Name() != "" {
		t.Fatal("nil span must be inert")
	}
	if sp.String() != "<nil span>" {
		t.Fatalf("nil String() = %q", sp.String())
	}
}

func TestSpanOpenTotalRuns(t *testing.T) {
	sp := StartSpan("open")
	a := sp.Total()
	time.Sleep(time.Millisecond)
	b := sp.Total()
	if b <= a {
		t.Fatal("open span Total must advance")
	}
}
