package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span records wall time per named stage of one logical operation, so a
// single Predict can be decomposed into encode → embed → lstm →
// attention → dense timings. Stages may repeat (a chunked predict enters
// each stage once per chunk); repeated entries accumulate into one
// bucket per name, listed in first-entry order.
//
// All methods are safe on a nil *Span — instrumented code passes spans
// through unconditionally and untraced calls pay one branch — and safe
// for concurrent use, though per-stage wall times from concurrent
// goroutines can sum to more than the span total.
type Span struct {
	name  string
	begin time.Time

	mu    sync.Mutex
	order []string
	durs  map[string]time.Duration
	total time.Duration // fixed by End; 0 while open
}

// Stage names one timed stage with its accumulated duration.
type Stage struct {
	Name string
	Dur  time.Duration
}

// StartSpan opens a span.
func StartSpan(name string) *Span {
	return &Span{name: name, begin: time.Now(), durs: make(map[string]time.Duration)}
}

// Stage enters the named stage and returns the function that leaves it,
// adding the elapsed wall time to the stage's bucket:
//
//	defer sp.Stage("lstm")()
//
// On a nil span the returned func is a no-op.
func (s *Span) Stage(name string) func() {
	if s == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		s.mu.Lock()
		if _, seen := s.durs[name]; !seen {
			s.order = append(s.order, name)
		}
		s.durs[name] += d
		s.mu.Unlock()
	}
}

// End fixes the span's total duration and returns it. Further Stage
// calls still accumulate (they are harmless), but Total no longer moves.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total == 0 {
		s.total = time.Since(s.begin)
	}
	return s.total
}

// Total returns the span duration: the End-fixed total, or the running
// elapsed time while the span is open. 0 on nil.
func (s *Span) Total() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total != 0 {
		return s.total
	}
	return time.Since(s.begin)
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Stages returns the accumulated per-stage durations in first-entry
// order. Nil-safe.
func (s *Span) Stages() []Stage {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Stage, len(s.order))
	for i, n := range s.order {
		out[i] = Stage{Name: n, Dur: s.durs[n]}
	}
	return out
}

// Dur returns the accumulated duration of one stage (0 if never entered
// or nil span).
func (s *Span) Dur(stage string) time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durs[stage]
}

// String renders "name total=… stage=… stage=…" for logs and progress
// lines.
func (s *Span) String() string {
	if s == nil {
		return "<nil span>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s total=%v", s.name, s.Total().Round(time.Microsecond))
	for _, st := range s.Stages() {
		fmt.Fprintf(&b, " %s=%v", st.Name, st.Dur.Round(time.Microsecond))
	}
	return b.String()
}
