// Package telemetry is the stdlib-only observability substrate: a
// concurrent metrics registry (counters, gauges, fixed-bucket
// histograms), a Prometheus text-exposition writer, and a lightweight
// per-stage span tracer.
//
// Design constraints, in order:
//
//   - Nothing on the hot path allocates, locks, or formats. Counters and
//     histograms are plain atomics; label lookup happens once at wiring
//     time, not per observation (see the *Vec types, whose children are
//     pre-materialized).
//   - Instrumentation must be optional at zero cost. Every metric method
//     is safe on a nil receiver, so uninstrumented code paths pay one
//     predictable branch and nothing else — callers never need
//     `if m != nil` guards.
//   - Registration is get-or-create and panics only on genuine misuse
//     (same name registered as two different kinds, malformed names), so
//     independent components can share one registry without coordinating.
//
// Exposition (WriteText, Handler) serializes everything in the
// Prometheus text format, version 0.0.4 — scrape-compatible without any
// client library.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// metricKind discriminates families in the registry.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Registry holds metric families and serializes them for scraping. The
// zero value is not usable; call NewRegistry. All methods are safe for
// concurrent use; registration takes a lock, observation never does.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric of one kind with one or more children
// (exactly one, unlabeled, for plain metrics; one per label value for
// vecs).
type family struct {
	name   string
	help   string
	kind   metricKind
	label  string // label key for vec families, "" for plain
	bounds []float64

	// children maps label value → child, "" for the unlabeled child.
	// Written only under Registry.mu at registration time; read
	// lock-free everywhere via the snapshot below.
	children map[string]any
	snapshot atomic.Value // map[string]any, replaced wholesale on registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether name is a legal Prometheus metric/label name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		letter := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !letter && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// lookup finds or creates the family, enforcing kind agreement.
// Call with r.mu held.
func (r *Registry) lookup(name, help string, kind metricKind) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]any)}
		f.snapshot.Store(map[string]any{})
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q already registered as %s, requested %s", name, f.kind, kind))
	}
	return f
}

// child returns the family's child for the label value, creating it with
// mk if absent. Call with r.mu held.
func (f *family) child(value string, mk func() any) any {
	if c, ok := f.children[value]; ok {
		return c
	}
	c := mk()
	f.children[value] = c
	snap := make(map[string]any, len(f.children))
	for k, v := range f.children {
		snap[k] = v
	}
	f.snapshot.Store(snap)
	return c
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing count. All methods are nil-safe:
// a nil *Counter silently drops observations, so instrumentation can be
// wired unconditionally.
type Counter struct {
	labelValue string
	n          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by delta.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.n.Add(delta)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// NewCounter registers (or retrieves) the named counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindCounter)
	return f.child("", func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family keyed by one label. Children are
// materialized at registration, so With is a lock-free map read and the
// Inc/Add hot path never allocates.
type CounterVec struct {
	f *family
}

// NewCounterVec registers the named counter family with the given label
// key and pre-materializes a child per value. More values may be added
// later by calling NewCounterVec again with the same name.
func (r *Registry) NewCounterVec(name, help, label string, values ...string) *CounterVec {
	if !validName(label) {
		panic(fmt.Sprintf("telemetry: invalid label name %q", label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindCounter)
	f.label = label
	for _, v := range values {
		f.child(v, func() any { return &Counter{labelValue: v} })
	}
	return &CounterVec{f: f}
}

// With returns the child counter for the label value, or nil (a no-op
// counter) when the value was not pre-materialized. Nil-safe.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	c, _ := v.f.snapshot.Load().(map[string]any)[value].(*Counter)
	return c
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a value that can go up and down (float64). Nil-safe.
type Gauge struct {
	labelValue string
	bits       atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (CAS loop; Inc/Dec are Add(±1)).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// NewGauge registers (or retrieves) the named gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGauge)
	return f.child("", func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family keyed by one label, children
// pre-materialized like CounterVec — the fleet router uses one per
// replica for health and breaker state.
type GaugeVec struct {
	f *family
}

// NewGaugeVec registers the named gauge family with the given label key
// and pre-materializes a child per value. More values may be added later
// by calling NewGaugeVec again with the same name.
func (r *Registry) NewGaugeVec(name, help, label string, values ...string) *GaugeVec {
	if !validName(label) {
		panic(fmt.Sprintf("telemetry: invalid label name %q", label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGauge)
	f.label = label
	for _, v := range values {
		f.child(v, func() any { return &Gauge{labelValue: v} })
	}
	return &GaugeVec{f: f}
}

// With returns the child gauge for the label value, or nil (a no-op
// gauge) when the value was not pre-materialized. Nil-safe.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	g, _ := v.f.snapshot.Load().(map[string]any)[value].(*Gauge)
	return g
}

// ---------------------------------------------------------------------------
// Histogram

// DefLatencyBuckets are the default latency buckets in seconds: 0.5 ms to
// 10 s, roughly logarithmic — wide enough for both a sub-millisecond
// analytical estimate and a multi-second cold deep batch.
func DefLatencyBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// Histogram counts observations into fixed buckets (plus an implicit
// +Inf bucket) and tracks their sum. Observe is a linear bucket scan and
// three atomic ops — no locks, no allocation. Nil-safe.
type Histogram struct {
	labelValue string
	bounds     []float64 // strictly increasing upper bounds
	buckets    []atomic.Uint64
	count      atomic.Uint64
	sumBits    atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// newHistogram validates and copies bounds.
func newHistogram(labelValue string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("telemetry: histogram bounds must be strictly increasing, got %v", bounds))
		}
	}
	h := &Histogram{labelValue: labelValue, bounds: append([]float64(nil), bounds...)}
	h.buckets = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// NewHistogram registers (or retrieves) the named histogram with the
// given bucket upper bounds (nil means DefLatencyBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindHistogram)
	if f.bounds == nil {
		if len(bounds) == 0 {
			bounds = DefLatencyBuckets()
		}
		f.bounds = append([]float64(nil), bounds...)
	}
	return f.child("", func() any { return newHistogram("", f.bounds) }).(*Histogram)
}

// HistogramVec is a histogram family keyed by one label, children
// pre-materialized like CounterVec.
type HistogramVec struct {
	f *family
}

// NewHistogramVec registers the named histogram family and
// pre-materializes a child per label value, all sharing one bucket
// layout (nil bounds means DefLatencyBuckets).
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, label string, values ...string) *HistogramVec {
	if !validName(label) {
		panic(fmt.Sprintf("telemetry: invalid label name %q", label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindHistogram)
	f.label = label
	if f.bounds == nil {
		if len(bounds) == 0 {
			bounds = DefLatencyBuckets()
		}
		f.bounds = append([]float64(nil), bounds...)
	}
	for _, v := range values {
		f.child(v, func() any { return newHistogram(v, f.bounds) })
	}
	return &HistogramVec{f: f}
}

// With returns the child histogram for the label value, or nil (a no-op
// histogram) when the value was not pre-materialized. Nil-safe.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	h, _ := v.f.snapshot.Load().(map[string]any)[value].(*Histogram)
	return h
}

// sortedFamilies returns the families sorted by name (a stable scrape
// order, and the order WriteText emits).
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren returns a family's children ordered by label value.
func (f *family) sortedChildren() []any {
	snap, _ := f.snapshot.Load().(map[string]any)
	values := make([]string, 0, len(snap))
	for v := range snap {
		values = append(values, v)
	}
	sort.Strings(values)
	out := make([]any, len(values))
	for i, v := range values {
		out[i] = snap[v]
	}
	return out
}
