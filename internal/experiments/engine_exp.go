package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"raal/internal/catalog"
	"raal/internal/datagen"
	"raal/internal/engine"
	"raal/internal/logical"
	"raal/internal/physical"
	"raal/internal/sql"
)

// engineBenchScale sizes the IMDB catalog for the full engine benchmark:
// at 16x the movie_companies fact table holds ~1.04M rows, so the 3-way
// join streams past the 10^6-row mark the acceptance gate targets.
const engineBenchScale = 16.0

// The bench plan executes
//
//	SELECT t.kind_id, COUNT(*), SUM(mc.company_id)
//	FROM title t, movie_companies mc, company_name cn
//	WHERE t.id = mc.movie_id AND cn.id = mc.company_id
//	GROUP BY t.kind_id
//
// with the fact table on the probe side of both hash joins — the shape a
// cost-based optimizer picks for PK-FK joins (build the small dimension
// sides, stream the fact side). The intermediate result is as wide as
// movie_companies: the materialized path gathers it twice in full, while
// the streaming path holds a few 4096-row chunks, the two dimension hash
// tables, and seven group states.
func engineBenchPlan(db *catalog.Database) *physical.Plan {
	col := func(alias, table, name string) logical.BoundCol {
		return logical.BoundCol{Alias: alias, Table: table, Name: name, Type: catalog.Int64}
	}
	mcMovie := col("mc", "movie_companies", "movie_id")
	mcCompany := col("mc", "movie_companies", "company_id")
	tID := col("t", "title", "id")
	cnID := col("cn", "company_name", "id")
	groupBy := []logical.BoundCol{col("t", "title", "kind_id")}
	aggs := []logical.BoundAgg{
		{Agg: sql.AggCount, Star: true},
		{Agg: sql.AggSum, Col: &mcCompany},
	}

	scanMC := &physical.Node{Op: physical.FileScan, Table: "movie_companies", Alias: "mc",
		Columns: []string{"movie_id", "company_id"}}
	scanT := &physical.Node{Op: physical.FileScan, Table: "title", Alias: "t",
		Columns: []string{"id", "kind_id"}}
	scanCN := &physical.Node{Op: physical.FileScan, Table: "company_name", Alias: "cn",
		Columns: []string{"id"}}
	j1 := &physical.Node{Op: physical.ShuffledHashJoin, Children: []*physical.Node{scanMC, scanT},
		LeftKey: &mcMovie, RightKey: &tID}
	j2 := &physical.Node{Op: physical.ShuffledHashJoin, Children: []*physical.Node{j1, scanCN},
		LeftKey: &mcCompany, RightKey: &cnID}
	partial := &physical.Node{Op: physical.HashAggregate, Children: []*physical.Node{j2},
		GroupBy: groupBy, Aggs: aggs}
	ex := &physical.Node{Op: physical.ExchangeHashPartition, Children: []*physical.Node{partial},
		GroupBy: groupBy}
	final := &physical.Node{Op: physical.HashAggregate, Children: []*physical.Node{ex},
		GroupBy: groupBy, Aggs: aggs, Final: true}

	nodes := []*physical.Node{scanMC, scanT, j1, scanCN, j2, partial, ex, final}
	for i, n := range nodes {
		n.ID = i
		if n.Op == physical.FileScan {
			n.RawRows = float64(db.Tables[n.Table].NumRows)
		}
	}
	return &physical.Plan{Root: final, Nodes: nodes,
		Sig: "order=mc,t,cn;algos=SHJ,SHJ;probe=fact"}
}

// EngineResult reports streaming vs materialized execution on the bench
// query: wall time, ingest throughput, peak transient heap, and
// allocations per input row. Metrics carries the scalars cmd/benchdiff
// gates (throughput_ratio, peak_heap_reduction, allocs_per_row).
type EngineResult struct {
	Benchmarks []MicroBench       `json:"benchmarks"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Print renders the mode comparison.
func (r *EngineResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%-22s %14s %16s %14s %12s\n",
		"mode", "ns/op", "rows/sec", "peak heap MB", "allocs/row")
	for _, b := range r.Benchmarks {
		mode := b.Name[len("engine/"):]
		fmt.Fprintf(w, "%-22s %14.0f %16.0f %14.1f %12.2f\n",
			b.Name, b.NsOp,
			r.Metrics["rows_per_sec/"+mode],
			r.Metrics["peak_heap_mb/"+mode],
			r.Metrics["allocs_per_row/"+mode])
	}
	fmt.Fprintf(w, "\nthroughput ratio (streaming/materialized): %.2fx\n",
		r.Metrics["throughput_ratio"])
	fmt.Fprintf(w, "peak heap reduction:                       %.0f%%\n",
		100*r.Metrics["peak_heap_reduction"])
}

// JSON writes the machine-readable form consumed by cmd/benchdiff.
func (r *EngineResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// engineModeRun is one measured execution of the bench plan.
type engineModeRun struct {
	ns     float64 // best-of wall time
	peakB  uint64  // max peak heap growth across runs
	allocs float64 // mallocs per run (first run)
	n      int
}

// measureMode times the plan under the engine's current mode: one warmup
// run, then repeats timed runs each under a fresh heap watch, keeping the
// fastest time and the largest observed peak.
func measureMode(eng *engine.Engine, p *physical.Plan, repeats int) (engineModeRun, *engine.Relation, error) {
	rel, err := eng.Run(p) // warmup: page in columns, warm pools
	if err != nil {
		return engineModeRun{}, nil, err
	}
	var out engineModeRun
	out.n = repeats
	for i := 0; i < repeats; i++ {
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		hw := watchHeap()
		t0 := time.Now()
		r, err := eng.Run(p)
		ns := float64(time.Since(t0).Nanoseconds())
		peak := hw.Stop()
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return engineModeRun{}, nil, err
		}
		rel = r
		if out.ns == 0 || ns < out.ns {
			out.ns = ns
		}
		if peak > out.peakB {
			out.peakB = peak
		}
		if i == 0 {
			out.allocs = float64(ms1.Mallocs - ms0.Mallocs)
		}
	}
	return out, rel, nil
}

// engineRelEqual spot-checks bit-identity between the two modes' outputs
// (the exhaustive proof lives in the engine package's corpus test).
func engineRelEqual(a, b *engine.Relation) bool {
	if a.N != b.N || len(a.Ints) != len(b.Ints) || len(a.Strs) != len(b.Strs) {
		return false
	}
	for name, col := range a.Ints {
		other := b.Ints[name]
		if len(other) != len(col) {
			return false
		}
		for i := range col {
			if col[i] != other[i] {
				return false
			}
		}
	}
	for name, col := range a.Strs {
		other := b.Strs[name]
		if len(other) != len(col) {
			return false
		}
		for i := range col {
			if col[i] != other[i] {
				return false
			}
		}
	}
	return true
}

// engineBench runs the mode comparison at the given catalog scale.
func engineBench(scale float64, seed int64, repeats int) (*EngineResult, error) {
	db := datagen.IMDB(scale, seed)
	p := engineBenchPlan(db)

	eng := engine.New(db)
	eng.MaxRows = 20_000_000 // the bench streams well past the default cap

	eng.Mode = engine.ExecMaterialized
	mat, matRel, err := measureMode(eng, p, repeats)
	if err != nil {
		return nil, err
	}
	eng.Mode = engine.ExecStreaming
	str, strRel, err := measureMode(eng, p, repeats)
	if err != nil {
		return nil, err
	}
	if !engineRelEqual(matRel, strRel) {
		return nil, fmt.Errorf("engine bench: streaming output diverged from materialized oracle")
	}

	// Ingest rows: everything the scans feed the pipeline. Identical in
	// both modes (no LIMIT), so the throughput ratio is a pure time ratio.
	var rows float64
	for _, n := range p.Nodes {
		if n.Op == physical.FileScan {
			rows += n.ActRows
		}
	}

	const mb = 1024 * 1024
	res := &EngineResult{Metrics: map[string]float64{}}
	add := func(mode string, m engineModeRun) {
		res.Benchmarks = append(res.Benchmarks, MicroBench{
			Name: "engine/" + mode, NsOp: m.ns, AllocsOp: m.allocs, N: m.n,
		})
		res.Metrics["rows_per_sec/"+mode] = rows / (m.ns / 1e9)
		res.Metrics["peak_heap_mb/"+mode] = float64(m.peakB) / mb
		res.Metrics["allocs_per_row/"+mode] = m.allocs / rows
	}
	add("materialized", mat)
	add("streaming", str)
	res.Metrics["input_rows"] = rows
	res.Metrics["throughput_ratio"] = mat.ns / str.ns
	if mat.peakB > 0 {
		res.Metrics["peak_heap_reduction"] = 1 - float64(str.peakB)/float64(mat.peakB)
	}
	res.Metrics["allocs_per_row"] = str.allocs / rows
	return res, nil
}

// EngineBench compares the streaming executor against the materialized
// oracle on a million-row 3-way join with a grouped aggregate, verifying
// bit-identical output along the way. It needs no lab: the corpus is the
// synthetic IMDB catalog itself.
func EngineBench(opt Options) (*EngineResult, error) {
	return engineBench(engineBenchScale, opt.Seed, 3)
}
