package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"raal/internal/core"
	"raal/internal/metrics"
)

// QuantResult is the quantized-inference report: warm batch-predict
// throughput per precision at the BenchmarkPredict shape, the speedups
// against the float64 reference, and the accuracy cost as the p90
// q-error delta the serving gate examines. Metrics carries the scalar
// half in the machine-readable form cmd/benchdiff gates per-metric.
type QuantResult struct {
	Benchmarks []MicroBench       `json:"benchmarks"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Print renders the per-precision table.
func (r *QuantResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%-18s %14s %12s %12s %10s %12s\n",
		"benchmark", "ns/op", "B/op", "allocs/op", "speedup", "qdelta p90")
	for _, b := range r.Benchmarks {
		prec := b.Name[len("predict/"):]
		speedup, qd := "1.00x", "-"
		if v, ok := r.Metrics["speedup/"+prec]; ok {
			speedup = fmt.Sprintf("%.2fx", v)
		}
		if v, ok := r.Metrics["qdelta_p90/"+prec]; ok {
			qd = fmt.Sprintf("%.4f", v)
		}
		fmt.Fprintf(w, "%-18s %14.0f %12.0f %12.1f %10s %12s\n",
			b.Name, b.NsOp, b.BytesOp, b.AllocsOp, speedup, qd)
	}
}

// JSON writes the machine-readable form consumed by cmd/benchdiff.
func (r *QuantResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Quant benchmarks the quantized inference path against the float64
// reference on the micro corpus: a small RAAL model is trained in f64,
// snapshotted to f32 and int8, and each precision's warm batch predict
// is measured serially (workers=1 isolates kernel throughput from pool
// scheduling). The accuracy side reports the p90 q-error delta of each
// snapshot against the f64 predictions — the exact statistic the
// serving gate (VerifyQuantized) bounds.
func Quant(opt Options) (*QuantResult, error) {
	samples := microDataset(512, 77)
	cfg := core.DefaultConfig(microSem, microNodes)
	cfg.Hidden = 16
	cfg.K = 8
	cfg.Seed = opt.Seed
	tc := core.DefaultTrainConfig()
	tc.Epochs = 1
	tc.Batch = 16
	tc.LR = 5e-3
	tc.Seed = opt.Seed

	m, _, err := core.Train(samples[:128], core.RAAL(), cfg, tc)
	if err != nil {
		return nil, err
	}
	qm32, err := m.Quantize(core.QuantConfig{Precision: core.PrecisionF32})
	if err != nil {
		return nil, err
	}
	qm8, err := m.Quantize(core.QuantConfig{Precision: core.PrecisionInt8})
	if err != nil {
		return nil, err
	}

	po := core.PredictOpts{Workers: 1, ChunkSize: 32}
	predict := map[string]func() []float64{
		"f64":  func() []float64 { return m.PredictWith(samples, po) },
		"f32":  func() []float64 { return qm32.PredictWith(samples, po) },
		"int8": func() []float64 { return qm8.PredictWith(samples, po) },
	}

	res := &QuantResult{Metrics: map[string]float64{}}
	ref := predict["f64"]()
	nsOp := map[string]float64{}
	for _, prec := range []string{"f64", "f32", "int8"} {
		run := predict[prec]
		run() // warm the tape pool before timing
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
		mb := toMicroBench("predict/"+prec, br)
		res.Benchmarks = append(res.Benchmarks, mb)
		nsOp[prec] = mb.NsOp
		if prec == "f64" {
			continue
		}
		got := run()
		res.Metrics["qdelta_p90/"+prec] = metrics.Quantile(metrics.QErrorDeltas(ref, got), core.GateQuantile)
		if mb.NsOp > 0 {
			res.Metrics["speedup/"+prec] = nsOp["f64"] / mb.NsOp
		}
	}
	return res, nil
}
