package experiments

import (
	"io"

	"raal/internal/cardest"
	"raal/internal/encode"
	"raal/internal/engine"
	"raal/internal/logical"
	"raal/internal/physical"
	"raal/internal/sparksim"
	"raal/internal/sql"
	"raal/internal/workload"
)

// AQERow compares three plan-choice regimes on one query.
type AQERow struct {
	Query      int
	DefaultSec float64 // static rule-based choice (estimates only)
	AQESec     float64 // default plan, joins re-decided from runtime sizes
	RAALSec    float64 // RAAL's static resource-aware choice
}

// AQEResult contrasts the paper's learned *static* plan choice with
// Spark-3.x-style adaptive execution built on runtime statistics.
type AQEResult struct {
	Rows     []AQERow
	Switched int // joins the AQE pass converted across all queries
}

// AQE evaluates 20 held-out queries under all three regimes.
func AQE(lab *Lab) (*AQEResult, error) {
	model, err := lab.RAALModel()
	if err != nil {
		return nil, err
	}
	est, err := cardest.New(lab.DB, 32, 16)
	if err != nil {
		return nil, err
	}
	planner := physical.NewPlanner(est)
	binder := logical.NewBinder(lab.DB)
	eng := engine.New(lab.DB)
	eng.MaxRows = 2_000_000
	sim := sparksim.New(lab.SimConfig())
	sim.Seed = lab.Opt.Seed

	var gen *workload.Generator
	if lab.Opt.Bench == "tpch" {
		gen, err = workload.NewTPCHGenerator(lab.DB, lab.Opt.Seed+303)
	} else {
		gen, err = workload.NewIMDBGenerator(lab.DB, lab.Opt.Seed+303)
	}
	if err != nil {
		return nil, err
	}

	res := sparksim.DefaultResources()
	out := &AQEResult{}
	attempts := 0
	for len(out.Rows) < 20 && attempts < 400 {
		attempts++
		stmt, err := sql.Parse(gen.GenerateOne())
		if err != nil {
			continue
		}
		bound, err := binder.Bind(stmt)
		if err != nil {
			continue
		}
		plans, err := planner.Enumerate(bound)
		if err != nil {
			continue
		}
		if len(plans) > 3 {
			plans = plans[:3]
		}
		ok := true
		for _, p := range plans {
			if _, err := eng.Run(p); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}

		defPlan := plans[0]
		aqePlan, sw := physical.Reoptimize(defPlan, planner.BroadcastThreshold)
		out.Switched += sw

		samples := make([]*encode.Sample, len(plans))
		for i, p := range plans {
			samples[i] = lab.Enc.EncodePlan(p, res)
		}
		preds := model.Predict(samples)
		bestIdx := 0
		for i := range preds {
			if preds[i] < preds[bestIdx] {
				bestIdx = i
			}
		}

		defSec, err := sim.Estimate(defPlan, res)
		if err != nil {
			return nil, err
		}
		aqeSec, err := sim.Estimate(aqePlan, res)
		if err != nil {
			return nil, err
		}
		raalSec, err := sim.Estimate(plans[bestIdx], res)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AQERow{
			Query: len(out.Rows) + 1, DefaultSec: defSec, AQESec: aqeSec, RAALSec: raalSec,
		})
	}
	return out, nil
}

// Totals sums each regime's execution time.
func (r *AQEResult) Totals() (def, aqe, raal float64) {
	for _, row := range r.Rows {
		def += row.DefaultSec
		aqe += row.AQESec
		raal += row.RAALSec
	}
	return
}

// Print renders the three-way comparison.
func (r *AQEResult) Print(w io.Writer) {
	fprintf(w, "AQE: static default vs runtime-adaptive vs RAAL choice (seconds)\n")
	fprintf(w, "%-8s %12s %12s %12s\n", "query", "default", "AQE", "RAAL")
	for _, row := range r.Rows {
		fprintf(w, "q%-7d %12.2f %12.2f %12.2f\n", row.Query, row.DefaultSec, row.AQESec, row.RAALSec)
	}
	d, a, m := r.Totals()
	fprintf(w, "%-8s %12.2f %12.2f %12.2f   (%d joins switched by AQE)\n", "total", d, a, m, r.Switched)
}
