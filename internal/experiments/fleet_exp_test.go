package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The fleet experiment is itself a chaos drill (it kills a replica
// mid-run), so the smoke test checks the invariants the report exists
// to demonstrate rather than any particular throughput number.
func TestFleetExperimentInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet experiment spins up real HTTP fleets")
	}
	res, err := Fleet(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Benchmarks) != len(fleetReplicaLevels)+1 {
		t.Fatalf("got %d rows, want %d scaling + 1 kill", len(res.Benchmarks), len(fleetReplicaLevels)+1)
	}
	var sawKill bool
	for _, b := range res.Benchmarks {
		if b.Availability != 1.0 {
			t.Errorf("%s: availability = %v, want 1.0 (zero lost requests)", b.Name, b.Availability)
		}
		if b.N != fleetTotalRequests/fleetClients*fleetClients {
			t.Errorf("%s: N = %d", b.Name, b.N)
		}
		if b.QPS <= 0 || b.P99Ms < b.P50Ms {
			t.Errorf("%s: implausible latency summary: %+v", b.Name, b)
		}
		if b.Kill == "mid-run" {
			sawKill = true
			if b.Replicas != 3 {
				t.Errorf("kill cell ran with %d replicas, want 3", b.Replicas)
			}
		}
	}
	if !sawKill {
		t.Fatal("no kill-mid-run row")
	}

	var text, js bytes.Buffer
	res.Print(&text)
	if err := res.JSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fleet/replicas=1", "kill=mid-run", "avail"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("report missing %q:\n%s", want, text.String())
		}
	}
	if !strings.Contains(js.String(), `"availability": 1`) {
		t.Errorf("JSON missing availability field:\n%s", js.String())
	}
}
