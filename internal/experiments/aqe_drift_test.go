package experiments

import (
	"bytes"
	"math"
	"testing"
)

func TestAQEThreeWayComparison(t *testing.T) {
	lab := quickLab(t)
	r, err := AQE(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 20 {
		t.Fatalf("want 20 queries, got %d", len(r.Rows))
	}
	d, a, m := r.Totals()
	if d <= 0 || a <= 0 || m <= 0 {
		t.Fatalf("non-positive totals: %v %v %v", d, a, m)
	}
	// AQE corrects mis-sized joins, so in aggregate it should not lose
	// badly to the static default.
	if a > d*1.2 {
		t.Fatalf("AQE total %.1f much worse than default %.1f", a, d)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestDriftAndRetrain(t *testing.T) {
	opt := QuickOptions()
	opt.NumQueries = 80
	opt.Epochs = 15
	r, err := Drift(opt)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]float64{
		"before": r.Before.MSE, "drifted": r.Drifted.MSE, "retrained": r.Retrained.MSE,
	} {
		if math.IsNaN(m) || m < 0 {
			t.Fatalf("%s MSE invalid: %v", name, m)
		}
	}
	// The drifted evaluation re-prices the exact same records, so MSE is
	// directly comparable: migration must hurt, retraining must recover.
	if r.Drifted.MSE <= r.Before.MSE {
		t.Fatalf("cluster migration should increase error: before %v, drifted %v",
			r.Before, r.Drifted)
	}
	if r.Retrained.MSE >= r.Drifted.MSE {
		t.Fatalf("incremental fit should reduce error: %v vs %v", r.Retrained.MSE, r.Drifted.MSE)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}
