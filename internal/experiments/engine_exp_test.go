package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestEngineBenchReport(t *testing.T) {
	r, err := engineBench(0.5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks (materialized, streaming), got %d", len(r.Benchmarks))
	}
	for _, key := range []string{
		"rows_per_sec/streaming", "rows_per_sec/materialized",
		"peak_heap_mb/streaming", "peak_heap_mb/materialized",
		"throughput_ratio", "peak_heap_reduction", "allocs_per_row", "input_rows",
	} {
		if _, ok := r.Metrics[key]; !ok {
			t.Fatalf("metric %q missing", key)
		}
	}
	if r.Metrics["input_rows"] <= 0 {
		t.Fatalf("input_rows = %v", r.Metrics["input_rows"])
	}
	if r.Metrics["throughput_ratio"] <= 0 {
		t.Fatalf("throughput_ratio = %v", r.Metrics["throughput_ratio"])
	}
	// Machine-readable form must round-trip with the benchmarks and the
	// metrics map intact (cmd/benchdiff consumes both).
	var buf bytes.Buffer
	if err := r.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back struct {
		Benchmarks []MicroBench       `json:"benchmarks"`
		Metrics    map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != 2 || back.Metrics["throughput_ratio"] != r.Metrics["throughput_ratio"] {
		t.Fatal("JSON round-trip lost data")
	}
	r.Print(&buf) // must not panic
}
